// Benchmarks regenerating every table and figure of the paper, plus
// microbenchmarks of the substrates. Each BenchmarkTableN/BenchmarkFigN
// runs the corresponding experiment end-to-end at reduced fidelity (use
// cmd/msbench for full-fidelity output); the experiment's rows are the
// same ones the paper reports.
//
// Run with: go test -bench=. -benchmem
package bench

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"msweb/internal/cluster"
	"msweb/internal/core"
	"msweb/internal/dyncache"
	"msweb/internal/experiments"
	"msweb/internal/queuemodel"
	"msweb/internal/report"
	"msweb/internal/rng"
	"msweb/internal/sim"
	"msweb/internal/simos"
	"msweb/internal/trace"
	"msweb/internal/workload"
)

// ---- Paper artifacts -------------------------------------------------

func BenchmarkTable1TraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable1(3000, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("short table")
		}
	}
}

func BenchmarkFig3Analytic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves := experiments.RunFig3()
		if len(curves) != 3 {
			b.Fatal("missing curves")
		}
	}
}

func BenchmarkTable2Parameters(b *testing.B) {
	opts := experiments.Quick()
	for i := 0; i < b.N; i++ {
		rows := experiments.RunTable2(opts)
		if len(rows) != 6 {
			b.Fatal("short table")
		}
	}
}

func benchmarkFig4(b *testing.B, p int) {
	opts := experiments.Quick()
	for i := 0; i < b.N; i++ {
		opts.Seeds = []int64{int64(i + 1)}
		rows, err := experiments.RunFig4(p, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig4aSimulation(b *testing.B) { benchmarkFig4(b, 32) }
func BenchmarkFig4bSimulation(b *testing.B) { benchmarkFig4(b, 128) }

func BenchmarkFig5Sensitivity(b *testing.B) {
	opts := experiments.Quick()
	for i := 0; i < b.N; i++ {
		opts.Seeds = []int64{int64(i + 1)}
		res, err := experiments.RunFig5(32, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 12 {
			b.Fatal("short figure")
		}
	}
}

func BenchmarkTable3Validation(b *testing.B) {
	opts := experiments.QuickTable3Options()
	opts.Duration = 3
	opts.TimeScale = 0.25
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i + 1)
		rows, err := experiments.RunTable3(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("short table")
		}
	}
}

// ---- Ablations (design choices called out in DESIGN.md) -------------

// benchmarkPolicyStretch replays one fixed workload under a policy and
// reports the measured stretch factor as a custom metric, so ablation
// deltas are visible directly in the bench output.
func benchmarkPolicyStretch(b *testing.B, masters int, mk func(core.WTable, int64) core.Policy, tune func(*cluster.Config)) {
	tr, err := trace.Generate(trace.GenConfig{
		Profile: trace.KSU, Lambda: 700, Requests: 8000, MuH: 1200, R: 1.0 / 40, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	wt := core.SampleW(tr, 16)
	sum := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := cluster.DefaultConfig(16, masters)
		cfg.WarmupFraction = 0.1
		if tune != nil {
			tune(&cfg)
		}
		res, err := cluster.Simulate(cfg, mk(wt, int64(i+1)), tr)
		if err != nil {
			b.Fatal(err)
		}
		sum += res.StretchFactor
	}
	b.ReportMetric(sum/float64(b.N), "stretch")
}

func BenchmarkAblationMS(b *testing.B) {
	benchmarkPolicyStretch(b, 3, func(wt core.WTable, s int64) core.Policy {
		return core.NewMS(wt, s)
	}, nil)
}

func BenchmarkAblationNoSampling(b *testing.B) {
	benchmarkPolicyStretch(b, 3, func(wt core.WTable, s int64) core.Policy {
		return core.NewMS(wt, s, core.WithoutSampling())
	}, nil)
}

func BenchmarkAblationNoReservation(b *testing.B) {
	benchmarkPolicyStretch(b, 3, func(wt core.WTable, s int64) core.Policy {
		return core.NewMS(wt, s, core.WithoutReservation())
	}, nil)
}

func BenchmarkAblationAllMasters(b *testing.B) {
	benchmarkPolicyStretch(b, 16, func(wt core.WTable, s int64) core.Policy {
		return core.NewMS(wt, s)
	}, nil)
}

func BenchmarkAblationNoBooking(b *testing.B) {
	benchmarkPolicyStretch(b, 3, func(wt core.WTable, s int64) core.Policy {
		return core.NewPipeline(core.PipelineConfig{
			Name: "M/S", WTable: wt, Seed: s,
			PlacementImpact: core.NoPlacementImpact,
		})
	}, nil)
}

func BenchmarkAblationStaleLoadInfo(b *testing.B) {
	benchmarkPolicyStretch(b, 3, func(wt core.WTable, s int64) core.Policy {
		return core.NewMS(wt, s)
	}, func(cfg *cluster.Config) { cfg.LoadRefresh = 1.0 })
}

// ---- Substrate microbenchmarks ---------------------------------------

func BenchmarkEngineEventThroughput(b *testing.B) {
	eng := sim.NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(1, func() {})
		eng.Step()
	}
}

// BenchmarkEngineScheduleFire measures the schedule→fire hot path in
// steady state. With the event free list this must run at 0 allocs/op:
// every fired event is recycled into the next After call.
func BenchmarkEngineScheduleFire(b *testing.B) {
	eng := sim.NewEngine()
	eng.After(1, func() {}) // prime the free list
	eng.Step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(1, func() {})
		eng.Step()
	}
}

// BenchmarkEngineScheduleFireProbed is the same hot path with an engine
// probe installed (the hook the observability layer uses); the probe is
// one indirect call per fired event and must not add allocations.
func BenchmarkEngineScheduleFireProbed(b *testing.B) {
	eng := sim.NewEngine()
	var fired int
	eng.SetProbe(func(sim.Time) { fired++ })
	eng.After(1, func() {}) // prime the free list
	eng.Step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(1, func() {})
		eng.Step()
	}
}

// BenchmarkParallelGrid runs the Figure 4 grid end-to-end at both pool
// widths; the ratio of the two is the harness speedup on this machine.
func BenchmarkParallelGrid(b *testing.B) {
	bench := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			opts := experiments.Quick()
			opts.InvRs = []float64{40}
			experiments.SetParallelism(workers)
			defer experiments.SetParallelism(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := experiments.RunFig4(32, opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) == 0 {
					b.Fatal("no rows")
				}
			}
		}
	}
	b.Run("sequential", bench(1))
	b.Run("gomaxprocs", bench(0))
}

// BenchmarkNodeJobThroughput runs one job at a time through a node.
// With the process pool, ring queues, and typed burst events this is
// 0 allocs/op after the first iteration warms the pools.
func BenchmarkNodeJobThroughput(b *testing.B) {
	eng := sim.NewEngine()
	node, err := simos.NewNode(eng, 0, simos.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	node.Submit(simos.Job{CPUTime: 0.001, IOTime: 0.002, MemPages: 4})
	eng.Run() // warm the process pool and event slab
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node.Submit(simos.Job{CPUTime: 0.001, IOTime: 0.002, MemPages: 4})
		eng.Run()
	}
}

// BenchmarkNodeBurstLoop is the steady-state contended-node benchmark:
// a standing mix of CPU-and-disk jobs where every completion immediately
// submits a replacement through the typed DoneCall path, so the node's
// MLFQ, disk queue, decay timer, and event heap all stay hot. The whole
// loop must report 0 allocs/op.
func BenchmarkNodeBurstLoop(b *testing.B) {
	eng := sim.NewEngine()
	node, err := simos.NewNode(eng, 0, simos.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	job := simos.Job{CPUTime: 0.004, IOTime: 0.004, MemPages: 16}
	done := 0
	job.DoneCall = func(any, float64) { done++ }
	const mix = 16 // standing multiprogramming level per iteration
	for i := 0; i < mix; i++ {
		node.Submit(job)
	}
	eng.Run() // warm the pools at full queue depth
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < mix; j++ {
			node.Submit(job)
		}
		eng.Run()
	}
	if done != (b.N+1)*mix {
		b.Fatalf("completed %d jobs, want %d", done, (b.N+1)*mix)
	}
}

func BenchmarkMSPlace(b *testing.B) {
	v := &core.View{
		Masters: []int{0, 1},
		Slaves:  []int{2, 3, 4, 5, 6, 7},
		Load:    make([]core.Load, 8),
	}
	s := rng.New(1)
	for i := range v.Load {
		v.Load[i] = core.Load{CPUIdle: s.Float64(), DiskAvail: s.Float64(), Speed: 1}
	}
	ms := core.NewMS(core.WTable{1: 0.9}, 1)
	ms.Tick(0, v)
	req := core.Request{Class: trace.Dynamic, Script: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms.Place(req, 0, v)
	}
}

func BenchmarkOptimalPlan(b *testing.B) {
	p := queuemodel.NewParams(128, 4000, 0.41, 1200, 1.0/40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.OptimalPlan(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := trace.Generate(trace.GenConfig{
			Profile: trace.ADL, Lambda: 500, Requests: 10000,
			MuH: 1200, R: 1.0 / 40, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterSimulation(b *testing.B) {
	tr, err := trace.Generate(trace.GenConfig{
		Profile: trace.KSU, Lambda: 700, Requests: 10000, MuH: 1200, R: 1.0 / 40, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	wt := core.SampleW(tr, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cluster.Simulate(cluster.DefaultConfig(16, 3), core.NewMS(wt, 1), tr)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Events)/float64(res.Summary.Count+1), "events/req")
	}
}

// ---- Extension benchmarks --------------------------------------------

func BenchmarkClosedLoopSimulation(b *testing.B) {
	sessions, err := workload.Generate(workload.Config{
		Profile: trace.KSU, Sessions: 300, SessionRate: 40,
		MeanRequests: 6, MeanThink: 0.2, MuH: 1200, R: 1.0 / 40, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		c, err := cluster.New(eng, cluster.DefaultConfig(8, 2), core.NewMS(nil, 1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.RunClosedLoop(sessions); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedControlPlane simulates large fleets under the sharded
// control plane and reports per-master per-tick poll work as a custom
// metric. The sharded number must stay flat (≈ shard size + 1) as the
// fleet grows; an unsharded master's equivalent is the fleet size, which
// is reported alongside for the ratio.
func BenchmarkShardedControlPlane(b *testing.B) {
	tr, err := trace.Generate(trace.GenConfig{
		Profile: trace.KSU, Lambda: 400, Requests: 2000, MuH: 1200, R: 1.0 / 40, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	wt := core.SampleW(tr, 16)
	for _, p := range []int{1024, 4096} {
		m := p / 64
		b.Run(fmt.Sprintf("nodes=%d", p), func(b *testing.B) {
			polled := 0.0
			for i := 0; i < b.N; i++ {
				cfg := cluster.DefaultConfig(p, m)
				cfg.Shards = m
				res, err := cluster.Simulate(cfg, core.NewMS(wt, 1), tr)
				if err != nil {
					b.Fatal(err)
				}
				polled = res.Shards.NodesPolledPerTick
			}
			b.ReportMetric(polled, "polled/tick")
			b.ReportMetric(float64(p), "global-equiv")
		})
	}
}

func BenchmarkMMPPTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := trace.Generate(trace.GenConfig{
			Profile: trace.KSU, Lambda: 500, Requests: 10000,
			MuH: 1200, R: 1.0 / 40, Seed: int64(i),
			Arrival: trace.MMPPArrivals, BurstFactor: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCLFParse(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&sb, "h - - [02/Jun/1999:04:%02d:%02d -0700] \"GET /cgi-bin/q?x=%d HTTP/1.0\" 200 %d\n",
			i/60%60, i%60, i, 1000+i)
	}
	log := sb.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := trace.ReadCLF(strings.NewReader(log), trace.CLFOptions{MuH: 1200, R: 1.0 / 40})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Trace.Requests) != 5000 {
			b.Fatal("short parse")
		}
	}
}

func BenchmarkCacheOps(b *testing.B) {
	c, err := dyncache.New(1024, 60)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := dyncache.Key{Script: i % 7, Param: int64(i % 2048)}
		now := float64(i) / 1000
		if !c.Lookup(k, now) {
			c.Insert(k, 1000, now)
		}
	}
}

func BenchmarkReportCSV(b *testing.B) {
	tbl := &report.Table{Columns: []string{"a", "b", "c"}}
	for i := 0; i < 1000; i++ {
		tbl.AddRow(i, float64(i)*1.5, "label")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tbl.WriteCSV(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
