# Convenience targets for the msweb reproduction.

GO ?= go

.PHONY: all build vet test test-short race bench experiments csv clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the live-cluster (wall-clock) validation tests.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/httpcluster/ ./internal/replay/ ./cmd/msload/

bench:
	$(GO) test -bench=. -benchmem

# Regenerate every table and figure (minutes; table3 replays in real time).
experiments:
	$(GO) run ./cmd/msbench -experiment all

# Same, with machine-readable CSV next to the text output.
csv:
	$(GO) run ./cmd/msbench -experiment all -csv results/csv

clean:
	$(GO) clean ./...
