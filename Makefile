# Convenience targets for the msweb reproduction.

GO ?= go

.PHONY: all build vet lint test test-short race check bench benchdiff loadbench scalebench tournament autoscale experiments csv clean help

all: build vet test

help:
	@echo "msweb targets:"
	@echo "  build       compile every package"
	@echo "  vet         go vet ./..."
	@echo "  lint        staticcheck ./... (skipped when staticcheck is not installed)"
	@echo "  test        full test suite (includes live loopback replays)"
	@echo "  test-short  test suite minus the wall-clock replays"
	@echo "  check       go vet + go test -race ./... (the pre-merge gate;"
	@echo "              exercises the parallel experiment grid under the race detector)"
	@echo "  race        race detector on the live-cluster packages only"
	@echo "  bench       all benchmarks with -benchmem, JSON summary in BENCH_results.json"
	@echo "  benchdiff   benchstat old-vs-new against bench/baseline.txt"
	@echo "              (skipped when benchstat is not installed)"
	@echo "  loadbench   live-cluster load generation (closed + open loop via"
	@echo "              cmd/loadgen) folded into BENCH_results.json with the"
	@echo "              microbenchmarks and baseline deltas"
	@echo "  scalebench  cores→throughput scaling sweep: the frame-native client"
	@echo "              drives a fast-mode cluster with SO_REUSEPORT-sharded"
	@echo "              listeners at each GOMAXPROCS width; the curve (and its"
	@echo "              parallel efficiency) lands in BENCH_results.json as a"
	@echo "              scaling section (widths beyond this machine are skipped)"
	@echo "  tournament  head-to-head policy comparison on both planes: the"
	@echo "              simulator grid (msbench) and a live loadgen sweep,"
	@echo "              folded into BENCH_results.json as a Tournament section"
	@echo "  autoscale   online Theorem-1 autoscaler vs a fixed fleet under"
	@echo "              diurnal and flash-crowd load (byte-deterministic"
	@echo "              sharded simulator); node-hours saved and SLO"
	@echo "              attainment fold into BENCH_results.json as an"
	@echo "              Autoscale section"
	@echo "  experiments regenerate every table and figure (minutes)"
	@echo "  csv         experiments plus CSV output in results/csv"
	@echo "  clean       go clean ./..."

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck is optional tooling: run it when present, skip (successfully)
# when the box doesn't have it so `make check` works on a bare toolchain.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

# Skips the live-cluster (wall-clock) validation tests.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/httpcluster/ ./internal/chaos/ ./internal/replay/ ./cmd/msload/

# The pre-merge gate: vet + lint plus the whole suite under the race
# detector. The experiment grids run parallel by default, so this
# exercises the worker pool, the shared trace cache, and the engine pool
# under -race.
check: vet lint
	$(GO) test -race ./...

# Benchmarks with allocation counts; the parsed summary — including
# before/after deltas against the committed pre-optimization baseline —
# lands in BENCH_results.json for machine consumption (see cmd/benchjson).
bench:
	$(GO) test -bench=. -benchmem -run '^$$' . | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -baseline bench/baseline.txt > BENCH_results.json

# Compare current benchmarks against the committed pre-optimization
# baseline (bench/baseline.txt, recorded before the zero-allocation
# simulator core landed). Like lint, the optional tool is skipped
# gracefully on a bare toolchain.
benchdiff:
	@if command -v benchstat >/dev/null 2>&1; then \
		$(GO) test -bench=. -benchmem -run '^$$' . > bench/current.txt && \
		benchstat bench/baseline.txt bench/current.txt; \
	else \
		echo "benchdiff: benchstat not installed; skipping (go install golang.org/x/perf/cmd/benchstat@latest)"; \
	fi

# End-to-end live-cluster numbers: a paced closed-loop run (with the
# coordinated-omission-corrected histogram), an open-loop run, a chaos
# run (randomized fault injection; see internal/chaos), and an
# uncalibrated fast-mode run over the binary frame transport (the
# req_s_per_core headline — the data plane itself is the bottleneck, not
# emulated service times) against self-hosted loopback clusters, then
# the full microbenchmark suite; all of it lands in one
# BENCH_results.json (results/live_*.json keep the raw loadgen
# summaries).
loadbench:
	@mkdir -p results
	$(GO) run ./cmd/loadgen -mode closed -concurrency 8 -rps 400 -n 2000 \
		-nodes 6 -masters 2 -timescale 0.01 -out results/live_closed.json
	$(GO) run ./cmd/loadgen -mode open -rps 400 -n 2000 \
		-nodes 6 -masters 2 -timescale 0.01 -out results/live_open.json
	$(GO) run ./cmd/loadgen -mode closed -concurrency 8 -n 2000 \
		-nodes 6 -masters 2 -timescale 0.01 -chaos -chaos-seed 42 -chaos-len 4s \
		-out results/live_chaos.json
	$(GO) run ./cmd/loadgen -mode closed -concurrency 32 -n 20000 \
		-nodes 3 -masters 1 -fast -batch 200us -out results/live_fast.json
	$(GO) run ./cmd/loadgen -mode closed -concurrency 16 -n 4000 \
		-nodes 132 -masters 4 -shards 4 -fast -frame -out results/live_sharded.json
	$(GO) test -bench=. -benchmem -run '^$$' . | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -baseline bench/baseline.txt \
			-live results/live_closed.json,results/live_open.json,results/live_chaos.json,results/live_fast.json,results/live_sharded.json > BENCH_results.json

# Multi-core scaling harness: the frame-native client ('Q' frames over
# persistent connections) drives a fast-mode cluster with
# SO_REUSEPORT-sharded listeners, replaying the closed-loop benchmark at
# each GOMAXPROCS width in -scaling-sweep. benchjson folds the summary's
# cores→aggregate-req/s curve into BENCH_results.json as a scaling
# section with speedup and parallel efficiency per point; widths this
# machine cannot provide are reported as skipped, never failed.
scalebench:
	@mkdir -p results
	$(GO) run ./cmd/loadgen -mode closed -concurrency 16 -n 20000 \
		-nodes 3 -masters 1 -fast -frame -frame-client -listener-shards 2 \
		-scaling-sweep 1,2,4 -out results/live_scaling.json
	$(GO) test -bench=. -benchmem -run '^$$' . | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -baseline bench/baseline.txt \
			-live results/live_scaling.json > BENCH_results.json

# Head-to-head policy comparison: every registered competitor replays
# identical traces through the simulator grid (CSV lands in
# results/csv/policy-tournament.csv), the live data plane repeats the
# sweep via loadgen's per-preset clusters, and both land in
# BENCH_results.json — the CSV as the Tournament section, the live sweep
# through -live.
tournament:
	@mkdir -p results/csv
	$(GO) run ./cmd/msbench -experiment tournament -csv results/csv
	$(GO) run ./cmd/loadgen -tournament competitors -fast -n 2000 -concurrency 16 \
		-nodes 4 -masters 1 -out results/live_tournament.json
	$(GO) test -bench=. -benchmem -run '^$$' . | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -baseline bench/baseline.txt \
			-tournament results/csv/policy-tournament.csv \
			-live results/live_tournament.json > BENCH_results.json

# Autoscaling study: the online Theorem-1 autoscaler against a fixed
# peak-provisioned fleet on diurnal and flash-crowd workloads, run on
# the byte-deterministic sharded simulator (epoch-versioned shard maps,
# live promote/demote, slave power-off). The per-(workload, scenario)
# CSV — stretch, SLO attainment, node-hours, saved % — folds into
# BENCH_results.json as the Autoscale section, mirroring the tournament.
autoscale:
	@mkdir -p results/csv
	$(GO) run ./cmd/msbench -experiment autoscale -csv results/csv
	$(GO) test -bench=. -benchmem -run '^$$' . | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -baseline bench/baseline.txt \
			-autoscale results/csv/autoscale-vs-fixed-fleet.csv > BENCH_results.json

# Regenerate every table and figure (minutes; table3 replays in real time).
experiments:
	$(GO) run ./cmd/msbench -experiment all

# Same, with machine-readable CSV next to the text output.
csv:
	$(GO) run ./cmd/msbench -experiment all -csv results/csv

clean:
	$(GO) clean ./...
