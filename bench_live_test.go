// Live-cluster serving-path benchmarks: the master's /req pipeline and a
// node's /exec pipeline, driven straight through the HTTP mux with a
// reusable discard ResponseWriter. No TCP round trip is included — on
// loopback the net/http client machinery costs ~150 µs/op and would
// drown the scheduling and parsing work these benchmarks pin down; the
// full network path is measured end-to-end by cmd/loadgen instead.
package bench

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"msweb/internal/core"
	"msweb/internal/httpcluster"
)

// discardRW is a reusable ResponseWriter that counts bytes.
type discardRW struct {
	h    http.Header
	code int
	n    int
}

func (d *discardRW) Header() http.Header {
	if d.h == nil {
		d.h = make(http.Header, 4)
	}
	return d.h
}
func (d *discardRW) WriteHeader(code int) { d.code = code }
func (d *discardRW) Write(p []byte) (int, error) {
	d.n += len(p)
	return len(p), nil
}
func (d *discardRW) reset() {
	d.code = 0
	d.n = 0
	for k := range d.h {
		delete(d.h, k)
	}
}

// BenchmarkMasterReqPath measures the master's client-facing /req
// pipeline: query parsing, placement over the live view (with failure
// filtering), completion observation, and response write. Demands are
// zero so the virtual resources add no sleep time; the topology is
// master-only (M/S-1) so dynamic placements resolve locally rather than
// forwarding over TCP.
func BenchmarkMasterReqPath(b *testing.B) {
	m, err := httpcluster.LaunchMaster(httpcluster.NodeOptions{
		ID: 0, Masters: []int{0}, NodeURLs: []string{""},
		Policy:      core.NewMS(nil, 1),
		TimeScale:   1e-6, // keep the virtual fork charge in the path, at ns scale
		LoadRefresh: time.Hour, PolicyTick: time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Shutdown()
	h := m.Handler()
	bench := func(target string) func(*testing.B) {
		return func(b *testing.B) {
			req := httptest.NewRequest("GET", target, nil)
			rw := &discardRW{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rw.reset()
				h.ServeHTTP(rw, req)
			}
			if rw.code != 0 && rw.code != http.StatusOK {
				b.Fatalf("status %d", rw.code)
			}
		}
	}
	b.Run("static", bench("/req?class=s&demand=0&w=0.5&script=0"))
	b.Run("dynamic", bench("/req?class=d&demand=0&w=0.9&script=1"))
}

// BenchmarkNodeExec measures a slave node's /exec pipeline: query
// parsing, the (zero-demand) resource walk, counter and histogram
// updates, and a 64-byte response body.
func BenchmarkNodeExec(b *testing.B) {
	n, err := httpcluster.LaunchNode(httpcluster.NodeOptions{ID: 0})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Shutdown()
	h := n.Handler()
	req := httptest.NewRequest("GET", "/exec?demand=0&w=0.5&size=64", nil)
	rw := &discardRW{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rw.reset()
		h.ServeHTTP(rw, req)
	}
	if rw.code != 0 && rw.code != http.StatusOK {
		b.Fatalf("status %d", rw.code)
	}
}
