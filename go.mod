module msweb

go 1.22
