//go:build linux

package httpcluster

import "syscall"

// soReusePort is SO_REUSEPORT. The linux syscall package does not export
// the constant and golang.org/x/sys is deliberately not a dependency, so
// the kernel ABI value (15 on every Linux architecture Go supports) is
// spelled here.
const soReusePort = 0xf

// reuseportSupported reports whether this platform can shard listeners.
const reuseportSupported = true

// reuseportControl marks the about-to-bind socket SO_REUSEPORT so
// several listeners can share one port, each with its own accept queue.
func reuseportControl(network, address string, c syscall.RawConn) error {
	var serr error
	if err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	}); err != nil {
		return err
	}
	return serr
}
