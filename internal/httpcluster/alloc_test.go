package httpcluster

import (
	"bufio"
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"msweb/internal/core"
)

// nullRW is a reusable ResponseWriter for allocation pinning.
type nullRW struct {
	h    http.Header
	code int
}

func (d *nullRW) Header() http.Header {
	if d.h == nil {
		d.h = make(http.Header, 4)
	}
	return d.h
}
func (d *nullRW) WriteHeader(code int) { d.code = code }
func (d *nullRW) Write(p []byte) (int, error) {
	return len(p), nil
}

// Allocation pins for the serving hot path, the contract behind
// BenchmarkMasterReqPath and BenchmarkNodeExec (bench_live_test.go at
// the repo root): the master's /req pipeline — parse, placement over the
// live view, completion observation, piggybacked load header, response —
// and a node's /exec allocate nothing per request. The only allocations
// left are the load-stamp refresh (a handful every loadStampTTL,
// amortized to ~0 per op), hence the pins are a small fraction rather
// than exactly zero. TimeScale shrinks the virtual fork charge below
// the sleep resolution so the measurement is deterministic (no sleeps,
// no serve-goroutine handoff).
func TestReqPathAllocPins(t *testing.T) {
	m, err := LaunchMaster(NodeOptions{
		ID: 0, Masters: []int{0}, NodeURLs: []string{""},
		Policy:      core.NewMS(nil, 1),
		TimeScale:   1e-6,
		LoadRefresh: time.Hour, PolicyTick: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	n, err := LaunchNode(NodeOptions{ID: 1, TimeScale: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	// Sharded master (2 shards, master 0 owning an empty shard): the /req
	// pipeline plus the shard-stamp header attach must stay pinned too.
	ms, err := LaunchMaster(NodeOptions{
		ID: 0, Masters: []int{0, 1}, NodeURLs: []string{"", ""},
		Policy:      core.NewMS(nil, 1),
		TimeScale:   1e-6,
		LoadRefresh: time.Hour, PolicyTick: time.Hour,
		Shards:     2,
		Resilience: Resilience{DisableShedding: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Shutdown()

	cases := []struct {
		name    string
		handler http.Handler
		target  string
		maxAvg  float64
	}{
		{"master /req static", m.Handler(), "/req?class=s&demand=0&w=0.5&script=0", 0.1},
		{"master /req dynamic", m.Handler(), "/req?class=d&demand=0&w=0.9&script=1", 0.1},
		{"sharded /req static", ms.Handler(), "/req?class=s&demand=0&w=0.5&script=0", 0.1},
		{"sharded /req dynamic", ms.Handler(), "/req?class=d&demand=0&w=0.9&script=1", 0.1},
		{"node /exec", n.Handler(), "/exec?demand=0&w=0.5&size=64", 0.1},
	}
	for _, c := range cases {
		req := httptest.NewRequest("GET", c.target, nil)
		rw := &nullRW{}
		run := func() {
			rw.code = 0
			c.handler.ServeHTTP(rw, req)
			if rw.code != 0 && rw.code != http.StatusOK {
				t.Fatalf("%s: status %d", c.name, rw.code)
			}
		}
		run() // warm scratch buffers (alive filter, candidate union, header map)
		if allocs := testing.AllocsPerRun(100, run); allocs > c.maxAvg {
			t.Errorf("%s: %.2f allocs/op, pinned at ≤ %.2f", c.name, allocs, c.maxAvg)
		}
	}
}

// The binary frame service loop — length-prefixed read, exec decode,
// admission + execution, response encode with the piggybacked load —
// must also run allocation-free once its scratch buffers are warm.
// This is the steady state of (*Node).serveFrames for a persistent
// connection.
func TestFrameHotPathAllocPin(t *testing.T) {
	n, err := LaunchNode(NodeOptions{ID: 1, TimeScale: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()

	src := []frameExec{{demand: 0, w: 0.5, deadlineNs: time.Now().Add(time.Hour).UnixNano(), fork: true}}
	var frame, buf, payload []byte
	reqs := make([]frameExec, 0, 1)
	sts := make([]int, 0, 1)
	rd := bytes.NewReader(nil)
	br := bufio.NewReader(rd)
	run := func() {
		frame = appendExecFrame(frame[:0], src)
		rd.Reset(frame)
		br.Reset(rd)
		var err error
		payload, buf, err = readFrame(br, buf)
		if err != nil {
			t.Fatal(err)
		}
		reqs, err = parseExecPayload(payload, reqs[:0])
		if err != nil {
			t.Fatal(err)
		}
		st := n.execOne(reqs[0])
		if st != http.StatusOK {
			t.Fatalf("status %d", st)
		}
		sts = append(sts[:0], st)
		frame = appendRespFrame(frame[:0], sts, n.currentLoad().load, nil)
	}
	run() // warm the scratch buffers
	// Same amortized load-stamp budget as the HTTP pins above.
	if allocs := testing.AllocsPerRun(100, run); allocs > 0.1 {
		t.Errorf("frame hot path: %.2f allocs/op, pinned at ≤ 0.10", allocs)
	}

	// The 'Q'-frame (client-request) loop — the steady state a
	// frame-native load driver exercises against a master — must hold the
	// same pin: encode, length-prefixed read, decode, the full /req
	// pipeline (admission, placement, completion), response encode with
	// the piggybacked load, and the client-side status decode.
	m, err := LaunchMaster(NodeOptions{
		ID: 0, Masters: []int{0}, NodeURLs: []string{""},
		Policy:      core.NewMS(nil, 1),
		TimeScale:   1e-6,
		LoadRefresh: time.Hour, PolicyTick: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()

	qsrc := []frameReq{{demand: 0, w: 0.5, script: 1, dynamic: true}}
	qreqs := make([]frameReq, 0, 1)
	qsts := make([]int, 1)
	dec := make([]int, 0, 1)
	runQ := func() {
		frame = appendReqFrame(frame[:0], qsrc)
		rd.Reset(frame)
		br.Reset(rd)
		var err error
		payload, buf, err = readFrame(br, buf)
		if err != nil {
			t.Fatal(err)
		}
		qreqs, err = parseReqPayload(payload, qreqs[:0])
		if err != nil {
			t.Fatal(err)
		}
		m.runFrameReqs(qreqs, qsts)
		if qsts[0] != http.StatusOK {
			t.Fatalf("status %d", qsts[0])
		}
		frame = appendRespFrame(frame[:0], qsts, m.currentLoad().load, nil)
		rd.Reset(frame)
		br.Reset(rd)
		payload, buf, err = readFrame(br, buf)
		if err != nil {
			t.Fatal(err)
		}
		dec, _, _, _, err = parseRespPayload(payload, dec[:0])
		if err != nil || dec[0] != http.StatusOK {
			t.Fatalf("decode: %v %v", dec, err)
		}
	}
	runQ() // warm the scratch buffers
	if allocs := testing.AllocsPerRun(100, runQ); allocs > 0.1 {
		t.Errorf("'Q' frame hot path: %.2f allocs/op, pinned at ≤ 0.10", allocs)
	}
}
