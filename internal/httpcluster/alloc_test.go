package httpcluster

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"msweb/internal/core"
)

// nullRW is a reusable ResponseWriter for allocation pinning.
type nullRW struct {
	h    http.Header
	code int
}

func (d *nullRW) Header() http.Header {
	if d.h == nil {
		d.h = make(http.Header, 4)
	}
	return d.h
}
func (d *nullRW) WriteHeader(code int) { d.code = code }
func (d *nullRW) Write(p []byte) (int, error) {
	return len(p), nil
}

// Allocation pins for the serving hot path, the contract behind
// BenchmarkMasterReqPath and BenchmarkNodeExec (bench_live_test.go at
// the repo root): the master's /req pipeline — parse, placement over the
// live view, completion observation, response — allocates nothing, and a
// node's /exec allocates only net/http's Header.Set slice for the
// Content-Length value. TimeScale shrinks the virtual fork charge below
// the sleep resolution so the measurement is deterministic (no sleeps,
// no serve-goroutine handoff).
func TestReqPathAllocPins(t *testing.T) {
	m, err := LaunchMaster(NodeOptions{
		ID: 0, Masters: []int{0}, NodeURLs: []string{""},
		Policy:      core.NewMS(nil, 1),
		TimeScale:   1e-6,
		LoadRefresh: time.Hour, PolicyTick: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	n, err := LaunchNode(NodeOptions{ID: 1, TimeScale: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()

	cases := []struct {
		name    string
		handler http.Handler
		target  string
		maxAvg  float64
	}{
		{"master /req static", m.Handler(), "/req?class=s&demand=0&w=0.5&script=0", 0},
		{"master /req dynamic", m.Handler(), "/req?class=d&demand=0&w=0.9&script=1", 0},
		{"node /exec", n.Handler(), "/exec?demand=0&w=0.5&size=64", 1},
	}
	for _, c := range cases {
		req := httptest.NewRequest("GET", c.target, nil)
		rw := &nullRW{}
		run := func() {
			rw.code = 0
			c.handler.ServeHTTP(rw, req)
			if rw.code != 0 && rw.code != http.StatusOK {
				t.Fatalf("%s: status %d", c.name, rw.code)
			}
		}
		run() // warm scratch buffers (alive filter, candidate union, header map)
		if allocs := testing.AllocsPerRun(100, run); allocs > c.maxAvg {
			t.Errorf("%s: %.1f allocs/op, pinned at ≤ %.0f", c.name, allocs, c.maxAvg)
		}
	}
}
