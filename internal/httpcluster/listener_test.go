package httpcluster

import (
	"io"
	"net/http"
	"testing"
	"time"

	"msweb/internal/core"
)

// A sharded node must open exactly the requested number of accept
// sockets on platforms with SO_REUSEPORT, and exactly one everywhere
// else — quiet degradation, never an error.
func TestMultiListenShardCount(t *testing.T) {
	lis, err := multiListen(4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, l := range lis {
			l.Close()
		}
	}()
	want := 4
	if !reuseportSupported {
		want = 1
	}
	if len(lis) != want {
		t.Fatalf("multiListen(4) opened %d listeners, want %d", len(lis), want)
	}
	addr := lis[0].Addr().String()
	for i, l := range lis {
		if l.Addr().String() != addr {
			t.Fatalf("listener %d bound %s, want %s", i, l.Addr(), addr)
		}
	}
}

func TestMultiListenDefaultsToOne(t *testing.T) {
	for _, shards := range []int{0, 1, -3} {
		lis, err := multiListen(shards)
		if err != nil {
			t.Fatal(err)
		}
		if len(lis) != 1 {
			t.Fatalf("multiListen(%d) opened %d listeners, want 1", shards, len(lis))
		}
		lis[0].Close()
	}
}

// HTTP and the frame upgrade must both work against a sharded node: the
// kernel may hand each connection to any accept queue, and every queue
// feeds the same server.
func TestShardedNodeServesBothTransports(t *testing.T) {
	n, err := LaunchNode(NodeOptions{ID: 1, Uncalibrated: true, ListenerShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	if got := n.ListenerShards(); reuseportSupported && got != 4 {
		t.Fatalf("ListenerShards() = %d, want 4", got)
	}

	// Enough sequential HTTP requests that, with 4 accept queues, more
	// than one shard almost surely serves traffic.
	for i := 0; i < 16; i++ {
		resp, err := http.Get(n.URL + "/exec?demand=0.001&w=0.5")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}

}

// A sharded master must keep serving /req — shutdown included, so the
// per-listener serve loops and the frame registries drain cleanly.
func TestShardedMasterServesReq(t *testing.T) {
	c, err := Start(Config{
		Nodes: 2, Masters: 1, TimeScale: 1,
		LoadRefresh: 50 * time.Millisecond, PolicyTick: 100 * time.Millisecond,
		MakePolicy:     func(int) core.Policy { return core.NewMS(nil, 1) },
		Uncalibrated:   true,
		ListenerShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	m := c.Masters[0]
	for i := 0; i < 8; i++ {
		resp, err := http.Get(m.URL + "/req?demand=0.001&w=0.5")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}

	// Several persistent 'Q'-frame connections at once against the
	// sharded master: tracked in the per-shard registries, served, and
	// torn down cleanly.
	clients := make([]*FrameClient, 3)
	for i := range clients {
		fc, err := DialFrame(m.URL, time.Second)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		clients[i] = fc
	}
	if got := m.FrameConns(); got != len(clients) {
		t.Fatalf("FrameConns() = %d, want %d", got, len(clients))
	}
	for i, fc := range clients {
		sts, err := fc.Do([]FrameRequest{{Demand: 0.001, W: 0.5}}, time.Now().Add(2*time.Second))
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if len(sts) != 1 || sts[0] != http.StatusOK {
			t.Fatalf("client %d: statuses %v", i, sts)
		}
	}
	for _, fc := range clients {
		fc.Close()
	}
}

func TestListenerShardsValidation(t *testing.T) {
	if err := (NodeOptions{ListenerShards: -1}).Validate(false); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if err := (NodeOptions{ListenerShards: 300}).Validate(false); err == nil {
		t.Fatal("absurd shard count accepted")
	}
}
