package httpcluster

import (
	"bufio"
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"msweb/internal/core"
)

// launchFrameMaster wires a master with binary framing (and optionally
// batching) over the given slave URLs, polling disabled so only the
// request path drives transport and breaker state.
func launchFrameMaster(t *testing.T, rs Resilience, batch time.Duration, slaveURLs ...string) *Master {
	t.Helper()
	urls := append([]string{""}, slaveURLs...)
	slaves := make([]int, len(slaveURLs))
	for i := range slaves {
		slaves[i] = i + 1
	}
	m, err := LaunchMaster(NodeOptions{
		ID:            0,
		TimeScale:     1e-6,
		Masters:       []int{0},
		Slaves:        slaves,
		NodeURLs:      urls,
		Policy:        firstSlave{},
		LoadRefresh:   time.Hour,
		PolicyTick:    time.Hour,
		Resilience:    rs,
		BinaryFraming: true,
		BatchWindow:   batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Shutdown)
	return m
}

// The codec must round-trip exec batches and responses exactly.
func TestFrameCodecRoundTrip(t *testing.T) {
	reqs := []frameExec{
		{demand: 0.25, w: 0.5, deadlineNs: 123456789, fork: true},
		{demand: 0, w: 1, deadlineNs: 0, fork: false},
		{demand: math.MaxFloat64, w: 0, deadlineNs: -1, fork: true},
	}
	b := appendExecFrame(nil, reqs)
	payload, _, err := readFrame(bufio.NewReader(bytes.NewReader(b)), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parseExecPayload(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, got[i], reqs[i])
		}
	}

	sts := []int{200, 503, 504}
	load := core.Load{CPUIdle: 0.75, DiskAvail: 0.5, CPUQueue: 3, DiskQueue: 1, Speed: 1}
	sum := (&core.ShardSummary{Shard: 2, AtNs: 42, Nodes: 3, CPUIdle: 0.5}).AppendWire(nil)
	rb := appendRespFrame(nil, sts, load, sum)
	payload, _, err = readFrame(bufio.NewReader(bytes.NewReader(rb)), nil)
	if err != nil {
		t.Fatal(err)
	}
	gotSts, gotLoad, hasLoad, gotSum, err := parseRespPayload(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hasLoad || gotLoad != load {
		t.Fatalf("load round trip: got %+v (hasLoad=%v) want %+v", gotLoad, hasLoad, load)
	}
	if !bytes.Equal(gotSum, sum) {
		t.Fatalf("summary round trip: got %q want %q", gotSum, sum)
	}
	for i := range sts {
		if gotSts[i] != sts[i] {
			t.Fatalf("status %d: got %d want %d", i, gotSts[i], sts[i])
		}
	}

	// Summary-less responses carry an explicit empty block…
	rb = appendRespFrame(nil, sts, load, nil)
	if _, _, _, gotSum, err = parseRespPayload(rb[4:], nil); err != nil || gotSum != nil {
		t.Fatalf("summary-less response: sum=%q err=%v", gotSum, err)
	}
	// …and responses from peers predating the block (ending right after
	// the load report) still parse.
	if _, _, hasLoad, gotSum, err = parseRespPayload(rb[4:len(rb)-1], nil); err != nil || !hasLoad || gotSum != nil {
		t.Fatalf("pre-extension response: hasLoad=%v sum=%q err=%v", hasLoad, gotSum, err)
	}
}

// The client-request ('Q') codec must round-trip batches exactly.
func TestReqFrameCodecRoundTrip(t *testing.T) {
	reqs := []frameReq{
		{demand: 0.25, w: 0.5, script: 7, timeoutMs: 1500, dynamic: true, idem: true},
		{demand: 0, w: 1, script: 0, timeoutMs: 0, dynamic: false, idem: false},
		{demand: 3, w: 0.9, script: 1 << 20, timeoutMs: 1, dynamic: true, idem: false},
	}
	b := appendReqFrame(nil, reqs)
	payload, _, err := readFrame(bufio.NewReader(bytes.NewReader(b)), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parseReqPayload(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, got[i], reqs[i])
		}
	}
	// Kind confusion must fail loudly, not mis-decode.
	if _, err := parseExecPayload(payload, nil); err == nil {
		t.Fatal("exec parser accepted a 'Q' payload")
	}
	if _, err := parseReqPayload(appendExecFrame(nil, []frameExec{{w: 0.5}})[4:], nil); err == nil {
		t.Fatal("req parser accepted an 'E' payload")
	}
}

// A dynamic request over binary framing is executed by the slave's
// frame loop, and the response's piggybacked load lands in the
// master's freshness stamps.
func TestFrameTransportEndToEnd(t *testing.T) {
	n, err := LaunchNode(NodeOptions{ID: 1, TimeScale: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	m := launchFrameMaster(t, Resilience{DisableShedding: true}, 0, n.URL)

	for i := 0; i < 3; i++ {
		resp, _ := getStatus(t, m.URL+"/req?class=d&demand=0&w=0.5", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	if n.framesServed.Load() == 0 {
		t.Fatal("slave served no binary frames; transport fell back to HTTP")
	}
	if m.frameDials.Load() == 0 {
		t.Fatal("master recorded no frame upgrades")
	}
	if m.piggyTotal.Load() == 0 {
		t.Fatal("no piggybacked load report arrived over the frame transport")
	}
	if m.fresh.Stamp(1) == 0 {
		t.Fatal("freshness stamp for the slave never touched")
	}
	if got := m.frames.states[1].mode.Load(); got != frameModeBinary {
		t.Fatalf("negotiation state %d, want binary (%d)", got, frameModeBinary)
	}
}

// A peer that speaks HTTP but refuses the upgrade negotiates the pair
// down to HTTP permanently; requests still succeed over the fallback.
func TestFrameNegotiationFallback(t *testing.T) {
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/frame" {
			http.Error(w, "no such endpoint", http.StatusNotFound)
			return
		}
		w.Write(okBody) //nolint:errcheck
	}))
	defer legacy.Close()

	m := launchFrameMaster(t, Resilience{DisableShedding: true}, 0, legacy.URL)
	resp, _ := getStatus(t, m.URL+"/req?class=d&demand=0&w=0.5", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 over the HTTP fallback", resp.StatusCode)
	}
	if got := m.frames.states[1].mode.Load(); got != frameModeHTTP {
		t.Fatalf("negotiation state %d, want http-only (%d)", got, frameModeHTTP)
	}
	if m.frameDials.Load() != 0 {
		t.Fatal("fallback pair counted a frame upgrade")
	}
}

// An entry whose propagated deadline already passed is refused with 504
// by the slave's frame loop — deadline propagation is per entry, not
// per connection.
func TestFrameDeadlinePropagation(t *testing.T) {
	n, err := LaunchNode(NodeOptions{ID: 1, TimeScale: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	m := launchFrameMaster(t, Resilience{DisableShedding: true}, 0, n.URL)

	reqs := []frameExec{
		{demand: 0, w: 0.5, deadlineNs: time.Now().Add(-time.Second).UnixNano(), fork: true},
		{demand: 0, w: 0.5, deadlineNs: time.Now().Add(time.Minute).UnixNano(), fork: true},
	}
	sts, err, handled := m.frames.exchange(1, reqs, nil, time.Now().Add(5*time.Second))
	if err != nil || !handled {
		t.Fatalf("exchange: err=%v handled=%v", err, handled)
	}
	if sts[0] != http.StatusGatewayTimeout || sts[1] != http.StatusOK {
		t.Fatalf("statuses %v, want [504 200]", sts)
	}
	if n.DeadlineExpired() != 1 {
		t.Fatalf("slave deadline_expired=%d, want 1", n.DeadlineExpired())
	}
	if n.Executed() != 1 {
		t.Fatalf("slave executed=%d, want only the live entry", n.Executed())
	}
}

// A client deadline tighter than a slow slave's service turns into 502
// over the frame transport too (mirror of TestClientDeadlineExhausts).
func TestFrameClientDeadlineExhausts(t *testing.T) {
	// Calibrated slave: demand 0.3 really takes ~300 ms.
	n, err := LaunchNode(NodeOptions{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	m := launchFrameMaster(t, Resilience{DisableShedding: true}, 0, n.URL)

	h := http.Header{}
	h.Set(TimeoutHeader, "50")
	resp, _ := getStatus(t, m.URL+"/req?class=d&demand=0.3&w=0.5&idem=0", h)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 for an expired deadline", resp.StatusCode)
	}
	if m.Exhausted() != 1 || m.Served() != 0 {
		t.Fatalf("exhausted=%d served=%d, want 1/0", m.Exhausted(), m.Served())
	}
	if m.Accepted() != m.Served()+m.Shed()+m.Exhausted() {
		t.Fatal("terminal outcomes do not add up to accepted")
	}
}

// frameKiller upgrades and immediately drops the connection, emulating
// a slave that dies mid-exchange on the binary transport.
func frameKiller() *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/frame" {
			w.Write(okBody) //nolint:errcheck
			return
		}
		conn, _, err := w.(http.Hijacker).Hijack()
		if err != nil {
			return
		}
		conn.Write([]byte("HTTP/1.1 101 Switching Protocols\r\nConnection: Upgrade\r\nUpgrade: " + //nolint:errcheck
			frameProtocol + "\r\n\r\n"))
		conn.Close()
	}))
}

// A frame transport failure fails over to a distinct node and feeds the
// failing node's breaker, mirroring the HTTP-path retry semantics.
func TestFrameRetryFailoverAndBreaker(t *testing.T) {
	bad := frameKiller()
	defer bad.Close()
	good, err := LaunchNode(NodeOptions{ID: 2, TimeScale: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	defer good.Shutdown()

	m := launchFrameMaster(t, Resilience{DisableShedding: true}, 0, bad.URL, good.URL)
	resp, _ := getStatus(t, m.URL+"/req?class=d&demand=0&w=0.5", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 after failover", resp.StatusCode)
	}
	if m.Failovers() == 0 {
		t.Fatal("no failover recorded for the dead frame slave")
	}
	if good.framesServed.Load() == 0 {
		t.Fatal("failover target did not serve over the frame transport")
	}
	// FailureThreshold defaults to 1: the dead pair's breaker must be open.
	if m.BreakerState(1) != breakerOpen {
		t.Fatalf("bad slave breaker state %d, want open (%d)", m.BreakerState(1), breakerOpen)
	}
	if m.BreakerState(2) != breakerClosed {
		t.Fatalf("good slave breaker state %d, want closed (%d)", m.BreakerState(2), breakerClosed)
	}
}

// With a batch window, concurrent dynamics to one slave coalesce into
// shared frames and every caller still gets its own 200.
func TestBatchedDispatch(t *testing.T) {
	n, err := LaunchNode(NodeOptions{ID: 1, TimeScale: 1e-6, Uncalibrated: true})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	m := launchFrameMaster(t, Resilience{DisableShedding: true}, 2*time.Millisecond, n.URL)

	// Warm the pair so negotiation completes and batching engages.
	if resp, _ := getStatus(t, m.URL+"/req?class=d&demand=0&w=0.5", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status %d", resp.StatusCode)
	}

	const clients = 16
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			resp, err := http.Get(m.URL + "/req?class=d&demand=0&w=0.5")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = remoteStatusError(resp.StatusCode)
				}
			}
			errs <- err
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if m.batchesSent.Load() == 0 {
		t.Fatal("no coalesced frames shipped")
	}
	if m.batchedReqs.Load() < clients {
		t.Fatalf("batched %d requests, want at least %d", m.batchedReqs.Load(), clients)
	}
	if m.batchedReqs.Load() < m.batchesSent.Load() {
		t.Fatal("more batches than batched requests")
	}
	if n.Executed() != clients+1 {
		t.Fatalf("slave executed %d, want %d", n.Executed(), clients+1)
	}
}
