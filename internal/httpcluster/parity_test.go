package httpcluster

import (
	"testing"
	"time"

	"msweb/internal/core"
	"msweb/internal/policy"
	"msweb/internal/trace"
)

// parityView crafts a deterministic mixed-load scheduling view over two
// masters and three slaves.
func parityView() core.View {
	v := core.View{
		Masters: []int{0, 1},
		Slaves:  []int{2, 3, 4},
		Load:    make([]core.Load, 5),
	}
	for i := range v.Load {
		v.Load[i] = core.Load{
			CPUIdle:   0.15 + 0.17*float64(i),
			DiskAvail: 0.9 - 0.13*float64(i),
			CPUQueue:  (i * 3) % 5,
			DiskQueue: (i * 2) % 4,
			Speed:     1,
		}
	}
	return v
}

// copyView deep-copies a view so booking on one side cannot leak into
// the other.
func copyView(v core.View) core.View {
	out := v
	out.Masters = append([]int(nil), v.Masters...)
	out.Slaves = append([]int(nil), v.Slaves...)
	out.Load = append([]core.Load(nil), v.Load...)
	return out
}

// TestSimLivePolicyParity drives every registered policy preset through
// the live master's actual placement path (snapshot → refreshWorkView →
// Place under placeMu) and through a reference instance placing on an
// identical plain view — the way the simulator consumes policies. The
// decision streams must match exactly: both planes feed one pipeline
// implementation, and this test is what keeps them from drifting.
func TestSimLivePolicyParity(t *testing.T) {
	for _, preset := range policy.Presets() {
		preset := preset
		t.Run(preset.Name, func(t *testing.T) {
			const seed = 9
			live := preset.Build(nil, seed)
			ref := preset.Build(nil, seed)

			m, err := LaunchMaster(NodeOptions{
				ID:      0,
				Policy:  live,
				Masters: []int{0, 1},
				Slaves:  []int{2, 3, 4},
				NodeURLs: []string{
					"", "http://127.0.0.1:1", "http://127.0.0.1:1",
					"http://127.0.0.1:1", "http://127.0.0.1:1",
				},
				// Pushed far out so no background poll or tick replaces the
				// snapshot this test injects.
				LoadRefresh: time.Hour,
				PolicyTick:  time.Hour,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer m.Shutdown()

			// Mirror LaunchMaster's topology priming on the reference.
			initial := core.View{
				Masters: []int{0, 1},
				Slaves:  []int{2, 3, 4},
				Load:    make([]core.Load, 5),
			}
			for i := range initial.Load {
				initial.Load[i] = core.Load{CPUIdle: 1, DiskAvail: 1, Speed: 1}
			}
			ref.Tick(0, &initial)

			crafted := parityView()
			m.snap.Store(&loadSnapshot{epoch: 2, at: time.Now().UnixNano(), view: crafted})
			refView := copyView(crafted)

			for i := 0; i < 200; i++ {
				cls := trace.Dynamic
				if i%5 == 0 {
					cls = trace.Static
				}
				req := core.Request{Class: cls, Script: i % 4}

				m.placeMu.Lock()
				m.refreshWorkView()
				liveTarget := m.policy.Place(req, m.ID, &m.workView)
				m.placeMu.Unlock()

				refTarget := ref.Place(req, 0, &refView)
				if liveTarget != refTarget {
					t.Fatalf("request %d (%v): live master placed at %d, reference at %d",
						i, cls, liveTarget, refTarget)
				}

				// Feed both estimator sets identically, including periodic
				// adaptation, so reservation-based presets stay in lockstep.
				resp := 0.01 + float64(i%7)*0.003
				m.placeMu.Lock()
				m.policy.ObserveCompletion(cls, resp, 0.005)
				m.placeMu.Unlock()
				ref.ObserveCompletion(cls, resp, 0.005)
				if i%32 == 31 {
					now := float64(i)
					m.placeMu.Lock()
					m.refreshWorkView()
					m.policy.Tick(now, &m.workView)
					m.placeMu.Unlock()
					ref.Tick(now, &refView)
				}
			}
		})
	}
}

// TestLiveAbsorptionGateMatchesLegacyRules verifies the pipeline's
// absorption gate agrees with the legacy inline shedding rules the
// master used before the gate existed: the RSRC ceiling and the θ₂
// admission cap.
func TestLiveAbsorptionGateMatchesLegacyRules(t *testing.T) {
	for _, shedRSRC := range []float64{0, 2.5} {
		for _, idle := range []float64{0.05, 0.9} {
			pl := core.NewPipeline(core.PipelineConfig{Seed: 1, ShedRSRC: shedRSRC})
			v := parityView()
			v.Load[0].CPUIdle = idle
			v.Load[0].DiskAvail = idle

			legacy := false
			if shedRSRC > 0 && core.RSRC(core.DefaultW, idle, idle) >= shedRSRC {
				legacy = true
			} else if !pl.AdmitsAtMaster() {
				legacy = true
			}
			if got := pl.DeniesMasterAbsorption(0, &v); got != legacy {
				t.Fatalf("shedRSRC=%v idle=%v: gate says %v, legacy rules say %v",
					shedRSRC, idle, got, legacy)
			}
		}
	}
}

// TestLaunchMasterForwardsShedRSRC checks the wiring: Resilience.ShedRSRC
// reaches a pipeline policy's gate, so an overloaded lone master sheds
// by the same rule the options documented.
func TestLaunchMasterForwardsShedRSRC(t *testing.T) {
	pl := core.NewPipeline(core.PipelineConfig{Seed: 1})
	m, err := LaunchMaster(NodeOptions{
		ID:          0,
		Policy:      pl,
		Masters:     []int{0},
		Slaves:      nil,
		NodeURLs:    []string{""},
		LoadRefresh: time.Hour,
		PolicyTick:  time.Hour,
		Resilience:  Resilience{ShedRSRC: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()

	v := core.View{Masters: []int{0}, Load: []core.Load{{CPUIdle: 0.01, DiskAvail: 0.01}}}
	if !pl.DeniesMasterAbsorption(0, &v) {
		t.Fatalf("RSRC %.1f at ceiling 3: gate must deny absorption",
			core.RSRC(core.DefaultW, 0.01, 0.01))
	}
	relaxed := core.View{Masters: []int{0}, Load: []core.Load{{CPUIdle: 1, DiskAvail: 1}}}
	if pl.DeniesMasterAbsorption(0, &relaxed) && pl.AdmitsAtMaster() {
		t.Fatal("idle master under the ceiling must absorb")
	}
}

// TestDisciplineValidation exercises the unified discipline surface on
// the live plane: every registered name launches, anything else fails.
func TestDisciplineValidation(t *testing.T) {
	for _, d := range core.Disciplines() {
		n, err := LaunchNode(NodeOptions{ID: 0, Discipline: d})
		if err != nil {
			t.Fatalf("discipline %q: %v", d, err)
		}
		n.Shutdown()
	}
	if _, err := LaunchNode(NodeOptions{ID: 0, Discipline: "sjf"}); err == nil {
		t.Fatal("unknown discipline must be rejected")
	}
}
