// Package httpcluster is the live-execution substrate of the Table 3
// validation: a master/slave Web cluster made of real net/http servers
// on loopback, exercising the same core scheduling policies as the
// simulator — real TCP dispatch, real goroutine concurrency, real
// wall-clock timing, periodic load polling.
//
// Substitution note (see DESIGN.md): the paper validates on six Sun
// Ultra-1 workstations. Here every node's CPU and disk are *virtual
// time-shared resources*: a resource serves its queue in round-robin
// slices and "executes" a slice by sleeping wall-clock time. Sleeping
// goroutines cost no host CPU, so a laptop can faithfully emulate the
// queueing behaviour of N machines; the scheduling code paths (RSRC
// selection, reservation, load reporting) are identical to production
// paths. Node capability is calibrated like the paper's: 110 static
// requests/second per node.
package httpcluster

import (
	"sync"
	"time"

	"msweb/internal/metrics"
)

// rrJob is one unit of work on a virtual resource. Jobs are pooled:
// completion is signalled by a buffered send (not a close), so the
// channel survives reuse and the request path stops allocating a job
// and a channel per resource visit.
type rrJob struct {
	remaining time.Duration
	done      chan struct{}
}

var jobPool = sync.Pool{New: func() any { return &rrJob{done: make(chan struct{}, 1)} }}

// sleepResolution is the shortest slice worth a real sleep. Below OS
// timer granularity a sleep rounds *up* (a 3 µs request costs ~1 ms-class
// latency), so the substrate would deliver far more service than asked;
// sub-resolution inline grants are instead accounted as delivered
// instantly (round-down), the smaller of the two errors.
const sleepResolution = 20 * time.Microsecond

// Resource is a virtual time-shared device: jobs queue FIFO and are
// served in round-robin slices of at most quantum, approximating the
// processor-sharing behaviour of a real CPU (or the paper's round-robin
// disk queue). Concurrency-safe.
type Resource struct {
	quantum time.Duration

	mu      sync.Mutex
	queue   []*rrJob
	running bool
	util    *metrics.UtilizationTracker
	origin  time.Time
	closed  bool
}

// NewResource creates a resource with the given slicing quantum.
func NewResource(quantum time.Duration, origin time.Time) *Resource {
	if quantum <= 0 {
		quantum = 10 * time.Millisecond
	}
	return &Resource{
		quantum: quantum,
		util:    metrics.NewUtilizationTracker(0),
		origin:  origin,
	}
}

func (r *Resource) now() float64 { return time.Since(r.origin).Seconds() }

// Use blocks until d of virtual service has been delivered to the
// caller, sharing the resource round-robin with concurrent users.
// Non-positive durations return immediately.
func (r *Resource) Use(d time.Duration) {
	if d <= 0 {
		return
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	// Inline grant: an idle resource serving a job no longer than one
	// quantum would run exactly this job's single slice and nothing
	// else, so the caller sleeps in place — no job, no queue, no two
	// goroutine handoffs. Contended or long jobs take the queued path,
	// preserving round-robin fairness.
	if !r.running && len(r.queue) == 0 && d <= r.quantum {
		r.running = true
		r.util.SetBusy(r.now(), true)
		r.mu.Unlock()
		if d >= sleepResolution {
			time.Sleep(d)
		}
		r.mu.Lock()
		if len(r.queue) > 0 && !r.closed {
			// Arrivals queued behind the inline grant; hand them to a
			// serve goroutine (running stays true — we own the flag).
			go r.serve()
		} else {
			r.running = false
			r.util.SetBusy(r.now(), false)
		}
		r.mu.Unlock()
		return
	}
	j := jobPool.Get().(*rrJob)
	j.remaining = d
	r.queue = append(r.queue, j)
	if !r.running {
		r.running = true
		r.util.SetBusy(r.now(), true)
		go r.serve()
	}
	r.mu.Unlock()
	<-j.done
	jobPool.Put(j)
}

// serve drains the queue in round-robin slices.
func (r *Resource) serve() {
	for {
		r.mu.Lock()
		if len(r.queue) == 0 || r.closed {
			r.running = false
			r.util.SetBusy(r.now(), false)
			if r.closed {
				for _, j := range r.queue {
					j.done <- struct{}{}
				}
				r.queue = nil
			}
			r.mu.Unlock()
			return
		}
		j := r.queue[0]
		r.queue = r.queue[1:]
		slice := j.remaining
		if slice > r.quantum {
			slice = r.quantum
		}
		r.mu.Unlock()

		// Sleep overshoot (timer granularity, scheduler latency) is
		// counted as delivered service: otherwise every slice leaks a
		// fraction of the node's capacity and heavily loaded clusters
		// sit past their nominal utilization knee.
		start := time.Now()
		time.Sleep(slice)
		elapsed := time.Since(start)
		if elapsed < slice {
			elapsed = slice
		}
		j.remaining -= elapsed
		if j.remaining <= 0 {
			j.done <- struct{}{}
			continue
		}
		r.mu.Lock()
		if r.closed {
			j.done <- struct{}{}
			r.mu.Unlock()
			return
		}
		r.queue = append(r.queue, j)
		r.mu.Unlock()
	}
}

// QueueLength returns the number of queued (not yet finished) jobs.
func (r *Resource) QueueLength() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.queue)
	if r.running {
		n++
	}
	return n
}

// IdleRatio samples the idle fraction since the last call, resetting the
// window (the live analogue of the simulator's rstat window sample).
func (r *Resource) IdleRatio() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return 1 - r.util.WindowSample(r.now())
}

// BusyFraction returns the lifetime busy fraction without touching the
// rstat window — the read the /metrics exporter uses, so scrapes never
// disturb the load samples the masters poll.
func (r *Resource) BusyFraction() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.util.BusyFraction(r.now())
}

// Close unblocks all waiters; subsequent Use calls return immediately.
func (r *Resource) Close() {
	r.mu.Lock()
	r.closed = true
	queue := r.queue
	r.queue = nil
	r.mu.Unlock()
	for _, j := range queue {
		j.done <- struct{}{}
	}
}

// NodeResources bundles a node's virtual CPU and disk.
type NodeResources struct {
	CPU  *Resource
	Disk *Resource
}

// NewNodeResources creates a node's devices with the paper's quanta:
// 10 ms CPU slices, 2 ms disk bursts, both scaled by timeScale.
func NewNodeResources(origin time.Time, timeScale float64) *NodeResources {
	if timeScale <= 0 {
		timeScale = 1
	}
	return &NodeResources{
		CPU:  NewResource(time.Duration(float64(10*time.Millisecond)*timeScale), origin),
		Disk: NewResource(time.Duration(float64(2*time.Millisecond)*timeScale), origin),
	}
}

// Execute runs a request's work: alternating CPU and disk phases like
// the simulator's burst decomposition, but with two coarse phases per
// request (CPU share first, then disk), which the round-robin slicing
// interleaves with concurrent requests anyway.
func (n *NodeResources) Execute(demand time.Duration, w float64) {
	if w < 0 {
		w = 0
	}
	if w > 1 {
		w = 1
	}
	cpu := time.Duration(float64(demand) * w)
	disk := demand - cpu
	n.CPU.Use(cpu)
	n.Disk.Use(disk)
}

// Close shuts both devices down.
func (n *NodeResources) Close() {
	n.CPU.Close()
	n.Disk.Close()
}
