// Package httpcluster is the live-execution substrate of the Table 3
// validation: a master/slave Web cluster made of real net/http servers
// on loopback, exercising the same core scheduling policies as the
// simulator — real TCP dispatch, real goroutine concurrency, real
// wall-clock timing, periodic load polling.
//
// Substitution note (see DESIGN.md): the paper validates on six Sun
// Ultra-1 workstations. Here every node's CPU and disk are *virtual
// time-shared resources*: a resource serves its queue in round-robin
// slices and "executes" a slice by sleeping wall-clock time. Sleeping
// goroutines cost no host CPU, so a laptop can faithfully emulate the
// queueing behaviour of N machines; the scheduling code paths (RSRC
// selection, reservation, load reporting) are identical to production
// paths. Node capability is calibrated like the paper's: 110 static
// requests/second per node.
package httpcluster

import (
	"sync"
	"sync/atomic"
	"time"

	"msweb/internal/core"
	"msweb/internal/metrics"
)

// rrJob is one unit of work on a virtual resource. Jobs are pooled:
// completion is signalled by a buffered send (not a close), so the
// channel survives reuse and the request path stops allocating a job
// and a channel per resource visit.
type rrJob struct {
	remaining time.Duration
	done      chan struct{}
}

var jobPool = sync.Pool{New: func() any { return &rrJob{done: make(chan struct{}, 1)} }}

// sleepResolution is the shortest slice worth a real sleep. Below OS
// timer granularity a sleep rounds *up* (a 3 µs request costs ~1 ms-class
// latency), so the substrate would deliver far more service than asked;
// sub-resolution inline grants are instead accounted as delivered
// instantly (round-down), the smaller of the two errors.
const sleepResolution = 20 * time.Microsecond

// Resource is a virtual time-shared device: jobs queue FIFO and are
// served in round-robin slices of at most quantum, approximating the
// processor-sharing behaviour of a real CPU (or the paper's round-robin
// disk queue). Concurrency-safe.
type Resource struct {
	quantum time.Duration
	fast    bool

	mu      sync.Mutex
	queue   []*rrJob
	running bool
	util    *metrics.UtilizationTracker
	origin  time.Time
	closed  bool

	// Uncalibrated ("fast mode") accounting. With fast set, Use never
	// sleeps: demand is charged to a virtual clock instead, so /exec
	// completes at CPU speed while RSRC still sees the same busy time a
	// calibrated run would produce. vbusy accumulates delivered virtual
	// service; vhorizon is the virtual completion instant of all work
	// admitted so far (unixnano), whose excess over wall-clock now is
	// the virtual backlog behind QueueLength.
	vbusy    atomic.Int64
	vhorizon atomic.Int64
	// fastMu guards the rstat-window sample state below (cold path:
	// only load reports take it).
	fastMu       sync.Mutex
	fastLastWall int64 // unixnano of the last window sample
	fastLastBusy int64 // vbusy at the last window sample
}

// NewResource creates a resource with the given slicing quantum.
func NewResource(quantum time.Duration, origin time.Time) *Resource {
	if quantum <= 0 {
		quantum = 10 * time.Millisecond
	}
	return &Resource{
		quantum: quantum,
		util:    metrics.NewUtilizationTracker(0),
		origin:  origin,
	}
}

// NewFastResource creates an uncalibrated resource: demand is accounted
// on a virtual clock instead of being slept off, so callers return at
// CPU speed while load reports (IdleRatio, QueueLength, BusyFraction)
// still reflect the offered demand exactly as a calibrated resource's
// would under the same arrivals.
func NewFastResource(quantum time.Duration, origin time.Time) *Resource {
	r := NewResource(quantum, origin)
	r.fast = true
	now := time.Now()
	r.fastLastWall = now.UnixNano()
	return r
}

func (r *Resource) now() float64 { return time.Since(r.origin).Seconds() }

// Use blocks until d of virtual service has been delivered to the
// caller, sharing the resource round-robin with concurrent users.
// Non-positive durations return immediately.
func (r *Resource) Use(d time.Duration) {
	if d <= 0 {
		return
	}
	if r.fast {
		r.useFast(d)
		return
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	// Inline grant: an idle resource serving a job no longer than one
	// quantum would run exactly this job's single slice and nothing
	// else, so the caller sleeps in place — no job, no queue, no two
	// goroutine handoffs. Contended or long jobs take the queued path,
	// preserving round-robin fairness.
	if !r.running && len(r.queue) == 0 && d <= r.quantum {
		r.running = true
		r.util.SetBusy(r.now(), true)
		r.mu.Unlock()
		if d >= sleepResolution {
			time.Sleep(d)
		}
		r.mu.Lock()
		if len(r.queue) > 0 && !r.closed {
			// Arrivals queued behind the inline grant; hand them to a
			// serve goroutine (running stays true — we own the flag).
			go r.serve()
		} else {
			r.running = false
			r.util.SetBusy(r.now(), false)
		}
		r.mu.Unlock()
		return
	}
	j := jobPool.Get().(*rrJob)
	j.remaining = d
	r.queue = append(r.queue, j)
	if !r.running {
		r.running = true
		r.util.SetBusy(r.now(), true)
		go r.serve()
	}
	r.mu.Unlock()
	<-j.done
	jobPool.Put(j)
}

// serve drains the queue in round-robin slices.
func (r *Resource) serve() {
	for {
		r.mu.Lock()
		if len(r.queue) == 0 || r.closed {
			r.running = false
			r.util.SetBusy(r.now(), false)
			if r.closed {
				for _, j := range r.queue {
					j.done <- struct{}{}
				}
				r.queue = nil
			}
			r.mu.Unlock()
			return
		}
		j := r.queue[0]
		r.queue = r.queue[1:]
		slice := j.remaining
		if slice > r.quantum {
			slice = r.quantum
		}
		r.mu.Unlock()

		// Sleep overshoot (timer granularity, scheduler latency) is
		// counted as delivered service: otherwise every slice leaks a
		// fraction of the node's capacity and heavily loaded clusters
		// sit past their nominal utilization knee.
		start := time.Now()
		time.Sleep(slice)
		elapsed := time.Since(start)
		if elapsed < slice {
			elapsed = slice
		}
		j.remaining -= elapsed
		if j.remaining <= 0 {
			j.done <- struct{}{}
			continue
		}
		r.mu.Lock()
		if r.closed {
			j.done <- struct{}{}
			r.mu.Unlock()
			return
		}
		r.queue = append(r.queue, j)
		r.mu.Unlock()
	}
}

// useFast charges d to the virtual clock: two atomic updates, no sleep,
// no queue, no goroutine handoff. The horizon CAS treats the resource as
// a unit-rate server — work admitted while a backlog stands extends the
// backlog, exactly as it would extend the calibrated queue.
func (r *Resource) useFast(d time.Duration) {
	r.vbusy.Add(int64(d))
	now := time.Now().UnixNano()
	for {
		h := r.vhorizon.Load()
		nh := h
		if nh < now {
			nh = now
		}
		nh += int64(d)
		if r.vhorizon.CompareAndSwap(h, nh) {
			return
		}
	}
}

// QueueLength returns the number of queued (not yet finished) jobs. In
// fast mode the count is inferred from the virtual backlog in units of
// the slicing quantum (the calibrated resource's notion of "one job's
// worth of outstanding service"), so MaxQueue shedding and the
// least-loaded baseline keep a meaningful signal without wall-clock
// queues to count.
func (r *Resource) QueueLength() int {
	if r.fast {
		backlog := r.vhorizon.Load() - time.Now().UnixNano()
		if backlog <= 0 {
			return 0
		}
		return 1 + int(backlog/int64(r.quantum))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.queue)
	if r.running {
		n++
	}
	return n
}

// IdleRatio samples the idle fraction since the last call, resetting the
// window (the live analogue of the simulator's rstat window sample).
func (r *Resource) IdleRatio() float64 {
	if r.fast {
		return 1 - r.fastWindowSample()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return 1 - r.util.WindowSample(r.now())
}

// fastWindowSample returns the virtual busy fraction since the previous
// sample and advances the window — the same sample-and-reset contract
// as the calibrated UtilizationTracker window. Demand beyond capacity
// clamps at 1, as a saturated real resource would report.
func (r *Resource) fastWindowSample() float64 {
	now := time.Now().UnixNano()
	busy := r.vbusy.Load()
	r.fastMu.Lock()
	defer r.fastMu.Unlock()
	wallDelta := now - r.fastLastWall
	busyDelta := busy - r.fastLastBusy
	if wallDelta <= 0 {
		return 0
	}
	r.fastLastWall = now
	r.fastLastBusy = busy
	frac := float64(busyDelta) / float64(wallDelta)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}

// BusyFraction returns the lifetime busy fraction without touching the
// rstat window — the read the /metrics exporter uses, so scrapes never
// disturb the load samples the masters poll.
func (r *Resource) BusyFraction() float64 {
	if r.fast {
		wall := time.Since(r.origin)
		if wall <= 0 {
			return 0
		}
		frac := float64(r.vbusy.Load()) / float64(wall)
		if frac > 1 {
			frac = 1
		}
		return frac
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.util.BusyFraction(r.now())
}

// Close unblocks all waiters; subsequent Use calls return immediately.
func (r *Resource) Close() {
	r.mu.Lock()
	r.closed = true
	queue := r.queue
	r.queue = nil
	r.mu.Unlock()
	for _, j := range queue {
		j.done <- struct{}{}
	}
}

// NodeResources bundles a node's virtual CPU and disk.
type NodeResources struct {
	CPU  *Resource
	Disk *Resource
}

// NewNodeResources creates a node's devices with the paper's quanta:
// 10 ms CPU slices, 2 ms disk bursts, both scaled by timeScale. With
// uncalibrated set, both devices run in fast mode: service durations
// are charged to virtual clocks instead of being slept off, so the node
// executes at CPU speed while its load reports still reflect the
// offered demand (see NewFastResource).
//
// discipline selects the CPU scheduling discipline. The live resource
// slices by quantum, so core.DisciplineMLFQ and DisciplineRR are both
// the default 10 ms round-robin (there is no priority decay to feed an
// MLFQ); core.DisciplineFCFS stretches the quantum past any realistic
// service demand, so a request's CPU phase runs to completion once
// granted. An empty discipline means the default.
func NewNodeResources(origin time.Time, timeScale float64, uncalibrated bool, discipline string) *NodeResources {
	if timeScale <= 0 {
		timeScale = 1
	}
	mk := NewResource
	if uncalibrated {
		mk = NewFastResource
	}
	cpuQuantum := 10 * time.Millisecond
	if discipline == core.DisciplineFCFS {
		cpuQuantum = time.Hour // far beyond any demand: no preemption
	}
	return &NodeResources{
		CPU:  mk(time.Duration(float64(cpuQuantum)*timeScale), origin),
		Disk: mk(time.Duration(float64(2*time.Millisecond)*timeScale), origin),
	}
}

// Execute runs a request's work: alternating CPU and disk phases like
// the simulator's burst decomposition, but with two coarse phases per
// request (CPU share first, then disk), which the round-robin slicing
// interleaves with concurrent requests anyway.
func (n *NodeResources) Execute(demand time.Duration, w float64) {
	if w < 0 {
		w = 0
	}
	if w > 1 {
		w = 1
	}
	cpu := time.Duration(float64(demand) * w)
	disk := demand - cpu
	n.CPU.Use(cpu)
	n.Disk.Use(disk)
}

// Close shuts both devices down.
func (n *NodeResources) Close() {
	n.CPU.Close()
	n.Disk.Close()
}
