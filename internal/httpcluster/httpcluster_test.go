package httpcluster

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"msweb/internal/core"
)

func TestResourceDeliversService(t *testing.T) {
	r := NewResource(10*time.Millisecond, time.Now())
	start := time.Now()
	r.Use(30 * time.Millisecond)
	elapsed := time.Since(start)
	if elapsed < 28*time.Millisecond {
		t.Fatalf("30ms of service delivered in %v", elapsed)
	}
	if elapsed > 200*time.Millisecond {
		t.Fatalf("idle resource took %v for 30ms of service", elapsed)
	}
}

func TestResourceSharesRoundRobin(t *testing.T) {
	r := NewResource(5*time.Millisecond, time.Now())
	var wg sync.WaitGroup
	times := make([]time.Duration, 2)
	start := time.Now()
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Use(40 * time.Millisecond)
			times[i] = time.Since(start)
		}()
	}
	wg.Wait()
	// Total service is 80 ms. Serial (FIFO) service would finish the
	// first job at half the second job's time; round robin keeps both
	// running until near the end. Sleep overshoot counts as delivered
	// service, so on a loaded machine absolute times wobble — the
	// first/last finisher ratio is the load-robust discriminator:
	// ~0.5 for FIFO, ~1.0 for RR.
	first, last := times[0], times[1]
	if first > last {
		first, last = last, first
	}
	if last < 40*time.Millisecond {
		t.Fatalf("jobs finished at %v and %v; 80 ms of combined service cannot take < 40 ms", times[0], times[1])
	}
	if ratio := float64(first) / float64(last); ratio < 0.55 {
		t.Fatalf("first/last finisher ratio %.2f (%v, %v); FIFO-like, want round robin", ratio, times[0], times[1])
	}
}

func TestResourceZeroAndClosed(t *testing.T) {
	r := NewResource(5*time.Millisecond, time.Now())
	r.Use(0)  // returns immediately
	r.Use(-1) // returns immediately
	r.Close()
	done := make(chan struct{})
	go func() { r.Use(time.Hour); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Use on closed resource blocked")
	}
}

func TestResourceIdleRatio(t *testing.T) {
	r := NewResource(5*time.Millisecond, time.Now())
	_ = r.IdleRatio() // reset window
	r.Use(50 * time.Millisecond)
	idle := r.IdleRatio()
	if idle > 0.6 {
		t.Fatalf("idle ratio %v after a busy window", idle)
	}
	time.Sleep(50 * time.Millisecond)
	if idle := r.IdleRatio(); idle < 0.6 {
		t.Fatalf("idle ratio %v after an idle window", idle)
	}
}

func TestNodeExecEndpoint(t *testing.T) {
	n, err := LaunchNode(NodeOptions{ID: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()

	start := time.Now()
	resp, err := http.Get(n.URL + "/exec?demand=0.03&w=0.5&fork=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// 30 ms demand + 3 ms fork.
	if e := time.Since(start); e < 30*time.Millisecond {
		t.Fatalf("exec returned in %v, want ≥ 33ms", e)
	}
	if n.Executed() != 1 || n.CGIServed() != 1 {
		t.Fatalf("counters: executed=%d cgi=%d", n.Executed(), n.CGIServed())
	}
}

func TestNodeExecRejectsBadParams(t *testing.T) {
	n, err := LaunchNode(NodeOptions{ID: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	for _, q := range []string{"demand=-1&w=0.5", "demand=abc&w=0.5", "demand=0.01&w=zz"} {
		resp, err := http.Get(n.URL + "/exec?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("query %q: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestNodeLoadEndpoint(t *testing.T) {
	n, err := LaunchNode(NodeOptions{ID: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	resp, err := http.Get(n.URL + "/load")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep core.Load
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.CPUIdle < 0 || rep.CPUIdle > 1 || rep.DiskAvail < 0 || rep.DiskAvail > 1 {
		t.Fatalf("implausible load report: %+v", rep)
	}
}

func TestClusterStartAndDispatch(t *testing.T) {
	cfg := DefaultConfig(2, func(id int) core.Policy {
		return core.NewMS(nil, int64(id)+1)
	})
	cfg.Nodes = 4
	cfg.TimeScale = 0.25
	cfg.LoadRefresh = 25 * time.Millisecond
	cfg.PolicyTick = 50 * time.Millisecond
	c, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	if len(c.MasterURLs()) != 2 || len(c.Slaves) != 2 {
		t.Fatalf("topology: %d masters %d slaves", len(c.Masters), len(c.Slaves))
	}

	// A static request executes at the master.
	resp, err := http.Get(c.MasterURLs()[0] + "/req?class=s&demand=0.002&w=0.3&script=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("static status %d", resp.StatusCode)
	}
	if c.Masters[0].Executed() != 1 {
		t.Fatalf("master executed %d, want 1", c.Masters[0].Executed())
	}

	// Enough dynamics must reach the slave tier.
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := http.Get(c.MasterURLs()[0] + "/req?class=d&demand=0.02&w=0.9&script=1")
			if err == nil {
				r.Body.Close()
			}
		}()
	}
	wg.Wait()
	slaveRan := c.Slaves[0].Executed() + c.Slaves[1].Executed()
	if slaveRan == 0 {
		t.Fatal("no dynamic request reached the slave tier")
	}
	total := int64(0)
	for _, n := range c.NodeExecuted() {
		total += n
	}
	if total != 13 {
		t.Fatalf("cluster executed %d requests, want 13", total)
	}
}

func TestClusterValidate(t *testing.T) {
	bad := DefaultConfig(0, nil)
	if bad.Validate() == nil {
		t.Fatal("masters=0 with nil policy accepted")
	}
	cfg := DefaultConfig(2, func(int) core.Policy { return core.NewFlat() })
	cfg.Nodes = 1
	if cfg.Validate() == nil {
		t.Fatal("masters > nodes accepted")
	}
}

func TestMasterFailsOverOnDeadSlave(t *testing.T) {
	cfg := DefaultConfig(1, func(id int) core.Policy {
		return core.NewMS(nil, int64(id)+1)
	})
	cfg.Nodes = 3
	cfg.TimeScale = 0.25
	cfg.LoadRefresh = 20 * time.Millisecond
	cfg.PolicyTick = 50 * time.Millisecond
	c, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	// Kill one slave behind the master's back.
	c.Slaves[0].Shutdown()

	// Fire dynamics; every request must succeed despite the dead node.
	var wg sync.WaitGroup
	var failed int64
	var mu sync.Mutex
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := http.Get(c.MasterURLs()[0] + "/req?class=d&demand=0.02&w=0.9&script=1")
			ok := err == nil && r.StatusCode == http.StatusOK
			if r != nil {
				r.Body.Close()
			}
			if !ok {
				mu.Lock()
				failed++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if failed != 0 {
		t.Fatalf("%d requests failed despite failover", failed)
	}
	// The surviving slave and/or the master must have absorbed the work.
	absorbed := c.Slaves[1].Executed() + c.Masters[0].Executed()
	if absorbed != 16 {
		t.Fatalf("only %d requests absorbed by surviving nodes", absorbed)
	}
	// At least one forward error must have been recorded unless the
	// hold-down caught the dead node before the first placement.
	if c.Masters[0].Failovers() == 0 && c.Slaves[1].Executed()+c.Masters[0].Executed() != 16 {
		t.Fatal("no failovers and missing work")
	}
}

func TestResponseBodyCarriesRequestedSize(t *testing.T) {
	n, err := LaunchNode(NodeOptions{ID: 0, TimeScale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	resp, err := http.Get(n.URL + "/exec?demand=0.001&w=0.5&size=65536")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 128<<10)
	total := 0
	for {
		k, err := resp.Body.Read(buf)
		total += k
		if err != nil {
			break
		}
	}
	if total != 65536 {
		t.Fatalf("body was %d bytes, want 65536", total)
	}
}

func TestResponseBodyFallsBackOnBadSize(t *testing.T) {
	n, err := LaunchNode(NodeOptions{ID: 0, TimeScale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	for _, q := range []string{"", "&size=abc", "&size=-5", "&size=999999999999"} {
		resp, err := http.Get(n.URL + "/exec?demand=0.001&w=0.5" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("size query %q: status %d", q, resp.StatusCode)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	n, err := LaunchNode(NodeOptions{ID: 2, TimeScale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	r, err := http.Get(n.URL + "/exec?demand=0.002&w=0.5&fork=1")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()

	resp, err := http.Get(n.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep StatsReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Node != 2 || rep.Executed != 1 || rep.CGIServed != 1 || rep.UptimeS <= 0 {
		t.Fatalf("stats: %+v", rep)
	}
}
