package httpcluster

import (
	"io"
	"net/http"
	"strconv"
	"time"

	"msweb/internal/core"
	"msweb/internal/obs"
)

// Prometheus-text /metrics exporters. Every node serves its own
// counters, queue gauges and a log-scale service-time histogram; masters
// additionally publish the scheduler's adaptive state — the θ₂
// reservation cap, the measured arrival ratio a and service ratio r, and
// the per-node RSRC cost of the latest load view — so a scrape shows
// exactly what the placement decisions are being made from.
//
// Reads never disturb the scheduler: busy fractions come from
// Resource.BusyFraction (no rstat-window reset) and the view is read
// from the master's immutable snapshot — a scrape takes no lock the
// request path contends on (only the narrow histogram/policy shard).

const promContentType = "text/plain; version=0.0.4; charset=utf-8"

func (n *Node) handleMetrics(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", promContentType)
	n.writeMetrics(rw)
}

// writeMetrics emits the node-level families shared by slaves and
// masters.
func (n *Node) writeMetrics(w io.Writer) {
	label := `node="` + strconv.Itoa(n.ID) + `"`
	now := time.Since(n.origin).Seconds()

	executed, cgi := n.executed.Load(), n.cgiServed.Load()
	n.statsMu.Lock()
	rate := n.reqRate.Rate(now)
	hist := *n.svcHist // fixed-size value copy; safe outside the lock
	n.statsMu.Unlock()

	p := obs.NewPromWriter(w)
	p.Header("msweb_node_executed_total", "Requests executed by this node.", "counter")
	p.Value("msweb_node_executed_total", label, float64(executed))
	p.Header("msweb_node_cgi_served_total", "Forked (dynamic) requests executed by this node.", "counter")
	p.Value("msweb_node_cgi_served_total", label, float64(cgi))
	p.Header("msweb_node_cpu_queue", "Jobs queued or running on the virtual CPU.", "gauge")
	p.Value("msweb_node_cpu_queue", label, float64(n.res.CPU.QueueLength()))
	p.Header("msweb_node_disk_queue", "Jobs queued or running on the virtual disk.", "gauge")
	p.Value("msweb_node_disk_queue", label, float64(n.res.Disk.QueueLength()))
	p.Header("msweb_node_cpu_busy_fraction", "Lifetime CPU busy fraction.", "gauge")
	p.Value("msweb_node_cpu_busy_fraction", label, n.res.CPU.BusyFraction())
	p.Header("msweb_node_disk_busy_fraction", "Lifetime disk busy fraction.", "gauge")
	p.Value("msweb_node_disk_busy_fraction", label, n.res.Disk.BusyFraction())
	p.Header("msweb_node_request_rate", "Executed requests per second over the trailing 10s window.", "gauge")
	p.Value("msweb_node_request_rate", label, rate)
	p.Header("msweb_node_shed_total", "Work refused with 503 before queueing (MaxQueue admission).", "counter")
	p.Value("msweb_node_shed_total", label, float64(n.execShed.Load()))
	p.Header("msweb_node_deadline_expired_total", "Work refused with 504: its propagated deadline had already passed.", "counter")
	p.Value("msweb_node_deadline_expired_total", label, float64(n.deadlineExpired.Load()))
	p.Header("msweb_node_frames_served_total", "Binary exec frames answered over persistent connections.", "counter")
	p.Value("msweb_node_frames_served_total", label, float64(n.framesServed.Load()))
	p.Header("msweb_node_listener_shards", "SO_REUSEPORT accept sockets bound to this node's port.", "gauge")
	p.Value("msweb_node_listener_shards", label, float64(len(n.lis)))
	p.Header("msweb_node_frame_conns", "Live persistent frame connections tracked by this node.", "gauge")
	p.Value("msweb_node_frame_conns", label, float64(n.FrameConns()))
	p.Histogram("msweb_node_service_seconds", "Per-request service time at this node (unscaled seconds).", label, &hist)
}

func (m *Master) handleMetrics(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", promContentType)
	m.Node.writeMetrics(rw)

	label := `node="` + strconv.Itoa(m.ID) + `"`
	loads := m.snap.Load().view.Load // immutable snapshot; no copy needed
	failovers := m.failovers.Load()
	m.placeMu.Lock()
	hist := *m.respHist
	backoffs := *m.backoffHist
	var theta, a, r float64
	stats, hasStats := m.policy.(core.AdaptiveStats)
	if hasStats {
		theta, a, r = stats.ThetaLimit(), stats.ArrivalRatio(), stats.ServiceRatio()
	}
	m.placeMu.Unlock()

	p := obs.NewPromWriter(rw)
	p.Header("msweb_scheduler_policy_info", "Scheduling policy identity: constant 1, labeled with the pipeline's stage names.", "gauge")
	if pl, ok := m.policy.(*core.Pipeline); ok {
		p.Value("msweb_scheduler_policy_info",
			label+`,policy="`+pl.Name()+`",admission="`+pl.AdmissionName()+`",routing="`+pl.RoutingName()+`",scheduling="`+pl.Scheduling()+`"`, 1)
	} else {
		p.Value("msweb_scheduler_policy_info", label+`,policy="`+m.policy.Name()+`"`, 1)
	}
	if hasStats {
		p.Header("msweb_scheduler_theta2", "Reservation cap: max fraction of dynamics admitted at masters.", "gauge")
		p.Value("msweb_scheduler_theta2", label, theta)
		p.Header("msweb_scheduler_arrival_ratio", "Measured arrival-rate ratio a.", "gauge")
		p.Value("msweb_scheduler_arrival_ratio", label, a)
		p.Header("msweb_scheduler_service_ratio", "Measured service-rate ratio r.", "gauge")
		p.Value("msweb_scheduler_service_ratio", label, r)
	}
	p.Header("msweb_scheduler_rsrc", "RSRC cost of each node in this master's latest load view (w=0.5).", "gauge")
	for id, l := range loads {
		p.Value("msweb_scheduler_rsrc", `node="`+strconv.Itoa(id)+`"`, core.RSRC(core.DefaultW, l.CPUIdle, l.DiskAvail))
	}
	p.Header("msweb_master_failovers_total", "Dynamic requests re-placed after a remote execution failure.", "counter")
	p.Value("msweb_master_failovers_total", label, float64(failovers))
	p.Header("msweb_master_accepted_total", "Requests admitted past parameter validation at this master.", "counter")
	p.Value("msweb_master_accepted_total", label, float64(m.accepted.Load()))
	p.Header("msweb_master_shed_total", "Requests refused with 503 + Retry-After by overload protection.", "counter")
	if m.sharded {
		// Sharded masters split sheds by cause: steady-state overload vs
		// a shard-handoff window after an epoch move. Unsharded masters
		// keep the single unlabeled series (there is no rebalancing to
		// attribute to, and the exposition stays byte-identical).
		shedReb := m.shedRebalance.Load()
		p.Value("msweb_master_shed_total", label+`,reason="overload"`, float64(m.shedCount.Load()-shedReb))
		p.Value("msweb_master_shed_total", label+`,reason="rebalancing"`, float64(shedReb))
	} else {
		p.Value("msweb_master_shed_total", label, float64(m.shedCount.Load()))
	}
	p.Header("msweb_master_exhausted_total", "Dynamics dropped with 502 after the retry budget or deadline ran out.", "counter")
	p.Value("msweb_master_exhausted_total", label, float64(m.exhausted.Load()))
	p.Header("msweb_master_retries_total", "Placement attempts beyond each request's first.", "counter")
	p.Value("msweb_master_retries_total", label, float64(m.retryCount.Load()))
	p.Header("msweb_master_hedges_total", "Tail-hedge dispatches launched.", "counter")
	p.Value("msweb_master_hedges_total", label, float64(m.hedgeCount.Load()))
	p.Header("msweb_master_breaker_state", "Per-node circuit state seen by this master (0 closed, 1 half-open, 2 open).", "gauge")
	for id := range loads {
		p.Value("msweb_master_breaker_state", `node="`+strconv.Itoa(id)+`"`, float64(m.brk.State(id)))
	}
	p.Header("msweb_master_breaker_opens_total", "Per-node circuit open transitions at this master.", "counter")
	for id := range loads {
		p.Value("msweb_master_breaker_opens_total", `node="`+strconv.Itoa(id)+`"`, float64(m.brk.Opens(id)))
	}
	p.Header("msweb_master_piggyback_total", "Piggybacked load reports received on responses (all transports).", "counter")
	p.Value("msweb_master_piggyback_total", label, float64(m.piggyTotal.Load()))
	p.Header("msweb_master_poll_skipped_total", "Poll rounds skipped per node because a piggybacked report was younger than the poll interval.", "counter")
	p.Value("msweb_master_poll_skipped_total", label, float64(m.pollSkipped.Load()))
	p.Header("msweb_master_frame_dials_total", "Persistent binary-frame connections dialed and upgraded.", "counter")
	p.Value("msweb_master_frame_dials_total", label, float64(m.frameDials.Load()))
	p.Header("msweb_master_batches_total", "Coalesced exec frames shipped by the batch dispatchers.", "counter")
	p.Value("msweb_master_batches_total", label, float64(m.batchesSent.Load()))
	p.Header("msweb_master_batched_requests_total", "Dynamic requests carried inside coalesced exec frames.", "counter")
	p.Value("msweb_master_batched_requests_total", label, float64(m.batchedReqs.Load()))
	p.Header("msweb_master_view_staleness_seconds", "Age of this master's freshest load information per node (-1 = never updated).", "gauge")
	nowNs := time.Now().UnixNano()
	for id := range loads {
		p.Value("msweb_master_view_staleness_seconds", `node="`+strconv.Itoa(id)+`"`, m.fresh.AgeSeconds(id, nowNs))
	}
	p.Histogram("msweb_master_retry_backoff_seconds", "Retry backoff sleeps actually taken before re-placement.", label, &backoffs)
	p.Histogram("msweb_master_response_seconds", "Client-visible /req response time at this master (unscaled seconds).", label, &hist)

	if m.sharded {
		ms := m.mem.Load()
		p.Header("msweb_master_placement_local_total", "Requests served on this master's own shard.", "counter")
		p.Value("msweb_master_placement_local_total", label, float64(m.quality.Local.Load()))
		p.Header("msweb_master_placement_spilled_total", "Shed dynamics successfully spilled to a remote shard.", "counter")
		p.Value("msweb_master_placement_spilled_total", label, float64(m.quality.Spilled.Load()))
		p.Header("msweb_master_placement_spill_failures_total", "Failed spill dispatch attempts (each retried or shed).", "counter")
		p.Value("msweb_master_placement_spill_failures_total", label, float64(m.quality.SpillFailed.Load()))
		p.Header("msweb_master_shard_summaries_total", "Remote shard summaries folded in (gossip pulls + piggybacked).", "counter")
		p.Value("msweb_master_shard_summaries_total", label, float64(m.gossipRx.Load()))
		p.Header("msweb_master_shard_summary_age_seconds", "Age of the freshest summary held per remote shard (-1 = never heard).", "gauge")
		for s := 0; s < ms.sm.NumShards(); s++ {
			if s == ms.shard {
				continue
			}
			p.Value("msweb_master_shard_summary_age_seconds", `shard="`+strconv.Itoa(s)+`"`, m.shardFresh.AgeSeconds(s, nowNs))
		}
		p.Header("msweb_master_epoch", "Shard-map epoch this master currently operates under.", "gauge")
		p.Value("msweb_master_epoch", label, float64(ms.sm.Epoch()))
		p.Header("msweb_master_membership_applies_total", "Membership generations adopted by this master (newest-wins).", "counter")
		p.Value("msweb_master_membership_applies_total", label, float64(m.memberApplies.Load()))
	}
}
