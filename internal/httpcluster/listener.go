package httpcluster

import (
	"context"
	"net"
)

// Listener sharding: a node can accept on several SO_REUSEPORT sockets
// bound to one loopback port, each with its own accept loop, so the
// kernel spreads incoming connections (and thus the read side of the
// persistent frame transport) across accept queues instead of
// serializing every handshake behind a single listener goroutine. On a
// multi-core box this is what lets the data plane's socket layer scale
// with GOMAXPROCS; with one shard (the default) the behavior is
// byte-identical to the pre-sharding single listener.
//
// The option is best-effort portable: on platforms without
// SO_REUSEPORT support (see listener_other.go) — or when the setsockopt
// fails — multiListen falls back to one plain listener and reports the
// effective shard count, so callers never have to care whether the
// kernel cooperated.

// multiListen opens shards TCP listeners sharing one loopback
// address:port. The first listener picks the ephemeral port; the rest
// bind the same port via SO_REUSEPORT. Returns the listeners actually
// opened (length 1 on fallback).
func multiListen(shards int) ([]net.Listener, error) {
	if shards < 1 {
		shards = 1
	}
	if shards == 1 || !reuseportSupported {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		return []net.Listener{l}, nil
	}
	lc := net.ListenConfig{Control: reuseportControl}
	first, err := lc.Listen(context.Background(), "tcp", "127.0.0.1:0")
	if err != nil {
		// The reuseport control refused (hardened kernel, exotic
		// platform): portable fallback to the single-listener layout.
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		return []net.Listener{l}, nil
	}
	lis := []net.Listener{first}
	addr := first.Addr().String()
	for i := 1; i < shards; i++ {
		l, err := lc.Listen(context.Background(), "tcp", addr)
		if err != nil {
			for _, open := range lis {
				open.Close()
			}
			return nil, err
		}
		lis = append(lis, l)
	}
	return lis, nil
}
