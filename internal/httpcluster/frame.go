package httpcluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"msweb/internal/core"
	"msweb/internal/trace"
)

// Persistent binary framing for the master→slave /exec hop.
//
// The HTTP path costs a request-line + header parse, a header map, and
// a response writer per dispatch — fine at the paper's 110 req/s/node,
// measurable at 100k. The framing option replaces it with long-lived
// connections carrying length-prefixed binary frames: a master upgrades
// a connection once per node-pair (HTTP/1.1 Upgrade on GET /frame, so
// the negotiation rides the existing port and falls back cleanly when
// the peer predates the protocol), then exchanges fixed-layout exec
// batches on it. Frame buffers are connection-owned and reused, so the
// steady-state exchange allocates nothing on either side.
//
// Wire format (all integers little-endian):
//
//	frame    := u32 payloadLen | payload        (payloadLen ≤ 1 MiB)
//	exec     := ver(1) 'E' count(u16) count × entry
//	entry    := demand f64 | w f64 | deadlineNs i64 | flags u8
//	req      := ver(1) 'Q' count(u16) count × qentry
//	qentry   := demand f64 | w f64 | script u32 | timeoutMs u32 | flags u8
//	resp     := ver(1) 'R' count(u16) count × status(u16)
//	            hasLoad u8 [ cpuIdle f64 | diskAvail f64 |
//	                         cpuQueue i32 | diskQueue i32 | speed f64 ]
//	            [ hasSum u8 [ sumLen u16 | sumLen × byte ] ]
//
// 'E' frames carry master→slave exec dispatches; 'Q' frames carry
// client→master requests (the /req analogue, so external load drivers
// skip HTTP entirely — qentry flags: bit0 dynamic, bit1 idempotent).
// Statuses reuse HTTP codes (200 OK, 400 bad entry, 502 exhausted, 503
// shed, 504 deadline expired) so the master's retry/breaker
// classification is transport-independent. Every response carries the
// node's piggybacked load report, replacing a /load poll round trip;
// sharded masters append their own-shard summary (an s1 line) as the
// optional trailing block, which old readers simply never see (the
// block is absent, not truncated, when the server predates it).

const (
	// frameProtocol is the Upgrade token negotiated on GET /frame.
	frameProtocol = "msweb-frame/1"
	// frameVersion versions the payload layout.
	frameVersion = 1
	// frameKindExec / frameKindReq / frameKindResp tag payloads.
	frameKindExec = 'E'
	frameKindReq  = 'Q'
	frameKindResp = 'R'
	// maxFramePayload bounds a frame so a corrupt length prefix cannot
	// make a reader allocate unbounded memory.
	maxFramePayload = 1 << 20
	// maxFrameBatch bounds entries per exec frame.
	maxFrameBatch = 1024
	// execEntrySize is the fixed wire size of one exec entry.
	execEntrySize = 8 + 8 + 8 + 1
	// reqEntrySize is the fixed wire size of one client-request entry.
	reqEntrySize = 8 + 8 + 4 + 4 + 1
	// frameLoadSize is the fixed wire size of a piggybacked load report.
	frameLoadSize = 8 + 8 + 4 + 4 + 8

	execFlagFork = 1 << 0

	reqFlagDynamic = 1 << 0
	reqFlagIdem    = 1 << 1
)

// frameExec is one exec entry: the binary analogue of the /exec query.
type frameExec struct {
	demand, w  float64
	deadlineNs int64 // absolute UnixNano; 0 = none
	fork       bool
}

// frameReq is one client-request entry: the binary analogue of the
// /req query. timeoutMs is the relative deadline budget (0 = server
// default), matching the X-Msweb-Timeout-Ms header's semantics.
type frameReq struct {
	demand, w float64
	script    int
	timeoutMs int
	dynamic   bool
	idem      bool
}

// frame codec -------------------------------------------------------------

// appendExecFrame appends a complete length-prefixed exec frame.
func appendExecFrame(b []byte, reqs []frameExec) []byte {
	payload := 2 + 2 + len(reqs)*execEntrySize
	b = binary.LittleEndian.AppendUint32(b, uint32(payload))
	b = append(b, frameVersion, frameKindExec)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(reqs)))
	for i := range reqs {
		r := &reqs[i]
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.demand))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.w))
		b = binary.LittleEndian.AppendUint64(b, uint64(r.deadlineNs))
		var flags byte
		if r.fork {
			flags |= execFlagFork
		}
		b = append(b, flags)
	}
	return b
}

// appendReqFrame appends a complete length-prefixed client-request
// frame (the 'Q' kind external drivers send to a master).
func appendReqFrame(b []byte, reqs []frameReq) []byte {
	payload := 2 + 2 + len(reqs)*reqEntrySize
	b = binary.LittleEndian.AppendUint32(b, uint32(payload))
	b = append(b, frameVersion, frameKindReq)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(reqs)))
	for i := range reqs {
		r := &reqs[i]
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.demand))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.w))
		b = binary.LittleEndian.AppendUint32(b, uint32(int32(r.script)))
		b = binary.LittleEndian.AppendUint32(b, uint32(int32(r.timeoutMs)))
		var flags byte
		if r.dynamic {
			flags |= reqFlagDynamic
		}
		if r.idem {
			flags |= reqFlagIdem
		}
		b = append(b, flags)
	}
	return b
}

// appendRespFrame appends a complete length-prefixed response frame with
// per-entry statuses, the node's piggybacked load report, and (when sum
// is non-empty) the serving master's own-shard summary line.
func appendRespFrame(b []byte, statuses []int, load core.Load, sum []byte) []byte {
	payload := 2 + 2 + len(statuses)*2 + 1 + frameLoadSize + 1
	if len(sum) > 0 {
		payload += 2 + len(sum)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(payload))
	b = append(b, frameVersion, frameKindResp)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(statuses)))
	for _, st := range statuses {
		b = binary.LittleEndian.AppendUint16(b, uint16(st))
	}
	b = append(b, 1)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(load.CPUIdle))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(load.DiskAvail))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(load.CPUQueue)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(load.DiskQueue)))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(load.Speed))
	if len(sum) == 0 {
		return append(b, 0)
	}
	b = append(b, 1)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(sum)))
	return append(b, sum...)
}

var (
	errFrameShort   = errors.New("frame: truncated payload")
	errFrameVersion = errors.New("frame: unknown version")
	errFrameKind    = errors.New("frame: unexpected kind")
	errFrameCount   = errors.New("frame: entry count out of range")
)

// parseExecPayload decodes an exec payload, appending entries to dst.
// Malformed input returns an error; it never panics or reads past the
// payload (the fuzz harness's contract).
func parseExecPayload(payload []byte, dst []frameExec) ([]frameExec, error) {
	if len(payload) < 4 {
		return dst, errFrameShort
	}
	if payload[0] != frameVersion {
		return dst, errFrameVersion
	}
	if payload[1] != frameKindExec {
		return dst, errFrameKind
	}
	count := int(binary.LittleEndian.Uint16(payload[2:]))
	if count < 1 || count > maxFrameBatch {
		return dst, errFrameCount
	}
	body := payload[4:]
	if len(body) != count*execEntrySize {
		return dst, errFrameShort
	}
	for i := 0; i < count; i++ {
		e := body[i*execEntrySize:]
		dst = append(dst, frameExec{
			demand:     math.Float64frombits(binary.LittleEndian.Uint64(e)),
			w:          math.Float64frombits(binary.LittleEndian.Uint64(e[8:])),
			deadlineNs: int64(binary.LittleEndian.Uint64(e[16:])),
			fork:       e[24]&execFlagFork != 0,
		})
	}
	return dst, nil
}

// parseReqPayload decodes a client-request ('Q') payload, appending
// entries to dst. Same safety contract as parseExecPayload.
func parseReqPayload(payload []byte, dst []frameReq) ([]frameReq, error) {
	if len(payload) < 4 {
		return dst, errFrameShort
	}
	if payload[0] != frameVersion {
		return dst, errFrameVersion
	}
	if payload[1] != frameKindReq {
		return dst, errFrameKind
	}
	count := int(binary.LittleEndian.Uint16(payload[2:]))
	if count < 1 || count > maxFrameBatch {
		return dst, errFrameCount
	}
	body := payload[4:]
	if len(body) != count*reqEntrySize {
		return dst, errFrameShort
	}
	for i := 0; i < count; i++ {
		e := body[i*reqEntrySize:]
		flags := e[24]
		dst = append(dst, frameReq{
			demand:    math.Float64frombits(binary.LittleEndian.Uint64(e)),
			w:         math.Float64frombits(binary.LittleEndian.Uint64(e[8:])),
			script:    int(int32(binary.LittleEndian.Uint32(e[16:]))),
			timeoutMs: int(int32(binary.LittleEndian.Uint32(e[20:]))),
			dynamic:   flags&reqFlagDynamic != 0,
			idem:      flags&reqFlagIdem != 0,
		})
	}
	return dst, nil
}

// parseRespPayload decodes a response payload, appending statuses to
// dst and returning the piggybacked load report and, when the serving
// master attached one, its shard-summary line (aliasing payload — copy
// before the frame buffer is reused). Responses that end right after
// the load block (peers predating the summary extension) parse as
// summary-less rather than short.
func parseRespPayload(payload []byte, dst []int) ([]int, core.Load, bool, []byte, error) {
	var load core.Load
	if len(payload) < 4 {
		return dst, load, false, nil, errFrameShort
	}
	if payload[0] != frameVersion {
		return dst, load, false, nil, errFrameVersion
	}
	if payload[1] != frameKindResp {
		return dst, load, false, nil, errFrameKind
	}
	count := int(binary.LittleEndian.Uint16(payload[2:]))
	if count < 1 || count > maxFrameBatch {
		return dst, load, false, nil, errFrameCount
	}
	body := payload[4:]
	if len(body) < count*2+1 {
		return dst, load, false, nil, errFrameShort
	}
	for i := 0; i < count; i++ {
		dst = append(dst, int(binary.LittleEndian.Uint16(body[i*2:])))
	}
	body = body[count*2:]
	hasLoad := body[0] != 0
	body = body[1:]
	if hasLoad {
		if len(body) < frameLoadSize {
			return dst, load, false, nil, errFrameShort
		}
		load.CPUIdle = math.Float64frombits(binary.LittleEndian.Uint64(body))
		load.DiskAvail = math.Float64frombits(binary.LittleEndian.Uint64(body[8:]))
		load.CPUQueue = int(int32(binary.LittleEndian.Uint32(body[16:])))
		load.DiskQueue = int(int32(binary.LittleEndian.Uint32(body[20:])))
		load.Speed = math.Float64frombits(binary.LittleEndian.Uint64(body[24:]))
		body = body[frameLoadSize:]
	}
	sum, err := parseRespSummary(body)
	if err != nil {
		return dst, load, false, nil, err
	}
	return dst, load, hasLoad, sum, nil
}

// parseRespSummary decodes the optional trailing summary block.
func parseRespSummary(body []byte) ([]byte, error) {
	if len(body) == 0 {
		return nil, nil // pre-extension peer: no block at all
	}
	hasSum := body[0] != 0
	body = body[1:]
	if !hasSum {
		if len(body) != 0 {
			return nil, errFrameShort
		}
		return nil, nil
	}
	if len(body) < 2 {
		return nil, errFrameShort
	}
	n := int(binary.LittleEndian.Uint16(body))
	body = body[2:]
	if len(body) != n || n == 0 {
		return nil, errFrameShort
	}
	return body, nil
}

// readFrame reads one length-prefixed frame into buf (grown as needed)
// and returns the payload slice aliasing buf.
func readFrame(br *bufio.Reader, buf []byte) (payload, nbuf []byte, err error) {
	// Read the prefix byte-wise through the concrete reader: a stack
	// [4]byte handed to io.ReadFull escapes through the interface and
	// costs one heap allocation per frame.
	var n int
	for shift := 0; shift < 32; shift += 8 {
		b, err := br.ReadByte()
		if err != nil {
			if shift > 0 && err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, buf, err
		}
		n |= int(b) << shift
	}
	if n < 1 || n > maxFramePayload {
		return nil, buf, fmt.Errorf("frame: payload length %d out of range", n)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, buf, err
	}
	return buf, buf, nil
}

// statusToErr maps a frame status to the dispatch error taxonomy, the
// same classification the HTTP forward path applies to response codes.
func statusToErr(st int) error {
	switch st {
	case http.StatusOK:
		return nil
	case http.StatusGatewayTimeout:
		return errDeadline
	default:
		return remoteStatusError(st)
	}
}

// slave side --------------------------------------------------------------

// handleFrame negotiates the binary protocol: an Upgrade request hijacks
// the connection out of net/http and hands it to the frame loop. Peers
// that ask for anything else get a plain HTTP error — which a
// negotiating master reads as "HTTP only", keeping old and new nodes
// interoperable in one cluster.
func (n *Node) handleFrame(rw http.ResponseWriter, req *http.Request) {
	if !strings.EqualFold(req.Header.Get("Upgrade"), frameProtocol) {
		http.Error(rw, "unsupported upgrade", http.StatusBadRequest)
		return
	}
	hj, ok := rw.(http.Hijacker)
	if !ok {
		http.Error(rw, "hijack unsupported", http.StatusInternalServerError)
		return
	}
	conn, brw, err := hj.Hijack()
	if err != nil {
		return
	}
	if _, err := brw.WriteString("HTTP/1.1 101 Switching Protocols\r\nConnection: Upgrade\r\nUpgrade: " +
		frameProtocol + "\r\n\r\n"); err != nil || brw.Flush() != nil {
		conn.Close()
		return
	}
	shard, ok := n.trackFrameConn(conn)
	if !ok {
		conn.Close() // shutting down
		return
	}
	defer n.untrackFrameConn(shard, conn)
	defer conn.Close()
	n.serveFrames(conn, brw.Reader)
}

// frameConnShard is one slot of the sharded frame-connection registry —
// per-listener-shard pools, so connection churn on one accept loop never
// takes a lock any other loop's connections contend on.
type frameConnShard struct {
	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// trackFrameConn registers a hijacked frame connection so Shutdown can
// close it (hijacked connections are invisible to http.Server.Shutdown),
// returning the registry shard it landed in. ok is false when the node
// is already shutting down.
func (n *Node) trackFrameConn(c net.Conn) (shard int, ok bool) {
	shard = int(n.frameSeq.Add(1) % uint64(len(n.frameReg)))
	reg := &n.frameReg[shard]
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if n.frameClosed.Load() {
		return 0, false
	}
	if reg.conns == nil {
		reg.conns = make(map[net.Conn]struct{})
	}
	reg.conns[c] = struct{}{}
	n.frameWG.Add(1)
	return shard, true
}

func (n *Node) untrackFrameConn(shard int, c net.Conn) {
	reg := &n.frameReg[shard]
	reg.mu.Lock()
	delete(reg.conns, c)
	reg.mu.Unlock()
	n.frameWG.Done()
}

// FrameConns reports the live hijacked frame connections across every
// registry shard.
func (n *Node) FrameConns() int {
	total := 0
	for i := range n.frameReg {
		reg := &n.frameReg[i]
		reg.mu.Lock()
		total += len(reg.conns)
		reg.mu.Unlock()
	}
	return total
}

// closeFrameConns kills every live frame connection and waits for their
// loops to exit; subsequent upgrades are refused. The closed flag is
// flipped first, so a track racing the per-shard walk either lands in
// the map before the walk locks its shard (and is closed by it) or
// observes the flag and refuses.
func (n *Node) closeFrameConns() {
	n.frameClosed.Store(true)
	for i := range n.frameReg {
		reg := &n.frameReg[i]
		reg.mu.Lock()
		for c := range reg.conns {
			c.Close()
		}
		reg.mu.Unlock()
	}
	n.frameWG.Wait()
}

// serveFrames is one connection's exchange loop, dispatching on the
// payload kind: 'E' exec batches run on the node's resources, 'Q'
// client batches run through a master's full /req pipeline (refused
// entry-wise with 501 on plain nodes). All scratch is connection-owned,
// so a steady-state exchange allocates nothing. A malformed frame drops
// the connection: the peer is either corrupt or hostile, and the master
// will fall back to a fresh dial.
func (n *Node) serveFrames(conn net.Conn, br *bufio.Reader) {
	var buf, out []byte
	var reqs []frameExec
	var creqs []frameReq
	var statuses []int
	for {
		payload, nbuf, err := readFrame(br, buf)
		buf = nbuf
		if err != nil {
			return
		}
		count := 0
		if len(payload) >= 2 && payload[1] == frameKindReq {
			creqs, err = parseReqPayload(payload, creqs[:0])
			count = len(creqs)
		} else {
			reqs, err = parseExecPayload(payload, reqs[:0])
			count = len(reqs)
		}
		if err != nil {
			return
		}
		if cap(statuses) < count {
			statuses = make([]int, count)
		}
		statuses = statuses[:count]
		if len(creqs) > 0 {
			if n.serveClientFrames == nil {
				for i := range statuses {
					statuses[i] = http.StatusNotImplemented
				}
			} else {
				n.serveClientFrames(creqs, statuses)
			}
			creqs = creqs[:0]
		} else {
			n.runFrameBatch(reqs, statuses)
		}
		n.framesServed.Add(1)
		var sum []byte
		if s := n.shardWire.Load(); s != nil {
			sum = s.wire
		}
		out = appendRespFrame(out[:0], statuses, n.currentLoad().load, sum)
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}

// runFrameBatch executes a batch's entries. Single entries (and fast
// mode, where execution never sleeps) run inline; calibrated batches run
// concurrently so one frame's entries share the virtual resources the
// way separate HTTP dispatches would, instead of serializing sleeps.
func (n *Node) runFrameBatch(reqs []frameExec, statuses []int) {
	if len(reqs) == 1 || n.res.CPU.fast {
		for i := range reqs {
			statuses[i] = n.execOne(reqs[i])
		}
		return
	}
	done := make(chan int, len(reqs)-1)
	for i := 1; i < len(reqs); i++ {
		go func(i int) {
			statuses[i] = n.execOne(reqs[i])
			done <- i
		}(i)
	}
	statuses[0] = n.execOne(reqs[0])
	for i := 1; i < len(reqs); i++ {
		<-done
	}
}

// execOne runs one exec request through the node's admission checks and
// virtual resources, returning an HTTP-style status. Shared by the HTTP
// /exec handler and the frame loop so the two transports cannot drift
// on shedding or deadline semantics.
func (n *Node) execOne(r frameExec) int {
	if r.demand < 0 || math.IsNaN(r.demand) || math.IsInf(r.demand, 0) || math.IsNaN(r.w) {
		return http.StatusBadRequest
	}
	if n.maxQueue > 0 && n.res.CPU.QueueLength()+n.res.Disk.QueueLength() >= n.maxQueue {
		// Shed before queueing: refusing now costs the master one cheap
		// retry, while queueing would tax every later request with the
		// backlog this one joins.
		n.execShed.Add(1)
		return http.StatusServiceUnavailable
	}
	if r.deadlineNs > 0 && time.Now().UnixNano() >= r.deadlineNs {
		n.deadlineExpired.Add(1)
		return http.StatusGatewayTimeout
	}
	n.runWork(r.demand, r.w, r.fork)
	return http.StatusOK
}

// master side -------------------------------------------------------------

// Negotiation states for one node-pair.
const (
	frameModeUnknown int32 = iota
	frameModeBinary
	frameModeHTTP
)

// frameIdleCap bounds the idle framed connections pooled per target.
const frameIdleCap = 64

// frameConn is one upgraded connection with its connection-owned
// scratch.
type frameConn struct {
	c   net.Conn
	br  *bufio.Reader
	buf []byte
}

// frameNodeState is a master's per-target framing state.
type frameNodeState struct {
	mode atomic.Int32
	idle chan *frameConn
	bat  atomic.Pointer[execBatcher]
}

// frameDialer is a master's framing client: per-target negotiation
// state, pooled persistent connections, and (when configured) the batch
// dispatchers.
type frameDialer struct {
	m      *Master
	states []frameNodeState
}

func newFrameDialer(m *Master, n int) *frameDialer {
	f := &frameDialer{m: m, states: make([]frameNodeState, n)}
	for i := range f.states {
		f.states[i].idle = make(chan *frameConn, frameIdleCap)
	}
	return f
}

// close drains and closes every pooled connection.
func (f *frameDialer) close() {
	for i := range f.states {
		for {
			select {
			case fc := <-f.states[i].idle:
				fc.c.Close()
			default:
				goto next
			}
		}
	next:
	}
}

var errMasterStopped = errors.New("frame: master shutting down")

// acquire returns a framed connection to target, dialing and upgrading
// when the pool is empty. handled=false means the peer negotiated down
// to HTTP (permanently for this pair); the caller must take the HTTP
// path.
func (f *frameDialer) acquire(target int, deadline time.Time) (fc *frameConn, err error, handled bool) {
	st := &f.states[target]
	select {
	case fc := <-st.idle:
		return fc, nil, true
	default:
	}
	if st.mode.Load() == frameModeHTTP {
		return nil, nil, false
	}
	base := f.m.nodeURL(target)
	if base == "" {
		return nil, fmt.Errorf("no URL for node %d", target), true
	}
	addr := strings.TrimPrefix(base, "http://")
	dialTO := time.Until(deadline)
	if dialTO <= 0 {
		return nil, errDeadline, true
	}
	if dialTO > 5*time.Second {
		dialTO = 5 * time.Second
	}
	c, err := net.DialTimeout("tcp", addr, dialTO)
	if err != nil {
		return nil, err, true
	}
	c.SetDeadline(deadline) //nolint:errcheck
	if _, err := io.WriteString(c, "GET /frame HTTP/1.1\r\nHost: "+addr+
		"\r\nConnection: Upgrade\r\nUpgrade: "+frameProtocol+"\r\n\r\n"); err != nil {
		c.Close()
		return nil, err, true
	}
	br := bufio.NewReaderSize(c, 4<<10)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		c.Close()
		return nil, err, true
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		// A well-formed refusal: the peer speaks HTTP but not frames.
		// Remember that for the pair and fall back.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10)) //nolint:errcheck
		resp.Body.Close()
		c.Close()
		st.mode.Store(frameModeHTTP)
		return nil, nil, false
	}
	resp.Body.Close()
	st.mode.Store(frameModeBinary)
	f.m.frameDials.Add(1)
	return &frameConn{c: c, br: br}, nil, true
}

// release returns a healthy connection to the pool (or closes it when
// the pool is full).
func (f *frameDialer) release(target int, fc *frameConn) {
	select {
	case f.states[target].idle <- fc:
	default:
		fc.c.Close()
	}
}

// exchange performs one framed request/response round trip: statuses
// for every entry are appended to dst, and the response's piggybacked
// load report is folded into the master's view. Any transport or
// protocol error closes the connection (the next call dials fresh).
func (f *frameDialer) exchange(target int, reqs []frameExec, dst []int, deadline time.Time) (statuses []int, err error, handled bool) {
	fc, err, handled := f.acquire(target, deadline)
	if !handled || err != nil {
		return dst, err, handled
	}
	fc.c.SetDeadline(deadline) //nolint:errcheck
	fc.buf = appendExecFrame(fc.buf[:0], reqs)
	if _, err := fc.c.Write(fc.buf); err != nil {
		fc.c.Close()
		return dst, err, true
	}
	payload, nbuf, err := readFrame(fc.br, fc.buf)
	fc.buf = nbuf
	if err != nil {
		fc.c.Close()
		return dst, err, true
	}
	dst, load, hasLoad, sum, err := parseRespPayload(payload, dst)
	if err != nil || len(dst) != len(reqs) {
		fc.c.Close()
		if err == nil {
			err = errFrameCount
		}
		return dst, err, true
	}
	if hasLoad {
		f.m.storePiggy(target, load)
	}
	if len(sum) > 0 {
		// A sharded peer answered: fold its shard summary before the
		// frame buffer (which sum aliases) is reused.
		f.m.storeShardSummaryWire(sum)
	}
	f.release(target, fc)
	return dst, nil, true
}

// forwardFrame executes one dynamic request over the binary transport,
// batching when configured and the pair has negotiated frames. The
// boolean reports whether the frame path handled the request; false
// sends the caller to HTTP.
func (m *Master) forwardFrame(target int, p reqParams, deadline time.Time) (error, bool) {
	f := m.frames
	req := frameExec{demand: p.demand, w: p.w, deadlineNs: deadline.UnixNano(), fork: true}
	if m.batchWindow > 0 && f.states[target].mode.Load() == frameModeBinary {
		return f.batchExec(target, req), true
	}
	call := execCallPool.Get().(*execCall)
	defer execCallPool.Put(call)
	call.reqs[0] = req
	sts, err, handled := f.exchange(target, call.reqs[:], call.sts[:0], deadline)
	if !handled || err != nil {
		return err, handled
	}
	return statusToErr(sts[0]), true
}

// execCall carries one request through the frame path (and, when
// batching, to its batcher) without allocating per dispatch.
type execCall struct {
	reqs [1]frameExec
	sts  [1]int
	done chan error
}

// runFrameReqs serves a 'Q' batch through the master's /req pipeline —
// the hook behind Node.serveClientFrames. Entries run concurrently
// (each may block in dispatch or virtual work), mirroring how separate
// HTTP /req calls would interleave.
func (m *Master) runFrameReqs(reqs []frameReq, statuses []int) {
	if len(reqs) == 1 {
		statuses[0] = m.serveFrameReq(reqs[0])
		return
	}
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i] = m.serveFrameReq(reqs[i])
		}(i)
	}
	wg.Wait()
}

// serveFrameReq adapts one 'Q' entry to serveReq, returning the same
// status taxonomy /req answers with (200, 400, 502, 503).
func (m *Master) serveFrameReq(r frameReq) int {
	if r.demand < 0 || math.IsNaN(r.demand) || math.IsInf(r.demand, 0) || math.IsNaN(r.w) {
		return http.StatusBadRequest
	}
	p := reqParams{demand: r.demand, w: r.w, demandOK: true, wOK: true,
		script: r.script, idem: r.idem}
	if r.dynamic {
		p.class = trace.Dynamic
	}
	start := time.Now()
	deadline := start.Add(m.rs.DispatchTimeout)
	if r.timeoutMs > 0 {
		if d := start.Add(time.Duration(r.timeoutMs) * time.Millisecond); d.Before(deadline) {
			deadline = d
		}
	}
	status, _ := m.serveReq(p, start, deadline)
	if status == 0 {
		return http.StatusOK
	}
	return status
}
