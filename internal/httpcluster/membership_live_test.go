package httpcluster

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"msweb/internal/core"
)

// postMembershipLine POSTs an m1 line to a master's /membership and
// returns the response.
func postMembershipLine(t *testing.T, m *Master, mb core.Membership) *http.Response {
	t.Helper()
	wire := mb.AppendWire(nil)
	resp, err := http.Post(m.URL+MembershipPath, core.MembershipWireContentType,
		strings.NewReader(string(wire)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// The membership endpoint round-trips the epoch-versioned topology:
// GET serves the current m1 line, POST folds one in newest-wins (204 on
// adoption, 200 + the newer current line otherwise), and unsharded
// masters answer 404 like /shard.
func TestMembershipEndpoint(t *testing.T) {
	m := launchShardedTestMaster(t, Resilience{DisableShedding: true},
		"http://192.0.2.1:1", "http://192.0.2.1:2")

	resp, body := getStatus(t, m.URL+MembershipPath, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /membership: status %d", resp.StatusCode)
	}
	var mb core.Membership
	if err := core.ParseMembership([]byte(body), &mb); err != nil {
		t.Fatalf("GET body %q: %v", body, err)
	}
	if mb.Epoch != 0 || len(mb.Masters) != 2 || len(mb.Slaves) != 2 {
		t.Fatalf("initial membership %+v, want epoch 0 with 2 masters / 2 slaves", mb)
	}

	// A newer epoch is adopted: 204, and the master's map moves.
	next := mb.Clone()
	next.Epoch = 1
	next.Masters = []int{0}
	next.Slaves = []int{1, 2, 3}
	if resp := postMembershipLine(t, m, next); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("POST newer membership: status %d, want 204", resp.StatusCode)
	}
	if got := m.Epoch(); got != 1 {
		t.Fatalf("epoch %d after adopting epoch-1 membership, want 1", got)
	}
	if applies := m.memberApplies.Load(); applies != 1 {
		t.Fatalf("memberApplies %d, want 1", applies)
	}

	// Replays and stale lines are refused with the current (newer) line,
	// so a lagging sender converges from the response.
	stale := postMembershipLine(t, m, mb) // epoch 0 again
	if stale.StatusCode != http.StatusOK {
		t.Fatalf("POST stale membership: status %d, want 200", stale.StatusCode)
	}
	b := make([]byte, 256)
	n, _ := stale.Body.Read(b)
	var cur core.Membership
	if err := core.ParseMembership(b[:n], &cur); err != nil || cur.Epoch != 1 {
		t.Fatalf("stale POST answered %q (err %v), want the epoch-1 line", b[:n], err)
	}
	if got := m.Epoch(); got != 1 {
		t.Fatalf("epoch moved to %d on a stale POST, want to stay at 1", got)
	}

	// Unsharded masters have no membership to exchange.
	um := launchTestMaster(t, Resilience{DisableShedding: true}, "http://192.0.2.1:1")
	if resp, _ := getStatus(t, um.URL+MembershipPath, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unsharded GET /membership: status %d, want 404", resp.StatusCode)
	}
}

// Adopting a membership rebalances the whole derived topology in one
// swap: shard map, poll set, view tier lists, and the own-shard stamp
// all reflect the new epoch immediately — no poll round in between. A
// master dropped from the tier demotes cleanly: it stops advertising a
// shard (404 on /shard) and schedules only onto itself.
func TestApplyMembershipRebalanceAndDemotion(t *testing.T) {
	m := launchShardedTestMaster(t, Resilience{DisableShedding: true},
		"http://192.0.2.1:1", "http://192.0.2.1:2")

	// Peer master 1 leaves: master 0 absorbs every slave.
	applied, err := m.ApplyMembership(core.Membership{
		Epoch: 1, Mode: core.ShardStatic, Masters: []int{0}, Slaves: []int{2, 3},
	})
	if err != nil || !applied {
		t.Fatalf("apply: applied=%v err=%v", applied, err)
	}
	ms := m.mem.Load()
	if ms.shard != 0 || len(ms.slaves) != 2 {
		t.Fatalf("memState shard=%d slaves=%v, want shard 0 owning both slaves", ms.shard, ms.slaves)
	}
	snap := m.snap.Load()
	if len(snap.view.Slaves) != 2 {
		t.Fatalf("snapshot slaves %v published on apply, want both", snap.view.Slaves)
	}
	if until := m.rebalanceUntil.Load(); until <= time.Now().Add(-time.Second).UnixNano() {
		t.Fatalf("rebalance window not opened (until=%d)", until)
	}
	// The refreshed stamp carries the new epoch (an s2 line now).
	resp, body := getStatus(t, m.URL+"/shard", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /shard: status %d", resp.StatusCode)
	}
	var sum core.ShardSummary
	if err := core.ParseShardSummary([]byte(body), &sum); err != nil {
		t.Fatalf("shard body %q: %v", body, err)
	}
	if sum.Epoch != 1 || sum.Nodes != 2 {
		t.Fatalf("own summary %+v after rebalance, want epoch 1 over 2 nodes", sum)
	}

	// Now master 0 itself is demoted out of the tier.
	applied, err = m.ApplyMembership(core.Membership{
		Epoch: 2, Mode: core.ShardStatic, Masters: []int{1}, Slaves: []int{0, 2, 3},
	})
	if err != nil || !applied {
		t.Fatalf("demoting apply: applied=%v err=%v", applied, err)
	}
	ms = m.mem.Load()
	if ms.shard != -1 {
		t.Fatalf("demoted master still owns shard %d", ms.shard)
	}
	if len(ms.pollSet) != 1 || ms.pollSet[0] != 0 {
		t.Fatalf("demoted poll set %v, want just itself", ms.pollSet)
	}
	if resp, _ := getStatus(t, m.URL+"/shard", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("demoted GET /shard: status %d, want 404", resp.StatusCode)
	}
	// Demoted ≠ dead: it still serves requests, locally.
	if resp, _ := getStatus(t, m.URL+"/req?class=d&demand=0&w=0.5", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("demoted /req: status %d, want 200 (local execution)", resp.StatusCode)
	}
}

// Summary ordering across epochs is (epoch, AtNs) with epoch dominant:
// a pre-rebalance summary — however fresh its owner clock stamp — must
// never overwrite a post-rebalance one, and anything two epochs behind
// the local map is dropped outright. This pins the stale-wire hazard
// the epoch field exists for: an s1 line (epoch 0) re-delivered after
// the tier moved on.
func TestSummaryNewestWinsAcrossEpochs(t *testing.T) {
	m := launchShardedTestMaster(t, Resilience{DisableShedding: true},
		"http://192.0.2.1:1", "http://192.0.2.1:2")

	now := time.Now().UnixNano()
	m.storeShardSummary(&core.ShardSummary{
		Shard: 1, Epoch: 1, AtNs: now, Nodes: 1,
		Top: []core.ShardDigest{{Node: 3, Load: core.Load{CPUIdle: 0.5, DiskAvail: 0.5, Speed: 1}}},
	})

	// An epoch-0 copy stamped *later* loses: epoch dominates AtNs.
	staleS1 := core.ShardSummary{
		Shard: 1, Epoch: 0, AtNs: now + int64(time.Hour), Nodes: 9,
		Top: []core.ShardDigest{{Node: 2, Load: core.Load{CPUIdle: 1, DiskAvail: 1, Speed: 1}}},
	}
	m.storeShardSummary(&staleS1)
	slot := &m.shardSums[1]
	slot.mu.Lock()
	epoch, nodes := slot.sum.Epoch, slot.sum.Nodes
	slot.mu.Unlock()
	if epoch != 1 || nodes != 1 {
		t.Fatalf("slot holds epoch=%d nodes=%d after stale s1 replay, want the epoch-1 summary", epoch, nodes)
	}

	// The wire path enforces the same rule: a piggybacked s1 header
	// (epoch 0 by construction) cannot clobber the held s2 state.
	wire := staleS1.AppendWire(nil)
	h := http.Header{ShardHeader: []string{string(wire[:len(wire)-1])}}
	m.storeShardHeader(h)
	slot.mu.Lock()
	epoch = slot.sum.Epoch
	slot.mu.Unlock()
	if epoch != 1 {
		t.Fatalf("piggybacked stale s1 overwrote the epoch-1 summary (epoch now %d)", epoch)
	}

	// Two epochs behind the local map: dropped before the slot is even
	// consulted — outside the dual-epoch handoff window.
	if _, err := m.ApplyMembership(core.Membership{
		Epoch: 2, Mode: core.ShardStatic, Masters: []int{0, 1}, Slaves: []int{2, 3},
	}); err != nil {
		t.Fatal(err)
	}
	rxBefore := m.gossipRx.Load()
	m.storeShardSummary(&staleS1) // epoch 0 vs local epoch 2
	if rx := m.gossipRx.Load(); rx != rxBefore {
		t.Fatalf("summary two epochs behind was folded in (rx %d→%d), want dropped", rxBefore, rx)
	}
}

// Sheds inside the post-rebalance handoff window are attributed to the
// rebalance, not steady-state overload: the distinct counter moves, the
// Retry-After hint derives from the window's remainder, and /metrics
// splits the shed family by reason.
func TestRebalancingShedReason(t *testing.T) {
	m := launchShardedTestMaster(t, Resilience{}, "http://192.0.2.1:1", "http://192.0.2.1:2")
	// Saturate the local shard so dynamics shed (no fresh remote summary
	// → no spill either), then open a handoff window.
	m.brk.open(&m.brk.slots[2], time.Now().UnixNano())
	windowEnd := time.Now().Add(30 * time.Second)
	m.rebalanceUntil.Store(windowEnd.UnixNano())

	sawShed := false
	var retryAfter int
	for i := 0; i < 5 && !sawShed; i++ {
		resp, _ := getStatus(t, m.URL+"/req?class=d&demand=0&w=0.5", nil)
		if resp.StatusCode == http.StatusServiceUnavailable {
			sawShed = true
			retryAfter, _ = strconv.Atoi(resp.Header.Get("Retry-After"))
		}
	}
	if !sawShed {
		t.Fatal("no shed with the local shard saturated")
	}
	if m.ShedRebalancing() == 0 {
		t.Fatal("shed inside the handoff window not counted as rebalancing")
	}
	// The hint tracks the handoff's expected completion (~30 s), not the
	// breaker hold-down (~1 s).
	if retryAfter < 5 || retryAfter > 31 {
		t.Fatalf("Retry-After %d during a 30s handoff window, want the window remainder", retryAfter)
	}

	_, metrics := getStatus(t, m.URL+"/metrics", nil)
	if !strings.Contains(metrics, `msweb_master_shed_total{node="0",reason="rebalancing"} `+
		strconv.FormatInt(m.ShedRebalancing(), 10)) {
		t.Fatalf("metrics missing the rebalancing shed series:\n%s", metrics)
	}
	if !strings.Contains(metrics, `msweb_master_epoch{node="0"}`) {
		t.Fatalf("metrics missing the epoch gauge:\n%s", metrics)
	}

	// Outside the window the same shed books as plain overload.
	m.rebalanceUntil.Store(time.Now().Add(-time.Second).UnixNano())
	before := m.ShedRebalancing()
	for i := 0; i < 5; i++ {
		resp, _ := getStatus(t, m.URL+"/req?class=d&demand=0&w=0.5", nil)
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
	}
	if got := m.ShedRebalancing(); got != before {
		t.Fatalf("shed outside the window still counted as rebalancing (%d→%d)", before, got)
	}
}

// Gossip silence is the failure detector: once a peer owner misses
// three consecutive /shard pulls, the lowest-id surviving master bumps
// the epoch and adopts the dead peer's shard — no coordinator, no
// election, just the deterministic initiator rule.
func TestDetectDeadMasterAdoptsShard(t *testing.T) {
	// Peer master 1 is a real listener that dies immediately: dials fail
	// fast, so gossip rounds record misses instead of timing out.
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	deadURL := dead.URL
	dead.Close()

	m := launchShardedTestMaster(t, Resilience{DisableShedding: true},
		"http://192.0.2.1:1", "http://192.0.2.1:2")
	m.SetNodeURL(1, deadURL)

	for i := 0; i < gossipMissThreshold; i++ {
		m.gossipOnce(50 * time.Millisecond)
	}
	if got := m.Epoch(); got != 1 {
		t.Fatalf("epoch %d after %d silent gossip rounds, want 1 (dead peer removed)", got, gossipMissThreshold)
	}
	mb := m.Membership()
	if len(mb.Masters) != 1 || mb.Masters[0] != 0 {
		t.Fatalf("membership masters %v after failover, want just the survivor", mb.Masters)
	}
	ms := m.mem.Load()
	if len(ms.slaves) != 2 {
		t.Fatalf("survivor owns %v, want both slaves after adopting the dead peer's shard", ms.slaves)
	}
	if m.rebalanceUntil.Load() == 0 {
		t.Fatal("failover did not open a handoff window")
	}
}

// The tier-resize planner: promotions take the lowest master-capable
// slaves, demotions return the highest masters to the slave tier, and
// illegal moves (no capable slave, last master) degrade to no-ops.
func TestNextTierPlan(t *testing.T) {
	m := launchShardedTestMaster(t, Resilience{DisableShedding: true},
		"http://192.0.2.1:1", "http://192.0.2.1:2")
	m.masterCapable[2] = true // slave 2 was launched master-capable
	ms := m.mem.Load()

	grow := m.nextTierPlan(ms, 3)
	if grow == nil || len(grow.Masters) != 3 || grow.Epoch != 1 {
		t.Fatalf("grow plan %+v, want 3 masters at epoch 1", grow)
	}
	if grow.MasterIndex(2) < 0 {
		t.Fatalf("grow plan %+v skipped the capable slave", grow)
	}

	shrink := m.nextTierPlan(ms, 1)
	if shrink == nil || len(shrink.Masters) != 1 || shrink.MasterIndex(0) < 0 {
		t.Fatalf("shrink plan %+v, want master 0 alone", shrink)
	}
	if !shrink.HasSlave(1) {
		t.Fatalf("shrink plan %+v did not return the demoted master to the slave tier", shrink)
	}

	// Growing beyond the capable pool stalls at what's legal (slave 3 is
	// not capable), and a no-op target returns nil.
	if p := m.nextTierPlan(ms, 4); p == nil || len(p.Masters) != 3 {
		t.Fatalf("over-grow plan %+v, want to stall at 3 masters", p)
	}
	if p := m.nextTierPlan(ms, 2); p != nil {
		t.Fatalf("same-size plan %+v, want nil", p)
	}
}
