package httpcluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"msweb/internal/core"
	"msweb/internal/obs"
	"msweb/internal/trace"
)

// LoadReport is the JSON body of a node's /load endpoint — the live
// analogue of rstat(). It is the same type the simulator's policies
// consume: core.Load carries the JSON tags, so the wire format and the
// scheduler input cannot drift apart.
//
// Deprecated: use core.Load directly.
type LoadReport = core.Load

// Node is one cluster machine: virtual resources behind a real HTTP
// server exposing /exec (run work), /load (report load) and /metrics
// (Prometheus text exposition). Masters additionally expose /req (see
// Master).
type Node struct {
	ID        int
	URL       string
	res       *NodeResources
	fork      time.Duration
	timeScale float64
	origin    time.Time
	srv       *http.Server
	lis       net.Listener

	mu        sync.Mutex
	executed  int64
	cgiServed int64
	svcHist   *obs.Histogram       // per-request service time (unscaled s)
	reqRate   *obs.WindowedCounter // trailing-window request arrivals
}

// newNode allocates the node core and its listener; the HTTP server is
// attached by serve() once the role-specific mux exists.
func newNode(id int, origin time.Time, timeScale float64) (*Node, error) {
	if timeScale <= 0 {
		timeScale = 1
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return &Node{
		ID:        id,
		URL:       "http://" + lis.Addr().String(),
		res:       NewNodeResources(origin, timeScale),
		fork:      time.Duration(float64(3*time.Millisecond) * timeScale),
		timeScale: timeScale,
		origin:    origin,
		lis:       lis,
		svcHist:   obs.NewHistogram(),
		reqRate:   obs.NewWindowedCounter(10, 10),
	}, nil
}

func (n *Node) serve(mux *http.ServeMux) {
	n.srv = &http.Server{Handler: mux}
	go n.srv.Serve(n.lis) //nolint:errcheck // Serve returns on Shutdown
}

// StartNode launches a slave node server on a loopback ephemeral port.
//
// Deprecated: use LaunchNode, which takes a validated NodeOptions struct
// instead of positional arguments.
func StartNode(id int, origin time.Time, timeScale float64) (*Node, error) {
	return LaunchNode(NodeOptions{ID: id, Origin: origin, TimeScale: timeScale})
}

// Executed returns how many requests the node has run.
func (n *Node) Executed() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.executed
}

// CGIServed returns how many forked (dynamic) requests the node ran.
func (n *Node) CGIServed() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cgiServed
}

// runWork performs a request's work on the node's virtual resources.
func (n *Node) runWork(demand float64, w float64, forked bool) {
	start := time.Now()
	d := time.Duration(demand * n.timeScale * float64(time.Second))
	if forked {
		n.res.CPU.Use(n.fork)
	}
	n.res.Execute(d, w)
	service := time.Since(start).Seconds() / n.timeScale
	now := time.Since(n.origin).Seconds()
	n.mu.Lock()
	n.executed++
	if forked {
		n.cgiServed++
	}
	n.svcHist.Observe(service)
	n.reqRate.Add(now, 1)
	n.mu.Unlock()
}

func (n *Node) handleExec(rw http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	demand, err := strconv.ParseFloat(q.Get("demand"), 64)
	if err != nil || demand < 0 {
		http.Error(rw, "bad demand", http.StatusBadRequest)
		return
	}
	w, err := strconv.ParseFloat(q.Get("w"), 64)
	if err != nil {
		http.Error(rw, "bad w", http.StatusBadRequest)
		return
	}
	n.runWork(demand, w, q.Get("fork") == "1")
	writeBody(rw, q.Get("size"))
}

// writeBody streams a response body of the requested size (bytes), so
// the live cluster moves real data over the loopback TCP connections;
// absent or invalid sizes fall back to a 3-byte "ok".
func writeBody(rw http.ResponseWriter, sizeStr string) {
	size, err := strconv.ParseInt(sizeStr, 10, 64)
	if err != nil || size <= 0 || size > 8<<20 {
		rw.WriteHeader(http.StatusOK)
		fmt.Fprintln(rw, "ok")
		return
	}
	rw.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	rw.WriteHeader(http.StatusOK)
	remaining := size
	for remaining > 0 {
		chunk := remaining
		if chunk > int64(len(bodyChunk)) {
			chunk = int64(len(bodyChunk))
		}
		if _, err := rw.Write(bodyChunk[:chunk]); err != nil {
			return
		}
		remaining -= chunk
	}
}

// bodyChunk is the reusable payload buffer for response bodies.
var bodyChunk = make([]byte, 32<<10)

// StatsReport is the JSON body of a node's /stats endpoint.
type StatsReport struct {
	Node      int     `json:"node"`
	Executed  int64   `json:"executed"`
	CGIServed int64   `json:"cgi_served"`
	UptimeS   float64 `json:"uptime_s"`
}

func (n *Node) handleStats(rw http.ResponseWriter, _ *http.Request) {
	n.mu.Lock()
	rep := StatsReport{
		Node:      n.ID,
		Executed:  n.executed,
		CGIServed: n.cgiServed,
		UptimeS:   time.Since(n.origin).Seconds(),
	}
	n.mu.Unlock()
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(rep) //nolint:errcheck
}

func (n *Node) handleLoad(rw http.ResponseWriter, _ *http.Request) {
	rep := core.Load{
		CPUIdle:   n.res.CPU.IdleRatio(),
		DiskAvail: n.res.Disk.IdleRatio(),
		CPUQueue:  n.res.CPU.QueueLength(),
		DiskQueue: n.res.Disk.QueueLength(),
		Speed:     1,
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(rep) //nolint:errcheck
}

// Shutdown stops the server and unblocks in-flight work.
func (n *Node) Shutdown() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if n.srv != nil {
		n.srv.Shutdown(ctx) //nolint:errcheck
	}
	n.res.Close()
}

// Master is a level-I node: it serves client requests, executes statics
// locally, and schedules dynamics through a core.Policy over the latest
// polled load view.
type Master struct {
	*Node
	policy   core.Policy
	view     core.View
	nodeURLs []string // by node id
	client   *http.Client
	pmu      sync.Mutex
	stop     chan struct{}
	wg       sync.WaitGroup

	// failed marks nodes whose /exec or /load recently erred; they are
	// excluded from placement until the deadline passes and a load poll
	// succeeds again (sub-second failure detection, as the switches the
	// paper discusses provide).
	failed    map[int]time.Time
	failovers int64

	// respHist aggregates client-visible /req response times (unscaled
	// seconds), guarded by pmu.
	respHist *obs.Histogram
}

// StartMaster launches a master node. masters and slaves list node ids;
// nodeURLs maps every id to its base URL (the master's own slot may be
// empty — it never forwards to itself by URL).
//
// Deprecated: use LaunchMaster, which takes a validated NodeOptions
// struct instead of nine positional arguments.
func StartMaster(id int, origin time.Time, timeScale float64, masters, slaves []int, nodeURLs []string, policy core.Policy, loadRefresh, policyTick time.Duration) (*Master, error) {
	return LaunchMaster(NodeOptions{
		ID: id, Origin: origin, TimeScale: timeScale,
		Masters: masters, Slaves: slaves, NodeURLs: nodeURLs,
		Policy: policy, LoadRefresh: loadRefresh, PolicyTick: policyTick,
	})
}

// Failovers reports how many dynamic requests were re-placed after a
// remote execution failure.
func (m *Master) Failovers() int64 {
	m.pmu.Lock()
	defer m.pmu.Unlock()
	return m.failovers
}

// markFailed excludes a node from placement for the hold-down period.
func (m *Master) markFailed(id int) {
	m.pmu.Lock()
	m.failed[id] = time.Now().Add(2 * time.Second)
	m.pmu.Unlock()
}

// liveView returns a copy of the view with held-down nodes removed from
// the tier lists (the Load slice is shared; policies only read it).
// Callers must hold pmu.
func (m *Master) liveView() core.View {
	now := time.Now()
	alive := func(ids []int) []int {
		out := make([]int, 0, len(ids))
		for _, id := range ids {
			if until, bad := m.failed[id]; bad && now.Before(until) && id != m.ID {
				continue
			}
			out = append(out, id)
		}
		return out
	}
	v := m.view
	v.Masters = alive(m.view.Masters)
	v.Slaves = alive(m.view.Slaves)
	if len(v.Masters) == 0 {
		v.Masters = []int{m.ID}
	}
	return v
}

// SetNodeURL fills in a peer URL learned after startup.
func (m *Master) SetNodeURL(id int, url string) {
	m.pmu.Lock()
	defer m.pmu.Unlock()
	m.nodeURLs[id] = url
}

// pollLoop refreshes the load view from every node's /load endpoint.
func (m *Master) pollLoop(every time.Duration) {
	defer m.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			for id := range m.nodeURLs {
				m.pmu.Lock()
				url := m.nodeURLs[id]
				m.pmu.Unlock()
				if url == "" {
					continue
				}
				rep, err := m.fetchLoad(url)
				if err != nil {
					m.markFailed(id)
					continue
				}
				m.pmu.Lock()
				delete(m.failed, id) // node answers again
				if rep.Speed <= 0 {
					// A report without a speed field keeps the
					// configured value rather than zeroing it.
					rep.Speed = m.view.Load[id].Speed
				}
				m.view.Load[id] = rep
				m.pmu.Unlock()
			}
		}
	}
}

func (m *Master) fetchLoad(url string) (core.Load, error) {
	var rep core.Load
	resp, err := m.client.Get(url + "/load")
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("load: status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&rep)
	return rep, err
}

// tickLoop runs the policy's periodic adaptation.
func (m *Master) tickLoop(every time.Duration) {
	defer m.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.pmu.Lock()
			m.policy.Tick(time.Since(m.origin).Seconds(), &m.view)
			m.pmu.Unlock()
		}
	}
}

// handleRequest is the client-facing endpoint:
// /req?class=s|d&demand=F&w=F&script=N
func (m *Master) handleRequest(rw http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	demand, err := strconv.ParseFloat(q.Get("demand"), 64)
	if err != nil || demand < 0 {
		http.Error(rw, "bad demand", http.StatusBadRequest)
		return
	}
	w, err := strconv.ParseFloat(q.Get("w"), 64)
	if err != nil {
		http.Error(rw, "bad w", http.StatusBadRequest)
		return
	}
	class := trace.Static
	if q.Get("class") == "d" {
		class = trace.Dynamic
	}
	script, _ := strconv.Atoi(q.Get("script"))

	start := time.Now()
	if class == trace.Static {
		m.runWork(demand, w, false)
	} else if err := m.runDynamic(class, script, demand, w); err != nil {
		http.Error(rw, err.Error(), http.StatusBadGateway)
		return
	}
	size := q.Get("size")
	// Feed the reservation estimators with the server-side response
	// time, normalized back to unscaled seconds.
	resp := time.Since(start).Seconds() / m.timeScale
	m.pmu.Lock()
	m.policy.ObserveCompletion(class, resp, demand)
	m.respHist.Observe(resp)
	m.pmu.Unlock()

	writeBody(rw, size)
}

// runDynamic places and executes one dynamic request, failing over to
// another node (and ultimately to local execution) when a remote /exec
// errs — the restart-on-another-node behaviour the paper requires of
// masters when a slave fails.
func (m *Master) runDynamic(class trace.Class, script int, demand, w float64) error {
	for attempt := 0; attempt < 3; attempt++ {
		m.pmu.Lock()
		v := m.liveView()
		target := m.policy.Place(core.Request{Class: class, Script: script}, m.ID, &v)
		m.pmu.Unlock()
		if target == m.ID {
			m.runWork(demand, w, true)
			return nil
		}
		if err := m.forward(target, demand, w); err == nil {
			return nil
		}
		m.markFailed(target)
		m.pmu.Lock()
		m.failovers++
		m.pmu.Unlock()
	}
	// Every remote attempt failed: run it here rather than drop it.
	m.runWork(demand, w, true)
	return nil
}

// forward executes the CGI remotely via the target's /exec endpoint —
// the paper's low-overhead remote execution path.
func (m *Master) forward(target int, demand, w float64) error {
	m.pmu.Lock()
	base := m.nodeURLs[target]
	m.pmu.Unlock()
	if base == "" {
		return fmt.Errorf("no URL for node %d", target)
	}
	url := fmt.Sprintf("%s/exec?demand=%g&w=%g&fork=1", base, demand, w)
	resp, err := m.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("remote exec: status %d", resp.StatusCode)
	}
	return nil
}

// Shutdown stops the master's loops and server.
func (m *Master) Shutdown() {
	close(m.stop)
	m.wg.Wait()
	m.Node.Shutdown()
}
