package httpcluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"msweb/internal/core"
	"msweb/internal/obs"
	"msweb/internal/trace"
)

// LoadReport is the JSON body of a node's /load endpoint — the live
// analogue of rstat(). It is the same type the simulator's policies
// consume: core.Load carries the JSON tags, so the wire format and the
// scheduler input cannot drift apart. The compact fmt=c fast path is the
// same fields in core.Load wire form (see core.AppendWire).
//
// Deprecated: use core.Load directly.
type LoadReport = core.Load

// Node is one cluster machine: virtual resources behind a real HTTP
// server exposing /exec (run work), /load (report load) and /metrics
// (Prometheus text exposition). Masters additionally expose /req (see
// Master).
type Node struct {
	ID        int
	URL       string
	res       *NodeResources
	fork      time.Duration
	timeScale float64
	origin    time.Time
	srv       *http.Server
	lis       net.Listener
	mux       *http.ServeMux

	// Request counters are plain atomics: the hot path pays two
	// uncontended atomic adds instead of a mutex round trip.
	executed  atomic.Int64
	cgiServed atomic.Int64

	// statsMu guards only the two windowed aggregates below; nothing on
	// the request path blocks behind anything slower than an Observe.
	statsMu sync.Mutex
	svcHist *obs.Histogram       // per-request service time (unscaled s)
	reqRate *obs.WindowedCounter // trailing-window request arrivals
}

// newNode allocates the node core and its listener; the HTTP server is
// attached by serve() once the role-specific mux exists.
func newNode(id int, origin time.Time, timeScale float64) (*Node, error) {
	if timeScale <= 0 {
		timeScale = 1
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return &Node{
		ID:        id,
		URL:       "http://" + lis.Addr().String(),
		res:       NewNodeResources(origin, timeScale),
		fork:      time.Duration(float64(3*time.Millisecond) * timeScale),
		timeScale: timeScale,
		origin:    origin,
		lis:       lis,
		svcHist:   obs.NewHistogram(),
		reqRate:   obs.NewWindowedCounter(10, 10),
	}, nil
}

func (n *Node) serve(mux *http.ServeMux) {
	n.mux = mux
	n.srv = &http.Server{Handler: mux}
	go n.srv.Serve(n.lis) //nolint:errcheck // Serve returns on Shutdown
}

// Handler returns the node's HTTP mux, so the serving path can be
// exercised (benchmarked, embedded) without a TCP round trip.
func (n *Node) Handler() http.Handler { return n.mux }

// Executed returns how many requests the node has run.
func (n *Node) Executed() int64 { return n.executed.Load() }

// CGIServed returns how many forked (dynamic) requests the node ran.
func (n *Node) CGIServed() int64 { return n.cgiServed.Load() }

// runWork performs a request's work on the node's virtual resources.
func (n *Node) runWork(demand float64, w float64, forked bool) {
	start := time.Now()
	d := time.Duration(demand * n.timeScale * float64(time.Second))
	if forked {
		n.res.CPU.Use(n.fork)
	}
	n.res.Execute(d, w)
	service := time.Since(start).Seconds() / n.timeScale
	now := time.Since(n.origin).Seconds()
	n.executed.Add(1)
	if forked {
		n.cgiServed.Add(1)
	}
	n.statsMu.Lock()
	n.svcHist.Observe(service)
	n.reqRate.Add(now, 1)
	n.statsMu.Unlock()
}

func (n *Node) handleExec(rw http.ResponseWriter, req *http.Request) {
	p := parseReqQuery(req.URL.RawQuery)
	if !p.demandOK || p.demand < 0 {
		http.Error(rw, "bad demand", http.StatusBadRequest)
		return
	}
	if !p.wOK {
		http.Error(rw, "bad w", http.StatusBadRequest)
		return
	}
	n.runWork(p.demand, p.w, p.fork)
	writeBody(rw, p.size)
}

// okBody is the fallback response body when no size is requested.
var okBody = []byte("ok\n")

// writeBody streams a response body of the requested size (bytes), so
// the live cluster moves real data over the loopback TCP connections;
// absent or invalid sizes fall back to a 3-byte "ok".
func writeBody(rw http.ResponseWriter, size int64) {
	if size <= 0 || size > 8<<20 {
		rw.WriteHeader(http.StatusOK)
		rw.Write(okBody) //nolint:errcheck
		return
	}
	rw.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	rw.WriteHeader(http.StatusOK)
	remaining := size
	for remaining > 0 {
		chunk := remaining
		if chunk > int64(len(bodyChunk)) {
			chunk = int64(len(bodyChunk))
		}
		if _, err := rw.Write(bodyChunk[:chunk]); err != nil {
			return
		}
		remaining -= chunk
	}
}

// bodyChunk is the reusable payload buffer for response bodies.
var bodyChunk = make([]byte, 32<<10)

// StatsReport is the JSON body of a node's /stats endpoint.
type StatsReport struct {
	Node      int     `json:"node"`
	Executed  int64   `json:"executed"`
	CGIServed int64   `json:"cgi_served"`
	UptimeS   float64 `json:"uptime_s"`
}

func (n *Node) handleStats(rw http.ResponseWriter, _ *http.Request) {
	rep := StatsReport{
		Node:      n.ID,
		Executed:  n.executed.Load(),
		CGIServed: n.cgiServed.Load(),
		UptimeS:   time.Since(n.origin).Seconds(),
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(rep) //nolint:errcheck
}

// wireBufPool holds scratch buffers for compact load encoding and
// poll-response reads.
var wireBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 256)
	return &b
}}

func (n *Node) handleLoad(rw http.ResponseWriter, req *http.Request) {
	rep := core.Load{
		CPUIdle:   n.res.CPU.IdleRatio(),
		DiskAvail: n.res.Disk.IdleRatio(),
		CPUQueue:  n.res.CPU.QueueLength(),
		DiskQueue: n.res.Disk.QueueLength(),
		Speed:     1,
	}
	if queryHasValue(req.URL.RawQuery, "fmt", "c") {
		// Compact fast path: one pooled buffer, strconv appends, no
		// reflection. This is what the master's poller asks for.
		buf := wireBufPool.Get().(*[]byte)
		b := rep.AppendWire((*buf)[:0])
		rw.Header().Set("Content-Type", core.LoadWireContentType)
		rw.Write(b) //nolint:errcheck
		*buf = b
		wireBufPool.Put(buf)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(rep) //nolint:errcheck
}

// Shutdown stops the server and unblocks in-flight work.
func (n *Node) Shutdown() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if n.srv != nil {
		n.srv.Shutdown(ctx) //nolint:errcheck
	}
	n.res.Close()
}

// loadSnapshot is one immutable generation of the master's scheduling
// view. The poller builds a fresh snapshot per round and publishes it
// with an atomic pointer swap; the request path only ever reads
// published snapshots, so no lock covers the view.
type loadSnapshot struct {
	epoch uint64
	view  core.View
}

// failHoldDown is how long a node stays excluded from placement after a
// failed /exec or /load before polls may rehabilitate it.
const failHoldDown = 2 * time.Second

// Master is a level-I node: it serves client requests, executes statics
// locally, and schedules dynamics through a core.Policy over the latest
// polled load view.
//
// Concurrency design: the polled view is an immutable snapshot behind an
// atomic pointer, swapped by a fan-out poller (one goroutine per node
// per round, sharing one deadline). Failure hold-downs, failover counts
// and peer URLs are per-slot atomics. The only lock on the request path
// is placeMu — a narrow shard covering the policy's own mutable state
// (estimators, booking charges, tie-break RNG) and the response
// histogram; nothing under it blocks or does I/O.
type Master struct {
	*Node
	policy core.Policy
	client *http.Client
	stop   chan struct{}
	wg     sync.WaitGroup

	// snap is the current load view generation (never nil after launch).
	snap atomic.Pointer[loadSnapshot]
	// urls maps node id to its base URL; slots fill in as peers launch.
	urls []atomic.Pointer[string]
	// failedUntil holds per-node hold-down deadlines (UnixNano; 0 = live).
	// Sub-second failure detection, as the switches the paper discusses
	// provide.
	failedUntil []atomic.Int64
	failovers   atomic.Int64

	// placeMu is the policy shard lock; see the type comment. The working
	// view under it carries the booking charges (placement impact)
	// accumulated since the last snapshot swap, re-seeded from the
	// snapshot whenever the epoch moves.
	placeMu   sync.Mutex
	workView  core.View
	workEpoch uint64
	aliveBuf  []int // masters+slaves filter scratch, reused per request

	// respHist aggregates client-visible /req response times (unscaled
	// seconds), guarded by placeMu.
	respHist *obs.Histogram
}

// Failovers reports how many dynamic requests were re-placed after a
// remote execution failure.
func (m *Master) Failovers() int64 { return m.failovers.Load() }

// markFailed excludes a node from placement for the hold-down period.
func (m *Master) markFailed(id int) {
	m.failedUntil[id].Store(time.Now().Add(failHoldDown).UnixNano())
}

// alive reports whether a node may receive placements at wall time now.
// The master itself is always alive (last-resort local execution).
func (m *Master) alive(id int, now int64) bool {
	if id == m.ID {
		return true
	}
	until := m.failedUntil[id].Load()
	return until == 0 || now >= until
}

// refreshWorkView rebuilds the policy's working view from the current
// snapshot: load columns are re-copied only when the snapshot epoch
// moved (preserving intra-window booking charges, exactly as the
// locked-view implementation did), and the tier lists are re-filtered
// against the failure hold-downs into a reused scratch buffer. Callers
// must hold placeMu. Allocation-free in steady state.
func (m *Master) refreshWorkView() {
	s := m.snap.Load()
	if s.epoch != m.workEpoch {
		m.workEpoch = s.epoch
		m.workView.Load = append(m.workView.Load[:0], s.view.Load...)
		m.workView.Affinity = s.view.Affinity
	}
	now := time.Now().UnixNano()
	buf := m.aliveBuf[:0]
	for _, id := range s.view.Masters {
		if m.alive(id, now) {
			buf = append(buf, id)
		}
	}
	nMasters := len(buf)
	for _, id := range s.view.Slaves {
		if m.alive(id, now) {
			buf = append(buf, id)
		}
	}
	m.aliveBuf = buf
	m.workView.Masters = buf[:nMasters]
	m.workView.Slaves = buf[nMasters:]
	if nMasters == 0 {
		// Never leave the view masterless; this master can always serve.
		m.workView.Masters = append(m.workView.Masters[:0], m.ID)
	}
}

// SetNodeURL fills in a peer URL learned after startup.
func (m *Master) SetNodeURL(id int, url string) {
	m.urls[id].Store(&url)
}

// nodeURL returns node id's base URL ("" when unknown).
func (m *Master) nodeURL(id int) string {
	if p := m.urls[id].Load(); p != nil {
		return *p
	}
	return ""
}

// pollLoop refreshes the load view from every node's /load endpoint.
// Each round fans out one fetch goroutine per node under a shared
// deadline (the polling period), so one slow or dead node delays the
// snapshot swap by at most the period instead of serializing behind
// every other fetch.
func (m *Master) pollLoop(every time.Duration) {
	defer m.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	reports := make([]core.Load, len(m.urls))
	fetched := make([]bool, len(m.urls))
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.pollOnce(every, reports, fetched)
		}
	}
}

// minPollDeadline floors the shared fetch deadline: with very fast
// polling periods a deadline equal to the period misclassifies every
// node as failed the moment the host is briefly loaded. Rounds longer
// than the period simply make the ticker skip beats.
const minPollDeadline = 100 * time.Millisecond

// pollOnce runs one fan-out poll round and publishes the next snapshot.
func (m *Master) pollOnce(deadline time.Duration, reports []core.Load, fetched []bool) {
	if deadline < minPollDeadline {
		deadline = minPollDeadline
	}
	prev := m.snap.Load()
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	var wg sync.WaitGroup
	for id := range m.urls {
		fetched[id] = false
		base := m.nodeURL(id)
		if base == "" {
			continue
		}
		wg.Add(1)
		go func(id int, base string) {
			defer wg.Done()
			rep, err := m.fetchLoad(ctx, base)
			if err != nil {
				m.markFailed(id)
				return
			}
			reports[id] = rep
			fetched[id] = true
		}(id, base)
	}
	wg.Wait()

	next := &loadSnapshot{
		epoch: prev.epoch + 1,
		view: core.View{
			// Role lists are immutable across snapshots and shared.
			Masters:  prev.view.Masters,
			Slaves:   prev.view.Slaves,
			Affinity: prev.view.Affinity,
			Load:     append([]core.Load(nil), prev.view.Load...),
		},
	}
	for id := range reports {
		if !fetched[id] {
			continue
		}
		rep := reports[id]
		if rep.Speed <= 0 {
			// A report without a speed field keeps the configured value
			// rather than zeroing it.
			rep.Speed = next.view.Load[id].Speed
		}
		next.view.Load[id] = rep
		m.failedUntil[id].Store(0) // node answers again
	}
	m.snap.Store(next)
}

// fetchLoad polls one node, preferring the compact wire format and
// falling back to JSON for peers that predate it.
func (m *Master) fetchLoad(ctx context.Context, base string) (core.Load, error) {
	var rep core.Load
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/load?fmt=c", nil)
	if err != nil {
		return rep, err
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("load: status %d", resp.StatusCode)
	}
	buf := wireBufPool.Get().(*[]byte)
	defer wireBufPool.Put(buf)
	b, err := readAllInto((*buf)[:0], io.LimitReader(resp.Body, 1<<20))
	*buf = b[:0]
	if err != nil {
		return rep, err
	}
	if core.IsLoadWire(b) {
		return core.ParseLoadWire(b)
	}
	err = json.Unmarshal(b, &rep)
	return rep, err
}

// readAllInto is io.ReadAll into a caller-provided buffer.
func readAllInto(b []byte, r io.Reader) ([]byte, error) {
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			return b, nil
		}
		if err != nil {
			return b, err
		}
	}
}

// tickLoop runs the policy's periodic adaptation.
func (m *Master) tickLoop(every time.Duration) {
	defer m.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.placeMu.Lock()
			m.refreshWorkView()
			m.policy.Tick(time.Since(m.origin).Seconds(), &m.workView)
			m.placeMu.Unlock()
		}
	}
}

// handleRequest is the client-facing endpoint:
// /req?class=s|d&demand=F&w=F&script=N
func (m *Master) handleRequest(rw http.ResponseWriter, req *http.Request) {
	p := parseReqQuery(req.URL.RawQuery)
	if !p.demandOK || p.demand < 0 {
		http.Error(rw, "bad demand", http.StatusBadRequest)
		return
	}
	if !p.wOK {
		http.Error(rw, "bad w", http.StatusBadRequest)
		return
	}

	start := time.Now()
	if p.class == trace.Static {
		m.runWork(p.demand, p.w, false)
	} else if err := m.runDynamic(p.script, p.demand, p.w); err != nil {
		http.Error(rw, err.Error(), http.StatusBadGateway)
		return
	}
	// Feed the reservation estimators with the server-side response
	// time, normalized back to unscaled seconds.
	resp := time.Since(start).Seconds() / m.timeScale
	m.placeMu.Lock()
	m.policy.ObserveCompletion(p.class, resp, p.demand)
	m.respHist.Observe(resp)
	m.placeMu.Unlock()

	writeBody(rw, p.size)
}

// runDynamic places and executes one dynamic request, failing over to
// another node (and ultimately to local execution) when a remote /exec
// errs — the restart-on-another-node behaviour the paper requires of
// masters when a slave fails.
func (m *Master) runDynamic(script int, demand, w float64) error {
	for attempt := 0; attempt < 3; attempt++ {
		m.placeMu.Lock()
		m.refreshWorkView()
		target := m.policy.Place(core.Request{Class: trace.Dynamic, Script: script}, m.ID, &m.workView)
		m.placeMu.Unlock()
		if target == m.ID {
			m.runWork(demand, w, true)
			return nil
		}
		if err := m.forward(target, demand, w); err == nil {
			return nil
		}
		m.markFailed(target)
		m.failovers.Add(1)
	}
	// Every remote attempt failed: run it here rather than drop it.
	m.runWork(demand, w, true)
	return nil
}

// forward executes the CGI remotely via the target's /exec endpoint —
// the paper's low-overhead remote execution path.
func (m *Master) forward(target int, demand, w float64) error {
	base := m.nodeURL(target)
	if base == "" {
		return fmt.Errorf("no URL for node %d", target)
	}
	buf := wireBufPool.Get().(*[]byte)
	b := append((*buf)[:0], base...)
	b = append(b, "/exec?demand="...)
	b = strconv.AppendFloat(b, demand, 'g', -1, 64)
	b = append(b, "&w="...)
	b = strconv.AppendFloat(b, w, 'g', -1, 64)
	b = append(b, "&fork=1"...)
	url := string(b)
	*buf = b[:0]
	wireBufPool.Put(buf)
	resp, err := m.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("remote exec: status %d", resp.StatusCode)
	}
	return nil
}

// Shutdown stops the master's loops and server.
func (m *Master) Shutdown() {
	close(m.stop)
	m.wg.Wait()
	m.Node.Shutdown()
}
