package httpcluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"msweb/internal/core"
	"msweb/internal/obs"
	"msweb/internal/trace"
)

// Deadline-propagation headers. Clients hand the master a relative
// budget; the master forwards the resolved absolute deadline so slaves
// on the same clock (a loopback cluster) can refuse work that already
// expired in their queue.
const (
	// TimeoutHeader carries the client's relative deadline budget for a
	// /req call, in milliseconds.
	TimeoutHeader = "X-Msweb-Timeout-Ms"
	// DeadlineHeader carries the absolute deadline (UnixNano) on
	// master→slave /exec calls.
	DeadlineHeader = "X-Msweb-Deadline-Ns"
)

// A node's /load endpoint serves core.Load directly — the live analogue
// of rstat(). core.Load carries the JSON tags, so the wire format and
// the scheduler input cannot drift apart. The compact fmt=c fast path
// is the same fields in wire form (see core.AppendWire).

// Node is one cluster machine: virtual resources behind a real HTTP
// server exposing /exec (run work), /load (report load) and /metrics
// (Prometheus text exposition). Masters additionally expose /req (see
// Master).
type Node struct {
	ID        int
	URL       string
	res       *NodeResources
	fork      time.Duration
	timeScale float64
	origin    time.Time
	maxQueue  int // shed /exec before queueing at this population; 0 = off
	srv       *http.Server
	// lis holds the node's listener shards: SO_REUSEPORT sockets sharing
	// one port, each served by its own accept loop (see listener.go).
	// One entry — the pre-sharding layout — unless ListenerShards asked
	// for more and the platform cooperated.
	lis []net.Listener
	mux *http.ServeMux

	// Request counters are plain atomics: the hot path pays two
	// uncontended atomic adds instead of a mutex round trip.
	executed        atomic.Int64
	cgiServed       atomic.Int64
	execShed        atomic.Int64
	deadlineExpired atomic.Int64
	framesServed    atomic.Int64

	// stamp caches the node's piggybacked load report (see piggyback.go).
	stamp atomic.Pointer[loadStamp]

	// shardWire is the own-shard summary a sharded master piggybacks on
	// its responses and serves at /shard (see shard.go). Always nil on
	// slaves and unsharded masters, so the plain data plane pays one
	// atomic load and a branch.
	shardWire atomic.Pointer[shardStamp]

	// serveClientFrames, when set (masters only), serves client-request
	// ('Q') frames through the master's full /req pipeline; nil nodes
	// refuse the frame kind.
	serveClientFrames func(reqs []frameReq, statuses []int)

	// Hijacked binary-frame connections, invisible to srv.Shutdown, are
	// tracked here so Shutdown can close them (see frame.go). The
	// registry is sharded alongside the listeners: connection open/close
	// on one shard never contends with the others, so a listener shard's
	// accept path stays independent end to end.
	frameReg    []frameConnShard
	frameSeq    atomic.Uint64
	frameClosed atomic.Bool
	frameWG     sync.WaitGroup

	// statsMu guards only the two windowed aggregates below; nothing on
	// the request path blocks behind anything slower than an Observe.
	statsMu sync.Mutex
	svcHist *obs.Histogram       // per-request service time (unscaled s)
	reqRate *obs.WindowedCounter // trailing-window request arrivals
}

// newNode allocates the node core and its listener; the HTTP server is
// attached by serve() once the role-specific mux exists. The options
// must already carry defaults (withDefaults).
func newNode(o NodeOptions) (*Node, error) {
	lis, err := multiListen(o.ListenerShards)
	if err != nil {
		return nil, err
	}
	return &Node{
		ID:        o.ID,
		URL:       "http://" + lis[0].Addr().String(),
		res:       NewNodeResources(o.Origin, o.TimeScale, o.Uncalibrated, o.Discipline),
		fork:      time.Duration(float64(3*time.Millisecond) * o.TimeScale),
		timeScale: o.TimeScale,
		origin:    o.Origin,
		maxQueue:  o.Resilience.MaxQueue,
		lis:       lis,
		frameReg:  make([]frameConnShard, len(lis)),
		svcHist:   obs.NewHistogram(),
		reqRate:   obs.NewWindowedCounter(10, 10),
	}, nil
}

// serve attaches the role-specific mux and starts one accept loop per
// listener shard. A single http.Server serves every shard, so Shutdown
// still closes the whole set in one call.
func (n *Node) serve(mux *http.ServeMux) {
	n.mux = mux
	n.srv = &http.Server{Handler: mux}
	for _, l := range n.lis {
		go n.srv.Serve(l) //nolint:errcheck // Serve returns on Shutdown
	}
}

// ListenerShards reports how many accept loops the node actually runs —
// the requested shard count, or 1 after a portability fallback.
func (n *Node) ListenerShards() int { return len(n.lis) }

// Handler returns the node's HTTP mux, so the serving path can be
// exercised (benchmarked, embedded) without a TCP round trip.
func (n *Node) Handler() http.Handler { return n.mux }

// Executed returns how many requests the node has run.
func (n *Node) Executed() int64 { return n.executed.Load() }

// CGIServed returns how many forked (dynamic) requests the node ran.
func (n *Node) CGIServed() int64 { return n.cgiServed.Load() }

// ExecShed returns how many /exec requests the node refused before
// queueing because its queue population was at MaxQueue.
func (n *Node) ExecShed() int64 { return n.execShed.Load() }

// DeadlineExpired returns how many /exec requests arrived with their
// propagated deadline already passed.
func (n *Node) DeadlineExpired() int64 { return n.deadlineExpired.Load() }

// runWork performs a request's work on the node's virtual resources.
func (n *Node) runWork(demand float64, w float64, forked bool) {
	start := time.Now()
	d := time.Duration(demand * n.timeScale * float64(time.Second))
	if forked {
		n.res.CPU.Use(n.fork)
	}
	n.res.Execute(d, w)
	service := time.Since(start).Seconds() / n.timeScale
	now := time.Since(n.origin).Seconds()
	n.executed.Add(1)
	if forked {
		n.cgiServed.Add(1)
	}
	n.statsMu.Lock()
	n.svcHist.Observe(service)
	n.reqRate.Add(now, 1)
	n.statsMu.Unlock()
}

func (n *Node) handleExec(rw http.ResponseWriter, req *http.Request) {
	p := parseReqQuery(req.URL.RawQuery)
	if !p.demandOK || p.demand < 0 {
		http.Error(rw, "bad demand", http.StatusBadRequest)
		return
	}
	if !p.wOK {
		http.Error(rw, "bad w", http.StatusBadRequest)
		return
	}
	var dl int64
	if h := req.Header.Get(DeadlineHeader); h != "" {
		if ns, err := strconv.ParseInt(h, 10, 64); err == nil && ns > 0 {
			dl = ns
		}
	}
	// execOne is the single admission+execution path shared with the
	// binary frame loop (see frame.go), so the two transports cannot
	// drift on shedding or deadline semantics.
	switch n.execOne(frameExec{demand: p.demand, w: p.w, deadlineNs: dl, fork: p.fork}) {
	case http.StatusBadRequest:
		http.Error(rw, "bad demand", http.StatusBadRequest)
	case http.StatusServiceUnavailable:
		rw.Header().Set("Retry-After", "1")
		http.Error(rw, "node overloaded: shed before queueing", http.StatusServiceUnavailable)
	case http.StatusGatewayTimeout:
		http.Error(rw, "deadline expired before execution", http.StatusGatewayTimeout)
	default:
		n.attachLoadHeader(rw.Header())
		writeBody(rw, p.size)
	}
}

// okBody is the fallback response body when no size is requested.
var okBody = []byte("ok\n")

// writeBody streams a response body of the requested size (bytes), so
// the live cluster moves real data over the loopback TCP connections;
// absent or invalid sizes fall back to a 3-byte "ok".
func writeBody(rw http.ResponseWriter, size int64) {
	if size <= 0 || size > 8<<20 {
		rw.WriteHeader(http.StatusOK)
		rw.Write(okBody) //nolint:errcheck
		return
	}
	if size > 2048 {
		// net/http computes Content-Length itself for bodies that fit its
		// 2 KiB write buffer; setting it explicitly there would only buy
		// the []string allocation inside Header().Set — the last
		// allocation on the /exec hot path.
		rw.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	}
	rw.WriteHeader(http.StatusOK)
	remaining := size
	for remaining > 0 {
		chunk := remaining
		if chunk > int64(len(bodyChunk)) {
			chunk = int64(len(bodyChunk))
		}
		if _, err := rw.Write(bodyChunk[:chunk]); err != nil {
			return
		}
		remaining -= chunk
	}
}

// bodyChunk is the reusable payload buffer for response bodies.
var bodyChunk = make([]byte, 32<<10)

// StatsReport is the JSON body of a node's /stats endpoint.
type StatsReport struct {
	Node      int     `json:"node"`
	Executed  int64   `json:"executed"`
	CGIServed int64   `json:"cgi_served"`
	UptimeS   float64 `json:"uptime_s"`
}

func (n *Node) handleStats(rw http.ResponseWriter, _ *http.Request) {
	rep := StatsReport{
		Node:      n.ID,
		Executed:  n.executed.Load(),
		CGIServed: n.cgiServed.Load(),
		UptimeS:   time.Since(n.origin).Seconds(),
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(rep) //nolint:errcheck
}

// wireBufPool holds scratch buffers for compact load encoding and
// poll-response reads.
var wireBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 256)
	return &b
}}

func (n *Node) handleLoad(rw http.ResponseWriter, req *http.Request) {
	rep := core.Load{
		CPUIdle:   n.res.CPU.IdleRatio(),
		DiskAvail: n.res.Disk.IdleRatio(),
		CPUQueue:  n.res.CPU.QueueLength(),
		DiskQueue: n.res.Disk.QueueLength(),
		Speed:     1,
	}
	if queryHasValue(req.URL.RawQuery, "fmt", "c") {
		// Compact fast path: one pooled buffer, strconv appends, no
		// reflection. This is what the master's poller asks for.
		buf := wireBufPool.Get().(*[]byte)
		b := rep.AppendWire((*buf)[:0])
		rw.Header().Set("Content-Type", core.LoadWireContentType)
		rw.Write(b) //nolint:errcheck
		*buf = b
		wireBufPool.Put(buf)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(rep) //nolint:errcheck
}

// Shutdown stops the server and unblocks in-flight work. Resources are
// closed before the hijacked frame connections so a frame loop blocked
// in virtual work is released and can observe its dead connection.
func (n *Node) Shutdown() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if n.srv != nil {
		n.srv.Shutdown(ctx) //nolint:errcheck
	}
	n.res.Close()
	n.closeFrameConns()
}

// loadSnapshot is one immutable generation of the master's scheduling
// view. The poller builds a fresh snapshot per round and publishes it
// with an atomic pointer swap; the request path only ever reads
// published snapshots, so no lock covers the view.
type loadSnapshot struct {
	epoch uint64
	at    int64 // unixnano publish time
	// atNode stamps when each node's load column was actually sampled:
	// fetch completion for polled nodes, piggyback receipt for nodes the
	// poller skipped, carried forward for nodes the round never reached.
	// The piggyback overlay compares against these — not the publish
	// time — so a report that arrives mid-round (older than publish,
	// newer than its node's sample) survives the epoch move.
	atNode []int64
	view   core.View
}

// Master is a level-I node: it serves client requests, executes statics
// locally, and schedules dynamics through a core.Policy over the latest
// polled load view.
//
// Concurrency design: the polled view is an immutable snapshot behind an
// atomic pointer, swapped by a fan-out poller (one goroutine per node
// per round, sharing one deadline). Node health lives in per-slot
// lock-free circuit breakers (see breakerSet); failover counts and peer
// URLs are per-slot atomics. The only lock on the request path is
// placeMu — a narrow shard covering the policy's own mutable state
// (estimators, booking charges, tie-break RNG) and the response
// histograms; nothing under it blocks or does I/O.
//
// Resilience: every /req carries a deadline (client budget capped by
// DispatchTimeout) that propagates to slaves; dynamics get a retry
// budget with capped-exponential full-jitter backoff across distinct
// nodes, optional tail hedging, and terminal outcomes that are always
// one of served (2xx), shed (503 + Retry-After) or exhausted (502).
type Master struct {
	*Node
	policy    core.Policy
	client    *http.Client
	stop      chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup
	rs        Resilience
	pollFloor time.Duration
	tracer    obs.Tracer
	self      [1]int // masterless-view fallback: this master's own id

	// snap is the current load view generation (never nil after launch).
	snap atomic.Pointer[loadSnapshot]
	// urls maps node id to its base URL; slots fill in as peers launch.
	urls []atomic.Pointer[string]
	// brk holds the per-node circuit breakers — sub-second failure
	// detection, as the switches the paper discusses provide, plus
	// half-open rehabilitation probes.
	brk *breakerSet

	// Piggybacked-report state (see piggyback.go): per-node mailboxes, a
	// version counter the placement path polls, and per-node freshness
	// stamps behind the staleness gauge.
	piggy      []piggySlot
	piggyVer   atomic.Uint64
	fresh      *obs.Freshness
	piggyTotal atomic.Int64
	// piggyApplied/piggyAppliedAt are the placement side's high-water
	// marks, guarded by placeMu.
	piggyApplied   uint64
	piggyAppliedAt []int64

	// Sharded control plane (see shard.go and membership.go). mem holds
	// the current epoch-versioned memState — shard map, own shard, poll
	// set and view tier lists — swapped whole on every membership apply,
	// so the poll, gossip and request paths each pin one consistent
	// generation. Every master has a memState; unsharded masters hold an
	// immutable one (sm == nil) that never changes.
	sharded bool
	mem     atomic.Pointer[memState]
	// memMu serializes membership applies (gossip pull vs POST vs
	// failure detector); readers never take it.
	memMu       sync.Mutex
	gossipEvery time.Duration
	summaryTTL  time.Duration // spill candidates ignore older summaries
	// shardSums holds the freshest summary per remote shard (slots sized
	// to the cluster — the shard count can grow as masters are
	// promoted); shardFresh stamps receipt times behind the per-shard
	// staleness gauge. ownSum is the own-summary build scratch, guarded
	// by ownMu (the poll loop and membership applies both rebuild it).
	shardSums  []shardSumSlot
	shardFresh *obs.Freshness
	ownMu      sync.Mutex
	ownSum     core.ShardSummary
	quality    obs.PlacementQuality
	gossipRx   atomic.Int64
	// gossipMiss counts consecutive failed /shard pulls per peer master
	// (indexed by node id; single writer: the gossip goroutine) — the
	// failure-detection input behind detectDeadMasters. gossipEpochSeen
	// is the same goroutine's last-seen membership epoch, used to grant
	// every new membership a fresh detection window.
	gossipMiss      []int
	gossipEpochSeen uint64
	// rebalanceUntil marks the end of the current shard-handoff window
	// (unixnano; 0 = no epoch move yet). Sheds inside the window are
	// counted in shedRebalance and hint Retry-After from the window's
	// remainder instead of the breaker hold-down.
	rebalanceUntil atomic.Int64
	shedRebalance  atomic.Int64
	memberApplies  atomic.Int64
	// Live master-tier autoscaler (see membership.go): asEvery is the
	// control period (0 = disabled), masterCapable the promotion
	// candidate set, asHold/asHoldUntil the exponential hold epoch that
	// gates demotions. The win* measurement window is guarded by placeMu.
	asEvery       time.Duration
	masterCapable []bool
	asHold        atomic.Int64
	asHoldUntil   atomic.Int64
	winStatics    int64
	winDynamics   int64
	winDemandH    float64
	winDemandC    float64
	// spillView is the synthesized remote view handed to PlaceRemote:
	// cluster-sized load array, candidate list rebuilt per spill from
	// fresh summary digests. Guarded by placeMu.
	spillView  core.View
	spillCands []int

	// frames is the binary-framing client (nil = transport disabled);
	// batchWindow/batchMax configure batched dispatch over it.
	frames      *frameDialer
	batchWindow time.Duration
	batchMax    int
	frameDials  atomic.Int64
	batchesSent atomic.Int64
	batchedReqs atomic.Int64
	pollSkipped atomic.Int64

	// Terminal-outcome accounting: every request counted in accepted is
	// counted in exactly one of served, shed or exhausted — the invariant
	// the chaos harness asserts.
	accepted   atomic.Int64
	served     atomic.Int64
	shedCount  atomic.Int64
	exhausted  atomic.Int64
	failovers  atomic.Int64
	retryCount atomic.Int64
	hedgeCount atomic.Int64
	inflight   atomic.Int64
	reqSeq     atomic.Int64

	// placeMu is the policy shard lock; see the type comment. The working
	// view under it carries the booking charges (placement impact)
	// accumulated since the last snapshot swap, re-seeded from the
	// snapshot whenever the epoch moves.
	placeMu   sync.Mutex
	workView  core.View
	workEpoch uint64
	aliveBuf  []int // masters+slaves filter scratch, reused per request

	// respHist aggregates client-visible /req response times (unscaled
	// seconds); backoffHist the retry backoff sleeps actually taken (s).
	// Both guarded by placeMu.
	respHist    *obs.Histogram
	backoffHist *obs.Histogram
}

// Failovers reports how many dynamic dispatches failed remotely and were
// re-placed (or, having no budget left, fell back or were dropped).
func (m *Master) Failovers() int64 { return m.failovers.Load() }

// Accepted returns how many /req requests passed parameter validation.
func (m *Master) Accepted() int64 { return m.accepted.Load() }

// Served returns how many accepted requests completed with 2xx.
func (m *Master) Served() int64 { return m.served.Load() }

// Shed returns how many accepted requests were refused with 503.
func (m *Master) Shed() int64 { return m.shedCount.Load() }

// Exhausted returns how many dynamics were dropped with 502 after their
// retry budget or deadline ran out.
func (m *Master) Exhausted() int64 { return m.exhausted.Load() }

// Retries returns how many placement attempts beyond each request's
// first were started.
func (m *Master) Retries() int64 { return m.retryCount.Load() }

// Hedges returns how many tail-hedge dispatches were launched.
func (m *Master) Hedges() int64 { return m.hedgeCount.Load() }

// BreakerState returns node id's circuit state (0 closed, 1 half-open,
// 2 open).
func (m *Master) BreakerState(id int) int32 { return m.brk.State(id) }

// BreakerOpens returns node id's cumulative open transitions.
func (m *Master) BreakerOpens(id int) int64 { return m.brk.Opens(id) }

// emit sends a lifecycle event when tracing is enabled. Arrival events
// carry the class and are emitted inline at the handler instead.
func (m *Master) emit(kind obs.EventKind, req int64, node int, value float64) {
	if m.tracer == nil {
		return
	}
	m.tracer.Emit(obs.Event{
		Kind:  kind,
		Req:   req,
		Time:  time.Since(m.origin).Seconds(),
		Node:  node,
		Value: value,
	})
}

// refreshWorkView rebuilds the policy's working view from the current
// snapshot: load columns are re-copied only when the snapshot epoch
// moved (preserving intra-window booking charges, exactly as the
// locked-view implementation did), and the tier lists are re-filtered
// against the circuit breakers into a reused scratch buffer. Callers
// must hold placeMu. Allocation-free in steady state.
func (m *Master) refreshWorkView() {
	s := m.snap.Load()
	epochMoved := s.epoch != m.workEpoch
	if epochMoved {
		m.workEpoch = s.epoch
		m.workView.Load = append(m.workView.Load[:0], s.view.Load...)
		m.workView.Affinity = s.view.Affinity
	}
	// Overlay piggybacked reports fresher than what the view reflects,
	// so placement sees every response's load sample, not just the last
	// poll round's.
	m.applyPiggy(epochMoved, s)
	now := time.Now().UnixNano()
	live := func(id int) bool {
		// The master itself is always placeable (last-resort local run).
		return id == m.ID || m.brk.Allow(id, now)
	}
	buf := core.FilterLive(m.aliveBuf[:0], s.view.Masters, live)
	nMasters := len(buf)
	buf = core.FilterLive(buf, s.view.Slaves, live)
	m.aliveBuf = buf
	m.workView.Masters = buf[:nMasters]
	m.workView.Slaves = buf[nMasters:]
	if nMasters == 0 {
		// Never leave the view masterless; this master can always serve.
		// self is a dedicated backing array — appending into aliveBuf here
		// would overwrite Slaves[0], which aliases the same scratch.
		m.workView.Masters = m.self[:]
	}
}

// bitOf maps a node id to its distinct-node tracking bit. Ids beyond 63
// are untracked (retries may revisit them), which only relaxes the
// distinctness preference on clusters larger than the paper's by an
// order of magnitude.
func bitOf(id int) uint64 {
	if uint(id) < 64 {
		return 1 << uint(id)
	}
	return 0
}

// dropTried removes already-tried nodes from the working view's tier
// lists so retries prefer distinct nodes. The lists are rebuilt from the
// snapshot on every refresh, so in-place compaction is safe; when
// filtering would leave no candidate at all the lists stay untouched —
// re-trying a node beats dropping the request. Callers hold placeMu.
func (m *Master) dropTried(tried uint64) {
	if tried == 0 {
		return
	}
	survivors := 0
	for _, id := range m.workView.Masters {
		if bitOf(id)&tried == 0 {
			survivors++
		}
	}
	for _, id := range m.workView.Slaves {
		if bitOf(id)&tried == 0 {
			survivors++
		}
	}
	if survivors == 0 {
		return
	}
	m.workView.Masters = compactUntried(m.workView.Masters, tried)
	m.workView.Slaves = compactUntried(m.workView.Slaves, tried)
}

// compactUntried filters ids in place, keeping those not in the mask.
func compactUntried(ids []int, tried uint64) []int {
	kept := ids[:0]
	for _, id := range ids {
		if bitOf(id)&tried == 0 {
			kept = append(kept, id)
		}
	}
	return kept
}

// SetNodeURL fills in a peer URL learned after startup.
func (m *Master) SetNodeURL(id int, url string) {
	m.urls[id].Store(&url)
}

// nodeURL returns node id's base URL ("" when unknown).
func (m *Master) nodeURL(id int) string {
	if p := m.urls[id].Load(); p != nil {
		return *p
	}
	return ""
}

// pollLoop refreshes the load view from the poll set's /load endpoints
// — every node when unsharded, this master's own shard when sharded.
// Each round fans out one fetch goroutine per polled node under a
// shared deadline (the polling period), so one slow or dead node delays
// the snapshot swap by at most the period instead of serializing behind
// every other fetch.
func (m *Master) pollLoop(every time.Duration) {
	defer m.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	reports := make([]core.Load, len(m.urls))
	fetched := make([]bool, len(m.urls))
	fetchedAt := make([]int64, len(m.urls))
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.pollOnce(every, reports, fetched, fetchedAt)
		}
	}
}

// pollOnce runs one fan-out poll round over m.pollSet and publishes the
// next snapshot. Nodes whose piggybacked report is younger than the
// poll period are not polled again — the report stands in for the
// fetch, saving the connection (the poller is the fallback,
// piggybacking the fast path). fetchedAt records each sampled node's
// actual sample time (piggyback receipt or fetch completion), which
// becomes the snapshot's per-node atNode stamp.
func (m *Master) pollOnce(period time.Duration, reports []core.Load, fetched []bool, fetchedAt []int64) {
	deadline := period
	if deadline < m.pollFloor {
		// Floor the shared fetch deadline: with very fast polling periods
		// a deadline equal to the period misclassifies every node as
		// failed the moment the host is briefly loaded. Rounds longer than
		// the period simply make the ticker skip beats.
		deadline = m.pollFloor
	}
	prev := m.snap.Load()
	ms := m.mem.Load()
	now := time.Now().UnixNano()
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	var wg sync.WaitGroup
	for _, id := range ms.pollSet {
		fetched[id] = false
		base := m.nodeURL(id)
		if base == "" {
			continue
		}
		if len(m.piggy) > 0 {
			if l, at := m.peekPiggy(id); at > 0 && now-at < int64(period) {
				reports[id] = l
				fetched[id] = true
				fetchedAt[id] = at
				m.pollSkipped.Add(1)
				continue
			}
		}
		wg.Add(1)
		go func(id int, base string) {
			defer wg.Done()
			rep, err := m.fetchLoad(ctx, base)
			if err != nil {
				m.brk.PollFailure(id, time.Now().UnixNano())
				return
			}
			sampled := time.Now().UnixNano()
			reports[id] = rep
			fetched[id] = true
			fetchedAt[id] = sampled
			m.fresh.Touch(id, sampled)
		}(id, base)
	}
	wg.Wait()
	// One rate-window generation per poll round (single writer).
	m.brk.rotate()

	// Re-load the memState: a membership applied mid-round must not have
	// its tier lists overwritten by a snapshot built from the old one.
	ms = m.mem.Load()
	next := &loadSnapshot{
		epoch:  prev.epoch + 1,
		at:     time.Now().UnixNano(),
		atNode: make([]int64, len(reports)),
		view: core.View{
			// Role lists are immutable per memState generation and shared.
			Masters:  ms.masters,
			Slaves:   ms.slaves,
			Affinity: prev.view.Affinity,
			Load:     append([]core.Load(nil), prev.view.Load...),
		},
	}
	// Un-polled nodes carry their previous sample stamp forward.
	copy(next.atNode, prev.atNode)
	for id := range reports {
		if !fetched[id] {
			continue
		}
		rep := reports[id]
		if rep.Speed <= 0 {
			// A report without a speed field keeps the configured value
			// rather than zeroing it.
			rep.Speed = next.view.Load[id].Speed
		}
		next.view.Load[id] = rep
		next.atNode[id] = fetchedAt[id]
		m.brk.PollSuccess(id) // node answers again
	}
	m.snap.Store(next)
	if m.sharded {
		// Slow path (once per poll round): refresh the own-shard summary
		// stamp that responses piggyback and /shard serves.
		m.rebuildShardStamp(ms, next)
	}
}

// fetchLoad polls one node, preferring the compact wire format and
// falling back to JSON for peers that predate it.
func (m *Master) fetchLoad(ctx context.Context, base string) (core.Load, error) {
	var rep core.Load
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/load?fmt=c", nil)
	if err != nil {
		return rep, err
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("load: status %d", resp.StatusCode)
	}
	buf := wireBufPool.Get().(*[]byte)
	defer wireBufPool.Put(buf)
	b, err := readAllInto((*buf)[:0], io.LimitReader(resp.Body, 1<<20))
	*buf = b[:0]
	if err != nil {
		return rep, err
	}
	if core.IsLoadWire(b) {
		return core.ParseLoadWire(b)
	}
	err = json.Unmarshal(b, &rep)
	return rep, err
}

// readAllInto is io.ReadAll into a caller-provided buffer.
func readAllInto(b []byte, r io.Reader) ([]byte, error) {
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			return b, nil
		}
		if err != nil {
			return b, err
		}
	}
}

// tickLoop runs the policy's periodic adaptation.
func (m *Master) tickLoop(every time.Duration) {
	defer m.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.placeMu.Lock()
			m.refreshWorkView()
			m.policy.Tick(time.Since(m.origin).Seconds(), &m.workView)
			m.placeMu.Unlock()
		}
	}
}

// reqDeadline derives a request's absolute deadline: the client's
// TimeoutHeader budget when present and tighter than the configured
// dispatch timeout, else the dispatch timeout itself.
func (m *Master) reqDeadline(start time.Time, req *http.Request) time.Time {
	deadline := start.Add(m.rs.DispatchTimeout)
	if h := req.Header.Get(TimeoutHeader); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms > 0 {
			if d := start.Add(time.Duration(ms) * time.Millisecond); d.Before(deadline) {
				deadline = d
			}
		}
	}
	return deadline
}

// handleRequest is the client-facing endpoint:
// /req?class=s|d&demand=F&w=F&script=N[&size=N][&idem=0]
//
// Every accepted request reaches exactly one terminal outcome: 2xx
// (served), 503 + Retry-After (shed by overload protection), or 502
// (retry budget / deadline exhausted). The outcome logic lives in
// serveReq, shared with the binary client-frame transport.
func (m *Master) handleRequest(rw http.ResponseWriter, req *http.Request) {
	p := parseReqQuery(req.URL.RawQuery)
	if !p.demandOK || p.demand < 0 {
		http.Error(rw, "bad demand", http.StatusBadRequest)
		return
	}
	if !p.wOK {
		http.Error(rw, "bad w", http.StatusBadRequest)
		return
	}
	start := time.Now()
	status, retryAfter := m.serveReq(p, start, m.reqDeadline(start, req))
	switch status {
	case 0:
		m.attachLoadHeader(rw.Header())
		writeBody(rw, p.size)
	case http.StatusServiceUnavailable:
		rw.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		http.Error(rw, "overloaded: request shed", http.StatusServiceUnavailable)
	default:
		http.Error(rw, "dynamic request exhausted its retry budget or deadline", status)
	}
}

// serveReq runs one accepted client request through admission,
// execution/dispatch and completion accounting — the transport-neutral
// core of /req, also driven by 'Q' frames. Returns status 0 (served),
// 503 with a Retry-After hint (shed), or 502 (exhausted).
func (m *Master) serveReq(p reqParams, start time.Time, deadline time.Time) (status, retryAfter int) {
	m.accepted.Add(1)
	var reqID int64
	if m.tracer != nil {
		reqID = m.reqSeq.Add(1)
		m.tracer.Emit(obs.Event{
			Kind:  obs.KindArrival,
			Req:   reqID,
			Time:  start.Sub(m.origin).Seconds(),
			Class: p.class.String(),
			Node:  m.ID,
			Value: p.demand,
		})
	}
	if limit := m.rs.MaxInflight; limit > 0 {
		if m.inflight.Add(1) > int64(limit) {
			m.inflight.Add(-1)
			m.shedCount.Add(1)
			ra := m.shedRetryAfter(1)
			m.emit(obs.KindShed, reqID, m.ID, float64(ra))
			return http.StatusServiceUnavailable, ra
		}
		defer m.inflight.Add(-1)
	}

	if p.class == trace.Static {
		m.runWork(p.demand, p.w, false)
		m.quality.Local.Add(1)
	} else if ra, shed := m.shouldShed(); shed {
		// The local shard is saturated. A sharded master first tries to
		// spill to the best remote shard it knows a fresh summary for;
		// only when no remote candidate exists (or the spill exhausts its
		// budget the same way local dispatch would) does the request reach
		// the shed/exhausted outcome — so sharding never converts a
		// servable request into a 503.
		st, attempted := m.spillRemote(p, reqID, deadline)
		if !attempted {
			m.shedCount.Add(1)
			ra = m.shedRetryAfter(ra)
			m.emit(obs.KindShed, reqID, m.ID, float64(ra))
			return http.StatusServiceUnavailable, ra
		}
		if st != 0 {
			m.exhausted.Add(1)
			m.emit(obs.KindExhausted, reqID, m.ID, float64(m.rs.RetryBudget))
			return st, 0
		}
	} else {
		if st := m.runDynamic(p, reqID, deadline); st != 0 {
			m.exhausted.Add(1)
			m.emit(obs.KindExhausted, reqID, m.ID, float64(m.rs.RetryBudget))
			return st, 0
		}
		m.quality.Local.Add(1)
	}
	// Feed the reservation estimators with the server-side response
	// time, normalized back to unscaled seconds.
	resp := time.Since(start).Seconds() / m.timeScale
	m.placeMu.Lock()
	m.policy.ObserveCompletion(p.class, resp, p.demand)
	m.respHist.Observe(resp)
	if m.asEvery > 0 {
		m.observeClass(p.class, p.demand)
	}
	m.placeMu.Unlock()
	m.served.Add(1)
	m.emit(obs.KindComplete, reqID, m.ID, resp)
	return 0, 0
}

// shouldShed decides whether a dynamic request must be shed instead of
// dispatched. Shedding engages only in the degraded regime where every
// slave's circuit is open — the master tier would silently absorb all
// CGI work — and then defers to the paper's control signals: the θ₂
// reservation (masters keep serving the dynamic share the reservation
// grants, shedding the excess) and, when configured, the master's own
// measured RSRC cost.
func (m *Master) shouldShed() (retryAfter int, shed bool) {
	if m.rs.DisableShedding {
		return 0, false
	}
	s := m.snap.Load()
	if len(s.view.Slaves) == 0 && !m.sharded {
		// Single-tier (M/S-1-style) deployments have no degraded regime
		// to protect; locals are the design, not a fallback. A sharded
		// master that drew an empty shard is different: its peers have
		// slaves, so overload should shed here and spill there.
		return 0, false
	}
	now := time.Now().UnixNano()
	for _, id := range s.view.Slaves {
		if m.brk.Allow(id, now) {
			return 0, false
		}
	}
	// Hint clients to return once the breaker hold-down can have elapsed.
	retryAfter = int((m.brk.cfg.OpenFor + time.Second - 1) / time.Second)
	if retryAfter < 1 {
		retryAfter = 1
	}
	// Pipeline policies own the whole absorption decision (ShedRSRC
	// ceiling plus admission cap) behind one gate; the inline checks
	// below reproduce the same rules for non-pipeline policies.
	if gate, ok := m.policy.(core.AbsorptionGate); ok {
		m.placeMu.Lock()
		denied := gate.DeniesMasterAbsorption(m.ID, &s.view)
		m.placeMu.Unlock()
		if denied {
			return retryAfter, true
		}
		return 0, false
	}
	if t := m.rs.ShedRSRC; t > 0 {
		l := s.view.Load[m.ID]
		if core.RSRC(core.DefaultW, l.CPUIdle, l.DiskAvail) >= t {
			return retryAfter, true
		}
	}
	if adm, ok := m.policy.(core.MasterAdmission); ok {
		m.placeMu.Lock()
		denied := !adm.AdmitsAtMaster()
		m.placeMu.Unlock()
		if denied {
			return retryAfter, true
		}
	}
	return 0, false
}

// Dispatch error taxonomy. errDeadline means the request's global
// deadline is the problem, not the node — retrying cannot help.
var (
	errCircuitOpen = errors.New("dispatch: circuit open")
	errDeadline    = errors.New("dispatch: request deadline exceeded")
)

// remoteStatusError is a non-200 /exec response: the node answered and
// refused, so the work did not run — always safe to retry.
type remoteStatusError int

func (e remoteStatusError) Error() string {
	return "remote exec: status " + strconv.Itoa(int(e))
}

// mayHaveExecuted reports whether a failed dispatch could have run the
// work remotely anyway — the conservative classification behind the
// "never retry non-idempotent work that may have started" rule. Only
// failures provably raised before the request reached the node (open
// circuit, refused with a status, dial failure) are known-safe.
func mayHaveExecuted(err error) bool {
	if errors.Is(err, errCircuitOpen) {
		return false
	}
	var st remoteStatusError
	if errors.As(err, &st) {
		return false
	}
	var op *net.OpError
	if errors.As(err, &op) && op.Op == "dial" {
		return false
	}
	return true
}

// runDynamic places and executes one dynamic request under its deadline
// and retry budget, failing over across distinct nodes (and ultimately
// to local execution) when a remote /exec errs — the restart-on-another-
// node behavior the paper requires of masters when a slave fails, now
// bounded instead of unconditional. Returns 0 on success or the HTTP
// status for a terminal failure.
func (m *Master) runDynamic(p reqParams, reqID int64, deadline time.Time) int {
	var tried uint64
	backoff := m.rs.RetryBackoff
	for attempt := 0; attempt < m.rs.RetryBudget; attempt++ {
		if attempt > 0 {
			m.retryCount.Add(1)
			if backoff > 0 {
				// Full jitter: uniform over [0, current cap].
				d := time.Duration(rand.Int63n(int64(backoff) + 1))
				if time.Now().Add(d).After(deadline) {
					return http.StatusBadGateway
				}
				time.Sleep(d)
				m.placeMu.Lock()
				m.backoffHist.Observe(d.Seconds())
				m.placeMu.Unlock()
				backoff *= 2
				if backoff > m.rs.RetryBackoffMax {
					backoff = m.rs.RetryBackoffMax
				}
			}
		}
		if !time.Now().Before(deadline) {
			return http.StatusBadGateway
		}
		m.placeMu.Lock()
		m.refreshWorkView()
		m.dropTried(tried)
		target := m.policy.Place(core.Request{Class: trace.Dynamic, Script: p.script}, m.ID, &m.workView)
		m.placeMu.Unlock()
		if target == m.ID {
			m.runWork(p.demand, p.w, true)
			return 0
		}
		err := m.dispatch(target, p, deadline, tried)
		if err == nil {
			return 0
		}
		m.failovers.Add(1)
		tried |= bitOf(target)
		m.emit(obs.KindRetry, reqID, target, float64(attempt+1))
		if errors.Is(err, errDeadline) {
			return http.StatusBadGateway
		}
		if !p.idem && mayHaveExecuted(err) {
			// The remote may have performed the side-effecting work;
			// running it again is worse than failing loudly.
			return http.StatusBadGateway
		}
	}
	// Budget exhausted: last-resort local execution, as before the retry
	// budget existed — but only while the deadline still stands.
	if time.Now().Before(deadline) {
		m.runWork(p.demand, p.w, true)
		return 0
	}
	return http.StatusBadGateway
}

// dispatch runs one placement attempt, hedging idempotent requests with
// a second distinct dispatch when the first is still in flight after
// HedgeAfter. The first success wins; a loser completes into the
// buffered channel without leaking its goroutine.
func (m *Master) dispatch(target int, p reqParams, deadline time.Time, tried uint64) error {
	if m.rs.HedgeAfter <= 0 || !p.idem {
		return m.forwardBreakered(target, p, deadline)
	}
	results := make(chan error, 2)
	go func() { results <- m.forwardBreakered(target, p, deadline) }()
	timer := time.NewTimer(m.rs.HedgeAfter)
	defer timer.Stop()
	outstanding := 1
	var firstErr error
	for outstanding > 0 {
		select {
		case err := <-results:
			outstanding--
			if err == nil {
				return nil
			}
			if firstErr == nil {
				firstErr = err
			}
		case <-timer.C: // fires at most once
			h := m.pickHedge(target, tried)
			if h < 0 {
				continue
			}
			m.hedgeCount.Add(1)
			outstanding++
			go func() {
				if h == m.ID {
					m.runWork(p.demand, p.w, true)
					results <- nil
					return
				}
				results <- m.forwardBreakered(h, p, deadline)
			}()
		}
	}
	return firstErr
}

// pickHedge places a second, distinct target for a tail hedge, or -1
// when no distinct candidate exists. The extra Place call double-counts
// the request in the reservation estimators; hedges are rare tail
// events, so the skew is negligible.
func (m *Master) pickHedge(primary int, tried uint64) int {
	m.placeMu.Lock()
	defer m.placeMu.Unlock()
	m.refreshWorkView()
	m.dropTried(tried | bitOf(primary))
	t := m.policy.Place(core.Request{Class: trace.Dynamic}, m.ID, &m.workView)
	if t == primary {
		return -1
	}
	return t
}

// forwardBreakered wraps forward with circuit-breaker accounting: the
// breaker must admit the dispatch, and its outcome feeds the breaker's
// failure detection.
func (m *Master) forwardBreakered(target int, p reqParams, deadline time.Time) error {
	if !time.Now().Before(deadline) {
		return errDeadline
	}
	if !m.brk.Acquire(target, time.Now().UnixNano()) {
		return errCircuitOpen
	}
	err := m.forward(target, p, deadline)
	m.brk.Release(target, err == nil, time.Now().UnixNano())
	return err
}

// forward executes the CGI remotely — over the persistent binary frame
// transport when enabled and the pair negotiated it, else via the
// target's /exec endpoint (the paper's low-overhead remote execution
// path), propagating the request deadline as both a context (cancels
// the round trip) and a header (lets the slave refuse expired work
// before queueing it).
func (m *Master) forward(target int, p reqParams, deadline time.Time) error {
	if m.frames != nil {
		if err, handled := m.forwardFrame(target, p, deadline); handled {
			return err
		}
	}
	base := m.nodeURL(target)
	if base == "" {
		return fmt.Errorf("no URL for node %d", target)
	}
	buf := wireBufPool.Get().(*[]byte)
	b := append((*buf)[:0], base...)
	b = append(b, "/exec?demand="...)
	b = strconv.AppendFloat(b, p.demand, 'g', -1, 64)
	b = append(b, "&w="...)
	b = strconv.AppendFloat(b, p.w, 'g', -1, 64)
	b = append(b, "&fork=1"...)
	url := string(b)
	*buf = b[:0]
	wireBufPool.Put(buf)

	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set(DeadlineHeader, strconv.FormatInt(deadline.UnixNano(), 10))
	resp, err := m.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return errDeadline
		}
		return err
	}
	// Drain the (bounded) body before closing: a response closed with
	// unread bytes discards its keep-alive connection, forcing a fresh
	// TCP+handshake on the next dispatch to the same node.
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)) //nolint:errcheck
	resp.Body.Close()
	m.storePiggyHeader(target, resp.Header)
	m.storeShardHeader(resp.Header)
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusGatewayTimeout:
		// The slave saw the propagated deadline expire; ours has too.
		return errDeadline
	default:
		return remoteStatusError(resp.StatusCode)
	}
}

// Shutdown stops the master's loops and server, then releases any
// pooled frame connections (after the server stops, nothing can dial
// new ones).
func (m *Master) Shutdown() {
	// Idempotent: churn harnesses kill individual masters mid-run and
	// then tear the whole cluster down, hitting the dead one again.
	m.stopOnce.Do(func() {
		close(m.stop)
		m.wg.Wait()
		m.Node.Shutdown()
		if m.frames != nil {
			m.frames.close()
		}
	})
}
