package httpcluster

import (
	"errors"
	"sync"
	"time"
)

// Batched dispatch: when a batch window is configured, a master
// coalesces dynamic requests bound for the same slave that arrive
// within the window into one exec frame, amortizing the per-frame
// syscalls and round trip across the batch. One batcher goroutine per
// target owns the coalescing; callers park on a pooled call slot and
// read their own status back. Opt-in (default off): in calibrated mode
// the window would add artificial latency to a data plane that is
// deliberately not throughput-bound.

// DefaultBatchMax bounds how many requests one frame may carry when
// batching is enabled and no explicit BatchMax is configured.
const DefaultBatchMax = 64

var execCallPool = sync.Pool{New: func() any { return &execCall{done: make(chan error, 1)} }}

// errFrameUnavailable reports that the frame transport disappeared
// under a batched call (negotiated down mid-flight) — defensive only,
// since a pair never renegotiates away from binary.
var errFrameUnavailable = errors.New("frame: binary transport unavailable")

// execBatcher is the rendezvous between request handlers and one
// target's batching goroutine.
type execBatcher struct {
	ch chan *execCall
}

// batcherFor returns target's batcher, starting it on first use (only
// pairs that negotiated binary framing ever get one).
func (f *frameDialer) batcherFor(target int) *execBatcher {
	st := &f.states[target]
	if b := st.bat.Load(); b != nil {
		return b
	}
	b := &execBatcher{ch: make(chan *execCall, 4*f.m.batchMax)}
	if !st.bat.CompareAndSwap(nil, b) {
		return st.bat.Load()
	}
	f.m.wg.Add(1)
	go f.runBatcher(target, b)
	return b
}

// batchExec hands one request to target's batcher and waits for its
// status. During shutdown calls fail with errMasterStopped instead of
// blocking on a batcher that may already have drained and exited.
func (f *frameDialer) batchExec(target int, req frameExec) error {
	b := f.batcherFor(target)
	c := execCallPool.Get().(*execCall)
	c.reqs[0] = req
	select {
	case b.ch <- c:
	case <-f.m.stop:
		execCallPool.Put(c)
		return errMasterStopped
	}
	select {
	case err := <-c.done:
		execCallPool.Put(c)
		return err
	case <-f.m.stop:
		// The batcher may still complete this call; the slot cannot be
		// pooled again.
		return errMasterStopped
	}
}

// runBatcher coalesces calls for one target: the first arrival opens a
// window; everything that lands before the window closes (or the batch
// fills) ships as one frame.
func (f *frameDialer) runBatcher(target int, b *execBatcher) {
	defer f.m.wg.Done()
	m := f.m
	calls := make([]*execCall, 0, m.batchMax)
	reqs := make([]frameExec, 0, m.batchMax)
	sts := make([]int, 0, m.batchMax)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-m.stop:
			for {
				select {
				case c := <-b.ch:
					c.done <- errMasterStopped
				default:
					return
				}
			}
		case c := <-b.ch:
			calls = append(calls[:0], c)
			timer.Reset(m.batchWindow)
		collect:
			for len(calls) < m.batchMax {
				select {
				case c2 := <-b.ch:
					calls = append(calls, c2)
				case <-timer.C:
					break collect
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			reqs, sts = f.shipBatch(target, calls, reqs, sts)
		}
	}
}

// shipBatch sends one coalesced frame and distributes per-entry
// statuses back to the waiting calls. The scratch slices are returned
// for reuse.
func (f *frameDialer) shipBatch(target int, calls []*execCall, reqs []frameExec, sts []int) ([]frameExec, []int) {
	reqs = reqs[:0]
	var dlNs int64
	for _, c := range calls {
		reqs = append(reqs, c.reqs[0])
		if c.reqs[0].deadlineNs > dlNs {
			dlNs = c.reqs[0].deadlineNs
		}
	}
	// The exchange runs under the latest deadline in the batch; each
	// entry still carries its own, which the slave enforces per entry.
	deadline := time.Now().Add(5 * time.Second)
	if dlNs > 0 {
		deadline = time.Unix(0, dlNs)
	}
	sts, err, handled := f.exchange(target, reqs, sts[:0], deadline)
	f.m.batchesSent.Add(1)
	f.m.batchedReqs.Add(int64(len(calls)))
	for i, c := range calls {
		switch {
		case !handled:
			c.done <- errFrameUnavailable
		case err != nil:
			c.done <- err
		default:
			c.done <- statusToErr(sts[i])
		}
	}
	return reqs, sts
}
