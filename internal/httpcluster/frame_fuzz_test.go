package httpcluster

import (
	"bufio"
	"bytes"
	"math"
	"testing"

	"msweb/internal/core"
)

// sameExec compares entries with bit-level float equality (NaN demand
// bits survive the fixed-layout codec exactly).
func sameExec(a, b frameExec) bool {
	return math.Float64bits(a.demand) == math.Float64bits(b.demand) &&
		math.Float64bits(a.w) == math.Float64bits(b.w) &&
		a.deadlineNs == b.deadlineNs && a.fork == b.fork
}

// FuzzFrameDecode pins the binary frame decoders' safety contract:
// arbitrary payloads never panic or read out of bounds, accepted exec
// payloads survive an encode/decode round trip, and the length-prefixed
// reader refuses corrupt lengths instead of allocating unboundedly.
func FuzzFrameDecode(f *testing.F) {
	execSeed := appendExecFrame(nil, []frameExec{
		{demand: 1, w: 0.5, deadlineNs: 42, fork: true},
		{demand: 0, w: 1, deadlineNs: -7, fork: false},
	})
	respSeed := appendRespFrame(nil, []int{200, 503, 504},
		core.Load{CPUIdle: 1, DiskAvail: 0.5, CPUQueue: 2, DiskQueue: 1, Speed: 1}, nil)
	respSumSeed := appendRespFrame(nil, []int{200},
		core.Load{CPUIdle: 1, Speed: 1},
		(&core.ShardSummary{Shard: 1, AtNs: 7, Nodes: 2}).AppendWire(nil))
	reqSeed := appendReqFrame(nil, []frameReq{
		{demand: 1, w: 0.5, script: 3, timeoutMs: 250, dynamic: true, idem: true},
		{demand: 0, w: 1},
	})
	for _, seed := range [][]byte{
		execSeed[4:], // payloads (length prefix stripped)
		respSeed[4:],
		respSumSeed[4:],
		reqSeed[4:],
		execSeed, // full frames exercise readFrame's prefix handling
		respSeed,
		reqSeed,
		{frameVersion, frameKindExec, 0, 0},
		{frameVersion, frameKindReq, 0, 0},
		{frameVersion, frameKindResp, 1, 0, 200, 0, 0},
		{0xff, 0xff, 0xff, 0xff, 0xff},
		{},
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		if reqs, err := parseExecPayload(b, nil); err == nil {
			re := appendExecFrame(nil, reqs)
			reqs2, err := parseExecPayload(re[4:], nil)
			if err != nil {
				t.Fatalf("re-encoded exec payload does not parse: %v", err)
			}
			if len(reqs2) != len(reqs) {
				t.Fatalf("round trip count drift: %d -> %d", len(reqs), len(reqs2))
			}
			for i := range reqs {
				if !sameExec(reqs[i], reqs2[i]) {
					t.Fatalf("entry %d drift: %+v -> %+v", i, reqs[i], reqs2[i])
				}
			}
		}
		if reqs, err := parseReqPayload(b, nil); err == nil {
			re := appendReqFrame(nil, reqs)
			reqs2, err := parseReqPayload(re[4:], nil)
			if err != nil || len(reqs2) != len(reqs) {
				t.Fatalf("re-encoded req payload does not parse: %v", err)
			}
			for i := range reqs {
				a, b := reqs[i], reqs2[i]
				if math.Float64bits(a.demand) != math.Float64bits(b.demand) ||
					math.Float64bits(a.w) != math.Float64bits(b.w) ||
					a.script != b.script || a.timeoutMs != b.timeoutMs ||
					a.dynamic != b.dynamic || a.idem != b.idem {
					t.Fatalf("qentry %d drift: %+v -> %+v", i, a, b)
				}
			}
		}
		if sts, load, hasLoad, sum, err := parseRespPayload(b, nil); err == nil && hasLoad {
			re := appendRespFrame(nil, sts, load, sum)
			sts2, load2, hasLoad2, sum2, err := parseRespPayload(re[4:], nil)
			if err != nil || !hasLoad2 {
				t.Fatalf("re-encoded resp payload does not parse: %v", err)
			}
			if string(sum) != string(sum2) {
				t.Fatalf("summary drift: %q -> %q", sum, sum2)
			}
			for i := range sts {
				// Statuses are u16 on the wire; accepted inputs are already
				// in range, so they must survive exactly.
				if sts[i] != sts2[i] {
					t.Fatalf("status %d drift: %d -> %d", i, sts[i], sts2[i])
				}
			}
			if math.Float64bits(load.Speed) != math.Float64bits(load2.Speed) ||
				load.CPUQueue != load2.CPUQueue || load.DiskQueue != load2.DiskQueue {
				t.Fatalf("load drift: %+v -> %+v", load, load2)
			}
		}
		// The frame reader must bound-check the length prefix and never
		// panic on truncated input.
		readFrame(bufio.NewReader(bytes.NewReader(b)), nil) //nolint:errcheck
	})
}
