package httpcluster

import (
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"msweb/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// scrape fetches a URL's /metrics page.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Fatalf("%s mismatch:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// A freshly launched node's exposition page is fully deterministic, so
// the text format is pinned byte-for-byte by a golden file.
func TestNodeMetricsGolden(t *testing.T) {
	n, err := LaunchNode(NodeOptions{ID: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	checkGolden(t, "node_metrics.golden", scrape(t, n.URL))
}

func TestMasterMetricsGolden(t *testing.T) {
	// Hour-long periods: no poll or tick fires during the test, and
	// LaunchMaster's priming Tick fixes θ₂ from the topology (m=1, p=2
	// with the controller's fallback a and r).
	m, err := LaunchMaster(NodeOptions{
		ID:          0,
		Masters:     []int{0},
		Slaves:      []int{1},
		NodeURLs:    []string{"", "http://unused.invalid"},
		Policy:      core.NewMS(nil, 1),
		LoadRefresh: time.Hour, PolicyTick: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	got := scrape(t, m.URL)
	checkGolden(t, "master_metrics.golden", got)

	// The acceptance gauges must be present with their primed values.
	for _, want := range []string{
		`msweb_scheduler_theta2{node="0"} 0.475`,
		`msweb_scheduler_arrival_ratio{node="0"} 0.5`,
		`msweb_scheduler_service_ratio{node="0"} 0.025`,
		`msweb_scheduler_rsrc{node="0"} 1`,
		`msweb_scheduler_rsrc{node="1"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
}

// After real traffic the histogram families must carry the samples.
func TestMetricsReflectTraffic(t *testing.T) {
	n, err := LaunchNode(NodeOptions{ID: 1, TimeScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(n.URL + "/exec?demand=0.02&w=0.5&fork=1")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}
	got := scrape(t, n.URL)
	for _, want := range []string{
		`msweb_node_executed_total{node="1"} 3`,
		`msweb_node_cgi_served_total{node="1"} 3`,
		`msweb_node_service_seconds_count{node="1"} 3`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
}

func TestNodeOptionsValidate(t *testing.T) {
	if err := (NodeOptions{ID: -1}).Validate(false); err == nil {
		t.Fatal("negative id accepted")
	}
	if err := (NodeOptions{TimeScale: -1}).Validate(false); err == nil {
		t.Fatal("negative time scale accepted")
	}
	ok := NodeOptions{
		ID: 0, Masters: []int{0}, Slaves: []int{1},
		NodeURLs: []string{"", "x"}, Policy: core.NewMS(nil, 1),
		LoadRefresh: time.Second, PolicyTick: time.Second,
	}
	if err := ok.Validate(true); err != nil {
		t.Fatalf("valid master options rejected: %v", err)
	}
	bad := ok
	bad.Policy = nil
	if err := bad.Validate(true); err == nil {
		t.Fatal("master without policy accepted")
	}
	bad = ok
	bad.PolicyTick = 0
	if err := bad.Validate(true); err == nil {
		t.Fatal("zero policy tick accepted")
	}
	bad = ok
	bad.NodeURLs = nil
	if err := bad.Validate(true); err == nil {
		t.Fatal("master id outside NodeURLs accepted")
	}
	bad = ok
	bad.Slaves = []int{7}
	if err := bad.Validate(true); err == nil {
		t.Fatal("tier member outside NodeURLs accepted")
	}
}
