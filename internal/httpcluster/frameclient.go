package httpcluster

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// FrameClient is an external driver's persistent binary-frame connection
// to a master: the 'Q'-frame analogue of GET /req over HTTP. One client
// owns one upgraded connection and its scratch buffers; Do serializes
// callers, so drivers wanting concurrency hold several clients. Statuses
// reuse HTTP codes (200 OK, 400 bad entry, 502 exhausted, 503 shed), so
// a driver's success accounting is transport-independent.
type FrameClient struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	buf  []byte
	qs   []frameReq
	sts  []int
}

// FrameRequest is one client request sent over a frame connection — the
// binary analogue of the /req query parameters. TimeoutMs > 0 caps the
// server-side deadline budget (the X-Msweb-Timeout-Ms semantics).
type FrameRequest struct {
	Demand    float64
	W         float64
	Script    int
	TimeoutMs int
	Dynamic   bool
	Idem      bool
}

// DialFrame connects to a master's base URL (e.g.
// "http://127.0.0.1:40001"), negotiates the msweb-frame/1 upgrade on
// GET /frame, and returns a persistent client. Peers that refuse the
// upgrade (plain slaves, old builds) return an error — the caller falls
// back to HTTP.
func DialFrame(base string, timeout time.Duration) (*FrameClient, error) {
	addr := strings.TrimPrefix(base, "http://")
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c.SetDeadline(time.Now().Add(timeout)) //nolint:errcheck
	if _, err := io.WriteString(c, "GET /frame HTTP/1.1\r\nHost: "+addr+
		"\r\nConnection: Upgrade\r\nUpgrade: "+frameProtocol+"\r\n\r\n"); err != nil {
		c.Close()
		return nil, err
	}
	br := bufio.NewReaderSize(c, 4<<10)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		c.Close()
		return nil, err
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10)) //nolint:errcheck
		resp.Body.Close()
		c.Close()
		return nil, fmt.Errorf("frame: peer refused upgrade (status %d)", resp.StatusCode)
	}
	resp.Body.Close()
	c.SetDeadline(time.Time{}) //nolint:errcheck
	return &FrameClient{conn: c, br: br}, nil
}

// Do sends one 'Q' batch and returns per-entry statuses, in request
// order. The returned slice is reused by the next Do on this client.
// Any transport or protocol error poisons the connection; the caller
// should Close and dial fresh.
func (c *FrameClient) Do(reqs []FrameRequest, deadline time.Time) ([]int, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("frame: empty batch")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.qs = c.qs[:0]
	for _, r := range reqs {
		c.qs = append(c.qs, frameReq{
			demand: r.Demand, w: r.W,
			script: r.Script, timeoutMs: r.TimeoutMs,
			dynamic: r.Dynamic, idem: r.Idem,
		})
	}
	c.conn.SetDeadline(deadline) //nolint:errcheck
	c.buf = appendReqFrame(c.buf[:0], c.qs)
	if _, err := c.conn.Write(c.buf); err != nil {
		return nil, err
	}
	payload, nbuf, err := readFrame(c.br, c.buf)
	c.buf = nbuf
	if err != nil {
		return nil, err
	}
	c.sts, _, _, _, err = parseRespPayload(payload, c.sts[:0])
	if err != nil {
		return nil, err
	}
	if len(c.sts) != len(reqs) {
		return nil, errFrameCount
	}
	return c.sts, nil
}

// Close tears the connection down.
func (c *FrameClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}
