package httpcluster

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"msweb/internal/core"
	"msweb/internal/trace"
)

// firstSlave is a deterministic test policy: always the first live
// slave, falling back to the master. It removes the MS tie-break RNG
// from resilience tests so each asserts exactly one dispatch order.
type firstSlave struct{}

func (firstSlave) Name() string { return "first-slave" }
func (firstSlave) Place(_ core.Request, master int, v *core.View) int {
	if len(v.Slaves) > 0 {
		return v.Slaves[0]
	}
	return master
}
func (firstSlave) ObserveCompletion(trace.Class, float64, float64) {}
func (firstSlave) Tick(float64, *core.View)                        {}

// launchTestMaster wires a master over the given fake-slave URLs with
// polling effectively disabled, so only the request path drives breaker
// state.
func launchTestMaster(t *testing.T, rs Resilience, slaveURLs ...string) *Master {
	t.Helper()
	urls := append([]string{""}, slaveURLs...)
	slaves := make([]int, len(slaveURLs))
	for i := range slaves {
		slaves[i] = i + 1
	}
	m, err := LaunchMaster(NodeOptions{
		ID:          0,
		TimeScale:   1e-6,
		Masters:     []int{0},
		Slaves:      slaves,
		NodeURLs:    urls,
		Policy:      firstSlave{},
		LoadRefresh: time.Hour,
		PolicyTick:  time.Hour,
		Resilience:  rs,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Shutdown)
	return m
}

func getStatus(t *testing.T, url string, header http.Header) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

// A client deadline tighter than a slow slave's service turns into a 502
// (exhausted), not an unbounded wait.
func TestClientDeadlineExhausts(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(300 * time.Millisecond)
		w.Write(okBody) //nolint:errcheck
	}))
	defer slow.Close()

	m := launchTestMaster(t, Resilience{DisableShedding: true}, slow.URL)
	h := http.Header{}
	h.Set(TimeoutHeader, "50")
	resp, _ := getStatus(t, m.URL+"/req?class=d&demand=0&w=0.5", h)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 for an expired deadline", resp.StatusCode)
	}
	if m.Exhausted() != 1 || m.Served() != 0 {
		t.Fatalf("exhausted=%d served=%d, want 1/0", m.Exhausted(), m.Served())
	}
	if m.Accepted() != m.Served()+m.Shed()+m.Exhausted() {
		t.Fatal("terminal outcomes do not add up to accepted")
	}
}

// hijackClose kills the TCP connection mid-exchange: the client sees a
// transport error after the request was sent (so the work may have run).
func hijackClose(w http.ResponseWriter, _ *http.Request) {
	conn, _, err := w.(http.Hijacker).Hijack()
	if err == nil {
		conn.Close()
	}
}

// An idempotent request retries across distinct slaves and ultimately
// falls back to local execution; a non-idempotent one must stop at the
// first ambiguous failure with 502.
func TestRetryDistinctNodesAndIdempotency(t *testing.T) {
	var hits1, hits2 atomic.Int64
	bad1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits1.Add(1)
		hijackClose(w, r)
	}))
	defer bad1.Close()
	bad2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits2.Add(1)
		hijackClose(w, r)
	}))
	defer bad2.Close()

	m := launchTestMaster(t, Resilience{DisableShedding: true}, bad1.URL, bad2.URL)
	resp, _ := getStatus(t, m.URL+"/req?class=d&demand=0&w=0.5", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via local fallback", resp.StatusCode)
	}
	if hits1.Load() != 1 || hits2.Load() != 1 {
		t.Fatalf("slave hits %d/%d, want one each (distinct-node retries)", hits1.Load(), hits2.Load())
	}
	if m.Failovers() != 2 {
		t.Fatalf("failovers=%d, want 2", m.Failovers())
	}

	// Non-idempotent: the hijacked connection is ambiguous (the request
	// reached the node), so no retry and no local rerun — a 502.
	m2 := launchTestMaster(t, Resilience{DisableShedding: true}, bad1.URL, bad2.URL)
	resp, _ = getStatus(t, m2.URL+"/req?class=d&demand=0&w=0.5&idem=0", nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 for ambiguous non-idempotent failure", resp.StatusCode)
	}
	if m2.Exhausted() != 1 {
		t.Fatalf("exhausted=%d, want 1", m2.Exhausted())
	}
}

// A hedged request completes at the fast secondary while the slow
// primary is still sleeping.
func TestHedgeWinsTailLatency(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(400 * time.Millisecond)
		w.Write(okBody) //nolint:errcheck
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(okBody) //nolint:errcheck
	}))
	defer fast.Close()

	m := launchTestMaster(t, Resilience{HedgeAfter: 30 * time.Millisecond, DisableShedding: true}, slow.URL, fast.URL)
	start := time.Now()
	resp, _ := getStatus(t, m.URL+"/req?class=d&demand=0&w=0.5", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if d := time.Since(start); d > 300*time.Millisecond {
		t.Fatalf("hedged request took %v; the hedge should beat the slow primary", d)
	}
	if m.Hedges() != 1 {
		t.Fatalf("hedges=%d, want 1", m.Hedges())
	}
	// Let the slow primary finish into the buffered channel before the
	// server shuts down.
	time.Sleep(450 * time.Millisecond)
}

// With every slave circuit-open and the θ₂ reservation denying master
// admission, dynamics are shed with 503 + Retry-After instead of
// silently overrunning the master tier.
func TestShedsWhenAllSlavesOpen(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(hijackClose))
	defer bad.Close()

	m, err := LaunchMaster(NodeOptions{
		ID:          0,
		TimeScale:   1e-6,
		Masters:     []int{0},
		Slaves:      []int{1},
		NodeURLs:    []string{"", bad.URL},
		Policy:      core.NewMS(nil, 1),
		LoadRefresh: time.Hour,
		PolicyTick:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()

	// First dynamic: dispatch fails, breaker opens, local fallback serves.
	resp, _ := getStatus(t, m.URL+"/req?class=d&demand=0&w=0.5", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via fallback while the breaker is closed", resp.StatusCode)
	}
	if m.BreakerState(1) != breakerOpen {
		t.Fatalf("breaker state %d, want open after the failed dispatch", m.BreakerState(1))
	}

	// Now every slave is open. The fresh reservation admits no dynamics at
	// masters until the estimators move, so requests shed until some are
	// denied — drive a few and require at least one 503 with Retry-After.
	sawShed := false
	for i := 0; i < 5 && !sawShed; i++ {
		resp, _ := getStatus(t, m.URL+"/req?class=d&demand=0&w=0.5", nil)
		if resp.StatusCode == http.StatusServiceUnavailable {
			sawShed = true
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("shed response missing Retry-After")
			}
		}
	}
	if !sawShed {
		t.Fatal("no dynamic was shed with every slave circuit-open")
	}
	if m.Shed() == 0 {
		t.Fatal("shed counter did not move")
	}
	if m.Accepted() != m.Served()+m.Shed()+m.Exhausted() {
		t.Fatalf("accepted=%d served=%d shed=%d exhausted=%d: outcomes do not add up",
			m.Accepted(), m.Served(), m.Shed(), m.Exhausted())
	}

	// Statics keep flowing through the degraded master.
	resp, _ = getStatus(t, m.URL+"/req?class=s&demand=0&w=0.5", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("static got %d during degradation, want 200", resp.StatusCode)
	}
}

// MaxInflight bounds admission: with one token held by a slow static,
// a concurrent request is shed.
func TestMaxInflightSheds(t *testing.T) {
	m := launchTestMaster(t, Resilience{MaxInflight: 1, DisableShedding: true})
	// TimeScale is 1e-6, so a demand of 500_000 unscaled seconds holds the
	// inflight token for ~0.5 s of wall time — comfortably longer than a
	// loopback round trip even on a loaded host.
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, _ := getStatus(t, m.URL+"/req?class=s&demand=500000&w=1", nil)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("long request got %d", resp.StatusCode)
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for m.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("long request never became inflight")
		}
		time.Sleep(time.Millisecond)
	}
	resp, _ := getStatus(t, m.URL+"/req?class=s&demand=0&w=0.5", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 above MaxInflight", resp.StatusCode)
	}
	<-done
	if m.Shed() != 1 || m.Served() != 1 {
		t.Fatalf("shed=%d served=%d, want 1/1", m.Shed(), m.Served())
	}
}

// Slaves shed before queueing at MaxQueue and refuse work whose
// propagated deadline already expired.
func TestNodeShedAndDeadline(t *testing.T) {
	n, err := LaunchNode(NodeOptions{ID: 1, TimeScale: 1e-6, Resilience: Resilience{MaxQueue: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()

	// Expired deadline → 504 without touching the resources.
	h := http.Header{}
	h.Set(DeadlineHeader, strconv.FormatInt(time.Now().Add(-time.Second).UnixNano(), 10))
	resp, _ := getStatus(t, n.URL+"/exec?demand=0&w=0.5", h)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 for an expired deadline", resp.StatusCode)
	}
	if n.DeadlineExpired() != 1 {
		t.Fatalf("deadlineExpired=%d, want 1", n.DeadlineExpired())
	}

	// Fill the queue with one long job, then a second /exec must shed.
	done := make(chan struct{})
	go func() {
		defer close(done)
		getStatus(t, n.URL+"/exec?demand=500000&w=1", nil)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for n.res.CPU.QueueLength() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("long job never occupied the CPU")
		}
		time.Sleep(time.Millisecond)
	}
	resp, _ = getStatus(t, n.URL+"/exec?demand=0&w=1", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 shed before queueing", resp.StatusCode)
	}
	if n.ExecShed() != 1 {
		t.Fatalf("execShed=%d, want 1", n.ExecShed())
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("node shed missing Retry-After")
	}
	<-done
}

// Retry backoff is bounded by the deadline: with a backoff window wider
// than the budget allows, the request exhausts quickly instead of
// sleeping past its deadline.
func TestBackoffRespectsDeadline(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer bad.Close()

	// A refusing (status-error) slave is always safe to retry, so the
	// budget alone would retry three times with up-to-4 s sleeps; the
	// 80 ms deadline must cut that short.
	m := launchTestMaster(t, Resilience{
		DisableShedding: true,
		RetryBackoff:    2 * time.Second,
		RetryBudget:     3,
	}, bad.URL)
	h := http.Header{}
	h.Set(TimeoutHeader, "80")
	start := time.Now()
	resp, _ := getStatus(t, m.URL+"/req?class=d&demand=0&w=0.5", h)
	elapsed := time.Since(start)
	// Full jitter may land under 80 ms and permit a local fallback run —
	// either terminal is legal, but the deadline must hold.
	if resp.StatusCode != http.StatusBadGateway && resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 502 or 200", resp.StatusCode)
	}
	if elapsed > time.Second {
		t.Fatalf("request held for %v; backoff ignored the deadline", elapsed)
	}
}
