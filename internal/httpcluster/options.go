package httpcluster

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"msweb/internal/core"
	"msweb/internal/obs"
)

// Default resilience values. They reproduce the pre-resilience
// constants: a 120 s dispatch bound (the old fixed http.Client timeout),
// three placement attempts (the old failover loop), immediate retries,
// and the 100 ms poll-deadline floor.
const (
	DefaultDispatchTimeout   = 120 * time.Second
	DefaultRetryBudget       = 3
	DefaultPollDeadlineFloor = 100 * time.Millisecond
)

// Resilience bundles the live data plane's failure-handling knobs:
// request deadlines, the retry budget with backoff, tail hedging,
// per-node circuit breakers, and overload shedding. The zero value
// resolves to defaults matching the old hard-coded behavior (plus
// reservation-gated shedding when every slave is circuit-open — see
// DisableShedding).
type Resilience struct {
	// Breaker tunes the per-node circuit breakers that replace the old
	// fixed failHoldDown (see BreakerConfig; Breaker.OpenFor is the
	// configurable successor of that constant).
	Breaker BreakerConfig
	// DispatchTimeout is the default per-request deadline when the
	// client sends no X-Msweb-Timeout-Ms header, and the bound on every
	// master→slave /exec round trip.
	DispatchTimeout time.Duration
	// RetryBudget is the maximum number of placement attempts for one
	// dynamic request, across distinct nodes where possible.
	RetryBudget int
	// RetryBackoff is the base of the capped-exponential-full-jitter
	// backoff between attempts: attempt k sleeps uniform[0, min(
	// RetryBackoff·2^(k−1), RetryBackoffMax)]. 0 retries immediately
	// (the old behavior).
	RetryBackoff time.Duration
	// RetryBackoffMax caps the backoff; defaults to 16×RetryBackoff.
	RetryBackoffMax time.Duration
	// HedgeAfter launches a second attempt for an idempotent dynamic
	// request whose first dispatch is still in flight after this long;
	// the first success wins. 0 disables hedging.
	HedgeAfter time.Duration
	// MaxInflight bounds concurrently admitted /req requests; above it
	// requests are shed with 503 + Retry-After. 0 = unbounded.
	MaxInflight int
	// MaxQueue sheds /exec work with 503 *before* it queues when the
	// node's combined CPU+disk queue population is at least MaxQueue.
	// 0 = unbounded.
	MaxQueue int
	// ShedRSRC additionally sheds dynamics when every slave is
	// circuit-open and this master's own RSRC cost is at least ShedRSRC
	// (its resources are too busy to absorb CGI work without starving
	// statics). 0 disables the RSRC rule; the reservation rule below
	// still applies.
	ShedRSRC float64
	// DisableShedding turns off dynamic-request shedding entirely,
	// restoring the old unconditional local-fallback behavior. With
	// shedding on (the default), a dynamic request is shed with 503 +
	// Retry-After when every slave is circuit-open AND the θ₂
	// reservation denies master admission — the paper's reservation
	// feedback loop extended into admission control.
	DisableShedding bool
}

// withDefaults fills zero fields.
func (r Resilience) withDefaults() Resilience {
	r.Breaker = r.Breaker.withDefaults()
	if r.DispatchTimeout <= 0 {
		r.DispatchTimeout = DefaultDispatchTimeout
	}
	if r.RetryBudget <= 0 {
		r.RetryBudget = DefaultRetryBudget
	}
	if r.RetryBackoffMax <= 0 && r.RetryBackoff > 0 {
		r.RetryBackoffMax = 16 * r.RetryBackoff
	}
	return r
}

// NodeOptions configures one live node or master. It replaces the
// positional-argument Start* constructors: the redesigned entry points
// LaunchNode and LaunchMaster validate an options struct, so adding a
// knob no longer changes every call site and mixed-up arguments fail
// loudly instead of silently swapping periods.
type NodeOptions struct {
	// ID is the node's cluster-wide id (index into NodeURLs).
	ID int
	// Origin is the cluster's common epoch for virtual-time accounting.
	// The zero value means "now".
	Origin time.Time
	// TimeScale multiplies every service duration; 0 means real time (1).
	TimeScale float64
	// Uncalibrated switches the node's virtual resources to fast mode:
	// service demand is charged to a virtual clock instead of being slept
	// off, so /exec completes at CPU speed while load reports (and thus
	// RSRC placement) still reflect the offered demand. This uncaps the
	// data plane for throughput work; calibrated mode (the default)
	// remains the paper-faithful configuration.
	Uncalibrated bool
	// Discipline selects the node's CPU scheduling discipline:
	// core.DisciplineMLFQ / DisciplineRR (both the default 10 ms
	// round-robin slicing — the live plane has no priority decay, so
	// MLFQ degenerates to RR) or DisciplineFCFS (run-to-completion:
	// the quantum is stretched past any realistic service demand).
	Discipline string
	// ListenerShards is how many SO_REUSEPORT accept sockets the node
	// binds to its one loopback port, each with its own accept loop, so
	// connection setup and the persistent-frame read paths spread across
	// cores instead of serializing on one listener goroutine (see
	// listener.go). 0 or 1 keeps the single pre-sharding listener; on
	// platforms without SO_REUSEPORT the option quietly degrades to 1
	// (Node.ListenerShards reports the effective count).
	ListenerShards int
	// BinaryFraming lets a master upgrade its master→slave hop to the
	// persistent length-prefixed binary protocol (see frame.go),
	// negotiated per node-pair with transparent HTTP fallback. Nodes
	// always serve the /frame upgrade endpoint; this knob only controls
	// whether a master dials it.
	BinaryFraming bool
	// BatchWindow > 0 coalesces dynamic requests bound for the same slave
	// within the window into one frame (implies BinaryFraming). Off by
	// default: in calibrated mode the window adds artificial latency.
	BatchWindow time.Duration
	// BatchMax caps requests per frame when batching (default 64).
	BatchMax int
	// Resilience tunes deadlines, retries, breakers and shedding. Nodes
	// consult only Resilience.MaxQueue; masters use all of it.
	Resilience Resilience
	// Tracer receives request lifecycle events (arrival, retry, shed,
	// exhausted, complete) from a master's /req path. nil disables
	// tracing. A live master emits from concurrent handlers, so the
	// tracer must be safe for concurrent use (unlike the simulator's
	// single-threaded JSONL tracer).
	Tracer obs.Tracer

	// The remaining fields configure masters only and are ignored by
	// LaunchNode.

	// Masters and Slaves list the node ids of each tier.
	Masters, Slaves []int
	// NodeURLs maps every node id to its base URL. The master's own slot
	// may be empty — it is filled with the launched server's URL.
	NodeURLs []string
	// Policy is the scheduling policy this master runs.
	Policy core.Policy
	// LoadRefresh is the /load polling period; PolicyTick the policy
	// adaptation period.
	LoadRefresh, PolicyTick time.Duration
	// PollDeadlineFloor floors the shared /load fan-out deadline so very
	// fast polling periods do not misclassify briefly-slow nodes as
	// failed (default 100 ms, the old hard-coded minimum).
	PollDeadlineFloor time.Duration
	// Shards partitions the slave fleet across the master tier: master i
	// of Masters owns shard i, polls only its members, and spills shed
	// dynamics to remote shards via gossiped summaries (see shard.go).
	// 0 or 1 keeps the unsharded single-view master, byte-identical to
	// the pre-sharding behavior. Values > 1 must equal len(Masters).
	Shards int
	// ShardMapMode picks the partition function: core.ShardHash
	// (consistent-hash ring, the default) or core.ShardStatic
	// (position-modulo).
	ShardMapMode string
	// GossipEvery is the master↔master /shard pull period (default
	// 4×LoadRefresh — deliberately slow; piggybacked summaries are the
	// fast path).
	GossipEvery time.Duration
	// AutoscaleMasters > 0 enables the live master-tier autoscaler on
	// sharded masters: every period, the lowest-id master re-runs the
	// Theorem 1 optimal-m computation against its measured per-class
	// load and announces promote/demote membership changes (see
	// membership.go). 0 keeps the tier fixed.
	AutoscaleMasters time.Duration
	// MasterCapable lists the node ids the autoscaler may promote into
	// the master tier; they must have been launched via LaunchMaster
	// (a plain LaunchNode slave has no /req pipeline to promote).
	// Defaults to the initial Masters — i.e. no promotions beyond
	// re-admitting previously demoted masters.
	MasterCapable []int
}

// Validate reports option errors. Master-only fields are checked only
// when master is true.
func (o NodeOptions) Validate(master bool) error {
	switch {
	case o.ID < 0:
		return fmt.Errorf("httpcluster: negative node id %d", o.ID)
	case o.TimeScale < 0:
		return fmt.Errorf("httpcluster: negative time scale %v", o.TimeScale)
	case o.Resilience.MaxInflight < 0 || o.Resilience.MaxQueue < 0:
		return fmt.Errorf("httpcluster: negative admission bounds %+v", o.Resilience)
	case o.BatchWindow < 0 || o.BatchMax < 0:
		return fmt.Errorf("httpcluster: negative batch options (window %v, max %d)", o.BatchWindow, o.BatchMax)
	case o.ListenerShards < 0 || o.ListenerShards > 256:
		return fmt.Errorf("httpcluster: listener shards %d outside [0, 256]", o.ListenerShards)
	}
	switch o.Discipline {
	case "", core.DisciplineMLFQ, core.DisciplineRR, core.DisciplineFCFS:
	default:
		return fmt.Errorf("httpcluster: unknown scheduling discipline %q", o.Discipline)
	}
	if !master {
		return nil
	}
	switch {
	case o.Policy == nil:
		return fmt.Errorf("httpcluster: master %d needs a policy", o.ID)
	case o.LoadRefresh <= 0 || o.PolicyTick <= 0:
		return fmt.Errorf("httpcluster: master %d needs positive polling periods", o.ID)
	case o.ID >= len(o.NodeURLs):
		return fmt.Errorf("httpcluster: master id %d outside NodeURLs (len %d)", o.ID, len(o.NodeURLs))
	}
	for _, ids := range [][]int{o.Masters, o.Slaves} {
		for _, id := range ids {
			if id < 0 || id >= len(o.NodeURLs) {
				return fmt.Errorf("httpcluster: tier lists node %d outside NodeURLs (len %d)", id, len(o.NodeURLs))
			}
		}
	}
	if o.Shards > 1 {
		if o.Shards != len(o.Masters) {
			return fmt.Errorf("httpcluster: %d shards need exactly that many masters (have %d)", o.Shards, len(o.Masters))
		}
		switch o.ShardMapMode {
		case "", core.ShardHash, core.ShardStatic:
		default:
			return fmt.Errorf("httpcluster: unknown shard map mode %q", o.ShardMapMode)
		}
	}
	if o.GossipEvery < 0 {
		return fmt.Errorf("httpcluster: negative gossip period %v", o.GossipEvery)
	}
	if o.AutoscaleMasters < 0 {
		return fmt.Errorf("httpcluster: negative autoscale period %v", o.AutoscaleMasters)
	}
	if o.AutoscaleMasters > 0 && o.Shards <= 1 {
		return fmt.Errorf("httpcluster: master autoscaling requires a sharded master tier (Shards > 1)")
	}
	for _, id := range o.MasterCapable {
		if id < 0 || id >= len(o.NodeURLs) {
			return fmt.Errorf("httpcluster: master-capable node %d outside NodeURLs (len %d)", id, len(o.NodeURLs))
		}
	}
	return nil
}

// withDefaults fills the zero values.
func (o NodeOptions) withDefaults() NodeOptions {
	if o.Origin.IsZero() {
		o.Origin = time.Now()
	}
	if o.TimeScale == 0 {
		o.TimeScale = 1
	}
	if o.PollDeadlineFloor <= 0 {
		o.PollDeadlineFloor = DefaultPollDeadlineFloor
	}
	if o.BatchWindow > 0 {
		o.BinaryFraming = true // batching rides the frame transport
		if o.BatchMax == 0 {
			o.BatchMax = DefaultBatchMax
		}
	}
	o.Resilience = o.Resilience.withDefaults()
	return o
}

// LaunchNode starts a slave node server on a loopback ephemeral port.
// Only ID, Origin, TimeScale, ListenerShards, Uncalibrated, Discipline
// and Resilience.MaxQueue are consulted.
func LaunchNode(o NodeOptions) (*Node, error) {
	if err := o.Validate(false); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	n, err := newNode(o)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/exec", n.handleExec)
	mux.HandleFunc("/frame", n.handleFrame)
	mux.HandleFunc("/load", n.handleLoad)
	mux.HandleFunc("/stats", n.handleStats)
	mux.HandleFunc("/metrics", n.handleMetrics)
	n.serve(mux)
	return n, nil
}

// LaunchMaster starts a master node server on a loopback ephemeral port.
func LaunchMaster(o NodeOptions) (*Master, error) {
	if err := o.Validate(true); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	n, err := newNode(o)
	if err != nil {
		return nil, err
	}
	// A pipeline policy owns the whole master-absorption decision: hand
	// it the RSRC shed ceiling so its gate and the legacy inline rule
	// cannot disagree.
	if pl, ok := o.Policy.(*core.Pipeline); ok {
		pl.SetShedRSRC(o.Resilience.ShedRSRC)
	}
	m := &Master{
		Node:   n,
		policy: o.Policy,
		// No global client timeout: every outbound request (forward,
		// poll fetch) carries its own context deadline, so a short
		// dispatch timeout cannot starve the slower poll round or vice
		// versa.
		client: &http.Client{
			Transport: &http.Transport{MaxIdleConnsPerHost: 128},
		},
		stop:        make(chan struct{}),
		self:        [1]int{o.ID},
		rs:          o.Resilience,
		pollFloor:   o.PollDeadlineFloor,
		tracer:      o.Tracer,
		urls:        make([]atomic.Pointer[string], len(o.NodeURLs)),
		brk:         newBreakerSet(len(o.NodeURLs), o.Resilience.Breaker),
		respHist:    obs.NewHistogram(),
		backoffHist: obs.NewHistogram(),
		// Piggybacked load reports are always on (nodes that never attach
		// the header simply never fill their slot).
		piggy:          make([]piggySlot, len(o.NodeURLs)),
		piggyAppliedAt: make([]int64, len(o.NodeURLs)),
		fresh:          obs.NewFreshness(len(o.NodeURLs)),
		batchWindow:    o.BatchWindow,
		batchMax:       o.BatchMax,
	}
	if o.BinaryFraming {
		m.frames = newFrameDialer(m, len(o.NodeURLs))
	}
	for id, u := range o.NodeURLs {
		if u != "" {
			m.SetNodeURL(id, u)
		}
	}
	m.SetNodeURL(o.ID, m.URL)

	// The scheduling view: the whole cluster when unsharded, this
	// master's own shard (itself plus its shard's slaves) when sharded —
	// the tier lists are shared by every snapshot generation, so they
	// bound the placement, breaker-filter and shed scans to O(shard).
	// Both shapes live in a memState: the unsharded one is immutable,
	// the sharded one is the epoch-0 generation of the membership the
	// tier gossips and rebalances from (see membership.go).
	var ms *memState
	if o.Shards > 1 {
		m.sharded = true
		mb := core.Membership{
			Mode:    o.ShardMapMode,
			Masters: append([]int(nil), o.Masters...),
			Slaves:  append([]int(nil), o.Slaves...),
		}
		mb.Normalize()
		sm, err := mb.ShardMap()
		if err != nil {
			return nil, err
		}
		ms = newMemState(o.ID, mb, sm)
		m.gossipEvery = o.GossipEvery
		if m.gossipEvery <= 0 {
			m.gossipEvery = 4 * o.LoadRefresh
		}
		m.summaryTTL = 3 * m.gossipEvery
		// Per-shard state is sized to the cluster, not the initial shard
		// count: promotions can grow the tier up to one shard per node.
		m.shardSums = make([]shardSumSlot, len(o.NodeURLs))
		m.shardFresh = obs.NewFreshness(len(o.NodeURLs))
		m.gossipMiss = make([]int, len(o.NodeURLs))
		m.asEvery = o.AutoscaleMasters
		m.masterCapable = make([]bool, len(o.NodeURLs))
		capable := o.MasterCapable
		if capable == nil {
			capable = o.Masters
		}
		for _, id := range capable {
			m.masterCapable[id] = true
		}
	} else {
		viewMasters := append([]int(nil), o.Masters...)
		viewSlaves := append([]int(nil), o.Slaves...)
		ms = &memState{shard: -1, masters: viewMasters, slaves: viewSlaves}
		ms.pollSet = append(append([]int(nil), viewMasters...), viewSlaves...)
	}
	m.mem.Store(ms)

	initial := core.View{
		Masters: ms.masters,
		Slaves:  ms.slaves,
		Load:    make([]core.Load, len(o.NodeURLs)),
	}
	for i := range initial.Load {
		initial.Load[i] = core.Load{CPUIdle: 1, DiskAvail: 1, Speed: 1}
	}
	// Prime the policy once so adaptive state (θ₂ in particular) reflects
	// the configured topology before the first ticker fires — and so a
	// /metrics scrape of a fresh master reports the topology-derived cap
	// rather than a placeholder. Sharded masters prime against their own
	// shard: the reservation becomes a per-shard control loop.
	m.policy.Tick(0, &initial)
	// Publish generation 1; the zero workEpoch forces the first placement
	// to seed its working copy from this snapshot.
	m.snap.Store(&loadSnapshot{
		epoch:  1,
		at:     time.Now().UnixNano(),
		atNode: make([]int64, len(o.NodeURLs)),
		view:   initial,
	})
	if m.sharded {
		// Publish the first own-shard stamp immediately so /shard and the
		// response piggyback are live before the first poll round.
		m.rebuildShardStamp(ms, m.snap.Load())
	}
	m.serveClientFrames = m.runFrameReqs

	mux := http.NewServeMux()
	mux.HandleFunc("/req", m.handleRequest)
	mux.HandleFunc("/exec", m.handleExec)
	mux.HandleFunc("/frame", m.handleFrame)
	mux.HandleFunc("/load", m.handleLoad)
	mux.HandleFunc("/shard", m.handleShard)
	mux.HandleFunc(MembershipPath, m.handleMembership)
	mux.HandleFunc("/stats", m.handleStats)
	mux.HandleFunc("/metrics", m.handleMetrics)
	m.serve(mux)

	m.wg.Add(2)
	go m.pollLoop(o.LoadRefresh)
	go m.tickLoop(o.PolicyTick)
	if m.sharded {
		m.wg.Add(1)
		go m.gossipLoop(m.gossipEvery)
		if m.asEvery > 0 {
			m.wg.Add(1)
			go m.autoscaleLoop(m.asEvery)
		}
	}
	return m, nil
}
