package httpcluster

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"msweb/internal/core"
	"msweb/internal/obs"
)

// NodeOptions configures one live node or master. It replaces the
// positional-argument Start* constructors: the redesigned entry points
// LaunchNode and LaunchMaster validate an options struct, so adding a
// knob no longer changes every call site and mixed-up arguments fail
// loudly instead of silently swapping periods.
type NodeOptions struct {
	// ID is the node's cluster-wide id (index into NodeURLs).
	ID int
	// Origin is the cluster's common epoch for virtual-time accounting.
	// The zero value means "now".
	Origin time.Time
	// TimeScale multiplies every service duration; 0 means real time (1).
	TimeScale float64

	// The remaining fields configure masters only and are ignored by
	// LaunchNode.

	// Masters and Slaves list the node ids of each tier.
	Masters, Slaves []int
	// NodeURLs maps every node id to its base URL. The master's own slot
	// may be empty — it is filled with the launched server's URL.
	NodeURLs []string
	// Policy is the scheduling policy this master runs.
	Policy core.Policy
	// LoadRefresh is the /load polling period; PolicyTick the policy
	// adaptation period.
	LoadRefresh, PolicyTick time.Duration
}

// Validate reports option errors. Master-only fields are checked only
// when master is true.
func (o NodeOptions) Validate(master bool) error {
	switch {
	case o.ID < 0:
		return fmt.Errorf("httpcluster: negative node id %d", o.ID)
	case o.TimeScale < 0:
		return fmt.Errorf("httpcluster: negative time scale %v", o.TimeScale)
	}
	if !master {
		return nil
	}
	switch {
	case o.Policy == nil:
		return fmt.Errorf("httpcluster: master %d needs a policy", o.ID)
	case o.LoadRefresh <= 0 || o.PolicyTick <= 0:
		return fmt.Errorf("httpcluster: master %d needs positive polling periods", o.ID)
	case o.ID >= len(o.NodeURLs):
		return fmt.Errorf("httpcluster: master id %d outside NodeURLs (len %d)", o.ID, len(o.NodeURLs))
	}
	for _, ids := range [][]int{o.Masters, o.Slaves} {
		for _, id := range ids {
			if id < 0 || id >= len(o.NodeURLs) {
				return fmt.Errorf("httpcluster: tier lists node %d outside NodeURLs (len %d)", id, len(o.NodeURLs))
			}
		}
	}
	return nil
}

// withDefaults fills the zero values.
func (o NodeOptions) withDefaults() NodeOptions {
	if o.Origin.IsZero() {
		o.Origin = time.Now()
	}
	if o.TimeScale == 0 {
		o.TimeScale = 1
	}
	return o
}

// LaunchNode starts a slave node server on a loopback ephemeral port.
// Only ID, Origin and TimeScale are consulted.
func LaunchNode(o NodeOptions) (*Node, error) {
	if err := o.Validate(false); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	n, err := newNode(o.ID, o.Origin, o.TimeScale)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/exec", n.handleExec)
	mux.HandleFunc("/load", n.handleLoad)
	mux.HandleFunc("/stats", n.handleStats)
	mux.HandleFunc("/metrics", n.handleMetrics)
	n.serve(mux)
	return n, nil
}

// LaunchMaster starts a master node server on a loopback ephemeral port.
func LaunchMaster(o NodeOptions) (*Master, error) {
	if err := o.Validate(true); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	n, err := newNode(o.ID, o.Origin, o.TimeScale)
	if err != nil {
		return nil, err
	}
	m := &Master{
		Node:   n,
		policy: o.Policy,
		client: &http.Client{
			Transport: &http.Transport{MaxIdleConnsPerHost: 128},
			Timeout:   120 * time.Second,
		},
		stop:        make(chan struct{}),
		urls:        make([]atomic.Pointer[string], len(o.NodeURLs)),
		failedUntil: make([]atomic.Int64, len(o.NodeURLs)),
		respHist:    obs.NewHistogram(),
	}
	for id, u := range o.NodeURLs {
		if u != "" {
			m.SetNodeURL(id, u)
		}
	}
	m.SetNodeURL(o.ID, m.URL)
	initial := core.View{
		Masters: append([]int(nil), o.Masters...),
		Slaves:  append([]int(nil), o.Slaves...),
		Load:    make([]core.Load, len(o.NodeURLs)),
	}
	for i := range initial.Load {
		initial.Load[i] = core.Load{CPUIdle: 1, DiskAvail: 1, Speed: 1}
	}
	// Prime the policy once so adaptive state (θ₂ in particular) reflects
	// the configured topology before the first ticker fires — and so a
	// /metrics scrape of a fresh master reports the topology-derived cap
	// rather than a placeholder.
	m.policy.Tick(0, &initial)
	// Publish generation 1; the zero workEpoch forces the first placement
	// to seed its working copy from this snapshot.
	m.snap.Store(&loadSnapshot{epoch: 1, view: initial})

	mux := http.NewServeMux()
	mux.HandleFunc("/req", m.handleRequest)
	mux.HandleFunc("/exec", m.handleExec)
	mux.HandleFunc("/load", m.handleLoad)
	mux.HandleFunc("/stats", m.handleStats)
	mux.HandleFunc("/metrics", m.handleMetrics)
	m.serve(mux)

	m.wg.Add(2)
	go m.pollLoop(o.LoadRefresh)
	go m.tickLoop(o.PolicyTick)
	return m, nil
}
