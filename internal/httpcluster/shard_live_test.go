package httpcluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"msweb/internal/core"
)

// A piggybacked report that arrives mid-poll-round — older than the
// round's publish stamp, newer than the node's actual sample — must
// survive the epoch move. Flooring the overlay at the snapshot publish
// time (the reordered-report race this regression pins) would silently
// drop such a report on every round.
func TestPiggybackSurvivesEpochMove(t *testing.T) {
	m := launchTestMaster(t, Resilience{DisableShedding: true}, "http://192.0.2.1:1")

	piggyLoad := core.Load{CPUIdle: 0.25, DiskAvail: 0.5, CPUQueue: 3, Speed: 1}
	m.storePiggy(1, piggyLoad)
	_, receipt := m.peekPiggy(1)

	// Simulate the race: the poller sampled node 1 *before* the piggyback
	// arrived, then published *after* it.
	polled := core.Load{CPUIdle: 1, DiskAvail: 1, Speed: 1}
	publish := func(sampleAt int64) {
		prev := m.snap.Load()
		view := prev.view
		view.Load = append([]core.Load(nil), prev.view.Load...)
		view.Load[1] = polled
		atNode := make([]int64, len(view.Load))
		atNode[1] = sampleAt
		m.snap.Store(&loadSnapshot{
			epoch:  prev.epoch + 1,
			at:     time.Now().UnixNano(),
			atNode: atNode,
			view:   view,
		})
	}
	publish(receipt - 1)

	m.placeMu.Lock()
	m.refreshWorkView()
	got := m.workView.Load[1]
	m.placeMu.Unlock()
	if got != piggyLoad {
		t.Fatalf("working view %+v after epoch move, want the fresher piggybacked %+v", got, piggyLoad)
	}

	// Newest-wins cuts the other way too: when the poll sample is fresher
	// than the stored report, the epoch move keeps the polled column.
	publish(receipt + 1)
	m.placeMu.Lock()
	m.refreshWorkView()
	got = m.workView.Load[1]
	m.placeMu.Unlock()
	if got != polled {
		t.Fatalf("working view %+v, want the fresher polled %+v over the stale report", got, polled)
	}
}

// The staleness gauge tracks report receipt: -1 before any report, then
// the age of the last one — so delayed reports surface as growing age,
// not as a silently frozen view.
func TestStalenessGaugeUnderDelayedReports(t *testing.T) {
	m := launchTestMaster(t, Resilience{DisableShedding: true}, "http://192.0.2.1:1")

	now := time.Now().UnixNano()
	if age := m.fresh.AgeSeconds(1, now); age != -1 {
		t.Fatalf("age %v before any report, want -1", age)
	}
	m.storePiggy(1, core.Load{CPUIdle: 1, DiskAvail: 1, Speed: 1})
	stamp := m.fresh.Stamp(1)
	if stamp == 0 {
		t.Fatal("freshness stamp not touched by the report")
	}
	if age := m.fresh.AgeSeconds(1, stamp); age != 0 {
		t.Fatalf("age %v at receipt instant, want 0", age)
	}
	// No further reports for (a simulated) 7 s: the gauge must say so.
	if age := m.fresh.AgeSeconds(1, stamp+7e9); age != 7 {
		t.Fatalf("age %v after a 7s report gap, want 7", age)
	}
}

// launchShardedTestMaster wires master 0 of a two-shard pair: shard 0
// (its own) holds slave 2, shard 1 holds slave 3, partitioned statically
// so the test controls who owns what. Master 1 is a placeholder peer
// (never launched).
func launchShardedTestMaster(t *testing.T, rs Resilience, slave2URL, slave3URL string) *Master {
	t.Helper()
	m, err := LaunchMaster(NodeOptions{
		ID:           0,
		TimeScale:    1e-6,
		Masters:      []int{0, 1},
		Slaves:       []int{2, 3},
		NodeURLs:     []string{"", "", slave2URL, slave3URL},
		Policy:       core.NewMS(nil, 1),
		LoadRefresh:  time.Hour,
		PolicyTick:   time.Hour,
		Shards:       2,
		ShardMapMode: core.ShardStatic,
		Resilience:   rs,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Shutdown)
	return m
}

// freshRemoteSummary plants a just-stamped shard-1 summary advertising
// node 3 as an idle spill candidate.
func freshRemoteSummary(m *Master) {
	m.storeShardSummary(&core.ShardSummary{
		Shard: 1, AtNs: time.Now().UnixNano(), Nodes: 1,
		CPUIdle: 1, DiskAvail: 1, Idle: 1,
		Top: []core.ShardDigest{{Node: 3, Load: core.Load{CPUIdle: 1, DiskAvail: 1, Speed: 1}}},
	})
}

// A cross-shard spill whose remote candidate fails (and whose breaker
// then opens) must end in the same terminal taxonomy local dispatch
// produces — 503 shed, never a hang or a stray 5xx class — including
// when the request arrives over the binary frame transport.
func TestSpillBreakerTaxonomyOverFrames(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(hijackClose))
	defer bad.Close()
	// Own shard's slave 2 and remote shard's slave 3 both refuse.
	m := launchShardedTestMaster(t, Resilience{}, bad.URL, bad.URL)

	// The local shard is saturated: its only slave's circuit is open.
	now := time.Now().UnixNano()
	m.brk.open(&m.brk.slots[2], now)
	freshRemoteSummary(m)

	fc, err := DialFrame(m.URL, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	sawShed := false
	for i := 0; i < 5 && !sawShed; i++ {
		sts, err := fc.Do([]FrameRequest{{Demand: 0, W: 0.5, Dynamic: true, Idem: true}},
			time.Now().Add(2*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		switch sts[0] {
		case http.StatusOK:
			// The gate admitted this one at the master; keep driving.
		case http.StatusServiceUnavailable:
			sawShed = true
		default:
			t.Fatalf("frame status %d, want 200 or 503 — spill must keep local dispatch's taxonomy", sts[0])
		}
	}
	if !sawShed {
		t.Fatal("no dynamic was shed with the local shard saturated and the remote candidate failing")
	}
	// The failed spill attempt was a real dispatch: it tripped node 3's
	// breaker and was counted, so the *next* shed skipped the remote
	// (attempted=false → 503), exactly like all-breakers-open locally.
	if m.quality.SpillFailed.Load() == 0 {
		t.Fatal("spill failure not counted")
	}
	if m.BreakerState(3) != breakerOpen {
		t.Fatalf("breaker state %d for the failed spill target, want open", m.BreakerState(3))
	}
	if m.Shed() == 0 {
		t.Fatal("shed counter did not move")
	}
	if m.Accepted() != m.Served()+m.Shed()+m.Exhausted() {
		t.Fatalf("accepted=%d served=%d shed=%d exhausted=%d: outcomes do not add up",
			m.Accepted(), m.Served(), m.Shed(), m.Exhausted())
	}

	// And the HTTP path agrees: same saturation, same 503 + Retry-After.
	sawShed = false
	for i := 0; i < 5 && !sawShed; i++ {
		resp, _ := getStatus(t, m.URL+"/req?class=d&demand=0&w=0.5", nil)
		if resp.StatusCode == http.StatusServiceUnavailable {
			sawShed = true
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("shed response missing Retry-After")
			}
		} else if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200 or 503", resp.StatusCode)
		}
	}
	if !sawShed {
		t.Fatal("HTTP path never shed under the same saturation")
	}
}

// With no fresh remote summary at all, a sharded master's shed is
// indistinguishable from the unsharded one: straight 503, no spill
// attempt, nothing counted against placement quality.
func TestSpillSkippedWithoutFreshSummary(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(hijackClose))
	defer bad.Close()
	m := launchShardedTestMaster(t, Resilience{}, bad.URL, bad.URL)
	m.brk.open(&m.brk.slots[2], time.Now().UnixNano())

	sawShed := false
	for i := 0; i < 5 && !sawShed; i++ {
		resp, _ := getStatus(t, m.URL+"/req?class=d&demand=0&w=0.5", nil)
		if resp.StatusCode == http.StatusServiceUnavailable {
			sawShed = true
		}
	}
	if !sawShed {
		t.Fatal("no shed with the local shard saturated")
	}
	if got := m.quality.Spilled.Load(); got != 0 {
		t.Fatalf("spilled=%d without any remote summary, want 0", got)
	}
	if m.quality.SpillFailed.Load() != 0 {
		t.Fatalf("spill_failures=%d without any dispatch attempt, want 0", m.quality.SpillFailed.Load())
	}
}

// Sharded smoke: a 4-master × 64-slave loopback cluster in fast mode
// serves a mixed static/dynamic burst on every master with zero 5xx —
// the CI gate for the sharded control plane under -race.
func TestShardedClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("68-server smoke cluster")
	}
	c, err := Start(Config{
		Nodes: 68, Masters: 4, Shards: 4,
		TimeScale:    1e-6,
		LoadRefresh:  20 * time.Millisecond,
		PolicyTick:   50 * time.Millisecond,
		GossipEvery:  40 * time.Millisecond,
		Uncalibrated: true,
		MakePolicy:   func(id int) core.Policy { return core.NewMS(nil, int64(id)+1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	urls := c.MasterURLs()

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}, Timeout: 10 * time.Second}
	const reqs = 400
	var bad5xx, failed atomic.Int64
	var wg sync.WaitGroup
	sem := make(chan struct{}, 32)
	for i := 0; i < reqs; i++ {
		cls := "s"
		if i%2 == 1 {
			cls = "d"
		}
		url := fmt.Sprintf("%s/req?class=%s&demand=0.0001&w=0.5&script=%d", urls[i%len(urls)], cls, i%10)
		wg.Add(1)
		sem <- struct{}{}
		go func(url string) {
			defer wg.Done()
			defer func() { <-sem }()
			resp, err := client.Get(url)
			if err != nil {
				failed.Add(1)
				return
			}
			resp.Body.Close()
			if resp.StatusCode >= 500 {
				bad5xx.Add(1)
			}
		}(url)
	}
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d transport failures", n)
	}
	if n := bad5xx.Load(); n != 0 {
		t.Fatalf("%d responses ≥500, want zero under the sharded smoke", n)
	}

	// Every master stayed inside its shard: a healthy cluster never
	// spills, and the outcome accounting closes on each master.
	for _, m := range c.Masters {
		if m.Accepted() != m.Served()+m.Shed()+m.Exhausted() {
			t.Fatalf("master %d: accepted=%d served=%d shed=%d exhausted=%d",
				m.ID, m.Accepted(), m.Served(), m.Shed(), m.Exhausted())
		}
	}
}
