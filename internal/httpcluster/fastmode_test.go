package httpcluster

import (
	"net/http"
	"testing"
	"time"

	"msweb/internal/core"
)

// Uncalibrated resources never sleep: seconds of virtual demand
// complete at CPU speed, while the load report still shows the offered
// demand (busy fraction, virtual queue backlog).
func TestFastResourceAccounting(t *testing.T) {
	r := NewFastResource(10*time.Millisecond, time.Now())
	start := time.Now()
	r.Use(5 * time.Second)
	if wall := time.Since(start); wall > 100*time.Millisecond {
		t.Fatalf("fast Use(5s) took %v of wall clock", wall)
	}
	if q := r.QueueLength(); q < 100 {
		t.Fatalf("queue length %d after 5s of instantaneous demand, want a deep virtual backlog", q)
	}
	if bf := r.BusyFraction(); bf <= 0.5 {
		t.Fatalf("busy fraction %v after far-oversubscribed demand, want ~1", bf)
	}
	if idle := r.IdleRatio(); idle > 0.5 {
		t.Fatalf("idle ratio %v right after saturating demand, want ~0", idle)
	}
	// The rstat window resets on sample: with no further demand the next
	// window reports idle again.
	if idle := r.IdleRatio(); idle < 0.5 {
		t.Fatalf("idle ratio %v in a quiet follow-up window, want ~1", idle)
	}
}

// An uncalibrated node answers /exec for large demands immediately and
// its /load report reflects the backlog the demand implies.
func TestUncalibratedNodeFast(t *testing.T) {
	n, err := LaunchNode(NodeOptions{ID: 1, Uncalibrated: true})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()

	start := time.Now()
	resp, body := getStatus(t, n.URL+"/exec?demand=3&w=0.5&fork=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if wall := time.Since(start); wall > time.Second {
		t.Fatalf("uncalibrated /exec of 3s demand took %v", wall)
	}
	if n.Executed() != 1 || n.CGIServed() != 1 {
		t.Fatalf("executed=%d cgi=%d, want 1/1", n.Executed(), n.CGIServed())
	}
	if q := n.res.CPU.QueueLength(); q == 0 {
		t.Fatal("virtual CPU backlog empty after 1.5s of CPU demand")
	}
}

// The whole cluster runs uncalibrated end to end: a demand mix that
// would take seconds calibrated finishes immediately, through the
// regular scheduling path.
func TestUncalibratedClusterSmoke(t *testing.T) {
	c, err := Start(Config{
		Nodes: 3, Masters: 1, TimeScale: 1,
		LoadRefresh: 50 * time.Millisecond, PolicyTick: 100 * time.Millisecond,
		MakePolicy:   func(id int) core.Policy { return core.NewMS(nil, int64(id)+1) },
		Uncalibrated: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	start := time.Now()
	url := c.MasterURLs()[0]
	for i := 0; i < 20; i++ {
		resp, body := getStatus(t, url+"/req?class=d&demand=0.1&w=0.5&script=1", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("20 uncalibrated dynamics (2s virtual demand) took %v", wall)
	}
}
