package httpcluster

import (
	"net/http"
	"sync"
	"time"

	"msweb/internal/core"
)

// Piggybacked load reports. A poll-only master's view of a node is on
// average half a poll interval stale; every /exec round trip is a
// fresher sample the master already paid for. Nodes therefore attach
// their compact l1 load line (the /load?fmt=c wire format, newline
// stripped) to /exec and /req responses as the X-Msweb-Load header —
// and to every binary frame response — and masters fold it into the
// scheduling view on receipt. The poller stays as the slow-path
// fallback that covers idle pairs (no responses → no piggybacks) and
// skips nodes whose piggybacked report is younger than the poll
// interval.
//
// Node side, the report is a cached stamp refreshed at most every
// loadStampTTL: the hot path pays one atomic load and a header-map
// assignment of a prebuilt []string — nothing per response is
// allocated or sampled, which keeps the 0 allocs/op pins and stops
// piggybacking from hammering the rstat windows. Master side, reports
// land in per-node slots guarded by tiny mutexes and are overlaid onto
// the policy's working view only when the version counter moved — the
// placement path's steady-state cost is one atomic load.

// LoadHeader carries a node's compact load report on /exec and /req
// responses.
const LoadHeader = "X-Msweb-Load"

// loadStampTTL bounds how stale a node's cached piggyback report may
// be. Well under the default 100 ms poll period, so piggybacked views
// are strictly fresher than polled ones even at modest request rates.
const loadStampTTL = 5 * time.Millisecond

// loadStamp is one immutable generation of a node's self-report.
type loadStamp struct {
	at   int64 // unixnano when sampled
	load core.Load
	hdr  []string // prebuilt header value: one l1 line, newline stripped
}

// currentLoad returns the node's freshest self-report, resampling when
// the cached stamp aged out.
func (n *Node) currentLoad() *loadStamp {
	if s := n.stamp.Load(); s != nil && time.Now().UnixNano()-s.at < int64(loadStampTTL) {
		return s
	}
	return n.refreshLoadStamp()
}

// refreshLoadStamp samples the resources and publishes a new stamp.
// Concurrent refreshes race benignly: both stamps are valid samples.
func (n *Node) refreshLoadStamp() *loadStamp {
	l := core.Load{
		CPUIdle:   n.res.CPU.IdleRatio(),
		DiskAvail: n.res.Disk.IdleRatio(),
		CPUQueue:  n.res.CPU.QueueLength(),
		DiskQueue: n.res.Disk.QueueLength(),
		Speed:     1,
	}
	b := l.AppendWire(make([]byte, 0, 64))
	s := &loadStamp{
		at:   time.Now().UnixNano(),
		load: l,
		hdr:  []string{string(b[: len(b)-1 : len(b)-1])}, // header values cannot carry the trailing \n
	}
	n.stamp.Store(s)
	return s
}

// attachLoadHeader piggybacks the node's load report onto a response.
// Direct map assignment of the cached slice: no []string allocation,
// unlike Header().Set. Sharded masters additionally attach their
// own-shard summary stamp (nil pointer everywhere else — one atomic
// load and a branch).
func (n *Node) attachLoadHeader(h http.Header) {
	h[LoadHeader] = n.currentLoad().hdr
	if s := n.shardWire.Load(); s != nil {
		h[ShardHeader] = s.hdr
	}
}

// piggySlot is a master's mailbox for one node's piggybacked reports.
type piggySlot struct {
	mu   sync.Mutex
	load core.Load
	at   int64 // unixnano of receipt; 0 = never
}

// storePiggy records a piggybacked report from node id and bumps the
// version so the next placement folds it in.
func (m *Master) storePiggy(id int, l core.Load) {
	if id < 0 || id >= len(m.piggy) {
		return
	}
	now := time.Now().UnixNano()
	s := &m.piggy[id]
	s.mu.Lock()
	s.load = l
	s.at = now
	s.mu.Unlock()
	m.fresh.Touch(id, now)
	m.piggyVer.Add(1)
	m.piggyTotal.Add(1)
}

// storePiggyHeader parses a response's X-Msweb-Load header, if any,
// into node id's slot.
func (m *Master) storePiggyHeader(id int, h http.Header) {
	v := h[LoadHeader]
	if len(v) == 0 {
		return
	}
	buf := wireBufPool.Get().(*[]byte)
	b := append((*buf)[:0], v[0]...)
	l, err := core.ParseLoadWire(b)
	*buf = b[:0]
	wireBufPool.Put(buf)
	if err != nil {
		return
	}
	m.storePiggy(id, l)
}

// peekPiggy returns node id's latest piggybacked report and its
// receipt time (0 when none ever arrived).
func (m *Master) peekPiggy(id int) (core.Load, int64) {
	s := &m.piggy[id]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.load, s.at
}

// applyPiggy overlays piggybacked reports newer than what the working
// view already reflects. Callers hold placeMu. epochMoved means the
// working view was just re-seeded from snapshot s: each node's
// applied-at floor resets to that node's own sample time (s.atNode),
// NOT the snapshot publish time — a report that arrives mid-round is
// older than the publish stamp yet fresher than the node's actual
// sample, and flooring at publish time would silently drop it on every
// epoch move (reordered-report race). Reports newer than the floor are
// re-applied (the copy wiped them); older ones are not (the poll is
// fresher). Steady state with no new reports is one atomic load.
func (m *Master) applyPiggy(epochMoved bool, s *loadSnapshot) {
	if len(m.piggy) == 0 {
		return
	}
	v := m.piggyVer.Load()
	if !epochMoved && v == m.piggyApplied {
		return
	}
	m.piggyApplied = v
	for id := range m.piggy {
		if epochMoved {
			floor := s.at
			if id < len(s.atNode) {
				floor = s.atNode[id]
			}
			m.piggyAppliedAt[id] = floor
		}
		l, at := m.peekPiggy(id)
		if at > m.piggyAppliedAt[id] {
			m.piggyAppliedAt[id] = at
			m.workView.ApplyReport(id, l)
		}
	}
}
