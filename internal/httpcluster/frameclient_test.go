package httpcluster

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"msweb/internal/core"
)

// startFrameTestCluster boots a small uncalibrated cluster with a
// sharded master for the concurrent frame-client tests.
func startFrameTestCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := Start(Config{
		Nodes: 3, Masters: 1, TimeScale: 1,
		LoadRefresh: 50 * time.Millisecond, PolicyTick: 100 * time.Millisecond,
		MakePolicy:     func(int) core.Policy { return core.NewMS(nil, 1) },
		Uncalibrated:   true,
		BinaryFraming:  true,
		ListenerShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

// Many frame clients hammering one sharded master concurrently: every
// connection sends its own deterministic accept/reject pattern, so any
// cross-connection response mixup (a status delivered to the wrong
// client, or out of order within one connection) is detected by a
// status that does not match that connection's own schedule. Run under
// -race this also exercises the per-shard connection registries.
func TestConcurrentFrameClientsNoCrossTalk(t *testing.T) {
	c := startFrameTestCluster(t)
	url := c.Masters[0].URL

	const clients = 8
	const iters = 60
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fc, err := DialFrame(url, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer fc.Close()
			for j := 0; j < iters; j++ {
				// Connection i's schedule: iteration j is deliberately
				// malformed (negative demand → 400) iff (i+j) is even.
				req := FrameRequest{Demand: 0.0001, W: 0.5, Dynamic: j%3 == 0}
				want := http.StatusOK
				if (i+j)%2 == 0 {
					req.Demand = -1
					want = http.StatusBadRequest
				}
				sts, err := fc.Do([]FrameRequest{req}, time.Now().Add(5*time.Second))
				if err != nil {
					errs <- err
					return
				}
				if len(sts) != 1 || sts[0] != want {
					t.Errorf("client %d iter %d: status %v, want %d", i, j, sts, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Multi-entry 'Q' batches from concurrent clients: per-entry statuses
// must come back in request order with the right count, even though the
// master serves batch entries concurrently.
func TestConcurrentFrameBatchesKeepOrder(t *testing.T) {
	c := startFrameTestCluster(t)
	url := c.Masters[0].URL

	const clients = 4
	const iters = 30
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fc, err := DialFrame(url, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer fc.Close()
			for j := 0; j < iters; j++ {
				// Entry k is malformed iff (i+j+k) ≡ 0 (mod 3): each batch
				// carries a connection-specific mix of accepts and rejects.
				batch := make([]FrameRequest, 3)
				want := make([]int, 3)
				for k := range batch {
					batch[k] = FrameRequest{Demand: 0.0001, W: 0.5}
					want[k] = http.StatusOK
					if (i+j+k)%3 == 0 {
						batch[k].Demand = -1
						want[k] = http.StatusBadRequest
					}
				}
				sts, err := fc.Do(batch, time.Now().Add(5*time.Second))
				if err != nil {
					errs <- err
					return
				}
				if len(sts) != len(want) {
					t.Errorf("client %d iter %d: %d statuses, want %d", i, j, len(sts), len(want))
					return
				}
				for k := range want {
					if sts[k] != want[k] {
						t.Errorf("client %d iter %d entry %d: status %d, want %d", i, j, k, sts[k], want[k])
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
