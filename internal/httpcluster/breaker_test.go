package httpcluster

import (
	"sync"
	"testing"
	"time"
)

// Breaker transition tests run on a fake clock: every step supplies its
// own "now", so state changes are pinned without sleeping.
func TestBreakerTransitions(t *testing.T) {
	const sec = int64(time.Second)
	type step struct {
		at      int64 // fake UnixNano
		op      string
		ok      bool  // for release/poll ops
		want    bool  // for allow/acquire ops
		state   int32 // expected state after the step
		comment string
	}
	cases := []struct {
		name  string
		cfg   BreakerConfig
		steps []step
	}{
		{
			name: "one strike opens, hold-down, probe closes",
			cfg:  BreakerConfig{FailureThreshold: 1, OpenFor: 2 * time.Second},
			steps: []step{
				{at: 0, op: "allow", want: true, state: breakerClosed, comment: "fresh slot is closed"},
				{at: 0, op: "acquire", want: true, state: breakerClosed},
				{at: 0, op: "release", ok: false, state: breakerOpen, comment: "threshold 1: first failure opens"},
				{at: 1 * sec, op: "allow", want: false, state: breakerOpen, comment: "hold-down still running"},
				{at: 2 * sec, op: "allow", want: true, state: breakerHalfOpen, comment: "hold-down elapsed → half-open"},
				{at: 2 * sec, op: "acquire", want: true, state: breakerHalfOpen, comment: "probe slot claimed"},
				{at: 2 * sec, op: "acquire", want: false, state: breakerHalfOpen, comment: "only one probe in flight"},
				{at: 2*sec + 1, op: "release", ok: true, state: breakerClosed, comment: "probe success closes"},
				{at: 2*sec + 2, op: "allow", want: true, state: breakerClosed},
			},
		},
		{
			name: "failed probe restarts the hold-down",
			cfg:  BreakerConfig{FailureThreshold: 1, OpenFor: time.Second},
			steps: []step{
				{at: 0, op: "release", ok: false, state: breakerOpen},
				{at: 1 * sec, op: "acquire", want: true, state: breakerHalfOpen},
				{at: 1 * sec, op: "release", ok: false, state: breakerOpen, comment: "probe failed → reopen"},
				{at: 1*sec + sec/2, op: "allow", want: false, state: breakerOpen, comment: "new hold-down from the reopen"},
				{at: 2 * sec, op: "allow", want: true, state: breakerHalfOpen},
			},
		},
		{
			name: "consecutive-failure threshold",
			cfg:  BreakerConfig{FailureThreshold: 3, OpenFor: time.Second},
			steps: []step{
				{at: 0, op: "release", ok: false, state: breakerClosed, comment: "1 of 3"},
				{at: 0, op: "release", ok: false, state: breakerClosed, comment: "2 of 3"},
				{at: 0, op: "release", ok: true, state: breakerClosed, comment: "success resets the streak"},
				{at: 0, op: "release", ok: false, state: breakerClosed},
				{at: 0, op: "release", ok: false, state: breakerClosed},
				{at: 0, op: "release", ok: false, state: breakerOpen, comment: "3 consecutive → open"},
			},
		},
		{
			name: "multiple successes to close",
			cfg:  BreakerConfig{FailureThreshold: 1, OpenFor: time.Second, HalfOpenProbes: 2, SuccessesToClose: 2},
			steps: []step{
				{at: 0, op: "release", ok: false, state: breakerOpen},
				{at: 1 * sec, op: "acquire", want: true, state: breakerHalfOpen},
				{at: 1 * sec, op: "release", ok: true, state: breakerHalfOpen, comment: "1 of 2 successes"},
				{at: 1 * sec, op: "acquire", want: true, state: breakerHalfOpen},
				{at: 1 * sec, op: "release", ok: true, state: breakerClosed, comment: "2 of 2 → closed"},
			},
		},
		{
			name: "poll success closes outright",
			cfg:  BreakerConfig{FailureThreshold: 1, OpenFor: time.Hour},
			steps: []step{
				{at: 0, op: "pollfail", state: breakerOpen, comment: "failed poll opens like the old markFailed"},
				{at: 1 * sec, op: "allow", want: false, state: breakerOpen},
				{at: 2 * sec, op: "pollok", state: breakerClosed, comment: "answering /load rehabilitates immediately"},
				{at: 2 * sec, op: "allow", want: true, state: breakerClosed},
			},
		},
		{
			name: "error-rate trip",
			cfg:  BreakerConfig{FailureThreshold: 100, ErrorRateThreshold: 0.5, MinRateSamples: 4, OpenFor: time.Second},
			steps: []step{
				{at: 0, op: "release", ok: true, state: breakerClosed},
				{at: 0, op: "release", ok: false, state: breakerClosed, comment: "1/2 failed but under MinRateSamples"},
				{at: 0, op: "release", ok: true, state: breakerClosed},
				{at: 0, op: "release", ok: false, state: breakerOpen, comment: "2/4 ≥ 50% with enough samples"},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newBreakerSet(1, tc.cfg)
			for i, st := range tc.steps {
				var got bool
				switch st.op {
				case "allow":
					got = s.Allow(0, st.at)
				case "acquire":
					got = s.Acquire(0, st.at)
				case "release":
					s.Release(0, st.ok, st.at)
				case "pollok":
					s.PollSuccess(0)
				case "pollfail":
					s.PollFailure(0, st.at)
				default:
					t.Fatalf("step %d: unknown op %q", i, st.op)
				}
				if st.op == "allow" || st.op == "acquire" {
					if got != st.want {
						t.Fatalf("step %d (%s %s): got %v, want %v", i, st.op, st.comment, got, st.want)
					}
				}
				if state := s.State(0); state != st.state {
					t.Fatalf("step %d (%s %s): state %d, want %d", i, st.op, st.comment, state, st.state)
				}
			}
		})
	}
}

// The error-rate window rotates generations: samples age out after two
// rotations, so an old burst of failures cannot trip a now-healthy node.
func TestBreakerRateWindowRotation(t *testing.T) {
	s := newBreakerSet(1, BreakerConfig{
		FailureThreshold: 100, ErrorRateThreshold: 0.5, MinRateSamples: 4, OpenFor: time.Second,
	})
	// Three failures and a success, then heal the window via rotation.
	s.Release(0, false, 0)
	s.Release(0, false, 0)
	s.Release(0, true, 0)
	s.rotate()
	s.rotate() // the failures aged out entirely
	for i := 0; i < 6; i++ {
		s.Release(0, true, 0)
	}
	s.Release(0, false, 0)
	if s.State(0) != breakerClosed {
		t.Fatal("aged-out failures still tripped the rate breaker")
	}
	if s.Opens(0) != 0 {
		t.Fatalf("opens = %d, want 0", s.Opens(0))
	}
}

// Concurrent Acquire/Release hammering must keep the probe count sane
// (run under -race in CI).
func TestBreakerConcurrentProbes(t *testing.T) {
	s := newBreakerSet(1, BreakerConfig{FailureThreshold: 1, OpenFor: time.Nanosecond, HalfOpenProbes: 2})
	s.Release(0, false, 0) // open; every later now is past the hold-down
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				now := int64(time.Second) + int64(i)
				if s.Acquire(0, now) {
					s.Release(0, i%3 != 0, now)
				}
			}
		}()
	}
	wg.Wait()
	if p := s.slots[0].probes.Load(); p < 0 || p > 2 {
		t.Fatalf("probe count %d out of range after concurrent churn", p)
	}
}
