package httpcluster

import (
	"net/url"
	"strconv"
	"strings"

	"msweb/internal/trace"
)

// Hand-rolled query parsing for the serving hot path. url.Values builds
// a map[string][]string per call — several allocations per request for
// queries whose keys are fixed and whose values are numbers. reqParams
// scans RawQuery once, fills a value struct, and allocates only when a
// value actually contains %-escapes or '+' (never on the paths the
// cluster's own clients generate).
//
// Semantics match url.Values.Get on the keys we consume: the first
// occurrence of a duplicated key wins, a pair without '=' is a key with
// an empty value, and unknown keys are ignored. Malformed escapes in a
// consumed value make the value unparseable (a 400 for required fields)
// rather than being silently passed through.

// reqParams carries every query field the /req and /exec endpoints
// consume. demandOK/wOK report that the (required) numeric fields parsed;
// optional fields degrade to their zero values exactly as the previous
// url.Values code did.
type reqParams struct {
	demand, w  float64
	demandOK   bool
	wOK        bool
	class      trace.Class
	script     int
	size       int64
	fork       bool
	idem       bool // idempotent (default); idem=0 marks side-effecting work
	seenDemand bool
	seenW      bool
	seenClass  bool
	seenScript bool
	seenSize   bool
	seenFork   bool
	seenIdem   bool
}

// unescape resolves %-escapes and '+' only when present, so plain
// numeric values cost no allocation.
func unescape(s string) (string, bool) {
	if !strings.ContainsAny(s, "%+") {
		return s, true
	}
	u, err := url.QueryUnescape(s)
	return u, err == nil
}

// parseReqQuery scans a RawQuery once. It never fails outright — field
// validity is reported per field so each handler can decide which fields
// it requires.
func parseReqQuery(raw string) reqParams {
	p := reqParams{idem: true}
	for len(raw) > 0 {
		var pair string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			pair, raw = raw[:i], raw[i+1:]
		} else {
			pair, raw = raw, ""
		}
		if pair == "" {
			continue
		}
		key, val := pair, ""
		if i := strings.IndexByte(pair, '='); i >= 0 {
			key, val = pair[:i], pair[i+1:]
		}
		switch key {
		case "demand":
			if p.seenDemand {
				continue
			}
			p.seenDemand = true
			if v, ok := unescape(val); ok {
				if f, err := strconv.ParseFloat(v, 64); err == nil {
					p.demand, p.demandOK = f, true
				}
			}
		case "w":
			if p.seenW {
				continue
			}
			p.seenW = true
			if v, ok := unescape(val); ok {
				if f, err := strconv.ParseFloat(v, 64); err == nil {
					p.w, p.wOK = f, true
				}
			}
		case "class":
			if p.seenClass {
				continue
			}
			p.seenClass = true
			if v, ok := unescape(val); ok && v == "d" {
				p.class = trace.Dynamic
			}
		case "script":
			if p.seenScript {
				continue
			}
			p.seenScript = true
			if v, ok := unescape(val); ok {
				// strconv.Atoi error ignored: script defaults to 0, as
				// the previous `script, _ := strconv.Atoi(...)` did.
				p.script, _ = strconv.Atoi(v)
			}
		case "size":
			if p.seenSize {
				continue
			}
			p.seenSize = true
			if v, ok := unescape(val); ok {
				if n, err := strconv.ParseInt(v, 10, 64); err == nil {
					p.size = n
				}
			}
		case "fork":
			if p.seenFork {
				continue
			}
			p.seenFork = true
			if v, ok := unescape(val); ok && v == "1" {
				p.fork = true
			}
		case "idem":
			if p.seenIdem {
				continue
			}
			p.seenIdem = true
			// Only an explicit idem=0 marks a request non-idempotent;
			// everything else keeps the retryable default.
			if v, ok := unescape(val); ok && v == "0" {
				p.idem = false
			}
		}
	}
	return p
}

// queryHasValue reports whether RawQuery contains key=want (first
// occurrence of key wins), without allocating. Used by the /load
// endpoint's fmt=c negotiation.
func queryHasValue(raw, key, want string) bool {
	for len(raw) > 0 {
		var pair string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			pair, raw = raw[:i], raw[i+1:]
		} else {
			pair, raw = raw, ""
		}
		if i := strings.IndexByte(pair, '='); i >= 0 && pair[:i] == key {
			return pair[i+1:] == want
		}
	}
	return false
}
