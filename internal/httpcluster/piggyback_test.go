package httpcluster

import (
	"net/http"
	"testing"
	"time"

	"msweb/internal/core"
)

// With polling disabled, the master's view of a slave still refreshes:
// the /exec response's piggybacked report lands in the working view,
// and the staleness stamp moves — strictly fresher than the poll-only
// baseline, which would never update at all here.
func TestPiggybackRefreshesView(t *testing.T) {
	n, err := LaunchNode(NodeOptions{ID: 1, TimeScale: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	m := launchTestMaster(t, Resilience{DisableShedding: true}, n.URL)

	if m.fresh.Stamp(1) != 0 {
		t.Fatal("freshness stamp set before any traffic or poll")
	}
	before := time.Now().UnixNano()
	resp, _ := getStatus(t, m.URL+"/req?class=d&demand=0&w=0.5", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if m.piggyTotal.Load() == 0 {
		t.Fatal("no piggybacked report received over HTTP")
	}
	if s := m.fresh.Stamp(1); s < before {
		t.Fatalf("freshness stamp %d not advanced past %d", s, before)
	}
	// The report must be visible to placement without any poll round.
	l, at := m.peekPiggy(1)
	if at == 0 {
		t.Fatal("piggy slot empty")
	}
	m.placeMu.Lock()
	m.refreshWorkView()
	got := m.workView.Load[1]
	m.placeMu.Unlock()
	if got != l {
		t.Fatalf("working view load %+v, want piggybacked %+v", got, l)
	}
}

// The /req response itself piggybacks the master's own load line, so
// external clients (and future master-to-master traffic) get the same
// freshness for free.
func TestReqResponseCarriesLoadHeader(t *testing.T) {
	m := launchTestMaster(t, Resilience{DisableShedding: true})
	resp, _ := getStatus(t, m.URL+"/req?class=s&demand=0&w=0.5", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	v := resp.Header.Get(LoadHeader)
	if v == "" {
		t.Fatalf("no %s header on /req response", LoadHeader)
	}
	if _, err := core.ParseLoadWire([]byte(v)); err != nil {
		t.Fatalf("header %q does not parse as a load line: %v", v, err)
	}
}

// A poll round skips nodes whose piggybacked report is younger than the
// poll interval, and counts the skips.
func TestPollSkipsFreshPiggyback(t *testing.T) {
	n, err := LaunchNode(NodeOptions{ID: 1, TimeScale: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()
	m := launchTestMaster(t, Resilience{DisableShedding: true}, n.URL)

	// Seed the slot via real traffic, then run one poll round by hand
	// (the configured hour-long ticker never fires during the test).
	if resp, _ := getStatus(t, m.URL+"/req?class=d&demand=0&w=0.5", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	polled := n.Executed()
	reports := make([]core.Load, len(m.urls))
	fetched := make([]bool, len(m.urls))
	fetchedAt := make([]int64, len(m.urls))
	m.pollOnce(time.Hour, reports, fetched, fetchedAt)
	if m.pollSkipped.Load() != 1 {
		t.Fatalf("poll_skipped=%d, want 1", m.pollSkipped.Load())
	}
	if !fetched[1] {
		t.Fatal("skipped node's report not substituted from the piggy slot")
	}
	if n.Executed() != polled {
		t.Fatal("slave saw extra traffic during the skipped poll round")
	}

	// Age the slot past the interval: the next round must really poll.
	m.piggy[1].mu.Lock()
	m.piggy[1].at -= int64(2 * time.Millisecond)
	m.piggy[1].mu.Unlock()
	m.pollOnce(time.Millisecond, reports, fetched, fetchedAt)
	if m.pollSkipped.Load() != 1 {
		t.Fatalf("stale slot still skipped (poll_skipped=%d)", m.pollSkipped.Load())
	}
}
