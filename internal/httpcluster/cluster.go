package httpcluster

import (
	"fmt"
	"time"

	"msweb/internal/core"
	"msweb/internal/obs"
)

// Config describes a live cluster.
type Config struct {
	// Nodes is the cluster size; Masters of them (ids 0..Masters−1)
	// serve client traffic.
	Nodes   int
	Masters int
	// TimeScale multiplies every service duration; 1.0 replays demands
	// in real time, 0.25 runs four times faster (at some loss of sleep
	// precision for sub-millisecond bursts).
	TimeScale float64
	// LoadRefresh is each master's /load polling period.
	LoadRefresh time.Duration
	// PolicyTick is each master's reservation-recompute period.
	PolicyTick time.Duration
	// MakePolicy builds one scheduling policy per master (each master
	// runs its own load manager, as in the paper's prototype).
	MakePolicy func(masterID int) core.Policy
	// Resilience configures deadlines, retries, circuit breakers and
	// shedding on every node; the zero value keeps the defaults.
	Resilience Resilience
	// Tracer receives request lifecycle events from every master (must be
	// safe for concurrent use); nil disables tracing.
	Tracer obs.Tracer
	// PollDeadlineFloor floors each master's /load fan-out deadline
	// (default 100 ms).
	PollDeadlineFloor time.Duration
	// Uncalibrated runs every node's virtual resources in fast mode
	// (virtual-time accounting, no wall-clock sleeps) — the uncapped
	// configuration for throughput work. See NodeOptions.Uncalibrated.
	Uncalibrated bool
	// Discipline selects every node's CPU scheduling discipline; see
	// NodeOptions.Discipline. Empty means the default round-robin.
	Discipline string
	// BinaryFraming upgrades every master→slave hop to the persistent
	// binary frame protocol (HTTP fallback kept per pair).
	BinaryFraming bool
	// BatchWindow > 0 coalesces same-slave dispatches within the window
	// into one frame (implies BinaryFraming); BatchMax caps entries per
	// frame (default 64).
	BatchWindow time.Duration
	BatchMax    int
	// ListenerShards is how many SO_REUSEPORT accept sockets every node
	// binds to its port (see NodeOptions.ListenerShards); 0/1 keeps the
	// single listener.
	ListenerShards int
	// Shards > 1 partitions the slave fleet across the master tier:
	// master i polls, tracks breakers for and books against only shard i,
	// spilling shed dynamics cross-shard via gossiped summaries. Must
	// equal Masters. 0 or 1 keeps the unsharded global view.
	Shards int
	// ShardMapMode selects the partitioning function: "hash" (consistent
	// ring, the default) or "static" (position modulo).
	ShardMapMode string
	// GossipEvery is the master↔master /shard pull period (default
	// 4×LoadRefresh).
	GossipEvery time.Duration
	// AutoscaleMasters > 0 enables the live master-tier autoscaler on a
	// sharded cluster: every period the lowest-id master re-plans the
	// tier size from measured load and announces promote/demote
	// membership epochs (see NodeOptions.AutoscaleMasters).
	AutoscaleMasters time.Duration
	// MasterCapable lists node ids the autoscaler may promote (defaults
	// to the initial master set).
	MasterCapable []int
}

// DefaultConfig mirrors the Table 3 setup: 6 nodes, the given master
// count, real-time scale, 100 ms load polling.
func DefaultConfig(masters int, mk func(int) core.Policy) Config {
	return Config{
		Nodes:       6,
		Masters:     masters,
		TimeScale:   1,
		LoadRefresh: 100 * time.Millisecond,
		PolicyTick:  250 * time.Millisecond,
		MakePolicy:  mk,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("httpcluster: need at least one node")
	case c.Masters < 1 || c.Masters > c.Nodes:
		return fmt.Errorf("httpcluster: masters %d outside [1, %d]", c.Masters, c.Nodes)
	case c.LoadRefresh <= 0 || c.PolicyTick <= 0:
		return fmt.Errorf("httpcluster: polling periods must be positive")
	case c.MakePolicy == nil:
		return fmt.Errorf("httpcluster: MakePolicy is required")
	case c.Shards > 1 && c.Shards != c.Masters:
		return fmt.Errorf("httpcluster: shards %d must equal masters %d", c.Shards, c.Masters)
	case c.AutoscaleMasters < 0:
		return fmt.Errorf("httpcluster: autoscale period must be non-negative")
	case c.AutoscaleMasters > 0 && c.Shards <= 1:
		return fmt.Errorf("httpcluster: the master-tier autoscaler needs a sharded cluster (shards > 1)")
	}
	return nil
}

// Cluster is a running set of master and slave HTTP servers.
type Cluster struct {
	Masters []*Master
	Slaves  []*Node
	origin  time.Time
}

// MasterURLs returns the client-facing base URLs in master order.
func (c *Cluster) MasterURLs() []string {
	urls := make([]string, len(c.Masters))
	for i, m := range c.Masters {
		urls[i] = m.URL
	}
	return urls
}

// NodeExecuted returns per-node executed-request counters (by node id).
func (c *Cluster) NodeExecuted() []int64 {
	out := make([]int64, len(c.Masters)+len(c.Slaves))
	for _, m := range c.Masters {
		out[m.ID] = m.Executed()
	}
	for _, s := range c.Slaves {
		out[s.ID] = s.Executed()
	}
	return out
}

// Start launches the whole cluster on loopback.
func Start(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	origin := time.Now()
	c := &Cluster{origin: origin}

	masters := make([]int, 0, cfg.Masters)
	slaves := make([]int, 0, cfg.Nodes-cfg.Masters)
	for i := 0; i < cfg.Nodes; i++ {
		if i < cfg.Masters {
			masters = append(masters, i)
		} else {
			slaves = append(slaves, i)
		}
	}

	// Slaves first, so their URLs are known to every master.
	nodeURLs := make([]string, cfg.Nodes)
	for _, id := range slaves {
		n, err := LaunchNode(NodeOptions{
			ID: id, Origin: origin, TimeScale: cfg.TimeScale,
			Resilience:     cfg.Resilience,
			Uncalibrated:   cfg.Uncalibrated,
			Discipline:     cfg.Discipline,
			ListenerShards: cfg.ListenerShards,
		})
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		nodeURLs[id] = n.URL
		c.Slaves = append(c.Slaves, n)
	}
	for _, id := range masters {
		m, err := LaunchMaster(NodeOptions{
			ID: id, Origin: origin, TimeScale: cfg.TimeScale,
			Masters: masters, Slaves: slaves, NodeURLs: nodeURLs,
			Policy:      cfg.MakePolicy(id),
			LoadRefresh: cfg.LoadRefresh, PolicyTick: cfg.PolicyTick,
			Resilience: cfg.Resilience, Tracer: cfg.Tracer,
			PollDeadlineFloor: cfg.PollDeadlineFloor,
			Uncalibrated:      cfg.Uncalibrated,
			Discipline:        cfg.Discipline,
			ListenerShards:    cfg.ListenerShards,
			BinaryFraming:     cfg.BinaryFraming,
			BatchWindow:       cfg.BatchWindow,
			BatchMax:          cfg.BatchMax,
			Shards:            cfg.Shards,
			ShardMapMode:      cfg.ShardMapMode,
			GossipEvery:       cfg.GossipEvery,
			AutoscaleMasters:  cfg.AutoscaleMasters,
			MasterCapable:     cfg.MasterCapable,
		})
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		nodeURLs[id] = m.URL
		c.Masters = append(c.Masters, m)
	}
	// Backfill master URLs (each master already knows its own).
	for _, m := range c.Masters {
		for _, other := range c.Masters {
			m.SetNodeURL(other.ID, other.URL)
		}
	}
	return c, nil
}

// Shutdown stops every server.
func (c *Cluster) Shutdown() {
	for _, m := range c.Masters {
		m.Shutdown()
	}
	for _, s := range c.Slaves {
		s.Shutdown()
	}
}
