package httpcluster

import (
	"net/url"
	"strconv"
	"testing"

	"msweb/internal/trace"
)

// The hand-rolled parser must agree with url.Values.Get semantics on
// every field the handlers consume, across missing, malformed, escaped
// and duplicated keys.
func TestParseReqQueryMatchesURLValues(t *testing.T) {
	queries := []string{
		"",
		"demand=0.5&w=0.3",
		"class=d&demand=0.02&w=0.9&script=7&size=4096",
		"class=s&demand=0&w=1",
		"demand=1e-3&w=0.5&fork=1",
		"demand=0.5",                        // missing w
		"w=0.5",                             // missing demand
		"demand=abc&w=0.5",                  // malformed demand
		"demand=0.5&w=zz",                   // malformed w
		"demand=&w=",                        // empty values
		"demand&w",                          // pairs without '='
		"demand=0.5&demand=0.9&w=0.1&w=0.2", // duplicates: first wins
		"class=d&class=s&demand=1&w=0",      // duplicate class
		"script=12&script=99&demand=1&w=0",
		"size=100&size=999&demand=1&w=0",
		"fork=1&fork=0&demand=1&w=0",
		"fork=0&fork=1&demand=1&w=0",
		"demand=%30%2E%35&w=0.5",   // %-escaped "0.5"
		"demand=0.5&w=0.5&size=+3", // '+' means space: unparseable int
		"demand=0%ZZ&w=0.5",        // invalid escape: unparseable
		"unknown=1&demand=0.25&w=0.75&extra=x",
		"&&demand=0.5&&w=0.25&&",
		"script=nope&demand=1&w=1",
	}
	for _, raw := range queries {
		q, _ := url.ParseQuery(raw) // ignore error: Get still works on what parsed
		p := parseReqQuery(raw)

		wantDemand, errD := strconv.ParseFloat(q.Get("demand"), 64)
		if p.demandOK != (errD == nil) {
			t.Fatalf("%q: demandOK=%v, url.Values err=%v", raw, p.demandOK, errD)
		}
		if p.demandOK && p.demand != wantDemand {
			t.Fatalf("%q: demand=%v want %v", raw, p.demand, wantDemand)
		}
		wantW, errW := strconv.ParseFloat(q.Get("w"), 64)
		if p.wOK != (errW == nil) {
			t.Fatalf("%q: wOK=%v, url.Values err=%v", raw, p.wOK, errW)
		}
		if p.wOK && p.w != wantW {
			t.Fatalf("%q: w=%v want %v", raw, p.w, wantW)
		}
		wantClass := trace.Static
		if q.Get("class") == "d" {
			wantClass = trace.Dynamic
		}
		if p.class != wantClass {
			t.Fatalf("%q: class=%v want %v", raw, p.class, wantClass)
		}
		wantScript, _ := strconv.Atoi(q.Get("script"))
		if p.script != wantScript {
			t.Fatalf("%q: script=%d want %d", raw, p.script, wantScript)
		}
		wantSize, _ := strconv.ParseInt(q.Get("size"), 10, 64)
		if p.size != wantSize {
			t.Fatalf("%q: size=%d want %d", raw, p.size, wantSize)
		}
		if wantFork := q.Get("fork") == "1"; p.fork != wantFork {
			t.Fatalf("%q: fork=%v want %v", raw, p.fork, wantFork)
		}
	}
}

// Plain numeric queries — everything the cluster's own components
// generate — must parse without allocating.
func TestParseReqQueryZeroAlloc(t *testing.T) {
	raw := "class=d&demand=0.025&w=0.9&script=3&size=4096&fork=1"
	allocs := testing.AllocsPerRun(200, func() {
		p := parseReqQuery(raw)
		if !p.demandOK || !p.wOK || p.class != trace.Dynamic {
			t.Fatal("parse failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("parseReqQuery allocates %.1f times on the escape-free path", allocs)
	}
}

func TestQueryHasValue(t *testing.T) {
	cases := []struct {
		raw, key, want string
		ok             bool
	}{
		{"fmt=c", "fmt", "c", true},
		{"", "fmt", "c", false},
		{"fmt=j", "fmt", "c", false},
		{"a=1&fmt=c", "fmt", "c", true},
		{"fmt=c&fmt=j", "fmt", "c", true},
		{"fmt=j&fmt=c", "fmt", "c", false}, // first occurrence wins
		{"format=c", "fmt", "c", false},
		{"fmt", "fmt", "c", false},
	}
	for _, c := range cases {
		if got := queryHasValue(c.raw, c.key, c.want); got != c.ok {
			t.Fatalf("queryHasValue(%q, %q, %q) = %v, want %v", c.raw, c.key, c.want, got, c.ok)
		}
	}
}
