package httpcluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"msweb/internal/core"
	"msweb/internal/obs"
	"msweb/internal/trace"
)

// Sharded control plane, live side. The slave fleet is partitioned
// across the master tier by a deterministic core.ShardMap (master i
// owns shard i); each master polls, breaks and books against only its
// own shard, so per-tick control work is O(shard), not O(cluster).
// Cross-shard state travels as compact core.ShardSummary lines:
//
//   - piggybacked on every response a sharded master serves (/req,
//     /exec, frame replies) as the X-Msweb-Shard header / frame summary
//     block, so masters that already talk learn about each other's
//     shards for free;
//   - pulled master↔master from /shard on a slow gossip tick, covering
//     pairs that never exchange requests.
//
// Placement stays local-first: the pipeline places within the own-shard
// view exactly as an unsharded master would. Only when the local
// AbsorptionGate sheds does the master spill — synthesize a view from
// the freshest remote summaries' digests and let the same routing stage
// pick a concrete node, dispatched over the existing transport with the
// existing breaker/retry taxonomy.

// ShardHeader carries a sharded master's compact own-shard summary on
// its responses (an s1 line, newline stripped).
const ShardHeader = "X-Msweb-Shard"

// shardTopK is how many least-loaded node digests the own-shard summary
// carries — enough spill candidates for routing to rank, small enough
// that the header stays around 200 bytes.
const shardTopK = 8

// shardStamp is one immutable generation of a master's own-shard
// summary: the wire line (served by /shard and embedded in frame
// replies) and the prebuilt header value.
type shardStamp struct {
	wire []byte
	hdr  []string
}

// shardSumSlot is a master's mailbox for one remote shard's summary.
type shardSumSlot struct {
	mu  sync.Mutex
	sum core.ShardSummary
	at  int64 // receipt time (unixnano); 0 = never heard from
}

// rebuildShardStamp refreshes the own-shard summary from a just-
// published snapshot under the given memState. Runs once per poll round
// plus once per membership apply — both off the request path, so the
// allocations here are irrelevant; ownMu covers the shared build
// scratch against exactly that pair of writers. The summary is stamped
// with the memState's epoch, so receivers can order generations across
// membership changes (epoch 0 — a never-rebalanced map — still emits
// the byte-identical s1 form).
func (m *Master) rebuildShardStamp(ms *memState, snap *loadSnapshot) {
	m.ownMu.Lock()
	defer m.ownMu.Unlock()
	if ms.shard < 0 {
		// Demoted (or launched as a standby): this node owns no shard, so
		// it stops advertising one — /shard answers 404 and responses
		// carry no summary until a membership re-promotes it.
		m.shardWire.Store(nil)
		return
	}
	members := ms.sm.Members(ms.shard)
	core.BuildShardSummary(&m.ownSum, ms.shard, snap.at, members, snap.view.Load, shardTopK)
	m.ownSum.Epoch = ms.sm.Epoch()
	wire := m.ownSum.AppendWire(make([]byte, 0, 80+48*len(m.ownSum.Top)))
	m.shardWire.Store(&shardStamp{
		wire: wire,
		hdr:  []string{string(wire[: len(wire)-1 : len(wire)-1])}, // header values cannot carry the trailing \n
	})
}

// handleShard serves the master's own-shard summary — the gossip pull
// endpoint. Unsharded nodes answer 404 so a misconfigured peer fails
// loudly instead of folding garbage.
func (m *Master) handleShard(rw http.ResponseWriter, _ *http.Request) {
	s := m.shardWire.Load()
	if s == nil {
		http.Error(rw, "unsharded master", http.StatusNotFound)
		return
	}
	rw.Header().Set("Content-Type", core.ShardWireContentType)
	rw.Write(s.wire) //nolint:errcheck
}

// storeShardHeader folds a response's piggybacked shard summary, if
// any, into the mailbox for that shard. Cheap no-op for unsharded
// masters and header-less responses.
func (m *Master) storeShardHeader(h http.Header) {
	if !m.sharded {
		return
	}
	v := h[ShardHeader]
	if len(v) == 0 {
		return
	}
	buf := wireBufPool.Get().(*[]byte)
	b := append((*buf)[:0], v[0]...)
	var sum core.ShardSummary
	err := core.ParseShardSummary(b, &sum)
	*buf = b[:0]
	wireBufPool.Put(buf)
	if err != nil {
		return
	}
	m.storeShardSummary(&sum)
}

// storeShardSummaryWire parses an s1 summary line (e.g. a frame reply's
// trailing block) and folds it in. No-op for unsharded masters.
func (m *Master) storeShardSummaryWire(b []byte) {
	if !m.sharded {
		return
	}
	var sum core.ShardSummary
	if err := core.ParseShardSummary(b, &sum); err != nil {
		return
	}
	m.storeShardSummary(&sum)
}

// storeShardSummary records a remote shard's summary, newest-wins by
// (epoch, AtNs) — epoch dominates so a pre-rebalance summary can never
// overwrite a post-rebalance one, however fresh its owner clock looked;
// within one epoch the owner's AtNs stamp orders generations (receipt
// order proves nothing: gossip and piggybacked copies of the same
// generation race). Summaries more than one epoch behind the local map
// are dropped outright — the dual-epoch window admits the previous
// owner's last words during a handoff, nothing older. The caller keeps
// ownership of sum; the slot deep-copies the digest slice.
func (m *Master) storeShardSummary(sum *core.ShardSummary) {
	if !m.sharded {
		return
	}
	ms := m.mem.Load()
	s := sum.Shard
	if s < 0 || s >= len(m.shardSums) || s == ms.shard {
		return
	}
	var cur uint64
	if ms.sm != nil {
		cur = ms.sm.Epoch()
	}
	if sum.Epoch+1 < cur {
		return
	}
	now := time.Now().UnixNano()
	slot := &m.shardSums[s]
	slot.mu.Lock()
	if slot.at == 0 || core.SummaryWins(sum.Epoch, sum.AtNs, slot.sum.Epoch, slot.sum.AtNs) {
		top := append(slot.sum.Top[:0], sum.Top...)
		slot.sum = *sum
		slot.sum.Top = top
		slot.at = now
	}
	slot.mu.Unlock()
	m.shardFresh.Touch(s, now)
	m.gossipRx.Add(1)
}

// gossipLoop pulls peer masters' /shard summaries on a slow tick — the
// fallback channel for master pairs that exchange no requests (and so
// see no piggybacked copies). Each round is O(shards) sequential GETs,
// deliberately cheap next to the poll loop.
func (m *Master) gossipLoop(every time.Duration) {
	defer m.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.gossipOnce(every)
		}
	}
}

// gossipOnce runs one gossip round: pull every peer owner's /shard
// summary (counting consecutive misses — the failure-detection signal),
// pull peer memberships (the convergence backstop that bounds how long
// a master can lag an epoch move to one round), then let the failure
// detector act on the accumulated silence.
func (m *Master) gossipOnce(period time.Duration) {
	deadline := period
	if deadline < m.pollFloor {
		deadline = m.pollFloor
	}
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	ms := m.mem.Load()
	if e := ms.mb.Epoch; e != m.gossipEpochSeen {
		// New membership: every peer gets a fresh detection window, so a
		// rejoined master cannot be re-declared dead off counters it
		// accumulated before it left.
		m.gossipEpochSeen = e
		for i := range m.gossipMiss {
			m.gossipMiss[i] = 0
		}
	}
	var sum core.ShardSummary
	for s, owner := range ms.owners {
		if s == ms.shard || owner == m.ID {
			continue
		}
		base := m.nodeURL(owner)
		if base == "" {
			continue
		}
		if err := m.fetchShard(ctx, base, &sum); err != nil {
			if owner < len(m.gossipMiss) {
				m.gossipMiss[owner]++
			}
			continue
		}
		if owner < len(m.gossipMiss) {
			m.gossipMiss[owner] = 0
		}
		m.storeShardSummary(&sum)
	}
	m.pullMembership(ctx, ms)
	// Detect against the generation this round actually fetched from; if
	// the pull just advanced the epoch, the successor announce below is
	// stale and ApplyMembership's newest-wins rule discards it.
	m.detectDeadMasters(ms)
}

// fetchShard pulls one peer's /shard summary into dst.
func (m *Master) fetchShard(ctx context.Context, base string, dst *core.ShardSummary) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/shard", nil)
	if err != nil {
		return err
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard: status %d", resp.StatusCode)
	}
	buf := wireBufPool.Get().(*[]byte)
	defer wireBufPool.Put(buf)
	b, err := readAllInto((*buf)[:0], io.LimitReader(resp.Body, 1<<16))
	*buf = b[:0]
	if err != nil {
		return err
	}
	return core.ParseShardSummary(b, dst)
}

// spillRemote tries to serve a dynamic request on a remote shard after
// the local shard shed it. Returns attempted=false when no remote
// candidate exists (the caller sheds, exactly as unsharded would);
// otherwise status 0 on success or 502 when the spill exhausted its
// budget / deadline — the same terminal taxonomy as local dispatch,
// because every attempt goes through the same m.dispatch path
// (breakers, hedging, deadline propagation and all).
func (m *Master) spillRemote(p reqParams, reqID int64, deadline time.Time) (status int, attempted bool) {
	if !m.sharded {
		return 0, false
	}
	pl, ok := m.policy.(*core.Pipeline)
	if !ok {
		return 0, false
	}
	var tried uint64
	for attempt := 0; attempt < m.rs.RetryBudget; attempt++ {
		if !time.Now().Before(deadline) {
			break
		}
		target := m.pickSpill(pl, p, tried)
		if target < 0 {
			break
		}
		err := m.dispatch(target, p, deadline, tried)
		if err == nil {
			m.quality.Spilled.Add(1)
			return 0, true
		}
		m.failovers.Add(1)
		m.quality.SpillFailed.Add(1)
		tried |= bitOf(target)
		m.emit(obs.KindRetry, reqID, target, float64(attempt+1))
		if errors.Is(err, errDeadline) {
			return http.StatusBadGateway, true
		}
		if !p.idem && mayHaveExecuted(err) {
			return http.StatusBadGateway, true
		}
	}
	// Exhausted without a terminal error (e.g. remote breakers raced
	// open, every candidate refused with a status): the caller sheds,
	// exactly as local dispatch does when every slave is circuit-open.
	return 0, false
}

// pickSpill synthesizes a view from the freshest remote summaries'
// digests and routes within it. Candidates are filtered the same way
// the local working view is (breaker state, known URL, not yet tried);
// the view is O(digests) = O(shards·k), never O(cluster). Returns -1
// when nothing remains.
func (m *Master) pickSpill(pl *core.Pipeline, p reqParams, tried uint64) int {
	now := time.Now().UnixNano()
	maxAge := int64(m.summaryTTL)
	ms := m.mem.Load()
	var cur uint64
	if ms.sm != nil {
		cur = ms.sm.Epoch()
	}
	m.placeMu.Lock()
	defer m.placeMu.Unlock()
	if len(m.spillView.Load) < len(m.urls) {
		m.spillView.Load = make([]core.Load, len(m.urls))
	}
	cands := m.spillCands[:0]
	for s := range m.shardSums {
		if s == ms.shard {
			continue
		}
		slot := &m.shardSums[s]
		slot.mu.Lock()
		if slot.at == 0 || now-slot.at > maxAge {
			slot.mu.Unlock()
			continue
		}
		if slot.sum.Epoch+1 < cur {
			// A membership adopted after this summary landed left it two
			// epochs behind; its owner assignment is no longer meaningful.
			slot.mu.Unlock()
			continue
		}
		for _, d := range slot.sum.Top {
			id := d.Node
			if id < 0 || id >= len(m.urls) || bitOf(id)&tried != 0 {
				continue
			}
			if ms.sm != nil && ms.sm.ShardOf(id) < 0 {
				// The node left the fleet (failed, demoted out, scaled
				// away) since the summary was stamped.
				continue
			}
			if m.nodeURL(id) == "" || !m.brk.Allow(id, now) {
				continue
			}
			m.spillView.Load[id] = d.Load
			cands = append(cands, id)
		}
		slot.mu.Unlock()
	}
	m.spillCands = cands
	if len(cands) == 0 {
		return -1
	}
	m.spillView.Slaves = cands
	target, _ := pl.PlaceRemote(core.Request{Class: trace.Dynamic, Script: p.script}, &m.spillView)
	return target
}
