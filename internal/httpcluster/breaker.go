package httpcluster

import (
	"sync/atomic"
	"time"
)

// Per-node circuit breakers for the master's dispatch path, replacing
// the fixed failHoldDown constant. The breaker serves the same purpose
// the paper's sub-second switch failure detection does — keep placement
// away from a node that stopped answering — but with the three-state
// protocol production load balancers use:
//
//	closed ──(FailureThreshold consecutive failures, or the windowed
//	          error rate crossing ErrorRateThreshold)──▶ open
//	open ──(OpenFor elapsed)──▶ half-open
//	half-open ──(SuccessesToClose probe successes)──▶ closed
//	half-open ──(any probe failure)──▶ open (hold-down restarts)
//
// Everything is per-slot atomics — the request path's Allow/Acquire
// reads are lock-free and allocation-free, preserving the /req fast
// path's 0-alloc contract. The accounting tolerates benign races (an
// extra half-open probe slipping through under contention) in exchange
// for never blocking a request behind a mutex.

// Breaker states.
const (
	breakerClosed int32 = iota
	breakerHalfOpen
	breakerOpen
)

// BreakerConfig tunes the per-node circuit breakers. The zero value is
// replaced by defaults reproducing the old fixed hold-down behavior:
// one failed request or poll opens the circuit for DefaultOpenFor, and
// a single successful probe (or load poll) closes it.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive request failures
	// that opens the circuit (default 1, the old one-strike hold-down).
	FailureThreshold int
	// ErrorRateThreshold additionally opens the circuit when the
	// failure fraction over the trailing rate window reaches it, once
	// MinRateSamples outcomes have been seen. 0 disables rate tripping.
	ErrorRateThreshold float64
	// MinRateSamples gates ErrorRateThreshold (default 20).
	MinRateSamples int
	// OpenFor is how long an open circuit excludes its node from
	// placement before half-open probes begin (default DefaultOpenFor —
	// the old failHoldDown constant).
	OpenFor time.Duration
	// HalfOpenProbes caps concurrently in-flight probe requests while
	// half-open (default 1).
	HalfOpenProbes int
	// SuccessesToClose is the number of consecutive probe successes
	// that closes a half-open circuit (default 1).
	SuccessesToClose int
}

// DefaultOpenFor is the default open-state hold-down, the value of the
// fixed failHoldDown constant it replaces.
const DefaultOpenFor = 2 * time.Second

// withDefaults fills zero fields.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 1
	}
	if c.MinRateSamples <= 0 {
		c.MinRateSamples = 20
	}
	if c.OpenFor <= 0 {
		c.OpenFor = DefaultOpenFor
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.SuccessesToClose <= 0 {
		c.SuccessesToClose = 1
	}
	return c
}

// breakerSlot is one node's breaker state. All fields are atomics; the
// slot is embedded by value in the set's slice so per-node state costs
// no pointer chase.
type breakerSlot struct {
	state       atomic.Int32
	consecFails atomic.Int32
	openedAt    atomic.Int64 // UnixNano of the last closed/half-open→open transition
	probes      atomic.Int32 // in-flight half-open probes
	successes   atomic.Int32 // consecutive half-open probe successes
	opens       atomic.Int64 // cumulative open transitions (metrics)
	// Trailing error-rate window: a coarse two-generation scheme. The
	// current generation accumulates; rotate() (called by the master's
	// poll loop, a single writer) shifts it into prev. Rates read
	// cur+prev, covering one to two poll periods.
	curFails, curTotal   atomic.Int64
	prevFails, prevTotal atomic.Int64
}

// breakerSet is the per-node breaker array for one master.
type breakerSet struct {
	cfg   BreakerConfig
	slots []breakerSlot
}

func newBreakerSet(n int, cfg BreakerConfig) *breakerSet {
	return &breakerSet{cfg: cfg.withDefaults(), slots: make([]breakerSlot, n)}
}

// State returns node id's current breaker state (for metrics/tests).
func (s *breakerSet) State(id int) int32 { return s.slots[id].state.Load() }

// Opens returns node id's cumulative open-transition count.
func (s *breakerSet) Opens(id int) int64 { return s.slots[id].opens.Load() }

// open transitions a slot to open at now, from whatever state it is in.
func (s *breakerSet) open(b *breakerSlot, now int64) {
	b.openedAt.Store(now)
	if b.state.Swap(breakerOpen) != breakerOpen {
		b.opens.Add(1)
	}
	b.consecFails.Store(0)
	b.successes.Store(0)
}

// close resets a slot to closed.
func (s *breakerSet) close(b *breakerSlot) {
	b.state.Store(breakerClosed)
	b.consecFails.Store(0)
	b.probes.Store(0)
	b.successes.Store(0)
}

// maybeHalfOpen transitions an expired open circuit to half-open and
// returns the post-transition state.
func (s *breakerSet) maybeHalfOpen(b *breakerSlot, now int64) int32 {
	st := b.state.Load()
	if st != breakerOpen {
		return st
	}
	if now-b.openedAt.Load() < int64(s.cfg.OpenFor) {
		return breakerOpen
	}
	if b.state.CompareAndSwap(breakerOpen, breakerHalfOpen) {
		b.probes.Store(0)
		b.successes.Store(0)
	}
	return b.state.Load()
}

// Allow reports whether node id may be offered to the policy as a
// placement candidate at wall time now (UnixNano): closed circuits
// always, open circuits never, half-open circuits only while probe
// slots remain. Read-only apart from the open→half-open transition.
func (s *breakerSet) Allow(id int, now int64) bool {
	b := &s.slots[id]
	switch s.maybeHalfOpen(b, now) {
	case breakerClosed:
		return true
	case breakerOpen:
		return false
	default:
		return b.probes.Load() < int32(s.cfg.HalfOpenProbes)
	}
}

// Acquire begins one dispatch to node id, claiming a probe slot when the
// circuit is half-open. A false return means the node must not be used
// (open, or no probe slot free); a true return must be paired with
// exactly one Release.
func (s *breakerSet) Acquire(id int, now int64) bool {
	b := &s.slots[id]
	switch s.maybeHalfOpen(b, now) {
	case breakerClosed:
		return true
	case breakerOpen:
		return false
	default:
		if b.probes.Add(1) > int32(s.cfg.HalfOpenProbes) {
			b.probes.Add(-1)
			return false
		}
		return true
	}
}

// Release reports the outcome of an Acquired dispatch at wall time now.
func (s *breakerSet) Release(id int, ok bool, now int64) {
	b := &s.slots[id]
	b.curTotal.Add(1)
	if !ok {
		b.curFails.Add(1)
	}
	st := b.state.Load()
	if st == breakerHalfOpen {
		b.probes.Add(-1)
		if !ok {
			s.open(b, now) // a failed probe restarts the hold-down
			return
		}
		if b.successes.Add(1) >= int32(s.cfg.SuccessesToClose) {
			s.close(b)
		}
		return
	}
	if ok {
		b.consecFails.Store(0)
		return
	}
	if int(b.consecFails.Add(1)) >= s.cfg.FailureThreshold || s.rateTripped(b) {
		s.open(b, now)
	}
}

// rateTripped reports whether the windowed error rate crossed the
// configured threshold.
func (s *breakerSet) rateTripped(b *breakerSlot) bool {
	if s.cfg.ErrorRateThreshold <= 0 {
		return false
	}
	total := b.curTotal.Load() + b.prevTotal.Load()
	if total < int64(s.cfg.MinRateSamples) {
		return false
	}
	fails := b.curFails.Load() + b.prevFails.Load()
	return float64(fails)/float64(total) >= s.cfg.ErrorRateThreshold
}

// PollSuccess records a successful /load fetch: strong evidence the node
// answers again, so the circuit closes outright — the behavior of the
// old hold-down, which a successful poll cleared immediately.
func (s *breakerSet) PollSuccess(id int) {
	s.close(&s.slots[id])
}

// PollFailure records a failed /load fetch at wall time now. Poll
// outcomes feed the consecutive-failure count but never touch half-open
// probe accounting (they were not Acquired).
func (s *breakerSet) PollFailure(id int, now int64) {
	b := &s.slots[id]
	b.curTotal.Add(1)
	b.curFails.Add(1)
	if b.state.Load() == breakerHalfOpen {
		s.open(b, now)
		return
	}
	if int(b.consecFails.Add(1)) >= s.cfg.FailureThreshold || s.rateTripped(b) {
		s.open(b, now)
	}
}

// rotate shifts every slot's error-rate window by one generation. Called
// from the master's poll loop — a single writer, so plain stores suffice
// for the generation swap; concurrent Adds racing the rotation land in
// either generation, which the one-to-two-period window tolerates.
func (s *breakerSet) rotate() {
	for i := range s.slots {
		b := &s.slots[i]
		b.prevFails.Store(b.curFails.Swap(0))
		b.prevTotal.Store(b.curTotal.Swap(0))
	}
}
