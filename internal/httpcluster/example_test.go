package httpcluster_test

import (
	"fmt"
	"net/http"
	"time"

	"msweb/internal/core"
	"msweb/internal/httpcluster"
)

// Boot a live master/slave cluster on loopback and send one static and
// one dynamic request through the master's front end.
func ExampleStart() {
	cfg := httpcluster.DefaultConfig(1, func(id int) core.Policy {
		return core.NewMS(nil, int64(id)+1)
	})
	cfg.Nodes = 3
	cfg.TimeScale = 0.1 // run ten times faster than real time
	c, err := httpcluster.Start(cfg)
	if err != nil {
		panic(err)
	}
	defer c.Shutdown()

	client := &http.Client{Timeout: 10 * time.Second}
	for _, q := range []string{
		"class=s&demand=0.005&w=0.3&script=0",
		"class=d&demand=0.050&w=0.9&script=1",
	} {
		resp, err := client.Get(c.MasterURLs()[0] + "/req?" + q)
		if err != nil {
			panic(err)
		}
		resp.Body.Close()
		fmt.Println(resp.StatusCode)
	}
	fmt.Printf("master executed ≥1: %v\n", c.Masters[0].Executed() >= 1)
	// Output:
	// 200
	// 200
	// master executed ≥1: true
}
