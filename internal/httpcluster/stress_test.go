package httpcluster

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"msweb/internal/core"
)

// TestReqRaceStress drives the whole live data plane concurrently: many
// /req clients (static and dynamic mix) against a fast-ticking fan-out
// load poller and policy ticker, a node killed mid-run (exercising
// failover and the hold-down atomics), /metrics scrapes racing the
// serving path, and finally a clean Shutdown with requests still in
// flight. Its job is to give `go test -race` every pair of accesses the
// lock-free view design relies on: snapshot swaps vs placement reads,
// URL and hold-down atomics, pooled rrJobs, and the narrow stat locks.
func TestReqRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	cfg := DefaultConfig(2, func(id int) core.Policy {
		return core.NewMS(nil, int64(id)+1)
	})
	cfg.Nodes = 4
	cfg.TimeScale = 0.02 // 50× fast: real sleeps, compressed wall time
	// Fast enough that many poll rounds and policy ticks overlap the
	// client burst, slow enough that the fan-out's HTTP traffic doesn't
	// oversubscribe a single-CPU box under the race detector.
	cfg.LoadRefresh = 25 * time.Millisecond
	cfg.PolicyTick = 30 * time.Millisecond
	c, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}

	client := &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: 64},
		Timeout:   30 * time.Second,
	}
	get := func(url string) error {
		resp, err := client.Get(url)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}

	const clients = 6
	const perClient = 20
	var failed atomic.Int64
	var wg sync.WaitGroup
	stopScrape := make(chan struct{})
	scrapeDone := make(chan struct{})

	// Metrics scrapers race the serving path on both masters. Tracked
	// outside wg: it runs until the clients are done, then is told to stop.
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-stopScrape:
				return
			default:
			}
			for _, m := range c.Masters {
				get(m.URL + "/metrics") //nolint:errcheck
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			master := c.MasterURLs()[i%len(c.Masters)]
			for j := 0; j < perClient; j++ {
				var q string
				if j%3 == 0 {
					q = "/req?class=s&demand=0.002&w=0.3&script=0&size=2048"
				} else {
					q = "/req?class=d&demand=0.01&w=0.9&script=1&size=512"
				}
				if err := get(master + q); err != nil {
					failed.Add(1)
				}
			}
		}(i)
	}

	// Kill a slave mid-run, behind the masters' backs: placements must
	// fail over and polls must mark it down without a lost request.
	time.Sleep(30 * time.Millisecond)
	c.Slaves[0].Shutdown()

	wg.Wait()
	close(stopScrape)
	<-scrapeDone

	if got := failed.Load(); got != 0 {
		t.Fatalf("%d requests failed despite failover", got)
	}
	var absorbed int64
	for _, m := range c.Masters {
		absorbed += m.Executed()
	}
	absorbed += c.Slaves[1].Executed()
	if dead := c.Slaves[0].Executed(); absorbed+dead < clients*perClient {
		t.Fatalf("only %d requests absorbed (%d on the dead node), want %d",
			absorbed, dead, clients*perClient)
	}

	// Clean shutdown with the poller mid-tick must not hang or race.
	done := make(chan struct{})
	go func() { c.Shutdown(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cluster Shutdown hung")
	}
}
