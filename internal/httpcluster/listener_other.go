//go:build !linux

package httpcluster

import "syscall"

// Non-Linux platforms fall back to a single listener: SO_REUSEPORT
// load-balanced accept exists on the BSDs too but with different
// semantics, and the portable contract here is "sharding is an
// optimization, never a requirement".
const reuseportSupported = false

// reuseportControl is never invoked when reuseportSupported is false;
// it exists so listener.go compiles on every platform.
func reuseportControl(network, address string, c syscall.RawConn) error {
	return nil
}
