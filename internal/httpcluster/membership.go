package httpcluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"msweb/internal/core"
	"msweb/internal/queuemodel"
	"msweb/internal/trace"
)

// Live membership: the epoch-versioned topology a sharded master tier
// converges on. Each master holds one immutable memState behind an
// atomic pointer — the live analogue of the simulator's reshard() — and
// every membership change swaps in a whole new state, so the request
// path never sees a half-rebalanced view.
//
// Convergence is newest-wins by epoch over three channels:
//
//   - announce: the initiator of a change (failure detector, autoscaler,
//     operator) applies the new membership locally and POSTs it to every
//     master of the old and new tiers;
//   - gossip pull: each gossip round also GETs peers' /membership, so a
//     master that missed the announce catches up within one round;
//   - epoch hints: an s2 shard summary stamped with a higher epoch than
//     the local map marks the membership stale, forcing a pull on the
//     next gossip round instead of waiting for a scheduled one.
//
// Failure detection rides the gossip channel: gossipMissThreshold
// consecutive failed /shard pulls from a shard owner declare it dead,
// and the lowest-id surviving master announces the successor membership
// with the dead peer removed — its shard redistributes by consistent
// hash, so ~1/m of the fleet changes owner. During the handoff window
// (rebalanceWindow × GossipEvery after any epoch move) sheds are
// labeled "rebalancing" and their Retry-After reflects the remaining
// window rather than the breaker hold-down.

// MembershipPath is the membership exchange endpoint on sharded
// masters: GET returns the current m1 line, POST applies one
// newest-wins.
const MembershipPath = "/membership"

// gossipMissThreshold is how many consecutive failed /shard pulls from
// one shard owner declare it dead.
const gossipMissThreshold = 3

// rebalanceWindow scales GossipEvery into the handoff window after an
// epoch move: long enough for every peer to converge via one gossip
// round, short enough that a flapping label cannot hide real overload.
const rebalanceWindow = 2

// memState is one immutable generation of a master's membership-derived
// topology. A new membership swaps the whole struct; readers pin one
// generation for the duration of an operation.
type memState struct {
	mb    core.Membership // normalized; mb.Epoch versions this state
	sm    *core.ShardMap  // derived partition (nil only on unsharded masters)
	shard int             // own shard index; -1 when this node is not a master of mb
	// owners maps shard index → owning master node id (mb.Masters).
	owners []int
	// pollSet is the node set this master samples each poll round;
	// masters/slaves are the scheduling-view tier lists every snapshot
	// publishes.
	pollSet []int
	masters []int
	slaves  []int
}

// newMemState derives self's topology from a validated, normalized
// membership. A node absent from the master list (demoted, or never
// promoted this epoch) keeps serving what reaches it but schedules only
// onto itself — the live form of a demoted master re-registering as a
// slave: peers poll its /load and dispatch /exec to it like any other
// shard member.
func newMemState(self int, mb core.Membership, sm *core.ShardMap) *memState {
	ms := &memState{
		mb:     mb,
		sm:     sm,
		shard:  mb.MasterIndex(self),
		owners: mb.Masters,
	}
	ms.masters = []int{self}
	if ms.shard >= 0 {
		ms.slaves = append([]int(nil), sm.Members(ms.shard)...)
	}
	ms.pollSet = append(append([]int(nil), ms.masters...), ms.slaves...)
	return ms
}

// Membership returns a copy of the master's current membership (zero
// value on unsharded masters).
func (m *Master) Membership() core.Membership {
	ms := m.mem.Load()
	if !m.sharded {
		return core.Membership{}
	}
	return ms.mb.Clone()
}

// Epoch reports the master's current shard-map epoch (0 when unsharded
// or never rebalanced).
func (m *Master) Epoch() uint64 {
	ms := m.mem.Load()
	if ms.sm == nil {
		return 0
	}
	return ms.sm.Epoch()
}

// ShedRebalancing reports how many sheds fell inside a handoff window
// and were labeled "rebalancing" rather than "overload".
func (m *Master) ShedRebalancing() int64 { return m.shedRebalance.Load() }

// shedRetryAfter classifies one shed that is already counted in
// shedCount: inside a handoff window the cause is the rebalance, not
// steady-state overload — book it as such and hint Retry-After from the
// window's remainder (the expected handoff completion) instead of the
// breaker hold-down. Outside a window the caller's hint stands.
func (m *Master) shedRetryAfter(ra int) int {
	until := m.rebalanceUntil.Load()
	if until == 0 {
		return ra
	}
	now := time.Now().UnixNano()
	if now >= until {
		return ra
	}
	m.shedRebalance.Add(1)
	rem := int((time.Duration(until-now) + time.Second - 1) / time.Second)
	if rem < 1 {
		rem = 1
	}
	return rem
}

// ApplyMembership adopts mb if it is newer than the current epoch
// (newest-wins; ties and older epochs are ignored, so re-delivered
// announcements are harmless). On adoption the shard map, poll set and
// view tier lists all swap atomically, a fresh snapshot publishes the
// new topology without waiting for the next poll round, and the handoff
// window opens. Returns whether mb was adopted.
func (m *Master) ApplyMembership(mb core.Membership) (bool, error) {
	if !m.sharded {
		return false, fmt.Errorf("httpcluster: unsharded master %d has no membership", m.ID)
	}
	if err := mb.Validate(); err != nil {
		return false, err
	}
	for _, ids := range [][]int{mb.Masters, mb.Slaves} {
		for _, id := range ids {
			if id >= len(m.urls) {
				return false, fmt.Errorf("httpcluster: membership node %d outside cluster (len %d)", id, len(m.urls))
			}
		}
	}
	m.memMu.Lock()
	defer m.memMu.Unlock()
	cur := m.mem.Load()
	if mb.Epoch <= cur.mb.Epoch {
		return false, nil
	}
	next := mb.Clone()
	next.Normalize()
	sm, err := next.ShardMap()
	if err != nil {
		return false, err
	}
	ms := newMemState(m.ID, next, sm)
	m.mem.Store(ms)
	m.memberApplies.Add(1)
	m.rebalanceUntil.Store(time.Now().Add(rebalanceWindow * m.gossipEvery).UnixNano())

	// Publish the new tier lists immediately: load columns and per-node
	// stamps carry over, only the roles change.
	prev := m.snap.Load()
	m.snap.Store(&loadSnapshot{
		epoch:  prev.epoch + 1,
		at:     time.Now().UnixNano(),
		atNode: append([]int64(nil), prev.atNode...),
		view: core.View{
			Masters:  ms.masters,
			Slaves:   ms.slaves,
			Affinity: prev.view.Affinity,
			Load:     append([]core.Load(nil), prev.view.Load...),
		},
	})
	m.rebuildShardStamp(ms, m.snap.Load())
	return true, nil
}

// AnnounceMembership applies mb locally and broadcasts it to every
// master of both the old and the new tier — the initiator half of the
// protocol (receivers do not re-broadcast; the gossip pull is the
// convergence backstop). Broadcast failures are expected (the change
// may exist precisely because a peer died) and are not errors.
func (m *Master) AnnounceMembership(mb core.Membership) error {
	old := m.Membership()
	applied, err := m.ApplyMembership(mb)
	if err != nil {
		return err
	}
	if !applied {
		return nil
	}
	peers := map[int]bool{}
	for _, id := range old.Masters {
		peers[id] = true
	}
	for _, id := range mb.Masters {
		peers[id] = true
	}
	delete(peers, m.ID)
	cur := m.Membership()
	wire := cur.AppendWire(make([]byte, 0, 128))
	for id := range peers {
		m.postMembership(id, wire)
	}
	return nil
}

// postMembership best-effort POSTs an m1 line to one peer master.
func (m *Master) postMembership(id int, wire []byte) {
	base := m.nodeURL(id)
	if base == "" {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), m.pollFloor)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+MembershipPath, newByteReader(wire))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", core.MembershipWireContentType)
	resp, err := m.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //nolint:errcheck
	resp.Body.Close()
}

// handleMembership serves the membership exchange endpoint. GET returns
// the current m1 line; POST folds one in newest-wins, answering 204 on
// adoption and 200 with the (newer) current line otherwise so a
// lagging sender converges from the response. Unsharded masters answer
// 404, like /shard.
func (m *Master) handleMembership(rw http.ResponseWriter, req *http.Request) {
	if !m.sharded {
		http.Error(rw, "unsharded master", http.StatusNotFound)
		return
	}
	switch req.Method {
	case http.MethodGet:
		m.writeMembership(rw, http.StatusOK)
	case http.MethodPost:
		buf := wireBufPool.Get().(*[]byte)
		b, err := readAllInto((*buf)[:0], io.LimitReader(req.Body, 1<<16))
		var mb core.Membership
		if err == nil {
			err = core.ParseMembership(b, &mb)
		}
		*buf = b[:0]
		wireBufPool.Put(buf)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		applied, err := m.ApplyMembership(mb)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		if applied {
			rw.WriteHeader(http.StatusNoContent)
			return
		}
		m.writeMembership(rw, http.StatusOK)
	default:
		http.Error(rw, "GET or POST", http.StatusMethodNotAllowed)
	}
}

func (m *Master) writeMembership(rw http.ResponseWriter, status int) {
	mb := m.Membership()
	rw.Header().Set("Content-Type", core.MembershipWireContentType)
	rw.WriteHeader(status)
	rw.Write(mb.AppendWire(make([]byte, 0, 128))) //nolint:errcheck
}

// fetchMembership pulls one peer's /membership into dst.
func (m *Master) fetchMembership(ctx context.Context, base string, dst *core.Membership) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+MembershipPath, nil)
	if err != nil {
		return err
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("membership: status %d", resp.StatusCode)
	}
	buf := wireBufPool.Get().(*[]byte)
	defer wireBufPool.Put(buf)
	b, err := readAllInto((*buf)[:0], io.LimitReader(resp.Body, 1<<16))
	*buf = b[:0]
	if err != nil {
		return err
	}
	return core.ParseMembership(b, dst)
}

// pullMembership fetches every peer master's membership and adopts the
// newest — the gossip-round backstop that bounds convergence to one
// round after any announce is lost.
func (m *Master) pullMembership(ctx context.Context, ms *memState) {
	var mb core.Membership
	for _, id := range ms.owners {
		if id == m.ID {
			continue
		}
		base := m.nodeURL(id)
		if base == "" {
			continue
		}
		if err := m.fetchMembership(ctx, base, &mb); err != nil {
			continue
		}
		if mb.Epoch > m.Epoch() {
			m.ApplyMembership(mb) //nolint:errcheck // older/invalid lines just don't apply
		}
	}
}

// confirmDead re-probes one suspect with its own generous deadline
// before it is declared dead. The gossip round's pulls run sequentially
// under one shared deadline, so on a loaded box a slow early fetch can
// starve the later ones into spurious misses — a slow-but-alive master
// must not be rebalanced away over that. A genuinely dead server
// refuses the dial in microseconds, so real failures still converge
// within the same round. A newer membership learned from the probe is
// adopted on the spot.
func (m *Master) confirmDead(id int) bool {
	base := m.nodeURL(id)
	if base == "" {
		return true
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*m.pollFloor)
	defer cancel()
	var mb core.Membership
	if err := m.fetchMembership(ctx, base, &mb); err != nil {
		return true
	}
	if mb.Epoch > m.Epoch() {
		m.ApplyMembership(mb) //nolint:errcheck // older/invalid lines just don't apply
	}
	return false
}

// detectDeadMasters turns gossip silence into a membership change: once
// a shard owner has missed gossipMissThreshold consecutive pulls and
// failed a direct confirmation probe, the lowest-id surviving master
// (deterministic initiator — no election) announces the successor
// membership with every dead peer removed. Callers run on the gossip
// goroutine (single writer of gossipMiss).
func (m *Master) detectDeadMasters(ms *memState) {
	if ms.shard < 0 {
		return
	}
	var dead []int
	lowestLive := m.ID
	for _, id := range ms.owners {
		if id == m.ID {
			continue
		}
		if m.gossipMiss[id] >= gossipMissThreshold {
			if m.confirmDead(id) {
				dead = append(dead, id)
				continue
			}
			m.gossipMiss[id] = 0
		}
		if id < lowestLive {
			lowestLive = id
		}
	}
	if len(dead) == 0 || lowestLive != m.ID || len(dead) >= len(ms.owners) {
		return
	}
	mb := ms.mb.Clone()
	kept := mb.Masters[:0]
	isDead := map[int]bool{}
	for _, id := range dead {
		isDead[id] = true
	}
	for _, id := range mb.Masters {
		if !isDead[id] {
			kept = append(kept, id)
		}
	}
	mb.Masters = kept
	mb.Epoch++
	if err := m.AnnounceMembership(mb); err != nil {
		return
	}
	for _, id := range dead {
		m.gossipMiss[id] = 0
	}
}

// Live master-tier autoscaler. The simulator's controller powers whole
// nodes on and off; live nodes have no power switch, so the live law
// resizes only the master tier — the part of the fleet whose size
// Theorem 1 actually plans. Each period the lowest-id master re-runs
// the optimal-m computation from its own measured per-class arrival
// and service rates (scaled by the master count, assuming the load
// generator stripes uniformly) and announces promote/demote membership
// changes. Demotions are gated by MSR-style exponential hold epochs so
// a trough cannot thrash the tier; promotions always pass, because
// under-provisioning during a flash crowd is the expensive failure.

// autoscaleLoop drives the controller; every sharded master runs it,
// but autoscaleOnce acts only on the current membership's lowest-id
// master, so there is exactly one initiator per epoch.
func (m *Master) autoscaleLoop(every time.Duration) {
	defer m.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.autoscaleOnce(every)
		}
	}
}

// observeClass feeds the controller's per-class window estimators.
// Callers hold placeMu.
func (m *Master) observeClass(class trace.Class, demand float64) {
	if class == trace.Static {
		m.winStatics++
		m.winDemandH += demand
	} else {
		m.winDynamics++
		m.winDemandC += demand
	}
}

// autoscaleOnce runs one controller period: harvest the measurement
// window, re-plan m, and announce the change if the hold epoch allows.
func (m *Master) autoscaleOnce(period time.Duration) {
	ms := m.mem.Load()
	if ms.shard < 0 || len(ms.mb.Masters) == 0 || ms.mb.Masters[0] != m.ID {
		return
	}
	m.placeMu.Lock()
	sh, dy := m.winStatics, m.winDynamics
	dh, dc := m.winDemandH, m.winDemandC
	m.winStatics, m.winDynamics, m.winDemandH, m.winDemandC = 0, 0, 0, 0
	m.placeMu.Unlock()
	if sh == 0 || dy == 0 || dh <= 0 || dc <= 0 {
		return // no signal this window; keep the current plan
	}
	masters := len(ms.mb.Masters)
	total := masters + len(ms.mb.Slaves)
	// Rates in virtual time: demands are unscaled virtual seconds, and a
	// wall window of `period` spans period/timeScale virtual seconds.
	vwin := period.Seconds() / m.timeScale
	p := queuemodel.Params{
		P:       total,
		LambdaH: float64(sh) / vwin * float64(masters),
		LambdaC: float64(dy) / vwin * float64(masters),
		MuH:     float64(sh) / dh,
		MuC:     float64(dy) / dc,
	}
	plan, err := p.OptimalPlan()
	if err != nil {
		return // saturated or degenerate window; re-plan next period
	}
	target := plan.M
	if target < 1 {
		target = 1
	}
	if target > total-1 {
		target = total - 1
	}
	now := time.Now().UnixNano()
	held := now < m.asHoldUntil.Load()
	if target == masters || (target < masters && held) {
		// Idle period: halve the hold back toward its floor.
		if h := m.asHold.Load(); h > int64(2*period) {
			m.asHold.Store(h / 2)
		}
		return
	}
	mb := m.nextTierPlan(ms, target)
	if mb == nil {
		return
	}
	if err := m.AnnounceMembership(*mb); err != nil {
		return
	}
	// Action taken: open the hold epoch and double it, capped.
	h := m.asHold.Load()
	if h < int64(2*period) {
		h = int64(2 * period)
	}
	m.asHoldUntil.Store(now + h)
	if h < int64(32*period) {
		m.asHold.Store(2 * h)
	}
}

// nextTierPlan builds the successor membership with the master tier
// resized to target: promotions take the lowest-id master-capable
// slaves, demotions return the highest-id masters to the slave tier
// (they re-register as slaves and keep executing). Returns nil when no
// legal move exists.
func (m *Master) nextTierPlan(ms *memState, target int) *core.Membership {
	mb := ms.mb.Clone()
	for target > len(mb.Masters) {
		picked := -1
		for i, id := range mb.Slaves {
			if m.masterCapable[id] {
				picked = i
				break
			}
		}
		if picked < 0 {
			break
		}
		mb.Masters = append(mb.Masters, mb.Slaves[picked])
		mb.Slaves = append(mb.Slaves[:picked], mb.Slaves[picked+1:]...)
	}
	for target < len(mb.Masters) && len(mb.Masters) > 1 && len(mb.Slaves) > 0 {
		last := len(mb.Masters) - 1
		mb.Slaves = append(mb.Slaves, mb.Masters[last])
		mb.Masters = mb.Masters[:last]
	}
	if len(mb.Masters) == len(ms.mb.Masters) {
		return nil
	}
	mb.Normalize()
	mb.Epoch++
	return &mb
}

// byteReader is a zero-dependency bytes.Reader stand-in for POST
// bodies (keeps this file's imports to the packages already used).
type byteReader struct{ b []byte }

func newByteReader(b []byte) *byteReader { return &byteReader{b: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
