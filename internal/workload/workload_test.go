package workload

import (
	"math"
	"testing"
	"testing/quick"

	"msweb/internal/trace"
)

func baseConfig() Config {
	return Config{
		Profile:      trace.KSU,
		Sessions:     200,
		SessionRate:  10,
		MeanRequests: 8,
		MeanThink:    0.5,
		MuH:          1200,
		R:            1.0 / 40,
		Seed:         1,
	}
}

func TestGenerateSessions(t *testing.T) {
	sessions, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 200 {
		t.Fatalf("%d sessions, want 200", len(sessions))
	}
	for i, s := range sessions {
		if err := s.Validate(); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	// Session starts are sorted (Poisson arrivals).
	for i := 1; i < len(sessions); i++ {
		if sessions[i].Start < sessions[i-1].Start {
			t.Fatal("session starts unsorted")
		}
	}
}

func TestSessionLengthMean(t *testing.T) {
	cfg := baseConfig()
	cfg.Sessions = 2000
	sessions, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean := float64(TotalRequests(sessions)) / float64(len(sessions))
	if math.Abs(mean-8) > 0.8 {
		t.Fatalf("mean session length %.2f, want ~8", mean)
	}
}

func TestThinkTimeMean(t *testing.T) {
	cfg := baseConfig()
	cfg.Sessions = 1000
	sessions, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, n := 0.0, 0
	for _, s := range sessions {
		for _, th := range s.Thinks {
			sum += th
			n++
		}
	}
	if n == 0 {
		t.Fatal("no think times generated")
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("mean think %.3f, want ~0.5", mean)
	}
}

func TestRequestsFollowProfile(t *testing.T) {
	cfg := baseConfig()
	cfg.Sessions = 1000
	sessions, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dyn, total := 0, 0
	for _, s := range sessions {
		for _, r := range s.Requests {
			total++
			if r.Class == trace.Dynamic {
				dyn++
			}
		}
	}
	frac := float64(dyn) / float64(total)
	if math.Abs(frac-0.291) > 0.03 {
		t.Fatalf("dynamic fraction %.3f, profile wants 0.291", frac)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Start != b[i].Start || len(a[i].Requests) != len(b[i].Requests) {
			t.Fatalf("session %d differs across identical seeds", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Sessions = 0 },
		func(c *Config) { c.SessionRate = 0 },
		func(c *Config) { c.MeanRequests = 0.5 },
		func(c *Config) { c.MeanThink = -1 },
		func(c *Config) { c.MuH = 0 },
		func(c *Config) { c.R = 0 },
	}
	for i, mutate := range cases {
		cfg := baseConfig()
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestSessionValidate(t *testing.T) {
	good := Session{Start: 1, Requests: make([]trace.Request, 2), Thinks: []float64{0.1}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Session{Start: 1}
	if bad.Validate() == nil {
		t.Fatal("empty session accepted")
	}
	bad2 := Session{Start: 1, Requests: make([]trace.Request, 2), Thinks: nil}
	if bad2.Validate() == nil {
		t.Fatal("mismatched thinks accepted")
	}
	bad3 := Session{Start: -1, Requests: make([]trace.Request, 1)}
	if bad3.Validate() == nil {
		t.Fatal("negative start accepted")
	}
	bad4 := Session{Start: 0, Requests: make([]trace.Request, 2), Thinks: []float64{-1}}
	if bad4.Validate() == nil {
		t.Fatal("negative think accepted")
	}
}

// Property: every generated batch validates and total request count is
// consistent.
func TestGenerateProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		cfg := baseConfig()
		cfg.Seed = seed
		cfg.Sessions = 1 + int(nRaw%50)
		sessions, err := Generate(cfg)
		if err != nil {
			return false
		}
		total := 0
		for _, s := range sessions {
			if s.Validate() != nil {
				return false
			}
			total += len(s.Requests)
		}
		return total == TotalRequests(sessions) && len(sessions) == cfg.Sessions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
