package workload_test

import (
	"fmt"

	"msweb/internal/trace"
	"msweb/internal/workload"
)

// Generate browsing sessions for a closed-loop run.
func ExampleGenerate() {
	sessions, err := workload.Generate(workload.Config{
		Profile:      trace.KSU,
		Sessions:     100,
		SessionRate:  10,  // ten users arrive per second
		MeanRequests: 8,   // pages per visit (geometric)
		MeanThink:    2.0, // seconds of reading between clicks
		MuH:          1200,
		R:            1.0 / 40,
		Seed:         1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("sessions: %d\n", len(sessions))
	fmt.Printf("total requests: %v\n", workload.TotalRequests(sessions) > 400)
	fmt.Printf("first session starts first: %v\n", sessions[0].Start < sessions[99].Start)
	// Output:
	// sessions: 100
	// total requests: true
	// first session starts first: true
}
