// Package workload models user sessions: a browsing user issues a
// chain of requests separated by think times, and — crucially — does
// not issue the next request until the previous response arrives. This
// closed-loop behaviour self-throttles under overload, unlike the
// paper's open-loop trace replay where the offered rate is fixed no
// matter how slow the server gets. The cluster simulator can drive
// either model; comparing them shows how much of an overloaded system's
// apparent collapse is an artifact of open-loop methodology.
package workload

import (
	"fmt"
	"math"

	"msweb/internal/rng"
	"msweb/internal/trace"
)

// Session is one user's visit: a chain of requests issued sequentially
// with think times between a response and the next request.
type Session struct {
	// Start is the session's arrival time in seconds.
	Start float64
	// Requests are issued in order; their Arrival fields are ignored
	// (issue times emerge from responses and think times).
	Requests []trace.Request
	// Thinks[i] is the pause after request i's response before request
	// i+1 is issued; len(Thinks) == len(Requests)−1.
	Thinks []float64
}

// Validate checks structural invariants.
func (s Session) Validate() error {
	if len(s.Requests) == 0 {
		return fmt.Errorf("workload: empty session")
	}
	if len(s.Thinks) != len(s.Requests)-1 {
		return fmt.Errorf("workload: %d thinks for %d requests", len(s.Thinks), len(s.Requests))
	}
	if s.Start < 0 || math.IsNaN(s.Start) {
		return fmt.Errorf("workload: bad session start %v", s.Start)
	}
	for i, th := range s.Thinks {
		if th < 0 || math.IsNaN(th) {
			return fmt.Errorf("workload: bad think time %v at %d", th, i)
		}
	}
	return nil
}

// Config parameterizes session generation.
type Config struct {
	// Profile supplies the request mix and sizes (as in trace.Generate).
	Profile trace.Profile
	// Sessions is the number of sessions to generate.
	Sessions int
	// SessionRate is the session arrival rate (sessions/second, Poisson).
	SessionRate float64
	// MeanRequests is the mean session length (geometric, ≥ 1).
	MeanRequests float64
	// MeanThink is the mean think time between requests (exponential).
	MeanThink float64
	// MuH and R calibrate demands exactly as in trace.GenConfig.
	MuH, R float64
	// Demand selects the demand distribution.
	Demand trace.DemandModel
	// Seed makes generation reproducible.
	Seed int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Sessions <= 0:
		return fmt.Errorf("workload: session count %d must be positive", c.Sessions)
	case c.SessionRate <= 0:
		return fmt.Errorf("workload: session rate %v must be positive", c.SessionRate)
	case c.MeanRequests < 1:
		return fmt.Errorf("workload: mean session length %v must be ≥ 1", c.MeanRequests)
	case c.MeanThink < 0:
		return fmt.Errorf("workload: negative think time")
	}
	probe := trace.GenConfig{Profile: c.Profile, Lambda: 1, Requests: 1, MuH: c.MuH, R: c.R}
	return probe.Validate()
}

// Generate builds the sessions. Request contents reuse the trace
// generator so demands, sizes, scripts and cache parameters follow the
// same profile statistics as the open-loop traces.
func Generate(cfg Config) ([]Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Estimate the total request budget, then draw the actual requests
	// from the trace generator and slice them into sessions.
	s := rng.New(cfg.Seed)
	lenS := s.Fork(11)
	startS := s.Fork(12)
	thinkS := s.Fork(13)

	lengths := make([]int, cfg.Sessions)
	total := 0
	pCont := 1 - 1/cfg.MeanRequests // geometric continuation probability
	for i := range lengths {
		n := 1
		for lenS.Bernoulli(pCont) && n < 200 {
			n++
		}
		lengths[i] = n
		total += n
	}

	base, err := trace.Generate(trace.GenConfig{
		Profile:  cfg.Profile,
		Lambda:   1, // arrivals are discarded; only contents matter
		Requests: total,
		MuH:      cfg.MuH,
		R:        cfg.R,
		Demand:   cfg.Demand,
		Seed:     cfg.Seed + 7919,
	})
	if err != nil {
		return nil, err
	}

	sessions := make([]Session, cfg.Sessions)
	now := 0.0
	idx := 0
	for i := range sessions {
		now += startS.Exp(1 / cfg.SessionRate)
		n := lengths[i]
		reqs := make([]trace.Request, n)
		copy(reqs, base.Requests[idx:idx+n])
		idx += n
		thinks := make([]float64, n-1)
		for j := range thinks {
			thinks[j] = thinkS.Exp(cfg.MeanThink)
		}
		sessions[i] = Session{Start: now, Requests: reqs, Thinks: thinks}
	}
	return sessions, nil
}

// TotalRequests sums the request counts of the sessions.
func TotalRequests(sessions []Session) int {
	n := 0
	for _, s := range sessions {
		n += len(s.Requests)
	}
	return n
}
