package core

import "msweb/internal/trace"

// Admission-stage implementations. The θ₂ reservation is the paper's
// mechanism; Open and SlavesOnly bound the spectrum for the competitor
// policies (no cap at all / strict static-dynamic separation).

// Registered admission-stage names.
const (
	AdmissionTheta2        = "theta2"
	AdmissionTheta2Observe = "theta2-observe"
	AdmissionOpen          = "open"
	AdmissionSlavesOnly    = "slaves-only"
)

// Theta2Admission is the reservation-for-static-processing admission
// stage: it wraps the self-stabilizing ReservationController and admits
// dynamics at masters only while the measured fraction stays under θ₂.
// It implements AdaptiveStats, so metrics exposition and experiment
// reports can publish the cap and its inputs.
type Theta2Admission struct {
	res *ReservationController
	// observeOnly keeps the estimators running but never enforces the
	// cap — the M/S-nr ablation (stats stay published, admission open).
	observeOnly bool
}

// NewTheta2Admission constructs the enforcing reservation stage.
func NewTheta2Admission(cfg ReservationConfig) *Theta2Admission {
	return &Theta2Admission{res: NewReservationController(cfg)}
}

// ObserveOnly disables cap enforcement while keeping every estimator
// running (the M/S-nr ablation). Returns the receiver for chaining.
func (a *Theta2Admission) ObserveOnly() *Theta2Admission {
	a.observeOnly = true
	return a
}

// Name implements AdmissionPolicy.
func (a *Theta2Admission) Name() string {
	if a.observeOnly {
		return AdmissionTheta2Observe
	}
	return AdmissionTheta2
}

// ObserveArrival implements AdmissionPolicy.
func (a *Theta2Admission) ObserveArrival(class trace.Class) { a.res.ObserveArrival(class) }

// AdmitAtMaster implements AdmissionPolicy.
func (a *Theta2Admission) AdmitAtMaster() bool {
	return a.observeOnly || a.res.AdmitAtMaster()
}

// CountPlacement implements AdmissionPolicy.
func (a *Theta2Admission) CountPlacement(atMaster bool) {
	a.res.CountDynamic()
	if atMaster {
		a.res.CountMasterDynamic()
	}
}

// ObserveCompletion implements AdmissionPolicy.
func (a *Theta2Admission) ObserveCompletion(class trace.Class, response, demand float64) {
	a.res.ObserveCompletion(class, response, demand)
}

// Tick implements AdmissionPolicy.
func (a *Theta2Admission) Tick(m, p int) { a.res.Recompute(m, p) }

// ThetaLimit implements AdaptiveStats.
func (a *Theta2Admission) ThetaLimit() float64 { return a.res.ThetaLimit() }

// ArrivalRatio implements AdaptiveStats.
func (a *Theta2Admission) ArrivalRatio() float64 { return a.res.A() }

// ServiceRatio implements AdaptiveStats.
func (a *Theta2Admission) ServiceRatio() float64 { return a.res.R() }

// OpenAdmission admits every dynamic request at every tier and keeps no
// estimators — the stage most modern dispatch policies (JSQ, MaxWeight,
// c/μ) assume, where admission control is someone else's job.
type OpenAdmission struct{}

// NewOpenAdmission constructs the open admission stage.
func NewOpenAdmission() OpenAdmission { return OpenAdmission{} }

// Name implements AdmissionPolicy.
func (OpenAdmission) Name() string { return AdmissionOpen }

// ObserveArrival implements AdmissionPolicy.
func (OpenAdmission) ObserveArrival(trace.Class) {}

// AdmitAtMaster implements AdmissionPolicy.
func (OpenAdmission) AdmitAtMaster() bool { return true }

// CountPlacement implements AdmissionPolicy.
func (OpenAdmission) CountPlacement(bool) {}

// ObserveCompletion implements AdmissionPolicy.
func (OpenAdmission) ObserveCompletion(trace.Class, float64, float64) {}

// Tick implements AdmissionPolicy.
func (OpenAdmission) Tick(int, int) {}

// SlavesOnlyAdmission never admits dynamics at masters (the pipeline
// still falls back to masters when no slave exists at all) — the strict
// static/dynamic separation of the fixed M/S′ split, usable with any
// routing stage.
type SlavesOnlyAdmission struct{}

// NewSlavesOnlyAdmission constructs the strict-separation stage.
func NewSlavesOnlyAdmission() SlavesOnlyAdmission { return SlavesOnlyAdmission{} }

// Name implements AdmissionPolicy.
func (SlavesOnlyAdmission) Name() string { return AdmissionSlavesOnly }

// ObserveArrival implements AdmissionPolicy.
func (SlavesOnlyAdmission) ObserveArrival(trace.Class) {}

// AdmitAtMaster implements AdmissionPolicy.
func (SlavesOnlyAdmission) AdmitAtMaster() bool { return false }

// CountPlacement implements AdmissionPolicy.
func (SlavesOnlyAdmission) CountPlacement(bool) {}

// ObserveCompletion implements AdmissionPolicy.
func (SlavesOnlyAdmission) ObserveCompletion(trace.Class, float64, float64) {}

// Tick implements AdmissionPolicy.
func (SlavesOnlyAdmission) Tick(int, int) {}
