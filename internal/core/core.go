// Package core implements the paper's primary contribution: scheduling
// policies for a master/slave Web server cluster (Section 4).
//
// The full M/S scheduler combines three mechanisms:
//
//  1. Node selection with cost prediction. Each dynamic request is placed
//     on the candidate node minimizing the relative server-site response
//     cost RSRC = w/CPUIdleRatio + (1−w)/DiskAvailRatio, where w is the
//     request class's CPU share obtained by off-line sampling (0.5 when
//     unknown) and the idle/available ratios come from periodically
//     refreshed rstat()-style load information.
//
//  2. Reservation for static processing. The fraction of dynamic
//     requests admitted at master nodes is capped at θ₂ — the upper root
//     from Theorem 1, which depends only on m/p and the arrival and
//     service ratios a and r. a is monitored from arrival counts; r is
//     approximated on-line by the ratio of measured static and dynamic
//     response times, which makes the cap self-stabilizing: admitting
//     too many dynamics at masters inflates static response times,
//     shrinking the apparent r and with it the cap.
//
//  3. Separation of static and dynamic processing. Static requests are
//     never re-scheduled: they run at the master that received them,
//     so cheap requests are not delayed behind CGI work.
//
// The ablated variants the paper evaluates are configurations of the same
// scheduler: M/S-ns disables w sampling (w ≡ 0.5), M/S-nr disables the
// reservation cap, and M/S-1 makes every node a master. The flat
// architecture (uniform random dispatch, no redirection) and the fixed
// M/S′ split are provided as baselines.
package core

import (
	"math"

	"msweb/internal/rng"
	"msweb/internal/trace"
)

// Load is one node's scheduling-relevant load snapshot. It is also the
// wire format the live cluster's /load endpoint serves (the JSON tags
// are the protocol), so the simulator and the HTTP substrate share one
// definition instead of hand-copied mirrors.
type Load struct {
	// CPUIdle is the idle fraction of the CPU over the last load-info
	// window, in [0, 1].
	CPUIdle float64 `json:"cpu_idle"`
	// DiskAvail is the available fraction of disk bandwidth over the
	// last window, in [0, 1].
	DiskAvail float64 `json:"disk_avail"`
	// CPUQueue and DiskQueue are instantaneous queue populations,
	// consumed by the least-loaded baseline.
	CPUQueue  int `json:"cpu_queue"`
	DiskQueue int `json:"disk_queue"`
	// Speed is the node's relative CPU speed (heterogeneous extension).
	Speed float64 `json:"speed,omitempty"`
}

// ScriptAffinity restricts where CGI scripts may run — the paper's
// future-work scenario in which "only portions of the data may be
// replicated and some CGI scripts require specific servers". A script
// absent from the map may run anywhere; an empty slice is treated the
// same (no usable constraint).
type ScriptAffinity map[int][]int

// Allowed returns the node set a script is pinned to, or nil when the
// script is unconstrained.
func (a ScriptAffinity) Allowed(script int) []int {
	if a == nil {
		return nil
	}
	nodes := a[script]
	if len(nodes) == 0 {
		return nil
	}
	return nodes
}

// View is the cluster state a policy sees when placing a request: the
// current role assignment and the latest (possibly stale) load snapshots.
type View struct {
	Now     float64
	Masters []int
	Slaves  []int
	Load    []Load // indexed by node id; len(Load) = cluster size
	// Affinity optionally pins scripts to node subsets.
	Affinity ScriptAffinity
}

// P returns the cluster size.
func (v *View) P() int { return len(v.Load) }

// Request is the scheduling-relevant description of an arriving request.
type Request struct {
	Class  trace.Class
	Script int
}

// Policy decides where requests execute. Place is called once per
// request with the master that received it; ObserveCompletion and Tick
// feed the adaptive estimators of reservation-based policies.
type Policy interface {
	// Name identifies the policy in experiment output ("M/S", "M/S-nr"...).
	Name() string
	// Place returns the node that must execute the request.
	Place(req Request, master int, v *View) int
	// ObserveCompletion reports a finished request: its class, measured
	// server-site response time and intrinsic demand.
	ObserveCompletion(class trace.Class, response, demand float64)
	// Tick runs periodic adaptation (reservation-cap recomputation).
	Tick(now float64, v *View)
}

// Placement describes one Place decision for the observability layer:
// the chosen node, the RSRC cost it was chosen at, the CPU share used
// in the cost, and whether the reservation admitted masters as
// candidates. RSRC is 0 for placements that involved no cost comparison
// (static requests, single-candidate pools).
type Placement struct {
	Node           int
	RSRC           float64
	W              float64
	MasterAdmitted bool
}

// PlacementExplainer is implemented by policies that can describe their
// most recent Place decision. The tracing layer consults it after each
// placement; recording the explanation must be cheap enough to do
// unconditionally (a few field stores).
type PlacementExplainer interface {
	LastPlacement() Placement
}

// MasterAdmission is implemented by reservation-based policies that can
// report whether the θ₂ cap currently admits another dynamic request at
// a master. The live cluster's load shedder consults it when every
// slave is circuit-open: if the reservation says masters are already at
// their dynamic cap, admitting more would starve static traffic, so the
// request is shed instead — the same feedback loop that drives
// placement, extended to admission control.
type MasterAdmission interface {
	AdmitsAtMaster() bool
}

// FilterLive appends to dst the members of ids for which live returns
// true and returns the extended slice. It is the breaker-aware candidate
// filter used by live masters to exclude circuit-open nodes from a
// policy's view; callers pass a reused scratch as dst so steady-state
// filtering allocates nothing.
func FilterLive(dst, ids []int, live func(id int) bool) []int {
	for _, id := range ids {
		if live(id) {
			dst = append(dst, id)
		}
	}
	return dst
}

// AdaptiveStats is implemented by policies that expose their adaptive
// estimator state — the live cluster's /metrics endpoint publishes
// these as the scheduler gauges the paper's measurement-driven
// mechanisms are judged by.
type AdaptiveStats interface {
	// ThetaLimit is the current θ₂ admission cap.
	ThetaLimit() float64
	// ArrivalRatio is the measured arrival-rate ratio a = λ_c/λ_h.
	ArrivalRatio() float64
	// ServiceRatio is the measured service-rate ratio r ≈ μ_c/μ_h.
	ServiceRatio() float64
}

// MinIdleFloor bounds the idle/available ratios away from zero in the
// RSRC denominator: a saturated resource still drains work at quantum
// granularity, and the scheduler must retain a finite ordering between
// two busy nodes.
const MinIdleFloor = 0.01

// RSRC is Equation 5 of the paper: the relative server-site response
// cost of running a request with CPU share w on a node with the given
// idle ratios. Lower is better.
func RSRC(w, cpuIdle, diskAvail float64) float64 {
	if w < 0 {
		w = 0
	}
	if w > 1 {
		w = 1
	}
	if cpuIdle < MinIdleFloor {
		cpuIdle = MinIdleFloor
	}
	if diskAvail < MinIdleFloor {
		diskAvail = MinIdleFloor
	}
	return w/cpuIdle + (1-w)/diskAvail
}

// WTable is the off-line sampling result: the measured CPU share of each
// CGI script. Scripts absent from the table fall back to DefaultW.
type WTable map[int]float64

// DefaultW is the assumption when no sample exists: CPU and I/O equally
// important.
const DefaultW = 0.5

// W looks up a script's sampled CPU share.
func (t WTable) W(script int) float64 {
	if t == nil {
		return DefaultW
	}
	if w, ok := t[script]; ok {
		return w
	}
	return DefaultW
}

// SampleW performs the off-line sampling pass: it averages the observed
// CPU share of the first maxPerScript instances of each script in the
// trace, mimicking profiling each CGI program on an unloaded system.
func SampleW(tr *trace.Trace, maxPerScript int) WTable {
	if maxPerScript <= 0 {
		maxPerScript = 16
	}
	sums := map[int]float64{}
	counts := map[int]int{}
	for _, r := range tr.Requests {
		if r.Class != trace.Dynamic {
			continue
		}
		if counts[r.Script] >= maxPerScript {
			continue
		}
		sums[r.Script] += r.CPUWeight
		counts[r.Script]++
	}
	t := make(WTable, len(sums))
	for s, sum := range sums {
		t[s] = sum / float64(counts[s])
	}
	return t
}

// pickMinRSRC returns the candidate with the smallest RSRC and that
// cost; ties are broken uniformly at random so equal nodes share load.
// The tie list builds in scratch (reused across calls by the owner) so
// the per-placement hot path does not allocate; the possibly-grown
// buffer is returned for the caller to keep.
func pickMinRSRC(w float64, candidates []int, v *View, s *rng.Stream, scratch []int) (int, float64, []int) {
	if len(candidates) == 0 {
		panic("core: no candidate nodes")
	}
	best := math.Inf(1)
	bestNodes := scratch[:0]
	for _, id := range candidates {
		cost := nodeRSRC(w, v.Load[id])
		switch {
		case cost < best-1e-12:
			best = cost
			bestNodes = bestNodes[:0]
			bestNodes = append(bestNodes, id)
		case cost <= best+1e-12:
			bestNodes = append(bestNodes, id)
		}
	}
	return bestNodes[s.Intn(len(bestNodes))], best, bestNodes
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// MS is the paper's full scheduler, expressed as the default pipeline:
// θ₂-reservation admission, min-RSRC routing, MLFQ per-node scheduling.
// The alias keeps the paper-facing name for the policy the experiments
// are about while the mechanics live in Pipeline.
type MS = Pipeline

// MSOption configures NewMS's ablations.
type MSOption func(*msConfig)

type msConfig struct {
	name        string
	sampling    bool
	reservation bool
}

// WithoutSampling disables off-line w sampling (the M/S-ns ablation):
// every dynamic request is costed with w = 0.5.
func WithoutSampling() MSOption { return func(c *msConfig) { c.sampling = false } }

// WithoutReservation disables the θ₂ admission cap at masters (the
// M/S-nr ablation). The estimators keep running so adaptive stats stay
// observable; only enforcement is off.
func WithoutReservation() MSOption { return func(c *msConfig) { c.reservation = false } }

// WithName overrides the reported policy name.
func WithName(name string) MSOption { return func(c *msConfig) { c.name = name } }

// DefaultPlacementImpact is the booking charge: between two load-info
// refreshes every placement marks its target that much busier in the
// scheduler's cached view, preventing the stale-information herd effect
// (all requests of a refresh window piling onto the one node that looked
// idlest). The cached view is overwritten at the next rstat refresh, so
// the charge only needs to be the right order of magnitude: one CGI
// occupies a sizable share of one resource for one refresh window.
const DefaultPlacementImpact = 0.15

// NewMS constructs the full M/S policy — the default pipeline — with
// options for the paper's ablations. Other placement knobs (booking
// impact, reservation tuning, affinity mode) are PipelineConfig fields;
// build those variants with NewPipeline.
func NewMS(wtable WTable, seed int64, opts ...MSOption) *MS {
	c := msConfig{name: "M/S", sampling: true, reservation: true}
	for _, o := range opts {
		o(&c)
	}
	adm := NewTheta2Admission(DefaultReservationConfig())
	if !c.reservation {
		adm.ObserveOnly()
	}
	return NewPipeline(PipelineConfig{
		Name:            c.name,
		Admission:       adm,
		Routing:         NewRSRCRouting(seed),
		WTable:          wtable,
		DisableSampling: !c.sampling,
	})
}

// intersect returns the members of a that also appear in b, preserving
// a's order.
func intersect(a, b []int) []int {
	var out []int
	for _, x := range a {
		if isIn(x, b) {
			out = append(out, x)
		}
	}
	return out
}

func isIn(id int, ids []int) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// Flat is the theoretical baseline: uniform random dispatch with no
// redirection — every request executes at the node that received it.
type Flat struct{}

// NewFlat constructs the flat policy.
func NewFlat() *Flat { return &Flat{} }

// Name implements Policy.
func (*Flat) Name() string { return "Flat" }

// Place implements Policy.
func (*Flat) Place(req Request, master int, v *View) int { return master }

// ObserveCompletion implements Policy.
func (*Flat) ObserveCompletion(trace.Class, float64, float64) {}

// Tick implements Policy.
func (*Flat) Tick(float64, *View) {}

// MSPrime is the fixed-split alternative of Section 3: statics at the
// receiving master, dynamics assigned uniformly at random to the slave
// tier with no load awareness and no master admission.
type MSPrime struct {
	rng *rng.Stream
}

// NewMSPrime constructs the M/S′ policy.
func NewMSPrime(seed int64) *MSPrime { return &MSPrime{rng: rng.New(seed)} }

// Name implements Policy.
func (*MSPrime) Name() string { return "M/S'" }

// Place implements Policy.
func (p *MSPrime) Place(req Request, master int, v *View) int {
	if req.Class == trace.Static || len(v.Slaves) == 0 {
		return master
	}
	return v.Slaves[p.rng.Intn(len(v.Slaves))]
}

// ObserveCompletion implements Policy.
func (*MSPrime) ObserveCompletion(trace.Class, float64, float64) {}

// Tick implements Policy.
func (*MSPrime) Tick(float64, *View) {}

// RoundRobin cycles dynamics over slaves (or all nodes without a slave
// tier) and keeps statics local — a baseline for the ablation benches.
type RoundRobin struct {
	next int
}

// NewRoundRobin constructs the round-robin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (*RoundRobin) Name() string { return "RoundRobin" }

// Place implements Policy.
func (rr *RoundRobin) Place(req Request, master int, v *View) int {
	if req.Class == trace.Static {
		return master
	}
	pool := v.Slaves
	if len(pool) == 0 {
		pool = v.Masters
	}
	rr.next++
	return pool[rr.next%len(pool)]
}

// ObserveCompletion implements Policy.
func (*RoundRobin) ObserveCompletion(trace.Class, float64, float64) {}

// Tick implements Policy.
func (*RoundRobin) Tick(float64, *View) {}

// LeastLoaded sends dynamics to the node with the shortest combined
// queue — the classic single-index load-balancing baseline the related
// work section contrasts with multi-index RSRC.
type LeastLoaded struct {
	rng *rng.Stream
}

// NewLeastLoaded constructs the least-loaded policy.
func NewLeastLoaded(seed int64) *LeastLoaded { return &LeastLoaded{rng: rng.New(seed)} }

// Name implements Policy.
func (*LeastLoaded) Name() string { return "LeastLoaded" }

// Place implements Policy.
func (ll *LeastLoaded) Place(req Request, master int, v *View) int {
	if req.Class == trace.Static {
		return master
	}
	pool := v.Slaves
	if len(pool) == 0 {
		pool = v.Masters
	}
	best := math.MaxInt
	var bestNodes []int
	for _, id := range pool {
		q := v.Load[id].CPUQueue + v.Load[id].DiskQueue
		switch {
		case q < best:
			best = q
			bestNodes = append(bestNodes[:0], id)
		case q == best:
			bestNodes = append(bestNodes, id)
		}
	}
	return bestNodes[ll.rng.Intn(len(bestNodes))]
}

// ObserveCompletion implements Policy.
func (*LeastLoaded) ObserveCompletion(trace.Class, float64, float64) {}

// Tick implements Policy.
func (*LeastLoaded) Tick(float64, *View) {}
