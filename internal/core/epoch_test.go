package core

import (
	"bytes"
	"testing"
)

func TestShardMapRebalancedEpochAndStability(t *testing.T) {
	slaves := make([]int, 1000)
	for i := range slaves {
		slaves[i] = i + 8
	}
	m, err := NewShardMap(ShardHash, 8, slaves)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 0 {
		t.Fatalf("initial epoch %d, want 0", m.Epoch())
	}

	// A master leaves: 8 → 7 shards over the same slaves. Only the
	// departed shard's slaves need a new owner — about 1/8 of the fleet.
	m2, err := m.Rebalanced(7, slaves)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Epoch() != 1 {
		t.Fatalf("rebalanced epoch %d, want 1", m2.Epoch())
	}
	moved := m2.MovedFrom(m)
	if moved == 0 || moved > 300 {
		t.Errorf("8→7 shards moved %d/1000 slaves; consistent hashing should move roughly 1/8", moved)
	}

	// A slave joins: same shard count, one extra node. Nobody else moves.
	joined := append(append([]int(nil), slaves...), 5000)
	m3, err := m2.Rebalanced(7, joined)
	if err != nil {
		t.Fatal(err)
	}
	if m3.Epoch() != 2 {
		t.Fatalf("epoch after join %d, want 2", m3.Epoch())
	}
	if moved := m3.MovedFrom(m2); moved != 0 {
		t.Errorf("slave join moved %d existing slaves; want 0", moved)
	}
	if m3.ShardOf(5000) < 0 {
		t.Error("joined slave is unmapped")
	}
	if m3.Size() != len(joined) {
		t.Errorf("size %d, want %d", m3.Size(), len(joined))
	}
}

func TestShardSummaryWireEpochFraming(t *testing.T) {
	s := ShardSummary{Shard: 4, AtNs: 77, Nodes: 3, CPUIdle: 0.5, DiskAvail: 0.5}

	// Epoch 0 emits the v1 framing byte-identically to pre-epoch builds.
	v1 := s.AppendWire(nil)
	if !bytes.HasPrefix(v1, []byte("s1 4 77 ")) {
		t.Fatalf("epoch-0 summary not in v1 framing: %q", v1)
	}
	var out ShardSummary
	if err := ParseShardSummary(v1, &out); err != nil {
		t.Fatal(err)
	}
	if out.Epoch != 0 {
		t.Fatalf("v1 decode epoch %d, want 0", out.Epoch)
	}

	// Epoch > 0 switches to v2 and round-trips the epoch.
	s.Epoch = 9
	v2 := s.AppendWire(nil)
	if !bytes.HasPrefix(v2, []byte("s2 4 9 77 ")) {
		t.Fatalf("epoch-9 summary not in v2 framing: %q", v2)
	}
	out = ShardSummary{Epoch: 123} // dirty dst must be overwritten
	if err := ParseShardSummary(v2, &out); err != nil {
		t.Fatal(err)
	}
	if out.Epoch != 9 || out.Shard != 4 || out.AtNs != 77 {
		t.Fatalf("v2 round trip drift: %+v", out)
	}

	// v2 with a zero epoch is malformed (it would re-encode as v1).
	if err := ParseShardSummary([]byte("s2 4 0 77 3 0.5 0.5 0 0 0 0\n"), &out); err == nil {
		t.Error("v2 line with zero epoch accepted")
	}
}

func TestSummaryWins(t *testing.T) {
	cases := []struct {
		ne   uint64
		na   int64
		oe   uint64
		oa   int64
		want bool
	}{
		{1, 0, 0, 999, true},  // higher epoch beats any timestamp
		{0, 999, 1, 0, false}, // lower epoch loses to any timestamp
		{2, 10, 2, 5, true},   // same epoch: newer stamp wins
		{2, 5, 2, 10, false},  // same epoch: older stamp loses
		{2, 10, 2, 10, true},  // equal stamps replace (idempotent)
	}
	for _, c := range cases {
		if got := SummaryWins(c.ne, c.na, c.oe, c.oa); got != c.want {
			t.Errorf("SummaryWins(%d,%d vs %d,%d) = %v, want %v", c.ne, c.na, c.oe, c.oa, got, c.want)
		}
	}
}

func TestMembershipWireRoundTrip(t *testing.T) {
	in := Membership{
		Epoch:   7,
		Mode:    ShardHash,
		Masters: []int{0, 2, 5},
		Slaves:  []int{1, 3, 4, 6, 7},
	}
	wire := in.AppendWire(nil)
	if !IsMembershipWire(wire) {
		t.Fatalf("encoded line fails the sniff: %q", wire)
	}
	var out Membership
	if err := ParseMembership(wire, &out); err != nil {
		t.Fatal(err)
	}
	if out.Epoch != in.Epoch || out.Mode != in.Mode {
		t.Fatalf("header drift: %+v", out)
	}
	for i, id := range in.Masters {
		if out.Masters[i] != id {
			t.Fatalf("masters drift: %v vs %v", out.Masters, in.Masters)
		}
	}
	for i, id := range in.Slaves {
		if out.Slaves[i] != id {
			t.Fatalf("slaves drift: %v vs %v", out.Slaves, in.Slaves)
		}
	}

	sm, err := out.ShardMap()
	if err != nil {
		t.Fatal(err)
	}
	if sm.Epoch() != 7 || sm.NumShards() != 3 {
		t.Fatalf("derived map: epoch %d shards %d", sm.Epoch(), sm.NumShards())
	}
	if out.MasterIndex(2) != 1 || out.MasterIndex(3) != -1 {
		t.Errorf("MasterIndex: %d, %d", out.MasterIndex(2), out.MasterIndex(3))
	}
	if !out.HasSlave(4) || out.HasSlave(5) {
		t.Error("HasSlave misreports tiers")
	}
}

func TestParseMembershipRejects(t *testing.T) {
	cases := [][]byte{
		[]byte(""),
		[]byte("m1 "),
		[]byte("junk"),
		[]byte("m1 1 9 1 0 0\n"),       // unknown mode
		[]byte("m1 1 1 2 0\n"),         // claims 2 masters, carries 1
		[]byte("m1 1 1 0 0\n"),         // no masters
		[]byte("m1 1 1 1 0 1 0\n"),     // node 0 in both tiers
		[]byte("m1 1 1 1 -3 0\n"),      // negative id
		[]byte("m1 1 1 99999999 0\n"),  // count over cap
		[]byte("m1 1 1 1 0 0 extra\n"), // trailing garbage
	}
	var dst Membership
	for _, b := range cases {
		if err := ParseMembership(b, &dst); err == nil {
			t.Errorf("accepted malformed line %q", b)
		}
	}
}
