package core

import (
	"fmt"
	"sort"
)

// Shard map: the deterministic partition of the slave fleet across the
// master tier. Every master computes the same map from the same inputs
// (mode, shard count, slave ID list), so there is no coordination step:
// master i owns shard i, polls only its members, tracks breakers for
// them, and books placements against them. Cross-shard state travels as
// compact ShardSummary digests (shardwire.go), never as full views, so
// no component does O(cluster size) work per tick.
//
// Two modes:
//
//   - ShardStatic assigns the slave at position i of the input list to
//     shard i mod shards — the predictable fallback whose membership a
//     human can compute in their head.
//   - ShardHash places shards on a consistent-hash ring (FNV-1a over
//     virtual points) and assigns each slave to the first shard point
//     clockwise from its own hash — membership stays mostly stable when
//     the shard count changes, the property that matters for live
//     resharding (the arktos partitioned-API-server move).

// Shard map modes.
const (
	ShardStatic = "static"
	ShardHash   = "hash"
)

// ringPointsPerShard is the virtual-node multiplier of the hash ring;
// enough points that shard sizes stay within a few percent of even for
// fleets in the hundreds-to-thousands range.
const ringPointsPerShard = 64

// ShardMap is an immutable node→shard partition. The zero value is not
// usable; construct with NewShardMap. Maps are versioned by a
// monotonically increasing epoch: the initial map of a run is epoch 0,
// and every membership change (node join/leave/fail, master-count
// change) derives a successor via Rebalanced, which bumps the epoch.
// Gossip carries the epoch so masters converge newest-wins on the same
// partition without a coordination step.
type ShardMap struct {
	mode    string
	shards  int
	epoch   uint64
	owner   map[int]int // slave node ID → shard
	members [][]int     // shard → slave node IDs, ascending
}

// NewShardMap partitions the given slave IDs into shards at epoch 0.
// mode "" means ShardHash. shards < 1 or a single shard yields the
// trivial one-shard map (every slave in shard 0) — the unsharded
// degenerate case callers can still index uniformly.
func NewShardMap(mode string, shards int, slaves []int) (*ShardMap, error) {
	return NewShardMapAt(mode, shards, slaves, 0)
}

// NewShardMapAt is NewShardMap at an explicit epoch — for peers adopting
// a map version learned from gossip rather than deriving it locally.
func NewShardMapAt(mode string, shards int, slaves []int, epoch uint64) (*ShardMap, error) {
	if mode == "" {
		mode = ShardHash
	}
	if mode != ShardStatic && mode != ShardHash {
		return nil, fmt.Errorf("core: unknown shard map mode %q (want %q or %q)", mode, ShardStatic, ShardHash)
	}
	if shards < 1 {
		shards = 1
	}
	m := &ShardMap{
		mode:    mode,
		shards:  shards,
		epoch:   epoch,
		owner:   make(map[int]int, len(slaves)),
		members: make([][]int, shards),
	}
	switch {
	case shards == 1:
		for _, id := range slaves {
			m.owner[id] = 0
		}
	case mode == ShardStatic:
		for i, id := range slaves {
			m.owner[id] = i % shards
		}
	default: // ShardHash
		ring := buildRing(shards)
		for _, id := range slaves {
			m.owner[id] = ring.ownerOf(hashID(id))
		}
	}
	for _, id := range slaves {
		s := m.owner[id]
		m.members[s] = append(m.members[s], id)
	}
	for s := range m.members {
		sort.Ints(m.members[s])
	}
	return m, nil
}

// Mode reports the construction mode ("static" or "hash").
func (m *ShardMap) Mode() string { return m.mode }

// NumShards reports the shard count.
func (m *ShardMap) NumShards() int { return m.shards }

// Epoch reports the map's membership version.
func (m *ShardMap) Epoch() uint64 { return m.epoch }

// Rebalanced derives the successor map at epoch+1 from a changed
// membership: a new shard count (masters promoted/demoted) and/or a new
// slave list (nodes joined, left or failed). The partition function is
// unchanged, so under ShardHash only the slaves whose clockwise-first
// ring point belongs to an added or removed shard move — about 1/m of
// the fleet per master change — while ShardStatic reassigns by position
// as always.
func (m *ShardMap) Rebalanced(shards int, slaves []int) (*ShardMap, error) {
	return NewShardMapAt(m.mode, shards, slaves, m.epoch+1)
}

// MovedFrom reports how many slaves present in both maps are owned by a
// different shard in m than in old — the churn a rebalance imposes on
// pollers and breakers.
func (m *ShardMap) MovedFrom(old *ShardMap) int {
	moved := 0
	for id, s := range m.owner {
		if os, ok := old.owner[id]; ok && os != s {
			moved++
		}
	}
	return moved
}

// Size reports the mapped slave population.
func (m *ShardMap) Size() int { return len(m.owner) }

// ShardOf reports the shard owning the given slave, or -1 when the node
// is not in the map (masters, unknown IDs).
func (m *ShardMap) ShardOf(node int) int {
	if s, ok := m.owner[node]; ok {
		return s
	}
	return -1
}

// Members reports the slaves of one shard in ascending ID order. The
// returned slice is owned by the map; callers must not mutate it.
func (m *ShardMap) Members(shard int) []int {
	if shard < 0 || shard >= len(m.members) {
		return nil
	}
	return m.members[shard]
}

// ring is a consistent-hash ring of shard virtual points.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int
}

// buildRing hashes ringPointsPerShard virtual points per shard onto the
// ring. Point hashes mix the shard index and the point index so shards
// interleave rather than clump.
func buildRing(shards int) *ring {
	r := &ring{points: make([]ringPoint, 0, shards*ringPointsPerShard)}
	for s := 0; s < shards; s++ {
		for p := 0; p < ringPointsPerShard; p++ {
			r.points = append(r.points, ringPoint{hash: hashPoint(s, p), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash collisions resolve by shard index so the ring order — and
		// therefore the whole map — is deterministic.
		return a.shard < b.shard
	})
	return r
}

// ownerOf finds the first ring point clockwise from h.
func (r *ring) ownerOf(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// mix64 is the splitmix64 finalizer — full-avalanche mixing of a 64-bit
// word, so consecutive small integers (node IDs, shard/point indices)
// spread uniformly over the ring. FNV-style byte folding is too weak
// here: low-entropy inputs clump and shard sizes skew badly.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashID hashes a node ID onto the ring.
func hashID(id int) uint64 {
	return mix64(uint64(int64(id)))
}

// hashPoint hashes shard virtual point (s, p).
func hashPoint(s, p int) uint64 {
	return mix64(uint64(int64(s))<<32 ^ uint64(int64(p)) ^ 0x5bd1e995)
}
