package core

import (
	"testing"

	"msweb/internal/trace"
)

func TestPipelineDefaultMatchesMS(t *testing.T) {
	// NewMS and an explicitly assembled default pipeline must make the
	// same decisions from the same seed: the legacy constructor is the
	// default pipeline, not a parallel implementation.
	mkView := func() *View {
		v := testView([]int{0}, []int{1, 2, 3})
		v.Load[1] = Load{CPUIdle: 0.4, DiskAvail: 0.7, Speed: 1}
		v.Load[2] = Load{CPUIdle: 0.7, DiskAvail: 0.4, Speed: 1}
		v.Load[3] = Load{CPUIdle: 0.6, DiskAvail: 0.6, Speed: 1}
		return v
	}
	ms := NewMS(WTable{3: 0.8}, 42)
	pl := NewPipeline(PipelineConfig{
		Name:      "M/S",
		Admission: NewTheta2Admission(DefaultReservationConfig()),
		Routing:   NewRSRCRouting(42),
		WTable:    WTable{3: 0.8},
	})
	va, vb := mkView(), mkView()
	ms.Tick(0, va)
	pl.Tick(0, vb)
	for i := 0; i < 200; i++ {
		class := trace.Dynamic
		if i%3 == 0 {
			class = trace.Static
		}
		req := Request{Class: class, Script: i % 5}
		a, b := ms.Place(req, 0, va), pl.Place(req, 0, vb)
		if a != b {
			t.Fatalf("request %d: NewMS placed at %d, explicit default pipeline at %d", i, a, b)
		}
	}
}

func TestPipelineStageNames(t *testing.T) {
	p := NewPipeline(PipelineConfig{Seed: 1})
	if p.AdmissionName() != AdmissionTheta2 || p.RoutingName() != RoutingRSRC {
		t.Fatalf("default stages = %q+%q", p.AdmissionName(), p.RoutingName())
	}
	if p.Scheduling() != DisciplineMLFQ {
		t.Fatalf("default discipline = %q", p.Scheduling())
	}
	if p.Name() != AdmissionTheta2+"+"+RoutingRSRC {
		t.Fatalf("derived name = %q", p.Name())
	}
	q := NewPipeline(PipelineConfig{
		Admission:  NewOpenAdmission(),
		Routing:    NewJSQRouting(2, 1),
		Scheduling: DisciplineFCFS,
	})
	if q.Name() != "open+jsq2" || q.Scheduling() != DisciplineFCFS {
		t.Fatalf("composed name/discipline = %q/%q", q.Name(), q.Scheduling())
	}
}

func TestJSQRoutingPrefersShortQueues(t *testing.T) {
	v := testView([]int{0}, []int{1, 2, 3})
	v.Load[0].CPUQueue = 4 // the master is eligible under open admission
	v.Load[1].CPUQueue = 9
	v.Load[2].CPUQueue = 9
	v.Load[3].CPUQueue = 0
	// Full-scan JSQ (d >= pool) must always find the empty queue.
	p := NewPipeline(PipelineConfig{
		Admission: NewOpenAdmission(), Routing: NewJSQRouting(8, 1),
		PlacementImpact: NoPlacementImpact,
	})
	for i := 0; i < 20; i++ {
		if got := p.Place(Request{Class: trace.Dynamic}, 0, v); got != 3 {
			t.Fatalf("JSQ(full) placed at %d, want 3", got)
		}
	}
	// JSQ(2) samples: over many placements the short queue must dominate
	// and every placement must stay in the candidate set.
	p2 := NewPipeline(PipelineConfig{
		Admission: NewSlavesOnlyAdmission(), Routing: NewJSQRouting(2, 7),
		PlacementImpact: NoPlacementImpact,
	})
	counts := map[int]int{}
	for i := 0; i < 300; i++ {
		got := p2.Place(Request{Class: trace.Dynamic}, 0, v)
		if got == 0 {
			t.Fatal("slaves-only admission placed at the master")
		}
		counts[got]++
	}
	if counts[3] <= counts[1] || counts[3] <= counts[2] {
		t.Fatalf("JSQ(2) did not favor the empty queue: %v", counts)
	}
}

func TestMaxWeightRoutingDrainTime(t *testing.T) {
	v := testView([]int{0}, []int{1, 2})
	// Node 1: long queue on slow hardware. Node 2: slightly longer queue
	// on 4× hardware → much shorter drain time.
	v.Load[1] = Load{CPUQueue: 6, Speed: 1, CPUIdle: 0.5, DiskAvail: 0.5}
	v.Load[2] = Load{CPUQueue: 8, Speed: 4, CPUIdle: 0.5, DiskAvail: 0.5}
	p := NewPipeline(PipelineConfig{
		Admission: NewSlavesOnlyAdmission(), Routing: NewMaxWeightRouting(1),
		WTable: WTable{1: 1}, PlacementImpact: NoPlacementImpact,
	})
	if got := p.Place(Request{Class: trace.Dynamic, Script: 1}, 0, v); got != 2 {
		t.Fatalf("MaxWeight placed at %d, want fast node 2", got)
	}
}

func TestCMuRoutingPrefersEffectiveCapacity(t *testing.T) {
	v := testView([]int{0}, []int{1, 2})
	v.Load[1] = Load{CPUIdle: 0.9, DiskAvail: 0.9, Speed: 1}
	v.Load[2] = Load{CPUIdle: 0.5, DiskAvail: 0.5, Speed: 4}
	p := NewPipeline(PipelineConfig{
		Admission: NewSlavesOnlyAdmission(), Routing: NewCMuRouting(1),
		PlacementImpact: NoPlacementImpact,
	})
	// 4×0.5 = 2 effective capacity beats 1×0.9.
	if got := p.Place(Request{Class: trace.Dynamic}, 0, v); got != 2 {
		t.Fatalf("c/mu placed at %d, want fast node 2", got)
	}
}

func TestRandomRoutingSpreads(t *testing.T) {
	v := testView([]int{0}, []int{1, 2, 3})
	p := NewPipeline(PipelineConfig{
		Admission: NewSlavesOnlyAdmission(), Routing: NewRandomRouting(1),
		PlacementImpact: NoPlacementImpact,
	})
	counts := map[int]int{}
	for i := 0; i < 300; i++ {
		counts[p.Place(Request{Class: trace.Dynamic}, 0, v)]++
	}
	for _, id := range v.Slaves {
		if counts[id] == 0 {
			t.Fatalf("random routing never used node %d: %v", id, counts)
		}
	}
	if counts[0] > 0 {
		t.Fatalf("random routing used the master under slaves-only admission: %v", counts)
	}
}

func TestScorerRoutingComposition(t *testing.T) {
	v := testView([]int{0}, []int{1, 2})
	v.Load[1] = Load{CPUIdle: 0.9, DiskAvail: 0.9, CPUQueue: 10, Speed: 1}
	v.Load[2] = Load{CPUIdle: 0.3, DiskAvail: 0.3, CPUQueue: 0, Speed: 1}
	// Pure RSRC prefers node 1 (idle); adding a strong queue-length term
	// flips the choice to node 2 (empty queue).
	rsrcOnly := NewPipeline(PipelineConfig{
		Admission:       NewSlavesOnlyAdmission(),
		Routing:         NewScorerRouting(1, WeightedScorer{RSRCScorer{}, 1}),
		PlacementImpact: NoPlacementImpact,
	})
	if got := rsrcOnly.Place(Request{Class: trace.Dynamic}, 0, v); got != 1 {
		t.Fatalf("rsrc scorer placed at %d, want 1", got)
	}
	mixed := NewPipeline(PipelineConfig{
		Admission: NewSlavesOnlyAdmission(),
		Routing: NewScorerRouting(1,
			WeightedScorer{RSRCScorer{}, 1},
			WeightedScorer{QueueLenScorer{}, 10},
		),
		PlacementImpact: NoPlacementImpact,
	})
	if got := mixed.Place(Request{Class: trace.Dynamic}, 0, v); got != 2 {
		t.Fatalf("rsrc+qlen scorer placed at %d, want 2", got)
	}
}

func TestAffinityScorerSoftPreference(t *testing.T) {
	v := testView([]int{0}, []int{1, 2})
	v.Affinity = ScriptAffinity{7: {2}}
	s := AffinityScorer{}
	if got := s.Score(Request{Script: 7}, 0.5, 2, v); got != 1 {
		t.Fatalf("replica node scored %v, want 1", got)
	}
	if got := s.Score(Request{Script: 7}, 0.5, 1, v); got != -1 {
		t.Fatalf("non-replica node scored %v, want -1", got)
	}
	if got := s.Score(Request{Script: 8}, 0.5, 1, v); got != 0 {
		t.Fatalf("unconstrained script scored %v, want 0", got)
	}
}

func TestAffinityOffIgnoresPins(t *testing.T) {
	v := testView([]int{0}, []int{1, 2})
	v.Affinity = ScriptAffinity{7: {2}}
	v.Load[1] = Load{CPUIdle: 1, DiskAvail: 1, Speed: 1}
	v.Load[2] = Load{CPUIdle: 0.05, DiskAvail: 0.05, Speed: 1}
	p := NewPipeline(PipelineConfig{
		Admission: NewSlavesOnlyAdmission(), Seed: 1,
		Affinity: AffinityOff, PlacementImpact: NoPlacementImpact,
	})
	if got := p.Place(Request{Class: trace.Dynamic, Script: 7}, 0, v); got != 1 {
		t.Fatalf("AffinityOff still honored the pin: placed at %d", got)
	}
}

func TestDeniesMasterAbsorption(t *testing.T) {
	v := testView([]int{0}, []int{1})
	// Closed cap: absorption denied regardless of load.
	closed := NewPipeline(PipelineConfig{
		Admission: NewTheta2Admission(ReservationConfig{InitialTheta: 0, Alpha: 0.3, Decay: 0.5}),
		Seed:      1,
	})
	if !closed.DeniesMasterAbsorption(0, v) {
		t.Fatal("closed cap did not deny absorption")
	}
	// Open admission, idle master: absorb.
	open := NewPipeline(PipelineConfig{Admission: NewOpenAdmission(), Seed: 1})
	if open.DeniesMasterAbsorption(0, v) {
		t.Fatal("open admission denied absorption at an idle master")
	}
	// ShedRSRC rule: a busy master crosses the ceiling even when the
	// admission stage is open.
	open.SetShedRSRC(3)
	v.Load[0] = Load{CPUIdle: 0.1, DiskAvail: 0.1, Speed: 1}
	if !open.DeniesMasterAbsorption(0, v) {
		t.Fatal("ShedRSRC ceiling not enforced")
	}
}

func TestPipelinePlaceDoesNotAllocate(t *testing.T) {
	routings := map[string]func() RoutingPolicy{
		"rsrc":      func() RoutingPolicy { return NewRSRCRouting(1) },
		"jsq2":      func() RoutingPolicy { return NewJSQRouting(2, 1) },
		"maxweight": func() RoutingPolicy { return NewMaxWeightRouting(1) },
		"cmu":       func() RoutingPolicy { return NewCMuRouting(1) },
		"random":    func() RoutingPolicy { return NewRandomRouting(1) },
		"scorers": func() RoutingPolicy {
			return NewScorerRouting(1, WeightedScorer{RSRCScorer{}, 1}, WeightedScorer{QueueLenScorer{}, 0.5})
		},
	}
	for name, mk := range routings {
		p := NewPipeline(PipelineConfig{Routing: mk(), Seed: 1})
		v := testView([]int{0}, []int{1, 2, 3})
		p.Tick(0, v)
		req := Request{Class: trace.Dynamic, Script: 1}
		p.Place(req, 0, v) // warm the scratch buffers
		if avg := testing.AllocsPerRun(200, func() {
			p.Place(req, 0, v)
		}); avg != 0 {
			t.Errorf("%s: Place allocates %v/op, want 0", name, avg)
		}
	}
}

func TestPoliciesReturnValidNodesPipeline(t *testing.T) {
	// The competitor pipelines obey the same contract as the classic
	// policies: a valid node for every class/topology combination.
	mk := []func() Policy{
		func() Policy {
			return NewPipeline(PipelineConfig{Admission: NewOpenAdmission(), Routing: NewJSQRouting(2, 1)})
		},
		func() Policy {
			return NewPipeline(PipelineConfig{Admission: NewOpenAdmission(), Routing: NewMaxWeightRouting(2)})
		},
		func() Policy {
			return NewPipeline(PipelineConfig{Admission: NewSlavesOnlyAdmission(), Routing: NewCMuRouting(3)})
		},
		func() Policy {
			return NewPipeline(PipelineConfig{Admission: NewOpenAdmission(), Routing: NewRandomRouting(4)})
		},
	}
	views := []*View{
		testView([]int{0}, []int{1, 2, 3}),
		testView([]int{0, 1}, nil), // no slave tier
		testView([]int{0}, []int{1}),
	}
	for _, f := range mk {
		p := f()
		for _, v := range views {
			p.Tick(0, v)
			for i := 0; i < 50; i++ {
				for _, class := range []trace.Class{trace.Static, trace.Dynamic} {
					got := p.Place(Request{Class: class, Script: i % 3}, 0, v)
					if got < 0 || got >= v.P() {
						t.Fatalf("%s placed at %d outside cluster of %d", p.Name(), got, v.P())
					}
					if class == trace.Static && got != 0 {
						t.Fatalf("%s moved a static to %d", p.Name(), got)
					}
				}
			}
		}
	}
}
