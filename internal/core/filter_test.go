package core

import (
	"testing"

	"msweb/internal/trace"
)

func TestFilterLive(t *testing.T) {
	live := map[int]bool{0: true, 2: true, 5: true}
	got := FilterLive(nil, []int{0, 1, 2, 3, 5}, func(id int) bool { return live[id] })
	want := []int{0, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("FilterLive = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FilterLive = %v, want %v", got, want)
		}
	}

	// Appends into the provided scratch without reallocating when
	// capacity suffices.
	scratch := make([]int, 0, 8)
	got = FilterLive(scratch, []int{1, 3}, func(int) bool { return true })
	if &got[0] != &scratch[:1][0] {
		t.Fatal("FilterLive reallocated despite sufficient scratch capacity")
	}

	// Nothing live yields an empty (possibly nil) slice.
	if got := FilterLive(nil, []int{1, 2}, func(int) bool { return false }); len(got) != 0 {
		t.Fatalf("FilterLive with nothing live = %v, want empty", got)
	}
}

func TestMSAdmitsAtMaster(t *testing.T) {
	// The M/S-nr ablation has no reservation: it always admits.
	nr := NewMS(nil, 1, WithoutReservation())
	if !nr.AdmitsAtMaster() {
		t.Fatal("M/S-nr must always admit at masters")
	}

	// A reserving policy tracks its admission stage: drive the cap to
	// zero by recomputing with a vanishing master share after
	// master-heavy placements, then verify admission is denied.
	adm := NewTheta2Admission(DefaultReservationConfig())
	ms := NewPipeline(PipelineConfig{Name: "M/S", Admission: adm, Seed: 1})
	for i := 0; i < 64; i++ {
		adm.ObserveArrival(trace.Dynamic)
		adm.CountPlacement(true)
	}
	adm.Tick(1, 64)
	if adm.ThetaLimit() > 0.1 && ms.AdmitsAtMaster() {
		t.Skip("controller kept a permissive cap; nothing to assert")
	}
	if ms.AdmitsAtMaster() != adm.AdmitAtMaster() {
		t.Fatal("AdmitsAtMaster must mirror the admission stage")
	}
}
