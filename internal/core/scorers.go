package core

import (
	"math"

	"msweb/internal/rng"
)

// Scorer composition: a routing stage assembled from weighted node
// scorers, so placement preferences (cost prediction, queue pressure,
// data affinity, hardware speed) can be mixed per deployment instead of
// choosing one hard-coded index. Higher scores are better; the composed
// stage picks argmax Σ weight_i·score_i with seeded random tie-breaks.
//
// Breaker state deliberately has no scorer: live masters filter
// circuit-open nodes out of the candidate view before routing runs
// (FilterLive), so a breaker scorer would only ever see healthy nodes.

// Scorer rates one candidate node for one request; higher is better.
// Implementations must be stateless per call (they run inside the
// placement hot path, under the caller's lock).
type Scorer interface {
	Name() string
	Score(req Request, w float64, id int, v *View) float64
}

// Registered scorer names.
const (
	ScorerRSRC     = "rsrc"
	ScorerQueueLen = "qlen"
	ScorerIdle     = "idle"
	ScorerSpeed    = "speed"
	ScorerAffinity = "affinity"
)

// RSRCScorer scores by negated RSRC cost (speed-normalized like the
// default routing stage), so min-cost becomes max-score.
type RSRCScorer struct{}

// Name implements Scorer.
func (RSRCScorer) Name() string { return ScorerRSRC }

// Score implements Scorer.
func (RSRCScorer) Score(req Request, w float64, id int, v *View) float64 {
	return -nodeRSRC(w, v.Load[id])
}

// QueueLenScorer scores by negated combined queue population — the
// join-shortest-queue signal as a composable preference.
type QueueLenScorer struct{}

// Name implements Scorer.
func (QueueLenScorer) Name() string { return ScorerQueueLen }

// Score implements Scorer.
func (QueueLenScorer) Score(req Request, w float64, id int, v *View) float64 {
	l := v.Load[id]
	return -float64(l.CPUQueue + l.DiskQueue)
}

// IdleScorer scores by the request-weighted idle capacity
// w·CPUIdle + (1−w)·DiskAvail — the c/μ numerator without the speed
// factor (compose with SpeedScorer to recover it).
type IdleScorer struct{}

// Name implements Scorer.
func (IdleScorer) Name() string { return ScorerIdle }

// Score implements Scorer.
func (IdleScorer) Score(req Request, w float64, id int, v *View) float64 {
	l := v.Load[id]
	return w*l.CPUIdle + (1-w)*l.DiskAvail
}

// SpeedScorer scores by the node's relative CPU speed, preferring faster
// hardware on heterogeneous clusters.
type SpeedScorer struct{}

// Name implements Scorer.
func (SpeedScorer) Name() string { return ScorerSpeed }

// Score implements Scorer.
func (SpeedScorer) Score(req Request, w float64, id int, v *View) float64 {
	if sp := v.Load[id].Speed; sp > 0 {
		return sp
	}
	return 1
}

// AffinityScorer is the soft form of the data-placement constraint: +1
// for nodes holding a pinned script's replica, −1 for nodes a pinned
// script would have to move data to, 0 when the script is unconstrained.
// (Pipelines in AffinityHard mode filter instead; this scorer exists for
// AffinityOff compositions that trade locality against load.)
type AffinityScorer struct{}

// Name implements Scorer.
func (AffinityScorer) Name() string { return ScorerAffinity }

// Score implements Scorer.
func (AffinityScorer) Score(req Request, w float64, id int, v *View) float64 {
	allowed := v.Affinity.Allowed(req.Script)
	if allowed == nil {
		return 0
	}
	if isIn(id, allowed) {
		return 1
	}
	return -1
}

// NodeRSRC is the per-node placement cost including the heterogeneous
// speed adjustment — exported so spill ranking over shard digests uses
// the same definition the digests were ordered by.
func NodeRSRC(w float64, l Load) float64 { return nodeRSRC(w, l) }

// nodeRSRC is the per-node cost used by pickMinRSRC, shared with the
// RSRC scorer so the two stay one definition.
func nodeRSRC(w float64, l Load) float64 {
	if sp := l.Speed; sp > 0 && sp != 1 {
		// Heterogeneous extension: a faster CPU cuts the CPU share of
		// the cost (paper §4 defers to the authors' prior work;
		// normalizing the CPU term by relative speed is the adaptation
		// used there).
		return (w/sp)/maxf(l.CPUIdle, MinIdleFloor) + (1-w)/maxf(l.DiskAvail, MinIdleFloor)
	}
	return RSRC(w, l.CPUIdle, l.DiskAvail)
}

// WeightedScorer is one term of a scorer composition.
type WeightedScorer struct {
	Scorer Scorer
	Weight float64
}

// ScorerRouting is the composed routing stage: argmax of the weighted
// scorer sum, seeded random tie-breaks.
type ScorerRouting struct {
	terms []WeightedScorer
	rng   *rng.Stream
	tie   []int
}

// NewScorerRouting composes a routing stage from weighted scorers; the
// slice must be non-empty.
func NewScorerRouting(seed int64, terms ...WeightedScorer) *ScorerRouting {
	if len(terms) == 0 {
		panic("core: scorer routing needs at least one scorer")
	}
	return &ScorerRouting{terms: terms, rng: rng.New(seed)}
}

// Name implements RoutingPolicy.
func (*ScorerRouting) Name() string { return RoutingScorers }

// Terms exposes the composition for registries and metric labels.
func (r *ScorerRouting) Terms() []WeightedScorer { return r.terms }

// Route implements RoutingPolicy.
func (r *ScorerRouting) Route(req Request, w float64, candidates []int, v *View) (int, float64) {
	best := math.Inf(-1)
	tie := r.tie[:0]
	for _, id := range candidates {
		score := 0.0
		for _, t := range r.terms {
			score += t.Weight * t.Scorer.Score(req, w, id, v)
		}
		switch {
		case score > best+1e-12:
			best = score
			tie = append(tie[:0], id)
		case score >= best-1e-12:
			tie = append(tie, id)
		}
	}
	target := tie[r.rng.Intn(len(tie))]
	r.tie = tie[:0]
	// Negated so lower reads as "better" in placement traces.
	return target, -best
}
