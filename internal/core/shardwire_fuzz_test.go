package core

import (
	"math"
	"testing"
)

// FuzzParseShardSummary pins the s1/s2 decoder's safety contract:
// arbitrary input never panics, over-reads, or allocates unboundedly
// (the digest cap), and any accepted input re-encodes to a line that
// parses back to the same summary (including the epoch, which selects
// the s2 framing).
func FuzzParseShardSummary(f *testing.F) {
	seeds := []ShardSummary{
		{Shard: 0, AtNs: 0, Nodes: 0},
		{Shard: 3, AtNs: 1234567890, Nodes: 64, CPUIdle: 0.5, DiskAvail: 0.25,
			CPUQueue: 17, DiskQueue: 9, Idle: 40,
			Top: []ShardDigest{
				{Node: 12, Load: Load{CPUIdle: 0.9, DiskAvail: 0.8, Speed: 1}},
				{Node: 77, Load: Load{CPUIdle: 0.7, DiskAvail: 0.6, CPUQueue: 2, DiskQueue: 1, Speed: 2}},
			}},
		{Shard: -1, AtNs: -5, Nodes: 1, CPUIdle: math.Inf(1), DiskAvail: math.Inf(-1),
			Top: []ShardDigest{{Node: 0, Load: Load{Speed: math.NaN()}}}},
		// s2 framing: epoch-stamped summaries from rebalanced maps.
		{Shard: 2, Epoch: 1, AtNs: 99, Nodes: 8},
		{Shard: 0, Epoch: 18446744073709551615, AtNs: 7, Nodes: 3,
			Top: []ShardDigest{{Node: 9, Load: Load{CPUIdle: 0.4, DiskAvail: 0.3, Speed: 1}}}},
	}
	for _, s := range seeds {
		f.Add(s.AppendWire(nil))
	}
	for _, raw := range [][]byte{
		[]byte("s1 "),
		[]byte("s1 1 2 3 0 0 0 0 0 1\n"),
		[]byte("s1 1 2 3 0 0 0 0 0 9999\n"),
		[]byte("s2 "),
		[]byte("s2 1 5 2 3 0 0 0 0 0 0\n"),
		[]byte("s2 1 0 2 3 0 0 0 0 0 0\n"), // v2 with zero epoch: rejected
		[]byte("s2 1 x 2 3 0 0 0 0 0 0\n"),
		[]byte("s3 1 2 3 0 0 0 0 0 0\n"),
		[]byte("junk"),
		[]byte(""),
	} {
		f.Add(raw)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		var s ShardSummary
		if err := ParseShardSummary(b, &s); err != nil {
			return
		}
		if len(s.Top) > MaxShardDigests {
			t.Fatalf("digest cap violated: %d", len(s.Top))
		}
		re := s.AppendWire(nil)
		var s2 ShardSummary
		if err := ParseShardSummary(re, &s2); err != nil {
			t.Fatalf("re-encoded %q does not parse: %v", re, err)
		}
		if s.Shard != s2.Shard || s.Epoch != s2.Epoch || s.AtNs != s2.AtNs || s.Nodes != s2.Nodes ||
			!sameF64(s.CPUIdle, s2.CPUIdle) || !sameF64(s.DiskAvail, s2.DiskAvail) ||
			s.CPUQueue != s2.CPUQueue || s.DiskQueue != s2.DiskQueue || s.Idle != s2.Idle ||
			len(s.Top) != len(s2.Top) {
			t.Fatalf("round trip drift: %+v -> %q -> %+v", s, re, s2)
		}
		for i := range s.Top {
			a, b := s.Top[i], s2.Top[i]
			if a.Node != b.Node || !sameF64(a.Load.CPUIdle, b.Load.CPUIdle) ||
				!sameF64(a.Load.DiskAvail, b.Load.DiskAvail) ||
				a.Load.CPUQueue != b.Load.CPUQueue || a.Load.DiskQueue != b.Load.DiskQueue ||
				!sameF64(a.Load.Speed, b.Load.Speed) {
				t.Fatalf("digest %d drift: %+v vs %+v", i, a, b)
			}
		}
	})
}
