package core

import (
	"fmt"
	"strconv"
)

// Compact load wire encoding. JSON round-tripping every rstat()-style
// load poll costs an encoder allocation and reflection walk on the node
// plus a decoder on the master, several times per second per node. The
// v1 fast path is a fixed-field single line,
//
//	l1 <cpu_idle> <disk_avail> <cpu_queue> <disk_queue> <speed>\n
//
// appended and parsed with strconv only — no maps, no reflection, no
// intermediate strings. JSON remains the fallback (and the default on
// the /load endpoint), so old masters can poll new nodes and vice versa;
// the master negotiates the fast path with the fmt=c query parameter and
// detects it by content type or the "l1 " prefix.

// LoadWireContentType is the MIME type of the compact encoding.
const LoadWireContentType = "text/x-msweb-load"

// loadWirePrefix introduces (and versions) a compact load line.
const loadWirePrefix = "l1 "

// AppendWire appends the compact v1 encoding of l to b and returns the
// extended slice. It never allocates when b has capacity (~64 bytes).
func (l Load) AppendWire(b []byte) []byte {
	b = append(b, loadWirePrefix...)
	b = strconv.AppendFloat(b, l.CPUIdle, 'g', -1, 64)
	b = append(b, ' ')
	b = strconv.AppendFloat(b, l.DiskAvail, 'g', -1, 64)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(l.CPUQueue), 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(l.DiskQueue), 10)
	b = append(b, ' ')
	b = strconv.AppendFloat(b, l.Speed, 'g', -1, 64)
	b = append(b, '\n')
	return b
}

// IsLoadWire reports whether b starts a compact load line (the sniff the
// master uses when a peer omits the content type).
func IsLoadWire(b []byte) bool {
	return len(b) >= len(loadWirePrefix) && string(b[:len(loadWirePrefix)]) == loadWirePrefix
}

// ParseLoadWire decodes a compact v1 load line (with or without the
// trailing newline).
func ParseLoadWire(b []byte) (Load, error) {
	var l Load
	if !IsLoadWire(b) {
		return l, fmt.Errorf("core: load wire: missing %q prefix", loadWirePrefix)
	}
	rest := b[len(loadWirePrefix):]
	if n := len(rest); n > 0 && rest[n-1] == '\n' {
		rest = rest[:n-1]
	}
	var err error
	for i := 0; i < 5; i++ {
		// Take the next space-delimited field without allocating.
		j := 0
		for j < len(rest) && rest[j] != ' ' {
			j++
		}
		field := rest[:j]
		if len(field) == 0 {
			return Load{}, fmt.Errorf("core: load wire: missing field %d", i)
		}
		switch i {
		case 0:
			l.CPUIdle, err = strconv.ParseFloat(string(field), 64)
		case 1:
			l.DiskAvail, err = strconv.ParseFloat(string(field), 64)
		case 2:
			l.CPUQueue, err = strconv.Atoi(string(field))
		case 3:
			l.DiskQueue, err = strconv.Atoi(string(field))
		case 4:
			l.Speed, err = strconv.ParseFloat(string(field), 64)
		}
		if err != nil {
			return Load{}, fmt.Errorf("core: load wire: field %d: %v", i, err)
		}
		if j < len(rest) {
			j++
		}
		rest = rest[j:]
	}
	if len(rest) != 0 {
		return Load{}, fmt.Errorf("core: load wire: trailing garbage %q", rest)
	}
	return l, nil
}

// ApplyReport merges a freshly reported load into the view's slot for
// node id, preserving the previously known Speed when the report omits
// it (Speed <= 0). This is the single merge rule for every report
// source — the master's /load poller and the piggybacked reports that
// ride on /exec and /req responses — so the two paths cannot drift.
func (v *View) ApplyReport(id int, l Load) {
	if id < 0 || id >= len(v.Load) {
		return
	}
	if l.Speed <= 0 {
		l.Speed = v.Load[id].Speed
	}
	v.Load[id] = l
}

// Snapshot returns an independent deep copy of the view's role and load
// slices (the Affinity map is shared; it is read-only after
// construction). The live cluster publishes these behind an atomic
// pointer: readers see either the old or the new snapshot, never a
// half-updated one.
func (v *View) Snapshot() *View {
	return &View{
		Now:      v.Now,
		Masters:  append([]int(nil), v.Masters...),
		Slaves:   append([]int(nil), v.Slaves...),
		Load:     append([]Load(nil), v.Load...),
		Affinity: v.Affinity,
	}
}
