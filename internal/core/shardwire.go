package core

import (
	"fmt"
	"strconv"
)

// Compact shard-summary wire encoding. A sharded master never ships its
// full per-node view to peers — that would put O(cluster size) bytes
// back on every tick. Instead it publishes a ShardSummary: the shard's
// aggregate load plus the top-k least-loaded node digests, enough for a
// remote master to (a) rank shards as spill targets and (b) hand a
// handful of concrete candidate nodes to the routing stage. The v1
// encoding is a fixed-prefix single line in the l1 idiom (strconv only,
// no maps, no reflection):
//
//	s1 <shard> <at_ns> <nodes> <cpu_idle> <disk_avail> <cpu_q> <disk_q> <idle> <k>
//	   {<node> <cpu_idle> <disk_avail> <cpu_q> <disk_q> <speed>}*k \n
//
// (one line; the digest groups repeat space-separated). <at_ns> is the
// owner's sample timestamp so receivers can age summaries without
// trusting clock skew on the transport. Aggregate idle/avail are means
// over the shard; queues are totals; <idle> counts nodes with both
// queues empty.

// The v2 encoding (prefix "s2") carries the sender's shard-map epoch as
// an extra field between <shard> and <at_ns>, so gossip transports map
// versions and receivers can converge newest-wins across membership
// changes:
//
//	s2 <shard> <epoch> <at_ns> ... (rest identical to s1)
//
// Encoders emit s1 while the epoch is 0 (a static run never rebalances,
// keeping its wire bytes identical to pre-epoch builds) and s2 once the
// map has moved; decoders accept both.

// ShardWireContentType is the MIME type of the compact summary encoding.
const ShardWireContentType = "text/x-msweb-shard"

// shardWirePrefix introduces (and versions) a compact summary line.
const shardWirePrefix = "s1 "

// shardWirePrefixV2 introduces an epoch-carrying summary line.
const shardWirePrefixV2 = "s2 "

// MaxShardDigests caps the digest count a summary may carry (and a
// parser will accept) so a hostile or corrupt line cannot force an
// unbounded allocation.
const MaxShardDigests = 64

// ShardDigest is one candidate node inside a shard summary.
type ShardDigest struct {
	Node int
	Load Load
}

// ShardSummary is the compact cross-shard load view one master
// publishes about its own shard.
type ShardSummary struct {
	Shard     int
	Epoch     uint64 // sender's shard-map epoch (0 on s1 lines)
	AtNs      int64  // owner's sample time, UnixNano
	Nodes     int    // shard population behind the aggregates
	CPUIdle   float64
	DiskAvail float64
	CPUQueue  int
	DiskQueue int
	Idle      int // nodes with both queues empty
	Top       []ShardDigest
}

// SummaryWins reports whether a summary stamped (newEpoch, newAt)
// replaces one stamped (oldEpoch, oldAt) under the newest-wins order
// gossip converges by: map epochs dominate, the owner's sample
// timestamp breaks ties within an epoch (equal stamps replace, so a
// re-delivered copy of the same generation is harmless).
func SummaryWins(newEpoch uint64, newAt int64, oldEpoch uint64, oldAt int64) bool {
	if newEpoch != oldEpoch {
		return newEpoch > oldEpoch
	}
	return newAt >= oldAt
}

// RSRCCost reports the aggregate RSRC of the shard at the given CPU
// share — the scalar remote masters rank spill targets by.
func (s *ShardSummary) RSRCCost(w float64) float64 {
	return RSRC(w, s.CPUIdle, s.DiskAvail)
}

// BuildShardSummary computes the summary of one shard into dst, reusing
// dst.Top. ids are the shard's node IDs (indices into loads, which is
// the cluster-sized load array); k caps the digest count. Digests are
// the k least-loaded nodes by RSRC at DefaultW, ascending.
func BuildShardSummary(dst *ShardSummary, shard int, atNs int64, ids []int, loads []Load, k int) {
	dst.Shard = shard
	dst.AtNs = atNs
	dst.Nodes = len(ids)
	dst.CPUIdle, dst.DiskAvail = 0, 0
	dst.CPUQueue, dst.DiskQueue, dst.Idle = 0, 0, 0
	if k > MaxShardDigests {
		k = MaxShardDigests
	}
	dst.Top = dst.Top[:0]
	for _, id := range ids {
		if id < 0 || id >= len(loads) {
			continue
		}
		l := loads[id]
		dst.CPUIdle += l.CPUIdle
		dst.DiskAvail += l.DiskAvail
		dst.CPUQueue += l.CPUQueue
		dst.DiskQueue += l.DiskQueue
		if l.CPUQueue == 0 && l.DiskQueue == 0 {
			dst.Idle++
		}
		if k <= 0 {
			continue
		}
		// Insertion into the ascending top-k slice: fleets keep k small
		// (≤ MaxShardDigests), so the quadratic worst case is bounded.
		cost := nodeRSRC(DefaultW, l)
		pos := len(dst.Top)
		for pos > 0 && cost < nodeRSRC(DefaultW, dst.Top[pos-1].Load) {
			pos--
		}
		if pos >= k {
			continue
		}
		if len(dst.Top) < k {
			dst.Top = append(dst.Top, ShardDigest{})
		}
		copy(dst.Top[pos+1:], dst.Top[pos:])
		dst.Top[pos] = ShardDigest{Node: id, Load: l}
	}
	if n := float64(len(ids)); n > 0 {
		dst.CPUIdle /= n
		dst.DiskAvail /= n
	}
}

// AppendWire appends the compact encoding of s to b and returns the
// extended slice: v1 while Epoch is 0 (bytes identical to pre-epoch
// builds), v2 with the epoch field once the map has moved. It never
// allocates when b has capacity.
func (s *ShardSummary) AppendWire(b []byte) []byte {
	if s.Epoch == 0 {
		b = append(b, shardWirePrefix...)
	} else {
		b = append(b, shardWirePrefixV2...)
	}
	b = strconv.AppendInt(b, int64(s.Shard), 10)
	b = append(b, ' ')
	if s.Epoch != 0 {
		b = strconv.AppendUint(b, s.Epoch, 10)
		b = append(b, ' ')
	}
	b = strconv.AppendInt(b, s.AtNs, 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(s.Nodes), 10)
	b = append(b, ' ')
	b = strconv.AppendFloat(b, s.CPUIdle, 'g', -1, 64)
	b = append(b, ' ')
	b = strconv.AppendFloat(b, s.DiskAvail, 'g', -1, 64)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(s.CPUQueue), 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(s.DiskQueue), 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(s.Idle), 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(len(s.Top)), 10)
	for _, d := range s.Top {
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(d.Node), 10)
		b = append(b, ' ')
		b = strconv.AppendFloat(b, d.Load.CPUIdle, 'g', -1, 64)
		b = append(b, ' ')
		b = strconv.AppendFloat(b, d.Load.DiskAvail, 'g', -1, 64)
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(d.Load.CPUQueue), 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(d.Load.DiskQueue), 10)
		b = append(b, ' ')
		b = strconv.AppendFloat(b, d.Load.Speed, 'g', -1, 64)
	}
	b = append(b, '\n')
	return b
}

// IsShardWire reports whether b starts a compact summary line (either
// version).
func IsShardWire(b []byte) bool {
	if len(b) < len(shardWirePrefix) {
		return false
	}
	p := string(b[:len(shardWirePrefix)])
	return p == shardWirePrefix || p == shardWirePrefixV2
}

// shardFields walks the space-delimited fields of a summary line.
type shardFields struct {
	rest []byte
	n    int
}

func (f *shardFields) next() ([]byte, error) {
	j := 0
	for j < len(f.rest) && f.rest[j] != ' ' {
		j++
	}
	field := f.rest[:j]
	if len(field) == 0 {
		return nil, fmt.Errorf("core: shard wire: missing field %d", f.n)
	}
	if j < len(f.rest) {
		j++
	}
	f.rest = f.rest[j:]
	f.n++
	return field, nil
}

func (f *shardFields) int() (int, error) {
	field, err := f.next()
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(string(field))
	if err != nil {
		return 0, fmt.Errorf("core: shard wire: field %d: %v", f.n-1, err)
	}
	return v, nil
}

func (f *shardFields) int64() (int64, error) {
	field, err := f.next()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(string(field), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("core: shard wire: field %d: %v", f.n-1, err)
	}
	return v, nil
}

func (f *shardFields) uint64() (uint64, error) {
	field, err := f.next()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseUint(string(field), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("core: shard wire: field %d: %v", f.n-1, err)
	}
	return v, nil
}

func (f *shardFields) float() (float64, error) {
	field, err := f.next()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(string(field), 64)
	if err != nil {
		return 0, fmt.Errorf("core: shard wire: field %d: %v", f.n-1, err)
	}
	return v, nil
}

// ParseShardSummary decodes a compact summary line (v1 or v2, with or
// without the trailing newline) into dst, reusing dst.Top. dst is
// untouched on error paths before the header parses; on a digest error
// it may hold a partially filled Top — callers treat any error as
// "discard". v1 lines decode with Epoch 0.
func ParseShardSummary(b []byte, dst *ShardSummary) error {
	if !IsShardWire(b) {
		return fmt.Errorf("core: shard wire: missing %q or %q prefix", shardWirePrefix, shardWirePrefixV2)
	}
	v2 := b[1] == '2'
	rest := b[len(shardWirePrefix):]
	if n := len(rest); n > 0 && rest[n-1] == '\n' {
		rest = rest[:n-1]
	}
	f := shardFields{rest: rest}
	var err error
	if dst.Shard, err = f.int(); err != nil {
		return err
	}
	dst.Epoch = 0
	if v2 {
		if dst.Epoch, err = f.uint64(); err != nil {
			return err
		}
		if dst.Epoch == 0 {
			return fmt.Errorf("core: shard wire: v2 line with zero epoch")
		}
	}
	if dst.AtNs, err = f.int64(); err != nil {
		return err
	}
	if dst.Nodes, err = f.int(); err != nil {
		return err
	}
	if dst.CPUIdle, err = f.float(); err != nil {
		return err
	}
	if dst.DiskAvail, err = f.float(); err != nil {
		return err
	}
	if dst.CPUQueue, err = f.int(); err != nil {
		return err
	}
	if dst.DiskQueue, err = f.int(); err != nil {
		return err
	}
	if dst.Idle, err = f.int(); err != nil {
		return err
	}
	k, err := f.int()
	if err != nil {
		return err
	}
	if k < 0 || k > MaxShardDigests {
		return fmt.Errorf("core: shard wire: digest count %d out of range [0,%d]", k, MaxShardDigests)
	}
	dst.Top = dst.Top[:0]
	for i := 0; i < k; i++ {
		var d ShardDigest
		if d.Node, err = f.int(); err != nil {
			return err
		}
		if d.Load.CPUIdle, err = f.float(); err != nil {
			return err
		}
		if d.Load.DiskAvail, err = f.float(); err != nil {
			return err
		}
		if d.Load.CPUQueue, err = f.int(); err != nil {
			return err
		}
		if d.Load.DiskQueue, err = f.int(); err != nil {
			return err
		}
		if d.Load.Speed, err = f.float(); err != nil {
			return err
		}
		dst.Top = append(dst.Top, d)
	}
	if len(f.rest) != 0 {
		return fmt.Errorf("core: shard wire: trailing garbage %q", f.rest)
	}
	return nil
}
