package core

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"msweb/internal/trace"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func testView(masters, slaves []int) *View {
	p := len(masters) + len(slaves)
	v := &View{Masters: masters, Slaves: slaves, Load: make([]Load, p)}
	for i := range v.Load {
		v.Load[i] = Load{CPUIdle: 1, DiskAvail: 1, Speed: 1}
	}
	return v
}

func TestRSRCBasic(t *testing.T) {
	// Idle node: cost = w + (1-w) = 1.
	if got := RSRC(0.7, 1, 1); !approx(got, 1, 1e-12) {
		t.Fatalf("idle RSRC = %v, want 1", got)
	}
	// CPU-bound request cares about CPU idle.
	busy := RSRC(0.9, 0.1, 1)
	idle := RSRC(0.9, 1, 1)
	if busy <= idle {
		t.Fatalf("busy CPU not penalized: %v <= %v", busy, idle)
	}
	// I/O-bound request cares about disk.
	if RSRC(0.1, 1, 0.1) <= RSRC(0.1, 1, 1) {
		t.Fatal("busy disk not penalized for I/O-bound request")
	}
}

func TestRSRCFloorsAndClamps(t *testing.T) {
	if got := RSRC(0.5, 0, 0); math.IsInf(got, 1) || math.IsNaN(got) {
		t.Fatalf("zero idle ratios produced %v", got)
	}
	if got, want := RSRC(0.5, -1, -1), RSRC(0.5, MinIdleFloor, MinIdleFloor); got != want {
		t.Fatalf("negative ratios not floored: %v vs %v", got, want)
	}
	if got, want := RSRC(2, 1, 1), RSRC(1, 1, 1); got != want {
		t.Fatalf("w>1 not clamped: %v vs %v", got, want)
	}
	if got, want := RSRC(-2, 1, 1), RSRC(0, 1, 1); got != want {
		t.Fatalf("w<0 not clamped: %v vs %v", got, want)
	}
}

// Property: RSRC is monotone non-increasing in both idle ratios.
func TestRSRCMonotoneProperty(t *testing.T) {
	f := func(wRaw, aRaw, bRaw uint8) bool {
		w := float64(wRaw%101) / 100
		lo := float64(aRaw%100) / 100
		hi := lo + float64(bRaw%50)/100
		if hi > 1 {
			hi = 1
		}
		return RSRC(w, hi, 0.5) <= RSRC(w, lo, 0.5)+1e-9 &&
			RSRC(w, 0.5, hi) <= RSRC(w, 0.5, lo)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWTable(t *testing.T) {
	tbl := WTable{3: 0.9}
	if got := tbl.W(3); got != 0.9 {
		t.Fatalf("W(3) = %v", got)
	}
	if got := tbl.W(4); got != DefaultW {
		t.Fatalf("W(missing) = %v, want default", got)
	}
	var nilTbl WTable
	if got := nilTbl.W(1); got != DefaultW {
		t.Fatalf("nil table W = %v", got)
	}
}

func TestSampleW(t *testing.T) {
	tr := &trace.Trace{Requests: []trace.Request{
		{Class: trace.Dynamic, Script: 1, CPUWeight: 0.8},
		{Class: trace.Dynamic, Script: 1, CPUWeight: 0.9},
		{Class: trace.Dynamic, Script: 2, CPUWeight: 0.1},
		{Class: trace.Static, Script: 0, CPUWeight: 0.3}, // ignored
	}}
	tbl := SampleW(tr, 16)
	if got := tbl.W(1); !approx(got, 0.85, 1e-12) {
		t.Fatalf("sampled w(1) = %v, want 0.85", got)
	}
	if got := tbl.W(2); !approx(got, 0.1, 1e-12) {
		t.Fatalf("sampled w(2) = %v, want 0.1", got)
	}
	if _, ok := tbl[0]; ok {
		t.Fatal("static requests leaked into the w table")
	}
}

func TestSampleWLimitsPerScript(t *testing.T) {
	var reqs []trace.Request
	// First 4 instances have w=0.2, later ones 0.9: only the off-line
	// prefix must be sampled.
	for i := 0; i < 4; i++ {
		reqs = append(reqs, trace.Request{Class: trace.Dynamic, Script: 1, CPUWeight: 0.2})
	}
	for i := 0; i < 100; i++ {
		reqs = append(reqs, trace.Request{Class: trace.Dynamic, Script: 1, CPUWeight: 0.9})
	}
	tbl := SampleW(&trace.Trace{Requests: reqs}, 4)
	if got := tbl.W(1); !approx(got, 0.2, 1e-12) {
		t.Fatalf("sampled w = %v, want prefix mean 0.2", got)
	}
}

func TestMSStaticStaysAtMaster(t *testing.T) {
	v := testView([]int{0, 1}, []int{2, 3})
	ms := NewMS(nil, 1)
	for master := 0; master < 2; master++ {
		if got := ms.Place(Request{Class: trace.Static}, master, v); got != master {
			t.Fatalf("static placed at %d, want receiving master %d", got, master)
		}
	}
}

func TestMSDynamicPrefersIdleSlave(t *testing.T) {
	v := testView([]int{0}, []int{1, 2})
	v.Load[1] = Load{CPUIdle: 0.05, DiskAvail: 0.9, Speed: 1} // busy CPU
	v.Load[2] = Load{CPUIdle: 0.95, DiskAvail: 0.9, Speed: 1} // idle
	// Booking disabled: this test checks the pure RSRC preference, not
	// the between-refresh spreading.
	ms := NewPipeline(PipelineConfig{
		Name: "M/S", Seed: 1, WTable: WTable{7: 0.95},
		PlacementImpact: NoPlacementImpact,
	})
	ms.Tick(0, v)
	counts := map[int]int{}
	for i := 0; i < 50; i++ {
		counts[ms.Place(Request{Class: trace.Dynamic, Script: 7}, 0, v)]++
	}
	if counts[1] > 0 {
		t.Fatalf("CPU-bound dynamics sent to busy-CPU slave %d times", counts[1])
	}
}

func TestMSSamplingMatters(t *testing.T) {
	// Node 1: busy CPU, free disk. Node 2: free CPU, busy disk.
	// An I/O-bound script (w=0.1) must prefer node 1 with sampling and
	// may not distinguish correctly without it.
	v := testView([]int{0}, []int{1, 2})
	v.Load[1] = Load{CPUIdle: 0.1, DiskAvail: 0.9, Speed: 1}
	v.Load[2] = Load{CPUIdle: 0.9, DiskAvail: 0.1, Speed: 1}
	tbl := WTable{5: 0.1}

	ms := NewMS(tbl, 1)
	if got := ms.Place(Request{Class: trace.Dynamic, Script: 5}, 0, v); got != 1 {
		t.Fatalf("with sampling: placed at %d, want 1 (free disk)", got)
	}

	// Without sampling w=0.5 and both nodes cost the same; the choice
	// is random — verify both targets occur.
	msns := NewMS(tbl, 1, WithoutSampling(), WithName("M/S-ns"))
	counts := map[int]int{}
	for i := 0; i < 100; i++ {
		counts[msns.Place(Request{Class: trace.Dynamic, Script: 5}, 0, v)]++
	}
	if counts[1] == 0 || counts[2] == 0 {
		t.Fatalf("without sampling expected tie-broken spread, got %v", counts)
	}
	if msns.Name() != "M/S-ns" {
		t.Fatalf("name = %q", msns.Name())
	}
}

func TestMSReservationCapsMasterAdmission(t *testing.T) {
	v := testView([]int{0}, []int{1, 2, 3})
	// Master massively idle, slaves busy: without reservation everything
	// would pile onto the master.
	v.Load[0] = Load{CPUIdle: 1, DiskAvail: 1, Speed: 1}
	for _, id := range v.Slaves {
		v.Load[id] = Load{CPUIdle: 0.2, DiskAvail: 0.2, Speed: 1}
	}
	ms := NewMS(nil, 1)
	ms.Tick(0, v) // initializes θ to m/p = 0.25
	toMaster := 0
	const n = 400
	for i := 0; i < n; i++ {
		if got := ms.Place(Request{Class: trace.Dynamic, Script: 1}, 0, v); got == 0 {
			toMaster++
		}
	}
	frac := float64(toMaster) / n
	if frac > 0.30 {
		t.Fatalf("reservation failed: %.0f%% of dynamics at master, cap ~25%%", frac*100)
	}
	if toMaster == 0 {
		t.Fatal("reservation admitted nothing at an idle master")
	}

	// Without reservation (and without the in-view booking charge, which
	// would make the master look progressively busier between refreshes)
	// the idle master absorbs everything. Rebuild the view: the M/S run
	// above booked its placements into the shared one.
	v = testView([]int{0}, []int{1, 2, 3})
	for _, id := range v.Slaves {
		v.Load[id] = Load{CPUIdle: 0.2, DiskAvail: 0.2, Speed: 1}
	}
	msnr := NewPipeline(PipelineConfig{
		Name:      "M/S-nr",
		Admission: NewTheta2Admission(DefaultReservationConfig()).ObserveOnly(),
		Seed:      1, PlacementImpact: NoPlacementImpact,
	})
	msnr.Tick(0, v)
	toMaster = 0
	for i := 0; i < n; i++ {
		if got := msnr.Place(Request{Class: trace.Dynamic, Script: 1}, 0, v); got == 0 {
			toMaster++
		}
	}
	if toMaster != n {
		t.Fatalf("M/S-nr sent only %d/%d dynamics to the idle master", toMaster, n)
	}
}

func TestMSWithNoSlavesActsAsMS1(t *testing.T) {
	v := testView([]int{0, 1, 2}, nil)
	v.Load[2] = Load{CPUIdle: 1, DiskAvail: 1, Speed: 1}
	v.Load[0] = Load{CPUIdle: 0.1, DiskAvail: 0.1, Speed: 1}
	v.Load[1] = Load{CPUIdle: 0.1, DiskAvail: 0.1, Speed: 1}
	ms := NewMS(nil, 1, WithName("M/S-1"))
	ms.Tick(0, v)
	if got := ms.Place(Request{Class: trace.Dynamic, Script: 1}, 0, v); got != 2 {
		t.Fatalf("M/S-1 placed at %d, want idle node 2", got)
	}
}

func TestMSHeterogeneousSpeedPreference(t *testing.T) {
	v := testView([]int{0}, []int{1, 2})
	v.Load[1] = Load{CPUIdle: 0.5, DiskAvail: 0.5, Speed: 1}
	v.Load[2] = Load{CPUIdle: 0.5, DiskAvail: 0.5, Speed: 4} // 4x CPU
	ms := NewMS(WTable{9: 0.95}, 1)
	ms.Tick(0, v)
	if got := ms.Place(Request{Class: trace.Dynamic, Script: 9}, 0, v); got != 2 {
		t.Fatalf("CPU-bound dynamic placed at %d, want fast node 2", got)
	}
}

func TestFlatPolicy(t *testing.T) {
	v := testView([]int{0, 1, 2, 3}, nil)
	f := NewFlat()
	if f.Name() != "Flat" {
		t.Fatalf("name = %q", f.Name())
	}
	for master := 0; master < 4; master++ {
		for _, class := range []trace.Class{trace.Static, trace.Dynamic} {
			if got := f.Place(Request{Class: class}, master, v); got != master {
				t.Fatalf("flat placed at %d, want %d", got, master)
			}
		}
	}
	f.ObserveCompletion(trace.Static, 1, 1)
	f.Tick(0, v)
}

func TestMSPrimePolicy(t *testing.T) {
	v := testView([]int{0, 1}, []int{2, 3})
	p := NewMSPrime(3)
	if got := p.Place(Request{Class: trace.Static}, 1, v); got != 1 {
		t.Fatalf("M/S' static at %d, want 1", got)
	}
	counts := map[int]int{}
	for i := 0; i < 200; i++ {
		counts[p.Place(Request{Class: trace.Dynamic}, 0, v)]++
	}
	if counts[0] > 0 || counts[1] > 0 {
		t.Fatalf("M/S' sent dynamics to masters: %v", counts)
	}
	if counts[2] == 0 || counts[3] == 0 {
		t.Fatalf("M/S' did not spread dynamics over slaves: %v", counts)
	}
	// Degenerate: no slaves → stay at master.
	v2 := testView([]int{0}, nil)
	if got := p.Place(Request{Class: trace.Dynamic}, 0, v2); got != 0 {
		t.Fatalf("M/S' without slaves placed at %d", got)
	}
}

func TestRoundRobinPolicy(t *testing.T) {
	v := testView([]int{0}, []int{1, 2, 3})
	rr := NewRoundRobin()
	seen := map[int]int{}
	for i := 0; i < 9; i++ {
		seen[rr.Place(Request{Class: trace.Dynamic}, 0, v)]++
	}
	for _, id := range v.Slaves {
		if seen[id] != 3 {
			t.Fatalf("round robin uneven: %v", seen)
		}
	}
	if got := rr.Place(Request{Class: trace.Static}, 0, v); got != 0 {
		t.Fatalf("round robin moved a static to %d", got)
	}
}

func TestLeastLoadedPolicy(t *testing.T) {
	v := testView([]int{0}, []int{1, 2})
	v.Load[1].CPUQueue = 5
	v.Load[2].CPUQueue = 1
	ll := NewLeastLoaded(1)
	if got := ll.Place(Request{Class: trace.Dynamic}, 0, v); got != 2 {
		t.Fatalf("least-loaded placed at %d, want 2", got)
	}
	if got := ll.Place(Request{Class: trace.Static}, 0, v); got != 0 {
		t.Fatalf("least-loaded moved a static to %d", got)
	}
}

// Property: every policy always returns a valid node id.
func TestPoliciesReturnValidNodesProperty(t *testing.T) {
	policies := []Policy{
		NewMS(nil, 1), NewMS(nil, 2, WithoutReservation()),
		NewMS(nil, 3, WithoutSampling()), NewFlat(), NewMSPrime(4),
		NewRoundRobin(), NewLeastLoaded(5),
	}
	f := func(masterRaw uint8, dyn bool, idleRaw []uint8) bool {
		v := testView([]int{0, 1}, []int{2, 3, 4})
		for i := range v.Load {
			if i < len(idleRaw) {
				v.Load[i].CPUIdle = float64(idleRaw[i]%101) / 100
				v.Load[i].DiskAvail = float64(idleRaw[i]%97) / 96
			}
		}
		master := int(masterRaw) % 2
		class := trace.Static
		if dyn {
			class = trace.Dynamic
		}
		for _, p := range policies {
			p.Tick(0, v)
			got := p.Place(Request{Class: class, Script: 1}, master, v)
			if got < 0 || got >= v.P() {
				return false
			}
			if class == trace.Static && got != master {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMSPlacementExplanation(t *testing.T) {
	v := testView([]int{0}, []int{1, 2})
	v.Load[1] = Load{CPUIdle: 0.05, DiskAvail: 0.9, Speed: 1}
	v.Load[2] = Load{CPUIdle: 0.95, DiskAvail: 0.9, Speed: 1}
	ms := NewPipeline(PipelineConfig{
		Name: "M/S", Seed: 1, WTable: WTable{7: 0.95},
		PlacementImpact: NoPlacementImpact,
	})
	ms.Tick(0, v)

	var exp PlacementExplainer = ms // compile-time interface check
	node := ms.Place(Request{Class: trace.Dynamic, Script: 7}, 0, v)
	pl := exp.LastPlacement()
	if pl.Node != node {
		t.Fatalf("explained node %d, placed %d", pl.Node, node)
	}
	if pl.W != 0.95 {
		t.Fatalf("explained w %v, want 0.95", pl.W)
	}
	wantCost := RSRC(0.95, v.Load[node].CPUIdle, v.Load[node].DiskAvail)
	if !approx(pl.RSRC, wantCost, 1e-9) {
		t.Fatalf("explained cost %v, want %v", pl.RSRC, wantCost)
	}

	// Static path: the explanation is the receiving master, cost 0.
	if got := ms.Place(Request{Class: trace.Static}, 0, v); got != 0 {
		t.Fatalf("static placed at %d", got)
	}
	if pl := ms.LastPlacement(); pl.Node != 0 || pl.RSRC != 0 || pl.MasterAdmitted {
		t.Fatalf("static placement explanation = %+v", pl)
	}
}

func TestMSAdaptiveStats(t *testing.T) {
	v := testView([]int{0}, []int{1})
	ms := NewMS(nil, 1)
	var st AdaptiveStats = ms // compile-time interface check
	ms.Tick(0, v)
	theta := st.ThetaLimit()
	if theta <= 0 || theta > 1 {
		t.Fatalf("theta %v outside (0,1]", theta)
	}
	if a := st.ArrivalRatio(); a <= 0 {
		t.Fatalf("arrival ratio %v, want positive fallback", a)
	}
	if r := st.ServiceRatio(); r <= 0 {
		t.Fatalf("service ratio %v, want positive fallback", r)
	}
}

func TestLoadJSONRoundTrip(t *testing.T) {
	in := Load{CPUIdle: 0.25, DiskAvail: 0.75, CPUQueue: 3, DiskQueue: 1, Speed: 2}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"cpu_idle":0.25`, `"disk_avail":0.75`, `"cpu_queue":3`, `"disk_queue":1`, `"speed":2`} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("marshaled load %s missing %s", b, key)
		}
	}
	var out Load
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip %+v != %+v", out, in)
	}
}
