package core

import "msweb/internal/trace"

// This file defines the three-stage placement pipeline that replaced the
// monolithic M/S scheduler:
//
//	admission → routing → (per-node) scheduling
//
// AdmissionPolicy decides whether an arriving dynamic request may be
// absorbed at the master tier — or must be shed outright in the degraded
// regime — absorbing the θ₂ reservation and the ShedRSRC rule that used
// to be hard-wired into MS.Place and the live shedder. RoutingPolicy
// picks the executing node among the admission-eligible candidates
// (min-RSRC by default; see routing.go for the competitor set and
// scorers.go for weighted-scorer composition). The scheduling stage is a
// named per-node queueing discipline (Discipline) that the execution
// planes — simos in simulation, Resource on live nodes — enact; the
// pipeline carries the name so one policy spec configures both planes.
//
// Pipeline implements Policy, so both internal/cluster (sim) and
// internal/httpcluster (live) consume a pipeline exactly as they
// consumed MS: a policy written once runs on both planes. The default
// pipeline (NewMS) reproduces the paper's RSRC+θ₂ scheduler
// byte-identically — same operation order, same single tie-break RNG
// draw per dynamic placement — so the golden experiment outputs are
// unchanged, and Place stays allocation-free.

// AdmissionPolicy is the first pipeline stage: it owns arrival/response
// accounting and decides, per dynamic request, whether the master tier
// is an eligible placement target. Implementations are consulted under
// the caller's placement lock and must not retain the View.
type AdmissionPolicy interface {
	// Name identifies the stage in registries and metric labels.
	Name() string
	// ObserveArrival counts an arriving request of either class (feeds
	// the a = λ_c/λ_h estimator of adaptive implementations).
	ObserveArrival(class trace.Class)
	// AdmitAtMaster reports whether the next dynamic request may run at
	// a master. It must be side-effect free: callers that do place at a
	// master report it via CountPlacement.
	AdmitAtMaster() bool
	// CountPlacement records one completed dynamic placement decision;
	// atMaster reports whether the chosen node is a master.
	CountPlacement(atMaster bool)
	// ObserveCompletion reports a finished request: its class, measured
	// server-site response time and intrinsic demand.
	ObserveCompletion(class trace.Class, response, demand float64)
	// Tick runs periodic adaptation for a cluster with m masters out of
	// p nodes (θ₂ recomputation in the reservation implementation).
	Tick(m, p int)
}

// RoutingPolicy is the second pipeline stage: given the request's CPU
// share w and the admission-eligible candidate set (never empty), pick
// the executing node. The returned cost is the value the choice was made
// at (RSRC for cost-based policies, 0 when the policy has no cost
// notion) and feeds placement traces.
//
// Implementations may keep per-instance scratch and RNG state; they are
// called under the caller's placement lock, never concurrently.
type RoutingPolicy interface {
	Name() string
	Route(req Request, w float64, candidates []int, v *View) (node int, cost float64)
}

// Discipline names the per-node queue-ordering policy of the third
// pipeline stage. The pipeline only carries the name; the execution
// planes enact it — simos.Config.WithDiscipline in simulation, the
// Resource quantum configuration on live nodes.
const (
	// DisciplineMLFQ is the default multi-level feedback queue (BSD-style
	// decay-usage priorities in simos; round-robin time sharing live).
	DisciplineMLFQ = "mlfq"
	// DisciplineRR is single-level round-robin: quantum time sharing
	// without priority aging.
	DisciplineRR = "rr"
	// DisciplineFCFS runs every job to completion in arrival order.
	DisciplineFCFS = "fcfs"
)

// Disciplines lists the registered per-node scheduling disciplines.
func Disciplines() []string { return []string{DisciplineMLFQ, DisciplineRR, DisciplineFCFS} }

// AffinityMode selects how a pipeline applies View.Affinity constraints.
type AffinityMode int

const (
	// AffinityHard filters the candidate set to a pinned script's
	// replica nodes, overriding the admission stage when the data
	// constraint leaves no other choice (the historical MS behavior).
	AffinityHard AffinityMode = iota
	// AffinityOff ignores View.Affinity entirely. Soft preferences are
	// expressed through the "affinity" scorer instead (scorers.go).
	AffinityOff
)

// PipelineConfig assembles a Pipeline. The zero value of every field
// selects the default-M/S behavior for that aspect.
type PipelineConfig struct {
	// Name is the reported policy name; defaults to "<admission>+<routing>".
	Name string
	// Admission is the first stage; nil selects the θ₂ reservation with
	// the paper's defaults.
	Admission AdmissionPolicy
	// Routing is the second stage; nil selects min-RSRC routing seeded
	// with Seed.
	Routing RoutingPolicy
	// Scheduling names the per-node discipline ("mlfq" when empty). The
	// pipeline does not interpret it; planes read it via Scheduling().
	Scheduling string
	// Seed seeds the default routing stage when Routing is nil.
	Seed int64
	// WTable is the off-line sampling result consulted for dynamic
	// requests' CPU shares; nil means every script uses DefaultW.
	WTable WTable
	// DisableSampling ignores WTable (the M/S-ns ablation: w ≡ 0.5).
	DisableSampling bool
	// PlacementImpact is the in-view booking charge applied to a node
	// per placement (see DefaultPlacementImpact). 0 selects the default;
	// NoPlacementImpact (any negative value) disables booking.
	PlacementImpact float64
	// ShedRSRC is the master-absorption RSRC ceiling consulted by
	// DeniesMasterAbsorption in the degraded no-routable-slave regime;
	// 0 disables the RSRC rule (the admission cap still applies).
	ShedRSRC float64
	// Affinity selects hard candidate filtering (default) or none.
	Affinity AffinityMode
}

// NoPlacementImpact disables the in-view booking charge when assigned to
// PipelineConfig.PlacementImpact (which treats 0 as "use the default").
const NoPlacementImpact = -1

// Pipeline is an admission → routing → scheduling placement policy. It
// implements Policy, PlacementExplainer, MasterAdmission and
// AdaptiveStats, so both execution planes consume it exactly as they
// consumed the monolithic scheduler.
type Pipeline struct {
	name     string
	adm      AdmissionPolicy
	route    RoutingPolicy
	sched    string
	wtable   WTable
	sampling bool
	impact   float64
	shedCost float64
	affinity AffinityMode
	// last is the most recent Place decision, recorded unconditionally
	// (plain field stores) so the tracing layer can annotate dispatches
	// without the policy knowing whether anyone is listening.
	last Placement
	// candScratch is reused across Place calls so the per-request
	// candidate union allocates nothing. It does not survive a call.
	candScratch []int
}

// NewPipeline assembles a pipeline from the config (see PipelineConfig
// for the defaults each zero field selects).
func NewPipeline(cfg PipelineConfig) *Pipeline {
	if cfg.Admission == nil {
		cfg.Admission = NewTheta2Admission(DefaultReservationConfig())
	}
	if cfg.Routing == nil {
		cfg.Routing = NewRSRCRouting(cfg.Seed)
	}
	if cfg.Scheduling == "" {
		cfg.Scheduling = DisciplineMLFQ
	}
	if cfg.Name == "" {
		cfg.Name = cfg.Admission.Name() + "+" + cfg.Routing.Name()
	}
	impact := cfg.PlacementImpact
	switch {
	case impact == 0:
		impact = DefaultPlacementImpact
	case impact < 0:
		impact = 0
	}
	return &Pipeline{
		name:     cfg.Name,
		adm:      cfg.Admission,
		route:    cfg.Routing,
		sched:    cfg.Scheduling,
		wtable:   cfg.WTable,
		sampling: !cfg.DisableSampling,
		impact:   impact,
		shedCost: cfg.ShedRSRC,
		affinity: cfg.Affinity,
	}
}

// Name implements Policy.
func (p *Pipeline) Name() string { return p.name }

// AdmissionName reports the first stage's registry name (metric labels).
func (p *Pipeline) AdmissionName() string { return p.adm.Name() }

// RoutingName reports the second stage's registry name (metric labels).
func (p *Pipeline) RoutingName() string { return p.route.Name() }

// Scheduling reports the per-node discipline the planes should enact.
func (p *Pipeline) Scheduling() string { return p.sched }

// Place implements Policy: statics stay at the receiving master;
// dynamics go to the routing stage's choice among the slaves plus —
// while the admission stage allows it — the masters.
func (p *Pipeline) Place(req Request, master int, v *View) int {
	p.adm.ObserveArrival(req.Class)
	if req.Class == trace.Static {
		p.last = Placement{Node: master}
		return master
	}
	w := DefaultW
	if p.sampling {
		w = p.wtable.W(req.Script)
	}
	candidates := v.Slaves
	mastersEligible := p.adm.AdmitAtMaster()
	if len(candidates) == 0 {
		// No slave tier (M/S-1): masters are the only choice.
		mastersEligible = true
	}
	if mastersEligible {
		// Slaves-then-masters union in the reused scratch, preserving
		// the order the tie-break RNG consumption depends on.
		p.candScratch = append(append(p.candScratch[:0], candidates...), v.Masters...)
		candidates = p.candScratch
	}
	if p.affinity == AffinityHard {
		if allowed := v.Affinity.Allowed(req.Script); allowed != nil {
			// Partial replication: the script's data lives on a subset of
			// nodes. Prefer allowed nodes within the admission-eligible
			// candidates; if none qualify, the data constraint overrides
			// the admission stage (the script cannot run elsewhere).
			if c := intersect(candidates, allowed); len(c) > 0 {
				candidates = c
			} else if c := intersect(append(append([]int(nil), v.Slaves...), v.Masters...), allowed); len(c) > 0 {
				candidates = c
			}
			// An allowed set with no live node degrades to the
			// unconstrained candidates so the request still completes.
		}
	}
	target, cost := p.route.Route(req, w, candidates, v)
	p.last = Placement{Node: target, RSRC: cost, W: w, MasterAdmitted: mastersEligible}
	p.adm.CountPlacement(isIn(target, v.Masters))
	if p.impact > 0 {
		// Book the placement into the cached view so the next dynamic
		// in the same refresh window sees this node as busier.
		l := &v.Load[target]
		l.CPUIdle = maxf(0, l.CPUIdle-p.impact*w)
		l.DiskAvail = maxf(0, l.DiskAvail-p.impact*(1-w))
	}
	return target
}

// PlaceRemote runs only the routing stage over v.Slaves and returns the
// chosen node and routing cost, or (-1, 0) when the view offers no
// candidate. It is the spill path of a sharded master: admission
// already ruled (the local AbsorptionGate shed), the candidates are
// remote digests the caller synthesized from peer summaries, and
// booking against a view rebuilt per call would be meaningless — so no
// arrival/placement counting and no booking happen here. Routing-stage
// RNG draws are consumed, which is safe for the goldens because
// unsharded runs never spill.
func (p *Pipeline) PlaceRemote(req Request, v *View) (int, float64) {
	if len(v.Slaves) == 0 {
		return -1, 0
	}
	w := DefaultW
	if p.sampling {
		w = p.wtable.W(req.Script)
	}
	target, cost := p.route.Route(req, w, v.Slaves, v)
	return target, cost
}

// ObserveCompletion implements Policy.
func (p *Pipeline) ObserveCompletion(class trace.Class, response, demand float64) {
	p.adm.ObserveCompletion(class, response, demand)
}

// Tick implements Policy.
func (p *Pipeline) Tick(now float64, v *View) {
	p.adm.Tick(len(v.Masters), v.P())
}

// LastPlacement implements PlacementExplainer.
func (p *Pipeline) LastPlacement() Placement { return p.last }

// AdmitsAtMaster implements MasterAdmission: whether the admission stage
// would let the next dynamic request run at a master.
func (p *Pipeline) AdmitsAtMaster() bool { return p.adm.AdmitAtMaster() }

// SetShedRSRC installs the master-absorption RSRC ceiling after
// construction; the live plane forwards its Resilience.ShedRSRC knob
// here so the rule lives with the admission decision it belongs to.
func (p *Pipeline) SetShedRSRC(limit float64) { p.shedCost = limit }

// DeniesMasterAbsorption reports whether, in the degraded regime where
// no slave is routable, an arriving dynamic should be shed rather than
// absorbed at the local master: the configured ShedRSRC ceiling says the
// master's own resources are too busy, or the admission stage's cap is
// closed. The caller decides when the regime applies (the live plane
// checks its circuit breakers; the simulator checks node availability) —
// the verdict itself is plane-independent.
func (p *Pipeline) DeniesMasterAbsorption(local int, v *View) bool {
	if p.shedCost > 0 && local >= 0 && local < len(v.Load) {
		l := v.Load[local]
		if RSRC(DefaultW, l.CPUIdle, l.DiskAvail) >= p.shedCost {
			return true
		}
	}
	return !p.adm.AdmitAtMaster()
}

// ThetaLimit implements AdaptiveStats, delegating to the admission stage
// (1 — no cap — when the stage is not adaptive).
func (p *Pipeline) ThetaLimit() float64 {
	if s, ok := p.adm.(AdaptiveStats); ok {
		return s.ThetaLimit()
	}
	return 1
}

// ArrivalRatio implements AdaptiveStats.
func (p *Pipeline) ArrivalRatio() float64 {
	if s, ok := p.adm.(AdaptiveStats); ok {
		return s.ArrivalRatio()
	}
	return 0
}

// ServiceRatio implements AdaptiveStats.
func (p *Pipeline) ServiceRatio() float64 {
	if s, ok := p.adm.(AdaptiveStats); ok {
		return s.ServiceRatio()
	}
	return 0
}

// AbsorptionGate is implemented by policies that can rule on shedding in
// the degraded no-routable-slave regime (see DeniesMasterAbsorption).
// The live load shedder prefers it over the legacy MasterAdmission path
// because it folds the ShedRSRC rule into the same verdict.
type AbsorptionGate interface {
	DeniesMasterAbsorption(local int, v *View) bool
}
