package core

import (
	"testing"
)

func TestShardMapStatic(t *testing.T) {
	slaves := []int{2, 3, 4, 5, 6, 7, 8}
	m, err := NewShardMap(ShardStatic, 3, slaves)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShards() != 3 || m.Mode() != ShardStatic {
		t.Fatalf("shape: %d shards, mode %q", m.NumShards(), m.Mode())
	}
	// Position-modulo assignment: slaves[i] → shard i%3.
	want := map[int]int{2: 0, 3: 1, 4: 2, 5: 0, 6: 1, 7: 2, 8: 0}
	total := 0
	for id, s := range want {
		if got := m.ShardOf(id); got != s {
			t.Errorf("ShardOf(%d) = %d, want %d", id, got, s)
		}
	}
	for s := 0; s < 3; s++ {
		members := m.Members(s)
		total += len(members)
		for i := 1; i < len(members); i++ {
			if members[i-1] >= members[i] {
				t.Errorf("shard %d members not ascending: %v", s, members)
			}
		}
		for _, id := range members {
			if m.ShardOf(id) != s {
				t.Errorf("member %d of shard %d maps to %d", id, s, m.ShardOf(id))
			}
		}
	}
	if total != len(slaves) {
		t.Errorf("members cover %d slaves, want %d", total, len(slaves))
	}
	if m.ShardOf(0) != -1 || m.ShardOf(99) != -1 {
		t.Errorf("unknown nodes must map to -1")
	}
}

func TestShardMapHashDeterministicAndBalanced(t *testing.T) {
	slaves := make([]int, 1000)
	for i := range slaves {
		slaves[i] = i + 4
	}
	a, err := NewShardMap(ShardHash, 4, slaves)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewShardMap(ShardHash, 4, slaves)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for s := 0; s < 4; s++ {
		am, bm := a.Members(s), b.Members(s)
		if len(am) != len(bm) {
			t.Fatalf("shard %d: nondeterministic sizes %d vs %d", s, len(am), len(bm))
		}
		for i := range am {
			if am[i] != bm[i] {
				t.Fatalf("shard %d: nondeterministic membership at %d", s, i)
			}
		}
		total += len(am)
		// Virtual points keep shards within a loose band of even (250).
		if len(am) < 125 || len(am) > 375 {
			t.Errorf("shard %d has %d members; want within [125,375] of even 250", s, len(am))
		}
	}
	if total != len(slaves) {
		t.Errorf("shards cover %d slaves, want %d", total, len(slaves))
	}
}

func TestShardMapHashStability(t *testing.T) {
	// Consistent hashing: going 4→5 shards must move only a minority of
	// slaves, unlike modulo which reshuffles nearly everything.
	slaves := make([]int, 1000)
	for i := range slaves {
		slaves[i] = i
	}
	m4, _ := NewShardMap(ShardHash, 4, slaves)
	m5, _ := NewShardMap(ShardHash, 5, slaves)
	moved := 0
	for _, id := range slaves {
		if m4.ShardOf(id) != m5.ShardOf(id) {
			moved++
		}
	}
	// Ideal is 1/5 = 200; allow a generous band.
	if moved > 450 {
		t.Errorf("4→5 shards moved %d/1000 slaves; consistent hashing should move a minority", moved)
	}
}

func TestShardMapTrivial(t *testing.T) {
	m, err := NewShardMap("", 1, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{1, 2, 3} {
		if m.ShardOf(id) != 0 {
			t.Errorf("one-shard map: ShardOf(%d) = %d", id, m.ShardOf(id))
		}
	}
	if _, err := NewShardMap("bogus", 2, nil); err == nil {
		t.Error("bogus mode must be rejected")
	}
}

func TestBuildShardSummary(t *testing.T) {
	loads := []Load{
		0: {CPUIdle: 0.1, DiskAvail: 0.1, CPUQueue: 5, DiskQueue: 5, Speed: 1},
		1: {CPUIdle: 0.9, DiskAvail: 0.9, Speed: 1},
		2: {CPUIdle: 0.5, DiskAvail: 0.5, CPUQueue: 1, Speed: 1},
		3: {CPUIdle: 1, DiskAvail: 1, Speed: 2},
	}
	var s ShardSummary
	BuildShardSummary(&s, 7, 42, []int{0, 1, 2, 3}, loads, 2)
	if s.Shard != 7 || s.AtNs != 42 || s.Nodes != 4 {
		t.Fatalf("header: %+v", s)
	}
	if s.CPUQueue != 6 || s.DiskQueue != 5 || s.Idle != 2 {
		t.Errorf("aggregates: cpuQ=%d diskQ=%d idle=%d", s.CPUQueue, s.DiskQueue, s.Idle)
	}
	wantIdle := (0.1 + 0.9 + 0.5 + 1) / 4
	if diff := s.CPUIdle - wantIdle; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("mean CPUIdle %g, want %g", s.CPUIdle, wantIdle)
	}
	// Top-2 by RSRC ascending: node 3 (fast, fully idle) then node 1.
	if len(s.Top) != 2 || s.Top[0].Node != 3 || s.Top[1].Node != 1 {
		t.Fatalf("top-k: %+v", s.Top)
	}
}

func TestShardSummaryWireRoundTrip(t *testing.T) {
	in := ShardSummary{
		Shard: 3, AtNs: 1234567890, Nodes: 100,
		CPUIdle: 0.625, DiskAvail: 0.5, CPUQueue: 17, DiskQueue: 9, Idle: 40,
		Top: []ShardDigest{
			{Node: 12, Load: Load{CPUIdle: 0.9, DiskAvail: 0.8, Speed: 1}},
			{Node: 77, Load: Load{CPUIdle: 0.7, DiskAvail: 0.6, CPUQueue: 2, DiskQueue: 1, Speed: 2}},
		},
	}
	wire := in.AppendWire(nil)
	if !IsShardWire(wire) {
		t.Fatalf("encoded line fails the sniff: %q", wire)
	}
	var out ShardSummary
	if err := ParseShardSummary(wire, &out); err != nil {
		t.Fatal(err)
	}
	if out.Shard != in.Shard || out.AtNs != in.AtNs || out.Nodes != in.Nodes ||
		out.CPUIdle != in.CPUIdle || out.DiskAvail != in.DiskAvail ||
		out.CPUQueue != in.CPUQueue || out.DiskQueue != in.DiskQueue || out.Idle != in.Idle {
		t.Fatalf("header drift: %+v -> %q -> %+v", in, wire, out)
	}
	if len(out.Top) != 2 || out.Top[0] != in.Top[0] || out.Top[1] != in.Top[1] {
		t.Fatalf("digest drift: %+v", out.Top)
	}
	// Reuse: parsing a shorter summary into the same dst truncates Top.
	short := ShardSummary{Shard: 1, AtNs: 1, Nodes: 2}
	if err := ParseShardSummary(short.AppendWire(nil), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Top) != 0 {
		t.Fatalf("dst.Top not truncated on reuse: %+v", out.Top)
	}
}

func TestParseShardSummaryRejects(t *testing.T) {
	good := (&ShardSummary{Shard: 1, AtNs: 2, Nodes: 3}).AppendWire(nil)
	cases := [][]byte{
		[]byte("junk"),
		[]byte(""),
		[]byte("s1 "),
		[]byte("s1 1 2 3 0 0 0 0 0 1\n"),           // claims 1 digest, carries none
		[]byte("s1 1 2 3 0 0 0 0 0 9999\n"),        // digest count over cap
		[]byte("s1 1 2 3 0 0 0 0 0 -1\n"),          // negative digest count
		append(good[:len(good)-1], " extra\n"...),  // trailing garbage
		[]byte("s1 x 2 3 0 0 0 0 0 0\n"),           // non-numeric field
		[]byte("s1 1 2 3 0 0 0 0 0 1 5 0 0 0 0\n"), // truncated digest
		[]byte("s1 1  2 3 0 0 0 0 0 0\n"),          // double space = empty field
	}
	var dst ShardSummary
	for _, b := range cases {
		if err := ParseShardSummary(b, &dst); err == nil {
			t.Errorf("accepted malformed line %q", b)
		}
	}
}
