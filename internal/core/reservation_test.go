package core

import (
	"testing"

	"msweb/internal/trace"
)

func TestReservationDefaults(t *testing.T) {
	rc := NewReservationController(DefaultReservationConfig())
	if got := rc.A(); got != 0.5 {
		t.Fatalf("default a = %v, want 0.5", got)
	}
	if got := rc.R(); got != 1.0/40 {
		t.Fatalf("default r = %v, want 1/40", got)
	}
}

func TestReservationInitialThetaFromTopology(t *testing.T) {
	rc := NewReservationController(DefaultReservationConfig())
	rc.Recompute(8, 32)
	// With no measurements: a=0.5, r=1/40 → θ₂ = (8/32)(1+0.05) − 0.05.
	want := 0.25*(1+(1.0/40)/0.5) - (1.0/40)/0.5
	if !approx(rc.ThetaLimit(), want, 1e-9) {
		t.Fatalf("initial θ = %v, want %v", rc.ThetaLimit(), want)
	}
}

func TestReservationThetaTracksEstimates(t *testing.T) {
	rc := NewReservationController(DefaultReservationConfig())
	// Feed arrivals: a = 2/8 = 0.25.
	for i := 0; i < 8; i++ {
		rc.ObserveArrival(trace.Static)
	}
	for i := 0; i < 2; i++ {
		rc.ObserveArrival(trace.Dynamic)
	}
	// Feed responses: statics 1 ms, dynamics 40 ms → r ≈ 1/40.
	for i := 0; i < 50; i++ {
		rc.ObserveCompletion(trace.Static, 0.001, 0.001)
		rc.ObserveCompletion(trace.Dynamic, 0.040, 0.040)
	}
	rc.Recompute(8, 32)
	a, r := rc.A(), rc.R()
	if !approx(a, 0.25, 1e-9) {
		t.Fatalf("a estimate = %v, want 0.25", a)
	}
	if !approx(r, 0.025, 0.002) {
		t.Fatalf("r estimate = %v, want ~0.025", r)
	}
	want := (8.0/32.0)*(1+r/a) - r/a
	if !approx(rc.ThetaLimit(), want, 1e-9) {
		t.Fatalf("θ = %v, want %v", rc.ThetaLimit(), want)
	}
}

// The self-stabilizing feedback of Section 4: slowing statics (relative
// to dynamics) must LOWER the admission cap.
func TestReservationSelfStabilizes(t *testing.T) {
	rc := NewReservationController(DefaultReservationConfig())
	for i := 0; i < 4; i++ {
		rc.ObserveArrival(trace.Static)
		rc.ObserveArrival(trace.Dynamic)
	}
	// Healthy: statics fast.
	for i := 0; i < 50; i++ {
		rc.ObserveCompletion(trace.Static, 0.001, 0.001)
		rc.ObserveCompletion(trace.Dynamic, 0.050, 0.040)
	}
	rc.Recompute(8, 32)
	healthy := rc.ThetaLimit()

	// Masters overloaded: statics crawl (response ratio rises).
	for i := 0; i < 200; i++ {
		rc.ObserveCompletion(trace.Static, 0.020, 0.001)
		rc.ObserveCompletion(trace.Dynamic, 0.050, 0.040)
	}
	rc.Recompute(8, 32)
	stressed := rc.ThetaLimit()
	if stressed >= healthy {
		t.Fatalf("θ did not fall under static slowdown: healthy=%v stressed=%v", healthy, stressed)
	}

	// Recovery: statics fast again → θ rises back.
	for i := 0; i < 400; i++ {
		rc.ObserveCompletion(trace.Static, 0.001, 0.001)
		rc.ObserveCompletion(trace.Dynamic, 0.050, 0.040)
	}
	rc.Recompute(8, 32)
	recovered := rc.ThetaLimit()
	if recovered <= stressed {
		t.Fatalf("θ did not recover: stressed=%v recovered=%v", stressed, recovered)
	}
}

func TestReservationConvergesFromAnyInitialTheta(t *testing.T) {
	// The paper: "θ will converge to a specific value if the system
	// itself is stable, no matter what the initial value was."
	run := func(initial float64) float64 {
		rc := NewReservationController(ReservationConfig{InitialTheta: initial, Alpha: 0.3, Decay: 0.5})
		for round := 0; round < 50; round++ {
			for i := 0; i < 10; i++ {
				rc.ObserveArrival(trace.Static)
				rc.ObserveCompletion(trace.Static, 0.001, 0.001)
			}
			for i := 0; i < 4; i++ {
				rc.ObserveArrival(trace.Dynamic)
				rc.ObserveCompletion(trace.Dynamic, 0.040, 0.033)
			}
			rc.Recompute(6, 32)
		}
		return rc.ThetaLimit()
	}
	low, high := run(0.0), run(1.0)
	if !approx(low, high, 1e-6) {
		t.Fatalf("θ depends on initial value: %v vs %v", low, high)
	}
}

func TestAdmitAtMasterEnforcesFraction(t *testing.T) {
	rc := NewReservationController(ReservationConfig{InitialTheta: 0.25, Alpha: 0.3, Decay: 0.5})
	admitted := 0
	const n = 1000
	for i := 0; i < n; i++ {
		rc.CountDynamic()
		if rc.AdmitAtMaster() {
			rc.CountMasterDynamic()
			admitted++
		}
	}
	frac := float64(admitted) / n
	if frac > 0.27 || frac < 0.20 {
		t.Fatalf("admitted fraction %v, want ≈ 0.25", frac)
	}
}

func TestAdmitAtMasterExtremes(t *testing.T) {
	open := NewReservationController(ReservationConfig{InitialTheta: 1, Alpha: 0.3, Decay: 0.5})
	for i := 0; i < 100; i++ {
		if !open.AdmitAtMaster() {
			t.Fatal("θ=1 rejected an admission")
		}
		open.CountDynamic()
		open.CountMasterDynamic()
	}
	closed := NewReservationController(ReservationConfig{InitialTheta: 0, Alpha: 0.3, Decay: 0.5})
	// Force init so the cap stays 0 (InitialTheta=0 is respected).
	if closed.AdmitAtMaster() {
		t.Fatal("θ=0 admitted a dynamic at a master")
	}
}

func TestRecomputeHandlesNoDynamicTraffic(t *testing.T) {
	rc := NewReservationController(DefaultReservationConfig())
	for i := 0; i < 100; i++ {
		rc.ObserveArrival(trace.Static)
	}
	rc.Recompute(4, 16)
	if rc.ThetaLimit() != 1 {
		t.Fatalf("all-static cap = %v, want 1 (irrelevant, keep open)", rc.ThetaLimit())
	}
}

func TestRecomputeIgnoresDegenerateTopology(t *testing.T) {
	rc := NewReservationController(DefaultReservationConfig())
	before := rc.ThetaLimit()
	rc.Recompute(0, 16)
	rc.Recompute(4, 0)
	if rc.ThetaLimit() != before {
		t.Fatalf("degenerate topology changed θ: %v -> %v", before, rc.ThetaLimit())
	}
}

func TestObserveCompletionIgnoresNonPositive(t *testing.T) {
	rc := NewReservationController(DefaultReservationConfig())
	rc.ObserveCompletion(trace.Static, 0, 0)
	rc.ObserveCompletion(trace.Dynamic, -1, 1)
	if got := rc.R(); got != 1.0/40 {
		t.Fatalf("r moved on invalid samples: %v", got)
	}
}

func TestMarginShrinksCap(t *testing.T) {
	base := NewReservationController(ReservationConfig{Alpha: 0.3, Decay: 0.5, InitialTheta: -1})
	withMargin := NewReservationController(ReservationConfig{Alpha: 0.3, Decay: 0.5, InitialTheta: -1, Margin: 0.05})
	feed := func(rc *ReservationController) {
		for i := 0; i < 10; i++ {
			rc.ObserveArrival(trace.Static)
			rc.ObserveArrival(trace.Dynamic)
			rc.ObserveCompletion(trace.Static, 0.001, 0.001)
			rc.ObserveCompletion(trace.Dynamic, 0.040, 0.040)
		}
		rc.Recompute(8, 32)
	}
	feed(base)
	feed(withMargin)
	if withMargin.ThetaLimit() >= base.ThetaLimit() {
		t.Fatalf("margin did not shrink cap: %v vs %v", withMargin.ThetaLimit(), base.ThetaLimit())
	}
}

func TestBadConfigFallsBackToDefaults(t *testing.T) {
	rc := NewReservationController(ReservationConfig{Alpha: 5, Decay: 2, InitialTheta: 0.3})
	// Must not panic or wedge: exercise the full loop.
	for i := 0; i < 10; i++ {
		rc.ObserveArrival(trace.Dynamic)
		rc.ObserveCompletion(trace.Dynamic, 0.04, 0.04)
		rc.Recompute(4, 8)
	}
	if th := rc.ThetaLimit(); th < 0 || th > 1 {
		t.Fatalf("θ out of range: %v", th)
	}
}
