package core

import (
	"math"

	"msweb/internal/rng"
)

// Routing-stage implementations: the paper's min-RSRC predictor plus the
// competitor set from the related-work literature — JSQ(d)
// (power-of-d-choices), MaxWeight-style weighted-backlog routing, the
// c/μ-rule, and uniform random — all consuming the same View and
// tie-breaking through the same seeded RNG discipline so experiment runs
// stay deterministic. Weighted scorer composition lives in scorers.go.

// Registered routing-stage names. JSQ(d) registers as "jsq2"/"jsq3"…
// through the policy registry; RoutingJSQPrefix is the common stem.
const (
	RoutingRSRC      = "rsrc"
	RoutingJSQPrefix = "jsq"
	RoutingMaxWeight = "maxweight"
	RoutingCMu       = "cmu"
	RoutingBalanced  = "balanced"
	RoutingMSR       = "msr"
	RoutingRandom    = "random"
	RoutingScorers   = "scorers"
)

// RSRCRouting picks the candidate minimizing the paper's RSRC cost
// (Equation 5, speed-normalized on heterogeneous clusters), breaking
// ties uniformly at random. This is the default pipeline's routing
// stage; it consumes exactly one RNG draw per placement, which the
// byte-identical golden outputs depend on.
type RSRCRouting struct {
	rng *rng.Stream
	tie []int
}

// NewRSRCRouting constructs the min-RSRC stage with its tie-break seed.
func NewRSRCRouting(seed int64) *RSRCRouting {
	return &RSRCRouting{rng: rng.New(seed)}
}

// Name implements RoutingPolicy.
func (*RSRCRouting) Name() string { return RoutingRSRC }

// Route implements RoutingPolicy.
func (r *RSRCRouting) Route(req Request, w float64, candidates []int, v *View) (int, float64) {
	target, cost, tie := pickMinRSRC(w, candidates, v, r.rng, r.tie)
	r.tie = tie[:0]
	return target, cost
}

// JSQRouting is the power-of-d-choices dispatcher: sample d distinct
// candidates uniformly and join the one with the shortest combined
// queue. d ≥ len(candidates) degenerates to full join-shortest-queue.
// The classic load-balancing result (Mitzenmacher; Vvedenskaya et al.):
// d=2 removes most of random's imbalance at O(1) inspection cost.
type JSQRouting struct {
	d      int
	rng    *rng.Stream
	sample []int
	tie    []int
}

// NewJSQRouting constructs a JSQ(d) stage; d < 1 is treated as 1.
func NewJSQRouting(d int, seed int64) *JSQRouting {
	if d < 1 {
		d = 1
	}
	return &JSQRouting{d: d, rng: rng.New(seed)}
}

// Name implements RoutingPolicy.
func (r *JSQRouting) Name() string { return jsqName(r.d) }

func jsqName(d int) string {
	// Avoid strconv for the tiny d range actually used.
	if d >= 0 && d < 10 {
		return RoutingJSQPrefix + string(rune('0'+d))
	}
	return RoutingJSQPrefix
}

// D reports the sample width.
func (r *JSQRouting) D() int { return r.d }

// Route implements RoutingPolicy.
func (r *JSQRouting) Route(req Request, w float64, candidates []int, v *View) (int, float64) {
	pool := candidates
	if r.d < len(candidates) {
		// Partial Fisher–Yates over a reused copy: the first d slots
		// become the uniform sample without replacement.
		r.sample = append(r.sample[:0], candidates...)
		for i := 0; i < r.d; i++ {
			j := i + r.rng.Intn(len(r.sample)-i)
			r.sample[i], r.sample[j] = r.sample[j], r.sample[i]
		}
		pool = r.sample[:r.d]
	}
	best := math.MaxInt
	tie := r.tie[:0]
	for _, id := range pool {
		q := v.Load[id].CPUQueue + v.Load[id].DiskQueue
		switch {
		case q < best:
			best = q
			tie = append(tie[:0], id)
		case q == best:
			tie = append(tie, id)
		}
	}
	target := tie[r.rng.Intn(len(tie))]
	r.tie = tie[:0]
	return target, float64(best)
}

// MaxWeightRouting routes to the candidate with the smallest expected
// drain time of the backlog the request competes with: the request's
// resource mix weights the two queue populations and the node's relative
// speed scales the service rate — argmin (w·Q_cpu + (1−w)·Q_disk) / μ.
// This is the dispatch-side reading of MaxWeight/backpressure scheduling
// (Tassiulas & Ephremides; Maguluri & Srikant for server farms): weight
// queue lengths by service rates and serve the heaviest pressure first.
type MaxWeightRouting struct {
	rng *rng.Stream
	tie []int
}

// NewMaxWeightRouting constructs the weighted-backlog stage.
func NewMaxWeightRouting(seed int64) *MaxWeightRouting {
	return &MaxWeightRouting{rng: rng.New(seed)}
}

// Name implements RoutingPolicy.
func (*MaxWeightRouting) Name() string { return RoutingMaxWeight }

// Route implements RoutingPolicy.
func (r *MaxWeightRouting) Route(req Request, w float64, candidates []int, v *View) (int, float64) {
	best := math.Inf(1)
	tie := r.tie[:0]
	for _, id := range candidates {
		l := v.Load[id]
		mu := l.Speed
		if mu <= 0 {
			mu = 1
		}
		cost := (w*float64(l.CPUQueue) + (1-w)*float64(l.DiskQueue)) / mu
		switch {
		case cost < best-1e-12:
			best = cost
			tie = append(tie[:0], id)
		case cost <= best+1e-12:
			tie = append(tie, id)
		}
	}
	target := tie[r.rng.Intn(len(tie))]
	r.tie = tie[:0]
	return target, best
}

// CMuRouting is the c/μ-rule read as a routing index: every request has
// the same holding cost c, so serve it where the effective service rate
// is highest — argmax μ·(w·CPUIdle + (1−w)·DiskAvail), the node offering
// the most idle capacity of the resources this request actually needs
// (Xia et al. ground the rule for dynamic server allocation).
type CMuRouting struct {
	rng *rng.Stream
	tie []int
}

// NewCMuRouting constructs the c/μ-index stage.
func NewCMuRouting(seed int64) *CMuRouting {
	return &CMuRouting{rng: rng.New(seed)}
}

// Name implements RoutingPolicy.
func (*CMuRouting) Name() string { return RoutingCMu }

// Route implements RoutingPolicy.
func (r *CMuRouting) Route(req Request, w float64, candidates []int, v *View) (int, float64) {
	best := math.Inf(-1)
	tie := r.tie[:0]
	for _, id := range candidates {
		l := v.Load[id]
		mu := l.Speed
		if mu <= 0 {
			mu = 1
		}
		idx := mu * (w*l.CPUIdle + (1-w)*l.DiskAvail)
		switch {
		case idx > best+1e-12:
			best = idx
			tie = append(tie[:0], id)
		case idx >= best-1e-12:
			tie = append(tie, id)
		}
	}
	target := tie[r.rng.Intn(len(tie))]
	r.tie = tie[:0]
	// Report the index negated so lower still reads as "better" in
	// placement traces, matching the cost convention.
	return target, -best
}

// BalancedRouting is the balanced-fairness dispatcher (Bonald & Comte,
// "Balanced fair resource sharing in computer clusters"): under balanced
// fairness the stationary distribution is insensitive to service-time
// distributions and the per-class performance is governed by the
// bottleneck resource's occupancy. Read as a routing index, the request
// joins the node whose bottleneck — the busier of the two resources it
// needs, weighted by its own mix w and normalized by node speed — is
// least occupied after the join:
//
//	argmin max(w·(Q_cpu+1), (1−w)·(Q_disk+1)) / μ
//
// The +1 accounts for the request itself, so an empty fast node beats an
// empty slow one and the index stays finite.
type BalancedRouting struct {
	rng *rng.Stream
	tie []int
}

// NewBalancedRouting constructs the balanced-fairness stage.
func NewBalancedRouting(seed int64) *BalancedRouting {
	return &BalancedRouting{rng: rng.New(seed)}
}

// Name implements RoutingPolicy.
func (*BalancedRouting) Name() string { return RoutingBalanced }

// Route implements RoutingPolicy.
func (r *BalancedRouting) Route(req Request, w float64, candidates []int, v *View) (int, float64) {
	best := math.Inf(1)
	tie := r.tie[:0]
	for _, id := range candidates {
		l := v.Load[id]
		mu := l.Speed
		if mu <= 0 {
			mu = 1
		}
		cpu := w * float64(l.CPUQueue+1)
		disk := (1 - w) * float64(l.DiskQueue+1)
		cost := cpu
		if disk > cost {
			cost = disk
		}
		cost /= mu
		switch {
		case cost < best-1e-12:
			best = cost
			tie = append(tie[:0], id)
		case cost <= best+1e-12:
			tie = append(tie, id)
		}
	}
	target := tie[r.rng.Intn(len(tie))]
	r.tie = tie[:0]
	return target, best
}

// MSRRouting is Markovian service-rate routing (after Chen, Grosof &
// Berg's analysis of service-rate control under Markovian regimes): the
// dispatcher commits to the candidate with the best queue-discounted
// effective service rate and holds that commitment for an exponentially
// distributed number of placements — memoryless decision epochs, so the
// (target, residual-hold) pair is a Markov chain and re-scoring cost is
// amortized to O(1) per request in expectation. The index is the
// c/μ-style rate the request would actually see,
//
//	μ·(w·CPUIdle + (1−w)·DiskAvail) / (1 + Q_cpu + Q_disk)
//
// — idle capacity of the resources this request needs, discounted by the
// backlog it must share the node with. The hold breaks early when the
// committed target drops out of the candidate set (breaker open, shed),
// so faults still re-route immediately.
type MSRRouting struct {
	rng      *rng.Stream
	tie      []int
	meanHold float64
	hold     int
	target   int
	cost     float64
}

// DefaultMSRHold is the mean commitment length in placements. Short
// enough that a 100 ms load-report cadence is never more than a few
// requests stale at typical per-master rates; long enough to amortize
// scoring.
const DefaultMSRHold = 8

// NewMSRRouting constructs the Markovian service-rate stage. meanHold
// ≤ 0 selects DefaultMSRHold; meanHold < 1 effectively re-scores every
// placement.
func NewMSRRouting(seed int64, meanHold float64) *MSRRouting {
	if meanHold <= 0 {
		meanHold = DefaultMSRHold
	}
	return &MSRRouting{rng: rng.New(seed), meanHold: meanHold, target: -1}
}

// Name implements RoutingPolicy.
func (*MSRRouting) Name() string { return RoutingMSR }

// Route implements RoutingPolicy.
func (r *MSRRouting) Route(req Request, w float64, candidates []int, v *View) (int, float64) {
	if r.hold > 0 {
		for _, id := range candidates {
			if id == r.target {
				r.hold--
				return r.target, r.cost
			}
		}
		// Committed target no longer eligible: fall through and re-score.
	}
	best := math.Inf(-1)
	tie := r.tie[:0]
	for _, id := range candidates {
		l := v.Load[id]
		mu := l.Speed
		if mu <= 0 {
			mu = 1
		}
		idx := mu * (w*l.CPUIdle + (1-w)*l.DiskAvail) /
			float64(1+l.CPUQueue+l.DiskQueue)
		switch {
		case idx > best+1e-12:
			best = idx
			tie = append(tie[:0], id)
		case idx >= best-1e-12:
			tie = append(tie, id)
		}
	}
	r.target = tie[r.rng.Intn(len(tie))]
	r.tie = tie[:0]
	// Exponential epoch length, floored at 0 extra placements: this one
	// is always served by the fresh decision.
	r.hold = int(r.rng.Exp(r.meanHold))
	// Negate so lower reads as "better" in placement traces, matching
	// the cost convention.
	r.cost = -best
	return r.target, r.cost
}

// RandomRouting dispatches uniformly at random — the memoryless baseline
// every load-aware policy must beat.
type RandomRouting struct {
	rng *rng.Stream
}

// NewRandomRouting constructs the uniform stage.
func NewRandomRouting(seed int64) *RandomRouting {
	return &RandomRouting{rng: rng.New(seed)}
}

// Name implements RoutingPolicy.
func (*RandomRouting) Name() string { return RoutingRandom }

// Route implements RoutingPolicy.
func (r *RandomRouting) Route(req Request, w float64, candidates []int, v *View) (int, float64) {
	return candidates[r.rng.Intn(len(candidates))], 0
}
