package core

import (
	"encoding/json"
	"math"
	"testing"
)

func TestLoadWireRoundTrip(t *testing.T) {
	cases := []Load{
		{},
		{CPUIdle: 1, DiskAvail: 1, Speed: 1},
		{CPUIdle: 0.123456789, DiskAvail: 0.987654321, CPUQueue: 17, DiskQueue: 3, Speed: 2.5},
		{CPUIdle: 1e-9, DiskAvail: 0.5, CPUQueue: 1 << 20, Speed: 0.001},
	}
	for _, l := range cases {
		b := l.AppendWire(nil)
		if !IsLoadWire(b) {
			t.Fatalf("encoding of %+v not recognized: %q", l, b)
		}
		got, err := ParseLoadWire(b)
		if err != nil {
			t.Fatalf("parse %q: %v", b, err)
		}
		if got != l {
			t.Fatalf("round trip %+v -> %q -> %+v", l, b, got)
		}
		// Without the trailing newline the line must still parse.
		got, err = ParseLoadWire(b[:len(b)-1])
		if err != nil || got != l {
			t.Fatalf("newline-less parse %q: %+v, %v", b[:len(b)-1], got, err)
		}
	}
}

func TestLoadWireAppendReusesBuffer(t *testing.T) {
	l := Load{CPUIdle: 0.5, DiskAvail: 0.25, CPUQueue: 2, DiskQueue: 1, Speed: 1}
	buf := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		buf = l.AppendWire(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("AppendWire into a sized buffer allocates %.1f times", allocs)
	}
}

func TestLoadWireRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"l2 1 1 0 0 1\n",
		"l1 1 1 0 0\n",          // missing speed
		"l1 1 1 0 0 1 9\n",      // trailing field
		"l1 x 1 0 0 1\n",        // non-numeric float
		"l1 1 1 0.5 0 1\n",      // non-integer queue
		"l1  1 1 0 0 1\n",       // empty field
		`{"cpu_idle":1}`,        // JSON is not the compact format
		"l1 1 1 0 0 1\nl1 1 1 ", // second line
	} {
		if _, err := ParseLoadWire([]byte(in)); err == nil {
			t.Fatalf("ParseLoadWire(%q) accepted", in)
		}
	}
}

// The JSON tags and the compact wire carry the same information: decoding
// the JSON form of a Load equals wire-parsing its compact form.
func TestLoadWireMatchesJSON(t *testing.T) {
	l := Load{CPUIdle: 0.75, DiskAvail: 0.5, CPUQueue: 4, DiskQueue: 2, Speed: 1.5}
	j, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	var fromJSON Load
	if err := json.Unmarshal(j, &fromJSON); err != nil {
		t.Fatal(err)
	}
	fromWire, err := ParseLoadWire(l.AppendWire(nil))
	if err != nil {
		t.Fatal(err)
	}
	if fromJSON != fromWire {
		t.Fatalf("JSON %+v != wire %+v", fromJSON, fromWire)
	}
}

func TestViewSnapshotIsDeep(t *testing.T) {
	v := View{
		Now:     3,
		Masters: []int{0, 1},
		Slaves:  []int{2, 3},
		Load:    []Load{{CPUIdle: 1}, {CPUIdle: 0.5}, {CPUIdle: 0.25}, {CPUIdle: 0.125}},
	}
	s := v.Snapshot()
	s.Masters[0] = 9
	s.Slaves[0] = 9
	s.Load[0].CPUIdle = math.Pi
	if v.Masters[0] != 0 || v.Slaves[0] != 2 || v.Load[0].CPUIdle != 1 {
		t.Fatalf("snapshot shares state with the source view: %+v", v)
	}
	if s.Now != 3 || len(s.Load) != 4 {
		t.Fatalf("snapshot dropped fields: %+v", s)
	}
}
