package core

import (
	"msweb/internal/metrics"
	"msweb/internal/trace"
)

// ReservationConfig tunes the self-stabilizing reservation controller.
type ReservationConfig struct {
	// InitialTheta is the admission cap before any measurements exist.
	// m/p (the r→0 limit of θ₂) is used when negative.
	InitialTheta float64
	// Alpha is the EWMA smoothing factor for the response-time and
	// arrival-ratio estimators.
	Alpha float64
	// Decay is the per-Recompute factor applied to the admission
	// counters, giving the cap a sliding-window character.
	Decay float64
	// Margin shrinks the cap below θ₂ for safety; the paper sets the
	// limit at θ₂ itself (margin 0) and notes the percentage scheduled
	// to masters "may not reach this limit" during execution.
	Margin float64
}

// DefaultReservationConfig returns the configuration used in the
// reproduction experiments.
func DefaultReservationConfig() ReservationConfig {
	return ReservationConfig{InitialTheta: -1, Alpha: 0.3, Decay: 0.5, Margin: 0}
}

// ReservationController implements Section 4's reservation for static
// request processing. It tracks
//
//   - a, the arrival-rate ratio λ_c/λ_h, from arrival counts, and
//   - r, the service-rate ratio μ_c/μ_h, approximated by the ratio of
//     measured mean response times of static and dynamic requests,
//
// and caps the fraction of dynamic requests admitted at master nodes at
//
//	θ₂ = (m/p)(1 + r/a) − r/a,
//
// the upper root of Theorem 1's quadratic. The feedback is
// self-stabilizing: over-admitting dynamics at masters slows statics,
// raising the measured static/dynamic response ratio (the r estimate),
// which lowers θ₂ and sheds dynamics back to the slaves.
type ReservationController struct {
	cfg ReservationConfig

	statArrivals float64
	dynArrivals  float64

	respStatic  *metrics.EWMA
	respDynamic *metrics.EWMA

	dynTotal  float64 // decayed count of dynamic placements
	dynMaster float64 // decayed count of dynamic placements at masters

	theta float64
	init  bool
}

// NewReservationController constructs a controller.
func NewReservationController(cfg ReservationConfig) *ReservationController {
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.3
	}
	if cfg.Decay <= 0 || cfg.Decay >= 1 {
		cfg.Decay = 0.5
	}
	return &ReservationController{
		cfg:         cfg,
		respStatic:  metrics.NewEWMA(cfg.Alpha),
		respDynamic: metrics.NewEWMA(cfg.Alpha),
		theta:       cfg.InitialTheta,
	}
}

// ObserveArrival records a request arrival for the a estimator.
func (rc *ReservationController) ObserveArrival(class trace.Class) {
	if class == trace.Dynamic {
		rc.dynArrivals++
	} else {
		rc.statArrivals++
	}
}

// ObserveCompletion records a completed request's response time for the
// r estimator. Demands are accepted for interface symmetry but the
// estimator deliberately uses response times only, as the paper does:
// true service demands are not observable on-line.
func (rc *ReservationController) ObserveCompletion(class trace.Class, response, demand float64) {
	if response <= 0 {
		return
	}
	if class == trace.Dynamic {
		rc.respDynamic.Update(response)
	} else {
		rc.respStatic.Update(response)
	}
}

// AdmitAtMaster reports whether the next dynamic request may run at a
// master under the cap. Callers that do place it at a master must then
// call CountMasterDynamic.
func (rc *ReservationController) AdmitAtMaster() bool {
	limit := rc.ThetaLimit()
	if limit >= 1 {
		return true
	}
	if limit <= 0 {
		return false
	}
	// Would admitting this request keep the fraction under the cap?
	return (rc.dynMaster+1)/(rc.dynTotal+1) <= limit
}

// CountMasterDynamic records that a dynamic request was placed at a
// master. CountDynamic must be called for every placed dynamic request.
func (rc *ReservationController) CountMasterDynamic() {
	rc.dynMaster++
}

// CountDynamic records a dynamic placement (any target).
func (rc *ReservationController) CountDynamic() {
	rc.dynTotal++
}

// A returns the current arrival-ratio estimate (falls back to 0.5 with
// no static arrivals observed yet).
func (rc *ReservationController) A() float64 {
	if rc.statArrivals <= 0 {
		return 0.5
	}
	return rc.dynArrivals / rc.statArrivals
}

// R returns the current service-ratio estimate from response times
// (falls back to 1/40, the middle of the paper's studied range, until
// both classes have completions).
func (rc *ReservationController) R() float64 {
	if !rc.respStatic.Initialized() || !rc.respDynamic.Initialized() {
		return 1.0 / 40
	}
	s, d := rc.respStatic.Value(), rc.respDynamic.Value()
	if d <= 0 {
		return 1.0 / 40
	}
	r := s / d
	if r <= 0 {
		return 1.0 / 40
	}
	if r > 1 {
		r = 1
	}
	return r
}

// ThetaLimit returns the current admission cap.
func (rc *ReservationController) ThetaLimit() float64 { return rc.theta }

// Recompute refreshes θ₂ from the current estimates for a cluster with
// m masters out of p nodes, and decays the admission counters. Called
// periodically (the paper's load managers "update θ periodically").
func (rc *ReservationController) Recompute(m, p int) {
	if p <= 0 || m <= 0 {
		return
	}
	if !rc.init && rc.cfg.InitialTheta < 0 {
		rc.theta = float64(m) / float64(p)
	}
	rc.init = true

	a := rc.A()
	r := rc.R()
	if a > 0 {
		theta := (float64(m)/float64(p))*(1+r/a) - r/a - rc.cfg.Margin
		rc.theta = clamp01f(theta)
	} else {
		// No dynamic traffic observed: the cap is irrelevant; keep it
		// open so a first burst is not rejected outright.
		rc.theta = 1
	}

	rc.dynTotal *= rc.cfg.Decay
	rc.dynMaster *= rc.cfg.Decay
	rc.statArrivals *= rc.cfg.Decay
	rc.dynArrivals *= rc.cfg.Decay
}

func clamp01f(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
