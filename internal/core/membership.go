package core

import (
	"fmt"
	"sort"
	"strconv"
)

// Membership is the epoch-versioned cluster topology the live control
// plane gossips: which nodes currently serve as masters, which as
// slaves, and which partition function maps slaves onto shards. Every
// master derives the same ShardMap from the same Membership, so
// shipping this small struct (not the map) is enough to converge the
// whole tier — newest epoch wins, exactly like shard summaries.
//
// The compact wire encoding is one line in the l1/s1 idiom:
//
//	m1 <epoch> <mode> <nm> <master>*nm <ns> <slave>*ns \n
//
// where <mode> is 0 for ShardStatic and 1 for ShardHash.
type Membership struct {
	Epoch   uint64
	Mode    string // ShardStatic or ShardHash ("" = hash)
	Masters []int  // node IDs serving as masters, ascending; master at index i owns shard i
	Slaves  []int  // node IDs serving as slaves, ascending
}

// MembershipWireContentType is the MIME type of the compact membership
// encoding.
const MembershipWireContentType = "text/x-msweb-membership"

// membershipWirePrefix introduces (and versions) a membership line.
const membershipWirePrefix = "m1 "

// MaxMembershipNodes caps the node count a membership line may carry so
// a hostile or corrupt line cannot force an unbounded allocation.
const MaxMembershipNodes = 65536

// Validate reports structural errors: empty master tier, duplicate IDs,
// or a node listed in both tiers.
func (mb *Membership) Validate() error {
	if len(mb.Masters) == 0 {
		return fmt.Errorf("core: membership: no masters")
	}
	switch mb.Mode {
	case "", ShardStatic, ShardHash:
	default:
		return fmt.Errorf("core: membership: unknown shard map mode %q", mb.Mode)
	}
	seen := make(map[int]bool, len(mb.Masters)+len(mb.Slaves))
	for _, ids := range [][]int{mb.Masters, mb.Slaves} {
		for _, id := range ids {
			if id < 0 {
				return fmt.Errorf("core: membership: negative node id %d", id)
			}
			if seen[id] {
				return fmt.Errorf("core: membership: node %d listed twice", id)
			}
			seen[id] = true
		}
	}
	return nil
}

// Normalize sorts both tier lists ascending, the canonical order every
// encoder emits (so two masters computing the same topology produce the
// same bytes).
func (mb *Membership) Normalize() {
	sort.Ints(mb.Masters)
	sort.Ints(mb.Slaves)
}

// ShardMap derives the slave partition this membership implies: one
// shard per master, owned by the master at the same index, at the
// membership's epoch.
func (mb *Membership) ShardMap() (*ShardMap, error) {
	return NewShardMapAt(mb.Mode, len(mb.Masters), mb.Slaves, mb.Epoch)
}

// MasterIndex reports the shard index the given node owns, or -1 when
// it is not a master of this membership.
func (mb *Membership) MasterIndex(node int) int {
	for i, id := range mb.Masters {
		if id == node {
			return i
		}
	}
	return -1
}

// HasSlave reports whether the node serves as a slave.
func (mb *Membership) HasSlave(node int) bool {
	for _, id := range mb.Slaves {
		if id == node {
			return true
		}
	}
	return false
}

// Clone deep-copies the membership.
func (mb *Membership) Clone() Membership {
	return Membership{
		Epoch:   mb.Epoch,
		Mode:    mb.Mode,
		Masters: append([]int(nil), mb.Masters...),
		Slaves:  append([]int(nil), mb.Slaves...),
	}
}

// AppendWire appends the compact encoding of mb to b and returns the
// extended slice.
func (mb *Membership) AppendWire(b []byte) []byte {
	b = append(b, membershipWirePrefix...)
	b = strconv.AppendUint(b, mb.Epoch, 10)
	b = append(b, ' ')
	mode := int64(1)
	if mb.Mode == ShardStatic {
		mode = 0
	}
	b = strconv.AppendInt(b, mode, 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(len(mb.Masters)), 10)
	for _, id := range mb.Masters {
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(id), 10)
	}
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(len(mb.Slaves)), 10)
	for _, id := range mb.Slaves {
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(id), 10)
	}
	b = append(b, '\n')
	return b
}

// IsMembershipWire reports whether b starts a membership line.
func IsMembershipWire(b []byte) bool {
	return len(b) >= len(membershipWirePrefix) && string(b[:len(membershipWirePrefix)]) == membershipWirePrefix
}

// ParseMembership decodes a membership line (with or without the
// trailing newline) into dst, reusing dst's slices. Callers treat any
// error as "discard".
func ParseMembership(b []byte, dst *Membership) error {
	if !IsMembershipWire(b) {
		return fmt.Errorf("core: membership wire: missing %q prefix", membershipWirePrefix)
	}
	rest := b[len(membershipWirePrefix):]
	if n := len(rest); n > 0 && rest[n-1] == '\n' {
		rest = rest[:n-1]
	}
	f := shardFields{rest: rest}
	var err error
	if dst.Epoch, err = f.uint64(); err != nil {
		return err
	}
	mode, err := f.int()
	if err != nil {
		return err
	}
	switch mode {
	case 0:
		dst.Mode = ShardStatic
	case 1:
		dst.Mode = ShardHash
	default:
		return fmt.Errorf("core: membership wire: unknown mode %d", mode)
	}
	if dst.Masters, err = parseIDList(&f, dst.Masters); err != nil {
		return err
	}
	if dst.Slaves, err = parseIDList(&f, dst.Slaves); err != nil {
		return err
	}
	if len(f.rest) != 0 {
		return fmt.Errorf("core: membership wire: trailing garbage %q", f.rest)
	}
	return dst.Validate()
}

// parseIDList reads a count-prefixed id list into dst[:0].
func parseIDList(f *shardFields, dst []int) ([]int, error) {
	n, err := f.int()
	if err != nil {
		return dst, err
	}
	if n < 0 || n > MaxMembershipNodes {
		return dst, fmt.Errorf("core: membership wire: node count %d out of range [0,%d]", n, MaxMembershipNodes)
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		id, err := f.int()
		if err != nil {
			return dst, err
		}
		dst = append(dst, id)
	}
	return dst, nil
}
