package core

import (
	"testing"

	"msweb/internal/trace"
)

func TestAffinityAllowed(t *testing.T) {
	var nilAff ScriptAffinity
	if nilAff.Allowed(1) != nil {
		t.Fatal("nil affinity constrained a script")
	}
	aff := ScriptAffinity{1: {2, 3}, 2: {}}
	if got := aff.Allowed(1); len(got) != 2 {
		t.Fatalf("Allowed(1) = %v", got)
	}
	if aff.Allowed(2) != nil {
		t.Fatal("empty node list treated as constraint")
	}
	if aff.Allowed(99) != nil {
		t.Fatal("unknown script constrained")
	}
}

func TestMSRespectsAffinity(t *testing.T) {
	v := testView([]int{0}, []int{1, 2, 3})
	v.Affinity = ScriptAffinity{7: {2}}
	// Node 2 is the busiest — affinity must still win.
	v.Load[1] = Load{CPUIdle: 1, DiskAvail: 1, Speed: 1}
	v.Load[2] = Load{CPUIdle: 0.05, DiskAvail: 0.05, Speed: 1}
	v.Load[3] = Load{CPUIdle: 1, DiskAvail: 1, Speed: 1}
	ms := NewPipeline(PipelineConfig{Seed: 1, PlacementImpact: NoPlacementImpact})
	ms.Tick(0, v)
	for i := 0; i < 20; i++ {
		if got := ms.Place(Request{Class: trace.Dynamic, Script: 7}, 0, v); got != 2 {
			t.Fatalf("pinned script placed at %d, want 2", got)
		}
	}
	// Unconstrained scripts still load-balance freely.
	counts := map[int]int{}
	for i := 0; i < 50; i++ {
		counts[ms.Place(Request{Class: trace.Dynamic, Script: 8}, 0, v)]++
	}
	if counts[2] == 50 {
		t.Fatal("unconstrained script inherited the pin")
	}
}

func TestAffinityOverridesReservation(t *testing.T) {
	// The script's only replica lives on the master: the data
	// constraint must override the reservation cap.
	v := testView([]int{0}, []int{1, 2})
	v.Affinity = ScriptAffinity{5: {0}}
	ms := NewPipeline(PipelineConfig{
		Admission: NewTheta2Admission(ReservationConfig{
			InitialTheta: 0, Alpha: 0.3, Decay: 0.5, // cap fully closed
		}),
		Seed: 1, PlacementImpact: NoPlacementImpact,
	})
	if got := ms.Place(Request{Class: trace.Dynamic, Script: 5}, 0, v); got != 0 {
		t.Fatalf("pinned-to-master script placed at %d despite data constraint", got)
	}
}

func TestAffinityWithDeadReplicaDegrades(t *testing.T) {
	// The allowed node is not in the view (down): the request must
	// still be placed somewhere rather than dropped.
	v := testView([]int{0}, []int{1, 2})
	v.Affinity = ScriptAffinity{5: {9}}
	ms := NewMS(nil, 1)
	got := ms.Place(Request{Class: trace.Dynamic, Script: 5}, 0, v)
	if got < 0 || got > 2 {
		t.Fatalf("degraded placement returned %d", got)
	}
}

func TestAffinityMultiReplicaLoadBalances(t *testing.T) {
	v := testView([]int{0}, []int{1, 2, 3})
	v.Affinity = ScriptAffinity{4: {1, 3}}
	ms := NewMS(nil, 1)
	ms.Tick(0, v)
	counts := map[int]int{}
	for i := 0; i < 100; i++ {
		counts[ms.Place(Request{Class: trace.Dynamic, Script: 4}, 0, v)]++
	}
	if counts[2] > 0 || counts[0] > 0 {
		t.Fatalf("replica constraint violated: %v", counts)
	}
	if counts[1] == 0 || counts[3] == 0 {
		t.Fatalf("no balancing across replicas: %v", counts)
	}
}
