package core

import (
	"math"
	"testing"
)

// sameF64 treats NaN as equal to itself so round-trip checks work on
// the full float domain.
func sameF64(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// FuzzParseLoadWire pins the compact l1 parser's safety contract:
// arbitrary input never panics or over-reads, and any input it accepts
// re-encodes to a line that parses back to the same load.
func FuzzParseLoadWire(f *testing.F) {
	for _, seed := range [][]byte{
		Load{CPUIdle: 1, DiskAvail: 1, Speed: 1}.AppendWire(nil),
		Load{CPUIdle: 0.5, DiskAvail: 0.25, CPUQueue: 3, DiskQueue: 9, Speed: 2}.AppendWire(nil),
		Load{CPUIdle: math.Inf(1), DiskAvail: math.Inf(-1), Speed: math.NaN()}.AppendWire(nil),
		[]byte("l1 "),
		[]byte("l1 1 1 0 0"),
		[]byte("l1 1 1 0 0 1 extra\n"),
		[]byte("l1 1  1 0 0 1\n"),
		[]byte("junk"),
		[]byte(""),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		l, err := ParseLoadWire(b)
		if err != nil {
			return
		}
		re := l.AppendWire(nil)
		l2, err := ParseLoadWire(re)
		if err != nil {
			t.Fatalf("re-encoded %q does not parse: %v", re, err)
		}
		if !sameF64(l.CPUIdle, l2.CPUIdle) || !sameF64(l.DiskAvail, l2.DiskAvail) ||
			l.CPUQueue != l2.CPUQueue || l.DiskQueue != l2.DiskQueue || !sameF64(l.Speed, l2.Speed) {
			t.Fatalf("round trip drift: %+v -> %q -> %+v", l, re, l2)
		}
	})
}
