package core_test

import (
	"fmt"

	"msweb/internal/core"
	"msweb/internal/trace"
)

// RSRC (Equation 5) ranks nodes for a CPU-bound request: the node with
// the idle CPU wins even though its disk is busier.
func ExampleRSRC() {
	cpuBoundW := 0.9
	busyCPU := core.RSRC(cpuBoundW, 0.1, 0.9)
	idleCPU := core.RSRC(cpuBoundW, 0.9, 0.1)
	fmt.Printf("busy-CPU node cost:  %.2f\n", busyCPU)
	fmt.Printf("idle-CPU node cost:  %.2f\n", idleCPU)
	fmt.Printf("idle CPU preferred: %v\n", idleCPU < busyCPU)
	// Output:
	// busy-CPU node cost:  9.11
	// idle-CPU node cost:  2.00
	// idle CPU preferred: true
}

// Off-line sampling recovers each CGI script's CPU share from a trace
// prefix, the w that parameterizes RSRC.
func ExampleSampleW() {
	tr := &trace.Trace{Requests: []trace.Request{
		{Class: trace.Dynamic, Script: 1, CPUWeight: 0.92}, // spin script
		{Class: trace.Dynamic, Script: 1, CPUWeight: 0.94},
		{Class: trace.Dynamic, Script: 2, CPUWeight: 0.12}, // catalog search
	}}
	wt := core.SampleW(tr, 16)
	fmt.Printf("script 1 w: %.2f\n", wt.W(1))
	fmt.Printf("script 2 w: %.2f\n", wt.W(2))
	fmt.Printf("unknown script falls back to %.1f\n", wt.W(99))
	// Output:
	// script 1 w: 0.93
	// script 2 w: 0.12
	// unknown script falls back to 0.5
}

// The reservation controller turns measured ratios into the θ₂ cap and
// enforces it per placement.
func ExampleReservationController() {
	rc := core.NewReservationController(core.DefaultReservationConfig())
	// Observed traffic: 4 statics per dynamic, statics 40x faster.
	for i := 0; i < 400; i++ {
		rc.ObserveArrival(trace.Static)
		rc.ObserveCompletion(trace.Static, 0.001, 0.001)
	}
	for i := 0; i < 100; i++ {
		rc.ObserveArrival(trace.Dynamic)
		rc.ObserveCompletion(trace.Dynamic, 0.040, 0.033)
	}
	rc.Recompute(8, 32) // 8 masters of 32 nodes
	fmt.Printf("θ cap: %.3f\n", rc.ThetaLimit())
	// Output:
	// θ cap: 0.175
}
