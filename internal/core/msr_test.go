package core

import (
	"testing"

	"msweb/internal/trace"
)

// msrView builds a view where node `best` has far more idle capacity
// than the other slaves.
func msrView(best int) *View {
	v := testView([]int{0}, []int{1, 2, 3})
	v.Load[0] = Load{CPUIdle: 0.05, DiskAvail: 0.05, CPUQueue: 9, DiskQueue: 9, Speed: 1}
	for _, id := range []int{1, 2, 3} {
		v.Load[id] = Load{CPUIdle: 0.1, DiskAvail: 0.1, CPUQueue: 8, DiskQueue: 8, Speed: 1}
	}
	v.Load[best] = Load{CPUIdle: 0.9, DiskAvail: 0.9, Speed: 1}
	return v
}

func TestMSRRoutingPicksBestRate(t *testing.T) {
	r := NewMSRRouting(1, 0.001) // near-zero hold: re-score every placement
	req := Request{Class: trace.Dynamic}
	for _, best := range []int{1, 2, 3} {
		v := msrView(best)
		if got, _ := r.Route(req, 0.5, []int{1, 2, 3}, v); got != best {
			t.Fatalf("MSR placed at %d, want %d", got, best)
		}
	}
}

func TestMSRRoutingHoldsCommitment(t *testing.T) {
	// An enormous mean hold freezes the first decision: the commitment
	// must survive the view flipping to favor another node.
	r := NewMSRRouting(1, 1e9)
	req := Request{Class: trace.Dynamic}
	first, _ := r.Route(req, 0.5, []int{1, 2, 3}, msrView(1))
	if first != 1 {
		t.Fatalf("first placement at %d, want 1", first)
	}
	for i := 0; i < 50; i++ {
		if got, _ := r.Route(req, 0.5, []int{1, 2, 3}, msrView(3)); got != first {
			t.Fatalf("placement %d: hold broken, went to %d", i, got)
		}
	}
}

func TestMSRRoutingRescoresWhenTargetDropsOut(t *testing.T) {
	// Even mid-hold, losing the committed target (breaker open, shed)
	// must re-route immediately — to the best remaining candidate, using
	// the fresh view.
	r := NewMSRRouting(1, 1e9)
	req := Request{Class: trace.Dynamic}
	if got, _ := r.Route(req, 0.5, []int{1, 2, 3}, msrView(1)); got != 1 {
		t.Fatalf("first placement at %d, want 1", got)
	}
	v := msrView(1)
	v.Load[3] = Load{CPUIdle: 0.8, DiskAvail: 0.8, Speed: 1}
	if got, _ := r.Route(req, 0.5, []int{2, 3}, v); got != 3 {
		t.Fatalf("after target loss placed at %d, want 3", got)
	}
}

func TestMSRRoutingDeterministic(t *testing.T) {
	a := NewMSRRouting(7, 0)
	b := NewMSRRouting(7, 0)
	req := Request{Class: trace.Dynamic}
	for i := 0; i < 200; i++ {
		v := msrView(1 + i%3)
		ga, _ := a.Route(req, 0.5, []int{1, 2, 3}, v)
		gb, _ := b.Route(req, 0.5, []int{1, 2, 3}, v)
		if ga != gb {
			t.Fatalf("placement %d: seeds diverged (%d vs %d)", i, ga, gb)
		}
	}
}

func TestMSRRoutingInPipeline(t *testing.T) {
	p := NewPipeline(PipelineConfig{
		Admission: NewOpenAdmission(), Routing: NewMSRRouting(1, 0.001),
		PlacementImpact: NoPlacementImpact,
	})
	if p.RoutingName() != RoutingMSR {
		t.Fatalf("routing name %q, want %q", p.RoutingName(), RoutingMSR)
	}
	if got := p.Place(Request{Class: trace.Dynamic}, 0, msrView(2)); got != 2 {
		t.Fatalf("pipeline placed at %d, want 2", got)
	}
}
