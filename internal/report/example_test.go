package report_test

import (
	"os"

	"msweb/internal/report"
)

// Build a table programmatically and emit CSV.
func ExampleTable_WriteCSV() {
	t := &report.Table{
		Title:   "Figure 4 excerpt",
		Columns: []string{"trace", "inv_r", "over_nr_pct"},
	}
	t.AddRow("UCB", 80, 51.3)
	t.AddRow("ADL", 160, 64.6)
	if err := t.WriteCSV(os.Stdout); err != nil {
		panic(err)
	}
	// Output:
	// trace,inv_r,over_nr_pct
	// UCB,80,51.3
	// ADL,160,64.6
}

// The generic text renderer aligns columns for terminal output.
func ExampleTable_WriteText() {
	t := &report.Table{
		Title:   "Tiny table",
		Columns: []string{"k", "value"},
	}
	t.AddRow("alpha", 1)
	t.AddRow("b", 123456)
	if err := t.WriteText(os.Stdout); err != nil {
		panic(err)
	}
	// Output:
	// Tiny table
	// k      value
	// -------------
	// alpha  1
	// b      123456
}
