package report

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func demoTable() *Table {
	t := &Table{Title: "Demo", Columns: []string{"trace", "1/r", "sf"}}
	t.AddRow("UCB", 20, 9.285)
	t.AddRow("ADL", 160, 2.3)
	return t
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := demoTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "trace,1/r,sf\nUCB,20,9.285\nADL,160,2.3\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestWriteCSVEscaping(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b"}}
	tbl.AddRow(`comma,here`, `quote"here`)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"comma,here"`) || !strings.Contains(buf.String(), `"quote""here"`) {
		t.Fatalf("CSV escaping broken: %q", buf.String())
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := demoTable().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Demo", "trace", "UCB", "2.3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	// Header columns align: every line has the sf column at the same offset.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
}

func TestValidateCatchesRaggedRows(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b"}, Rows: [][]string{{"only-one"}}}
	if tbl.Validate() == nil {
		t.Fatal("ragged row accepted")
	}
	var buf bytes.Buffer
	if tbl.WriteCSV(&buf) == nil || tbl.WriteText(&buf) == nil {
		t.Fatal("writers accepted invalid table")
	}
	empty := &Table{}
	if empty.Validate() == nil {
		t.Fatal("column-less table accepted")
	}
}

func TestCellFormatting(t *testing.T) {
	cases := map[any]string{
		1.5:    "1.5",
		2.0:    "2",
		"x":    "x",
		42:     "42",
		true:   "true",
		-0.125: "-0.125",
	}
	for in, want := range cases {
		if got := Cell(in); got != want {
			t.Fatalf("Cell(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Figure 3(a): M/S over flat": "figure-3-a-m-s-over-flat",
		"Table 1":                    "table-1",
		"  weird__ chars!!":          "weird-chars",
		"":                           "",
	}
	for in, want := range cases {
		if got := Slug(in); got != want {
			t.Fatalf("Slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSortRows(t *testing.T) {
	tbl := &Table{Columns: []string{"k", "v"}}
	tbl.AddRow("b", 2)
	tbl.AddRow("a", 1)
	tbl.AddRow("b", 1)
	tbl.SortRows(0, 1)
	if tbl.Rows[0][0] != "a" || tbl.Rows[1][1] != "1" || tbl.Rows[2][1] != "2" {
		t.Fatalf("sorted rows: %v", tbl.Rows)
	}
	// Out-of-range column indexes are ignored, not panicking.
	tbl.SortRows(99)
}

// Property: CSV round-trips cell counts for arbitrary string tables.
func TestCSVWellFormedProperty(t *testing.T) {
	f := func(cells [][2]string) bool {
		tbl := &Table{Columns: []string{"a", "b"}}
		for _, c := range cells {
			tbl.AddRow(c[0], c[1])
		}
		var buf bytes.Buffer
		if err := tbl.WriteCSV(&buf); err != nil {
			return false
		}
		lines := strings.Count(buf.String(), "\n")
		// CSV quoting can embed newlines inside cells, so the line count
		// is at least rows+1; parse instead with the csv reader.
		_ = lines
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
