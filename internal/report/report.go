// Package report renders experiment results as machine-readable tables.
// Every experiment in internal/experiments has a text formatter for the
// terminal; this package adds a uniform tabular form with CSV emission
// so results can be loaded into plotting tools and spreadsheets (the
// figures of the paper were plots; regeneration pipelines want data, not
// prose).
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Validate checks that every row matches the column count.
func (t *Table) Validate() error {
	if len(t.Columns) == 0 {
		return fmt.Errorf("report: table %q has no columns", t.Title)
	}
	for i, row := range t.Rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("report: table %q row %d has %d cells for %d columns",
				t.Title, i, len(row), len(t.Columns))
		}
	}
	return nil
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = Cell(c)
	}
	t.Rows = append(t.Rows, row)
}

// Cell stringifies one value with stable formatting: floats use up to 4
// significant decimals without trailing zeros, everything else uses fmt.
func Cell(v any) string {
	switch x := v.(type) {
	case float64:
		return strconv.FormatFloat(x, 'f', -1, 64)
	case float32:
		return strconv.FormatFloat(float64(x), 'f', -1, 32)
	case string:
		return x
	default:
		return fmt.Sprint(x)
	}
}

// WriteCSV emits the table as RFC-4180 CSV with a leading header row.
func (t *Table) WriteCSV(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteText emits a fixed-width text rendering (columns padded to their
// widest cell), a generic fallback for tables without a bespoke
// formatter.
func (t *Table) WriteText(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintln(w, t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Slug converts a title into a filesystem-friendly name for CSV files.
func Slug(title string) string {
	var b strings.Builder
	lastDash := false
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash && b.Len() > 0 {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}

// SortRows orders rows lexically by the given column indexes, a
// convenience for deterministic output when rows are built from maps.
func (t *Table) SortRows(byColumns ...int) {
	sort.SliceStable(t.Rows, func(a, b int) bool {
		for _, c := range byColumns {
			if c < 0 || c >= len(t.Columns) {
				continue
			}
			if t.Rows[a][c] != t.Rows[b][c] {
				return t.Rows[a][c] < t.Rows[b][c]
			}
		}
		return false
	})
}
