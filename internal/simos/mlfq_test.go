package simos

import (
	"testing"

	"msweb/internal/sim"
)

// Focused tests of the BSD-style multilevel feedback queue behaviour.

func TestEstcpuSinksLongJobs(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(t, eng, DefaultConfig())
	// Two hogs and a stream of interactive jobs: the interactive jobs'
	// total delay must stay near their service demand because hogs sink
	// to lower levels.
	n.Submit(Job{CPUTime: 0.400})
	n.Submit(Job{CPUTime: 0.400})
	var delays []float64
	for i := 0; i < 10; i++ {
		at := 0.050 * float64(i+1)
		eng.Schedule(at, func() {
			n.Submit(Job{CPUTime: 0.002, Done: func(now float64) {
				delays = append(delays, now-at-0.002)
			}})
		})
	}
	eng.Run()
	if len(delays) != 10 {
		t.Fatalf("%d interactive jobs completed", len(delays))
	}
	worst := 0.0
	for _, d := range delays {
		if d > worst {
			worst = d
		}
	}
	// Each interactive job waits at most ~one quantum of an in-service
	// hog plus switches; far below the hogs' 800 ms of work.
	if worst > 0.030 {
		t.Fatalf("interactive delay %v behind CPU hogs; MLFQ failed", worst)
	}
}

// TestDecayTickAllocatesNothing pins the decayPriorities scratch-buffer
// reuse: with queues populated, a decay pass (drain every level, halve
// estcpu, requeue) must not allocate. The old implementation built a
// fresh procs slice every 100 ms tick of every node.
func TestDecayTickAllocatesNothing(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(t, eng, DefaultConfig())
	for i := 0; i < 24; i++ {
		n.Submit(Job{CPUTime: 0.200})
	}
	eng.RunUntil(0.350) // spread processes across levels, warm the scratch
	if ready, _ := n.QueueLengths(); ready < 10 {
		t.Fatalf("only %d processes ready; workload cannot exercise decay", ready)
	}
	avg := testing.AllocsPerRun(20, n.decayPriorities)
	if avg != 0 {
		t.Fatalf("decayPriorities allocates %.1f per tick, want 0", avg)
	}
	eng.Run()
}

func TestDecayRestoresPriority(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	n := newTestNode(t, eng, cfg)
	// Phase 1: a job burns CPU and sinks.
	var phase2Start, phase2Done float64
	n.Submit(Job{CPUTime: 0.200, Done: func(now float64) { phase2Start = now }})
	eng.Run()
	// Phase 2: after idling several decay periods, a fresh competitor
	// and the... (the first job completed; submit two equal jobs — one
	// "aged" queue state must not leak into the fresh node state).
	eng.RunUntil(phase2Start + 1.0)
	n.Submit(Job{CPUTime: 0.010, Done: func(now float64) { phase2Done = now }})
	eng.Run()
	if got := phase2Done - (phase2Start + 1.0); got > 0.012 {
		t.Fatalf("fresh job after idle took %v, want ~10ms", got)
	}
}

func TestLevelClamping(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.ReadyLevels = 4 // tiny MLFQ: estcpu must clamp to the last level
	n := newTestNode(t, eng, cfg)
	done := 0
	n.Submit(Job{CPUTime: 2.0, Done: func(float64) { done++ }})
	n.Submit(Job{CPUTime: 0.001, Done: func(float64) { done++ }})
	eng.Run()
	if done != 2 {
		t.Fatalf("%d jobs completed with clamped levels", done)
	}
}

func TestInterleavedIOKeepsPriority(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(t, eng, DefaultConfig())
	// An I/O-heavy job uses little CPU per cycle, so it must keep high
	// priority and not starve behind a CPU hog (the classic interactive
	// vs batch distinction the BSD scheduler encodes).
	var ioDone, hogDone float64
	n.Submit(Job{CPUTime: 0.300, Done: func(now float64) { hogDone = now }})
	n.Submit(Job{CPUTime: 0.004, IOTime: 0.040, Done: func(now float64) { ioDone = now }})
	eng.Run()
	if ioDone >= hogDone {
		t.Fatalf("I/O-bound job (%v) finished after the CPU hog (%v)", ioDone, hogDone)
	}
	// The I/O job's response is near its own demand: CPU waits are one
	// quantum per cycle at worst.
	if ioDone > 0.044+25*0.0105 {
		t.Fatalf("I/O-bound job took %v", ioDone)
	}
}

func TestManyJobsFairness(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.ContextSwitch = 0
	n := newTestNode(t, eng, cfg)
	const k = 20
	finish := make([]float64, 0, k)
	for i := 0; i < k; i++ {
		n.Submit(Job{CPUTime: 0.050, Done: func(now float64) { finish = append(finish, now) }})
	}
	eng.Run()
	// Equal jobs submitted together finish within ~2 quanta of each
	// other at the end of the k·50ms batch.
	last := finish[len(finish)-1]
	if last < 0.999 || last > 1.001 {
		t.Fatalf("batch finished at %v, want 1.0s", last)
	}
	// In the final round-robin cycle jobs complete one quantum apart,
	// so the spread is bounded by k·quantum.
	first := finish[0]
	if last-first > float64(k)*0.0105 {
		t.Fatalf("equal jobs spread %v apart, beyond one RR cycle", last-first)
	}
	if first < last-float64(k)*0.0105 {
		t.Fatalf("first finisher %v implausibly early", first)
	}
}
