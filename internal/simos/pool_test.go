package simos

// Regression tests for the zero-allocation node internals: the process
// free list, the ring-buffer queues (which must not retain popped
// pointers the way the old append+[1:] reslicing did), and the
// steady-state burst loop.

import (
	"testing"

	"msweb/internal/sim"
)

// ringSlots counts non-nil pointers held anywhere in the node's queue
// backing arrays and scratch buffer, beyond the first live elements.
func retainedPointers(n *Node) int {
	held := 0
	for l := range n.ready {
		q := &n.ready[l]
		for i := q.n; i < len(q.buf); i++ {
			if q.buf[(q.head+i)&(len(q.buf)-1)] != nil {
				held++
			}
		}
	}
	for i := n.diskQ.n; i < len(n.diskQ.buf); i++ {
		if n.diskQ.buf[(n.diskQ.head+i)&(len(n.diskQ.buf)-1)] != nil {
			held++
		}
	}
	for _, p := range n.decayScratch[:cap(n.decayScratch)] {
		if p != nil {
			held++
		}
	}
	return held
}

// TestQueuePopsRetainNoPointers runs a contended mixed workload — deep
// ready queues, a busy disk queue, decay ticks — and then verifies no
// vacated queue slot still references a process. The old slice-based
// queues failed this: popping with q = q[1:] left every popped pointer
// live in the backing array.
func TestQueuePopsRetainNoPointers(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(t, eng, DefaultConfig())
	done := 0
	for i := 0; i < 40; i++ {
		n.Submit(Job{CPUTime: 0.030, IOTime: 0.008, Done: func(float64) { done++ }})
	}
	eng.Run()
	if done != 40 {
		t.Fatalf("completed %d of 40 jobs", done)
	}
	if held := retainedPointers(n); held != 0 {
		t.Fatalf("queue backing arrays retain %d popped *process pointers", held)
	}
}

// TestProcessPoolReuse pins that a finished process struct is recycled:
// the next Submit must pop it from the free list rather than allocate.
func TestProcessPoolReuse(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(t, eng, DefaultConfig())
	n.Submit(Job{CPUTime: 0.005})
	eng.Run()
	if len(n.freeProcs) != 1 {
		t.Fatalf("free list holds %d processes after one completion, want 1", len(n.freeProcs))
	}
	recycled := n.freeProcs[0]
	if recycled.job.Done != nil || recycled.job.DoneCall != nil || recycled.estcpu != 0 {
		t.Fatalf("pooled process not zeroed: %+v", recycled)
	}
	n.Submit(Job{CPUTime: 0.005})
	if len(n.freeProcs) != 0 {
		t.Fatalf("Submit allocated a fresh process with %d pooled", len(n.freeProcs)+1)
	}
	if n.running != recycled && n.popPeek() != recycled {
		t.Fatal("Submit did not reuse the pooled process struct")
	}
	eng.Run()
}

// popPeek returns the process a popReady would return, for tests.
func (n *Node) popPeek() *process {
	for l := range n.ready {
		if n.ready[l].n > 0 {
			return n.ready[l].at(0)
		}
	}
	return nil
}

// TestRecycledProcessChargesContextSwitch guards the pooling/identity
// interaction: the context-switch charge compares process pointers, so a
// recycled struct must not be mistaken for the process that last held
// the CPU. Two sequential jobs always cost two switches even when the
// second reuses the first's struct.
func TestRecycledProcessChargesContextSwitch(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(t, eng, DefaultConfig())
	n.Submit(Job{CPUTime: 0.005})
	eng.Run()
	n.Submit(Job{CPUTime: 0.005})
	eng.Run()
	if got := n.Stats().ContextSwitches; got != 2 {
		t.Fatalf("ContextSwitches = %d, want 2 (recycled struct impersonated lastRun?)", got)
	}
}

// TestDrainRecyclesQueuedProcesses pins the Drain pooling contract:
// queued processes return to the free list immediately, while the
// running and disk-serving processes are recycled only when their
// in-flight burst events fire and hit the epoch check.
func TestDrainRecyclesQueuedProcesses(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(t, eng, DefaultConfig())
	for i := 0; i < 6; i++ {
		n.Submit(Job{CPUTime: 0.050, IOTime: 0.004})
	}
	eng.RunUntil(0.025) // a running process, maybe a disk burst, queued remainder
	inflight := 0
	if n.running != nil {
		inflight++
	}
	if n.diskCur != nil {
		inflight++
	}
	if inflight == 0 {
		t.Fatal("nothing in service at drain time; test needs in-flight bursts")
	}
	jobs := n.Drain()
	if len(jobs) != 6 {
		t.Fatalf("Drain returned %d jobs, want 6", len(jobs))
	}
	if got, want := len(n.freeProcs), 6-inflight; got != want {
		t.Fatalf("free list holds %d right after Drain, want %d (queued only)", got, want)
	}
	eng.Run() // stale burst events fire and recycle running/diskCur
	if len(n.freeProcs) != 6 {
		t.Fatalf("free list holds %d after stale events fired, want 6", len(n.freeProcs))
	}
	if held := retainedPointers(n); held != 0 {
		t.Fatalf("queues retain %d pointers after Drain", held)
	}
}

// TestSteadyStateBurstLoopAllocatesNothing is the node-level
// zero-allocation pin: once the pools are warm, a full job lifecycle —
// Submit, CPU bursts, disk bursts, completion through the typed DoneCall
// path — allocates nothing.
func TestSteadyStateBurstLoopAllocatesNothing(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(t, eng, DefaultConfig())
	completions := 0
	onDone := func(any, float64) { completions++ }
	job := Job{CPUTime: 0.025, IOTime: 0.006, MemPages: 64, DoneCall: onDone}
	for i := 0; i < 8; i++ { // warm the process pool, rings, event slab
		n.Submit(job)
	}
	eng.Run()
	avg := testing.AllocsPerRun(50, func() {
		n.Submit(job)
		eng.Run()
	})
	if avg != 0 {
		t.Fatalf("steady-state burst loop allocates %.1f per job, want 0", avg)
	}
	if completions != 59 { // 8 warmup + AllocsPerRun's 1 warmup + 50 measured
		t.Fatalf("completed %d jobs, want 59", completions)
	}
}
