// Package simos models the operating system of one cluster node at the
// fidelity of the paper's simulator (Section 5.1): a UNIX BSD-4.3-style
// CPU scheduler with a multilevel feedback ready queue and periodic
// priority decay, a round-robin disk queue, and a demand-paged memory
// manager stressed by working-set allocations. Each Web request becomes a
// job: an alternating sequence of CPU bursts and page-I/O bursts derived
// from its service demand and CPU weight.
//
// The published simulation constants are the defaults: 10 ms CPU quantum,
// 100 ms priority-update period, 50 µs context switch, 3 ms fork, 8 KB
// pages, and 2 ms average page-I/O burst.
//
// Allocation discipline. A node simulates millions of CPU and disk
// bursts per run, so the steady-state burst loop allocates nothing:
// finished processes recycle through a per-node free list, the ready and
// disk queues are ring buffers that neither strand capacity nor retain
// popped pointers, burst completions are scheduled through the engine's
// typed-event form (sim.AfterCall) with handlers bound once at node
// construction, and the priority decay reuses a node-owned scratch
// buffer. A uint64-per-64-levels occupancy bitmask makes the MLFQ pop a
// trailing-zeros count instead of a level scan.
package simos

import (
	"fmt"
	"math"
	"math/bits"

	"msweb/internal/metrics"
	"msweb/internal/obs"
	"msweb/internal/sim"
)

// Config holds the OS model parameters of one node.
type Config struct {
	// CPUQuantum is the scheduling quantum in seconds (paper: 10 ms).
	CPUQuantum float64
	// PriorityUpdate is the priority-decay period (paper: 100 ms).
	PriorityUpdate float64
	// ContextSwitch is the switch overhead in seconds (paper: 50 µs).
	ContextSwitch float64
	// ForkOverhead is process-creation CPU cost (paper: 3 ms); charged
	// to jobs submitted with Fork set (CGI requests).
	ForkOverhead float64
	// PageIOTime is the mean disk burst per page (paper: 2 ms).
	PageIOTime float64
	// PageSize is the VM page size in bytes (paper: 8 KB).
	PageSize int64
	// TotalPages is physical memory in pages (default 65536 = 512 MB,
	// matching the high-end server calibration of the 1200 req/s
	// SPECweb96 node capability).
	TotalPages int
	// SpeedFactor scales CPU speed for the heterogeneous-cluster
	// extension; 1.0 is the homogeneous baseline.
	SpeedFactor float64
	// ReadyLevels is the number of multilevel-feedback priority levels.
	ReadyLevels int
}

// DefaultConfig returns the paper's Section 5.2.1 parameter setting.
func DefaultConfig() Config {
	return Config{
		CPUQuantum:     0.010,
		PriorityUpdate: 0.100,
		ContextSwitch:  0.000050,
		ForkOverhead:   0.003,
		PageIOTime:     0.002,
		PageSize:       8192,
		TotalPages:     65536,
		SpeedFactor:    1.0,
		ReadyLevels:    32,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.CPUQuantum <= 0:
		return fmt.Errorf("simos: CPU quantum %v must be positive", c.CPUQuantum)
	case c.PriorityUpdate <= 0:
		return fmt.Errorf("simos: priority update period %v must be positive", c.PriorityUpdate)
	case c.ContextSwitch < 0 || c.ForkOverhead < 0:
		return fmt.Errorf("simos: negative overhead")
	case c.PageIOTime <= 0:
		return fmt.Errorf("simos: page I/O time %v must be positive", c.PageIOTime)
	case c.TotalPages <= 0:
		return fmt.Errorf("simos: node needs memory pages")
	case c.SpeedFactor <= 0:
		return fmt.Errorf("simos: speed factor %v must be positive", c.SpeedFactor)
	case c.ReadyLevels < 1:
		return fmt.Errorf("simos: need at least one ready level")
	}
	return nil
}

// Job describes one request's work. The node turns it into a process
// whose execution alternates CPU bursts with page-I/O bursts:
// IOOps disk operations with IOOps+1 CPU chunks between them, so an
// unloaded node completes the job in exactly CPUTime + IOTime (+ fork).
type Job struct {
	// CPUTime is total CPU demand in seconds.
	CPUTime float64
	// IOTime is total disk demand in seconds; the node splits it into
	// bursts of ~PageIOTime.
	IOTime float64
	// MemPages is the process working set; the VM manager grants pages
	// from the free list and converts any deficit into page-in I/O.
	MemPages int
	// Fork marks process creation (CGI): adds ForkOverhead of CPU.
	Fork bool
	// TraceID, when non-zero, identifies the request in the node's
	// tracer output: each CPU and disk burst of the job is emitted as a
	// phase event tagged with this id.
	TraceID int64
	// Done is invoked at completion with the completion time.
	Done func(now float64)
	// DoneCall, with DoneArg, is the allocation-free completion form:
	// when Done is nil and DoneCall is non-nil, completion invokes
	// DoneCall(DoneArg, now). Hot submitters bind the handler once and
	// thread per-request state through DoneArg instead of building a
	// closure per job.
	DoneCall func(arg any, now float64)
	// DoneArg is the state passed to DoneCall.
	DoneArg any
}

// process is the in-flight representation of a job.
type process struct {
	job      Job
	cpuChunk float64 // full size of each CPU chunk
	curCPU   float64 // remaining CPU in the current chunk
	ioLeft   int     // disk bursts still to perform
	ioBurst  float64 // size of each disk burst
	estcpu   float64 // BSD estcpu: decayed count of consumed quanta
	granted  int     // memory pages granted from the free list
	deficit  int     // pages the free list could not supply
	// refaultEvery injects one page-in per that many completed CPU
	// chunks while memory stays exhausted: the working-set touches of a
	// partially-resident process keep faulting.
	refaultEvery int
	chunksDone   int
	refaults     int // bounded by refaultCap so a starved node cannot livelock
	refaultCap   int
	epoch        uint64 // node epoch at submission; stale after Drain
}

// procRing is a growable power-of-two FIFO ring of processes. Unlike the
// append+[1:] reslice it replaces, popping clears the vacated slot (no
// retained *process pointers keeping dead jobs alive) and the backing
// array is reused forever instead of stranding capacity behind an
// advancing slice head.
type procRing struct {
	buf  []*process
	head int
	n    int
}

func (r *procRing) len() int { return r.n }

// push appends p at the tail, growing the ring when full.
func (r *procRing) push(p *process) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = p
	r.n++
}

// pop removes and returns the oldest process, clearing the slot so the
// ring keeps no reference to it.
func (r *procRing) pop() *process {
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return p
}

// at returns the i-th oldest process without removing it.
func (r *procRing) at(i int) *process {
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}

func (r *procRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	buf := make([]*process, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = buf, 0
}

// Stats are cumulative node counters.
type Stats struct {
	Submitted       uint64
	Completed       uint64
	ContextSwitches uint64
	Forks           uint64
	PageFaults      uint64 // page-ins forced by free-list deficit
	Aborted         uint64 // processes lost to Drain (node failure)
	DiskOps         uint64
	CPUBusy         float64 // integrated busy seconds
	DiskBusy        float64
}

// Node is one simulated cluster machine.
type Node struct {
	ID  int
	cfg Config
	eng *sim.Engine

	ready []procRing // multilevel feedback queue, level 0 best
	// readyMask is the occupancy bitmask over ready levels (bit l%64 of
	// word l/64 set ⇔ level l non-empty), so popReady is a
	// trailing-zeros count instead of a level scan.
	readyMask []uint64
	running   *process
	lastRun   *process
	cpuBusy   bool
	diskQ     procRing // round-robin disk queue
	diskCur   *process // process whose burst the disk is serving
	diskBusy  bool

	freePages int

	cpuUtil    *metrics.UtilizationTracker
	diskUtil   *metrics.UtilizationTracker
	stats      Stats
	active     int // live processes; the decay timer runs only when > 0
	decayArmed bool
	epoch      uint64 // bumped by Drain; in-flight events of old epochs are ignored

	// freeProcs recycles finished process structs so steady-state
	// Submit allocates nothing.
	freeProcs []*process
	// decayScratch is reused by decayPriorities for the requeue pass.
	decayScratch []*process

	// Typed-event handlers, bound once here so every burst schedules
	// through sim.AfterCall without a closure allocation.
	cpuDoneC  sim.CallFunc
	diskDoneC sim.CallFunc
	decayC    sim.CallFunc

	// tracer, when non-nil, receives a phase event per completed CPU and
	// disk burst of jobs carrying a TraceID. Disabled tracing costs one
	// nil check per burst.
	tracer obs.Tracer
}

// NewNode creates a node. The BSD priority-decay timer is armed lazily
// while the node has live processes so an idle node schedules no events
// and a simulation drains naturally.
func NewNode(eng *sim.Engine, id int, cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Node{
		ID:        id,
		cfg:       cfg,
		eng:       eng,
		ready:     make([]procRing, cfg.ReadyLevels),
		readyMask: make([]uint64, (cfg.ReadyLevels+63)/64),
		freePages: cfg.TotalPages,
		cpuUtil:   metrics.NewUtilizationTracker(eng.Now()),
		diskUtil:  metrics.NewUtilizationTracker(eng.Now()),
	}
	n.cpuDoneC = n.cpuDoneCall
	n.diskDoneC = n.diskDoneCall
	n.decayC = n.decayTick
	return n, nil
}

func (n *Node) armDecay() {
	if n.decayArmed {
		return
	}
	n.decayArmed = true
	n.eng.AfterCall(n.cfg.PriorityUpdate, n.decayC, nil, 0)
}

// decayTick is the typed-event handler of the priority-update timer.
func (n *Node) decayTick(any, float64) {
	n.decayArmed = false
	n.decayPriorities()
	if n.active > 0 {
		n.armDecay()
	}
}

// Stats returns a copy of the node's counters with busy-time integrals
// up to the current simulation time.
func (n *Node) Stats() Stats {
	st := n.stats
	now := n.eng.Now()
	st.CPUBusy = n.cpuUtil.BusyFraction(now) * now
	st.DiskBusy = n.diskUtil.BusyFraction(now) * now
	return st
}

// Config returns the node's configuration.
func (n *Node) Config() Config { return n.cfg }

// SetTracer installs (or, with nil, removes) the observability tracer
// receiving per-burst phase events for traced jobs.
func (n *Node) SetTracer(t obs.Tracer) { n.tracer = t }

// FreePages returns the current free-list size.
func (n *Node) FreePages() int { return n.freePages }

// QueueLengths returns the ready-queue and disk-queue populations,
// counting the running and in-service processes.
func (n *Node) QueueLengths() (cpu, disk int) {
	for l := range n.ready {
		cpu += n.ready[l].len()
	}
	if n.running != nil {
		cpu++
	}
	disk = n.diskQ.len()
	if n.diskBusy {
		disk++
	}
	return cpu, disk
}

// newProcess pops a recycled process (zeroed) or allocates one.
func (n *Node) newProcess() *process {
	if k := len(n.freeProcs); k > 0 {
		p := n.freeProcs[k-1]
		n.freeProcs[k-1] = nil
		n.freeProcs = n.freeProcs[:k-1]
		return p
	}
	return &process{}
}

// releaseProcess zeroes p — dropping the Job and its completion
// references — and returns it to the node pool. The caller must hold the
// only live reference: a process is released exactly once, at finish or
// when its stale (post-Drain) burst event is swallowed.
func (n *Node) releaseProcess(p *process) {
	if n.lastRun == p {
		// The context-switch charge compares process identity; a
		// recycled struct must not impersonate the process that last
		// held the CPU.
		n.lastRun = nil
	}
	*p = process{}
	n.freeProcs = append(n.freeProcs, p)
}

// Submit accepts a job for execution.
func (n *Node) Submit(j Job) {
	if j.CPUTime < 0 || j.IOTime < 0 || math.IsNaN(j.CPUTime) || math.IsNaN(j.IOTime) {
		panic(fmt.Sprintf("simos: invalid job %+v", j))
	}
	n.stats.Submitted++
	n.active++
	n.armDecay()
	p := n.newProcess()
	p.job = j
	p.epoch = n.epoch

	// Decompose demand into bursts. IOTime splits into ~PageIOTime
	// bursts; the CPU time splits into one chunk per gap so the
	// unloaded execution time is exactly CPUTime + IOTime.
	if j.IOTime > 0 {
		p.ioLeft = int(math.Round(j.IOTime / n.cfg.PageIOTime))
		if p.ioLeft < 1 {
			p.ioLeft = 1
		}
		p.ioBurst = j.IOTime / float64(p.ioLeft)
	}
	cpu := j.CPUTime
	if j.Fork {
		cpu += n.cfg.ForkOverhead
		n.stats.Forks++
	}
	p.cpuChunk = cpu / float64(p.ioLeft+1)
	p.curCPU = p.cpuChunk

	// Memory: grant from the free list; the deficit becomes page-in
	// I/O (demand paging against a stressed free list).
	if j.MemPages > 0 {
		p.granted = j.MemPages
		if p.granted > n.freePages {
			deficit := p.granted - n.freePages
			p.granted = n.freePages
			p.deficit = deficit
			n.stats.PageFaults += uint64(deficit)
			extra := deficit
			if cap := 2*p.ioLeft + 16; extra > cap {
				// Cap runaway paging so one huge allocation cannot
				// wedge the disk for the whole simulation.
				extra = cap
			}
			p.ioLeft += extra
			if p.ioBurst == 0 {
				p.ioBurst = n.cfg.PageIOTime
			}
			// Working-set refaults: the larger the unfunded fraction,
			// the more often execution touches a missing page. The
			// budget carries the same runaway cap as the initial
			// page-ins.
			funded := p.granted
			if funded < 1 {
				funded = 1
			}
			p.refaultEvery = funded/deficit + 1
			p.refaultCap = extra
		}
		n.freePages -= p.granted
	}

	n.enqueueReady(p)
	n.dispatchCPU()
}

// level maps estcpu to a feedback-queue level: each consumed quantum
// pushes the process down; the 100 ms decay pulls it back up.
func (n *Node) level(p *process) int {
	l := int(p.estcpu)
	if l >= n.cfg.ReadyLevels {
		l = n.cfg.ReadyLevels - 1
	}
	if l < 0 {
		l = 0
	}
	return l
}

func (n *Node) enqueueReady(p *process) {
	l := n.level(p)
	n.ready[l].push(p)
	n.readyMask[l>>6] |= 1 << uint(l&63)
}

// popReady removes the best-priority, oldest process: the lowest set bit
// of the occupancy mask names the first non-empty level.
func (n *Node) popReady() *process {
	for w, m := range n.readyMask {
		if m == 0 {
			continue
		}
		l := w<<6 | bits.TrailingZeros64(m)
		q := &n.ready[l]
		p := q.pop()
		if q.n == 0 {
			n.readyMask[w] = m &^ (1 << uint(l&63))
		}
		return p
	}
	return nil
}

func (n *Node) decayPriorities() {
	// BSD-style decay: halve estcpu, then rebuild the level queues so
	// waiting processes migrate back toward the top. The drain-requeue
	// pass runs through a node-owned scratch buffer (a fresh slice here
	// would be one allocation per 100 ms of virtual time per node).
	procs := n.decayScratch[:0]
	for l := range n.ready {
		q := &n.ready[l]
		for q.n > 0 {
			procs = append(procs, q.pop())
		}
	}
	for w := range n.readyMask {
		n.readyMask[w] = 0
	}
	for _, p := range procs {
		p.estcpu /= 2
		n.enqueueReady(p)
	}
	for i := range procs {
		procs[i] = nil // scratch must not pin processes between ticks
	}
	n.decayScratch = procs[:0]
	if n.running != nil {
		n.running.estcpu /= 2
	}
	for i := 0; i < n.diskQ.len(); i++ {
		n.diskQ.at(i).estcpu /= 2
	}
}

// dispatchCPU starts the next ready process if the CPU is free.
func (n *Node) dispatchCPU() {
	if n.cpuBusy {
		return
	}
	p := n.popReady()
	if p == nil {
		return
	}
	n.cpuBusy = true
	n.running = p
	n.cpuUtil.SetBusy(n.eng.Now(), true)

	overhead := 0.0
	if n.lastRun != p {
		overhead = n.cfg.ContextSwitch
		n.stats.ContextSwitches++
	}
	n.lastRun = p

	slice := n.cfg.CPUQuantum
	if p.curCPU < slice {
		slice = p.curCPU
	}
	wall := overhead + slice/n.cfg.SpeedFactor
	n.eng.AfterCall(wall, n.cpuDoneC, p, slice)
}

// cpuDoneCall unpacks the typed burst-completion event.
func (n *Node) cpuDoneCall(arg any, slice float64) { n.cpuDone(arg.(*process), slice) }

func (n *Node) cpuDone(p *process, slice float64) {
	if p.epoch != n.epoch {
		// Node failed while this burst was in flight. The event held
		// the last live reference to the aborted process; recycle it.
		n.releaseProcess(p)
		return
	}
	n.cpuBusy = false
	n.running = nil
	n.cpuUtil.SetBusy(n.eng.Now(), false)

	if n.tracer != nil && p.job.TraceID != 0 {
		n.tracer.Emit(obs.Event{
			Kind: obs.KindPhaseCPU, Req: p.job.TraceID,
			Time: n.eng.Now(), Node: n.ID, Value: slice,
		})
	}

	p.curCPU -= slice
	p.estcpu += slice / n.cfg.CPUQuantum

	const eps = 1e-12
	if p.curCPU > eps {
		// Quantum expired mid-chunk: back to the feedback queue.
		n.enqueueReady(p)
	} else {
		// Chunk complete: while the node's memory stays exhausted, a
		// partially-resident working set keeps refaulting.
		p.chunksDone++
		if p.refaultEvery > 0 && n.freePages == 0 &&
			p.chunksDone%p.refaultEvery == 0 && p.refaults < p.refaultCap {
			p.ioLeft++
			p.refaults++
			n.stats.PageFaults++
		}
		if p.ioLeft > 0 {
			n.enqueueDisk(p)
		} else {
			n.finish(p)
		}
	}
	n.dispatchCPU()
}

func (n *Node) enqueueDisk(p *process) {
	n.diskQ.push(p)
	n.dispatchDisk()
}

// dispatchDisk serves the disk queue round-robin: one burst per process
// per turn (each process only ever has one burst queued at a time, so
// FIFO order realizes round robin).
func (n *Node) dispatchDisk() {
	if n.diskBusy || n.diskQ.len() == 0 {
		return
	}
	p := n.diskQ.pop()
	n.diskCur = p
	n.diskBusy = true
	n.diskUtil.SetBusy(n.eng.Now(), true)
	n.eng.AfterCall(p.ioBurst, n.diskDoneC, p, 0)
}

// diskDoneCall unpacks the typed disk-burst-completion event.
func (n *Node) diskDoneCall(arg any, _ float64) { n.diskDone(arg.(*process)) }

func (n *Node) diskDone(p *process) {
	if p.epoch != n.epoch {
		// Node failed while this burst was in flight; see cpuDone.
		n.releaseProcess(p)
		return
	}
	n.diskCur = nil
	n.diskBusy = false
	n.diskUtil.SetBusy(n.eng.Now(), false)
	n.stats.DiskOps++

	if n.tracer != nil && p.job.TraceID != 0 {
		n.tracer.Emit(obs.Event{
			Kind: obs.KindPhaseDisk, Req: p.job.TraceID,
			Time: n.eng.Now(), Node: n.ID, Value: p.ioBurst,
		})
	}

	p.ioLeft--
	const eps = 1e-12
	switch {
	case p.ioLeft == 0 && p.cpuChunk <= eps:
		n.finish(p)
	case p.ioLeft > 0 && p.cpuChunk <= eps:
		// Pure-I/O stretches (e.g. page-in backlogs) skip the zero
		// CPU chunk and go straight back to the device queue.
		n.enqueueDisk(p)
	default:
		p.curCPU = p.cpuChunk
		n.enqueueReady(p)
		n.dispatchCPU()
	}
	n.dispatchDisk()
}

func (n *Node) finish(p *process) {
	if p.granted > 0 {
		n.freePages += p.granted
		p.granted = 0
	}
	n.stats.Completed++
	n.active--
	// Recycle before notifying: the completion hook may immediately
	// Submit a follow-up job (closed-loop sessions) and should find
	// this struct back in the pool. p is dead past this point.
	done, doneCall, doneArg := p.job.Done, p.job.DoneCall, p.job.DoneArg
	n.releaseProcess(p)
	switch {
	case done != nil:
		done(n.eng.Now())
	case doneCall != nil:
		doneCall(doneArg, n.eng.Now())
	}
}

// Drain models a node crash (or a non-dedicated node being reclaimed):
// every in-flight process is aborted and its original Job returned so
// the cluster can restart the work elsewhere, as the paper's master
// does when a slave fails. Memory returns to the free list; in-flight
// device bursts are discarded.
//
// Queued processes recycle into the node pool immediately. The running
// and disk-serving processes do not: their burst-completion events are
// still in flight holding the pointers, so the epoch check in
// cpuDone/diskDone recycles them when those events fire.
func (n *Node) Drain() []Job {
	var jobs []Job
	collect := func(p *process) {
		if p.granted > 0 {
			n.freePages += p.granted
			p.granted = 0
		}
		jobs = append(jobs, p.job)
	}
	for l := range n.ready {
		q := &n.ready[l]
		for q.n > 0 {
			p := q.pop()
			collect(p)
			n.releaseProcess(p)
		}
	}
	for w := range n.readyMask {
		n.readyMask[w] = 0
	}
	for n.diskQ.len() > 0 {
		p := n.diskQ.pop()
		collect(p)
		n.releaseProcess(p)
	}
	if n.running != nil {
		collect(n.running)
		n.running = nil
	}
	if n.diskCur != nil {
		collect(n.diskCur)
		n.diskCur = nil
	}
	n.epoch++
	n.cpuBusy = false
	n.diskBusy = false
	n.lastRun = nil
	n.cpuUtil.SetBusy(n.eng.Now(), false)
	n.diskUtil.SetBusy(n.eng.Now(), false)
	n.active -= len(jobs)
	n.stats.Aborted += uint64(len(jobs))
	return jobs
}

// CPUIdleRatio returns the idle fraction of the CPU since the previous
// load sample — the rstat()-style load index the RSRC formula consumes.
// Sampling resets the measurement window.
func (n *Node) CPUIdleRatio() float64 {
	return 1 - n.cpuUtil.WindowSample(n.eng.Now())
}

// DiskAvailRatio returns the available fraction of disk bandwidth since
// the previous load sample, resetting the window.
func (n *Node) DiskAvailRatio() float64 {
	return 1 - n.diskUtil.WindowSample(n.eng.Now())
}

// BusyFractions returns lifetime CPU and disk busy fractions, used by
// experiment reports.
func (n *Node) BusyFractions() (cpu, disk float64) {
	now := n.eng.Now()
	return n.cpuUtil.BusyFraction(now), n.diskUtil.BusyFraction(now)
}
