package simos

import (
	"testing"

	"msweb/internal/sim"
)

func TestDrainReturnsOutstandingJobs(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(t, eng, DefaultConfig())
	completed := 0
	for i := 0; i < 5; i++ {
		n.Submit(Job{CPUTime: 0.050, MemPages: 10, Done: func(float64) { completed++ }})
	}
	eng.RunUntil(0.020) // partway through the first job
	jobs := n.Drain()
	if len(jobs) != 5 {
		t.Fatalf("Drain returned %d jobs, want 5", len(jobs))
	}
	if completed != 0 {
		t.Fatalf("%d jobs completed before the crash", completed)
	}
	if n.Stats().Aborted != 5 {
		t.Fatalf("Aborted = %d, want 5", n.Stats().Aborted)
	}
}

func TestDrainReleasesMemory(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.TotalPages = 500
	n := newTestNode(t, eng, cfg)
	n.Submit(Job{CPUTime: 0.050, MemPages: 300})
	eng.RunUntil(0.010)
	if n.FreePages() != 200 {
		t.Fatalf("free pages before drain = %d", n.FreePages())
	}
	n.Drain()
	if n.FreePages() != 500 {
		t.Fatalf("free pages after drain = %d, want 500", n.FreePages())
	}
}

func TestDrainedJobsDoNotComplete(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(t, eng, DefaultConfig())
	completed := 0
	n.Submit(Job{CPUTime: 0.030, IOTime: 0.010, Done: func(float64) { completed++ }})
	eng.RunUntil(0.005)
	n.Drain()
	eng.Run() // in-flight burst events of the old epoch must be ignored
	if completed != 0 {
		t.Fatalf("drained job completed %d times", completed)
	}
	cpu, disk := n.QueueLengths()
	if cpu != 0 || disk != 0 {
		t.Fatalf("queues after drain: cpu=%d disk=%d", cpu, disk)
	}
}

func TestNodeUsableAfterDrain(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(t, eng, DefaultConfig())
	n.Submit(Job{CPUTime: 0.050})
	eng.RunUntil(0.005)
	n.Drain()

	// The recovered node must execute new work normally.
	var done float64 = -1
	eng.Schedule(0.100, func() {
		n.Submit(Job{CPUTime: 0.010, Done: func(now float64) { done = now }})
	})
	eng.Run()
	if done < 0 {
		t.Fatal("post-drain job never completed")
	}
	if n.Stats().Completed != 1 {
		t.Fatalf("Completed = %d, want 1", n.Stats().Completed)
	}
}

func TestDrainResubmittedJobsComplete(t *testing.T) {
	// The cluster's failure handling: drain one node, resubmit the
	// returned jobs on another node; every job must complete exactly once.
	eng := sim.NewEngine()
	a := newTestNode(t, eng, DefaultConfig())
	b := newTestNode(t, eng, DefaultConfig())
	completed := 0
	for i := 0; i < 4; i++ {
		a.Submit(Job{CPUTime: 0.030, IOTime: 0.010, Done: func(float64) { completed++ }})
	}
	eng.RunUntil(0.010)
	for _, j := range a.Drain() {
		b.Submit(j)
	}
	eng.Run()
	if completed != 4 {
		t.Fatalf("completed %d jobs after migration, want 4", completed)
	}
}

func TestDrainIdleNode(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(t, eng, DefaultConfig())
	if jobs := n.Drain(); len(jobs) != 0 {
		t.Fatalf("idle drain returned %d jobs", len(jobs))
	}
}

func TestDrainClearsUtilization(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(t, eng, DefaultConfig())
	n.Submit(Job{CPUTime: 10})
	eng.RunUntil(0.050)
	n.Drain()
	eng.RunUntil(0.100)
	_ = n.CPUIdleRatio() // reset window
	eng.RunUntil(0.200)
	if idle := n.CPUIdleRatio(); idle < 0.99 {
		t.Fatalf("drained node still looks busy: idle=%v", idle)
	}
}
