package simos

import (
	"math"
	"testing"
	"testing/quick"

	"msweb/internal/obs"
	"msweb/internal/sim"
)

func newTestNode(t *testing.T, eng *sim.Engine, cfg Config) *Node {
	t.Helper()
	n, err := NewNode(eng, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.CPUQuantum = 0 },
		func(c *Config) { c.PriorityUpdate = 0 },
		func(c *Config) { c.ContextSwitch = -1 },
		func(c *Config) { c.ForkOverhead = -1 },
		func(c *Config) { c.PageIOTime = 0 },
		func(c *Config) { c.TotalPages = 0 },
		func(c *Config) { c.SpeedFactor = 0 },
		func(c *Config) { c.ReadyLevels = 0 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if c.Validate() == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestUnloadedCPUJobRunsInDemandTime(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.ContextSwitch = 0
	n := newTestNode(t, eng, cfg)
	var done float64 = -1
	n.Submit(Job{CPUTime: 0.035, Done: func(now float64) { done = now }})
	eng.Run()
	if !approx(done, 0.035, 1e-9) {
		t.Fatalf("CPU job finished at %v, want 0.035", done)
	}
}

func TestUnloadedMixedJobRunsInDemandTime(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.ContextSwitch = 0
	n := newTestNode(t, eng, cfg)
	var done float64 = -1
	// 10 ms CPU + 6 ms I/O → exactly 16 ms on an idle node.
	n.Submit(Job{CPUTime: 0.010, IOTime: 0.006, Done: func(now float64) { done = now }})
	eng.Run()
	if !approx(done, 0.016, 1e-9) {
		t.Fatalf("mixed job finished at %v, want 0.016", done)
	}
}

func TestForkOverheadCharged(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.ContextSwitch = 0
	n := newTestNode(t, eng, cfg)
	var done float64 = -1
	n.Submit(Job{CPUTime: 0.010, Fork: true, Done: func(now float64) { done = now }})
	eng.Run()
	if !approx(done, 0.013, 1e-9) {
		t.Fatalf("forked job finished at %v, want 0.013 (10ms + 3ms fork)", done)
	}
	if n.Stats().Forks != 1 {
		t.Fatalf("fork count = %d", n.Stats().Forks)
	}
}

func TestPureIOJob(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.ContextSwitch = 0
	n := newTestNode(t, eng, cfg)
	var done float64 = -1
	n.Submit(Job{IOTime: 0.009, Done: func(now float64) { done = now }})
	eng.Run()
	if !approx(done, 0.009, 1e-9) {
		t.Fatalf("pure I/O job finished at %v, want 0.009", done)
	}
	// 9 ms of I/O at ~2 ms bursts → 4 or 5 disk ops.
	if ops := n.Stats().DiskOps; ops < 4 || ops > 5 {
		t.Fatalf("disk ops = %d, want 4-5", ops)
	}
}

func TestZeroJobCompletes(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(t, eng, DefaultConfig())
	doneCount := 0
	n.Submit(Job{Done: func(float64) { doneCount++ }})
	eng.Run()
	if doneCount != 1 {
		t.Fatalf("zero job completed %d times", doneCount)
	}
}

func TestInvalidJobPanics(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(t, eng, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("negative CPU job accepted")
		}
	}()
	n.Submit(Job{CPUTime: -1})
}

func TestTwoCPUJobsShareProcessor(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.ContextSwitch = 0
	n := newTestNode(t, eng, cfg)
	var t1, t2 float64
	n.Submit(Job{CPUTime: 0.050, Done: func(now float64) { t1 = now }})
	n.Submit(Job{CPUTime: 0.050, Done: func(now float64) { t2 = now }})
	eng.Run()
	// Total CPU work is 100 ms; the later finisher must land at 100 ms,
	// the earlier one within a quantum of it (round-robin interleave).
	last := math.Max(t1, t2)
	first := math.Min(t1, t2)
	if !approx(last, 0.100, 1e-9) {
		t.Fatalf("last job finished at %v, want 0.100", last)
	}
	if first < 0.085 {
		t.Fatalf("first job finished at %v; round-robin should keep them within a quantum", first)
	}
}

func TestMLFQFavorsShortJobs(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	n := newTestNode(t, eng, cfg)
	var shortDone, longDone float64
	// A CPU hog starts first; a short (static-like) job arrives later.
	n.Submit(Job{CPUTime: 0.500, Done: func(now float64) { longDone = now }})
	eng.Schedule(0.200, func() {
		n.Submit(Job{CPUTime: 0.001, Done: func(now float64) { shortDone = now }})
	})
	eng.Run()
	// The hog has sunk to a low priority level by t=0.2; the short job
	// must complete promptly rather than waiting for the hog.
	if delay := shortDone - 0.200; delay > 0.015 {
		t.Fatalf("short job waited %v behind a CPU hog; MLFQ should favor it", delay)
	}
	if longDone < 0.5 {
		t.Fatalf("long job finished impossibly early at %v", longDone)
	}
}

func TestContextSwitchCounted(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(t, eng, DefaultConfig())
	n.Submit(Job{CPUTime: 0.030})
	n.Submit(Job{CPUTime: 0.030})
	eng.Run()
	st := n.Stats()
	// Interleaving two 3-quantum jobs forces several switches.
	if st.ContextSwitches < 3 {
		t.Fatalf("context switches = %d, want several", st.ContextSwitches)
	}
}

func TestContextSwitchAddsWallTime(t *testing.T) {
	run := func(cs float64) float64 {
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.ContextSwitch = cs
		n, _ := NewNode(eng, 0, cfg)
		var last float64
		for i := 0; i < 4; i++ {
			n.Submit(Job{CPUTime: 0.020, Done: func(now float64) { last = now }})
		}
		eng.Run()
		return last
	}
	without := run(0)
	with := run(0.001) // exaggerated 1 ms switches
	if with <= without {
		t.Fatalf("context switches added no wall time: %v vs %v", with, without)
	}
}

func TestMemoryGrantAndRelease(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.TotalPages = 1000
	n := newTestNode(t, eng, cfg)
	n.Submit(Job{CPUTime: 0.010, MemPages: 400})
	if n.FreePages() != 600 {
		t.Fatalf("free pages during run = %d, want 600", n.FreePages())
	}
	eng.Run()
	if n.FreePages() != 1000 {
		t.Fatalf("free pages after completion = %d, want 1000", n.FreePages())
	}
}

func TestMemoryDeficitCausesPaging(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.TotalPages = 100
	n := newTestNode(t, eng, cfg)
	var lean, starved float64
	n.Submit(Job{CPUTime: 0.010, MemPages: 90, Done: func(now float64) { lean = now }})
	n.Submit(Job{CPUTime: 0.010, MemPages: 90, Done: func(now float64) { starved = now }})
	eng.Run()
	st := n.Stats()
	if st.PageFaults != 80 {
		t.Fatalf("page faults = %d, want 80 (deficit of the second job)", st.PageFaults)
	}
	if starved <= lean {
		t.Fatalf("starved job (%v) should finish after the lean one (%v) due to page-in I/O", starved, lean)
	}
}

func TestPagingCapBoundsRunaway(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.TotalPages = 10
	n := newTestNode(t, eng, cfg)
	var done float64 = -1
	n.Submit(Job{CPUTime: 0.001, MemPages: 100000, Done: func(now float64) { done = now }})
	eng.Run()
	if done < 0 {
		t.Fatal("hugely overcommitted job never completed")
	}
	// The cap limits page-in I/O to 4·ioLeft+64 bursts.
	if done > 1.0 {
		t.Fatalf("overcommitted job took %v, paging cap failed", done)
	}
}

func TestDiskServesFIFORoundRobin(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.ContextSwitch = 0
	n := newTestNode(t, eng, cfg)
	var first, second float64
	// Two I/O-heavy jobs; round-robin should interleave their bursts so
	// they finish close together rather than strictly sequentially.
	n.Submit(Job{IOTime: 0.020, Done: func(now float64) { first = now }})
	n.Submit(Job{IOTime: 0.020, Done: func(now float64) { second = now }})
	eng.Run()
	gap := math.Abs(second - first)
	if gap > 0.004 {
		t.Fatalf("I/O jobs finished %v apart; round robin should interleave them", gap)
	}
	if last := math.Max(first, second); !approx(last, 0.040, 1e-9) {
		t.Fatalf("total disk time %v, want 0.040", last)
	}
}

func TestSpeedFactorScalesCPUOnly(t *testing.T) {
	run := func(speed float64) float64 {
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.ContextSwitch = 0
		cfg.SpeedFactor = speed
		n, _ := NewNode(eng, 0, cfg)
		var done float64
		n.Submit(Job{CPUTime: 0.040, IOTime: 0.010, Done: func(now float64) { done = now }})
		eng.Run()
		return done
	}
	base := run(1)
	fast := run(2)
	if !approx(base, 0.050, 1e-9) {
		t.Fatalf("base run = %v, want 0.050", base)
	}
	// CPU halves (0.020), I/O unchanged (0.010).
	if !approx(fast, 0.030, 1e-9) {
		t.Fatalf("2x run = %v, want 0.030", fast)
	}
}

func TestLoadRatiosReflectActivity(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	n := newTestNode(t, eng, cfg)
	// Saturate the CPU for the first 100 ms.
	n.Submit(Job{CPUTime: 0.100})
	eng.RunUntil(0.100)
	idle := n.CPUIdleRatio()
	if idle > 0.1 {
		t.Fatalf("CPU idle ratio %v during saturation, want ~0", idle)
	}
	disk := n.DiskAvailRatio()
	if disk < 0.9 {
		t.Fatalf("disk avail ratio %v with no I/O, want ~1", disk)
	}
	// Next window: idle.
	eng.RunUntil(0.300)
	if idle := n.CPUIdleRatio(); idle < 0.9 {
		t.Fatalf("CPU idle ratio %v after work drained, want ~1", idle)
	}
}

func TestQueueLengths(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(t, eng, DefaultConfig())
	for i := 0; i < 5; i++ {
		n.Submit(Job{CPUTime: 0.050})
	}
	cpu, disk := n.QueueLengths()
	if cpu != 5 {
		t.Fatalf("cpu queue = %d, want 5", cpu)
	}
	if disk != 0 {
		t.Fatalf("disk queue = %d, want 0", disk)
	}
	eng.Run()
	cpu, disk = n.QueueLengths()
	if cpu != 0 || disk != 0 {
		t.Fatalf("queues after drain: cpu=%d disk=%d", cpu, disk)
	}
}

func TestStatsConservation(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.ContextSwitch = 0
	n := newTestNode(t, eng, cfg)
	const jobs = 50
	totalCPU := 0.0
	completed := 0
	for i := 0; i < jobs; i++ {
		cpu := 0.001 * float64(i%7+1)
		totalCPU += cpu
		n.Submit(Job{CPUTime: cpu, IOTime: 0.002, Done: func(float64) { completed++ }})
	}
	eng.Run()
	st := n.Stats()
	if st.Submitted != jobs || st.Completed != jobs || completed != jobs {
		t.Fatalf("conservation: submitted=%d completed=%d callbacks=%d", st.Submitted, st.Completed, completed)
	}
	if !approx(st.CPUBusy, totalCPU, 1e-6) {
		t.Fatalf("CPU busy integral %v, want %v", st.CPUBusy, totalCPU)
	}
	if !approx(st.DiskBusy, float64(jobs)*0.002, 1e-6) {
		t.Fatalf("disk busy integral %v, want %v", st.DiskBusy, float64(jobs)*0.002)
	}
}

// Property: any batch of jobs eventually completes, exactly once each,
// and memory returns to its initial level.
func TestCompletionProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.TotalPages = 256
		n, err := NewNode(eng, 0, cfg)
		if err != nil {
			return false
		}
		want := 0
		got := 0
		for _, r := range raw {
			if want >= 40 {
				break
			}
			want++
			n.Submit(Job{
				CPUTime:  float64(r%50) / 1000,
				IOTime:   float64(r%30) / 1000,
				MemPages: int(r % 300),
				Fork:     r%2 == 0,
				Done:     func(float64) { got++ },
			})
		}
		eng.Run()
		return got == want && n.FreePages() == 256
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNewNodeRejectsBadConfig(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.CPUQuantum = -1
	if _, err := NewNode(eng, 0, cfg); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestPriorityDecayLetsHogRecover(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(t, eng, DefaultConfig())
	var hogDone float64
	n.Submit(Job{CPUTime: 0.300, Done: func(now float64) { hogDone = now }})
	// A stream of short jobs arrives; decay must still let the hog finish.
	for i := 1; i <= 20; i++ {
		at := float64(i) * 0.020
		eng.Schedule(at, func() { n.Submit(Job{CPUTime: 0.002}) })
	}
	eng.Run()
	if hogDone <= 0 {
		t.Fatal("CPU hog starved forever")
	}
	// Work conservation bound: total work is 0.300 + 20·0.002 = 0.340
	// plus switches; the hog cannot finish later than the drain point.
	if hogDone > 0.40 {
		t.Fatalf("hog finished at %v, far beyond total work", hogDone)
	}
}

func TestWorkingSetRefaults(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.TotalPages = 100
	n := newTestNode(t, eng, cfg)
	// A resident hog exhausts memory for the whole run; the starved
	// job's working set keeps refaulting while it executes.
	n.Submit(Job{CPUTime: 1.0, MemPages: 100})
	var starvedDone float64 = -1
	n.Submit(Job{CPUTime: 0.050, IOTime: 0.010, MemPages: 50,
		Done: func(now float64) { starvedDone = now }})
	eng.Run()
	if starvedDone < 0 {
		t.Fatal("starved job never completed (refault livelock?)")
	}
	st := n.Stats()
	// Initial deficit 50 plus at least one execution-time refault.
	if st.PageFaults <= 50 {
		t.Fatalf("page faults = %d, want > 50 (initial deficit plus refaults)", st.PageFaults)
	}
	// The livelock bound: at most deficit extra refaults.
	if st.PageFaults > 100 {
		t.Fatalf("page faults = %d, refaults unbounded", st.PageFaults)
	}
}

func TestNoRefaultsWhenMemoryFree(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(t, eng, DefaultConfig())
	n.Submit(Job{CPUTime: 0.100, IOTime: 0.020, MemPages: 100})
	eng.Run()
	if st := n.Stats(); st.PageFaults != 0 {
		t.Fatalf("page faults = %d on an uncontended node", st.PageFaults)
	}
}

// captureTracer records emitted events for assertions.
type captureTracer struct{ events []obs.Event }

func (c *captureTracer) Emit(ev obs.Event) { c.events = append(c.events, ev) }

func TestTracedJobEmitsPhases(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNode(t, eng, DefaultConfig())
	tr := &captureTracer{}
	n.SetTracer(tr)

	done := false
	n.Submit(Job{CPUTime: 0.02, IOTime: 0.004, TraceID: 42, Done: func(float64) { done = true }})
	// An untraced job on the same node must stay silent.
	n.Submit(Job{CPUTime: 0.01, Done: func(float64) {}})
	eng.Run()
	if !done {
		t.Fatal("traced job did not complete")
	}
	var cpu, disk float64
	var nCPU, nDisk int
	for _, ev := range tr.events {
		if ev.Req != 42 {
			t.Fatalf("event for untraced job: %+v", ev)
		}
		if ev.Node != 0 {
			t.Fatalf("event node %d, want 0", ev.Node)
		}
		switch ev.Kind {
		case obs.KindPhaseCPU:
			cpu += ev.Value
			nCPU++
		case obs.KindPhaseDisk:
			disk += ev.Value
			nDisk++
		default:
			t.Fatalf("unexpected kind %v", ev.Kind)
		}
	}
	if nCPU == 0 || nDisk == 0 {
		t.Fatalf("phases missing: %d cpu, %d disk", nCPU, nDisk)
	}
	if !approx(cpu, 0.02, 1e-9) {
		t.Fatalf("traced CPU %v, want 0.02", cpu)
	}
	if !approx(disk, 0.004, 1e-9) {
		t.Fatalf("traced disk %v, want 0.004", disk)
	}

	// Removing the tracer silences subsequent jobs.
	n.SetTracer(nil)
	before := len(tr.events)
	n.Submit(Job{CPUTime: 0.01, TraceID: 43, Done: func(float64) {}})
	eng.Run()
	if len(tr.events) != before {
		t.Fatal("events emitted after tracer removal")
	}
}
