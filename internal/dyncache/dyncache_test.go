package dyncache

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, capacity int, ttl float64) *Cache {
	t.Helper()
	c, err := New(capacity, ttl)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := New(10, 0); err == nil {
		t.Fatal("ttl 0 accepted")
	}
}

func TestHitAfterInsert(t *testing.T) {
	c := mustNew(t, 4, 10)
	k := Key{Script: 1, Param: 42}
	if c.Lookup(k, 0) {
		t.Fatal("hit on empty cache")
	}
	c.Insert(k, 1000, 0)
	if !c.Lookup(k, 5) {
		t.Fatal("miss on fresh entry")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestTTLExpiry(t *testing.T) {
	c := mustNew(t, 4, 10)
	k := Key{Script: 1, Param: 1}
	c.Insert(k, 100, 0)
	if !c.Lookup(k, 9.99) {
		t.Fatal("miss just before expiry")
	}
	if c.Lookup(k, 10) {
		t.Fatal("hit at expiry instant")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry retained: len=%d", c.Len())
	}
	if c.Stats().Expired != 1 {
		t.Fatalf("expired count = %d", c.Stats().Expired)
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustNew(t, 2, 100)
	a, b, d := Key{1, 1}, Key{1, 2}, Key{1, 3}
	c.Insert(a, 1, 0)
	c.Insert(b, 1, 1)
	c.Lookup(a, 2) // a becomes most recent
	c.Insert(d, 1, 3)
	if c.Lookup(b, 4) {
		t.Fatal("LRU victim b survived")
	}
	if !c.Lookup(a, 4) || !c.Lookup(d, 4) {
		t.Fatal("recently used entries evicted")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestReinsertRefreshesTTL(t *testing.T) {
	c := mustNew(t, 2, 10)
	k := Key{2, 7}
	c.Insert(k, 1, 0)
	c.Insert(k, 1, 8) // refresh
	if !c.Lookup(k, 15) {
		t.Fatal("refreshed entry expired early")
	}
	if c.Len() != 1 {
		t.Fatalf("duplicate entries: len=%d", c.Len())
	}
}

func TestInvalidate(t *testing.T) {
	c := mustNew(t, 8, 100)
	c.Insert(Key{1, 1}, 1, 0)
	c.Insert(Key{1, 2}, 1, 0)
	c.Insert(Key{2, 1}, 1, 0)
	c.Invalidate(Key{1, 1})
	if c.Lookup(Key{1, 1}, 1) {
		t.Fatal("invalidated key hit")
	}
	c.InvalidateScript(1)
	if c.Lookup(Key{1, 2}, 1) {
		t.Fatal("script invalidation missed an entry")
	}
	if !c.Lookup(Key{2, 1}, 1) {
		t.Fatal("script invalidation removed another script's entry")
	}
}

func TestHitRatio(t *testing.T) {
	c := mustNew(t, 4, 100)
	k := Key{1, 1}
	c.Lookup(k, 0) // miss
	c.Insert(k, 1, 0)
	c.Lookup(k, 1) // hit
	c.Lookup(k, 2) // hit
	if got := c.Stats().HitRatio(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit ratio = %v, want 2/3", got)
	}
	var empty Stats
	if empty.HitRatio() != 0 {
		t.Fatal("empty hit ratio not 0")
	}
}

// Property: the cache never exceeds its capacity and lookups never panic
// regardless of the operation sequence.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := mustNewQuick()
		now := 0.0
		for _, op := range ops {
			now += float64(op%7) / 10
			k := Key{Script: int(op % 3), Param: int64(op % 11)}
			if op%2 == 0 {
				c.Insert(k, int64(op), now)
			} else {
				c.Lookup(k, now)
			}
			if c.Len() > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func mustNewQuick() *Cache {
	c, err := New(4, 2)
	if err != nil {
		panic(err)
	}
	return c
}
