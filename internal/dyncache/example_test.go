package dyncache_test

import (
	"fmt"

	"msweb/internal/dyncache"
)

// A catalog search is generated once per TTL window; repeats are served
// from the cache.
func ExampleCache() {
	cache, err := dyncache.New(1024, 30 /* seconds */)
	if err != nil {
		panic(err)
	}
	key := dyncache.Key{Script: 3, Param: 42}

	now := 0.0
	if !cache.Lookup(key, now) {
		fmt.Println("miss: generate the page")
		cache.Insert(key, 8730, now)
	}
	if cache.Lookup(key, now+5) {
		fmt.Println("hit: serve cached copy")
	}
	if !cache.Lookup(key, now+31) {
		fmt.Println("expired: regenerate")
	}
	st := cache.Stats()
	fmt.Printf("hits=%d misses=%d ratio=%.2f\n", st.Hits, st.Misses, st.HitRatio())
	// Output:
	// miss: generate the page
	// hit: serve cached copy
	// expired: regenerate
	// hits=1 misses=2 ratio=0.33
}
