// Package dyncache implements the dynamic-content response cache of the
// paper's Swala lineage ("Cooperative Caching of Dynamic Content on a
// Distributed Web Server", which the paper cites as a compatible, simple
// extension to its scheduling scheme). Identical CGI invocations —
// same script, same parameters — can be answered from a cached response
// while it remains fresh, skipping content generation entirely.
//
// The cache is an LRU with per-entry TTL over virtual time. It is
// deliberately clock-agnostic: callers pass the current time, so the
// same implementation serves the discrete-event simulator (virtual
// seconds) and a wall-clock server.
package dyncache

import (
	"container/list"
	"fmt"
)

// Key identifies one cacheable CGI invocation.
type Key struct {
	Script int
	Param  int64
}

// entry is one cached response.
type entry struct {
	key     Key
	expires float64
	size    int64
	elem    *list.Element
}

// Stats counts cache activity.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Inserts   uint64
	Evictions uint64
	Expired   uint64
}

// HitRatio returns hits/(hits+misses), 0 when empty.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a fixed-capacity LRU of fresh dynamic responses. Not safe
// for concurrent use; the simulator is single-threaded and a live server
// should wrap it in a mutex.
type Cache struct {
	capacity int
	ttl      float64
	entries  map[Key]*entry
	lru      *list.List // front = most recent
	stats    Stats
}

// New creates a cache holding up to capacity entries, each fresh for
// ttl seconds. It returns an error for non-positive parameters.
func New(capacity int, ttl float64) (*Cache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("dyncache: capacity %d must be positive", capacity)
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("dyncache: ttl %v must be positive", ttl)
	}
	return &Cache{
		capacity: capacity,
		ttl:      ttl,
		entries:  make(map[Key]*entry),
		lru:      list.New(),
	}, nil
}

// Lookup reports whether a fresh response for key exists at time now,
// refreshing its LRU position on a hit. Expired entries are removed.
func (c *Cache) Lookup(key Key, now float64) bool {
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return false
	}
	if now >= e.expires {
		c.remove(e)
		c.stats.Expired++
		c.stats.Misses++
		return false
	}
	c.lru.MoveToFront(e.elem)
	c.stats.Hits++
	return true
}

// Insert stores a freshly generated response of the given size at time
// now, evicting the least recently used entry if full. Re-inserting an
// existing key refreshes its TTL.
func (c *Cache) Insert(key Key, size int64, now float64) {
	if e, ok := c.entries[key]; ok {
		e.expires = now + c.ttl
		e.size = size
		c.lru.MoveToFront(e.elem)
		return
	}
	for len(c.entries) >= c.capacity {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		c.remove(oldest.Value.(*entry))
		c.stats.Evictions++
	}
	e := &entry{key: key, expires: now + c.ttl, size: size}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.stats.Inserts++
}

// Invalidate drops one key (content changed at the source).
func (c *Cache) Invalidate(key Key) {
	if e, ok := c.entries[key]; ok {
		c.remove(e)
	}
}

// InvalidateScript drops every entry of one script.
func (c *Cache) InvalidateScript(script int) {
	for k, e := range c.entries {
		if k.Script == script {
			c.remove(e)
		}
	}
}

func (c *Cache) remove(e *entry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
}

// Len returns the number of cached entries (including possibly-expired
// ones not yet touched).
func (c *Cache) Len() int { return len(c.entries) }

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }
