package obs

import (
	"io"
	"math"
	"strconv"
)

// Prometheus text-format exposition helpers. The live cluster's
// /metrics endpoints are assembled from these; keeping the formatting
// here means every substrate exposes byte-identical conventions
// (shortest-round-trip floats, "+Inf" bounds, one TYPE header per
// metric family).

// PromWriter accumulates one exposition page. Errors are sticky and
// surfaced by Err, so handlers can chain writes without per-line checks.
type PromWriter struct {
	w   io.Writer
	buf []byte
	err error
}

// NewPromWriter returns a writer building an exposition page on w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, buf: make([]byte, 0, 1024)}
}

// Header emits the # HELP and # TYPE lines of a metric family.
// typ is "gauge", "counter" or "histogram".
func (p *PromWriter) Header(name, help, typ string) {
	p.buf = p.buf[:0]
	p.buf = append(p.buf, "# HELP "...)
	p.buf = append(p.buf, name...)
	p.buf = append(p.buf, ' ')
	p.buf = append(p.buf, help...)
	p.buf = append(p.buf, "\n# TYPE "...)
	p.buf = append(p.buf, name...)
	p.buf = append(p.buf, ' ')
	p.buf = append(p.buf, typ...)
	p.buf = append(p.buf, '\n')
	p.flush()
}

// Value emits one sample line. labels is the pre-rendered label set
// without braces (e.g. `node="3"`), or "" for none.
func (p *PromWriter) Value(name, labels string, v float64) {
	p.buf = appendSample(p.buf[:0], name, labels, v)
	p.flush()
}

// Histogram emits a full histogram family: header, cumulative
// non-empty buckets, _sum and _count.
func (p *PromWriter) Histogram(name, help, labels string, h *Histogram) {
	p.Header(name, help, "histogram")
	b := p.buf[:0]
	for _, bk := range h.Buckets() {
		b = append(b, name...)
		b = append(b, "_bucket{"...)
		if labels != "" {
			b = append(b, labels...)
			b = append(b, ',')
		}
		b = append(b, `le="`...)
		if math.IsInf(bk.UpperBound, 1) {
			b = append(b, "+Inf"...)
		} else {
			b = strconv.AppendFloat(b, bk.UpperBound, 'g', -1, 64)
		}
		b = append(b, `"} `...)
		b = strconv.AppendUint(b, bk.CumCount, 10)
		b = append(b, '\n')
	}
	b = appendSample(b, name+"_sum", labels, h.Sum())
	b = appendSample(b, name+"_count", labels, float64(h.Count()))
	p.buf = b
	p.flush()
}

// Err returns the first underlying write error.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) flush() {
	if p.err != nil {
		return
	}
	_, p.err = p.w.Write(p.buf)
}

func appendSample(b []byte, name, labels string, v float64) []byte {
	b = append(b, name...)
	if labels != "" {
		b = append(b, '{')
		b = append(b, labels...)
		b = append(b, '}')
	}
	b = append(b, ' ')
	b = strconv.AppendFloat(b, v, 'g', -1, 64)
	return append(b, '\n')
}
