package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestEventKindStrings(t *testing.T) {
	want := map[EventKind]string{
		KindArrival: "arrival", KindDecision: "decision", KindDispatch: "dispatch",
		KindPhaseCPU: "cpu", KindPhaseDisk: "disk", KindComplete: "complete",
		KindRetry: "retry", KindShed: "shed", KindExhausted: "exhausted",
		EventKind(99): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("kind %d = %q, want %q", k, k.String(), s)
		}
	}
}

func TestJSONLEmitsParseableLines(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	tr.Emit(Event{Kind: KindArrival, Req: 1, Time: 0.25, Class: "dynamic", Value: 0.033})
	tr.Emit(Event{Kind: KindDecision, Req: 1, Time: 0.25, Node: 5, Value: 1.375, Admit: true})
	tr.Emit(Event{Kind: KindDispatch, Req: 1, Time: 0.25, Node: 5, Remote: true})
	tr.Emit(Event{Kind: KindPhaseCPU, Req: 1, Time: 0.26, Node: 5, Value: 0.01})
	tr.Emit(Event{Kind: KindPhaseDisk, Req: 1, Time: 0.27, Node: 5, Value: 0.002})
	tr.Emit(Event{Kind: KindComplete, Req: 1, Time: 0.30, Node: 5, Value: 0.05})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("%d lines, want 6:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
		}
		if m["req"] != float64(1) {
			t.Fatalf("line %d req = %v", i, m["req"])
		}
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["ev"] != "arrival" || first["class"] != "dynamic" || first["demand"] != 0.033 {
		t.Fatalf("arrival line wrong: %v", first)
	}
	var dec map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &dec); err != nil {
		t.Fatal(err)
	}
	if dec["rsrc"] != 1.375 || dec["admit"] != true || dec["node"] != float64(5) {
		t.Fatalf("decision line wrong: %v", dec)
	}
}

func TestJSONLDeterministicBytes(t *testing.T) {
	emit := func() []byte {
		var buf bytes.Buffer
		tr := NewJSONL(&buf)
		for i := int64(1); i <= 500; i++ {
			tr.Emit(Event{Kind: KindComplete, Req: i, Time: float64(i) / 3, Node: int(i % 7), Value: float64(i) * 0.001})
		}
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(emit(), emit()) {
		t.Fatal("identical event streams encoded differently")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	vals := []float64{0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064, 0.128, 0.256, 0.512}
	for _, v := range vals {
		h.Observe(v)
	}
	if h.Count() != 10 {
		t.Fatalf("count %d", h.Count())
	}
	if got, want := h.Sum(), 1.023; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum %v, want %v", got, want)
	}
	if h.Min() != 0.001 || h.Max() != 0.512 {
		t.Fatalf("extremes %v %v", h.Min(), h.Max())
	}
	// Median of 10 values is the 5th (0.016); log-bucket resolution is
	// 12.5%, so the estimate must land within the value's bucket.
	if q := h.Quantile(0.5); q < 0.016 || q > 0.016*1.125 {
		t.Fatalf("p50 %v outside [0.016, 0.018]", q)
	}
	if q := h.Quantile(1); q != 0.512 {
		t.Fatalf("p100 %v, want max", q)
	}
	if q := h.Quantile(0); q < 0.001 || q > 0.001*1.125 {
		t.Fatalf("p0 %v outside the min bucket", q)
	}
}

func TestHistogramRelativeError(t *testing.T) {
	h := NewHistogram()
	// Exact quantiles of 1..10000 scaled to seconds; bucket estimates
	// must stay within the 12.5% bucket width.
	n := 10000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i) / 1000)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := math.Ceil(q*float64(n)) / 1000
		got := h.Quantile(q)
		if got < exact*0.999 || got > exact*1.126 {
			t.Fatalf("q=%v: estimate %v vs exact %v", q, got, exact)
		}
	}
}

func TestHistogramOutOfRangeAndMerge(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)    // underflow
	h.Observe(-5)   // underflow
	h.Observe(1e-9) // below 2^-20
	h.Observe(1e9)  // above 2^10 → overflow
	h.Observe(math.NaN())
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	bks := h.Buckets()
	if len(bks) == 0 || !math.IsInf(bks[len(bks)-1].UpperBound, 1) {
		t.Fatalf("buckets must end at +Inf: %v", bks)
	}
	if bks[len(bks)-1].CumCount != 5 {
		t.Fatalf("cumulative tail %d, want 5", bks[len(bks)-1].CumCount)
	}

	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 100; i++ {
		a.Observe(float64(i) / 100)
	}
	for i := 1; i <= 100; i++ {
		b.Observe(float64(i) / 10)
	}
	merged := NewHistogram()
	merged.Merge(a)
	merged.Merge(b)
	merged.Merge(nil)
	if merged.Count() != 200 || merged.Min() != a.Min() || merged.Max() != b.Max() {
		t.Fatalf("merge: count=%d min=%v max=%v", merged.Count(), merged.Min(), merged.Max())
	}
	if got, want := merged.Sum(), a.Sum()+b.Sum(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("merged sum %v, want %v", got, want)
	}
}

func TestHistogramObserveCoordinated(t *testing.T) {
	// A 1s stall at a 0.1s pacing interval hides 9 phantom requests; the
	// correction records 1.0 plus 0.9, 0.8, …, 0.1.
	h := NewHistogram()
	h.ObserveCoordinated(1.0, 0.1)
	if h.Count() != 10 {
		t.Fatalf("count %d, want 10 (1 real + 9 back-filled)", h.Count())
	}
	wantSum := 0.0
	for i := 1; i <= 10; i++ {
		wantSum += float64(i) / 10
	}
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Fatalf("sum %v, want %v", h.Sum(), wantSum)
	}
	if h.Max() != 1.0 {
		t.Fatalf("max %v, want 1.0", h.Max())
	}

	// Uncorrected vs corrected tails: 99 fast samples and one huge stall.
	// Without correction the stall is 1% of mass and p50 stays tiny; with
	// correction the phantom samples dominate and drag p50 up.
	raw, corr := NewHistogram(), NewHistogram()
	for i := 0; i < 99; i++ {
		raw.Observe(0.001)
		corr.ObserveCoordinated(0.001, 0.01)
	}
	raw.Observe(10)
	corr.ObserveCoordinated(10, 0.01)
	if raw.Quantile(0.5) > 0.01 {
		t.Fatalf("raw p50 %v unexpectedly high", raw.Quantile(0.5))
	}
	if corr.Quantile(0.5) < 1 {
		t.Fatalf("corrected p50 %v, want the stall visible (≥ 1)", corr.Quantile(0.5))
	}

	// Samples faster than the pacing interval and degenerate intervals
	// add nothing beyond the plain observation.
	h2 := NewHistogram()
	h2.ObserveCoordinated(0.005, 0.01)
	h2.ObserveCoordinated(0.005, 0)
	h2.ObserveCoordinated(0.005, -1)
	h2.ObserveCoordinated(0.005, math.NaN())
	if h2.Count() != 4 {
		t.Fatalf("count %d, want 4 (no back-fill)", h2.Count())
	}

	// The back-fill cap bounds pathological stalls without losing the
	// real sample.
	h3 := NewHistogram()
	h3.ObserveCoordinated(1e6, 1e-6)
	if h3.Count() != 100001 {
		t.Fatalf("count %d, want 100001 (capped back-fill)", h3.Count())
	}
	if h3.Max() != 1e6 {
		t.Fatalf("max %v, want the real sample kept", h3.Max())
	}
}

func TestHistogramBucketBoundsMonotone(t *testing.T) {
	prev := math.Inf(-1)
	for i := 0; i < histBuckets; i++ {
		ub := histUpperBound(i)
		if ub <= prev {
			t.Fatalf("bucket %d bound %v ≤ previous %v", i, ub, prev)
		}
		prev = ub
	}
	// Every bound must map values just below it into bucket ≤ i and the
	// bound itself into bucket > i.
	for i := 1; i < histBuckets-1; i++ {
		ub := histUpperBound(i)
		if b := histBucket(ub * (1 - 1e-12)); b > i {
			t.Fatalf("value under bound %v landed in bucket %d > %d", ub, b, i)
		}
		if b := histBucket(ub * (1 + 1e-12)); b <= i {
			t.Fatalf("value over bound %v landed in bucket %d ≤ %d", ub, b, i)
		}
	}
}

func TestWindowedCounter(t *testing.T) {
	w := NewWindowedCounter(10, 10)
	for i := 0; i < 50; i++ {
		w.Add(float64(i)*0.1, 1) // 10 events/s for 5 s
	}
	if r := w.Rate(4.9); math.Abs(r-5.0) > 0.5 { // 50 events in a 10 s window
		t.Fatalf("rate %v, want ≈5", r)
	}
	// 20 s later every bin has aged out.
	if total := w.Total(25); total != 0 {
		t.Fatalf("stale total %d, want 0", total)
	}
	w.Add(25, 7)
	if total := w.Total(25); total != 7 {
		t.Fatalf("total %d, want 7", total)
	}
	// Defaulted construction must not divide by zero.
	d := NewWindowedCounter(0, 0)
	d.Add(1, 3)
	if d.Rate(1) <= 0 {
		t.Fatal("defaulted counter lost events")
	}
}

func TestPromWriterFormat(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Header("msweb_test_gauge", "a test gauge.", "gauge")
	p.Value("msweb_test_gauge", `node="3"`, 0.475)
	p.Value("msweb_test_gauge_bare", "", 2)
	h := NewHistogram()
	h.Observe(0.01)
	h.Observe(0.02)
	p.Histogram("msweb_test_seconds", "a test histogram.", `node="3"`, h)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP msweb_test_gauge a test gauge.\n",
		"# TYPE msweb_test_gauge gauge\n",
		"msweb_test_gauge{node=\"3\"} 0.475\n",
		"msweb_test_gauge_bare 2\n",
		"# TYPE msweb_test_seconds histogram\n",
		"msweb_test_seconds_bucket{node=\"3\",le=\"+Inf\"} 2\n",
		"msweb_test_seconds_sum{node=\"3\"} 0.03",
		"msweb_test_seconds_count{node=\"3\"} 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
