package obs

import "sync/atomic"

// PlacementQuality counts where a master's requests ended up — the
// observable behind the sharded control plane's placement-quality
// gauges. Local counts requests served within the master's own view
// (its shard, or the whole cluster when unsharded); Spilled counts
// dynamics served by a remote shard after the local one shed; and
// SpillFailed counts spill dispatch attempts that erred. All fields are
// independent atomics: writers are hot paths, readers are /metrics.
type PlacementQuality struct {
	Local       atomic.Int64
	Spilled     atomic.Int64
	SpillFailed atomic.Int64
}
