// Package obs is the unified observability layer shared by the
// simulator and the live cluster: per-request lifecycle tracing,
// log-scale latency histograms, windowed counters, and Prometheus
// text-format exposition.
//
// The paper validates its analytic model by measuring the prototype —
// per-class response times, the arrival ratio a, the service ratio r,
// and the self-stabilizing θ₂ cap all come from runtime measurement —
// so every adaptive mechanism in this reproduction is only as good as
// its instrumentation. This package provides that instrumentation once,
// for both substrates: internal/cluster (virtual time) and
// internal/httpcluster (wall clock) emit the same Event stream and
// aggregate into the same Histogram type.
//
// Cost discipline. Tracing is designed to cost ~nothing when disabled:
// probes are nil-guarded interface fields, Event is passed by value, and
// no probe site allocates. When enabled, JSONLTracer encodes into a
// reused buffer with strconv appends (no encoding/json, no reflection),
// and Histogram.Observe is a few integer operations on a fixed array.
package obs

// EventKind identifies one lifecycle point of a request.
type EventKind uint8

// Lifecycle points in request order. A complete trace of one request
// reads: Arrival → Decision → Dispatch → (PhaseCPU | PhaseDisk)* →
// Complete. Static requests get a Decision too (the policy routes them
// to the receiving master), with a zero RSRC cost.
const (
	// KindArrival is the request reaching the cluster front end.
	// Value carries the intrinsic service demand in seconds.
	KindArrival EventKind = iota
	// KindDecision is the policy choosing an execution node for a
	// dynamic request. Node is the chosen node, Value the RSRC cost of
	// that node (0 when the policy does not expose costs), and Admit
	// whether the reservation cap let masters compete.
	KindDecision
	// KindDispatch is the request entering its execution node's queues.
	// Remote marks dispatch off the receiving master (paying the
	// remote-execution latency).
	KindDispatch
	// KindPhaseCPU is one completed CPU burst; Value is the burst
	// length in seconds on the node in Node.
	KindPhaseCPU
	// KindPhaseDisk is one completed disk burst; Value is the burst
	// length in seconds.
	KindPhaseDisk
	// KindComplete is the request finishing; Value is the server-site
	// response time in seconds.
	KindComplete
	// KindRetry is a failed placement attempt being retried elsewhere.
	// Node is the node that failed the attempt; Value the attempt number
	// (1 = first retry).
	KindRetry
	// KindShed is a request rejected by overload protection (503).
	// Node is the shedding node; Value the advertised Retry-After in
	// seconds. Terminal.
	KindShed
	// KindExhausted is a request dropped after its retry budget or
	// deadline ran out (502). Value is the number of attempts made.
	// Terminal.
	KindExhausted
)

// String returns the JSONL tag of the kind.
func (k EventKind) String() string {
	switch k {
	case KindArrival:
		return "arrival"
	case KindDecision:
		return "decision"
	case KindDispatch:
		return "dispatch"
	case KindPhaseCPU:
		return "cpu"
	case KindPhaseDisk:
		return "disk"
	case KindComplete:
		return "complete"
	case KindRetry:
		return "retry"
	case KindShed:
		return "shed"
	case KindExhausted:
		return "exhausted"
	}
	return "unknown"
}

// Event is one lifecycle point of one request. It is a flat value type
// so probe sites pass it without allocating; field meaning varies by
// Kind (see the kind constants).
type Event struct {
	// Req identifies the request within its run; ids are positive.
	Req int64
	// Time is the event timestamp in seconds — virtual time in the
	// simulator, unscaled wall time in the live cluster.
	Time float64
	// Kind is the lifecycle point.
	Kind EventKind
	// Class is the request class ("static", "dynamic", "cached");
	// populated on Arrival events.
	Class string
	// Node is the node acting on the request (-1 when not applicable).
	Node int
	// Value is the kind-specific measurement (see kind constants).
	Value float64
	// Admit reports reservation admission on Decision events.
	Admit bool
	// Remote marks off-master execution on Dispatch events.
	Remote bool
}

// Tracer consumes lifecycle events. Implementations must be cheap:
// the simulator calls Emit from its hottest paths. A nil Tracer is the
// disabled state — probe sites guard with a plain != nil check, so
// disabled tracing costs one branch per site.
type Tracer interface {
	Emit(ev Event)
}
