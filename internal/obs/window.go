package obs

// WindowedCounter counts events over a trailing time window using a
// ring of per-interval bins: Add is O(1) and allocation-free, Rate reads
// the ring in O(bins). It replaces the grow-forever flat slices that
// time-binned aggregation otherwise accumulates — memory is fixed at
// construction no matter how long the process runs.
//
// Timestamps are seconds on any monotone clock (virtual or wall). A
// WindowedCounter is not safe for concurrent use; wrap it in the
// owner's mutex.
type WindowedCounter struct {
	binWidth float64
	bins     []uint64
	epochs   []int64 // absolute bin index each slot currently holds
	lastBin  int64
}

// NewWindowedCounter creates a counter covering the trailing window
// seconds with the given number of bins (window/bins resolution).
// Non-positive arguments fall back to a 10 s window over 10 bins.
func NewWindowedCounter(window float64, bins int) *WindowedCounter {
	if window <= 0 {
		window = 10
	}
	if bins <= 0 {
		bins = 10
	}
	return &WindowedCounter{
		binWidth: window / float64(bins),
		bins:     make([]uint64, bins),
		epochs:   make([]int64, bins),
		lastBin:  -1,
	}
}

// slot returns the ring slot for absolute bin index b, resetting it if
// it still holds an older epoch.
func (w *WindowedCounter) slot(b int64) int {
	i := int(b % int64(len(w.bins)))
	if i < 0 {
		i += len(w.bins)
	}
	if w.epochs[i] != b {
		w.epochs[i] = b
		w.bins[i] = 0
	}
	return i
}

// Add records n events at time now.
func (w *WindowedCounter) Add(now float64, n uint64) {
	b := int64(now / w.binWidth)
	w.bins[w.slot(b)] += n
	if b > w.lastBin {
		w.lastBin = b
	}
}

// Total returns the event count within the window ending at now.
func (w *WindowedCounter) Total(now float64) uint64 {
	cur := int64(now / w.binWidth)
	oldest := cur - int64(len(w.bins)) + 1
	var total uint64
	for i := range w.bins {
		if w.epochs[i] >= oldest && w.epochs[i] <= cur && w.bins[i] > 0 {
			total += w.bins[i]
		}
	}
	return total
}

// Rate returns events per second over the window ending at now.
func (w *WindowedCounter) Rate(now float64) float64 {
	span := w.binWidth * float64(len(w.bins))
	if span <= 0 {
		return 0
	}
	return float64(w.Total(now)) / span
}
