package obs

import "math"

// Histogram bucket layout: each power-of-two octave of the value range
// is split into histSubCount linear sub-buckets, giving a worst-case
// relative bucket width of 1/histSubCount (12.5%). Octaves run from
// 2^histMinExp (≈ 1 µs — below the finest timing any substrate here
// resolves) to 2^histMaxExp (≈ 17 minutes); values outside land in the
// underflow/overflow buckets at the ends.
const (
	histSubBits  = 3
	histSubCount = 1 << histSubBits
	histMinExp   = -20
	histMaxExp   = 10
	// histBuckets = underflow + octaves*sub + overflow.
	histBuckets = (histMaxExp-histMinExp)*histSubCount + 2
)

// Histogram is a log-scale histogram for latencies (or any positive,
// heavy-tailed measurement). Observe is allocation-free — a Frexp, a
// few integer ops and an array increment — so it can sit on completion
// hot paths; memory is a fixed ~2 KB regardless of sample count, unlike
// the flat per-sample slices it replaces for windowed aggregation.
//
// A Histogram is not safe for concurrent use; wrap it in the owner's
// mutex (as the live cluster nodes do) or keep one per goroutine.
type Histogram struct {
	counts   [histBuckets]uint64
	count    uint64
	sum      float64
	min, max float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.Inf(1), max: math.Inf(-1)}
}

// histBucket maps a value to its bucket index.
func histBucket(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac·2^exp, frac ∈ [0.5, 1)
	octave := exp - 1          // v ∈ [2^octave, 2^(octave+1))
	if octave < histMinExp {
		return 0
	}
	if octave >= histMaxExp {
		return histBuckets - 1
	}
	sub := int((frac - 0.5) * 2 * histSubCount)
	if sub >= histSubCount { // frac rounding at the octave edge
		sub = histSubCount - 1
	}
	return 1 + (octave-histMinExp)*histSubCount + sub
}

// histUpperBound returns the exclusive upper bound of bucket i (+Inf for
// the overflow bucket).
func histUpperBound(i int) float64 {
	if i <= 0 {
		return math.Ldexp(1, histMinExp)
	}
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	i--
	octave := histMinExp + i/histSubCount
	sub := i % histSubCount
	return math.Ldexp(1+float64(sub+1)/histSubCount, octave)
}

// Observe records one value. Non-positive and NaN values count into the
// underflow bucket (they carry no latency information but must not be
// silently dropped from totals).
func (h *Histogram) Observe(v float64) {
	h.counts[histBucket(v)]++
	h.count++
	if !math.IsNaN(v) {
		h.sum += v
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
}

// ObserveCoordinated records v plus the synthetic samples a stalled
// closed-loop measurement hides. A closed-loop client that takes v
// seconds to get one response would, at its intended pacing of one
// request per expectedInterval, have issued ⌊v/expectedInterval⌋
// further requests during the stall — each of which would have seen the
// tail of the same stall. Recording v, v-i, v-2i, … (HdrHistogram's
// coordinated-omission correction) restores those phantom samples, so
// tail quantiles reflect what an open arrival process would have
// experienced rather than what the throttled client happened to see.
//
// A non-positive expectedInterval degrades to plain Observe. The
// back-fill is capped so a single pathological sample (v ≫ interval)
// cannot spin for millions of iterations; the cap truncates the
// correction, never the real observation.
func (h *Histogram) ObserveCoordinated(v, expectedInterval float64) {
	h.Observe(v)
	if expectedInterval <= 0 || math.IsNaN(expectedInterval) {
		return
	}
	// Multiply rather than repeatedly subtract: accumulation error in
	// v - i·interval would otherwise fabricate an extra sample whenever
	// v is an exact multiple of the interval.
	const maxBackfill = 100000
	for i := 1; i <= maxBackfill; i++ {
		u := v - float64(i)*expectedInterval
		if u <= 0 {
			break
		}
		h.Observe(u)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile estimates the q-quantile (q ∈ [0, 1]) by nearest rank over
// the bucket counts, reporting the containing bucket's upper bound
// clamped to the observed extremes. The estimate is exact to within one
// bucket width (≤ 12.5% relative error). An empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := histUpperBound(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Merge folds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Bucket is one exposition row of a histogram: the cumulative count of
// observations ≤ UpperBound.
type Bucket struct {
	UpperBound float64 // +Inf for the overflow bucket
	CumCount   uint64
}

// Buckets returns the non-empty buckets in ascending bound order with
// cumulative counts, ending with the +Inf bucket — the shape Prometheus
// histogram exposition wants. Empty buckets are skipped to keep /metrics
// output proportional to the observed value spread, not the layout size.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, Bucket{UpperBound: histUpperBound(i), CumCount: cum})
	}
	if len(out) == 0 || !math.IsInf(out[len(out)-1].UpperBound, 1) {
		out = append(out, Bucket{UpperBound: math.Inf(1), CumCount: cum})
	}
	return out
}
