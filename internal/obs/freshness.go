package obs

import "sync/atomic"

// Freshness tracks when each of a fixed set of slots was last updated,
// as lock-free unixnano stamps. The live cluster uses one per master to
// answer "how stale is my view of node i?" — the gauge that makes the
// piggybacked-report path's freshness advantage over pure polling
// measurable instead of anecdotal. Touch is a single atomic store, so
// hot paths (a piggybacked report on every response) can stamp without
// contention; Age reads are exact at the instant of the load.
type Freshness struct {
	at []atomic.Int64 // unixnano of the last Touch; 0 = never
}

// NewFreshness tracks n slots, all initially never-updated.
func NewFreshness(n int) *Freshness {
	return &Freshness{at: make([]atomic.Int64, n)}
}

// Len returns the slot count.
func (f *Freshness) Len() int { return len(f.at) }

// Touch records an update of slot i at wall time now (unixnano).
// Out-of-range slots are ignored.
func (f *Freshness) Touch(i int, now int64) {
	if i < 0 || i >= len(f.at) {
		return
	}
	f.at[i].Store(now)
}

// Stamp returns slot i's last update instant (unixnano), 0 if never.
func (f *Freshness) Stamp(i int) int64 {
	if i < 0 || i >= len(f.at) {
		return 0
	}
	return f.at[i].Load()
}

// AgeSeconds returns how long before now (unixnano) slot i was last
// updated, in seconds — or -1 when it never was. A never-updated slot
// is reported as -1 rather than "age since process start" so metrics
// stay deterministic on a fresh node.
func (f *Freshness) AgeSeconds(i int, now int64) float64 {
	s := f.Stamp(i)
	if s == 0 {
		return -1
	}
	return float64(now-s) / 1e9
}
