package obs

import (
	"io"
	"strconv"
)

// jsonlFlushAt is the buffered-bytes threshold that triggers a write to
// the underlying writer.
const jsonlFlushAt = 32 << 10

// JSONLTracer encodes events as one JSON object per line, e.g.
//
//	{"ev":"decision","req":17,"t":0.41235,"node":5,"rsrc":1.3712,"admit":true}
//
// Encoding appends to a reused buffer with strconv — no encoding/json,
// no reflection, no per-event allocation in steady state — and flushes
// to the underlying writer in 32 KB batches. Float fields use
// strconv's shortest round-trip form, so identical event streams encode
// to identical bytes (the property the parallel-determinism tests pin).
//
// A JSONLTracer is not safe for concurrent use: give each simulation
// its own tracer (the experiment grid does, one per cell).
type JSONLTracer struct {
	w   io.Writer
	buf []byte
	err error
}

// NewJSONL returns a tracer writing JSONL to w.
func NewJSONL(w io.Writer) *JSONLTracer {
	return &JSONLTracer{w: w, buf: make([]byte, 0, jsonlFlushAt+512)}
}

// Emit implements Tracer.
func (t *JSONLTracer) Emit(ev Event) {
	if t.err != nil {
		return
	}
	b := t.buf
	b = append(b, `{"ev":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, `","req":`...)
	b = strconv.AppendInt(b, ev.Req, 10)
	b = append(b, `,"t":`...)
	b = strconv.AppendFloat(b, ev.Time, 'g', -1, 64)
	switch ev.Kind {
	case KindArrival:
		b = append(b, `,"class":"`...)
		b = append(b, ev.Class...)
		b = append(b, `","demand":`...)
		b = strconv.AppendFloat(b, ev.Value, 'g', -1, 64)
	case KindDecision:
		b = appendNode(b, ev.Node)
		b = append(b, `,"rsrc":`...)
		b = strconv.AppendFloat(b, ev.Value, 'g', -1, 64)
		b = append(b, `,"admit":`...)
		b = strconv.AppendBool(b, ev.Admit)
	case KindDispatch:
		b = appendNode(b, ev.Node)
		b = append(b, `,"remote":`...)
		b = strconv.AppendBool(b, ev.Remote)
	case KindPhaseCPU, KindPhaseDisk:
		b = appendNode(b, ev.Node)
		b = append(b, `,"dur":`...)
		b = strconv.AppendFloat(b, ev.Value, 'g', -1, 64)
	case KindComplete:
		b = appendNode(b, ev.Node)
		b = append(b, `,"resp":`...)
		b = strconv.AppendFloat(b, ev.Value, 'g', -1, 64)
	case KindRetry, KindShed, KindExhausted:
		b = appendNode(b, ev.Node)
		b = append(b, `,"val":`...)
		b = strconv.AppendFloat(b, ev.Value, 'g', -1, 64)
	}
	b = append(b, '}', '\n')
	t.buf = b
	if len(t.buf) >= jsonlFlushAt {
		t.flush()
	}
}

func appendNode(b []byte, node int) []byte {
	b = append(b, `,"node":`...)
	return strconv.AppendInt(b, int64(node), 10)
}

func (t *JSONLTracer) flush() {
	if len(t.buf) == 0 || t.err != nil {
		return
	}
	_, t.err = t.w.Write(t.buf)
	t.buf = t.buf[:0]
}

// Flush writes any buffered lines and returns the first write error
// encountered over the tracer's lifetime.
func (t *JSONLTracer) Flush() error {
	t.flush()
	return t.err
}
