package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 7, 0} {
		got, err := Map(workers, items, func(i, v int) (int, error) {
			return v * v, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, nil, func(i, v int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty map: %v, %v", got, err)
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, items, func(i, v int) (int, error) {
			if v%2 == 1 {
				return 0, fmt.Errorf("item %d failed", v)
			}
			return v, nil
		})
		if err == nil || err.Error() != "item 1 failed" {
			t.Fatalf("workers=%d: err = %v, want item 1 failed", workers, err)
		}
	}
}

func TestMapProcessesEachItemOnce(t *testing.T) {
	var calls [256]atomic.Int32
	items := make([]int, len(calls))
	for i := range items {
		items[i] = i
	}
	if _, err := Map(8, items, func(i, v int) (struct{}, error) {
		calls[i].Add(1)
		return struct{}{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("item %d processed %d times", i, n)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	var mu sync.Mutex
	items := make([]int, 64)
	if _, err := Map(workers, items, func(i, v int) (struct{}, error) {
		n := inFlight.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		runtime.Gosched()
		inFlight.Add(-1)
		return struct{}{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, cap is %d", p, workers)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0, 100) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Fatalf("Workers(8, 3) = %d, want 3 (capped at items)", got)
	}
	if got := Workers(-1, 0); got != 1 {
		t.Fatalf("Workers(-1, 0) = %d, want 1", got)
	}
}
