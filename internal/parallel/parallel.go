// Package parallel provides the bounded worker pool underlying the
// experiment grid runner. The paper's evaluation is a grid of
// independent trace-driven simulations — per trace, per 1/r, per seed,
// per policy variant — so the natural execution model is "embarrassingly
// parallel replications": run every cell on its own goroutine-confined
// sim.Engine and merge results in deterministic cell order, so parallel
// output is byte-identical to a sequential run.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: n <= 0 selects
// runtime.GOMAXPROCS(0), and the count never exceeds the number of items
// (no idle goroutines on small grids).
func Workers(n, items int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > items {
		n = items
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Map runs f over every item on at most workers goroutines and returns
// the results in input order (workers <= 0 means GOMAXPROCS). Each item
// is processed exactly once; f receives the item's index and value and
// must not share mutable state across calls. If any call fails, Map
// returns the error of the lowest-indexed failing item — deterministic
// regardless of scheduling — and the partial results; remaining items
// are still processed (cells are cheap relative to restart cost and
// callers discard results on error).
func Map[T, R any](workers int, items []T, f func(int, T) (R, error)) ([]R, error) {
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, nil
	}
	errs := make([]error, len(items))
	workers = Workers(workers, len(items))
	if workers == 1 {
		// Fast path: run inline, no goroutines. Identical merge order.
		for i, it := range items {
			results[i], errs[i] = f(i, it)
		}
		return results, firstError(errs)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				results[i], errs[i] = f(i, items[i])
			}
		}()
	}
	wg.Wait()
	return results, firstError(errs)
}

// firstError returns the lowest-indexed non-nil error.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
