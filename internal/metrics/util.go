package metrics

import (
	"math"
	"sort"
)

// UtilizationTracker integrates a busy/idle signal over virtual time and
// reports the time-weighted busy fraction. Simulated OS components use one
// tracker per resource (CPU, disk) to expose the CPUIdleRatio and
// DiskAvailRatio that the RSRC cost formula consumes.
type UtilizationTracker struct {
	lastTime  float64
	busySince float64
	busy      bool
	busyTotal float64
	// window state for periodic sampling (rstat-like)
	windowStart float64
	windowBusy  float64
}

// NewUtilizationTracker returns a tracker with the clock at start.
func NewUtilizationTracker(start float64) *UtilizationTracker {
	return &UtilizationTracker{lastTime: start, windowStart: start}
}

// SetBusy records a transition of the resource's busy state at time now.
// Calls must have non-decreasing now.
func (u *UtilizationTracker) SetBusy(now float64, busy bool) {
	u.accumulate(now)
	u.busy = busy
	if busy {
		u.busySince = now
	}
}

func (u *UtilizationTracker) accumulate(now float64) {
	if now < u.lastTime {
		now = u.lastTime
	}
	if u.busy {
		dt := now - u.lastTime
		u.busyTotal += dt
		u.windowBusy += dt
	}
	u.lastTime = now
}

// BusyFraction returns the lifetime busy fraction up to now.
func (u *UtilizationTracker) BusyFraction(now float64) float64 {
	u.accumulate(now)
	total := u.lastTime
	if total <= 0 {
		return 0
	}
	return u.busyTotal / total
}

// WindowSample returns the busy fraction since the previous WindowSample
// call (or construction) and resets the window — the analogue of reading
// rstat() counters periodically. An empty window reports the current
// instantaneous state (1 if busy, 0 if idle).
func (u *UtilizationTracker) WindowSample(now float64) float64 {
	u.accumulate(now)
	span := u.lastTime - u.windowStart
	var frac float64
	if span <= 0 {
		if u.busy {
			frac = 1
		}
	} else {
		frac = u.windowBusy / span
	}
	u.windowStart = u.lastTime
	u.windowBusy = 0
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Percentile returns the nearest-rank q-quantile of xs without modifying
// the input slice.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[len(cp)-1]
	}
	idx := int(math.Ceil(q*float64(len(cp)))) - 1
	if idx < 0 {
		idx = 0
	}
	return cp[idx]
}

// EWMA is an exponentially-weighted moving average used for smoothing
// load-index samples before they feed the RSRC estimate.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]; larger
// alpha weights recent samples more.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	return &EWMA{alpha: alpha}
}

// Update folds a sample into the average and returns the new value.
func (e *EWMA) Update(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (0 before the first sample).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one sample has been folded in.
func (e *EWMA) Initialized() bool { return e.init }
