package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestStretchFactorBasic(t *testing.T) {
	c := NewCollector()
	c.Add(Sample{Demand: 1, Response: 2, Class: "static"})
	c.Add(Sample{Demand: 2, Response: 2, Class: "dynamic"})
	// stretches: 2 and 1 → mean 1.5
	if got := c.StretchFactor(); !approx(got, 1.5, 1e-12) {
		t.Fatalf("StretchFactor = %v, want 1.5", got)
	}
}

func TestEmptyCollector(t *testing.T) {
	c := NewCollector()
	if got := c.StretchFactor(); got != 1 {
		t.Fatalf("empty StretchFactor = %v, want 1", got)
	}
	if got := c.MeanResponse(); got != 0 {
		t.Fatalf("empty MeanResponse = %v, want 0", got)
	}
	if got := c.StretchPercentile(0.5); got != 1 {
		t.Fatalf("empty percentile = %v, want 1", got)
	}
	if got := c.StretchFactorClass("x"); got != 1 {
		t.Fatalf("empty class SF = %v, want 1", got)
	}
}

func TestZeroDemandStretchIsOne(t *testing.T) {
	s := Sample{Demand: 0, Response: 5}
	if got := s.Stretch(); got != 1 {
		t.Fatalf("zero-demand stretch = %v, want 1", got)
	}
}

func TestInvalidSamplePanics(t *testing.T) {
	c := NewCollector()
	defer func() {
		if recover() == nil {
			t.Fatal("negative response did not panic")
		}
	}()
	c.Add(Sample{Demand: 1, Response: -1})
}

func TestPerClassBreakdown(t *testing.T) {
	c := NewCollector()
	c.Add(Sample{Demand: 1, Response: 3, Class: "static"})
	c.Add(Sample{Demand: 1, Response: 1, Class: "static"})
	c.Add(Sample{Demand: 10, Response: 50, Class: "dynamic"})
	if got := c.StretchFactorClass("static"); !approx(got, 2, 1e-12) {
		t.Fatalf("static SF = %v, want 2", got)
	}
	if got := c.StretchFactorClass("dynamic"); !approx(got, 5, 1e-12) {
		t.Fatalf("dynamic SF = %v, want 5", got)
	}
	if got := c.CountClass("static"); got != 2 {
		t.Fatalf("static count = %d, want 2", got)
	}
	classes := c.Classes()
	if len(classes) != 2 || classes[0] != "dynamic" || classes[1] != "static" {
		t.Fatalf("Classes() = %v", classes)
	}
}

func TestOverallEqualsWeightedClassMean(t *testing.T) {
	c := NewCollector()
	c.Add(Sample{Demand: 1, Response: 2, Class: "a"})
	c.Add(Sample{Demand: 1, Response: 4, Class: "a"})
	c.Add(Sample{Demand: 1, Response: 6, Class: "b"})
	want := (2.0 + 4.0 + 6.0) / 3
	if got := c.StretchFactor(); !approx(got, want, 1e-12) {
		t.Fatalf("overall SF = %v, want %v", got, want)
	}
}

func TestPercentiles(t *testing.T) {
	c := NewCollector()
	for i := 1; i <= 100; i++ {
		c.Add(Sample{Demand: 1, Response: float64(i)})
	}
	if got := c.StretchPercentile(0.5); got != 50 {
		t.Fatalf("p50 = %v, want 50", got)
	}
	if got := c.StretchPercentile(0.95); got != 95 {
		t.Fatalf("p95 = %v, want 95", got)
	}
	if got := c.StretchPercentile(0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := c.StretchPercentile(1); got != 100 {
		t.Fatalf("p100 = %v, want 100", got)
	}
}

func TestPercentileCacheInvalidation(t *testing.T) {
	c := NewCollector()
	c.Add(Sample{Demand: 1, Response: 1})
	_ = c.StretchPercentile(0.5)
	c.Add(Sample{Demand: 1, Response: 100})
	if got := c.StretchPercentile(1); got != 100 {
		t.Fatalf("percentile after post-sort Add = %v, want 100", got)
	}
}

func TestMaxima(t *testing.T) {
	c := NewCollector()
	c.Add(Sample{Demand: 1, Response: 2})
	c.Add(Sample{Demand: 0.5, Response: 5})
	if got := c.MaxStretch(); got != 10 {
		t.Fatalf("MaxStretch = %v, want 10", got)
	}
	if got := c.MaxResponse(); got != 5 {
		t.Fatalf("MaxResponse = %v, want 5", got)
	}
}

func TestSummarize(t *testing.T) {
	c := NewCollector()
	c.Add(Sample{Demand: 1, Response: 2, Class: "static"})
	c.Add(Sample{Demand: 4, Response: 8, Class: "dynamic"})
	s := c.Summarize()
	if s.Count != 2 {
		t.Fatalf("Count = %d", s.Count)
	}
	if !approx(s.StretchFactor, 2, 1e-12) {
		t.Fatalf("summary SF = %v", s.StretchFactor)
	}
	if !approx(s.MeanDemand, 2.5, 1e-12) {
		t.Fatalf("summary MeanDemand = %v", s.MeanDemand)
	}
	if s.ByClass["static"].Count != 1 || s.ByClass["dynamic"].Count != 1 {
		t.Fatalf("summary ByClass = %+v", s.ByClass)
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(2, 3); !approx(got, 50, 1e-12) {
		t.Fatalf("Improvement(2,3) = %v, want 50", got)
	}
	if got := Improvement(2, 2); got != 0 {
		t.Fatalf("Improvement(2,2) = %v, want 0", got)
	}
	if got := Improvement(0, 5); got != 0 {
		t.Fatalf("Improvement(0,5) = %v, want 0", got)
	}
	if got := Improvement(4, 2); !approx(got, -50, 1e-12) {
		t.Fatalf("Improvement(4,2) = %v, want -50", got)
	}
}

// Property: stretch factor is always >= 1 when response >= demand.
func TestStretchAtLeastOneProperty(t *testing.T) {
	f := func(demands []float64) bool {
		c := NewCollector()
		for _, d := range demands {
			d = math.Abs(d)
			if math.IsNaN(d) || math.IsInf(d, 0) {
				continue
			}
			// response always >= demand: queueing can only add delay
			c.Add(Sample{Demand: d, Response: d * 1.5})
		}
		return c.StretchFactor() >= 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-class counts sum to the total count.
func TestClassCountsSumProperty(t *testing.T) {
	f := func(classes []bool) bool {
		c := NewCollector()
		for _, isStatic := range classes {
			cl := "dynamic"
			if isStatic {
				cl = "static"
			}
			c.Add(Sample{Demand: 1, Response: 1, Class: cl})
		}
		total := 0
		for _, cl := range c.Classes() {
			total += c.CountClass(cl)
		}
		return total == c.Count() && c.Count() == len(classes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResponsePercentiles(t *testing.T) {
	c := NewCollector()
	for i := 1; i <= 100; i++ {
		c.Add(Sample{Demand: 1, Response: float64(i) / 100})
	}
	if got := c.ResponsePercentile(0.95); !approx(got, 0.95, 1e-12) {
		t.Fatalf("p95 response = %v", got)
	}
	if got := c.ResponsePercentile(0); !approx(got, 0.01, 1e-12) {
		t.Fatalf("p0 response = %v", got)
	}
	if got := c.ResponsePercentile(1); !approx(got, 1.0, 1e-12) {
		t.Fatalf("p100 response = %v", got)
	}
	if got := NewCollector().ResponsePercentile(0.5); got != 0 {
		t.Fatalf("empty p50 response = %v", got)
	}
	s := c.Summarize()
	if !approx(s.P95Response, 0.95, 1e-12) || !approx(s.P99Response, 0.99, 1e-12) {
		t.Fatalf("summary percentiles: %v %v", s.P95Response, s.P99Response)
	}
	// Cache invalidation on Add.
	_ = c.ResponsePercentile(0.5)
	c.Add(Sample{Demand: 1, Response: 50})
	if got := c.ResponsePercentile(1); got != 50 {
		t.Fatalf("stale response percentile cache: %v", got)
	}
}
