package metrics

import (
	"testing"
	"testing/quick"
)

func TestTimeSeriesBinning(t *testing.T) {
	ts := NewTimeSeries(10)
	ts.Add(1, Sample{Demand: 1, Response: 2})  // bin 0: stretch 2
	ts.Add(5, Sample{Demand: 1, Response: 4})  // bin 0: stretch 4
	ts.Add(25, Sample{Demand: 2, Response: 2}) // bin 2: stretch 1
	bins := ts.Bins()
	if len(bins) != 3 {
		t.Fatalf("%d bins, want 3", len(bins))
	}
	if bins[0].Count != 2 || !approx(bins[0].StretchFactor, 3, 1e-12) {
		t.Fatalf("bin 0: %+v", bins[0])
	}
	if bins[1].Count != 0 || bins[1].StretchFactor != 1 {
		t.Fatalf("empty bin 1: %+v", bins[1])
	}
	if bins[2].Count != 1 || !approx(bins[2].StretchFactor, 1, 1e-12) {
		t.Fatalf("bin 2: %+v", bins[2])
	}
	if bins[0].Start != 0 || bins[2].End != 30 {
		t.Fatalf("bin bounds wrong: %+v %+v", bins[0], bins[2])
	}
}

func TestTimeSeriesPeak(t *testing.T) {
	ts := NewTimeSeries(1)
	ts.Add(0.5, Sample{Demand: 1, Response: 2})
	ts.Add(3.5, Sample{Demand: 1, Response: 9})
	if got := ts.PeakStretch(); !approx(got, 9, 1e-12) {
		t.Fatalf("peak = %v, want 9", got)
	}
	empty := NewTimeSeries(1)
	if got := empty.PeakStretch(); got != 1 {
		t.Fatalf("empty peak = %v", got)
	}
}

func TestTimeSeriesDefaults(t *testing.T) {
	ts := NewTimeSeries(0) // defaults to 1s bins
	ts.Add(-5, Sample{Demand: 1, Response: 1})
	bins := ts.Bins()
	if len(bins) != 1 || bins[0].Count != 1 {
		t.Fatalf("negative time not clamped: %+v", bins)
	}
}

func TestTimeSeriesMeanResponse(t *testing.T) {
	ts := NewTimeSeries(10)
	ts.Add(2, Sample{Demand: 1, Response: 0.2})
	ts.Add(3, Sample{Demand: 1, Response: 0.4})
	if got := ts.Bins()[0].MeanResponse; !approx(got, 0.3, 1e-12) {
		t.Fatalf("bin mean response = %v", got)
	}
}

// Property: total count across bins equals samples added.
func TestTimeSeriesConservationProperty(t *testing.T) {
	f := func(times []uint16) bool {
		ts := NewTimeSeries(5)
		for _, raw := range times {
			ts.Add(float64(raw)/100, Sample{Demand: 1, Response: 1})
		}
		total := 0
		for _, b := range ts.Bins() {
			total += b.Count
		}
		return total == len(times)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
