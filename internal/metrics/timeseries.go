package metrics

import "math"

// TimeBin aggregates the samples of one time window.
type TimeBin struct {
	Start, End    float64
	Count         int
	StretchFactor float64
	MeanResponse  float64
}

// TimeSeries bins samples by their (virtual or wall) timestamps so
// experiments can plot stretch over time — e.g. through a flash crowd or
// across a node failure.
type TimeSeries struct {
	window  float64
	sums    []tsBin
	maxSeen float64
}

type tsBin struct {
	n           int
	sumStretch  float64
	sumResponse float64
}

// NewTimeSeries creates a series with the given bin width in seconds.
// Non-positive widths default to 1s.
func NewTimeSeries(window float64) *TimeSeries {
	if window <= 0 {
		window = 1
	}
	return &TimeSeries{window: window}
}

// Add records a sample observed at time t (negative times clamp to 0).
func (ts *TimeSeries) Add(t float64, s Sample) {
	if t < 0 || math.IsNaN(t) {
		t = 0
	}
	if t > ts.maxSeen {
		ts.maxSeen = t
	}
	idx := int(t / ts.window)
	for len(ts.sums) <= idx {
		ts.sums = append(ts.sums, tsBin{})
	}
	b := &ts.sums[idx]
	b.n++
	b.sumStretch += s.Stretch()
	b.sumResponse += s.Response
}

// Bins returns the aggregated windows in time order. Empty windows are
// included (Count 0, StretchFactor 1) so plots have a regular x-axis.
func (ts *TimeSeries) Bins() []TimeBin {
	out := make([]TimeBin, len(ts.sums))
	for i, b := range ts.sums {
		bin := TimeBin{
			Start:         float64(i) * ts.window,
			End:           float64(i+1) * ts.window,
			Count:         b.n,
			StretchFactor: 1,
		}
		if b.n > 0 {
			bin.StretchFactor = b.sumStretch / float64(b.n)
			bin.MeanResponse = b.sumResponse / float64(b.n)
		}
		out[i] = bin
	}
	return out
}

// PeakStretch returns the worst per-bin stretch factor (1 for an empty
// series).
func (ts *TimeSeries) PeakStretch() float64 {
	peak := 1.0
	for _, b := range ts.Bins() {
		if b.StretchFactor > peak {
			peak = b.StretchFactor
		}
	}
	return peak
}
