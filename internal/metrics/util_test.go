package metrics

import (
	"testing"
	"testing/quick"
)

func TestUtilizationBasic(t *testing.T) {
	u := NewUtilizationTracker(0)
	u.SetBusy(0, true)
	u.SetBusy(5, false)
	if got := u.BusyFraction(10); !approx(got, 0.5, 1e-12) {
		t.Fatalf("BusyFraction = %v, want 0.5", got)
	}
}

func TestUtilizationIdleStart(t *testing.T) {
	u := NewUtilizationTracker(0)
	if got := u.BusyFraction(10); got != 0 {
		t.Fatalf("idle tracker BusyFraction = %v, want 0", got)
	}
}

func TestUtilizationZeroTime(t *testing.T) {
	u := NewUtilizationTracker(0)
	if got := u.BusyFraction(0); got != 0 {
		t.Fatalf("BusyFraction at t=0 = %v, want 0", got)
	}
}

func TestWindowSampleResets(t *testing.T) {
	u := NewUtilizationTracker(0)
	u.SetBusy(0, true)
	u.SetBusy(2, false)
	if got := u.WindowSample(4); !approx(got, 0.5, 1e-12) {
		t.Fatalf("first window = %v, want 0.5", got)
	}
	// Next window [4, 8] fully idle.
	if got := u.WindowSample(8); got != 0 {
		t.Fatalf("second window = %v, want 0", got)
	}
	u.SetBusy(8, true)
	if got := u.WindowSample(10); !approx(got, 1, 1e-12) {
		t.Fatalf("third window = %v, want 1", got)
	}
}

func TestWindowSampleEmptyWindow(t *testing.T) {
	u := NewUtilizationTracker(0)
	u.SetBusy(0, true)
	_ = u.WindowSample(0) // empty window while busy
	u2 := NewUtilizationTracker(0)
	if got := u2.WindowSample(0); got != 0 {
		t.Fatalf("empty idle window = %v, want 0", got)
	}
}

func TestWindowSampleBounds(t *testing.T) {
	f := func(transitions []bool) bool {
		u := NewUtilizationTracker(0)
		now := 0.0
		for _, b := range transitions {
			now += 1
			u.SetBusy(now, b)
		}
		got := u.WindowSample(now + 1)
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationNonMonotonicClamps(t *testing.T) {
	u := NewUtilizationTracker(0)
	u.SetBusy(5, true)
	u.SetBusy(3, false) // time goes backwards; must not corrupt totals
	if got := u.BusyFraction(10); got < 0 || got > 1 {
		t.Fatalf("BusyFraction out of [0,1]: %v", got)
	}
}

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !approx(got, 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Stddev(xs); !approx(got, 2.138, 0.001) {
		t.Fatalf("Stddev = %v, want ~2.138", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Stddev([]float64{1}); got != 0 {
		t.Fatalf("Stddev of singleton = %v", got)
	}
}

func TestPercentileHelper(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 0.5); got != 3 {
		t.Fatalf("Percentile 0.5 = %v, want 3", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("Percentile 0 = %v, want 1", got)
	}
	if got := Percentile(xs, 1); got != 5 {
		t.Fatalf("Percentile 1 = %v, want 5", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("Percentile(nil) = %v, want 0", got)
	}
	// input must not be mutated
	if xs[0] != 5 {
		t.Fatalf("Percentile mutated input: %v", xs)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("fresh EWMA claims initialized")
	}
	if got := e.Update(10); got != 10 {
		t.Fatalf("first Update = %v, want 10", got)
	}
	if got := e.Update(0); !approx(got, 5, 1e-12) {
		t.Fatalf("second Update = %v, want 5", got)
	}
	if got := e.Value(); !approx(got, 5, 1e-12) {
		t.Fatalf("Value = %v, want 5", got)
	}
}

func TestEWMAInvalidAlphaDefaults(t *testing.T) {
	e := NewEWMA(0)
	e.Update(10)
	e.Update(0)
	if got := e.Value(); !approx(got, 5, 1e-12) {
		t.Fatalf("EWMA with defaulted alpha = %v, want 5", got)
	}
	e2 := NewEWMA(1.5)
	e2.Update(4)
	e2.Update(2)
	if got := e2.Value(); !approx(got, 3, 1e-12) {
		t.Fatalf("EWMA alpha>1 defaulted = %v, want 3", got)
	}
}

// Property: EWMA value always lies within the min/max of inputs.
func TestEWMABoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		e := NewEWMA(0.3)
		lo, hi := 0.0, 0.0
		first := true
		for _, x := range xs {
			if x != x || x > 1e300 || x < -1e300 {
				continue
			}
			e.Update(x)
			if first {
				lo, hi = x, x
				first = false
			} else {
				if x < lo {
					lo = x
				}
				if x > hi {
					hi = x
				}
			}
		}
		if first {
			return true
		}
		v := e.Value()
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
