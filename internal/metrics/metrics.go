// Package metrics implements the performance measures used throughout the
// reproduction, foremost the paper's primary metric: the stretch factor.
//
// Given requests with service demands d_1..d_n (the processing time a
// request would take on an otherwise idle server) and server-site response
// times t_1..t_n (arrival to completion, excluding Internet latency), the
// stretch factor is
//
//	SF = (1/n) * Σ t_i / d_i
//
// SF = 1 means every request ran as if alone on the machine; SF = k means
// requests were slowed k-fold on average by resource sharing. The paper
// (following Jain, and Bender/Chakrabarti/Muthukrishnan) prefers stretch
// over raw response time because it weights a customer's wait against what
// they asked for: small static fetches should not be delayed behind long
// CGI jobs.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Sample is one completed request observation.
type Sample struct {
	// Demand is the request's intrinsic service demand in seconds.
	Demand float64
	// Response is the server-site response time in seconds.
	Response float64
	// Class tags the request (e.g. "static", "dynamic") for per-class
	// breakdowns; the empty string is a valid class.
	Class string
}

// Stretch returns the sample's individual stretch, Response/Demand.
// Zero-demand samples report stretch 1 (they cannot be slowed down in a
// meaningful way and must not poison the mean with infinities).
func (s Sample) Stretch() float64 {
	if s.Demand <= 0 {
		return 1
	}
	return s.Response / s.Demand
}

// Collector accumulates samples and computes summary statistics. It keeps
// every individual stretch and response time so percentiles remain exact;
// the full Sample (with its class string) is reduced to the two float64
// streams at Add time, so a multi-million-request run retains two flat
// float arrays rather than a slice of structs — the per-class breakdown
// needs only the running aggregates.
type Collector struct {
	stretches []float64
	responses []float64
	byClass   map[string]*running
	overall   running
	sorted    []float64 // stretches, populated lazily on first percentile
	sortedRT  []float64 // response times, populated lazily
}

type running struct {
	n           int
	sumStretch  float64
	sumResponse float64
	sumDemand   float64
	maxStretch  float64
	maxResponse float64
}

func (r *running) add(s Sample) {
	st := s.Stretch()
	r.n++
	r.sumStretch += st
	r.sumResponse += s.Response
	r.sumDemand += s.Demand
	if st > r.maxStretch {
		r.maxStretch = st
	}
	if s.Response > r.maxResponse {
		r.maxResponse = s.Response
	}
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{byClass: make(map[string]*running)}
}

// Add records one completed request.
func (c *Collector) Add(s Sample) {
	if s.Response < 0 || s.Demand < 0 || math.IsNaN(s.Response) || math.IsNaN(s.Demand) {
		panic(fmt.Sprintf("metrics: invalid sample %+v", s))
	}
	c.stretches = append(c.stretches, s.Stretch())
	c.responses = append(c.responses, s.Response)
	c.overall.add(s)
	rc := c.byClass[s.Class]
	if rc == nil {
		rc = &running{}
		c.byClass[s.Class] = rc
	}
	rc.add(s)
	c.sorted = nil
	c.sortedRT = nil
}

// Count returns the number of recorded samples.
func (c *Collector) Count() int { return c.overall.n }

// CountClass returns the number of samples recorded for a class.
func (c *Collector) CountClass(class string) int {
	if r := c.byClass[class]; r != nil {
		return r.n
	}
	return 0
}

// StretchFactor returns the mean stretch over all samples, the paper's
// headline metric. An empty collector reports 1 (an idle system slows
// nothing down).
func (c *Collector) StretchFactor() float64 {
	if c.overall.n == 0 {
		return 1
	}
	return c.overall.sumStretch / float64(c.overall.n)
}

// StretchFactorClass returns the mean stretch for one class.
func (c *Collector) StretchFactorClass(class string) float64 {
	r := c.byClass[class]
	if r == nil || r.n == 0 {
		return 1
	}
	return r.sumStretch / float64(r.n)
}

// MeanResponse returns the mean response time in seconds.
func (c *Collector) MeanResponse() float64 {
	if c.overall.n == 0 {
		return 0
	}
	return c.overall.sumResponse / float64(c.overall.n)
}

// MeanResponseClass returns the per-class mean response time.
func (c *Collector) MeanResponseClass(class string) float64 {
	r := c.byClass[class]
	if r == nil || r.n == 0 {
		return 0
	}
	return r.sumResponse / float64(r.n)
}

// MeanDemand returns the mean service demand in seconds.
func (c *Collector) MeanDemand() float64 {
	if c.overall.n == 0 {
		return 0
	}
	return c.overall.sumDemand / float64(c.overall.n)
}

// MaxStretch returns the worst individual stretch observed.
func (c *Collector) MaxStretch() float64 { return c.overall.maxStretch }

// MaxResponse returns the worst response time observed.
func (c *Collector) MaxResponse() float64 { return c.overall.maxResponse }

// StretchPercentile returns the q-quantile (q in [0,1]) of individual
// stretches using nearest-rank on the sorted sample.
func (c *Collector) StretchPercentile(q float64) float64 {
	if c.overall.n == 0 {
		return 1
	}
	if c.sorted == nil {
		c.sorted = append(make([]float64, 0, len(c.stretches)), c.stretches...)
		sort.Float64s(c.sorted)
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// ResponsePercentile returns the q-quantile of response times using
// nearest-rank on the sorted sample.
func (c *Collector) ResponsePercentile(q float64) float64 {
	if c.overall.n == 0 {
		return 0
	}
	if c.sortedRT == nil {
		c.sortedRT = append(make([]float64, 0, len(c.responses)), c.responses...)
		sort.Float64s(c.sortedRT)
	}
	if q <= 0 {
		return c.sortedRT[0]
	}
	if q >= 1 {
		return c.sortedRT[len(c.sortedRT)-1]
	}
	idx := int(math.Ceil(q*float64(len(c.sortedRT)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sortedRT[idx]
}

// Classes returns the class labels seen, sorted for deterministic output.
func (c *Collector) Classes() []string {
	out := make([]string, 0, len(c.byClass))
	for k := range c.byClass {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Summary is a value snapshot of a collector, convenient for experiment
// result tables and JSON-free serialization.
type Summary struct {
	Count         int
	StretchFactor float64
	MeanResponse  float64
	MeanDemand    float64
	MaxStretch    float64
	P50Stretch    float64
	P95Stretch    float64
	P99Stretch    float64
	P95Response   float64
	P99Response   float64
	ByClass       map[string]ClassSummary
}

// ClassSummary summarizes one request class.
type ClassSummary struct {
	Count         int
	StretchFactor float64
	MeanResponse  float64
}

// Summarize snapshots the collector.
func (c *Collector) Summarize() Summary {
	s := Summary{
		Count:         c.Count(),
		StretchFactor: c.StretchFactor(),
		MeanResponse:  c.MeanResponse(),
		MeanDemand:    c.MeanDemand(),
		MaxStretch:    c.MaxStretch(),
		P50Stretch:    c.StretchPercentile(0.50),
		P95Stretch:    c.StretchPercentile(0.95),
		P99Stretch:    c.StretchPercentile(0.99),
		P95Response:   c.ResponsePercentile(0.95),
		P99Response:   c.ResponsePercentile(0.99),
		ByClass:       make(map[string]ClassSummary),
	}
	for _, class := range c.Classes() {
		s.ByClass[class] = ClassSummary{
			Count:         c.CountClass(class),
			StretchFactor: c.StretchFactorClass(class),
			MeanResponse:  c.MeanResponseClass(class),
		}
	}
	return s
}

// Improvement returns the paper's comparison statistic,
// (SF_other/SF_base − 1) × 100%: how much worse `other` is than `base`,
// i.e. the percentage improvement of base over other.
func Improvement(base, other float64) float64 {
	if base <= 0 {
		return 0
	}
	return (other/base - 1) * 100
}
