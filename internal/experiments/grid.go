package experiments

// Parallel simulation-grid runner. Every experiment in this package is a
// grid of independent cells — (trace, 1/r, seed, policy variant) — each
// replaying its own trace on its own sim.Engine with its own seeded RNG.
// runGrid executes the cells over a bounded worker pool and returns
// results in cell order, so the merged rows (and therefore the formatted
// tables) are byte-identical to a sequential run regardless of worker
// count. Generated traces are cached per GenConfig so the four Figure 4
// variants (and the seeds shared between fixed/re-planned Figure 5
// columns) stop regenerating the identical trace.

import (
	"sync"
	"sync/atomic"

	"msweb/internal/core"
	"msweb/internal/parallel"
	"msweb/internal/trace"
)

// parallelism is the worker-pool width for experiment grids;
// 0 selects runtime.GOMAXPROCS. Set via SetParallelism (msbench
// -parallel); atomic because independent experiment runs may race a
// CLI-driven update in tests.
var parallelism atomic.Int32

// SetParallelism bounds the number of concurrent simulation cells across
// subsequent experiment runs. n <= 0 restores the default (GOMAXPROCS).
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int32(n))
}

// Parallelism returns the configured worker bound (0 = GOMAXPROCS).
func Parallelism() int { return int(parallelism.Load()) }

// runGrid executes one experiment's cells on the shared worker bound,
// returning results in cell order. Cell functions must be self-contained:
// each builds its own engine, cluster and RNG from the cell's seed.
func runGrid[C, R any](cells []C, run func(C) (R, error)) ([]R, error) {
	return parallel.Map(Parallelism(), cells, func(_ int, c C) (R, error) {
		return run(c)
	})
}

// wSampleDepth is the off-line sampling depth every experiment uses for
// core.SampleW (16 instances per script, mimicking a short profiling run).
const wSampleDepth = 16

// traceCacheCap bounds the number of generated traces retained. Grids
// reuse a trace at most a few cells apart (the policy variants of one
// (trace, 1/r, seed) tuple), so a small FIFO window captures all reuse
// while bounding memory to a few tens of megabytes at full fidelity.
const traceCacheCap = 32

// traceCacheEntry is one generated trace plus its off-line w sample,
// built exactly once even when several workers request it concurrently.
type traceCacheEntry struct {
	once sync.Once
	tr   *trace.Trace
	wt   core.WTable
	err  error
}

// traceCache memoizes trace.Generate keyed by the full GenConfig.
// Entries are immutable after generation: simulations only read traces,
// so one instance is safely shared across concurrent cells.
type traceCache struct {
	mu      sync.Mutex
	entries map[trace.GenConfig]*traceCacheEntry
	order   []trace.GenConfig // FIFO eviction order
}

var sharedTraces = &traceCache{entries: map[trace.GenConfig]*traceCacheEntry{}}

// get returns the cached (trace, w table) for cfg, generating on miss.
func (c *traceCache) get(cfg trace.GenConfig) (*trace.Trace, core.WTable, error) {
	c.mu.Lock()
	e, ok := c.entries[cfg]
	if !ok {
		e = &traceCacheEntry{}
		c.entries[cfg] = e
		c.order = append(c.order, cfg)
		if len(c.order) > traceCacheCap {
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.tr, e.err = trace.Generate(cfg)
		if e.err == nil {
			e.wt = core.SampleW(e.tr, wSampleDepth)
		}
	})
	return e.tr, e.wt, e.err
}

// cachedTrace is the grid-facing entry point: the trace plus its sampled
// w table for one fully specified generation config.
func cachedTrace(cfg trace.GenConfig) (*trace.Trace, core.WTable, error) {
	return sharedTraces.get(cfg)
}

// genTraceW builds (or fetches) the standard experiment trace for one
// cell and its off-line w sample.
func genTraceW(p trace.Profile, lambda, r float64, n int, seed int64) (*trace.Trace, core.WTable, error) {
	return cachedTrace(trace.GenConfig{
		Profile:  p,
		Lambda:   lambda,
		Requests: n,
		MuH:      MuH,
		R:        r,
		Seed:     seed,
	})
}
