package experiments

import (
	"fmt"
	"strings"

	"msweb/internal/core"
	"msweb/internal/queuemodel"
	"msweb/internal/trace"
)

// Fig4Row is one bar group of Figure 4: for a (trace, 1/r) cell, the
// percentage improvement of M/S over each ablated variant,
// (SF_variant / SF_MS − 1) × 100.
type Fig4Row struct {
	Trace     string
	InvR      float64
	Lambda    float64
	Masters   int // Theorem 1 master count used for the M/S variants
	MSStretch float64
	OverNS    float64 // benefit of demand sampling
	OverNR    float64 // benefit of master reservation
	Over1     float64 // benefit of separating static and CGI processing
}

// RunFig4 reproduces Figure 4 for cluster size p (32 for subfigure (a),
// 128 for (b)). For each trace and each 1/r it replays the same trace
// under M/S, M/S-ns, M/S-nr and M/S-1 and reports the improvements.
func RunFig4(p int, opts Options) ([]Fig4Row, error) {
	opts = opts.withDefaults()
	var rows []Fig4Row
	for _, prof := range trace.Profiles() {
		a := prof.ArrivalRatio()
		for _, invR := range opts.InvRs {
			r := 1 / invR
			lambda := LambdaForRho(p, a, r, opts.TargetRho)
			plan, err := queuemodel.NewParams(p, lambda, a, MuH, r).OptimalPlan()
			if err != nil {
				return nil, fmt.Errorf("fig4 %s 1/r=%.0f: %w", prof.Name, invR, err)
			}
			n := opts.requestCount(lambda)

			variant := func(masters int, mk func(core.WTable, int64) core.Policy) (float64, error) {
				return meanOver(opts.Seeds, func(seed int64) (float64, error) {
					tr, err := genTrace(prof, lambda, r, n, seed)
					if err != nil {
						return 0, err
					}
					wt := core.SampleW(tr, 16)
					return simulateOnce(p, masters, mk(wt, seed), tr, opts.Warmup)
				})
			}

			ms, err := variant(plan.M, func(wt core.WTable, seed int64) core.Policy {
				return core.NewMS(wt, seed)
			})
			if err != nil {
				return nil, err
			}
			ns, err := variant(plan.M, func(wt core.WTable, seed int64) core.Policy {
				return core.NewMS(wt, seed, core.WithoutSampling(), core.WithName("M/S-ns"))
			})
			if err != nil {
				return nil, err
			}
			nr, err := variant(plan.M, func(wt core.WTable, seed int64) core.Policy {
				return core.NewMS(wt, seed, core.WithoutReservation(), core.WithName("M/S-nr"))
			})
			if err != nil {
				return nil, err
			}
			one, err := variant(p, func(wt core.WTable, seed int64) core.Policy {
				return core.NewMS(wt, seed, core.WithName("M/S-1"))
			})
			if err != nil {
				return nil, err
			}

			rows = append(rows, Fig4Row{
				Trace:     prof.Name,
				InvR:      invR,
				Lambda:    lambda,
				Masters:   plan.M,
				MSStretch: ms,
				OverNS:    (ns/ms - 1) * 100,
				OverNR:    (nr/ms - 1) * 100,
				Over1:     (one/ms - 1) * 100,
			})
		}
	}
	return rows, nil
}

// FormatFig4 renders the improvement table for one cluster size.
func FormatFig4(p int, rows []Fig4Row) string {
	var b strings.Builder
	sub := "(a)"
	if p != 32 {
		sub = "(b)"
	}
	fmt.Fprintf(&b, "Figure 4%s: %% improvement of M/S over ablated variants, p=%d\n", sub, p)
	fmt.Fprintln(&b, "(columns: benefit of demand sampling / master reservation / static-CGI separation)")
	header := fmt.Sprintf("%-6s %-6s %-9s %-3s %-9s %-12s %-12s %-12s",
		"Trace", "1/r", "λ(req/s)", "m", "SF(M/S)", "vs M/S-ns", "vs M/S-nr", "vs M/S-1")
	fmt.Fprintln(&b, header)
	fmt.Fprintln(&b, rule(header))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-6.0f %-9.0f %-3d %-9.2f %-12s %-12s %-12s\n",
			r.Trace, r.InvR, r.Lambda, r.Masters, r.MSStretch,
			pct(r.OverNS), pct(r.OverNR), pct(r.Over1))
	}
	return b.String()
}
