package experiments

import (
	"fmt"
	"strings"

	"msweb/internal/core"
	"msweb/internal/obs"
	"msweb/internal/queuemodel"
	"msweb/internal/trace"
)

// Fig4Row is one bar group of Figure 4: for a (trace, 1/r) cell, the
// percentage improvement of M/S over each ablated variant,
// (SF_variant / SF_MS − 1) × 100.
type Fig4Row struct {
	Trace     string
	InvR      float64
	Lambda    float64
	Masters   int // Theorem 1 master count used for the M/S variants
	MSStretch float64
	OverNS    float64 // benefit of demand sampling
	OverNR    float64 // benefit of master reservation
	Over1     float64 // benefit of separating static and CGI processing
}

// fig4Variants enumerates the compared policies; allMasters marks the
// M/S-1 configuration where every node is a master. slug is the
// variant's segment in trace-capture cell labels.
var fig4Variants = []struct {
	key        string
	slug       string
	mk         func(wt core.WTable, seed int64) core.Policy
	allMasters bool
}{
	{"M/S", "ms", func(wt core.WTable, seed int64) core.Policy {
		return core.NewMS(wt, seed)
	}, false},
	{"M/S-ns", "ms-ns", func(wt core.WTable, seed int64) core.Policy {
		return core.NewMS(wt, seed, core.WithoutSampling(), core.WithName("M/S-ns"))
	}, false},
	{"M/S-nr", "ms-nr", func(wt core.WTable, seed int64) core.Policy {
		return core.NewMS(wt, seed, core.WithoutReservation(), core.WithName("M/S-nr"))
	}, false},
	{"M/S-1", "ms-1", func(wt core.WTable, seed int64) core.Policy {
		return core.NewMS(wt, seed, core.WithName("M/S-1"))
	}, true},
}

// fig4Cell is one independent simulation: a (trace, 1/r, variant, seed)
// tuple replayed on its own engine.
type fig4Cell struct {
	prof    trace.Profile
	invR    float64
	lambda  float64
	n       int
	masters int
	variant int
	seed    int64
}

// RunFig4 reproduces Figure 4 for cluster size p (32 for subfigure (a),
// 128 for (b)). For each trace and each 1/r it replays the same trace
// under M/S, M/S-ns, M/S-nr and M/S-1 and reports the improvements. The
// grid of (trace, 1/r, variant, seed) cells runs on the shared worker
// pool; rows merge in trace-major order, matching the sequential output.
func RunFig4(p int, opts Options) ([]Fig4Row, error) {
	opts = opts.withDefaults()

	// Plan each (trace, 1/r) group analytically, then flatten the grid.
	type group struct {
		prof    trace.Profile
		invR    float64
		lambda  float64
		masters int
	}
	var groups []group
	var cells []fig4Cell
	for _, prof := range trace.Profiles() {
		a := prof.ArrivalRatio()
		for _, invR := range opts.InvRs {
			r := 1 / invR
			lambda := LambdaForRho(p, a, r, opts.TargetRho)
			plan, err := queuemodel.NewParams(p, lambda, a, MuH, r).OptimalPlan()
			if err != nil {
				return nil, fmt.Errorf("fig4 %s 1/r=%.0f: %w", prof.Name, invR, err)
			}
			groups = append(groups, group{prof, invR, lambda, plan.M})
			n := opts.requestCount(lambda)
			for vi, v := range fig4Variants {
				masters := plan.M
				if v.allMasters {
					masters = p
				}
				for _, seed := range opts.Seeds {
					cells = append(cells, fig4Cell{
						prof: prof, invR: invR, lambda: lambda, n: n,
						masters: masters, variant: vi, seed: seed,
					})
				}
			}
		}
	}

	stretches, err := runGrid(cells, func(c fig4Cell) (float64, error) {
		tr, wt, err := genTraceW(c.prof, c.lambda, 1/c.invR, c.n, c.seed)
		if err != nil {
			return 0, fmt.Errorf("fig4 %s 1/r=%.0f seed %d: %w", c.prof.Name, c.invR, c.seed, err)
		}
		pol := fig4Variants[c.variant].mk(wt, c.seed)
		var tracer obs.Tracer
		if opts.Trace != nil {
			tracer = opts.Trace.Tracer(fmt.Sprintf("fig4/p%d/%s/invr%g/%s/seed%d",
				p, c.prof.Name, c.invR, fig4Variants[c.variant].slug, c.seed))
		}
		return simulateCell(p, c.masters, pol, tr, opts.Warmup, tracer)
	})
	if err != nil {
		return nil, err
	}

	// Merge: mean over seeds per variant, in cell order.
	nSeeds := len(opts.Seeds)
	rows := make([]Fig4Row, 0, len(groups))
	i := 0
	for _, g := range groups {
		means := make([]float64, len(fig4Variants))
		for vi := range fig4Variants {
			means[vi] = seedMean(stretches[i : i+nSeeds])
			i += nSeeds
		}
		ms, ns, nr, one := means[0], means[1], means[2], means[3]
		rows = append(rows, Fig4Row{
			Trace:     g.prof.Name,
			InvR:      g.invR,
			Lambda:    g.lambda,
			Masters:   g.masters,
			MSStretch: ms,
			OverNS:    (ns/ms - 1) * 100,
			OverNR:    (nr/ms - 1) * 100,
			Over1:     (one/ms - 1) * 100,
		})
	}
	return rows, nil
}

// FormatFig4 renders the improvement table for one cluster size.
func FormatFig4(p int, rows []Fig4Row) string {
	var b strings.Builder
	sub := "(a)"
	if p != 32 {
		sub = "(b)"
	}
	fmt.Fprintf(&b, "Figure 4%s: %% improvement of M/S over ablated variants, p=%d\n", sub, p)
	fmt.Fprintln(&b, "(columns: benefit of demand sampling / master reservation / static-CGI separation)")
	header := fmt.Sprintf("%-6s %-6s %-9s %-3s %-9s %-12s %-12s %-12s",
		"Trace", "1/r", "λ(req/s)", "m", "SF(M/S)", "vs M/S-ns", "vs M/S-nr", "vs M/S-1")
	fmt.Fprintln(&b, header)
	fmt.Fprintln(&b, rule(header))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-6.0f %-9.0f %-3d %-9.2f %-12s %-12s %-12s\n",
			r.Trace, r.InvR, r.Lambda, r.Masters, r.MSStretch,
			pct(r.OverNS), pct(r.OverNR), pct(r.Over1))
	}
	return b.String()
}
