package experiments

// Extension studies beyond the paper's published artifacts, covering the
// future-work directions its Section 6 sketches: dynamic-content
// caching (Swala), fault tolerance / dynamic recruitment, and
// heterogeneous clusters. msbench exposes them as cachesweep, failover
// and hetero.

import (
	"fmt"
	"strings"

	"msweb/internal/cluster"
	"msweb/internal/core"
	"msweb/internal/queuemodel"
	"msweb/internal/trace"
)

// CacheSweepRow reports one cache configuration.
type CacheSweepRow struct {
	Capacity    int // 0 = caching disabled
	TTL         float64
	Stretch     float64
	DynMeanResp float64 // mean response of uncached dynamics, seconds
	HitRatio    float64
}

// RunCacheSweep replays a KSU-like workload (70% of CGI invocations
// cacheable, Zipf-popular parameters) against increasing cache sizes.
func RunCacheSweep(p int, opts Options) ([]CacheSweepRow, error) {
	opts = opts.withDefaults()
	prof := trace.KSU
	r := 1.0 / 40
	lambda := LambdaForRho(p, prof.ArrivalRatio(), r, opts.TargetRho)
	n := opts.requestCount(lambda)

	plan, err := queuemodel.NewParams(p, lambda, prof.ArrivalRatio(), MuH, r).OptimalPlan()
	if err != nil {
		return nil, err
	}

	capacities := []int{0, 64, 256, 1024, 4096}
	type cell struct {
		capacity int
		seed     int64
	}
	type sample struct{ sf, resp, hit float64 }
	var cells []cell
	for _, capacity := range capacities {
		for _, seed := range opts.Seeds {
			cells = append(cells, cell{capacity, seed})
		}
	}
	samples, err := runGrid(cells, func(c cell) (sample, error) {
		tr, wt, err := genTraceW(prof, lambda, r, n, c.seed)
		if err != nil {
			return sample{}, err
		}
		cfg := cluster.DefaultConfig(p, 0)
		cfg.Masters = plan.M
		cfg.WarmupFraction = opts.Warmup
		if c.capacity > 0 {
			cfg.Cache = &cluster.CacheConfig{Capacity: c.capacity, TTL: 120}
		}
		res, err := cluster.Simulate(cfg, core.NewMS(wt, c.seed), tr)
		if err != nil {
			return sample{}, err
		}
		return sample{
			sf:   res.StretchFactor,
			resp: res.Summary.ByClass["dynamic"].MeanResponse,
			hit:  res.CacheStats.HitRatio(),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	k := float64(len(opts.Seeds))
	var rows []CacheSweepRow
	i := 0
	for _, capacity := range capacities {
		var sumSF, sumResp, sumHit float64
		for s := 0; s < len(opts.Seeds); s++ {
			sumSF += samples[i].sf
			sumResp += samples[i].resp
			sumHit += samples[i].hit
			i++
		}
		rows = append(rows, CacheSweepRow{
			Capacity:    capacity,
			TTL:         120,
			Stretch:     sumSF / k,
			DynMeanResp: sumResp / k,
			HitRatio:    sumHit / k,
		})
	}
	return rows, nil
}

// FormatCacheSweep renders the cache study.
func FormatCacheSweep(p int, rows []CacheSweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: Swala-style dynamic-content cache, KSU workload, p=%d\n", p)
	header := fmt.Sprintf("%-9s %-8s %-9s %-14s %-9s", "capacity", "TTL(s)", "SF", "dyn resp (s)", "hit rate")
	fmt.Fprintln(&b, header)
	fmt.Fprintln(&b, rule(header))
	for _, r := range rows {
		cap := "off"
		if r.Capacity > 0 {
			cap = fmt.Sprintf("%d", r.Capacity)
		}
		fmt.Fprintf(&b, "%-9s %-8.0f %-9.2f %-14.4f %6.1f%%\n",
			cap, r.TTL, r.Stretch, r.DynMeanResp, 100*r.HitRatio)
	}
	return b.String()
}

// FailoverRow reports one availability scenario.
type FailoverRow struct {
	Scenario  string
	Stretch   float64
	Failovers int64
	Completed int
}

// RunFailoverStudy replays an ADL-like workload through three
// availability scenarios: a healthy cluster, a mid-run slave crash, and
// the same crash compensated by recruiting two non-dedicated nodes.
func RunFailoverStudy(p int, opts Options) ([]FailoverRow, error) {
	opts = opts.withDefaults()
	prof := trace.ADL
	r := 1.0 / 40
	// Load targeted against the dedicated portion (p−2 nodes): the two
	// recruits are spare capacity.
	lambda := LambdaForRho(p-2, prof.ArrivalRatio(), r, opts.TargetRho)
	n := opts.requestCount(lambda)
	tr, wt, err := genTraceW(prof, lambda, r, n, opts.Seeds[0])
	if err != nil {
		return nil, err
	}
	span := tr.Duration()

	plan, err := queuemodel.NewParams(p-2, lambda, prof.ArrivalRatio(), MuH, r).OptimalPlan()
	if err != nil {
		return nil, err
	}

	run := func(scenario string, events []cluster.AvailabilityEvent) (FailoverRow, error) {
		cfg := cluster.DefaultConfig(p, plan.M)
		cfg.WarmupFraction = opts.Warmup
		cfg.InitiallyDown = []int{p - 2, p - 1}
		cfg.Events = events
		res, err := cluster.Simulate(cfg, core.NewMS(wt, opts.Seeds[0]), tr)
		if err != nil {
			return FailoverRow{}, err
		}
		return FailoverRow{
			Scenario:  scenario,
			Stretch:   res.StretchFactor,
			Failovers: res.Failovers,
			Completed: res.Summary.Count,
		}, nil
	}

	// Two slaves crash at staggered times so the scenario reliably
	// catches in-flight work (a single instant can find a node idle).
	crashAt := 0.3 * span
	crashAt2 := 0.5 * span
	victim, victim2 := plan.M, plan.M+1 // first two slaves
	scenarios := []struct {
		name   string
		events []cluster.AvailabilityEvent
	}{
		{"healthy", nil},
		{"slave crashes", []cluster.AvailabilityEvent{
			{Node: victim, At: crashAt, Available: false},
			{Node: victim2, At: crashAt2, Available: false},
		}},
		{"crashes + recruit 2", []cluster.AvailabilityEvent{
			{Node: victim, At: crashAt, Available: false},
			{Node: victim2, At: crashAt2, Available: false},
			{Node: p - 2, At: crashAt + 1, Available: true},
			{Node: p - 1, At: crashAt + 1, Available: true},
		}},
	}
	// The scenarios replay the same shared (read-only) trace, each on an
	// independent engine, so they run as parallel grid cells.
	rows, err := runGrid(scenarios, func(sc struct {
		name   string
		events []cluster.AvailabilityEvent
	}) (FailoverRow, error) {
		row, err := run(sc.name, sc.events)
		if err != nil {
			return FailoverRow{}, fmt.Errorf("failover %s: %w", sc.name, err)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatFailoverStudy renders the availability study.
func FormatFailoverStudy(p int, rows []FailoverRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: failover and dynamic recruitment, ADL workload, p=%d (2 non-dedicated)\n", p)
	header := fmt.Sprintf("%-20s %-9s %-10s %-10s", "scenario", "SF", "failovers", "completed")
	fmt.Fprintln(&b, header)
	fmt.Fprintln(&b, rule(header))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %-9.2f %-10d %-10d\n", r.Scenario, r.Stretch, r.Failovers, r.Completed)
	}
	return b.String()
}

// HeteroRow compares flat vs the heterogeneous M/S plan on one speed mix.
type HeteroRow struct {
	Mix           string
	AnalyticFlat  float64
	AnalyticMS    float64
	Masters       []int
	SimFlat       float64
	SimMS         float64
	SimImprovePct float64
}

// RunHeteroStudy evaluates the heterogeneous extension: for several
// speed mixes, the analytic hetero plan (master set + θ) is computed and
// then validated in the simulator against a flat configuration on the
// same hardware.
func RunHeteroStudy(p int, opts Options) ([]HeteroRow, error) {
	opts = opts.withDefaults()
	prof := trace.KSU
	r := 1.0 / 40

	mixes := []struct {
		name  string
		speed func(i int) float64
	}{
		{"uniform 1x", func(int) float64 { return 1 }},
		{"half 1x / half 2x", func(i int) float64 {
			if i >= p/2 {
				return 2
			}
			return 1
		}},
		{"one 4x front", func(i int) float64 {
			if i == 0 {
				return 4
			}
			return 1
		}},
	}

	// Plan each mix analytically up front, then fan the simulations out:
	// one cell per (mix, seed, M/S-or-flat).
	type mixPlan struct {
		name    string
		lambda  float64
		n       int
		ordered []float64
		plan    queuemodel.HeteroPlan
	}
	plans := make([]mixPlan, 0, len(mixes))
	for _, mix := range mixes {
		speeds := make([]float64, p)
		total := 0.0
		for i := range speeds {
			speeds[i] = mix.speed(i)
			total += speeds[i]
		}
		// Load the mixed cluster to TargetRho of its actual capacity.
		lambda := LambdaForRho(p, prof.ArrivalRatio(), r, opts.TargetRho) * total / float64(p)

		hp := queuemodel.HeteroParams{Speeds: speeds, MuH: MuH, MuC: r * MuH}
		hp.LambdaH = lambda / (1 + prof.ArrivalRatio())
		hp.LambdaC = lambda - hp.LambdaH
		plan, err := hp.OptimalHeteroPlan()
		if err != nil {
			return nil, fmt.Errorf("hetero %s: %w", mix.name, err)
		}

		// The simulated cluster assigns master roles to node ids 0..m−1,
		// so reorder speeds to put the planned masters first.
		ordered := make([]float64, 0, p)
		inMaster := map[int]bool{}
		for _, m := range plan.Masters {
			inMaster[m] = true
			ordered = append(ordered, speeds[m])
		}
		for i, s := range speeds {
			if !inMaster[i] {
				ordered = append(ordered, s)
			}
		}
		plans = append(plans, mixPlan{
			name: mix.name, lambda: lambda, n: opts.requestCount(lambda),
			ordered: ordered, plan: plan,
		})
	}

	type cell struct {
		mi   int
		seed int64
		flat bool
	}
	var cells []cell
	for mi := range plans {
		for _, seed := range opts.Seeds {
			cells = append(cells, cell{mi, seed, false}, cell{mi, seed, true})
		}
	}
	stretches, err := runGrid(cells, func(c cell) (float64, error) {
		mp := plans[c.mi]
		tr, wt, err := genTraceW(prof, mp.lambda, r, mp.n, c.seed)
		if err != nil {
			return 0, err
		}
		var cfg cluster.Config
		var pol core.Policy
		if c.flat {
			cfg = cluster.DefaultConfig(p, p)
			pol = core.NewFlat()
		} else {
			cfg = cluster.DefaultConfig(p, len(mp.plan.Masters))
			pol = core.NewMS(wt, c.seed)
		}
		cfg.WarmupFraction = opts.Warmup
		cfg.Speeds = mp.ordered
		res, err := cluster.Simulate(cfg, pol, tr)
		if err != nil {
			return 0, fmt.Errorf("hetero %s: %w", mp.name, err)
		}
		return res.StretchFactor, nil
	})
	if err != nil {
		return nil, err
	}

	k := float64(len(opts.Seeds))
	var rows []HeteroRow
	i := 0
	for _, mp := range plans {
		var simMS, simFlat float64
		for s := 0; s < len(opts.Seeds); s++ {
			simMS += stretches[i]
			simFlat += stretches[i+1]
			i += 2
		}
		simMS /= k
		simFlat /= k
		rows = append(rows, HeteroRow{
			Mix:           mp.name,
			AnalyticFlat:  mp.plan.Flat,
			AnalyticMS:    mp.plan.Stretch,
			Masters:       mp.plan.Masters,
			SimFlat:       simFlat,
			SimMS:         simMS,
			SimImprovePct: (simFlat/simMS - 1) * 100,
		})
	}
	return rows, nil
}

// FormatHeteroStudy renders the heterogeneous study.
func FormatHeteroStudy(p int, rows []HeteroRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: heterogeneous cluster (Theorem 1 extension), KSU workload, p=%d\n", p)
	fmt.Fprintln(&b, "(simulated flat uses speed-blind uniform dispatch, as DNS rotation does —")
	fmt.Fprintln(&b, " slow nodes saturate; the analytic flat column assumes speed-proportional routing)")
	header := fmt.Sprintf("%-19s %-11s %-11s %-9s %-10s %-9s %-10s",
		"speed mix", "model flat", "model M/S", "masters", "sim flat", "sim M/S", "improve")
	fmt.Fprintln(&b, header)
	fmt.Fprintln(&b, rule(header))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-19s %-11.2f %-11.2f %-9d %-10.2f %-9.2f %-10s\n",
			r.Mix, r.AnalyticFlat, r.AnalyticMS, len(r.Masters), r.SimFlat, r.SimMS, pct(r.SimImprovePct))
	}
	return b.String()
}
