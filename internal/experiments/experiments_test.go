package experiments

import (
	"math"
	"strings"
	"testing"

	"msweb/internal/trace"
)

func TestOptionsDefaults(t *testing.T) {
	var zero Options
	o := zero.withDefaults()
	if len(o.Seeds) == 0 || o.TargetRho <= 0 || o.Duration <= 0 || len(o.InvRs) == 0 {
		t.Fatalf("withDefaults left gaps: %+v", o)
	}
	q := Quick()
	if q.MinRequests >= Default().MinRequests {
		t.Fatal("Quick is not smaller than Default")
	}
}

func TestLambdaForRho(t *testing.T) {
	// The returned λ must actually produce the requested utilization.
	lambda := LambdaForRho(32, 0.4, 1.0/40, 0.65)
	p := paramsCheck(32, lambda, 0.4, 1.0/40)
	if math.Abs(p-0.65) > 1e-9 {
		t.Fatalf("utilization at λ=%v is %v, want 0.65", lambda, p)
	}
}

func paramsCheck(p int, lambda, a, r float64) float64 {
	lambdaH := lambda / (1 + a)
	lambdaC := lambda - lambdaH
	return lambdaH/(float64(p)*MuH) + lambdaC/(float64(p)*r*MuH)
}

func TestRunTable1(t *testing.T) {
	rows, err := RunTable1(1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.Measured.PctCGI-r.PaperPctCGI) > 4 {
			t.Fatalf("%s: measured %%CGI %.1f vs paper %.1f", r.PaperName, r.Measured.PctCGI, r.PaperPctCGI)
		}
	}
	out := FormatTable1(rows)
	for _, want := range []string{"Table 1", "DEC", "UCB", "KSU", "ADL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig3(t *testing.T) {
	curves := RunFig3()
	if len(curves) != 3 {
		t.Fatalf("%d curves", len(curves))
	}
	a := FormatFig3a(curves)
	b := FormatFig3b(curves)
	if !strings.Contains(a, "Figure 3(a)") || !strings.Contains(b, "Figure 3(b)") {
		t.Fatal("figure titles missing")
	}
	if !strings.Contains(a, "1/r") || !strings.Contains(a, "a=2/8") {
		t.Fatalf("figure 3a table incomplete:\n%s", a)
	}
}

func TestRunTable2(t *testing.T) {
	rows := RunTable2(Quick())
	if len(rows) != 6 { // 3 traces × 2 cluster sizes
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if len(r.Lambdas) != len(r.InvRs) {
			t.Fatalf("row %s/%d: %d lambdas for %d r values", r.Trace, r.P, len(r.Lambdas), len(r.InvRs))
		}
		for i := 1; i < len(r.Lambdas); i++ {
			// Higher 1/r (more expensive CGI) must mean lower λ at
			// constant utilization.
			if r.Lambdas[i] >= r.Lambdas[i-1] {
				t.Fatalf("row %s/%d: λ not decreasing in 1/r: %v", r.Trace, r.P, r.Lambdas)
			}
		}
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "Table 2") {
		t.Fatal("format missing title")
	}
}

func TestRunFig4Quick(t *testing.T) {
	rows, err := RunFig4(8, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 traces × 2 quick r values
		t.Fatalf("%d rows, want 6", len(rows))
	}
	winsOverNR, winsOver1 := 0, 0
	for _, r := range rows {
		if r.MSStretch < 1 {
			t.Fatalf("impossible stretch %v", r.MSStretch)
		}
		if r.OverNR > -5 {
			winsOverNR++
		}
		if r.Over1 > -5 {
			winsOver1++
		}
	}
	// The headline direction must hold in the clear majority of cells:
	// M/S at least matches the ablations.
	if winsOverNR < 4 {
		t.Fatalf("M/S lost to M/S-nr in %d/6 cells", 6-winsOverNR)
	}
	if winsOver1 < 4 {
		t.Fatalf("M/S lost to M/S-1 in %d/6 cells", 6-winsOver1)
	}
	out := FormatFig4(8, rows)
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "vs M/S-nr") {
		t.Fatalf("format incomplete:\n%s", out)
	}
}

func TestRunFig5Quick(t *testing.T) {
	opts := Quick()
	opts.InvRs = []float64{20, 80}
	res, err := RunFig5(8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("%d rows, want 12", len(res.Rows))
	}
	if res.NominalM < 1 || res.NominalM >= 8 {
		t.Fatalf("implausible nominal m=%d", res.NominalM)
	}
	for _, r := range res.Rows {
		if r.FixedM != res.NominalM {
			t.Fatalf("row used m=%d, nominal is %d", r.FixedM, res.NominalM)
		}
		if r.FixedSF <= 0 || r.AdaptSF <= 0 {
			t.Fatalf("bad stretch factors: %+v", r)
		}
	}
	out := FormatFig5(res)
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "degrade") {
		t.Fatalf("format incomplete:\n%s", out)
	}
}

func TestRunTable3Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster validation skipped in -short mode")
	}
	rows, err := RunTable3(QuickTable3Options())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // 1 trace × 1 λ × 3 comparisons
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.ActualPct) || math.IsNaN(r.SimPct) {
			t.Fatalf("NaN cell: %+v", r)
		}
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "Table 3") {
		t.Fatal("format missing title")
	}
}

func TestTable3MastersMatchesPaper(t *testing.T) {
	if got := table3Masters("UCB"); got != 3 {
		t.Fatalf("UCB masters = %d, want 3", got)
	}
	if got := table3Masters("KSU"); got != 1 {
		t.Fatalf("KSU masters = %d, want 1", got)
	}
	if got := table3Masters("ADL"); got != 1 {
		t.Fatalf("ADL masters = %d, want 1", got)
	}
}

func TestGenTraceUsesOptions(t *testing.T) {
	tr, err := genTrace(trace.KSU, 100, 1.0/40, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 500 {
		t.Fatalf("%d requests", len(tr.Requests))
	}
}
