package experiments

// Ablations of the design choices DESIGN.md calls out: how accurate the
// off-line w sampling must be for RSRC to pay off, and how stale load
// information degrades placement (the herding effect the in-view
// booking correction counters).

import (
	"fmt"
	"strings"

	"msweb/internal/cluster"
	"msweb/internal/core"
	"msweb/internal/queuemodel"
	"msweb/internal/rng"
	"msweb/internal/trace"
)

// WSensitivityRow reports one sampling-accuracy level.
type WSensitivityRow struct {
	Label   string
	Stretch float64
}

// RunWSensitivity replays an I/O-heavy ADL workload with progressively
// corrupted w tables: exact sampling, Gaussian sampling error of
// increasing width, the blind 0.5 default (M/S-ns), and adversarially
// inverted weights. The spread shows how much headroom the off-line
// sampling step has before cost prediction misroutes work.
func RunWSensitivity(p int, opts Options) ([]WSensitivityRow, error) {
	opts = opts.withDefaults()
	prof := trace.ADL // widest CPU/disk asymmetry → sampling matters most
	r := 1.0 / 40
	lambda := LambdaForRho(p, prof.ArrivalRatio(), r, opts.TargetRho)
	n := opts.requestCount(lambda)
	plan, err := queuemodel.NewParams(p, lambda, prof.ArrivalRatio(), MuH, r).OptimalPlan()
	if err != nil {
		return nil, err
	}

	corruptions := []struct {
		label string
		make  func(exact core.WTable, s *rng.Stream) core.WTable
	}{
		{"exact sampling", func(exact core.WTable, _ *rng.Stream) core.WTable { return exact }},
		{"sampling error ±0.1", noisyW(0.1)},
		{"sampling error ±0.3", noisyW(0.3)},
		{"blind w=0.5 (M/S-ns)", func(core.WTable, *rng.Stream) core.WTable { return nil }},
		{"inverted weights", func(exact core.WTable, _ *rng.Stream) core.WTable {
			bad := make(core.WTable, len(exact))
			for k, v := range exact {
				bad[k] = 1 - v
			}
			return bad
		}},
	}

	// One cell per (corruption, seed); merged means keep corruption order.
	type cell struct {
		ci   int
		seed int64
	}
	var cells []cell
	for ci := range corruptions {
		for _, seed := range opts.Seeds {
			cells = append(cells, cell{ci, seed})
		}
	}
	stretches, err := runGrid(cells, func(c cell) (float64, error) {
		tr, exact, err := genTraceW(prof, lambda, r, n, c.seed)
		if err != nil {
			return 0, err
		}
		wt := corruptions[c.ci].make(exact, rng.New(c.seed+int64(c.ci)*1000))
		return simulateOnce(p, plan.M, core.NewMS(wt, c.seed), tr, opts.Warmup)
	})
	if err != nil {
		return nil, err
	}
	nSeeds := len(opts.Seeds)
	var rows []WSensitivityRow
	for ci, c := range corruptions {
		rows = append(rows, WSensitivityRow{
			Label:   c.label,
			Stretch: seedMean(stretches[ci*nSeeds : (ci+1)*nSeeds]),
		})
	}
	return rows, nil
}

// noisyW corrupts each sampled weight with clamped Gaussian noise.
func noisyW(sigma float64) func(core.WTable, *rng.Stream) core.WTable {
	return func(exact core.WTable, s *rng.Stream) core.WTable {
		out := make(core.WTable, len(exact))
		for k, v := range exact {
			w := s.Normal(v, sigma)
			if w < 0.01 {
				w = 0.01
			}
			if w > 0.99 {
				w = 0.99
			}
			out[k] = w
		}
		return out
	}
}

// FormatWSensitivity renders the sampling-accuracy ablation.
func FormatWSensitivity(p int, rows []WSensitivityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: off-line w sampling accuracy, ADL workload, p=%d\n", p)
	fmt.Fprintln(&b, "(note: when the dominant resource saturates, its idle ratio floors out and the")
	fmt.Fprintln(&b, " OTHER resource — whose load correlates with CGI count — can be the better-")
	fmt.Fprintln(&b, " conditioned signal, so even inverted weights may score well here)")
	header := fmt.Sprintf("%-24s %-9s %-10s", "w table", "SF", "vs exact")
	fmt.Fprintln(&b, header)
	fmt.Fprintln(&b, rule(header))
	base := 0.0
	for i, r := range rows {
		if i == 0 {
			base = r.Stretch
		}
		fmt.Fprintf(&b, "%-24s %-9.2f %-10s\n", r.Label, r.Stretch, pct((r.Stretch/base-1)*100))
	}
	return b.String()
}

// StalenessRow reports one load-information refresh period.
type StalenessRow struct {
	RefreshSeconds float64
	WithBooking    float64 // SF with the in-view booking correction
	NoBooking      float64 // SF without it
}

// RunStaleness sweeps the rstat polling period with and without the
// placement-booking correction, quantifying the stale-information herd
// effect: without booking, every request between two refreshes piles
// onto the node that looked idlest at the last poll.
func RunStaleness(p int, opts Options) ([]StalenessRow, error) {
	opts = opts.withDefaults()
	prof := trace.ADL
	r := 1.0 / 40
	lambda := LambdaForRho(p, prof.ArrivalRatio(), r, opts.TargetRho)
	n := opts.requestCount(lambda)
	plan, err := queuemodel.NewParams(p, lambda, prof.ArrivalRatio(), MuH, r).OptimalPlan()
	if err != nil {
		return nil, err
	}

	refreshes := []float64{0.05, 0.2, 1.0, 5.0}
	impacts := []float64{core.DefaultPlacementImpact, 0}
	type cell struct {
		refresh float64
		impact  float64
		seed    int64
	}
	var cells []cell
	for _, refresh := range refreshes {
		for _, impact := range impacts {
			for _, seed := range opts.Seeds {
				cells = append(cells, cell{refresh, impact, seed})
			}
		}
	}
	stretches, err := runGrid(cells, func(c cell) (float64, error) {
		tr, wt, err := genTraceW(prof, lambda, r, n, c.seed)
		if err != nil {
			return 0, err
		}
		cfg := cluster.DefaultConfig(p, plan.M)
		cfg.WarmupFraction = opts.Warmup
		cfg.LoadRefresh = c.refresh
		impact := c.impact
		if impact == 0 {
			impact = core.NoPlacementImpact
		}
		pol := core.NewPipeline(core.PipelineConfig{
			Name: "M/S", WTable: wt, Seed: c.seed, PlacementImpact: impact,
		})
		res, err := cluster.Simulate(cfg, pol, tr)
		if err != nil {
			return 0, err
		}
		return res.StretchFactor, nil
	})
	if err != nil {
		return nil, err
	}
	nSeeds := len(opts.Seeds)
	var rows []StalenessRow
	i := 0
	for _, refresh := range refreshes {
		with := seedMean(stretches[i : i+nSeeds])
		i += nSeeds
		without := seedMean(stretches[i : i+nSeeds])
		i += nSeeds
		rows = append(rows, StalenessRow{RefreshSeconds: refresh, WithBooking: with, NoBooking: without})
	}
	return rows, nil
}

// FormatStaleness renders the staleness ablation.
func FormatStaleness(p int, rows []StalenessRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: load-information staleness and placement booking, ADL workload, p=%d\n", p)
	header := fmt.Sprintf("%-12s %-14s %-13s %-12s", "refresh (s)", "SF w/ booking", "SF w/o", "herd cost")
	fmt.Fprintln(&b, header)
	fmt.Fprintln(&b, rule(header))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12.2f %-14.2f %-13.2f %-12s\n",
			r.RefreshSeconds, r.WithBooking, r.NoBooking, pct((r.NoBooking/r.WithBooking-1)*100))
	}
	return b.String()
}
