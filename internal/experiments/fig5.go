package experiments

import (
	"fmt"
	"strings"

	"msweb/internal/cluster"
	"msweb/internal/core"
	"msweb/internal/queuemodel"
	"msweb/internal/trace"
)

// Fig5Row is one bar of Figure 5: the stretch-factor increase of running
// with the master count frozen at the nominal plan versus re-planning m
// for the actual workload with Theorem 1.
type Fig5Row struct {
	Trace     string
	InvR      float64
	Rho       float64
	Lambda    float64
	FixedM    int
	AdaptedM  int // per-workload re-planned m
	FixedSF   float64
	AdaptSF   float64
	DegradPct float64 // (FixedSF/AdaptSF − 1) × 100
}

// Fig5Result carries the rows plus the nominal plan.
type Fig5Result struct {
	P        int
	NominalM int
	Rows     []Fig5Row
}

// fig5Cell is one simulation: a (trace, combo, master count, seed)
// tuple. The fixed and re-planned columns of one bar share the trace,
// so the cache generates it once.
type fig5Cell struct {
	prof    trace.Profile
	invR    float64
	rho     float64
	lambda  float64
	n       int
	masters int
	seed    int64
}

// RunFig5 reproduces the Figure 5 sensitivity study for cluster size p.
// The master count is fixed from the nominal parameters the paper uses
// (r=1/60, a=0.44, λ=750 for p=32 scaled by cluster size), then traces
// whose r, a and λ differ substantially are replayed against both the
// fixed configuration and one whose master count is re-planned for each
// workload by Theorem 1 — the administrator-style periodic
// reconfiguration the paper describes ("the number of master nodes can
// be changed by administrators periodically"; fully dynamic adaptation
// "requires dynamic configuration change" and is available separately
// via cluster.AdaptiveMasters). The paper observes at most 9%
// degradation, 4% on average.
func RunFig5(p int, opts Options) (*Fig5Result, error) {
	opts = opts.withDefaults()

	nominalLambda := 750.0 * float64(p) / 32
	plan, err := queuemodel.NewParams(p, nominalLambda, 0.44, MuH, 1.0/60).OptimalPlan()
	if err != nil {
		return nil, fmt.Errorf("fig5 nominal plan: %w", err)
	}
	fixedM := plan.M

	// 12 bar groups: 3 traces × 4 (1/r, ρ) combinations spanning the
	// paper's variation (r 1/20..1/160, load light to heavy).
	combos := []struct {
		invR float64
		rho  float64
	}{
		{20, 0.40}, {40, 0.55}, {80, 0.70}, {160, 0.80},
	}

	type group struct {
		prof     trace.Profile
		invR     float64
		rho      float64
		lambda   float64
		adaptedM int
	}
	var groups []group
	var cells []fig5Cell
	for _, prof := range trace.Profiles() {
		a := prof.ArrivalRatio()
		for _, cb := range combos {
			r := 1 / cb.invR
			lambda := LambdaForRho(p, a, r, cb.rho)
			n := opts.requestCount(lambda)
			cellPlan, err := queuemodel.NewParams(p, lambda, a, MuH, r).OptimalPlan()
			if err != nil {
				return nil, fmt.Errorf("fig5 %s 1/r=%.0f plan: %w", prof.Name, cb.invR, err)
			}
			groups = append(groups, group{prof, cb.invR, cb.rho, lambda, cellPlan.M})
			for _, masters := range []int{fixedM, cellPlan.M} {
				for _, seed := range opts.Seeds {
					cells = append(cells, fig5Cell{
						prof: prof, invR: cb.invR, rho: cb.rho, lambda: lambda,
						n: n, masters: masters, seed: seed,
					})
				}
			}
		}
	}

	stretches, err := runGrid(cells, func(c fig5Cell) (float64, error) {
		tr, wt, err := genTraceW(c.prof, c.lambda, 1/c.invR, c.n, c.seed)
		if err != nil {
			return 0, fmt.Errorf("fig5 %s 1/r=%.0f seed %d: %w", c.prof.Name, c.invR, c.seed, err)
		}
		cfg := cluster.DefaultConfig(p, c.masters)
		cfg.WarmupFraction = opts.Warmup
		rr, err := cluster.Simulate(cfg, core.NewMS(wt, c.seed), tr)
		if err != nil {
			return 0, fmt.Errorf("fig5 %s 1/r=%.0f m=%d: %w", c.prof.Name, c.invR, c.masters, err)
		}
		return rr.StretchFactor, nil
	})
	if err != nil {
		return nil, err
	}

	nSeeds := len(opts.Seeds)
	res := &Fig5Result{P: p, NominalM: fixedM}
	i := 0
	for _, g := range groups {
		fixedSF := seedMean(stretches[i : i+nSeeds])
		i += nSeeds
		adaptSF := seedMean(stretches[i : i+nSeeds])
		i += nSeeds
		res.Rows = append(res.Rows, Fig5Row{
			Trace:     g.prof.Name,
			InvR:      g.invR,
			Rho:       g.rho,
			Lambda:    g.lambda,
			FixedM:    fixedM,
			AdaptedM:  g.adaptedM,
			FixedSF:   fixedSF,
			AdaptSF:   adaptSF,
			DegradPct: (fixedSF/adaptSF - 1) * 100,
		})
	}
	return res, nil
}

// MeanDegradation returns the average positive degradation across rows
// (negative rows — fixed beating adaptive — count as zero, as the paper
// reports degradation).
func (r *Fig5Result) MeanDegradation() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, row := range r.Rows {
		if row.DegradPct > 0 {
			sum += row.DegradPct
		}
	}
	return sum / float64(len(r.Rows))
}

// FormatFig5 renders the sensitivity table.
func FormatFig5(res *Fig5Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: degradation of fixed m=%d vs per-workload re-planned m, p=%d\n", res.NominalM, res.P)
	fmt.Fprintln(&b, "(nominal plan from r=1/60, a=0.44; paper: ≤9% degradation, 4% average)")
	header := fmt.Sprintf("%-6s %-6s %-6s %-9s %-8s %-8s %-9s %-9s %-10s",
		"Trace", "1/r", "ρ_F", "λ(req/s)", "fixed m", "adapt m", "SF fixed", "SF adapt", "degrade")
	fmt.Fprintln(&b, header)
	fmt.Fprintln(&b, rule(header))
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%-6s %-6.0f %-6.2f %-9.0f %-8d %-8d %-9.2f %-9.2f %-10s\n",
			r.Trace, r.InvR, r.Rho, r.Lambda, r.FixedM, r.AdaptedM, r.FixedSF, r.AdaptSF, pct(r.DegradPct))
	}
	fmt.Fprintf(&b, "\nmean degradation (positive rows): %.1f%%\n", res.MeanDegradation())
	return b.String()
}
