package experiments

import (
	"fmt"
	"strings"

	"msweb/internal/cluster"
	"msweb/internal/core"
	"msweb/internal/queuemodel"
	"msweb/internal/trace"
	"msweb/internal/workload"
)

// OpenClosedRow compares replay methodologies at one load multiple.
type OpenClosedRow struct {
	LoadFactor float64 // offered load relative to capacity
	OpenSF     float64
	ClosedSF   float64
}

// RunOpenClosed contrasts the paper's open-loop replay with closed-loop
// session driving on identical hardware and policy. Below saturation the
// two agree; past it the open-loop stretch diverges while closed-loop
// users self-throttle — a methodological caveat for reading the paper's
// heavy-load numbers.
func RunOpenClosed(p int, opts Options) ([]OpenClosedRow, error) {
	opts = opts.withDefaults()
	prof := trace.KSU
	r := 1.0 / 40
	plan, err := queuemodel.NewParams(p, LambdaForRho(p, prof.ArrivalRatio(), r, 0.5), prof.ArrivalRatio(), MuH, r).OptimalPlan()
	if err != nil {
		return nil, err
	}

	// One cell per (load factor, loop mode); the open and closed replays
	// of one load share a cached trace but run on independent engines.
	loads := []float64{0.5, 0.8, 1.1, 1.4}
	type cell struct {
		load   float64
		closed bool
	}
	var cells []cell
	for _, load := range loads {
		cells = append(cells, cell{load, false}, cell{load, true})
	}
	sfs, err := runGrid(cells, func(c cell) (float64, error) {
		lambda := LambdaForRho(p, prof.ArrivalRatio(), r, 1) * c.load
		n := opts.requestCount(lambda)
		if n > 30000 {
			n = 30000 // cap the overloaded open-loop run
		}
		tr, wt, err := genTraceW(prof, lambda, r, n, opts.Seeds[0])
		if err != nil {
			return 0, err
		}
		if !c.closed {
			// Open loop: fixed-schedule trace replay.
			openCfg := cluster.DefaultConfig(p, plan.M)
			openCfg.WarmupFraction = opts.Warmup
			openRes, err := cluster.Simulate(openCfg, core.NewMS(wt, opts.Seeds[0]), tr)
			if err != nil {
				return 0, err
			}
			return openRes.StretchFactor, nil
		}

		// Closed loop: sessions issuing the same per-user rate. Mean
		// session length 8, think time chosen so an unloaded session
		// offers the same request rate; session arrivals supply λ.
		const meanReqs = 8
		think := 0.3
		sessionRate := lambda / meanReqs
		sessions, err := workload.Generate(workload.Config{
			Profile:      prof,
			Sessions:     n / meanReqs,
			SessionRate:  sessionRate,
			MeanRequests: meanReqs,
			MeanThink:    think,
			MuH:          MuH,
			R:            r,
			Seed:         opts.Seeds[0],
		})
		if err != nil {
			return 0, err
		}
		cl, err := newSimCluster(p, plan.M, wt, opts)
		if err != nil {
			return 0, err
		}
		closedRes, err := cl.RunClosedLoop(sessions)
		if err != nil {
			return 0, err
		}
		return closedRes.StretchFactor, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []OpenClosedRow
	for li, load := range loads {
		rows = append(rows, OpenClosedRow{
			LoadFactor: load,
			OpenSF:     sfs[2*li],
			ClosedSF:   sfs[2*li+1],
		})
	}
	return rows, nil
}

// newSimCluster builds an engine+cluster pair for the closed-loop runs.
func newSimCluster(p, masters int, wt core.WTable, opts Options) (*cluster.Cluster, error) {
	cfg := cluster.DefaultConfig(p, masters)
	return cluster.New(newEngine(), cfg, core.NewMS(wt, opts.Seeds[0]))
}

// FormatOpenClosed renders the methodology comparison.
func FormatOpenClosed(p int, rows []OpenClosedRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Methodology: open-loop replay vs closed-loop sessions, KSU workload, p=%d\n", p)
	fmt.Fprintln(&b, "(load factor is the offered rate relative to cluster capacity)")
	header := fmt.Sprintf("%-12s %-10s %-10s", "load", "open SF", "closed SF")
	fmt.Fprintln(&b, header)
	fmt.Fprintln(&b, rule(header))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12.2f %-10.2f %-10.2f\n", r.LoadFactor, r.OpenSF, r.ClosedSF)
	}
	fmt.Fprintln(&b, "\npast saturation (load > 1) the open-loop stretch diverges with trace length,")
	fmt.Fprintln(&b, "while closed-loop users self-throttle to the service capacity.")
	return b.String()
}
