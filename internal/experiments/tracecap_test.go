package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func traceOpts(tc *TraceCollector) Options {
	return Options{
		Seeds:       []int64{1},
		TargetRho:   0.65,
		MinRequests: 300,
		Duration:    0.05,
		Warmup:      0.15,
		InvRs:       []float64{20},
		Trace:       tc,
	}
}

// captureFig4 runs a tiny Figure 4 grid at the given parallelism and
// returns the merged trace bytes.
func captureFig4(t *testing.T, workers int, match string) []byte {
	t.Helper()
	defer SetParallelism(0)
	SetParallelism(workers)
	tc := NewTraceCollector(match)
	if _, err := RunFig4(8, traceOpts(tc)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tc.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The merged trace must be byte-identical regardless of how the grid's
// cells were scheduled: labels come from cell parameters and the merge
// is sorted, so -parallel 1 and -parallel 4 agree exactly.
func TestTraceCaptureDeterministicAcrossParallelism(t *testing.T) {
	seq := captureFig4(t, 1, "/ms/seed1")
	par := captureFig4(t, 4, "/ms/seed1")
	if len(seq) == 0 {
		t.Fatal("no trace captured")
	}
	if !bytes.Equal(seq, par) {
		t.Fatalf("trace bytes differ between -parallel 1 (%d bytes) and -parallel 4 (%d bytes)", len(seq), len(par))
	}

	// Every line is parseable JSON and the capture honors the filter.
	var cells, events int
	for i, line := range strings.Split(strings.TrimSpace(string(seq)), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
		}
		if cell, ok := m["cell"].(string); ok {
			cells++
			if !strings.Contains(cell, "/ms/seed1") {
				t.Fatalf("cell %q escaped the filter", cell)
			}
			continue
		}
		events++
		if m["ev"] == nil || m["req"] == nil {
			t.Fatalf("event line missing ev/req: %s", line)
		}
	}
	if cells == 0 || events == 0 {
		t.Fatalf("merged output has %d cells, %d events", cells, events)
	}
}

func TestTraceCollectorFilterAndCells(t *testing.T) {
	tc := NewTraceCollector("keep")
	if tr := tc.Tracer("drop/this"); tr != nil {
		t.Fatal("non-matching label got a tracer")
	}
	a := tc.Tracer("b/keep/2")
	b := tc.Tracer("a/keep/1")
	if a == nil || b == nil {
		t.Fatal("matching labels rejected")
	}
	if again := tc.Tracer("b/keep/2"); again != a {
		t.Fatal("same label produced a second tracer")
	}
	got := tc.Cells()
	if len(got) != 2 || got[0] != "a/keep/1" || got[1] != "b/keep/2" {
		t.Fatalf("Cells() = %v", got)
	}

	// A nil collector is an always-off tracer source.
	var nilTC *TraceCollector
	if tr := nilTC.Tracer("anything"); tr != nil {
		t.Fatal("nil collector returned a tracer")
	}
}
