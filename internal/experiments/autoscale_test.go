package experiments

import "testing"

// The autoscaling study's headline claims at quick fidelity: the
// autoscaler saves node-hours on both workloads without giving up SLO
// attainment beyond tolerance, and the study is run-to-run
// deterministic (the msbench CSV diff in CI depends on that).
func TestAutoscaleStudy(t *testing.T) {
	opts := Quick()
	rows, err := RunAutoscale(16, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 (2 workloads × 2 scenarios)", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		fixed, auto := rows[i], rows[i+1]
		if fixed.Scenario != "fixed fleet" || auto.Scenario != "autoscaled" || fixed.Workload != auto.Workload {
			t.Fatalf("row pairing broken: %+v / %+v", fixed, auto)
		}
		if auto.NodeHours >= fixed.NodeHours || auto.SavedPct <= 0 {
			t.Errorf("%s: no node-hours saved (%.4f vs %.4f)", auto.Workload, auto.NodeHours, fixed.NodeHours)
		}
		if auto.SLO < fixed.SLO-0.02 {
			t.Errorf("%s: SLO regressed beyond tolerance (%.4f vs %.4f)", auto.Workload, auto.SLO, fixed.SLO)
		}
		if auto.SlaveOffs == 0 || auto.Epochs == 0 {
			t.Errorf("%s: autoscaler idle (offs=%d epochs=%d)", auto.Workload, auto.SlaveOffs, auto.Epochs)
		}
	}

	again, err := RunAutoscale(16, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != again[i] {
			t.Fatalf("row %d diverged between runs: %+v vs %+v", i, rows[i], again[i])
		}
	}
}
