package experiments

import (
	"fmt"
	"strings"

	"msweb/internal/queuemodel"
)

// RunFig3 computes the analytic Figure 3 curves with the paper's
// parameters (λ=1000, p=32, μ_h=1200, a ∈ {2/8, 3/7, 4/6}).
func RunFig3() []queuemodel.Fig3Curve {
	return queuemodel.Figure3(queuemodel.DefaultFig3Config())
}

// FormatFig3a renders Figure 3(a): improvement of M/S over flat.
func FormatFig3a(curves []queuemodel.Fig3Curve) string {
	return formatFig3(curves, "Figure 3(a): analytic improvement of M/S over the flat model (%)",
		func(p queuemodel.Fig3Point) float64 { return p.OverFlatPct })
}

// FormatFig3b renders Figure 3(b): improvement of M/S over M/S'.
func FormatFig3b(curves []queuemodel.Fig3Curve) string {
	return formatFig3(curves, "Figure 3(b): analytic improvement of M/S over the fixed M/S' split (%)",
		func(p queuemodel.Fig3Point) float64 { return p.OverMSPrimePct })
}

func formatFig3(curves []queuemodel.Fig3Curve, title string, pick func(queuemodel.Fig3Point) float64) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintln(&b, "λ=1000 req/s, p=32, μ_h=1200 req/s")
	header := fmt.Sprintf("%-6s", "1/r")
	for _, c := range curves {
		header += fmt.Sprintf(" %10s", c.Label)
	}
	fmt.Fprintln(&b, header)
	fmt.Fprintln(&b, rule(header))
	if len(curves) == 0 {
		return b.String()
	}
	for i, pt := range curves[0].Points {
		row := fmt.Sprintf("%-6.0f", pt.InvR)
		for _, c := range curves {
			if i < len(c.Points) {
				row += fmt.Sprintf(" %9.1f%%", pick(c.Points[i]))
			} else {
				row += fmt.Sprintf(" %10s", "-")
			}
		}
		fmt.Fprintln(&b, row)
	}
	fmt.Fprintln(&b)
	fmt.Fprint(&b, asciiChart(curves, pick))
	return b.String()
}

// asciiChart draws the curves as a rough terminal plot, one glyph per
// curve, so the monotone-growth shape of Figure 3 is visible at a glance.
func asciiChart(curves []queuemodel.Fig3Curve, pick func(queuemodel.Fig3Point) float64) string {
	const height = 12
	glyphs := []byte{'*', 'o', '+'}
	maxV := 1.0
	for _, c := range curves {
		for _, p := range c.Points {
			if v := pick(p); v > maxV {
				maxV = v
			}
		}
	}
	cols := 0
	for _, c := range curves {
		if len(c.Points) > cols {
			cols = len(c.Points)
		}
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols*3))
	}
	for ci, c := range curves {
		for pi, p := range c.Points {
			row := height - 1 - int(pick(p)/maxV*float64(height-1))
			if row < 0 {
				row = 0
			}
			col := pi*3 + 1
			if col < len(grid[row]) {
				grid[row][col] = glyphs[ci%len(glyphs)]
			}
		}
	}
	var b strings.Builder
	for i, line := range grid {
		label := "      "
		if i == 0 {
			label = fmt.Sprintf("%5.0f%%", maxV)
		}
		if i == height-1 {
			label = "    0%"
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "       +%s> 1/r\n", strings.Repeat("-", cols*3))
	for i, c := range curves {
		fmt.Fprintf(&b, "       %c = %s\n", glyphs[i%len(glyphs)], c.Label)
	}
	return b.String()
}
