package experiments

// Tabular (CSV-ready) views of every experiment's rows, built on
// internal/report. msbench -csv writes these next to the text output.

import (
	"math"

	"msweb/internal/queuemodel"
	"msweb/internal/report"
)

// Table1Table converts Table 1 rows.
func Table1Table(rows []Table1Row) *report.Table {
	t := &report.Table{
		Title: "Table 1: trace characteristics",
		Columns: []string{"trace", "year", "paper_pct_cgi", "ours_pct_cgi",
			"paper_interval_s", "ours_interval_s", "paper_html_bytes", "ours_html_bytes",
			"paper_cgi_bytes", "ours_cgi_bytes"},
	}
	for _, r := range rows {
		t.AddRow(r.PaperName, r.PaperYear, r.PaperPctCGI, round2(r.Measured.PctCGI),
			r.PaperInterval, round4(r.Measured.MeanInterval), r.PaperHTML, round2(r.Measured.MeanHTMLSize),
			r.PaperCGI, round2(r.Measured.MeanCGISize))
	}
	return t
}

// Table2Table converts Table 2 rows (one line per trace × p × r).
func Table2Table(rows []Table2Row) *report.Table {
	t := &report.Table{
		Title:   "Table 2: workload parameters",
		Columns: []string{"trace", "a", "p", "target_rho", "inv_r", "lambda_req_s"},
	}
	for _, r := range rows {
		for i, invR := range r.InvRs {
			t.AddRow(r.Trace, round4(r.A), r.P, r.TargetRho, invR, round2(r.Lambdas[i]))
		}
	}
	return t
}

// Fig3Table converts the Figure 3 curves (both subfigures share rows).
func Fig3Table(curves []queuemodel.Fig3Curve) *report.Table {
	t := &report.Table{
		Title: "Figure 3: analytic improvements",
		Columns: []string{"a_label", "inv_r", "ms_stretch", "flat_stretch",
			"msprime_stretch", "over_flat_pct", "over_msprime_pct", "masters", "theta"},
	}
	for _, c := range curves {
		for _, p := range c.Points {
			t.AddRow(c.Label, p.InvR, round4(p.MSStretch), round4(p.FlatStretch),
				round4(p.MSPrimeStretch), round2(p.OverFlatPct), round2(p.OverMSPrimePct),
				p.Masters, round4(p.Theta))
		}
	}
	return t
}

// Fig4Table converts Figure 4 rows.
func Fig4Table(p int, rows []Fig4Row) *report.Table {
	t := &report.Table{
		Title: "Figure 4: scheduling ablations",
		Columns: []string{"p", "trace", "inv_r", "lambda_req_s", "masters",
			"ms_stretch", "over_ns_pct", "over_nr_pct", "over_1_pct"},
	}
	for _, r := range rows {
		t.AddRow(p, r.Trace, r.InvR, round2(r.Lambda), r.Masters,
			round4(r.MSStretch), round2(r.OverNS), round2(r.OverNR), round2(r.Over1))
	}
	return t
}

// Fig5Table converts Figure 5 rows.
func Fig5Table(res *Fig5Result) *report.Table {
	t := &report.Table{
		Title: "Figure 5: fixed vs re-planned master count",
		Columns: []string{"p", "trace", "inv_r", "rho", "lambda_req_s",
			"fixed_m", "replanned_m", "sf_fixed", "sf_replanned", "degrade_pct"},
	}
	for _, r := range res.Rows {
		t.AddRow(res.P, r.Trace, r.InvR, r.Rho, round2(r.Lambda),
			r.FixedM, r.AdaptedM, round4(r.FixedSF), round4(r.AdaptSF), round2(r.DegradPct))
	}
	return t
}

// Table3Table converts Table 3 rows.
func Table3Table(rows []Table3Row) *report.Table {
	t := &report.Table{
		Title:   "Table 3: live vs simulated improvements",
		Columns: []string{"trace", "lambda_req_s", "versus", "actual_pct", "simulated_pct", "abs_diff"},
	}
	for _, r := range rows {
		t.AddRow(r.Trace, r.Lambda, r.Versus, round2(r.ActualPct), round2(r.SimPct), round2(r.Diff()))
	}
	return t
}

// CacheSweepTable converts the cache study.
func CacheSweepTable(rows []CacheSweepRow) *report.Table {
	t := &report.Table{
		Title:   "Extension: dynamic-content cache sweep",
		Columns: []string{"capacity", "ttl_s", "stretch", "dyn_mean_resp_s", "hit_ratio"},
	}
	for _, r := range rows {
		t.AddRow(r.Capacity, r.TTL, round4(r.Stretch), round4(r.DynMeanResp), round4(r.HitRatio))
	}
	return t
}

// FailoverTable converts the failover study.
func FailoverTable(rows []FailoverRow) *report.Table {
	t := &report.Table{
		Title:   "Extension: failover and recruitment",
		Columns: []string{"scenario", "stretch", "failovers", "completed"},
	}
	for _, r := range rows {
		t.AddRow(r.Scenario, round4(r.Stretch), r.Failovers, r.Completed)
	}
	return t
}

// FlashCrowdTable converts the flash-crowd study.
func FlashCrowdTable(rows []FlashCrowdRow) *report.Table {
	t := &report.Table{
		Title:   "Extension: flash-crowd recruitment",
		Columns: []string{"scenario", "stretch", "peak_stretch", "recruitments", "releases"},
	}
	for _, r := range rows {
		t.AddRow(r.Scenario, round4(r.Stretch), round4(r.PeakStretch), r.Recruitments, r.Releases)
	}
	return t
}

// HeteroTable converts the heterogeneous study.
func HeteroTable(rows []HeteroRow) *report.Table {
	t := &report.Table{
		Title: "Extension: heterogeneous cluster",
		Columns: []string{"mix", "model_flat", "model_ms", "masters",
			"sim_flat", "sim_ms", "improve_pct"},
	}
	for _, r := range rows {
		t.AddRow(r.Mix, round4(r.AnalyticFlat), round4(r.AnalyticMS), len(r.Masters),
			round4(r.SimFlat), round4(r.SimMS), round2(r.SimImprovePct))
	}
	return t
}

// WSensitivityTable converts the sampling ablation.
func WSensitivityTable(rows []WSensitivityRow) *report.Table {
	t := &report.Table{
		Title:   "Ablation: w sampling accuracy",
		Columns: []string{"w_table", "stretch"},
	}
	for _, r := range rows {
		t.AddRow(r.Label, round4(r.Stretch))
	}
	return t
}

// StalenessTable converts the staleness ablation.
func StalenessTable(rows []StalenessRow) *report.Table {
	t := &report.Table{
		Title:   "Ablation: load-info staleness",
		Columns: []string{"refresh_s", "sf_with_booking", "sf_without_booking"},
	}
	for _, r := range rows {
		t.AddRow(r.RefreshSeconds, round4(r.WithBooking), round4(r.NoBooking))
	}
	return t
}

// OpenClosedTable converts the methodology comparison.
func OpenClosedTable(rows []OpenClosedRow) *report.Table {
	t := &report.Table{
		Title:   "Methodology: open vs closed loop",
		Columns: []string{"load_factor", "open_sf", "closed_sf"},
	}
	for _, r := range rows {
		t.AddRow(r.LoadFactor, round4(r.OpenSF), round4(r.ClosedSF))
	}
	return t
}

// reportTable aliases report.Table so experiment files can build tables
// without importing the package repeatedly.
type reportTable = report.Table

// newReportTable constructs a titled table.
func newReportTable(title string, columns []string) *reportTable {
	return &report.Table{Title: title, Columns: columns}
}

// round2/round4 trim float noise for stable CSV cells.
func round2(x float64) float64 { return roundTo(x, 100) }
func round4(x float64) float64 { return roundTo(x, 10000) }

func roundTo(x float64, scale float64) float64 {
	return math.Round(x*scale) / scale
}
