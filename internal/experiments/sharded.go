package experiments

// Sharded-vs-global control plane study. The paper's master tier keeps
// one global load view per master — O(cluster) poll work per refresh
// tick. The sharded control plane (cluster.Config.Shards) gives each
// master its own shard and gossips compact summaries across shards; the
// study measures what that buys and costs as the fleet grows: per-master
// per-tick poll work (flat in fleet size once sharded), the staleness of
// the cross-shard summaries a spill decision would act on, and the
// stretch factor (placement quality) against the single-view baseline on
// identical traces.

import (
	"fmt"
	"strings"

	"msweb/internal/cluster"
	"msweb/internal/core"
	"msweb/internal/trace"
)

// shardNodesPerMaster sizes the master tier: one master per ~64 nodes,
// so shard size stays constant while the fleet scales.
const shardNodesPerMaster = 64

// ShardScaleRow compares the two control planes at one fleet size.
type ShardScaleRow struct {
	Nodes   int
	Masters int
	// GlobalPolled / ShardPolled are nodes polled per master per refresh
	// tick: the fleet size under the global view, the shard size (+1 for
	// the master's own sample) when sharded.
	GlobalPolled float64
	ShardPolled  float64
	// MaxShard is the largest shard the consistent-hash map produced.
	MaxShard int
	// GlobalSF / ShardSF are the seed-mean stretch factors on identical
	// traces — the placement-quality cost of the partitioned view.
	GlobalSF float64
	ShardSF  float64
	// SummaryAge is the mean age (virtual seconds) of the remote
	// summaries a sharded master holds, sampled at every policy tick.
	SummaryAge float64
	// Spilled / SpillShed count cross-shard spills and sheds with no
	// fresh remote candidate (summed over seeds).
	Spilled   int64
	SpillShed int64
}

// RunShardScale runs both control planes at each fleet size on identical
// KSU traces. The workload is held fixed while the fleet grows (this is
// a control-plane scaling study, not a saturation study), so the
// quantity to watch is ShardPolled staying flat while GlobalPolled grows
// linearly, with ShardSF tracking GlobalSF.
func RunShardScale(fleets []int, opts Options) ([]ShardScaleRow, error) {
	opts = opts.withDefaults()
	prof := trace.KSU
	r := 1.0 / 40
	n := opts.MinRequests
	lambda := float64(n) / opts.Duration

	type cell struct {
		fi      int
		sharded bool
		seed    int64
	}
	type cellRes struct {
		sf     float64
		shards *cluster.ShardStats
	}
	var cells []cell
	for fi := range fleets {
		for _, sharded := range []bool{false, true} {
			for _, seed := range opts.Seeds {
				cells = append(cells, cell{fi, sharded, seed})
			}
		}
	}
	results, err := runGrid(cells, func(c cell) (cellRes, error) {
		p := fleets[c.fi]
		m := p / shardNodesPerMaster
		if m < 4 {
			m = 4
		}
		tr, wt, err := genTraceW(prof, lambda, r, n, c.seed)
		if err != nil {
			return cellRes{}, err
		}
		cfg := cluster.DefaultConfig(p, m)
		cfg.WarmupFraction = opts.Warmup
		cfg.EnableShedding = true
		if c.sharded {
			cfg.Shards = m
		}
		res, err := cluster.Simulate(cfg, core.NewMS(wt, c.seed), tr)
		if err != nil {
			return cellRes{}, err
		}
		return cellRes{sf: res.StretchFactor, shards: res.Shards}, nil
	})
	if err != nil {
		return nil, err
	}

	rows := make([]ShardScaleRow, len(fleets))
	nSeeds := len(opts.Seeds)
	i := 0
	for fi, p := range fleets {
		m := p / shardNodesPerMaster
		if m < 4 {
			m = 4
		}
		row := &rows[fi]
		row.Nodes, row.Masters = p, m
		row.GlobalPolled = float64(p)
		for _, sharded := range []bool{false, true} {
			var sfs []float64
			for s := 0; s < nSeeds; s++ {
				cr := results[i]
				i++
				sfs = append(sfs, cr.sf)
				if !sharded || cr.shards == nil {
					continue
				}
				row.ShardPolled += cr.shards.NodesPolledPerTick / float64(nSeeds)
				row.SummaryAge += cr.shards.MeanSummaryAge / float64(nSeeds)
				row.Spilled += cr.shards.Spilled
				row.SpillShed += cr.shards.SpillShed
				if cr.shards.MaxShardSize > row.MaxShard {
					row.MaxShard = cr.shards.MaxShardSize
				}
			}
			if sharded {
				row.ShardSF = seedMean(sfs)
			} else {
				row.GlobalSF = seedMean(sfs)
			}
		}
	}
	return rows, nil
}

// FormatShardScale renders the comparison.
func FormatShardScale(rows []ShardScaleRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Extension: sharded vs global control plane (identical traces, fixed workload)")
	header := fmt.Sprintf("%-7s %-8s %-12s %-12s %-9s %-10s %-10s %-9s %-8s",
		"nodes", "masters", "polled/tick", "polled (gl)", "maxshard", "SF shard", "SF global", "sum age", "spilled")
	fmt.Fprintln(&b, header)
	fmt.Fprintln(&b, rule(header))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7d %-8d %-12.1f %-12.0f %-9d %-10.3f %-10.3f %-9.3f %-8d\n",
			r.Nodes, r.Masters, r.ShardPolled, r.GlobalPolled, r.MaxShard,
			r.ShardSF, r.GlobalSF, r.SummaryAge, r.Spilled)
	}
	fmt.Fprintln(&b, "\nPer-master per-tick poll work stays flat under sharding while the global")
	fmt.Fprintln(&b, "view's grows with the fleet; the stretch columns price the partitioned view.")
	return b.String()
}

// ShardScaleTable converts the comparison for CSV emission.
func ShardScaleTable(rows []ShardScaleRow) *reportTable {
	t := newReportTable("Extension: sharded control plane scaling",
		[]string{"nodes", "masters", "shard_polled_per_tick", "global_polled_per_tick",
			"max_shard", "sf_sharded", "sf_global", "summary_age_s", "spilled", "spill_shed"})
	for _, r := range rows {
		t.AddRow(r.Nodes, r.Masters, round2(r.ShardPolled), r.GlobalPolled,
			r.MaxShard, round4(r.ShardSF), round4(r.GlobalSF), round4(r.SummaryAge),
			r.Spilled, r.SpillShed)
	}
	return t
}
