package experiments

import (
	"fmt"
	"strings"

	"msweb/internal/queuemodel"
)

// DisciplineRow compares service disciplines at one CGI intensity.
type DisciplineRow struct {
	InvR        float64
	PSFlat      float64
	PSMS        float64
	PSGainPct   float64
	FCFSFlat    float64
	FCFSMS      float64
	FCFSGainPct float64
	FCFSSplitM  int
}

// RunDiscipline contrasts the processor-sharing analysis the paper uses
// with the FCFS alternative it mentions: the same cluster and mix, both
// disciplines, across the CGI-intensity sweep. Under FCFS every static
// request in a mixed queue pays the residual of in-progress CGI work,
// so the separation gain dwarfs the PS one — analytical support for the
// paper's motivation that "mixing static and dynamic content processing
// can slow down simple static request processing".
func RunDiscipline(p int, opts Options) ([]DisciplineRow, error) {
	opts = opts.withDefaults()
	a := 3.0 / 7.0
	var rows []DisciplineRow
	for _, invR := range opts.InvRs {
		r := 1 / invR
		lambda := LambdaForRho(p, a, r, opts.TargetRho)
		params := queuemodel.NewParams(p, lambda, a, MuH, r)
		plan, err := params.OptimalPlan()
		if err != nil {
			return nil, fmt.Errorf("discipline 1/r=%.0f: %w", invR, err)
		}
		fcfsGain, fcfsM := params.FCFSSeparationGain()
		row := DisciplineRow{
			InvR:        invR,
			PSFlat:      plan.Flat,
			PSMS:        plan.Stretch,
			PSGainPct:   (plan.Flat/plan.Stretch - 1) * 100,
			FCFSFlat:    params.FCFSFlatStretch(),
			FCFSMS:      params.FCFSMSStretch(fcfsM, 0),
			FCFSGainPct: (fcfsGain - 1) * 100,
			FCFSSplitM:  fcfsM,
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatDiscipline renders the comparison.
func FormatDiscipline(p int, rows []DisciplineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Analysis: separation gain under PS vs FCFS disciplines, a=3/7, p=%d, ρ=0.65\n", p)
	header := fmt.Sprintf("%-6s %-9s %-9s %-10s %-10s %-10s %-11s",
		"1/r", "PS flat", "PS M/S", "PS gain", "FCFS flat", "FCFS M/S", "FCFS gain")
	fmt.Fprintln(&b, header)
	fmt.Fprintln(&b, rule(header))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6.0f %-9.2f %-9.2f %-10s %-10.1f %-10.2f %-11s\n",
			r.InvR, r.PSFlat, r.PSMS, pct(r.PSGainPct), r.FCFSFlat, r.FCFSMS, pct(r.FCFSGainPct))
	}
	fmt.Fprintln(&b, "\nFCFS charges statics the residual of in-progress CGI bursts, so the")
	fmt.Fprintln(&b, "value of separating tiers is an order of magnitude larger than under PS.")
	return b.String()
}

// DisciplineTable converts the comparison for CSV emission.
func DisciplineTable(rows []DisciplineRow) *reportTable {
	t := newReportTable("Analysis: PS vs FCFS separation gain",
		[]string{"inv_r", "ps_flat", "ps_ms", "ps_gain_pct", "fcfs_flat", "fcfs_ms", "fcfs_gain_pct", "fcfs_split_m"})
	for _, r := range rows {
		t.AddRow(r.InvR, round4(r.PSFlat), round4(r.PSMS), round2(r.PSGainPct),
			round4(r.FCFSFlat), round4(r.FCFSMS), round2(r.FCFSGainPct), r.FCFSSplitM)
	}
	return t
}
