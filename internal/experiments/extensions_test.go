package experiments

import (
	"strings"
	"testing"
)

func TestRunCacheSweep(t *testing.T) {
	rows, err := RunCacheSweep(8, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	if rows[0].Capacity != 0 || rows[0].HitRatio != 0 {
		t.Fatalf("baseline row wrong: %+v", rows[0])
	}
	// Hit ratio must grow with capacity.
	for i := 2; i < len(rows); i++ {
		if rows[i].HitRatio < rows[i-1].HitRatio-0.02 {
			t.Fatalf("hit ratio fell with capacity: %+v then %+v", rows[i-1], rows[i])
		}
	}
	// A large cache must beat no cache on overall stretch.
	last := rows[len(rows)-1]
	if last.HitRatio <= 0.2 {
		t.Fatalf("large cache hit ratio %v implausibly low", last.HitRatio)
	}
	if last.Stretch >= rows[0].Stretch {
		t.Fatalf("large cache (%v) did not beat baseline (%v)", last.Stretch, rows[0].Stretch)
	}
	out := FormatCacheSweep(8, rows)
	if !strings.Contains(out, "cache") || !strings.Contains(out, "off") {
		t.Fatalf("format incomplete:\n%s", out)
	}
}

func TestRunFailoverStudy(t *testing.T) {
	rows, err := RunFailoverStudy(8, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	healthy, crash, recruited := rows[0], rows[1], rows[2]
	if healthy.Failovers != 0 {
		t.Fatalf("healthy run recorded %d failovers", healthy.Failovers)
	}
	if crash.Failovers == 0 {
		t.Fatal("crash scenario recorded no failovers")
	}
	// All scenarios must complete the full workload.
	for _, r := range rows {
		if r.Completed != healthy.Completed {
			t.Fatalf("scenario %q completed %d, healthy %d", r.Scenario, r.Completed, healthy.Completed)
		}
	}
	// Recruitment must recover capacity lost to the crash.
	if recruited.Stretch >= crash.Stretch {
		t.Fatalf("recruitment (%v) did not improve on the crash (%v)", recruited.Stretch, crash.Stretch)
	}
	out := FormatFailoverStudy(8, rows)
	if !strings.Contains(out, "recruit") {
		t.Fatalf("format incomplete:\n%s", out)
	}
}

func TestRunHeteroStudy(t *testing.T) {
	rows, err := RunHeteroStudy(8, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.AnalyticMS > r.AnalyticFlat {
			t.Fatalf("%s: analytic M/S %v worse than flat %v", r.Mix, r.AnalyticMS, r.AnalyticFlat)
		}
		if len(r.Masters) == 0 {
			t.Fatalf("%s: empty master set", r.Mix)
		}
		if r.SimMS <= 0 || r.SimFlat <= 0 {
			t.Fatalf("%s: missing simulation results: %+v", r.Mix, r)
		}
	}
	// On every mix the simulated M/S should beat simulated flat.
	wins := 0
	for _, r := range rows {
		if r.SimImprovePct > 0 {
			wins++
		}
	}
	if wins < 2 {
		t.Fatalf("M/S won only %d/3 heterogeneous mixes", wins)
	}
	out := FormatHeteroStudy(8, rows)
	if !strings.Contains(out, "heterogeneous") {
		t.Fatalf("format incomplete:\n%s", out)
	}
}

func TestRunFlashCrowd(t *testing.T) {
	rows, err := RunFlashCrowd(8, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	dedicated, provisioned, reactive := rows[0], rows[1], rows[2]
	if reactive.Recruitments == 0 {
		t.Fatal("reactive scenario never recruited")
	}
	if dedicated.Recruitments != 0 || provisioned.Recruitments != 0 {
		t.Fatal("non-reactive scenarios recruited")
	}
	// Reactive recruitment must land between dedicated-only and always-
	// provisioned on the overall stretch (with slack for scheduling noise).
	if reactive.Stretch > dedicated.Stretch*1.05 {
		t.Fatalf("reactive (%v) no better than dedicated-only (%v)", reactive.Stretch, dedicated.Stretch)
	}
	out := FormatFlashCrowd(8, rows)
	if !strings.Contains(out, "flash-crowd") {
		t.Fatalf("format incomplete:\n%s", out)
	}
}

func TestRunWSensitivity(t *testing.T) {
	rows, err := RunWSensitivity(8, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	// Quick sizing is single-seed and too noisy for ordering claims
	// (the full msbench run asserts the science; see results/wsense.txt)
	// so this test checks structure only.
	for _, r := range rows {
		if r.Stretch < 1 {
			t.Fatalf("impossible stretch in %+v", r)
		}
	}
	if rows[0].Label != "exact sampling" || rows[3].Label != "blind w=0.5 (M/S-ns)" {
		t.Fatalf("row order changed: %+v", rows)
	}
	out := FormatWSensitivity(8, rows)
	if !strings.Contains(out, "sampling") {
		t.Fatalf("format incomplete:\n%s", out)
	}
}

func TestRunStaleness(t *testing.T) {
	rows, err := RunStaleness(8, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	// At the stalest setting the booking correction must help clearly.
	last := rows[len(rows)-1]
	if last.NoBooking < last.WithBooking {
		t.Fatalf("at refresh=%vs booking hurt: %v vs %v",
			last.RefreshSeconds, last.WithBooking, last.NoBooking)
	}
	out := FormatStaleness(8, rows)
	if !strings.Contains(out, "staleness") {
		t.Fatalf("format incomplete:\n%s", out)
	}
}

func TestRunOpenClosed(t *testing.T) {
	rows, err := RunOpenClosed(8, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	// Past saturation the open-loop stretch must exceed closed-loop.
	last := rows[len(rows)-1]
	if last.OpenSF <= last.ClosedSF {
		t.Fatalf("overloaded open loop (%v) not above closed loop (%v)", last.OpenSF, last.ClosedSF)
	}
	// Open-loop stretch grows with load.
	for i := 1; i < len(rows); i++ {
		if rows[i].OpenSF < rows[i-1].OpenSF {
			t.Fatalf("open-loop stretch fell with load: %+v", rows)
		}
	}
	out := FormatOpenClosed(8, rows)
	if !strings.Contains(out, "closed") {
		t.Fatalf("format incomplete:\n%s", out)
	}
}

func TestRunDiscipline(t *testing.T) {
	rows, err := RunDiscipline(32, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // quick InvRs
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.FCFSGainPct <= r.PSGainPct {
			t.Fatalf("1/r=%v: FCFS gain %v not above PS gain %v", r.InvR, r.FCFSGainPct, r.PSGainPct)
		}
		if r.FCFSFlat <= r.PSFlat {
			t.Fatalf("1/r=%v: FCFS flat %v not above PS flat %v", r.InvR, r.FCFSFlat, r.PSFlat)
		}
	}
	out := FormatDiscipline(32, rows)
	if !strings.Contains(out, "FCFS") {
		t.Fatalf("format incomplete:\n%s", out)
	}
	tbl := DisciplineTable(rows)
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
}
