package experiments

// Autoscaling study. The paper sizes the master tier once, offline, from
// Theorem 1; the online autoscaler (cluster.Config.Autoscale) re-runs
// that planning continuously against the measured load and additionally
// powers slaves on and off. This study replays two time-varying
// workloads — a diurnal sine and an MMPP flash crowd — against a fixed
// peak-provisioned fleet and an autoscaled one, both under the
// epoch-versioned sharded control plane, and reports the trade the
// controller makes: node-hours spent against SLO attainment and
// stretch. The headline claim is the diurnal row pair: the autoscaler
// should shed a large fraction of the fixed fleet's node-hours through
// the troughs without giving up SLO attainment.

import (
	"fmt"
	"strings"

	"msweb/internal/cluster"
	"msweb/internal/core"
	"msweb/internal/trace"
)

// autoscaleSLO is the response-time SLO (virtual seconds) both
// scenarios are scored against.
const autoscaleSLO = 2.0

// AutoscaleRow reports one (workload, scenario) pair, seed-averaged.
type AutoscaleRow struct {
	Workload string
	Scenario string
	Stretch  float64
	// SLO is the fraction of counted requests answered within
	// autoscaleSLO seconds.
	SLO float64
	// NodeHours is powered-fleet time integrated over the run; SavedPct
	// is the reduction against the fixed fleet on the same workload
	// (0 for the fixed rows).
	NodeHours float64
	SavedPct  float64
	// SlaveOffs counts power-down transitions; Epochs is the final shard
	// map version — both 0 for the fixed fleet.
	SlaveOffs int64
	Epochs    int64
}

// RunAutoscale replays the diurnal and flash-crowd workloads against a
// fixed and an autoscaled sharded cluster of p nodes.
func RunAutoscale(p int, opts Options) ([]AutoscaleRow, error) {
	opts = opts.withDefaults()
	prof := trace.KSU
	r := 1.0 / 40
	m := 4
	if p < 2*m {
		return nil, fmt.Errorf("autoscale study needs p ≥ %d, got %d", 2*m, p)
	}
	// The mean rate fills the fleet to TargetRho at the diurnal peak
	// (1.6× mean), so the fixed baseline is exactly peak-provisioned.
	lambda := LambdaForRho(p, prof.ArrivalRatio(), r, opts.TargetRho) / 1.6

	// The controller needs several periods and the trace several
	// troughs, so the replay floor is longer than the generic default.
	duration := opts.Duration
	if duration < 12 {
		duration = 12
	}
	n := int(lambda * duration)
	if n < opts.MinRequests {
		n = opts.MinRequests
	}
	duration = float64(n) / lambda

	workloads := []struct {
		name string
		gen  trace.GenConfig
	}{
		{"diurnal", trace.GenConfig{
			Profile: prof, Lambda: lambda, Requests: n, MuH: MuH, R: r,
			Arrival: trace.DiurnalArrivals, DiurnalPeriod: duration / 3,
		}},
		{"flash crowd", trace.GenConfig{
			Profile: prof, Lambda: lambda, Requests: n, MuH: MuH, R: r,
			Arrival: trace.MMPPArrivals, BurstFactor: 3,
			BurstDuration: 2, NormalDuration: 5,
		}},
	}

	type cell struct {
		wi   int
		auto bool
		seed int64
	}
	type cellRes struct {
		sf, slo, nh float64
		offs, ep    int64
	}
	var cells []cell
	for wi := range workloads {
		for _, auto := range []bool{false, true} {
			for _, seed := range opts.Seeds {
				cells = append(cells, cell{wi, auto, seed})
			}
		}
	}
	results, err := runGrid(cells, func(c cell) (cellRes, error) {
		gen := workloads[c.wi].gen
		gen.Seed = c.seed
		tr, wt, err := cachedTrace(gen)
		if err != nil {
			return cellRes{}, err
		}
		cfg := cluster.DefaultConfig(p, m)
		cfg.WarmupFraction = opts.Warmup
		cfg.Shards = m
		cfg.SLOResponse = autoscaleSLO
		if c.auto {
			cfg.Autoscale = &cluster.Autoscale{Period: 0.5, MinM: 2, MaxM: p / 2}
		}
		res, err := cluster.Simulate(cfg, core.NewMS(wt, c.seed), tr)
		if err != nil {
			return cellRes{}, fmt.Errorf("autoscale %s auto=%v seed=%d: %w",
				workloads[c.wi].name, c.auto, c.seed, err)
		}
		out := cellRes{sf: res.StretchFactor, slo: res.SLOAttainment, nh: res.NodeHours}
		if res.Autoscale != nil {
			out.offs = res.Autoscale.SlaveOffs
		}
		if res.Shards != nil {
			out.ep = int64(res.Shards.Epoch)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	// Seed-mean each (workload, scenario); rows pair fixed before
	// autoscaled so SavedPct can reference its baseline.
	seeds := float64(len(opts.Seeds))
	var rows []AutoscaleRow
	i := 0
	for wi := range workloads {
		var pair [2]AutoscaleRow
		for a, scenario := range []string{"fixed fleet", "autoscaled"} {
			agg := AutoscaleRow{Workload: workloads[wi].name, Scenario: scenario}
			for s := 0; s < len(opts.Seeds); s++ {
				cr := results[i]
				i++
				agg.Stretch += cr.sf / seeds
				agg.SLO += cr.slo / seeds
				agg.NodeHours += cr.nh / seeds
				agg.SlaveOffs += cr.offs
				if cr.ep > agg.Epochs {
					agg.Epochs = cr.ep
				}
			}
			pair[a] = agg
		}
		if pair[0].NodeHours > 0 {
			pair[1].SavedPct = 100 * (pair[0].NodeHours - pair[1].NodeHours) / pair[0].NodeHours
		}
		rows = append(rows, pair[0], pair[1])
	}
	return rows, nil
}

// FormatAutoscale renders the autoscaling study.
func FormatAutoscale(p int, rows []AutoscaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: online autoscaler vs fixed fleet, sharded control plane, p=%d, SLO %.1fs\n", p, autoscaleSLO)
	header := fmt.Sprintf("%-12s %-12s %-8s %-8s %-11s %-9s %-7s %-7s",
		"workload", "scenario", "SF", "SLO", "node-hours", "saved%", "offs", "epochs")
	fmt.Fprintln(&b, header)
	fmt.Fprintln(&b, rule(header))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s %-8.2f %-8.3f %-11.4f %-9.1f %-7d %-7d\n",
			r.Workload, r.Scenario, r.Stretch, r.SLO, r.NodeHours, r.SavedPct, r.SlaveOffs, r.Epochs)
	}
	return b.String()
}

// AutoscaleTable converts the autoscaling study for the JSON report.
func AutoscaleTable(rows []AutoscaleRow) *reportTable {
	t := newReportTable("Autoscale vs fixed fleet",
		[]string{"workload", "scenario", "stretch", "slo_attainment", "node_hours", "saved_pct", "slave_offs", "epochs"})
	for _, r := range rows {
		t.AddRow(r.Workload, r.Scenario, round4(r.Stretch), round4(r.SLO),
			round4(r.NodeHours), round2(r.SavedPct), r.SlaveOffs, r.Epochs)
	}
	return t
}
