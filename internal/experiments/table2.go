package experiments

import (
	"fmt"
	"strings"

	"msweb/internal/trace"
)

// Table2Row is one (trace, cluster size) row of the workload-parameter
// table: the arrival ratio fixed by the log and the arrival rates the
// reproduction uses for each r (chosen to hit the target utilization,
// see the package comment).
type Table2Row struct {
	Trace     string
	A         float64
	P         int
	TargetRho float64
	InvRs     []float64
	Lambdas   []float64 // one per InvR
}

// RunTable2 derives the examined workload parameters for both cluster
// sizes. The (p, trace) cells are independent closed-form evaluations,
// so they run on the shared grid like every other driver; the merge
// keeps the paper's p-major row order.
func RunTable2(opts Options) []Table2Row {
	opts = opts.withDefaults()
	type cell struct {
		p    int
		prof trace.Profile
	}
	var cells []cell
	for _, p := range []int{32, 128} {
		for _, prof := range trace.Profiles() {
			cells = append(cells, cell{p, prof})
		}
	}
	rows, _ := runGrid(cells, func(c cell) (Table2Row, error) {
		row := Table2Row{
			Trace:     c.prof.Name,
			A:         c.prof.ArrivalRatio(),
			P:         c.p,
			TargetRho: opts.TargetRho,
			InvRs:     opts.InvRs,
		}
		for _, invR := range opts.InvRs {
			row.Lambdas = append(row.Lambdas, LambdaForRho(c.p, row.A, 1/invR, opts.TargetRho))
		}
		return row, nil
	})
	return rows
}

// FormatTable2 renders the workload parameters in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 2: Workload parameters examined")
	fmt.Fprintf(&b, "r ∈ {1/20, 1/40, 1/80, 1/160}; arrival rates below target flat utilization ρ_F\n\n")
	header := fmt.Sprintf("%-6s %-6s %-5s %-6s %s", "Trace", "a", "p", "ρ_F", "λ per 1/r (req/s)")
	fmt.Fprintln(&b, header)
	fmt.Fprintln(&b, rule(header))
	for _, r := range rows {
		var ls []string
		for i, l := range r.Lambdas {
			ls = append(ls, fmt.Sprintf("1/%.0f:%.0f", r.InvRs[i], l))
		}
		fmt.Fprintf(&b, "%-6s %-6.3f %-5d %-6.2f %s\n", r.Trace, r.A, r.P, r.TargetRho, strings.Join(ls, "  "))
	}
	return b.String()
}
