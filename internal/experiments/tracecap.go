package experiments

import (
	"bytes"
	"io"
	"sort"
	"strings"
	"sync"

	"msweb/internal/obs"
)

// TraceCollector captures per-request lifecycle traces from experiment
// grids. Each simulated cell gets its own JSONL tracer writing into a
// private buffer; WriteTo merges the buffers sorted by cell label, each
// preceded by a {"cell":"<label>"} header line. Cell labels are derived
// from the cell's parameters — never from scheduling order — so the
// merged output is byte-identical at any -parallel width.
type TraceCollector struct {
	match string

	mu      sync.Mutex
	bufs    map[string]*bytes.Buffer
	tracers map[string]*obs.JSONLTracer
}

// NewTraceCollector returns a collector capturing every cell whose label
// contains match; an empty match captures all cells (full grids emit a
// lot of trace — prefer a filter like "/ms/seed1").
func NewTraceCollector(match string) *TraceCollector {
	return &TraceCollector{
		match:   match,
		bufs:    make(map[string]*bytes.Buffer),
		tracers: make(map[string]*obs.JSONLTracer),
	}
}

// Tracer returns the tracer for one cell, or nil when the label does not
// match the filter (the cluster then runs untraced). The returned tracer
// is not concurrency-safe; it must be used by that cell's goroutine only.
func (t *TraceCollector) Tracer(label string) obs.Tracer {
	if t == nil || !strings.Contains(label, t.match) {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.tracers[label]
	if !ok {
		buf := &bytes.Buffer{}
		tr = obs.NewJSONL(buf)
		t.bufs[label] = buf
		t.tracers[label] = tr
	}
	return tr
}

// Cells returns the captured cell labels, sorted.
func (t *TraceCollector) Cells() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.bufs))
	for label := range t.bufs {
		out = append(out, label)
	}
	sort.Strings(out)
	return out
}

// WriteTo merges every captured cell into w in label order, flushing the
// tracers first. It must only be called after the grid run completes.
func (t *TraceCollector) WriteTo(w io.Writer) (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	labels := make([]string, 0, len(t.bufs))
	for label := range t.bufs {
		labels = append(labels, label)
	}
	sort.Strings(labels)

	var total int64
	for _, label := range labels {
		if err := t.tracers[label].Flush(); err != nil {
			return total, err
		}
		n, err := io.WriteString(w, `{"cell":"`+label+"\"}\n")
		total += int64(n)
		if err != nil {
			return total, err
		}
		m, err := w.Write(t.bufs[label].Bytes())
		total += int64(m)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
