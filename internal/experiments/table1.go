package experiments

import (
	"fmt"
	"strings"

	"msweb/internal/trace"
)

// Table1Row pairs a generated trace's measured characteristics with the
// values the paper publishes in Table 1.
type Table1Row struct {
	Measured trace.Characteristics
	// Published Table 1 values.
	PaperName     string
	PaperYear     int
	PaperRequests string // the paper reports "24.5 M" style figures
	PaperPctCGI   float64
	PaperInterval float64
	PaperHTML     float64
	PaperCGI      float64
}

var paperTable1 = []struct {
	name     string
	year     int
	requests string
	pctCGI   float64
	interval float64
	htmlSize float64
	cgiSize  float64
}{
	{"DEC", 1996, "24.5M", 8.7, 0.09, 8821, 5735},
	{"UCB", 1996, "9.2M", 11.2, 0.139, 7519, 4591},
	{"KSU", 1998, "47364", 29.1, 18.486, 482, 8730},
	{"ADL", 1997, "73610", 44.3, 22.418, 2186, 2027},
}

// RunTable1 generates synthetic instances of the four trace profiles at
// their historical rates and reports their measured characteristics next
// to the published Table 1 numbers.
func RunTable1(n int, seed int64) ([]Table1Row, error) {
	if n <= 0 {
		n = 5000
	}
	measured, err := trace.Table1(n, seed)
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, len(measured))
	for i, m := range measured {
		p := paperTable1[i]
		rows[i] = Table1Row{
			Measured:      m,
			PaperName:     p.name,
			PaperYear:     p.year,
			PaperRequests: p.requests,
			PaperPctCGI:   p.pctCGI,
			PaperInterval: p.interval,
			PaperHTML:     p.htmlSize,
			PaperCGI:      p.cgiSize,
		}
	}
	return rows, nil
}

// FormatTable1 renders the comparison in the paper's column order.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 1: Characteristics of four Web traces (paper value / regenerated)")
	header := fmt.Sprintf("%-5s %-5s %-10s %-17s %-19s %-17s %-17s",
		"Web", "year", "No. req", "% CGI", "Avg interval (s)", "HTML size", "CGI size")
	fmt.Fprintln(&b, header)
	fmt.Fprintln(&b, rule(header))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %-5d %-10s %6.1f / %-8.1f %8.3f / %-8.3f %7.0f / %-7.0f %7.0f / %-7.0f\n",
			r.PaperName, r.PaperYear, r.PaperRequests,
			r.PaperPctCGI, r.Measured.PctCGI,
			r.PaperInterval, r.Measured.MeanInterval,
			r.PaperHTML, r.Measured.MeanHTMLSize,
			r.PaperCGI, r.Measured.MeanCGISize)
	}
	fmt.Fprintln(&b, "\nNote: HTML sizes are regenerated through the SPECweb96 40-file mapping,")
	fmt.Fprintln(&b, "as the paper replaces every logged fetch with the closest SPECweb96 file.")
	return b.String()
}
