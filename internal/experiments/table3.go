package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"msweb/internal/cluster"
	"msweb/internal/core"
	"msweb/internal/httpcluster"
	"msweb/internal/replay"
	"msweb/internal/trace"
)

// Table3Options size the validation runs.
type Table3Options struct {
	// Nodes and per-trace master counts follow the paper: 6 nodes;
	// 3 masters for UCB, 1 for KSU and ADL.
	Nodes int
	// MuHLive is the live node capability: 110 static requests/second
	// (a Sun Ultra 1 under SPECweb96, per the paper).
	MuHLive float64
	// R is the service ratio (paper: 1/40 for all three traces).
	R float64
	// Lambdas are the replay rates (paper: 20 and 40 req/s).
	Lambdas []float64
	// Duration is the live replay length in (unscaled) seconds.
	Duration float64
	// TimeScale compresses the live replay (1 = real time).
	TimeScale float64
	// Seed drives trace generation.
	Seed int64
	// Traces restricts the profiles (default: UCB, KSU, ADL).
	Traces []trace.Profile
}

// DefaultTable3Options reproduces the published setup in real time
// (several minutes of wall clock).
func DefaultTable3Options() Table3Options {
	return Table3Options{
		Nodes:     6,
		MuHLive:   110,
		R:         1.0 / 40,
		Lambdas:   []float64{20, 40},
		Duration:  60,
		TimeScale: 1,
		Seed:      1,
	}
}

// QuickTable3Options is a smoke-test sizing (tens of seconds).
func QuickTable3Options() Table3Options {
	o := DefaultTable3Options()
	o.Lambdas = []float64{20}
	o.Duration = 6
	o.TimeScale = 0.5
	o.Traces = []trace.Profile{trace.KSU}
	return o
}

// table3Masters returns the paper's master count for a trace.
func table3Masters(name string) int {
	if name == "UCB" {
		return 3
	}
	return 1
}

// Table3Row is one row of Table 3: the improvement of M/S over one
// alternative, measured on the live cluster and in simulation.
type Table3Row struct {
	Trace     string
	Lambda    float64
	Versus    string // "M/S-1", "M/S-ns", "M/S-nr"
	ActualPct float64
	SimPct    float64
}

// Diff returns |actual − simulated| in percentage points.
func (r Table3Row) Diff() float64 {
	d := r.ActualPct - r.SimPct
	if d < 0 {
		d = -d
	}
	return d
}

// table3Variants enumerates the compared policies in the paper's order.
var table3Variants = []struct {
	key  string
	mk   func(wt core.WTable, seed int64) core.Policy
	full bool // true → all nodes are masters (M/S-1)
}{
	{"M/S-1", func(wt core.WTable, seed int64) core.Policy {
		return core.NewMS(wt, seed, core.WithName("M/S-1"))
	}, true},
	{"M/S-ns", func(wt core.WTable, seed int64) core.Policy {
		return core.NewMS(wt, seed, core.WithoutSampling(), core.WithName("M/S-ns"))
	}, false},
	{"M/S-nr", func(wt core.WTable, seed int64) core.Policy {
		return core.NewMS(wt, seed, core.WithoutReservation(), core.WithName("M/S-nr"))
	}, false},
}

// table3Cell is one (trace, λ, policy) measurement: a live loopback
// replay plus the matching simulation. variant −1 is the M/S baseline;
// 0..2 index table3Variants. Live replays burn wall-clock time
// (Duration × TimeScale), so running the four policies of one (trace, λ)
// pair concurrently is where the parallel harness saves real minutes —
// each cell starts its own loopback cluster on ephemeral ports.
type table3Cell struct {
	prof    trace.Profile
	lambda  float64
	n       int
	variant int
}

type table3Pair struct{ actual, sim float64 }

// RunTable3 measures the improvement ratios of M/S over the three
// alternatives both on the live loopback cluster and in the simulator,
// reproducing the validation comparison (paper: average difference ≈3%,
// simulation slightly optimistic).
func RunTable3(opts Table3Options) ([]Table3Row, error) {
	if opts.Nodes <= 0 {
		opts = DefaultTable3Options()
	}
	profiles := opts.Traces
	if len(profiles) == 0 {
		profiles = trace.Profiles()
	}

	var cells []table3Cell
	for _, prof := range profiles {
		for _, lambda := range opts.Lambdas {
			n := int(lambda * opts.Duration)
			if n < 50 {
				n = 50
			}
			for variant := -1; variant < len(table3Variants); variant++ {
				cells = append(cells, table3Cell{prof: prof, lambda: lambda, n: n, variant: variant})
			}
		}
	}

	pairs, err := runGrid(cells, func(c table3Cell) (table3Pair, error) {
		tr, wt, err := cachedTrace(trace.GenConfig{
			Profile: c.prof, Lambda: c.lambda, Requests: c.n,
			MuH: opts.MuHLive, R: opts.R, Seed: opts.Seed,
		})
		if err != nil {
			return table3Pair{}, err
		}
		mk := func(wt core.WTable, seed int64) core.Policy { return core.NewMS(wt, seed) }
		key := "M/S"
		m := table3Masters(c.prof.Name)
		if c.variant >= 0 {
			v := table3Variants[c.variant]
			mk, key = v.mk, v.key
			if v.full {
				m = opts.Nodes
			}
		}
		actual, err := runLive(opts, m, mk, wt, tr)
		if err != nil {
			return table3Pair{}, fmt.Errorf("table3 %s λ=%.0f %s: %w", c.prof.Name, c.lambda, key, err)
		}
		sim, err := runSimTable3(opts, m, mk(wt, opts.Seed), tr)
		if err != nil {
			return table3Pair{}, fmt.Errorf("table3 %s λ=%.0f %s: %w", c.prof.Name, c.lambda, key, err)
		}
		return table3Pair{actual, sim}, nil
	})
	if err != nil {
		return nil, err
	}

	// Merge: each group of 1+len(table3Variants) cells yields one row per
	// variant, the ratios taken against the group's M/S baseline.
	var rows []Table3Row
	perGroup := 1 + len(table3Variants)
	for gi := 0; gi < len(cells); gi += perGroup {
		ms := pairs[gi]
		for vi, v := range table3Variants {
			alt := pairs[gi+1+vi]
			rows = append(rows, Table3Row{
				Trace:     cells[gi].prof.Name,
				Lambda:    cells[gi].lambda,
				Versus:    v.key,
				ActualPct: (alt.actual/ms.actual - 1) * 100,
				SimPct:    (alt.sim/ms.sim - 1) * 100,
			})
		}
	}
	return rows, nil
}

// runLive replays the trace against a freshly started loopback cluster.
func runLive(opts Table3Options, masters int, mk func(core.WTable, int64) core.Policy, wt core.WTable, tr *trace.Trace) (float64, error) {
	cfg := httpcluster.DefaultConfig(masters, func(id int) core.Policy {
		return mk(wt, opts.Seed+int64(id))
	})
	cfg.Nodes = opts.Nodes
	cfg.TimeScale = opts.TimeScale
	c, err := httpcluster.Start(cfg)
	if err != nil {
		return 0, err
	}
	defer c.Shutdown()

	res, err := replay.Run(context.Background(), c.MasterURLs(), tr, replay.Options{
		TimeScale: opts.TimeScale,
		Timeout:   2 * time.Minute,
	})
	if err != nil {
		return 0, err
	}
	if res.Failed > res.Sent/10 {
		return 0, fmt.Errorf("live replay: %d/%d requests failed", res.Failed, res.Sent)
	}
	return res.StretchFactor(), nil
}

// runSimTable3 replays the identical trace in the simulator with the
// live calibration (μ_h=110 → same demands; the trace already encodes
// them).
func runSimTable3(opts Table3Options, masters int, pol core.Policy, tr *trace.Trace) (float64, error) {
	cfg := cluster.DefaultConfig(opts.Nodes, masters)
	cfg.LoadRefresh = 0.1 // match the live cluster's polling period
	res, err := cluster.Simulate(cfg, pol, tr)
	if err != nil {
		return 0, err
	}
	return res.StretchFactor, nil
}

// FormatTable3 renders the validation table.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 3: improvement of M/S over alternatives — live loopback cluster vs simulation")
	fmt.Fprintln(&b, "(paper: measured on 6 Sun Ultra-1 nodes; average |actual−simulated| ≈ 3 points)")
	header := fmt.Sprintf("%-6s %-9s %-8s %-12s %-12s %-8s", "Trace", "λ(req/s)", "vs", "actual", "simulated", "|diff|")
	fmt.Fprintln(&b, header)
	fmt.Fprintln(&b, rule(header))
	sum := 0.0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-9.0f %-8s %-12s %-12s %5.1f\n",
			r.Trace, r.Lambda, r.Versus, pct(r.ActualPct), pct(r.SimPct), r.Diff())
		sum += r.Diff()
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "\naverage |actual − simulated| = %.1f points\n", sum/float64(len(rows)))
	}
	return b.String()
}
