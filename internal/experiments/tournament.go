package experiments

// The policy tournament: every registered competitor policy replays the
// same traces at the same load levels through the deterministic parallel
// grid, so the paper's M/S scheduler is compared head-to-head against
// the classic dispatching disciplines (JSQ(d), MaxWeight, c/μ,
// greedy-RSRC, random) instead of only against its own ablations.

import (
	"fmt"
	"strings"

	"msweb/internal/cluster"
	"msweb/internal/policy"
	"msweb/internal/queuemodel"
	"msweb/internal/report"
	"msweb/internal/trace"
)

// TournamentConfig selects the tournament field and grid.
type TournamentConfig struct {
	// Policies are registry preset names; empty means the default
	// competitor field (policy.TournamentNames()).
	Policies []string
	// Profiles are trace profile names; empty means UCB, KSU, ADL.
	Profiles []string
	// Rhos are the target flat-utilization load levels; empty means
	// moderate and heavy load (0.5, 0.8).
	Rhos []float64
	// Extra adds ad-hoc entrants (e.g. a custom pipeline assembled from
	// stage flags) on top of the named presets.
	Extra []policy.Preset
}

func (tc TournamentConfig) withDefaults() TournamentConfig {
	if len(tc.Policies) == 0 {
		tc.Policies = policy.TournamentNames()
	}
	if len(tc.Profiles) == 0 {
		tc.Profiles = []string{"UCB", "KSU", "ADL"}
	}
	if len(tc.Rhos) == 0 {
		tc.Rhos = []float64{0.5, 0.8}
	}
	return tc
}

// TournamentRow is one (profile, load, policy) aggregate over seeds.
type TournamentRow struct {
	Profile string
	Rho     float64
	Policy  string
	// MeanMs and P99Ms are response times in milliseconds.
	MeanMs float64
	P99Ms  float64
	// Stretch is the stretch factor (the paper's headline metric).
	Stretch float64
	// CPUUtil is the mean per-node lifetime CPU busy fraction.
	CPUUtil float64
	// ShedRate is the fraction of requests refused by admission.
	ShedRate float64
}

// tournCell is one seed's worth of measurements.
type tournCell struct {
	mean, p99, stretch, util, shed float64
}

// RunTournament fans (policy × profile × load × seed) through the
// deterministic grid and aggregates per-seed means. Every policy in a
// (profile, rho) block replays byte-identical traces on an identically
// planned cluster, so row differences are pure policy effects.
func RunTournament(p int, opts Options, tc TournamentConfig) ([]TournamentRow, error) {
	opts = opts.withDefaults()
	tc = tc.withDefaults()
	const r = 1.0 / 40

	presets := make([]policy.Preset, 0, len(tc.Policies)+len(tc.Extra))
	for _, name := range tc.Policies {
		pr, err := policy.Lookup(name)
		if err != nil {
			return nil, err
		}
		presets = append(presets, pr)
	}
	presets = append(presets, tc.Extra...)
	profiles := make([]trace.Profile, len(tc.Profiles))
	for i, name := range tc.Profiles {
		prof, ok := trace.ProfileByName(name)
		if !ok {
			return nil, fmt.Errorf("tournament: unknown profile %q", name)
		}
		profiles[i] = prof
	}

	type cell struct {
		prof    trace.Profile
		rho     float64
		preset  policy.Preset
		seed    int64
		lambda  float64
		masters int
	}
	var cells []cell
	for _, prof := range profiles {
		for _, rho := range tc.Rhos {
			lambda := LambdaForRho(p, prof.ArrivalRatio(), r, rho)
			plan, err := queuemodel.NewParams(p, lambda, prof.ArrivalRatio(), MuH, r).OptimalPlan()
			if err != nil {
				return nil, err
			}
			for _, preset := range presets {
				for _, seed := range opts.Seeds {
					cells = append(cells, cell{prof, rho, preset, seed, lambda, plan.M})
				}
			}
		}
	}

	results, err := runGrid(cells, func(c cell) (tournCell, error) {
		n := opts.requestCount(c.lambda)
		tr, wt, err := genTraceW(c.prof, c.lambda, r, n, c.seed)
		if err != nil {
			return tournCell{}, err
		}
		cfg := cluster.DefaultConfig(p, c.masters)
		cfg.WarmupFraction = opts.Warmup
		cfg.EnableShedding = true
		res, err := cluster.Simulate(cfg, c.preset.Build(wt, c.seed), tr)
		if err != nil {
			return tournCell{}, err
		}
		util := 0.0
		for _, u := range res.NodeUtilization {
			util += u.CPU
		}
		util /= float64(len(res.NodeUtilization))
		total := len(tr.Requests)
		return tournCell{
			mean:    res.Summary.MeanResponse * 1000,
			p99:     res.Summary.P99Response * 1000,
			stretch: res.StretchFactor,
			util:    util,
			shed:    float64(res.Shed) / float64(total),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	nSeeds := len(opts.Seeds)
	var rows []TournamentRow
	i := 0
	for _, prof := range profiles {
		for _, rho := range tc.Rhos {
			for _, preset := range presets {
				var agg tournCell
				for s := 0; s < nSeeds; s++ {
					agg.mean += results[i].mean
					agg.p99 += results[i].p99
					agg.stretch += results[i].stretch
					agg.util += results[i].util
					agg.shed += results[i].shed
					i++
				}
				f := float64(nSeeds)
				rows = append(rows, TournamentRow{
					Profile: prof.Name, Rho: rho, Policy: preset.Name,
					MeanMs: agg.mean / f, P99Ms: agg.p99 / f,
					Stretch: agg.stretch / f, CPUUtil: agg.util / f,
					ShedRate: agg.shed / f,
				})
			}
		}
	}
	return rows, nil
}

// FormatTournament renders the tournament grouped by (profile, load),
// with the best mean latency in each block marked.
func FormatTournament(p int, rows []TournamentRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Policy tournament, p=%d (identical traces per block; lower is better)\n", p)
	header := fmt.Sprintf("%-14s %-10s %-10s %-8s %-7s %-8s", "policy", "mean ms", "p99 ms", "SF", "util", "shed")
	blockKey := ""
	best := map[string]float64{}
	for _, r := range rows {
		k := fmt.Sprintf("%s@%.2f", r.Profile, r.Rho)
		if cur, ok := best[k]; !ok || r.MeanMs < cur {
			best[k] = r.MeanMs
		}
	}
	for _, r := range rows {
		k := fmt.Sprintf("%s@%.2f", r.Profile, r.Rho)
		if k != blockKey {
			blockKey = k
			fmt.Fprintf(&b, "\n%s trace, rho=%.2f\n", r.Profile, r.Rho)
			fmt.Fprintln(&b, header)
			fmt.Fprintln(&b, rule(header))
		}
		mark := ""
		if r.MeanMs == best[k] {
			mark = " *"
		}
		fmt.Fprintf(&b, "%-14s %-10.1f %-10.1f %-8.2f %-7.2f %-8s%s\n",
			r.Policy, r.MeanMs, r.P99Ms, r.Stretch, r.CPUUtil,
			fmt.Sprintf("%.1f%%", r.ShedRate*100), mark)
	}
	return b.String()
}

// TournamentTable converts tournament rows for CSV emission.
func TournamentTable(rows []TournamentRow) *report.Table {
	t := &report.Table{
		Title:   "Policy tournament",
		Columns: []string{"profile", "rho", "policy", "mean_ms", "p99_ms", "stretch", "cpu_util", "shed_rate"},
	}
	for _, r := range rows {
		t.AddRow(r.Profile, r.Rho, r.Policy, round2(r.MeanMs), round2(r.P99Ms),
			round4(r.Stretch), round4(r.CPUUtil), round4(r.ShedRate))
	}
	return t
}
