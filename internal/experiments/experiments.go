// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment has a Run function returning typed rows
// and a Format function rendering the same rows/series the paper reports.
//
// Load calibration note. The paper pairs each trace with absolute
// arrival rates (Table 2) tuned to its testbed capacity so that "the
// load would [not] be too light or too heavy". The scanned table is
// partially corrupted and capacities differ across substrates, so this
// reproduction targets the quantity those rates controlled — the offered
// load — directly: for each (trace, r) cell the arrival rate is chosen
// to hit a configured flat-architecture utilization (default 0.65).
// The implied absolute rates are reported next to each row.
package experiments

import (
	"fmt"
	"strings"

	"msweb/internal/cluster"
	"msweb/internal/core"
	"msweb/internal/obs"
	"msweb/internal/queuemodel"
	"msweb/internal/sim"
	"msweb/internal/trace"
)

// MuH is the simulated per-node static service rate: each node handles
// 1200 SPECweb96-like requests/second (paper §5.2.1, from SPEC results
// 1996-1998).
const MuH = 1200.0

// Options control experiment fidelity. The zero value is replaced by
// Default(); Quick() is sized for unit tests and smoke runs.
type Options struct {
	// Seeds are averaged over; more seeds, less variance.
	Seeds []int64
	// TargetRho is the flat-architecture utilization the load targets.
	TargetRho float64
	// MinRequests / Duration size each run: a run replays
	// max(MinRequests, λ·Duration) requests.
	MinRequests int
	Duration    float64
	// Warmup is the fraction of each run excluded from statistics.
	Warmup float64
	// InvRs are the 1/r sample points (paper: 20, 40, 80, 160).
	InvRs []float64
	// Trace, when non-nil, captures per-request lifecycle traces for the
	// cells matching its filter (msbench -trace-out/-trace-match).
	Trace *TraceCollector
}

// Default returns full-fidelity options (minutes of runtime).
func Default() Options {
	return Options{
		Seeds:       []int64{1, 2},
		TargetRho:   0.65,
		MinRequests: 8000,
		Duration:    12,
		Warmup:      0.15,
		InvRs:       []float64{20, 40, 80, 160},
	}
}

// Quick returns reduced-fidelity options for tests (seconds of runtime).
func Quick() Options {
	return Options{
		Seeds:       []int64{1},
		TargetRho:   0.65,
		MinRequests: 2500,
		Duration:    4,
		Warmup:      0.15,
		InvRs:       []float64{20, 80},
	}
}

func (o Options) withDefaults() Options {
	d := Default()
	if len(o.Seeds) == 0 {
		o.Seeds = d.Seeds
	}
	if o.TargetRho <= 0 || o.TargetRho >= 1 {
		o.TargetRho = d.TargetRho
	}
	if o.MinRequests <= 0 {
		o.MinRequests = d.MinRequests
	}
	if o.Duration <= 0 {
		o.Duration = d.Duration
	}
	if o.Warmup < 0 || o.Warmup >= 1 {
		o.Warmup = d.Warmup
	}
	if len(o.InvRs) == 0 {
		o.InvRs = d.InvRs
	}
	return o
}

// LambdaForRho returns the arrival rate that drives a p-node cluster to
// flat utilization rho for the given mix and service ratio.
func LambdaForRho(p int, a, r, rho float64) float64 {
	unit := queuemodel.NewParams(p, 1, a, MuH, r)
	return rho / unit.FlatUtilization()
}

// requestCount sizes a run.
func (o Options) requestCount(lambda float64) int {
	n := int(lambda * o.Duration)
	if n < o.MinRequests {
		n = o.MinRequests
	}
	return n
}

// genTrace builds the replay trace for one cell, via the shared cache.
func genTrace(p trace.Profile, lambda, r float64, n int, seed int64) (*trace.Trace, error) {
	tr, _, err := genTraceW(p, lambda, r, n, seed)
	return tr, err
}

// seedMean averages one float per seed, summing in seed order so the
// result is bit-identical however the per-seed cells were scheduled.
func seedMean(vals []float64) float64 {
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// simulateOnce builds the cluster for one policy and replays the trace.
func simulateOnce(p int, masters int, pol core.Policy, tr *trace.Trace, warmup float64) (float64, error) {
	return simulateCell(p, masters, pol, tr, warmup, nil)
}

// simulateCell is simulateOnce with an optional lifecycle tracer wired
// into the cluster (nil runs untraced).
func simulateCell(p int, masters int, pol core.Policy, tr *trace.Trace, warmup float64, tracer obs.Tracer) (float64, error) {
	cfg := cluster.DefaultConfig(p, masters)
	cfg.WarmupFraction = warmup
	cfg.Tracer = tracer
	res, err := cluster.Simulate(cfg, pol, tr)
	if err != nil {
		return 0, err
	}
	return res.StretchFactor, nil
}

// newEngine builds a fresh simulation engine (indirection for tests).
func newEngine() *sim.Engine { return sim.NewEngine() }

// pct renders a percentage cell.
func pct(v float64) string { return fmt.Sprintf("%+.1f%%", v) }

// rule renders a horizontal rule sized to the header.
func rule(header string) string {
	return strings.Repeat("-", len(header))
}
