package experiments

import (
	"reflect"
	"testing"

	"msweb/internal/trace"
)

// fig4TestOptions trims the quick sizing further so the determinism
// comparison runs two full grids in a few seconds.
func fig4TestOptions() Options {
	opts := Quick()
	opts.InvRs = []float64{40}
	if len(opts.Seeds) > 2 {
		opts.Seeds = opts.Seeds[:2]
	}
	return opts
}

// TestParallelMatchesSequentialFig4 is the harness's core guarantee:
// the parallel grid must be byte-identical to the sequential order, not
// just statistically equivalent.
func TestParallelMatchesSequentialFig4(t *testing.T) {
	opts := fig4TestOptions()
	defer SetParallelism(0)

	SetParallelism(1)
	seq, err := RunFig4(32, opts)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	par, err := RunFig4(32, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel fig4 rows diverge from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
	if a, b := FormatFig4(32, seq), FormatFig4(32, par); a != b {
		t.Fatalf("formatted fig4 output diverges:\n--- sequential ---\n%s--- parallel ---\n%s", a, b)
	}
}

// TestParallelMatchesSequentialTable3 checks the validation driver the
// same way. Only the simulated column is compared: the actual column
// comes from live wall-clock replays and is inherently noisy.
func TestParallelMatchesSequentialTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("live loopback replays skipped in -short mode")
	}
	o := QuickTable3Options()
	o.Duration = 3
	o.TimeScale = 0.25
	defer SetParallelism(0)

	SetParallelism(1)
	seq, err := RunTable3(o)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	par, err := RunTable3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("row counts diverge: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		s, p := seq[i], par[i]
		if s.Trace != p.Trace || s.Lambda != p.Lambda || s.Versus != p.Versus {
			t.Fatalf("row %d identity diverges: %+v vs %+v", i, s, p)
		}
		if s.SimPct != p.SimPct {
			t.Fatalf("row %d simulated %% diverges: %v vs %v", i, s.SimPct, p.SimPct)
		}
	}
}

// TestCachedTraceReusesEntry verifies the per-config singleflight: the
// same GenConfig must come back as the same (shared, read-only) trace.
func TestCachedTraceReusesEntry(t *testing.T) {
	cfg := trace.GenConfig{Profile: trace.KSU, Lambda: 5, Requests: 200, MuH: MuH, R: 1.0 / 40, Seed: 99}
	tr1, wt1, err := cachedTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr2, wt2, err := cachedTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr1 != tr2 {
		t.Fatal("identical GenConfig regenerated the trace instead of hitting the cache")
	}
	if len(wt1) == 0 || !reflect.DeepEqual(wt1, wt2) {
		t.Fatal("cached w table mismatch")
	}
	other := cfg
	other.Seed = 100
	tr3, _, err := cachedTrace(other)
	if err != nil {
		t.Fatal(err)
	}
	if tr3 == tr1 {
		t.Fatal("different seed returned the same cached trace")
	}
}

// TestSetParallelismClampsNegative keeps the knob well-defined for any
// flag input.
func TestSetParallelismClampsNegative(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(-3)
	if got := Parallelism(); got != 0 {
		t.Fatalf("Parallelism() = %d after SetParallelism(-3), want 0", got)
	}
}
