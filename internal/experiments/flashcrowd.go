package experiments

import (
	"fmt"
	"strings"

	"msweb/internal/cluster"
	"msweb/internal/core"
	"msweb/internal/metrics"
	"msweb/internal/queuemodel"
	"msweb/internal/trace"
)

// FlashCrowdRow reports one configuration's behaviour through a bursty
// (MMPP) workload.
type FlashCrowdRow struct {
	Scenario     string
	Stretch      float64
	PeakStretch  float64 // worst 1-second bin
	Recruitments int64
	Releases     int64
}

// RunFlashCrowd evaluates the paper's peak-load recruitment story: a
// flash-crowd (MMPP) workload is replayed against a dedicated-only
// cluster, a statically over-provisioned one, and one that recruits two
// non-dedicated spares reactively when the arrival rate spikes.
func RunFlashCrowd(p int, opts Options) ([]FlashCrowdRow, error) {
	opts = opts.withDefaults()
	prof := trace.KSU
	r := 1.0 / 40
	dedicated := p - 2
	// Base load fills the dedicated nodes to TargetRho; bursts triple it.
	lambda := LambdaForRho(dedicated, prof.ArrivalRatio(), r, opts.TargetRho)
	// Short burst/normal sojourns guarantee several flash-crowd cycles
	// within even the quick-sized replay.
	n := opts.requestCount(lambda) * 3
	tr, wt, err := cachedTrace(trace.GenConfig{
		Profile: prof, Lambda: lambda, Requests: n, MuH: MuH, R: r,
		Arrival: trace.MMPPArrivals, BurstFactor: 3,
		BurstDuration: 2, NormalDuration: 5, Seed: opts.Seeds[0],
	})
	if err != nil {
		return nil, err
	}
	plan, err := queuemodel.NewParams(dedicated, lambda, prof.ArrivalRatio(), MuH, r).OptimalPlan()
	if err != nil {
		return nil, err
	}

	run := func(scenario string, tune func(*cluster.Config)) (FlashCrowdRow, error) {
		ts := metrics.NewTimeSeries(1)
		cfg := cluster.DefaultConfig(p, plan.M)
		cfg.WarmupFraction = opts.Warmup
		cfg.SampleHook = func(arrival float64, s metrics.Sample) { ts.Add(arrival, s) }
		tune(&cfg)
		res, err := cluster.Simulate(cfg, core.NewMS(wt, opts.Seeds[0]), tr)
		if err != nil {
			return FlashCrowdRow{}, err
		}
		return FlashCrowdRow{
			Scenario:     scenario,
			Stretch:      res.StretchFactor,
			PeakStretch:  ts.PeakStretch(),
			Recruitments: res.Recruitments,
			Releases:     res.Releases,
		}, nil
	}

	spares := []int{p - 2, p - 1}
	scenarios := []struct {
		name string
		tune func(*cluster.Config)
	}{
		{"dedicated only", func(cfg *cluster.Config) {
			cfg.InitiallyDown = spares
		}},
		{"always provisioned", func(cfg *cluster.Config) {}},
		{"reactive recruit", func(cfg *cluster.Config) {
			cfg.InitiallyDown = spares
			cfg.AutoRecruit = &cluster.AutoRecruit{
				Spares:   spares,
				Period:   0.5,
				HighRate: 1.35 * lambda,
				LowRate:  1.1 * lambda,
			}
		}},
	}

	// Scenarios share the read-only trace and run as parallel grid cells,
	// each with its own engine and time-series collector.
	rows, err := runGrid(scenarios, func(sc struct {
		name string
		tune func(*cluster.Config)
	}) (FlashCrowdRow, error) {
		row, err := run(sc.name, sc.tune)
		if err != nil {
			return FlashCrowdRow{}, fmt.Errorf("flashcrowd %s: %w", sc.name, err)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatFlashCrowd renders the flash-crowd study.
func FormatFlashCrowd(p int, rows []FlashCrowdRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: flash-crowd recruitment, bursty KSU workload (MMPP 3x), p=%d\n", p)
	header := fmt.Sprintf("%-19s %-9s %-11s %-9s %-9s", "scenario", "SF", "peak SF", "recruits", "releases")
	fmt.Fprintln(&b, header)
	fmt.Fprintln(&b, rule(header))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-19s %-9.2f %-11.2f %-9d %-9d\n",
			r.Scenario, r.Stretch, r.PeakStretch, r.Recruitments, r.Releases)
	}
	return b.String()
}
