package experiments

import (
	"bytes"
	"strings"
	"testing"

	"msweb/internal/report"
)

func TestAllTablesValidate(t *testing.T) {
	t1, err := RunTable1(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	curves := RunFig3()
	t2 := RunTable2(Quick())

	tables := []*report.Table{
		Table1Table(t1),
		Table2Table(t2),
		Fig3Table(curves),
		Fig4Table(32, []Fig4Row{{Trace: "UCB", InvR: 20, Lambda: 100, Masters: 3, MSStretch: 2}}),
		Fig5Table(&Fig5Result{P: 32, NominalM: 5, Rows: []Fig5Row{{Trace: "KSU", InvR: 20, Rho: 0.4, FixedM: 5, AdaptedM: 6, FixedSF: 2, AdaptSF: 2}}}),
		Table3Table([]Table3Row{{Trace: "ADL", Lambda: 20, Versus: "M/S-1", ActualPct: 5, SimPct: 7}}),
		CacheSweepTable([]CacheSweepRow{{Capacity: 64, TTL: 120, Stretch: 3}}),
		FailoverTable([]FailoverRow{{Scenario: "healthy", Stretch: 2, Completed: 100}}),
		FlashCrowdTable([]FlashCrowdRow{{Scenario: "reactive", Stretch: 2, PeakStretch: 4}}),
		HeteroTable([]HeteroRow{{Mix: "uniform", AnalyticFlat: 2, AnalyticMS: 1.5, Masters: []int{0}, SimFlat: 3, SimMS: 2}}),
		WSensitivityTable([]WSensitivityRow{{Label: "exact", Stretch: 2}}),
		StalenessTable([]StalenessRow{{RefreshSeconds: 0.2, WithBooking: 2, NoBooking: 3}}),
		OpenClosedTable([]OpenClosedRow{{LoadFactor: 0.5, OpenSF: 2, ClosedSF: 1.8}}),
	}
	for _, tbl := range tables {
		if err := tbl.Validate(); err != nil {
			t.Fatalf("%s: %v", tbl.Title, err)
		}
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s: no rows", tbl.Title)
		}
		var buf bytes.Buffer
		if err := tbl.WriteCSV(&buf); err != nil {
			t.Fatalf("%s: csv: %v", tbl.Title, err)
		}
		if !strings.Contains(buf.String(), ",") {
			t.Fatalf("%s: csv has no separators", tbl.Title)
		}
	}
}

func TestTable2TableExpandsPerR(t *testing.T) {
	rows := RunTable2(Quick()) // 6 config rows × 2 quick r values
	tbl := Table2Table(rows)
	if len(tbl.Rows) != 12 {
		t.Fatalf("%d csv rows, want 12", len(tbl.Rows))
	}
}

func TestRounding(t *testing.T) {
	if got := round2(1.006); got != 1.01 {
		t.Fatalf("round2(1.006) = %v", got)
	}
	if got := round2(-1.006); got != -1.01 {
		t.Fatalf("round2(-1.006) = %v", got)
	}
	if got := round4(0.12345); got != 0.1235 {
		t.Fatalf("round4 = %v", got)
	}
}
