package experiments

// Determinism regression harness. The simulator core trades allocation
// for pooling and replaces container/heap with a specialized timer heap;
// these tests pin that none of it changes a single bit of experiment
// output. Golden rows were generated before the zero-allocation rewrite
// (PR 3) and every full-precision float must match exactly at the same
// seeds — "statistically equivalent" is a bug here.
//
// Regenerate (only when an intentional model change shifts the numbers)
// with:
//
//	go test ./internal/experiments -run Golden -update-golden

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"msweb/internal/cluster"
	"msweb/internal/core"
	"msweb/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the determinism golden files in testdata/")

// fullBits formats v with the fewest digits that round-trip the exact
// float64, so a golden match is a bit-for-bit match.
func fullBits(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update-golden.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("%s line %d diverges:\n got: %s\nwant: %s", name, i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("%s length diverges: got %d lines, want %d", name, len(gl), len(wl))
}

// fig4GoldenText renders Fig4 rows at full float64 precision, one row
// per line.
func fig4GoldenText(rows []Fig4Row) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s\t%s\t%s\t%d\t%s\t%s\t%s\t%s\n",
			r.Trace, fullBits(r.InvR), fullBits(r.Lambda), r.Masters,
			fullBits(r.MSStretch), fullBits(r.OverNS), fullBits(r.OverNR), fullBits(r.Over1))
	}
	return b.String()
}

// TestFig4GoldenRows replays the full Figure 4 quick grid (32 nodes,
// every trace profile, two 1/r points, four policy variants) and demands
// bit-identical stretch rows.
func TestFig4GoldenRows(t *testing.T) {
	rows, err := RunFig4(32, Quick())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig4_p32_quick.golden", fig4GoldenText(rows))
}

// TestFig4GoldenRowsAnyParallelism pins that the merged rows are the
// same bytes at every worker-pool width, against the same golden file.
func TestFig4GoldenRowsAnyParallelism(t *testing.T) {
	defer SetParallelism(0)
	for _, workers := range []int{1, 4} {
		SetParallelism(workers)
		rows, err := RunFig4(32, Quick())
		if err != nil {
			t.Fatalf("parallel=%d: %v", workers, err)
		}
		checkGolden(t, "fig4_p32_quick.golden", fig4GoldenText(rows))
	}
}

// TestTable3SimGoldenRows pins the simulated column of one Table 3
// configuration (the quick KSU cell: 6 nodes, λ=20, μ_h=110, r=1/40)
// for the M/S baseline and each compared variant. The live column is
// wall-clock noise and is exercised elsewhere (grid_test.go).
func TestTable3SimGoldenRows(t *testing.T) {
	opts := QuickTable3Options()
	tr, wt, err := cachedTrace(trace.GenConfig{
		Profile: trace.KSU, Lambda: 20, Requests: 120,
		MuH: opts.MuHLive, R: opts.R, Seed: opts.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	run := func(key string, masters int, pol core.Policy) {
		sf, err := runSimTable3(opts, masters, pol, tr)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		fmt.Fprintf(&b, "KSU\t20\t%s\t%s\n", key, fullBits(sf))
	}
	m := table3Masters("KSU")
	run("M/S", m, core.NewMS(wt, opts.Seed))
	for _, v := range table3Variants {
		masters := m
		if v.full {
			masters = opts.Nodes
		}
		run(v.key, masters, v.mk(wt, opts.Seed))
	}
	checkGolden(t, "table3_ksu_quick.golden", b.String())
}

// TestClusterSimulateGoldenResult pins the one-call cluster.Simulate
// path end-to-end at full precision — the exact inner loop the
// zero-allocation rewrite touches — including event counts, so a
// behaviorally silent change that fires a different number of events
// still trips the golden.
func TestClusterSimulateGoldenResult(t *testing.T) {
	tr, wt, err := genTraceW(trace.KSU, 400, 1.0/40, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.DefaultConfig(8, 2)
	cfg.WarmupFraction = 0.1
	res, err := cluster.Simulate(cfg, core.NewMS(wt, 7), tr)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "stretch\t%s\n", fullBits(res.StretchFactor))
	fmt.Fprintf(&b, "mean\t%s\n", fullBits(res.Summary.MeanResponse))
	fmt.Fprintf(&b, "count\t%d\n", res.Summary.Count)
	fmt.Fprintf(&b, "events\t%d\n", res.Events)
	fmt.Fprintf(&b, "simsec\t%s\n", fullBits(res.SimulatedSeconds))
	fmt.Fprintf(&b, "dyn\t%d\t%d\t%d\n", res.TotalDynamics, res.MasterDynamics, res.RemoteDynamics)
	for i, st := range res.NodeStats {
		fmt.Fprintf(&b, "node%d\t%d\t%d\t%d\t%d\t%d\n",
			i, st.Submitted, st.Completed, st.ContextSwitches, st.PageFaults, st.DiskOps)
	}
	checkGolden(t, "cluster_ksu_golden.golden", b.String())
}
