package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	tr := genTestTrace(t, KSU, 500, 100)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name {
		t.Fatalf("name %q, want %q", got.Name, tr.Name)
	}
	if len(got.Requests) != len(tr.Requests) {
		t.Fatalf("%d records, want %d", len(got.Requests), len(tr.Requests))
	}
	for i := range tr.Requests {
		a, b := tr.Requests[i], got.Requests[i]
		if a.Class != b.Class || a.Size != b.Size || a.MemPages != b.MemPages || a.Script != b.Script {
			t.Fatalf("record %d: %+v != %+v", i, a, b)
		}
		if !approx(a.Arrival, b.Arrival, 1e-8) || !approx(a.Demand, b.Demand, 1e-8) {
			t.Fatalf("record %d times: %+v != %+v", i, a, b)
		}
		if !approx(a.CPUWeight, b.CPUWeight, 1e-3) {
			t.Fatalf("record %d weight: %v != %v", i, a.CPUWeight, b.CPUWeight)
		}
	}
}

func TestReadRejectsBadHeader(t *testing.T) {
	if _, err := Read(strings.NewReader("not a trace\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadRejectsMalformedRecords(t *testing.T) {
	cases := []string{
		"# msweb-trace v1 x\n1.0 s 100\n",                                    // too few fields
		"# msweb-trace v1 x\n1.0 z 100 0.1 0.5 1 0\n",                        // bad class
		"# msweb-trace v1 x\nabc s 100 0.1 0.5 1 0\n",                        // bad arrival
		"# msweb-trace v1 x\n1.0 s xx 0.1 0.5 1 0\n",                         // bad size
		"# msweb-trace v1 x\n1.0 s 100 yy 0.5 1 0\n",                         // bad demand
		"# msweb-trace v1 x\n1.0 s 100 0.1 zz 1 0\n",                         // bad weight
		"# msweb-trace v1 x\n1.0 s 100 0.1 0.5 qq 0\n",                       // bad mem
		"# msweb-trace v1 x\n1.0 s 100 0.1 0.5 1 rr\n",                       // bad script
		"# msweb-trace v1 x\n2.0 s 100 0.1 0.5 1 0\n1.0 s 100 0.1 0.5 1 0\n", // unsorted
		"# msweb-trace v1 x\n1.0 s 100 0.1 1.5 1 0\n",                        // weight out of range
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: malformed trace accepted", i)
		}
	}
}

func TestReadSkipsCommentsAndBlankLines(t *testing.T) {
	in := "# msweb-trace v1 demo\n\n# comment\n1.0 s 100 0.001 0.30 1 0\n2.0 d 500 0.040 0.90 8 2\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 2 {
		t.Fatalf("%d records, want 2", len(tr.Requests))
	}
	if tr.Requests[1].Class != Dynamic || tr.Requests[1].Script != 2 {
		t.Fatalf("second record = %+v", tr.Requests[1])
	}
	if tr.Name != "demo" {
		t.Fatalf("name = %q", tr.Name)
	}
}

func TestReadAssignsSequentialIDs(t *testing.T) {
	tr := genTestTrace(t, UCB, 50, 100)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got.Requests {
		if r.ID != int64(i) {
			t.Fatalf("record %d has ID %d", i, r.ID)
		}
	}
}
