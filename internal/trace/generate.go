package trace

import (
	"fmt"
	"math"

	"msweb/internal/rng"
)

// Profile captures everything the paper extracts from one of its logs:
// the class mix, the response-size statistics, and the CPU/I-O character
// of the synthetic CGI workload that replaces the log's opaque scripts.
type Profile struct {
	Name        string
	DynamicFrac float64 // fraction of requests that are CGI
	// CPUWeight is the mean w of the replacement CGI workload:
	// UCB → 0.95 (WebSTONE busy-spin), KSU → 0.90 (WebGlimpse index
	// search, ~90% CPU), ADL → 0.10 (catalog database, ~90% disk).
	CPUWeight   float64
	CPUWeightSD float64 // per-script spread of w
	// MeanHTMLSize / MeanCGISize are the Table 1 mean response sizes.
	MeanHTMLSize float64
	MeanCGISize  float64
	// NumScripts is how many distinct CGI programs the site runs;
	// off-line w sampling happens per script.
	NumScripts int
	// MemPagesMean is the mean resident set of a CGI process in pages.
	MemPagesMean int
	// CacheableFrac is the fraction of CGI requests whose responses are
	// cacheable (repeatable parameters); 0 disables caching entirely,
	// as for UCB's unique generated documents.
	CacheableFrac float64
	// ParamCardinality is the number of distinct parameter values per
	// script, drawn with Zipf(ParamZipfTheta) popularity.
	ParamCardinality int
	ParamZipfTheta   float64
	// LogInterval is the historical mean inter-arrival time (Table 1),
	// retained for the Table 1 report; replay always rescales it.
	LogInterval float64
	// LogRequests is the historical request count (Table 1).
	LogRequests int64
}

// ArrivalRatio returns a = λ_c/λ_h implied by the class mix.
func (p Profile) ArrivalRatio() float64 {
	if p.DynamicFrac >= 1 {
		return math.Inf(1)
	}
	return p.DynamicFrac / (1 - p.DynamicFrac)
}

// The paper's trace profiles (Table 1). DEC appears in Table 1 but is not
// replayed (its CGI mix duplicates UCB's and its URLs are scrambled).
var (
	// UCB is the UC Berkeley Home IP trace: light CGI mix whose scripts
	// are replaced by the WebSTONE CPU-spinning generator.
	UCB = Profile{
		Name: "UCB", DynamicFrac: 0.112, CPUWeight: 0.95, CPUWeightSD: 0.03,
		MeanHTMLSize: 7519, MeanCGISize: 4591, NumScripts: 8, MemPagesMean: 128,
		LogInterval: 0.139, LogRequests: 9_200_000,
	}
	// KSU is the Kansas State online-library trace; CGI replaced by
	// WebGlimpse searches over a ~10000-item index, ~90% CPU.
	KSU = Profile{
		Name: "KSU", DynamicFrac: 0.291, CPUWeight: 0.90, CPUWeightSD: 0.05,
		MeanHTMLSize: 482, MeanCGISize: 8730, NumScripts: 4, MemPagesMean: 192,
		CacheableFrac: 0.7, ParamCardinality: 400, ParamZipfTheta: 0.8,
		LogInterval: 18.486, LogRequests: 47_364,
	}
	// ADL is the Alexandria Digital Library trace; CGI replaced by a
	// replicated catalog database, ~90% disk I/O.
	ADL = Profile{
		Name: "ADL", DynamicFrac: 0.443, CPUWeight: 0.10, CPUWeightSD: 0.05,
		MeanHTMLSize: 2186, MeanCGISize: 2027, NumScripts: 6, MemPagesMean: 256,
		CacheableFrac: 0.5, ParamCardinality: 800, ParamZipfTheta: 0.8,
		LogInterval: 22.418, LogRequests: 73_610,
	}
	// DEC is Digital's proxy trace, reported in Table 1 only.
	DEC = Profile{
		Name: "DEC", DynamicFrac: 0.087, CPUWeight: 0.5, CPUWeightSD: 0.1,
		MeanHTMLSize: 8821, MeanCGISize: 5735, NumScripts: 8, MemPagesMean: 128,
		LogInterval: 0.09, LogRequests: 24_500_000,
	}
)

// Profiles returns the replayed profiles in the paper's order.
func Profiles() []Profile { return []Profile{UCB, KSU, ADL} }

// ProfileByName looks a profile up by its Table 1 name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range []Profile{UCB, KSU, ADL, DEC} {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// DemandModel selects the service-demand distribution of generated
// requests.
type DemandModel int

const (
	// ExponentialDemand draws exponential demands, matching the
	// Section 3 queueing model. The default.
	ExponentialDemand DemandModel = iota
	// ParetoDemand draws bounded-Pareto demands (α = 1.5, spanning
	// [mean/10, mean·50]), the heavy-tailed regime of the task-
	// assignment literature the paper cites.
	ParetoDemand
	// DeterministicDemand uses the mean exactly; useful in tests.
	DeterministicDemand
)

// ArrivalModel selects the arrival process of generated traces.
type ArrivalModel int

const (
	// PoissonArrivals is the stationary process of the Section 3
	// model. The default.
	PoissonArrivals ArrivalModel = iota
	// MMPPArrivals is a two-state Markov-modulated Poisson process:
	// normal periods at the base rate alternate with flash-crowd
	// bursts at BurstFactor times the base rate. The long-run mean
	// rate stays Lambda.
	MMPPArrivals
	// DiurnalArrivals modulates the rate sinusoidally with period
	// DiurnalPeriod (mean rate Lambda), the day/night pattern of a
	// public Web site.
	DiurnalArrivals
)

// GenConfig parameterizes trace synthesis.
type GenConfig struct {
	Profile Profile
	// Lambda is the total arrival rate in requests/second; the paper
	// replays each log at several scaled rates (Table 2).
	Lambda float64
	// Arrival selects the arrival process; Poisson when zero.
	Arrival ArrivalModel
	// BurstFactor (MMPP) is the peak-to-base rate ratio (default 3).
	BurstFactor float64
	// BurstDuration and NormalDuration (MMPP) are the mean sojourn
	// times of the two states in seconds (defaults 5 and 20).
	BurstDuration, NormalDuration float64
	// DiurnalPeriod (Diurnal) is the modulation period in seconds
	// (default 60).
	DiurnalPeriod float64
	// Requests is the number of records to generate.
	Requests int
	// MuH is the per-node static service rate (1200 req/s in the
	// simulation parameter setting); mean static demand is 1/MuH.
	MuH float64
	// R is the service-rate ratio μ_c/μ_h; mean dynamic demand is
	// 1/(R·MuH). Table 2 examines 1/20 … 1/160.
	R float64
	// Demand selects the demand distribution.
	Demand DemandModel
	// Seed makes generation reproducible.
	Seed int64
}

// Validate reports configuration errors.
func (c GenConfig) Validate() error {
	switch {
	case c.Lambda <= 0:
		return fmt.Errorf("trace: arrival rate %v must be positive", c.Lambda)
	case c.Requests <= 0:
		return fmt.Errorf("trace: request count %d must be positive", c.Requests)
	case c.MuH <= 0:
		return fmt.Errorf("trace: static service rate %v must be positive", c.MuH)
	case c.R <= 0 || c.R > 1:
		return fmt.Errorf("trace: service ratio %v outside (0, 1]", c.R)
	case c.Profile.DynamicFrac < 0 || c.Profile.DynamicFrac > 1:
		return fmt.Errorf("trace: dynamic fraction %v outside [0, 1]", c.Profile.DynamicFrac)
	case c.Profile.NumScripts < 1:
		return fmt.Errorf("trace: profile needs at least one script")
	case c.Arrival == MMPPArrivals && c.BurstFactor < 0:
		return fmt.Errorf("trace: negative burst factor")
	case c.Arrival == DiurnalArrivals && c.DiurnalPeriod < 0:
		return fmt.Errorf("trace: negative diurnal period")
	}
	return nil
}

// arrivalProcess returns a stateful next-interval function for the
// configured arrival model, normalized so the long-run rate is Lambda.
func arrivalProcess(cfg GenConfig, s *rng.Stream) func(now float64) float64 {
	switch cfg.Arrival {
	case MMPPArrivals:
		factor := cfg.BurstFactor
		if factor <= 0 {
			factor = 3
		}
		burstDur := cfg.BurstDuration
		if burstDur <= 0 {
			burstDur = 5
		}
		normalDur := cfg.NormalDuration
		if normalDur <= 0 {
			normalDur = 20
		}
		// Choose the two state rates so the time-weighted mean is Lambda:
		// (normalDur·λn + burstDur·λn·factor) / (normalDur+burstDur) = Lambda.
		lambdaN := cfg.Lambda * (normalDur + burstDur) / (normalDur + burstDur*factor)
		lambdaB := lambdaN * factor
		inBurst := false
		stateLeft := s.Exp(normalDur)
		return func(now float64) float64 {
			rate := lambdaN
			if inBurst {
				rate = lambdaB
			}
			iv := s.Exp(1 / rate)
			stateLeft -= iv
			for stateLeft < 0 {
				inBurst = !inBurst
				if inBurst {
					stateLeft += s.Exp(burstDur)
				} else {
					stateLeft += s.Exp(normalDur)
				}
			}
			return iv
		}
	case DiurnalArrivals:
		period := cfg.DiurnalPeriod
		if period <= 0 {
			period = 60
		}
		return func(now float64) float64 {
			// Thinning-free approximation: modulate the local rate by
			// 1 + 0.6·sin; the sine integrates to zero over a period,
			// preserving the mean rate.
			rate := cfg.Lambda * (1 + 0.6*math.Sin(2*math.Pi*now/period))
			if rate < 0.05*cfg.Lambda {
				rate = 0.05 * cfg.Lambda
			}
			return s.Exp(1 / rate)
		}
	default:
		return func(float64) float64 { return s.Exp(1 / cfg.Lambda) }
	}
}

// Generate synthesizes a trace: Poisson arrivals at the configured rate,
// class mix and sizes from the profile, demands from the demand model,
// and per-script CPU weights sampled once per script (the ground truth
// that off-line w sampling estimates).
func Generate(cfg GenConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := rng.New(cfg.Seed)
	arrivalS := s.Fork(1)
	classS := s.Fork(2)
	sizeS := s.Fork(3)
	demandS := s.Fork(4)
	scriptS := s.Fork(5)

	fileset := NewSPECWebFileSet()
	pageSize := int64(8192)
	paramS := s.Fork(6)
	var paramZipf *rng.Zipf
	if cfg.Profile.ParamCardinality > 0 {
		paramZipf = paramS.NewZipf(cfg.Profile.ParamCardinality, cfg.Profile.ParamZipfTheta)
	}

	// Ground-truth per-script CPU weights.
	weights := make([]float64, cfg.Profile.NumScripts)
	for i := range weights {
		w := scriptS.Normal(cfg.Profile.CPUWeight, cfg.Profile.CPUWeightSD)
		weights[i] = clamp01(w)
	}

	meanDH := 1 / cfg.MuH
	meanDC := 1 / (cfg.R * cfg.MuH)
	// Every request has a minimum protocol cost: parsing, connection
	// handling, one buffer copy. Demands are floored at 12% of the class
	// mean with the exponential shifted to preserve the mean — without
	// this, near-zero demands produce unbounded stretch outliers that no
	// physical server exhibits.
	drawDemand := func(mean float64) float64 {
		switch cfg.Demand {
		case ParetoDemand:
			// Bounded Pareto on [L, 500L] with α=1.5 has mean ≈ 2.866·L
			// (closed form of the truncated Pareto expectation), so L is
			// set to mean/2.866 to hit the requested mean.
			lo := mean / 2.866
			return demandS.BoundedPareto(lo, 500*lo, 1.5)
		case DeterministicDemand:
			return mean
		default:
			floor := 0.12 * mean
			return floor + demandS.Exp(mean-floor)
		}
	}

	tr := &Trace{Name: cfg.Profile.Name}
	nextInterval := arrivalProcess(cfg, arrivalS)
	now := 0.0
	for i := 0; i < cfg.Requests; i++ {
		now += nextInterval(now)
		req := Request{ID: int64(i), Arrival: now}
		if classS.Bernoulli(cfg.Profile.DynamicFrac) {
			req.Class = Dynamic
			req.Script = 1 + scriptS.Intn(cfg.Profile.NumScripts)
			req.CPUWeight = weights[req.Script-1]
			req.Size = int64(sizeS.Lognormal(math.Log(cfg.Profile.MeanCGISize)-0.125, 0.5))
			if req.Size < 64 {
				req.Size = 64
			}
			req.Demand = drawDemand(meanDC)
			req.MemPages = 1 + int(sizeS.Exp(float64(cfg.Profile.MemPagesMean)))
			if paramZipf != nil && paramS.Bernoulli(cfg.Profile.CacheableFrac) {
				req.Param = 1 + int64(paramZipf.Next())
			}
		} else {
			req.Class = Static
			// Draw a target size around the profile's HTML mean, then
			// map to the closest SPECweb96 file as the paper does.
			target := int64(sizeS.Lognormal(math.Log(cfg.Profile.MeanHTMLSize)-0.32, 0.8))
			f := fileset.Closest(target)
			req.Size = f.Size
			req.CPUWeight = 0.3 // statics: mostly I/O with protocol CPU
			req.Demand = drawDemand(meanDH)
			req.MemPages = int((f.Size + pageSize - 1) / pageSize)
		}
		tr.Requests = append(tr.Requests, req)
	}
	return tr, nil
}

func clamp01(x float64) float64 {
	if x < 0.01 {
		return 0.01
	}
	if x > 0.99 {
		return 0.99
	}
	return x
}

// Table1 generates small synthetic instances of all four profiles at
// their historical rates and reports their characteristics next to the
// published Table 1 values. n is the per-trace record count.
func Table1(n int, seed int64) ([]Characteristics, error) {
	profiles := []Profile{DEC, UCB, KSU, ADL}
	out := make([]Characteristics, 0, len(profiles))
	for i, p := range profiles {
		lambda := 1 / p.LogInterval
		cfg := GenConfig{
			Profile:  p,
			Lambda:   lambda,
			Requests: n,
			MuH:      1200,
			R:        1.0 / 40,
			Seed:     seed + int64(i),
		}
		tr, err := Generate(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, Characterize(tr))
	}
	return out, nil
}
