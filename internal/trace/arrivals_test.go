package trace

import (
	"math"
	"testing"
)

func genArrival(t *testing.T, cfg GenConfig) *Trace {
	t.Helper()
	cfg.Profile = KSU
	cfg.MuH = 1200
	cfg.R = 1.0 / 40
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// indexOfDispersion measures burstiness: counts per window, var/mean.
// Poisson ≈ 1; MMPP substantially above 1.
func indexOfDispersion(tr *Trace, window float64) float64 {
	if len(tr.Requests) == 0 {
		return 0
	}
	end := tr.Requests[len(tr.Requests)-1].Arrival
	bins := int(end/window) + 1
	counts := make([]float64, bins)
	for _, r := range tr.Requests {
		counts[int(r.Arrival/window)]++
	}
	mean := 0.0
	for _, c := range counts {
		mean += c
	}
	mean /= float64(len(counts))
	varc := 0.0
	for _, c := range counts {
		varc += (c - mean) * (c - mean)
	}
	varc /= float64(len(counts))
	if mean == 0 {
		return 0
	}
	return varc / mean
}

func TestMMPPPreservesMeanRate(t *testing.T) {
	// Short sojourns give enough burst/normal cycles for the long-run
	// rate to converge within the sample.
	tr := genArrival(t, GenConfig{
		Lambda: 200, Requests: 40000, Seed: 1,
		Arrival: MMPPArrivals, BurstFactor: 4,
		BurstDuration: 1, NormalDuration: 4,
	})
	c := Characterize(tr)
	rate := 1 / c.MeanInterval
	if math.Abs(rate-200) > 20 {
		t.Fatalf("MMPP mean rate = %.1f, want ~200", rate)
	}
}

func TestMMPPIsBurstier(t *testing.T) {
	poisson := genArrival(t, GenConfig{Lambda: 200, Requests: 30000, Seed: 2})
	mmpp := genArrival(t, GenConfig{
		Lambda: 200, Requests: 30000, Seed: 2,
		Arrival: MMPPArrivals, BurstFactor: 4,
		BurstDuration: 2, NormalDuration: 8,
	})
	iodP := indexOfDispersion(poisson, 1.0)
	iodM := indexOfDispersion(mmpp, 1.0)
	if iodP > 2 {
		t.Fatalf("Poisson dispersion %v implausibly high", iodP)
	}
	if iodM < 2*iodP {
		t.Fatalf("MMPP dispersion %v not clearly above Poisson %v", iodM, iodP)
	}
}

func TestDiurnalPreservesMeanRate(t *testing.T) {
	tr := genArrival(t, GenConfig{
		Lambda: 200, Requests: 40000, Seed: 3,
		Arrival: DiurnalArrivals, DiurnalPeriod: 30,
	})
	c := Characterize(tr)
	rate := 1 / c.MeanInterval
	if math.Abs(rate-200) > 25 {
		t.Fatalf("diurnal mean rate = %.1f, want ~200", rate)
	}
}

func TestDiurnalModulates(t *testing.T) {
	tr := genArrival(t, GenConfig{
		Lambda: 300, Requests: 30000, Seed: 4,
		Arrival: DiurnalArrivals, DiurnalPeriod: 40,
	})
	// Rate at the sine peak (t≈10 mod 40) must exceed the trough
	// (t≈30 mod 40).
	var peak, trough int
	for _, r := range tr.Requests {
		phase := math.Mod(r.Arrival, 40)
		if phase >= 5 && phase < 15 {
			peak++
		} else if phase >= 25 && phase < 35 {
			trough++
		}
	}
	if peak <= trough {
		t.Fatalf("diurnal peak count %d not above trough %d", peak, trough)
	}
}

func TestArrivalModelValidation(t *testing.T) {
	bad := GenConfig{Profile: KSU, Lambda: 100, Requests: 10, MuH: 1200, R: 0.025,
		Arrival: MMPPArrivals, BurstFactor: -1}
	if _, err := Generate(bad); err == nil {
		t.Fatal("negative burst factor accepted")
	}
	bad2 := GenConfig{Profile: KSU, Lambda: 100, Requests: 10, MuH: 1200, R: 0.025,
		Arrival: DiurnalArrivals, DiurnalPeriod: -5}
	if _, err := Generate(bad2); err == nil {
		t.Fatal("negative diurnal period accepted")
	}
}

func TestArrivalModelsSortedAndValid(t *testing.T) {
	for _, model := range []ArrivalModel{PoissonArrivals, MMPPArrivals, DiurnalArrivals} {
		tr := genArrival(t, GenConfig{Lambda: 150, Requests: 5000, Seed: 5, Arrival: model})
		if err := tr.Validate(); err != nil {
			t.Fatalf("model %d: %v", model, err)
		}
	}
}
