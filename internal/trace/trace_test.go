package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func genTestTrace(t *testing.T, p Profile, n int, lambda float64) *Trace {
	t.Helper()
	tr, err := Generate(GenConfig{
		Profile: p, Lambda: lambda, Requests: n, MuH: 1200, R: 1.0 / 40, Seed: 1,
	})
	if err != nil {
		t.Fatalf("Generate(%s): %v", p.Name, err)
	}
	return tr
}

func TestClassString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" {
		t.Fatalf("class strings: %v %v", Static, Dynamic)
	}
	if Class(7).String() != "Class(7)" {
		t.Fatalf("unknown class string: %v", Class(7))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genTestTrace(t, UCB, 1000, 100)
	b := genTestTrace(t, UCB, 1000, 100)
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("same-seed traces differ in length")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("same-seed traces differ at record %d", i)
		}
	}
}

func TestGeneratedTraceValid(t *testing.T) {
	for _, p := range Profiles() {
		tr := genTestTrace(t, p, 5000, 200)
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
}

func TestGeneratedMixMatchesProfile(t *testing.T) {
	for _, p := range Profiles() {
		tr := genTestTrace(t, p, 20000, 500)
		c := Characterize(tr)
		if math.Abs(c.PctCGI-100*p.DynamicFrac) > 1.5 {
			t.Fatalf("%s: generated %%CGI = %.2f, profile wants %.2f", p.Name, c.PctCGI, 100*p.DynamicFrac)
		}
	}
}

func TestGeneratedArrivalRate(t *testing.T) {
	tr := genTestTrace(t, KSU, 20000, 500)
	c := Characterize(tr)
	if math.Abs(c.MeanInterval-1.0/500) > 0.0002 {
		t.Fatalf("mean interval = %v, want ~0.002", c.MeanInterval)
	}
}

func TestGeneratedDemandMeans(t *testing.T) {
	tr := genTestTrace(t, ADL, 40000, 500)
	c := Characterize(tr)
	wantH := 1.0 / 1200
	wantC := 40.0 / 1200
	if math.Abs(c.MeanDemandH-wantH) > 0.1*wantH {
		t.Fatalf("mean static demand = %v, want ~%v", c.MeanDemandH, wantH)
	}
	if math.Abs(c.MeanDemandC-wantC) > 0.1*wantC {
		t.Fatalf("mean dynamic demand = %v, want ~%v", c.MeanDemandC, wantC)
	}
	if math.Abs(c.R()-1.0/40) > 0.005 {
		t.Fatalf("implied r = %v, want ~1/40", c.R())
	}
}

func TestGeneratedCPUWeightsPerScript(t *testing.T) {
	tr := genTestTrace(t, UCB, 20000, 500)
	// All requests of the same script share one ground-truth w.
	perScript := map[int]float64{}
	for _, r := range tr.Requests {
		if r.Class != Dynamic {
			continue
		}
		if w, ok := perScript[r.Script]; ok {
			if w != r.CPUWeight {
				t.Fatalf("script %d has inconsistent weights %v and %v", r.Script, w, r.CPUWeight)
			}
		} else {
			perScript[r.Script] = r.CPUWeight
		}
		// UCB's replacement scripts are CPU spinners: w near 0.95.
		if r.CPUWeight < 0.8 {
			t.Fatalf("UCB script %d weight %v implausibly low", r.Script, r.CPUWeight)
		}
	}
	if len(perScript) == 0 || len(perScript) > UCB.NumScripts {
		t.Fatalf("saw %d scripts, profile has %d", len(perScript), UCB.NumScripts)
	}
}

func TestGenerateValidation(t *testing.T) {
	base := GenConfig{Profile: UCB, Lambda: 100, Requests: 10, MuH: 1200, R: 0.025}
	bad := base
	bad.Lambda = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("lambda=0 accepted")
	}
	bad = base
	bad.Requests = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("requests=0 accepted")
	}
	bad = base
	bad.R = 2
	if _, err := Generate(bad); err == nil {
		t.Fatal("r=2 accepted")
	}
	bad = base
	bad.Profile.NumScripts = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("no-script profile accepted")
	}
}

func TestDeterministicDemandModel(t *testing.T) {
	tr, err := Generate(GenConfig{
		Profile: KSU, Lambda: 100, Requests: 1000, MuH: 1200, R: 1.0 / 40,
		Demand: DeterministicDemand, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Requests {
		want := 1.0 / 1200
		if r.Class == Dynamic {
			want = 40.0 / 1200
		}
		if !approx(r.Demand, want, 1e-12) {
			t.Fatalf("deterministic demand %v, want %v", r.Demand, want)
		}
	}
}

func TestParetoDemandMean(t *testing.T) {
	tr, err := Generate(GenConfig{
		Profile: KSU, Lambda: 100, Requests: 60000, MuH: 1200, R: 1.0 / 40,
		Demand: ParetoDemand, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := Characterize(tr)
	wantC := 40.0 / 1200
	if math.Abs(c.MeanDemandC-wantC) > 0.25*wantC {
		t.Fatalf("Pareto dynamic demand mean %v, want ~%v (±25%%)", c.MeanDemandC, wantC)
	}
}

func TestCharacterizeEmptyAndAllStatic(t *testing.T) {
	empty := &Trace{Name: "empty"}
	c := Characterize(empty)
	if c.Requests != 0 || c.PctCGI != 0 {
		t.Fatalf("empty characteristics: %+v", c)
	}
	allDyn := &Trace{Name: "dyn", Requests: []Request{
		{Arrival: 0, Class: Dynamic, Demand: 1},
		{Arrival: 1, Class: Dynamic, Demand: 1},
	}}
	cd := Characterize(allDyn)
	if !math.IsInf(cd.ArrivalRatio, 1) {
		t.Fatalf("all-dynamic arrival ratio = %v, want +Inf", cd.ArrivalRatio)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	bad := &Trace{Name: "bad", Requests: []Request{
		{Arrival: 5}, {Arrival: 3},
	}}
	if bad.Validate() == nil {
		t.Fatal("out-of-order arrivals accepted")
	}
	bad2 := &Trace{Name: "bad2", Requests: []Request{{Arrival: 0, Demand: -1}}}
	if bad2.Validate() == nil {
		t.Fatal("negative demand accepted")
	}
	bad3 := &Trace{Name: "bad3", Requests: []Request{{Arrival: 0, CPUWeight: 1.5}}}
	if bad3.Validate() == nil {
		t.Fatal("cpu weight > 1 accepted")
	}
	bad4 := &Trace{Name: "bad4", Requests: []Request{{Arrival: 0, Class: Class(9)}}}
	if bad4.Validate() == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestScaleIntervals(t *testing.T) {
	tr := &Trace{Name: "x", Requests: []Request{
		{Arrival: 10}, {Arrival: 14}, {Arrival: 22},
	}}
	out := ScaleIntervals(tr, 2)
	want := []float64{10, 12, 16}
	for i, r := range out.Requests {
		if !approx(r.Arrival, want[i], 1e-12) {
			t.Fatalf("scaled arrival %d = %v, want %v", i, r.Arrival, want[i])
		}
	}
	// Original untouched.
	if tr.Requests[1].Arrival != 14 {
		t.Fatal("ScaleIntervals mutated its input")
	}
	// Degenerate factor falls back to identity.
	id := ScaleIntervals(tr, 0)
	if id.Requests[2].Arrival != 22 {
		t.Fatalf("factor=0 changed arrivals: %v", id.Requests[2].Arrival)
	}
}

func TestScaleIntervalsChangesRate(t *testing.T) {
	tr := genTestTrace(t, UCB, 5000, 100)
	fast := ScaleIntervals(tr, 4)
	c0, c1 := Characterize(tr), Characterize(fast)
	if !approx(c1.MeanInterval*4, c0.MeanInterval, 1e-9) {
		t.Fatalf("scale 4: intervals %v -> %v", c0.MeanInterval, c1.MeanInterval)
	}
}

func TestSlice(t *testing.T) {
	tr := &Trace{Name: "x", Requests: []Request{
		{Arrival: 1}, {Arrival: 2}, {Arrival: 3}, {Arrival: 4},
	}}
	out := Slice(tr, 2, 4)
	if len(out.Requests) != 2 || out.Requests[0].Arrival != 2 || out.Requests[1].Arrival != 3 {
		t.Fatalf("Slice = %+v", out.Requests)
	}
}

func TestDuration(t *testing.T) {
	tr := &Trace{Requests: []Request{{Arrival: 3}, {Arrival: 10}}}
	if got := tr.Duration(); got != 7 {
		t.Fatalf("Duration = %v, want 7", got)
	}
	if got := (&Trace{}).Duration(); got != 0 {
		t.Fatalf("empty Duration = %v", got)
	}
}

func TestProfileArrivalRatio(t *testing.T) {
	// Table 2 / Figure 5: a ranges roughly 0.12 (UCB) to 0.78 (ADL).
	if r := UCB.ArrivalRatio(); !approx(r, 0.126, 0.01) {
		t.Fatalf("UCB a = %v", r)
	}
	if r := KSU.ArrivalRatio(); !approx(r, 0.41, 0.01) {
		t.Fatalf("KSU a = %v", r)
	}
	if r := ADL.ArrivalRatio(); !approx(r, 0.795, 0.01) {
		t.Fatalf("ADL a = %v", r)
	}
	all := Profile{DynamicFrac: 1}
	if !math.IsInf(all.ArrivalRatio(), 1) {
		t.Fatal("all-dynamic profile ratio not +Inf")
	}
}

func TestProfileByName(t *testing.T) {
	if p, ok := ProfileByName("ADL"); !ok || p.Name != "ADL" {
		t.Fatalf("ProfileByName(ADL) = %+v, %v", p, ok)
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Fatal("unknown profile found")
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Table1 returned %d rows, want 4", len(rows))
	}
	wantOrder := []string{"DEC", "UCB", "KSU", "ADL"}
	for i, row := range rows {
		if row.Name != wantOrder[i] {
			t.Fatalf("row %d = %s, want %s", i, row.Name, wantOrder[i])
		}
		p, _ := ProfileByName(row.Name)
		if math.Abs(row.PctCGI-100*p.DynamicFrac) > 3 {
			t.Fatalf("%s: %%CGI %.1f too far from published %.1f", row.Name, row.PctCGI, 100*p.DynamicFrac)
		}
		if math.Abs(row.MeanInterval-p.LogInterval) > 0.15*p.LogInterval {
			t.Fatalf("%s: interval %.3f too far from published %.3f", row.Name, row.MeanInterval, p.LogInterval)
		}
	}
}

// Property: generated arrivals are always sorted and demands positive,
// for any profile mix and seed.
func TestGenerateInvariantsProperty(t *testing.T) {
	f := func(seed int64, dynFrac uint8) bool {
		p := UCB
		p.DynamicFrac = float64(dynFrac%101) / 100
		tr, err := Generate(GenConfig{
			Profile: p, Lambda: 200, Requests: 300, MuH: 1200, R: 1.0 / 40, Seed: seed,
		})
		if err != nil {
			return false
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsNonFinite(t *testing.T) {
	nan := math.NaN()
	cases := []*Trace{
		{Name: "nanArr", Requests: []Request{{Arrival: nan}}},
		{Name: "infArr", Requests: []Request{{Arrival: math.Inf(1)}}},
		{Name: "nanDem", Requests: []Request{{Arrival: 0, Demand: nan}}},
		{Name: "infDem", Requests: []Request{{Arrival: 0, Demand: math.Inf(1)}}},
		{Name: "nanW", Requests: []Request{{Arrival: 0, CPUWeight: nan}}},
	}
	for _, tr := range cases {
		if tr.Validate() == nil {
			t.Fatalf("%s: non-finite field accepted", tr.Name)
		}
	}
}
