package trace

import (
	"math"
	"testing"
)

func mkTrace(name string, arrivals ...float64) *Trace {
	t := &Trace{Name: name}
	for _, a := range arrivals {
		t.Requests = append(t.Requests, Request{Arrival: a, Class: Static})
	}
	return t
}

func TestMerge(t *testing.T) {
	a := mkTrace("a", 1, 4, 7)
	b := mkTrace("b", 2, 3, 9)
	m := Merge("ab", a, b)
	if m.Name != "ab" || len(m.Requests) != 6 {
		t.Fatalf("merge: %s, %d requests", m.Name, len(m.Requests))
	}
	want := []float64{1, 2, 3, 4, 7, 9}
	for i, r := range m.Requests {
		if r.Arrival != want[i] || r.ID != int64(i) {
			t.Fatalf("merged[%d] = %+v, want arrival %v id %d", i, r, want[i], i)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Inputs untouched.
	if a.Requests[0].ID != 0 || len(a.Requests) != 3 {
		t.Fatal("Merge mutated an input")
	}
}

func TestMergeEmpty(t *testing.T) {
	m := Merge("empty")
	if len(m.Requests) != 0 {
		t.Fatal("empty merge has requests")
	}
	m2 := Merge("one", mkTrace("a", 5))
	if len(m2.Requests) != 1 {
		t.Fatal("single merge lost requests")
	}
}

func TestRebase(t *testing.T) {
	tr := mkTrace("x", 10, 12, 15)
	out := Rebase(tr)
	if out.Requests[0].Arrival != 0 || out.Requests[2].Arrival != 5 {
		t.Fatalf("rebased: %+v", out.Requests)
	}
	if tr.Requests[0].Arrival != 10 {
		t.Fatal("Rebase mutated input")
	}
	if len(Rebase(&Trace{}).Requests) != 0 {
		t.Fatal("empty rebase")
	}
}

func TestFilterClass(t *testing.T) {
	tr := &Trace{Name: "x", Requests: []Request{
		{Arrival: 1, Class: Static},
		{Arrival: 2, Class: Dynamic},
		{Arrival: 3, Class: Static},
	}}
	statics := FilterClass(tr, Static)
	if len(statics.Requests) != 2 || statics.Requests[1].Arrival != 3 {
		t.Fatalf("statics: %+v", statics.Requests)
	}
	dynamics := FilterClass(tr, Dynamic)
	if len(dynamics.Requests) != 1 || dynamics.Requests[0].ID != 0 {
		t.Fatalf("dynamics: %+v", dynamics.Requests)
	}
}

func TestFilterPredicate(t *testing.T) {
	tr := mkTrace("x", 1, 2, 3, 4, 5)
	out := Filter(tr, func(r Request) bool { return r.Arrival > 2.5 })
	if len(out.Requests) != 3 {
		t.Fatalf("filtered: %d", len(out.Requests))
	}
}

func TestRateWindows(t *testing.T) {
	tr := mkTrace("x", 0, 0.1, 0.2, 1.5, 2.9)
	rates, err := RateWindows(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != 3 {
		t.Fatalf("%d windows", len(rates))
	}
	if rates[0] != 3 || rates[1] != 1 || rates[2] != 1 {
		t.Fatalf("rates: %v", rates)
	}
	peak, err := PeakRate(tr, 1)
	if err != nil || peak != 3 {
		t.Fatalf("peak %v err %v", peak, err)
	}
}

func TestRateWindowsErrors(t *testing.T) {
	if _, err := RateWindows(mkTrace("x", 1), 0); err == nil {
		t.Fatal("zero window accepted")
	}
	rates, err := RateWindows(&Trace{}, 1)
	if err != nil || rates != nil {
		t.Fatalf("empty trace: %v, %v", rates, err)
	}
}

func TestMMPPPeakExceedsMean(t *testing.T) {
	tr := genArrival(t, GenConfig{
		Lambda: 300, Requests: 20000, Seed: 9,
		Arrival: MMPPArrivals, BurstFactor: 4,
		BurstDuration: 2, NormalDuration: 6,
	})
	peak, err := PeakRate(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	mean := 1 / Characterize(tr).MeanInterval
	if peak < 1.5*mean {
		t.Fatalf("MMPP peak %v not well above mean %v", peak, mean)
	}
	if math.IsNaN(peak) {
		t.Fatal("NaN peak")
	}
}
