package trace

// Import of real Web server access logs in Common Log Format (CLF) and
// its combined variant — the adoption path for users who want to replay
// their own site's history instead of the synthetic profiles. This is
// exactly how the paper treated its logs: the access log supplies
// arrival times, URL classes and response sizes; service demands are
// synthesized from the μ_h / r calibration because logs do not record
// server-side costs.
//
//	host ident user [02/Jun/1999:04:05:06 -0700] "GET /x.html HTTP/1.0" 200 2326
//
// Classification: a request is dynamic if its URL path contains
// "/cgi-bin/", ends in a script suffix (.cgi, .pl, .php, .asp) or
// carries a query string; everything else is a static fetch. The script
// id of a dynamic request is a stable hash of its path; the cache
// parameter is a stable hash of the full URL (path + query), so
// repeated invocations with identical parameters are cacheable.

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"msweb/internal/rng"
)

// CLFOptions control log import.
type CLFOptions struct {
	// MuH and R calibrate synthesized service demands, exactly as in
	// GenConfig (mean static demand 1/MuH, dynamic 1/(R·MuH)).
	MuH float64
	R   float64
	// Seed drives the demand draws.
	Seed int64
	// Demand selects the demand distribution (exponential by default).
	Demand DemandModel
	// SkipErrors keeps going past malformed lines (counting them)
	// instead of failing; real logs are dirty.
	SkipErrors bool
	// DynamicMarkers optionally extends the dynamic-URL classification
	// (substrings matched against the path).
	DynamicMarkers []string
}

// CLFResult reports import statistics alongside the trace.
type CLFResult struct {
	Trace     *Trace
	Lines     int
	Malformed int
}

const clfTimeLayout = "02/Jan/2006:15:04:05 -0700"

// ReadCLF parses an access log into a replayable trace. Records are
// sorted by timestamp (logs are written in completion order, which can
// be slightly out of arrival order) and rebased to start at zero.
func ReadCLF(r io.Reader, opts CLFOptions) (*CLFResult, error) {
	if opts.MuH <= 0 {
		return nil, fmt.Errorf("trace: CLF import needs a positive MuH calibration")
	}
	if opts.R <= 0 || opts.R > 1 {
		return nil, fmt.Errorf("trace: CLF import needs r in (0, 1]")
	}
	gen := GenConfig{MuH: opts.MuH, R: opts.R, Demand: opts.Demand}
	demandS := newDemandDrawer(gen, opts.Seed)

	res := &CLFResult{Trace: &Trace{Name: "clf"}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	type rec struct {
		at  time.Time
		req Request
	}
	var recs []rec
	for sc.Scan() {
		res.Lines++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		at, req, err := parseCLFLine(line, opts)
		if err != nil {
			if opts.SkipErrors {
				res.Malformed++
				continue
			}
			return nil, fmt.Errorf("trace: CLF line %d: %w", res.Lines, err)
		}
		recs = append(recs, rec{at: at, req: req})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].at.Before(recs[j].at) })

	var base time.Time
	for i, rc := range recs {
		if i == 0 {
			base = rc.at
		}
		req := rc.req
		req.ID = int64(i)
		req.Arrival = rc.at.Sub(base).Seconds()
		// Synthesize the unobservable service demand from calibration.
		if req.Class == Dynamic {
			req.Demand = demandS(1 / (opts.R * opts.MuH))
			req.CPUWeight = 0.5 // unknown mix: the paper's default
			req.MemPages = 128
		} else {
			req.Demand = demandS(1 / opts.MuH)
			req.CPUWeight = 0.3
			req.MemPages = int(req.Size/8192) + 1
		}
		res.Trace.Requests = append(res.Trace.Requests, req)
	}
	if err := res.Trace.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}

// newDemandDrawer builds a demand sampler matching Generate's models.
func newDemandDrawer(cfg GenConfig, seed int64) func(mean float64) float64 {
	s := rng.New(seed)
	return func(mean float64) float64 {
		switch cfg.Demand {
		case ParetoDemand:
			lo := mean / 2.866
			return s.BoundedPareto(lo, 500*lo, 1.5)
		case DeterministicDemand:
			return mean
		default:
			floor := 0.12 * mean
			return floor + s.Exp(mean-floor)
		}
	}
}

// parseCLFLine extracts timestamp, request line, status and size.
func parseCLFLine(line string, opts CLFOptions) (time.Time, Request, error) {
	var req Request

	lb := strings.IndexByte(line, '[')
	rb := strings.IndexByte(line, ']')
	if lb < 0 || rb < lb {
		return time.Time{}, req, fmt.Errorf("no timestamp")
	}
	at, err := time.Parse(clfTimeLayout, line[lb+1:rb])
	if err != nil {
		return time.Time{}, req, fmt.Errorf("timestamp: %v", err)
	}

	q1 := strings.IndexByte(line[rb:], '"')
	if q1 < 0 {
		return time.Time{}, req, fmt.Errorf("no request line")
	}
	q1 += rb
	q2 := strings.IndexByte(line[q1+1:], '"')
	if q2 < 0 {
		return time.Time{}, req, fmt.Errorf("unterminated request line")
	}
	reqLine := line[q1+1 : q1+1+q2]
	rest := strings.Fields(strings.TrimSpace(line[q1+q2+2:]))
	if len(rest) < 2 {
		return time.Time{}, req, fmt.Errorf("no status/size")
	}
	status, err := strconv.Atoi(rest[0])
	if err != nil {
		return time.Time{}, req, fmt.Errorf("status: %v", err)
	}
	if status < 100 || status > 599 {
		return time.Time{}, req, fmt.Errorf("implausible status %d", status)
	}
	size := int64(0)
	if rest[1] != "-" {
		size, err = strconv.ParseInt(rest[1], 10, 64)
		if err != nil || size < 0 {
			return time.Time{}, req, fmt.Errorf("size: %q", rest[1])
		}
	}

	parts := strings.Fields(reqLine)
	if len(parts) < 2 {
		return time.Time{}, req, fmt.Errorf("bad request line %q", reqLine)
	}
	url := parts[1]
	path, query := url, ""
	if i := strings.IndexByte(url, '?'); i >= 0 {
		path, query = url[:i], url[i+1:]
	}

	req.Size = size
	if isDynamicURL(path, query, opts.DynamicMarkers) {
		req.Class = Dynamic
		req.Script = 1 + int(hash32(path)%997)
		if query != "" {
			req.Param = 1 + int64(hash32(path+"?"+query)%1_000_000)
		}
	} else {
		req.Class = Static
	}
	return at, req, nil
}

// isDynamicURL applies the classification heuristics.
func isDynamicURL(path, query string, extra []string) bool {
	if query != "" {
		return true
	}
	lower := strings.ToLower(path)
	if strings.Contains(lower, "/cgi-bin/") {
		return true
	}
	for _, suffix := range []string{".cgi", ".pl", ".php", ".asp", ".jsp"} {
		if strings.HasSuffix(lower, suffix) {
			return true
		}
	}
	for _, marker := range extra {
		if marker != "" && strings.Contains(lower, strings.ToLower(marker)) {
			return true
		}
	}
	return false
}

func hash32(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s)) //nolint:errcheck
	return h.Sum32()
}
