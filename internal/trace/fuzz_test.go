package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead hardens the trace parser: arbitrary input must never panic,
// and anything it accepts must round-trip through Write/Read untouched.
func FuzzRead(f *testing.F) {
	f.Add("# msweb-trace v1 demo\n1.0 s 100 0.001 0.30 1 0\n")
	f.Add("# msweb-trace v1 x\n1.0 d 500 0.040 0.90 8 2 17\n")
	f.Add("# msweb-trace v1\n")
	f.Add("")
	f.Add("garbage")
	f.Add("# msweb-trace v1 a\n1 s 1 1 1 1 1\n2 d 2 2 0.5 2 2 2\n")
	f.Add("# msweb-trace v1 nan\nNaN s 100 0.001 0.30 1 0\n")
	f.Add("# msweb-trace v1 inf\n+Inf s 100 0.001 0.30 1 0\n")

	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted traces must satisfy the validator...
		if vErr := tr.Validate(); vErr != nil {
			t.Fatalf("Read accepted a trace Validate rejects: %v", vErr)
		}
		// ...and survive a Write/Read round trip.
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("Write failed on accepted trace: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round-trip Read failed: %v", err)
		}
		if len(back.Requests) != len(tr.Requests) {
			t.Fatalf("round trip changed record count: %d vs %d", len(back.Requests), len(tr.Requests))
		}
	})
}
