package trace

import "msweb/internal/rng"

// SPECweb96 fileset. The paper replaces every static fetch in its logs
// with the closest-sized file from the 40 representative SPECweb96 files.
// SPECweb96 organizes files in four size classes, accessed with fixed
// probabilities, with files spread across each class's size range:
//
//	class 0:   0.1–0.9 KB  (35% of accesses)
//	class 1:     1–9 KB    (50%)
//	class 2:   10–90 KB    (14%)
//	class 3: 100–900 KB    (1%)
//
// Within a class this implementation uses 10 files at 1x..9x the class
// base size plus the class midpoint, giving the canonical 40 files.

// SPECFile is one file of the fileset.
type SPECFile struct {
	ID    int
	Class int   // size class 0..3
	Size  int64 // bytes
}

// SPECWebFileSet is the 40-file SPECweb96-like fileset with its class
// access weights.
type SPECWebFileSet struct {
	Files   []SPECFile
	weights []float64 // per-class access probability
}

// NewSPECWebFileSet constructs the canonical 40-file set.
func NewSPECWebFileSet() *SPECWebFileSet {
	fs := &SPECWebFileSet{weights: []float64{0.35, 0.50, 0.14, 0.01}}
	id := 0
	for class := 0; class < 4; class++ {
		base := int64(102) // 0.1 KB
		for c := 0; c < class; c++ {
			base *= 10
		}
		for i := 1; i <= 9; i++ {
			fs.Files = append(fs.Files, SPECFile{ID: id, Class: class, Size: base * int64(i)})
			id++
		}
		// The 10th file per class sits at the class midpoint (4.5x),
		// rounding the set out to 40 files.
		fs.Files = append(fs.Files, SPECFile{ID: id, Class: class, Size: base*4 + base/2})
		id++
	}
	return fs
}

// Pick draws a file according to SPECweb96 access weights: first a class
// by weight, then a uniform file within the class.
func (fs *SPECWebFileSet) Pick(s *rng.Stream) SPECFile {
	class := s.WeightedChoice(fs.weights)
	var inClass []SPECFile
	for _, f := range fs.Files {
		if f.Class == class {
			inClass = append(inClass, f)
		}
	}
	return inClass[s.Intn(len(inClass))]
}

// Closest returns the file whose size is nearest to want, the mapping the
// paper applies to each logged static fetch.
func (fs *SPECWebFileSet) Closest(want int64) SPECFile {
	best := fs.Files[0]
	bestDiff := absInt64(best.Size - want)
	for _, f := range fs.Files[1:] {
		if d := absInt64(f.Size - want); d < bestDiff {
			best, bestDiff = f, d
		}
	}
	return best
}

// MeanSize returns the access-weighted mean file size in bytes.
func (fs *SPECWebFileSet) MeanSize() float64 {
	total := 0.0
	for class := 0; class < 4; class++ {
		var sum, n float64
		for _, f := range fs.Files {
			if f.Class == class {
				sum += float64(f.Size)
				n++
			}
		}
		if n > 0 {
			total += fs.weights[class] * sum / n
		}
	}
	return total
}

func absInt64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
