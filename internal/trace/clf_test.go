package trace

import (
	"strings"
	"testing"
)

const clfSample = `192.168.1.1 - - [02/Jun/1999:04:05:06 -0700] "GET /index.html HTTP/1.0" 200 2326
192.168.1.2 - alice [02/Jun/1999:04:05:07 -0700] "GET /cgi-bin/search HTTP/1.0" 200 8730
192.168.1.3 - - [02/Jun/1999:04:05:08 -0700] "GET /catalog?q=maps&page=2 HTTP/1.1" 200 2027
192.168.1.4 - - [02/Jun/1999:04:05:09 -0700] "GET /images/logo.gif HTTP/1.0" 304 -
192.168.1.5 - - [02/Jun/1999:04:05:10 -0700] "POST /app/form.php HTTP/1.1" 200 512
`

func readCLF(t *testing.T, in string, opts CLFOptions) *CLFResult {
	t.Helper()
	if opts.MuH == 0 {
		opts.MuH = 1200
	}
	if opts.R == 0 {
		opts.R = 1.0 / 40
	}
	res, err := ReadCLF(strings.NewReader(in), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCLFBasicImport(t *testing.T) {
	res := readCLF(t, clfSample, CLFOptions{})
	if res.Lines != 5 || res.Malformed != 0 {
		t.Fatalf("lines=%d malformed=%d", res.Lines, res.Malformed)
	}
	tr := res.Trace
	if len(tr.Requests) != 5 {
		t.Fatalf("%d requests", len(tr.Requests))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Arrivals rebased to zero, one second apart.
	for i, r := range tr.Requests {
		if r.Arrival != float64(i) {
			t.Fatalf("request %d arrival %v, want %d", i, r.Arrival, i)
		}
	}
}

func TestCLFClassification(t *testing.T) {
	res := readCLF(t, clfSample, CLFOptions{})
	wantDynamic := []bool{false, true, true, false, true}
	for i, r := range res.Trace.Requests {
		if (r.Class == Dynamic) != wantDynamic[i] {
			t.Fatalf("request %d class %v, want dynamic=%v", i, r.Class, wantDynamic[i])
		}
	}
	// The query-string request is cacheable.
	if res.Trace.Requests[2].Param == 0 {
		t.Fatal("query-string request has no cache parameter")
	}
	// The bare cgi-bin request (no query) is not.
	if res.Trace.Requests[1].Param != 0 {
		t.Fatal("query-less CGI carries a cache parameter")
	}
	// Sizes carried over; "-" means zero.
	if res.Trace.Requests[0].Size != 2326 || res.Trace.Requests[3].Size != 0 {
		t.Fatalf("sizes: %d, %d", res.Trace.Requests[0].Size, res.Trace.Requests[3].Size)
	}
}

func TestCLFScriptAndParamStability(t *testing.T) {
	res1 := readCLF(t, clfSample, CLFOptions{})
	res2 := readCLF(t, clfSample, CLFOptions{})
	for i := range res1.Trace.Requests {
		if res1.Trace.Requests[i].Script != res2.Trace.Requests[i].Script ||
			res1.Trace.Requests[i].Param != res2.Trace.Requests[i].Param {
			t.Fatal("script/param hashing unstable")
		}
	}
}

func TestCLFSortsOutOfOrderRecords(t *testing.T) {
	in := `a - - [02/Jun/1999:04:05:08 -0700] "GET /b.html HTTP/1.0" 200 100
a - - [02/Jun/1999:04:05:06 -0700] "GET /a.html HTTP/1.0" 200 100
`
	res := readCLF(t, in, CLFOptions{})
	if res.Trace.Requests[0].Arrival != 0 || res.Trace.Requests[1].Arrival != 2 {
		t.Fatalf("arrivals: %v, %v", res.Trace.Requests[0].Arrival, res.Trace.Requests[1].Arrival)
	}
}

func TestCLFMalformedHandling(t *testing.T) {
	dirty := clfSample + "garbage line without brackets\n"
	// Strict mode fails.
	if _, err := ReadCLF(strings.NewReader(dirty), CLFOptions{MuH: 1200, R: 1.0 / 40}); err == nil {
		t.Fatal("strict import accepted garbage")
	}
	// Tolerant mode counts and continues.
	res := readCLF(t, dirty, CLFOptions{SkipErrors: true})
	if res.Malformed != 1 || len(res.Trace.Requests) != 5 {
		t.Fatalf("malformed=%d requests=%d", res.Malformed, len(res.Trace.Requests))
	}
}

func TestCLFMalformedVariants(t *testing.T) {
	cases := []string{
		`a - - [bad-time] "GET / HTTP/1.0" 200 1`,
		`a - - [02/Jun/1999:04:05:06 -0700] GET-no-quotes 200 1`,
		`a - - [02/Jun/1999:04:05:06 -0700] "GET / HTTP/1.0" xyz 1`,
		`a - - [02/Jun/1999:04:05:06 -0700] "GET / HTTP/1.0" 999 1`,
		`a - - [02/Jun/1999:04:05:06 -0700] "GET / HTTP/1.0" 200 -5`,
		`a - - [02/Jun/1999:04:05:06 -0700] "GETONLY" 200 1`,
		`a - - [02/Jun/1999:04:05:06 -0700] "GET / HTTP/1.0" 200`,
	}
	for i, line := range cases {
		if _, err := ReadCLF(strings.NewReader(line+"\n"), CLFOptions{MuH: 1200, R: 1.0 / 40}); err == nil {
			t.Fatalf("case %d accepted: %s", i, line)
		}
	}
}

func TestCLFDynamicMarkers(t *testing.T) {
	in := `a - - [02/Jun/1999:04:05:06 -0700] "GET /api/v1/users HTTP/1.0" 200 100
`
	plain := readCLF(t, in, CLFOptions{})
	if plain.Trace.Requests[0].Class != Static {
		t.Fatal("unmarked /api path classified dynamic")
	}
	marked := readCLF(t, in, CLFOptions{DynamicMarkers: []string{"/api/"}})
	if marked.Trace.Requests[0].Class != Dynamic {
		t.Fatal("marker did not classify /api as dynamic")
	}
}

func TestCLFDemandCalibration(t *testing.T) {
	// Build a large synthetic log and verify the demand means.
	var b strings.Builder
	for i := 0; i < 4000; i++ {
		sec := i % 50
		min := i / 50 % 60
		kind := "/x.html"
		if i%2 == 1 {
			kind = "/cgi-bin/run"
		}
		b.WriteString("h - - [02/Jun/1999:04:")
		b.WriteString(pad2(min))
		b.WriteString(":")
		b.WriteString(pad2(sec))
		b.WriteString(` -0700] "GET ` + kind + ` HTTP/1.0" 200 1000` + "\n")
	}
	res := readCLF(t, b.String(), CLFOptions{})
	c := Characterize(res.Trace)
	wantH, wantC := 1.0/1200, 40.0/1200
	if c.MeanDemandH < 0.7*wantH || c.MeanDemandH > 1.3*wantH {
		t.Fatalf("static demand mean %v, want ~%v", c.MeanDemandH, wantH)
	}
	if c.MeanDemandC < 0.7*wantC || c.MeanDemandC > 1.3*wantC {
		t.Fatalf("dynamic demand mean %v, want ~%v", c.MeanDemandC, wantC)
	}
}

func pad2(n int) string {
	if n < 10 {
		return "0" + string(rune('0'+n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}

func TestCLFOptionValidation(t *testing.T) {
	if _, err := ReadCLF(strings.NewReader(""), CLFOptions{MuH: 0, R: 0.1}); err == nil {
		t.Fatal("MuH=0 accepted")
	}
	if _, err := ReadCLF(strings.NewReader(""), CLFOptions{MuH: 100, R: 0}); err == nil {
		t.Fatal("R=0 accepted")
	}
}
