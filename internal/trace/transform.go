package trace

// Trace transformation utilities: combining logs from multiple front
// ends, filtering classes, and rate statistics — the plumbing a site
// needs when feeding its own history (several CLF files, one per
// server) into the simulator.

import (
	"fmt"
	"sort"
)

// Merge interleaves several traces by arrival time into one. Inputs are
// not modified. The merged trace keeps absolute arrival times (callers
// rebase with Rebase if desired) and renumbers IDs.
func Merge(name string, traces ...*Trace) *Trace {
	out := &Trace{Name: name}
	total := 0
	for _, t := range traces {
		total += len(t.Requests)
	}
	out.Requests = make([]Request, 0, total)
	for _, t := range traces {
		out.Requests = append(out.Requests, t.Requests...)
	}
	sort.SliceStable(out.Requests, func(i, j int) bool {
		return out.Requests[i].Arrival < out.Requests[j].Arrival
	})
	for i := range out.Requests {
		out.Requests[i].ID = int64(i)
	}
	return out
}

// Rebase shifts arrivals so the first request arrives at zero.
func Rebase(t *Trace) *Trace {
	out := &Trace{Name: t.Name, Requests: make([]Request, len(t.Requests))}
	copy(out.Requests, t.Requests)
	if len(out.Requests) == 0 {
		return out
	}
	base := out.Requests[0].Arrival
	for i := range out.Requests {
		out.Requests[i].Arrival -= base
	}
	return out
}

// FilterClass keeps only requests of the given class.
func FilterClass(t *Trace, class Class) *Trace {
	out := &Trace{Name: t.Name}
	for _, r := range t.Requests {
		if r.Class == class {
			out.Requests = append(out.Requests, r)
		}
	}
	for i := range out.Requests {
		out.Requests[i].ID = int64(i)
	}
	return out
}

// Filter keeps requests satisfying keep.
func Filter(t *Trace, keep func(Request) bool) *Trace {
	out := &Trace{Name: t.Name}
	for _, r := range t.Requests {
		if keep(r) {
			out.Requests = append(out.Requests, r)
		}
	}
	for i := range out.Requests {
		out.Requests[i].ID = int64(i)
	}
	return out
}

// RateWindows returns the arrival rate in consecutive windows of the
// given width — the quick way to eyeball a trace's burstiness before
// replaying it.
func RateWindows(t *Trace, window float64) ([]float64, error) {
	if window <= 0 {
		return nil, fmt.Errorf("trace: window %v must be positive", window)
	}
	if len(t.Requests) == 0 {
		return nil, nil
	}
	base := t.Requests[0].Arrival
	end := t.Requests[len(t.Requests)-1].Arrival
	bins := int((end-base)/window) + 1
	counts := make([]float64, bins)
	for _, r := range t.Requests {
		idx := int((r.Arrival - base) / window)
		if idx >= bins {
			idx = bins - 1
		}
		counts[idx]++
	}
	for i := range counts {
		counts[i] /= window
	}
	return counts, nil
}

// PeakRate returns the maximum windowed arrival rate.
func PeakRate(t *Trace, window float64) (float64, error) {
	rates, err := RateWindows(t, window)
	if err != nil {
		return 0, err
	}
	peak := 0.0
	for _, r := range rates {
		if r > peak {
			peak = r
		}
	}
	return peak, nil
}
