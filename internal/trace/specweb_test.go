package trace

import (
	"testing"

	"msweb/internal/rng"
)

func TestFileSetHas40Files(t *testing.T) {
	fs := NewSPECWebFileSet()
	if len(fs.Files) != 40 {
		t.Fatalf("fileset has %d files, want 40", len(fs.Files))
	}
	perClass := map[int]int{}
	for _, f := range fs.Files {
		perClass[f.Class]++
		if f.Size <= 0 {
			t.Fatalf("file %d has size %d", f.ID, f.Size)
		}
	}
	for class := 0; class < 4; class++ {
		if perClass[class] != 10 {
			t.Fatalf("class %d has %d files, want 10", class, perClass[class])
		}
	}
}

func TestFileSetSizeRanges(t *testing.T) {
	fs := NewSPECWebFileSet()
	ranges := [][2]int64{
		{102, 1024},           // ~0.1–0.9 KB
		{1020, 10240},         // ~1–9 KB
		{10200, 102400},       // ~10–90 KB
		{102000, 1024 * 1024}, // ~100–900 KB
	}
	for _, f := range fs.Files {
		lo, hi := ranges[f.Class][0], ranges[f.Class][1]
		if f.Size < lo || f.Size > hi {
			t.Fatalf("class %d file size %d outside [%d, %d]", f.Class, f.Size, lo, hi)
		}
	}
}

func TestPickFollowsClassWeights(t *testing.T) {
	fs := NewSPECWebFileSet()
	s := rng.New(5)
	counts := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[fs.Pick(s).Class]++
	}
	want := []float64{0.35, 0.50, 0.14, 0.01}
	for class, w := range want {
		got := float64(counts[class]) / n
		if got < w-0.02 || got > w+0.02 {
			t.Fatalf("class %d picked with frequency %.3f, want %.2f", class, got, w)
		}
	}
}

func TestClosest(t *testing.T) {
	fs := NewSPECWebFileSet()
	cases := []struct {
		want int64
	}{
		{1}, {102}, {500}, {5000}, {51200}, {800000}, {5 << 20},
	}
	for _, c := range cases {
		f := fs.Closest(c.want)
		// No other file may be strictly closer.
		best := absInt64(f.Size - c.want)
		for _, g := range fs.Files {
			if absInt64(g.Size-c.want) < best {
				t.Fatalf("Closest(%d) = %d but %d is closer", c.want, f.Size, g.Size)
			}
		}
	}
}

func TestClosestExactMatch(t *testing.T) {
	fs := NewSPECWebFileSet()
	for _, f := range fs.Files {
		if got := fs.Closest(f.Size); got.Size != f.Size {
			t.Fatalf("Closest(%d) = %d", f.Size, got.Size)
		}
	}
}

func TestMeanSize(t *testing.T) {
	fs := NewSPECWebFileSet()
	m := fs.MeanSize()
	// Class means: ~510B·0.35 + ~5.1KB·0.50 + ~51KB·0.14 + ~510KB·0.01
	// ≈ 0.18 + 2.6 + 7.1 + 5.2 ≈ 15 KB.
	if m < 8_000 || m > 25_000 {
		t.Fatalf("MeanSize = %.0f bytes, want ~15KB", m)
	}
}
