// Package trace models Web request traces: the request records driven
// through the simulator and the live cluster, the SPECweb96-like fileset
// that replaces static file fetches, and synthetic generators matched to
// the published characteristics of the traces the paper replays (UCB home
// IP, KSU online library, ADL digital library; DEC appears in Table 1
// only).
//
// The paper itself cannot replay its logs literally — CGI URLs are
// scrambled or reference proprietary backends — so it substitutes
// synthetic work: a WebSTONE CPU-spinning script for UCB, WebGlimpse
// index search (≈90% CPU) for KSU, and a replicated ADL catalog (≈90%
// I/O) for ADL, with all file fetches replaced by the 40 representative
// SPECweb96 files. The generators here synthesize traces with exactly
// those class mixes, size statistics and CPU/I-O weights, which is the
// full information content the paper extracts from the original logs.
package trace

import (
	"fmt"
	"math"
)

// Class distinguishes the two request types of the paper.
type Class int

const (
	// Static requests are plain file fetches, cheap and I/O-light.
	Static Class = iota
	// Dynamic requests invoke CGI-style content generation and carry
	// the bulk of CPU and disk demand.
	Dynamic
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Request is one trace record.
type Request struct {
	// ID is the record's position in the trace, starting at 0.
	ID int64
	// Arrival is the request's arrival time in seconds since trace start.
	Arrival float64
	// Class is Static or Dynamic.
	Class Class
	// Size is the response size in bytes (the fetched file for statics,
	// the generated document for dynamics).
	Size int64
	// Demand is the service demand in seconds: the time the request
	// needs on an otherwise idle node. The stretch factor divides
	// response times by this value.
	Demand float64
	// CPUWeight is w ∈ [0, 1], the fraction of the demand attributable
	// to CPU (the rest is disk I/O). The RSRC formula consumes the
	// per-script off-line sample of this value.
	CPUWeight float64
	// MemPages is the resident working-set size of the handling process
	// in pages; the simulated VM manager allocates and touches them.
	MemPages int
	// Script identifies the CGI program for dynamic requests (statics
	// use 0). Off-line w sampling is performed per script.
	Script int
	// Param identifies the CGI invocation's parameters: two dynamic
	// requests with the same (Script, Param) produce the same response
	// and are cacheable (the Swala extension). 0 marks unique or
	// uncacheable invocations.
	Param int64
}

// Trace is an ordered sequence of requests plus provenance.
type Trace struct {
	Name     string
	Requests []Request
}

// Duration returns the arrival span of the trace in seconds.
func (t *Trace) Duration() float64 {
	if len(t.Requests) == 0 {
		return 0
	}
	return t.Requests[len(t.Requests)-1].Arrival - t.Requests[0].Arrival
}

// Validate checks structural invariants: non-decreasing arrivals,
// non-negative demands and sizes, weights within [0, 1].
func (t *Trace) Validate() error {
	prev := math.Inf(-1)
	for i, r := range t.Requests {
		switch {
		case math.IsNaN(r.Arrival) || math.IsInf(r.Arrival, 0):
			return fmt.Errorf("trace %s: request %d has non-finite arrival %v", t.Name, i, r.Arrival)
		case math.IsNaN(r.Demand) || math.IsInf(r.Demand, 0):
			return fmt.Errorf("trace %s: request %d has non-finite demand %v", t.Name, i, r.Demand)
		case math.IsNaN(r.CPUWeight):
			return fmt.Errorf("trace %s: request %d has NaN CPU weight", t.Name, i)
		case r.Arrival < prev:
			return fmt.Errorf("trace %s: request %d arrives at %v before predecessor %v", t.Name, i, r.Arrival, prev)
		case r.Demand < 0:
			return fmt.Errorf("trace %s: request %d has negative demand %v", t.Name, i, r.Demand)
		case r.Size < 0:
			return fmt.Errorf("trace %s: request %d has negative size %d", t.Name, i, r.Size)
		case r.CPUWeight < 0 || r.CPUWeight > 1:
			return fmt.Errorf("trace %s: request %d has CPU weight %v outside [0,1]", t.Name, i, r.CPUWeight)
		case r.MemPages < 0:
			return fmt.Errorf("trace %s: request %d has negative memory requirement", t.Name, i)
		case r.Param < 0:
			return fmt.Errorf("trace %s: request %d has negative cache parameter", t.Name, i)
		case r.Class != Static && r.Class != Dynamic:
			return fmt.Errorf("trace %s: request %d has unknown class %d", t.Name, i, r.Class)
		}
		prev = r.Arrival
	}
	return nil
}

// Characteristics are the Table 1 statistics of a trace.
type Characteristics struct {
	Name         string
	Requests     int
	PctCGI       float64 // percentage of dynamic content requests
	MeanInterval float64 // mean inter-arrival time, seconds
	MeanHTMLSize float64 // mean static response size, bytes
	MeanCGISize  float64 // mean dynamic response size, bytes
	ArrivalRatio float64 // a = λ_c/λ_h
	MeanDemandH  float64 // mean static service demand, seconds
	MeanDemandC  float64 // mean dynamic service demand, seconds
	DemandRatio  float64 // r = mean static demand / mean dynamic demand... see R()
}

// Characterize computes the Table 1 statistics for a trace.
func Characterize(t *Trace) Characteristics {
	c := Characteristics{Name: t.Name, Requests: len(t.Requests)}
	if len(t.Requests) == 0 {
		return c
	}
	var nCGI int
	var htmlBytes, cgiBytes float64
	var demandH, demandC float64
	for _, r := range t.Requests {
		if r.Class == Dynamic {
			nCGI++
			cgiBytes += float64(r.Size)
			demandC += r.Demand
		} else {
			htmlBytes += float64(r.Size)
			demandH += r.Demand
		}
	}
	nStatic := len(t.Requests) - nCGI
	c.PctCGI = 100 * float64(nCGI) / float64(len(t.Requests))
	if n := len(t.Requests); n > 1 {
		c.MeanInterval = t.Duration() / float64(n-1)
	}
	if nStatic > 0 {
		c.MeanHTMLSize = htmlBytes / float64(nStatic)
		c.MeanDemandH = demandH / float64(nStatic)
		c.ArrivalRatio = float64(nCGI) / float64(nStatic)
	} else {
		c.ArrivalRatio = math.Inf(1)
	}
	if nCGI > 0 {
		c.MeanCGISize = cgiBytes / float64(nCGI)
		c.MeanDemandC = demandC / float64(nCGI)
	}
	if c.MeanDemandC > 0 && c.MeanDemandH > 0 {
		c.DemandRatio = c.MeanDemandH / c.MeanDemandC
	}
	return c
}

// R returns the service-rate ratio r = μ_c/μ_h implied by the measured
// mean demands (service rate is the reciprocal of demand).
func (c Characteristics) R() float64 { return c.DemandRatio }

// ScaleIntervals returns a copy of the trace with all inter-arrival
// intervals divided by factor (> 1 accelerates the replay), the paper's
// mechanism for turning a lightly-loaded historical log into a heavy load
// on the tested cluster. Demands and all other fields are unchanged.
func ScaleIntervals(t *Trace, factor float64) *Trace {
	if factor <= 0 {
		factor = 1
	}
	out := &Trace{Name: t.Name, Requests: make([]Request, len(t.Requests))}
	copy(out.Requests, t.Requests)
	if len(out.Requests) == 0 {
		return out
	}
	base := out.Requests[0].Arrival
	for i := range out.Requests {
		out.Requests[i].Arrival = base + (out.Requests[i].Arrival-base)/factor
	}
	return out
}

// Slice returns the sub-trace with arrivals in [from, to), rebased so the
// first retained arrival keeps its absolute time. Used to extract
// replayable segments as the paper does with the UCB log.
func Slice(t *Trace, from, to float64) *Trace {
	out := &Trace{Name: t.Name}
	for _, r := range t.Requests {
		if r.Arrival >= from && r.Arrival < to {
			out.Requests = append(out.Requests, r)
		}
	}
	return out
}
