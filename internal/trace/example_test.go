package trace_test

import (
	"fmt"
	"strings"

	"msweb/internal/trace"
)

// Generate a KSU-like workload and inspect its Table 1 statistics.
func ExampleGenerate() {
	tr, err := trace.Generate(trace.GenConfig{
		Profile:  trace.KSU,
		Lambda:   500,
		Requests: 20000,
		MuH:      1200,
		R:        1.0 / 40,
		Seed:     42,
	})
	if err != nil {
		panic(err)
	}
	c := trace.Characterize(tr)
	fmt.Printf("requests: %d\n", c.Requests)
	fmt.Printf("%%CGI close to profile: %v\n", c.PctCGI > 27 && c.PctCGI < 31)
	fmt.Printf("implied r close to 1/40: %v\n", c.R() > 0.02 && c.R() < 0.03)
	// Output:
	// requests: 20000
	// %CGI close to profile: true
	// implied r close to 1/40: true
}

// Import a real access log in Common Log Format.
func ExampleReadCLF() {
	log := `web1 - - [02/Jun/1999:04:05:06 -0700] "GET /index.html HTTP/1.0" 200 2326
web1 - - [02/Jun/1999:04:05:08 -0700] "GET /cgi-bin/search?q=maps HTTP/1.0" 200 8730
`
	res, err := trace.ReadCLF(strings.NewReader(log), trace.CLFOptions{
		MuH: 1200, R: 1.0 / 40,
	})
	if err != nil {
		panic(err)
	}
	for _, r := range res.Trace.Requests {
		fmt.Printf("t=%.0fs %s %d bytes cacheable=%v\n",
			r.Arrival, r.Class, r.Size, r.Param != 0)
	}
	// Output:
	// t=0s static 2326 bytes cacheable=false
	// t=2s dynamic 8730 bytes cacheable=true
}

// The SPECweb96 fileset maps any requested size to its closest file.
func ExampleSPECWebFileSet_Closest() {
	fs := trace.NewSPECWebFileSet()
	for _, want := range []int64{500, 5000, 1 << 20} {
		f := fs.Closest(want)
		fmt.Printf("want %7d → class %d file of %d bytes\n", want, f.Class, f.Size)
	}
	// Output:
	// want     500 → class 0 file of 510 bytes
	// want    5000 → class 1 file of 5100 bytes
	// want 1048576 → class 3 file of 918000 bytes
}
