// Package sim implements the discrete-event simulation engine underlying
// the cluster simulator.
//
// The engine is a classic event-heap design: callbacks are scheduled at
// absolute virtual times and executed in non-decreasing time order. Events
// scheduled for the same instant run in FIFO order of scheduling, which
// keeps simulations deterministic. Virtual time is a float64 measured in
// seconds; it has no relation to wall-clock time, so a simulated 4-hour
// trace replay can run in milliseconds.
//
// Allocation discipline. Steady-state simulations schedule and fire
// millions of events, so the engine recycles Event structs through a
// free list: an event returns to the pool the moment it fires (or is
// skipped after cancellation) and the next Schedule reuses it. The
// consequence is an ownership rule — an *Event handle is valid only
// until the event fires or its cancellation is reclaimed; keeping a
// handle beyond that and calling Cancel on it is a logic error (the
// struct may already represent a different scheduled event). Code that
// must cancel "whatever I armed last, unless it already fired" should
// remember the event's Seq and compare before canceling, as Ticker does.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time = float64

// Event is a scheduled callback. Cancel marks the event so the engine
// skips it when its time arrives; the engine never reorders the heap on
// cancellation, so Cancel is O(1).
type Event struct {
	eng      *Engine
	at       Time
	seq      uint64
	index    int
	canceled bool
	fn       func()
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Seq returns the engine-unique scheduling sequence number. Sequence
// numbers are never reused, so a caller that retains a handle past the
// event's firing can detect recycling by comparing the Seq it observed
// at scheduling time with the handle's current value.
func (e *Event) Seq() uint64 { return e.seq }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() {
	if e.canceled || e.index < 0 {
		return
	}
	e.canceled = true
	e.eng.liveCanceled++
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine drives a single simulation. It is not safe for concurrent use;
// one simulation runs on one goroutine (separate experiment configurations
// parallelize by running independent Engines, as internal/parallel does).
type Engine struct {
	now     Time
	seq     uint64
	heap    eventHeap
	fired   uint64
	stopped bool
	// free is the Event free list; fired and reclaimed-canceled events
	// are recycled here so steady-state scheduling allocates nothing.
	free []*Event
	// liveCanceled counts canceled events still sitting in the heap, so
	// Pending can report live events without scanning.
	liveCanceled int
	// probe, when non-nil, observes every fired event (see SetProbe).
	probe func(at Time)
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far, a useful progress
// and cost metric for large simulations.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of live (non-canceled) events still queued.
func (e *Engine) Pending() int { return len(e.heap) - e.liveCanceled }

// Schedule runs fn at absolute virtual time at. Scheduling in the past
// (before Now) panics: it always indicates a logic error in the model.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("sim: schedule at non-finite time %v", at))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.canceled = false
	} else {
		ev = &Event{eng: e}
	}
	ev.at, ev.seq, ev.fn = at, e.seq, fn
	e.seq++
	heap.Push(&e.heap, ev)
	return ev
}

// After runs fn after delay d from the current time. Negative delays are
// clamped to zero.
func (e *Engine) After(d float64, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// SetProbe installs an observability hook invoked with each fired
// event's timestamp immediately before its callback runs — the
// engine-level tap for event-rate meters and virtual-time progress
// gauges. A nil fn removes the hook. The disabled path costs one
// branch per event and no allocations (pinned by
// BenchmarkEngineScheduleFire); the hook itself must not allocate if
// that property is to survive with probing enabled.
func (e *Engine) SetProbe(fn func(at Time)) { e.probe = fn }

// release returns a popped event to the free list. The callback
// reference is dropped immediately so captured state is collectable even
// while the struct waits in the pool.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// Step executes the single next event. It returns false when the queue is
// empty. Canceled events are skipped without advancing the clock beyond
// their timestamps.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := heap.Pop(&e.heap).(*Event)
		if ev.canceled {
			e.liveCanceled--
			e.release(ev)
			continue
		}
		e.now = ev.at
		e.fired++
		if e.probe != nil {
			e.probe(ev.at)
		}
		fn := ev.fn
		// Recycle before running so a callback that immediately
		// re-schedules (a ticker re-arm) reuses this very struct.
		e.release(ev)
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline (if the simulation has not already passed it). Events
// scheduled beyond the deadline remain queued; canceled events are
// compacted out of the queue on return, so a run that stops early does
// not strand them until the next full drain.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	e.compact()
}

// compact rebuilds the heap without canceled events, reclaiming them
// into the free list. O(n); called where laziness would otherwise strand
// canceled events indefinitely.
func (e *Engine) compact() {
	if e.liveCanceled == 0 {
		return
	}
	live := e.heap[:0]
	for _, ev := range e.heap {
		if ev.canceled {
			ev.index = -1
			e.liveCanceled--
			e.release(ev)
		} else {
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(e.heap); i++ {
		e.heap[i] = nil
	}
	e.heap = live
	for i, ev := range e.heap {
		ev.index = i
	}
	heap.Init(&e.heap)
}

// peek returns the timestamp of the next non-canceled event.
func (e *Engine) peek() (Time, bool) {
	for len(e.heap) > 0 {
		if e.heap[0].canceled {
			ev := heap.Pop(&e.heap).(*Event)
			e.liveCanceled--
			e.release(ev)
			continue
		}
		return e.heap[0].at, true
	}
	return 0, false
}

// NextEventTime exposes peek for callers that interleave simulation with
// external control, e.g. the experiment harness's warm-up logic.
func (e *Engine) NextEventTime() (Time, bool) { return e.peek() }

// Ticker invokes fn every interval until canceled, a convenience for
// periodic activities such as load-information refresh and the BSD
// priority recomputation. The re-arm path allocates nothing in steady
// state: the tick wrapper closure is built once, and the engine's free
// list hands the fired event straight back to the re-arming Schedule.
type Ticker struct {
	engine   *Engine
	interval float64
	fn       func()
	tick     func() // persistent wrapper, allocated once in Every
	next     *Event
	nextSeq  uint64 // Seq of next at arm time, guards against recycling
	stopped  bool
}

// Every schedules fn to run every interval seconds, first at now+interval.
// It panics if interval is not positive: a zero-period ticker would wedge
// virtual time.
func (e *Engine) Every(interval float64, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	t.tick = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.next = t.engine.After(t.interval, t.tick)
	t.nextSeq = t.next.seq
}

// Stop cancels future ticks. The Seq comparison makes Stop safe to call
// at any point: if the armed event already fired and its struct was
// recycled for an unrelated event, the stale handle is left alone.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.next != nil && t.next.seq == t.nextSeq {
		t.next.Cancel()
	}
	t.next = nil
}
