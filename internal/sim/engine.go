// Package sim implements the discrete-event simulation engine underlying
// the cluster simulator.
//
// The engine is a classic event-heap design: callbacks are scheduled at
// absolute virtual times and executed in non-decreasing time order. Events
// scheduled for the same instant run in FIFO order of scheduling, which
// keeps simulations deterministic. Virtual time is a float64 measured in
// seconds; it has no relation to wall-clock time, so a simulated 4-hour
// trace replay can run in milliseconds.
//
// Allocation discipline. Steady-state simulations schedule and fire
// millions of events, so the engine recycles Event structs through a
// free list: an event returns to the pool the moment it fires (or is
// skipped after cancellation) and the next Schedule reuses it. The
// consequence is an ownership rule — an *Event handle is valid only
// until the event fires or its cancellation is reclaimed; keeping a
// handle beyond that and calling Cancel on it is a logic error (the
// struct may already represent a different scheduled event). Code that
// must cancel "whatever I armed last, unless it already fired" should
// remember the event's Seq and compare before canceling, as Ticker does.
//
// Schedule and After take a plain func() and therefore usually cost one
// closure allocation at the call site. Hot callers that fire the same
// handler millions of times (a node's CPU-burst completion, say) use the
// typed form instead: ScheduleCall/AfterCall store a pre-bound CallFunc
// plus its (pointer, float64) payload directly in the recycled Event
// struct, so steady-state scheduling is allocation-free end-to-end. The
// payload is owned by the engine only until the event fires; release
// clears it so pooled Events never pin caller state.
//
// The timer queue is a hand-rolled 4-ary min-heap ordered by (at, seq).
// Compared with container/heap's binary heap it needs no interface
// boxing, no virtual Less/Swap calls, and ~half the levels: children of
// node i live at 4i+1..4i+4, so sift-down touches one cache line of
// child pointers per level. The (at, seq) key is a total order (seq is
// unique), so pop order — and therefore simulation output — is exactly
// the FIFO-at-equal-time order the binary heap produced.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time = float64

// CallFunc is the typed-event callback form: a handler bound once by the
// caller (typically a method value stored in a struct field) invoked
// with the payload that was stored in the Event at scheduling time.
type CallFunc func(arg any, f64 float64)

// Event is a scheduled callback. Cancel marks the event so the engine
// skips it when its time arrives; the engine never reorders the heap on
// cancellation, so Cancel is O(1).
type Event struct {
	eng      *Engine
	at       Time
	seq      uint64
	index    int
	canceled bool
	// Exactly one of fn / call is set: fn for the closure form
	// (Schedule/After), call+arg+f64 for the typed allocation-free form
	// (ScheduleCall/AfterCall).
	fn   func()
	call CallFunc
	arg  any
	f64  float64
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Seq returns the engine-unique scheduling sequence number. Sequence
// numbers are never reused, so a caller that retains a handle past the
// event's firing can detect recycling by comparing the Seq it observed
// at scheduling time with the handle's current value.
func (e *Event) Seq() uint64 { return e.seq }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() {
	if e.canceled || e.index < 0 {
		return
	}
	e.canceled = true
	e.eng.liveCanceled++
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// before reports whether e fires strictly before o: earlier time first,
// FIFO scheduling order (seq) at equal times.
func (e *Event) before(o *Event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Engine drives a single simulation. It is not safe for concurrent use;
// one simulation runs on one goroutine (separate experiment configurations
// parallelize by running independent Engines, as internal/parallel does).
type Engine struct {
	now     Time
	seq     uint64
	heap    []*Event // 4-ary min-heap ordered by (at, seq)
	fired   uint64
	stopped bool
	// free is the Event free list; fired and reclaimed-canceled events
	// are recycled here so steady-state scheduling allocates nothing.
	free []*Event
	// liveCanceled counts canceled events still sitting in the heap, so
	// Pending can report live events without scanning.
	liveCanceled int
	// probe, when non-nil, observes every fired event (see SetProbe).
	probe func(at Time)
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far, a useful progress
// and cost metric for large simulations.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of live (non-canceled) events still queued.
func (e *Engine) Pending() int { return len(e.heap) - e.liveCanceled }

// schedule pops a recycled Event (or allocates the pool's next one),
// stamps it with (at, seq) and pushes it onto the timer heap. The caller
// fills in the callback fields; the heap never reads them.
func (e *Engine) schedule(at Time) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("sim: schedule at non-finite time %v", at))
	}
	if len(e.free) == 0 {
		e.refill()
	}
	n := len(e.free)
	ev := e.free[n-1]
	e.free[n-1] = nil
	e.free = e.free[:n-1]
	ev.canceled = false
	ev.at, ev.seq = at, e.seq
	e.seq++
	e.push(ev)
	return ev
}

// Schedule runs fn at absolute virtual time at. Scheduling in the past
// (before Now) panics: it always indicates a logic error in the model.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	ev := e.schedule(at)
	ev.fn = fn
	return ev
}

// After runs fn after delay d from the current time. Negative delays are
// clamped to zero.
func (e *Engine) After(d float64, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// ScheduleCall runs call(arg, f64) at absolute virtual time at. The
// payload is stored in the recycled Event struct, so a caller holding a
// pre-bound CallFunc schedules with zero allocations; converting a
// pointer-typed arg to any does not allocate. The engine drops its
// references to call and arg the moment the event fires or is reclaimed.
func (e *Engine) ScheduleCall(at Time, call CallFunc, arg any, f64 float64) *Event {
	ev := e.schedule(at)
	ev.call, ev.arg, ev.f64 = call, arg, f64
	return ev
}

// AfterCall runs call(arg, f64) after delay d from the current time,
// clamping negative delays to zero — the typed, allocation-free
// counterpart of After.
func (e *Engine) AfterCall(d float64, call CallFunc, arg any, f64 float64) *Event {
	if d < 0 {
		d = 0
	}
	return e.ScheduleCall(e.now+d, call, arg, f64)
}

// eventSlab is the pool refill batch. Events are carved from slabs of
// this many structs, so a cold engine scheduling a whole trace's worth
// of arrivals up front costs one allocation per slab rather than one
// per event. Slab memory is retained by the free list for the engine's
// lifetime — exactly the lifetime the recycled events already had.
const eventSlab = 64

// refill grows the free list by one slab of events.
func (e *Engine) refill() {
	slab := make([]Event, eventSlab)
	if cap(e.free) < len(e.free)+eventSlab {
		grown := make([]*Event, len(e.free), len(e.free)+eventSlab)
		copy(grown, e.free)
		e.free = grown
	}
	for i := range slab {
		slab[i].eng = e
		e.free = append(e.free, &slab[i])
	}
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// SetProbe installs an observability hook invoked with each fired
// event's timestamp immediately before its callback runs — the
// engine-level tap for event-rate meters and virtual-time progress
// gauges. A nil fn removes the hook. The disabled path costs one
// branch per event and no allocations (pinned by
// BenchmarkEngineScheduleFire); the hook itself must not allocate if
// that property is to survive with probing enabled.
func (e *Engine) SetProbe(fn func(at Time)) { e.probe = fn }

// release returns a popped event to the free list. Callback and payload
// references are dropped immediately so captured state is collectable
// even while the struct waits in the pool.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.call = nil
	ev.arg = nil
	e.free = append(e.free, ev)
}

// Step executes the single next event. It returns false when the queue is
// empty. Canceled events are skipped without advancing the clock beyond
// their timestamps.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := e.pop()
		if ev.canceled {
			e.liveCanceled--
			e.release(ev)
			continue
		}
		e.now = ev.at
		e.fired++
		if e.probe != nil {
			e.probe(ev.at)
		}
		fn, call, arg, f64 := ev.fn, ev.call, ev.arg, ev.f64
		// Recycle before running so a callback that immediately
		// re-schedules (a ticker re-arm) reuses this very struct.
		e.release(ev)
		if fn != nil {
			fn()
		} else {
			call(arg, f64)
		}
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline (if the simulation has not already passed it). Events
// scheduled beyond the deadline remain queued; canceled events are
// compacted out of the queue on return, so a run that stops early does
// not strand them until the next full drain.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	e.compact()
}

// ---- 4-ary timer heap ------------------------------------------------

// heapArity is the heap branching factor. Four children per node halves
// the tree depth of a binary heap; the extra comparisons per level stay
// within the same cache line of the []*Event backing array.
const heapArity = 4

// push appends ev and sifts it up to its (at, seq) position.
func (e *Engine) push(ev *Event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		parent := h[p]
		if !ev.before(parent) {
			break
		}
		h[i] = parent
		parent.index = i
		i = p
	}
	h[i] = ev
	ev.index = i
	e.heap = h
}

// pop removes and returns the minimum event, re-sifting the displaced
// last element down.
func (e *Engine) pop() *Event {
	h := e.heap
	top := h[0]
	top.index = -1
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.heap = h[:n]
	if n > 0 {
		e.siftDown(last, 0)
	}
	return top
}

// siftDown places ev into the subtree rooted at i, moving smaller
// children up as it descends. ev is carried in a register and written
// exactly once, instead of swapping at every level.
func (e *Engine) siftDown(ev *Event, i int) {
	h := e.heap
	n := len(h)
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		m := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for j := first + 1; j < end; j++ {
			if h[j].before(h[m]) {
				m = j
			}
		}
		child := h[m]
		if !child.before(ev) {
			break
		}
		h[i] = child
		child.index = i
		i = m
	}
	h[i] = ev
	ev.index = i
}

// compact rebuilds the heap without canceled events, reclaiming them
// into the free list. O(n); called where laziness would otherwise strand
// canceled events indefinitely.
func (e *Engine) compact() {
	if e.liveCanceled == 0 {
		return
	}
	live := e.heap[:0]
	for _, ev := range e.heap {
		if ev.canceled {
			ev.index = -1
			e.liveCanceled--
			e.release(ev)
		} else {
			ev.index = len(live)
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(e.heap); i++ {
		e.heap[i] = nil
	}
	e.heap = live
	// Bottom-up heapify restores (at, seq) order after the filter.
	if n := len(live); n > 1 {
		for i := (n - 2) / heapArity; i >= 0; i-- {
			e.siftDown(e.heap[i], i)
		}
	}
}

// peek returns the timestamp of the next non-canceled event.
func (e *Engine) peek() (Time, bool) {
	for len(e.heap) > 0 {
		if e.heap[0].canceled {
			ev := e.pop()
			e.liveCanceled--
			e.release(ev)
			continue
		}
		return e.heap[0].at, true
	}
	return 0, false
}

// NextEventTime exposes peek for callers that interleave simulation with
// external control, e.g. the experiment harness's warm-up logic.
func (e *Engine) NextEventTime() (Time, bool) { return e.peek() }

// Ticker invokes fn every interval until canceled, a convenience for
// periodic activities such as load-information refresh and the BSD
// priority recomputation. The re-arm path allocates nothing in steady
// state: the tick wrapper closure is built once, and the engine's free
// list hands the fired event straight back to the re-arming Schedule.
type Ticker struct {
	engine   *Engine
	interval float64
	fn       func()
	tick     func() // persistent wrapper, allocated once in Every
	next     *Event
	nextSeq  uint64 // Seq of next at arm time, guards against recycling
	stopped  bool
}

// Every schedules fn to run every interval seconds, first at now+interval.
// It panics if interval is not positive: a zero-period ticker would wedge
// virtual time.
func (e *Engine) Every(interval float64, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	t.tick = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.next = t.engine.After(t.interval, t.tick)
	t.nextSeq = t.next.seq
}

// Stop cancels future ticks. The Seq comparison makes Stop safe to call
// at any point: if the armed event already fired and its struct was
// recycled for an unrelated event, the stale handle is left alone.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.next != nil && t.next.seq == t.nextSeq {
		t.next.Cancel()
	}
	t.next = nil
}
