package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []float64
	times := []float64{5, 1, 3, 2, 4, 0.5}
	for _, at := range times {
		at := at
		e.Schedule(at, func() { order = append(order, at) })
	}
	e.Run()
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != len(times) {
		t.Fatalf("fired %d events, want %d", len(order), len(times))
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1.0, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine()
	e.Schedule(2.5, func() {
		if e.Now() != 2.5 {
			t.Errorf("Now() = %v inside event at 2.5", e.Now())
		}
	})
	e.Run()
	if e.Now() != 2.5 {
		t.Fatalf("final Now() = %v, want 2.5", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(1, func() {})
	})
	e.Run()
}

func TestScheduleNaNPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("scheduling at NaN did not panic")
		}
	}()
	e.Schedule(nan(), func() {})
}

func nan() float64 {
	zero := 0.0
	return zero / zero
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestAfterClampsNegativeDelay(t *testing.T) {
	e := NewEngine()
	e.Schedule(3, func() {
		ev := e.After(-1, func() {})
		if ev.At() != 3 {
			t.Errorf("After(-1) scheduled at %v, want 3", ev.At())
		}
	})
	e.Run()
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(0.1, recurse)
		}
	}
	e.After(0.1, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("nested chain fired %d times, want 100", depth)
	}
	if got, want := e.Now(), 10.0; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("final time %v, want %v", got, want)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("RunUntil(3) fired %d events, want 3", len(fired))
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %v after RunUntil(3)", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("second RunUntil fired total %d, want 5", len(fired))
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %v, want deadline 10", e.Now())
	}
}

func TestRunUntilAdvancesEmptyClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(7)
	if e.Now() != 7 {
		t.Fatalf("Now() = %v, want 7", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(float64(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt run: %d events fired", count)
	}
	e.Run()
	if count != 10 {
		t.Fatalf("resumed Run fired total %d, want 10", count)
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(float64(i), func() {})
	}
	ev := e.Schedule(10, func() {})
	ev.Cancel()
	e.Run()
	if e.Fired() != 5 {
		t.Fatalf("Fired() = %d, want 5 (canceled events do not count)", e.Fired())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []float64
	tk := e.Every(1.5, func() { ticks = append(ticks, e.Now()) })
	e.Schedule(7, func() { tk.Stop() })
	e.Run()
	want := []float64{1.5, 3.0, 4.5, 6.0}
	if len(ticks) != len(want) {
		t.Fatalf("ticker fired %d times: %v", len(ticks), ticks)
	}
	for i := range want {
		if diff := ticks[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestTickerZeroIntervalPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("zero-interval ticker did not panic")
		}
	}()
	e.Every(0, func() {})
}

func TestNextEventTime(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("NextEventTime on empty engine returned ok")
	}
	ev := e.Schedule(4, func() {})
	e.Schedule(6, func() {})
	if at, ok := e.NextEventTime(); !ok || at != 4 {
		t.Fatalf("NextEventTime = %v, %v; want 4, true", at, ok)
	}
	ev.Cancel()
	if at, ok := e.NextEventTime(); !ok || at != 6 {
		t.Fatalf("NextEventTime after cancel = %v, %v; want 6, true", at, ok)
	}
}

// Property: for any set of scheduling times, execution order is sorted.
func TestOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		var fired []float64
		for _, r := range raw {
			at := float64(r) / 100
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		e.Run()
		return sort.Float64sAreSorted(fired) && len(fired) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
