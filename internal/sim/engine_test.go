package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []float64
	times := []float64{5, 1, 3, 2, 4, 0.5}
	for _, at := range times {
		at := at
		e.Schedule(at, func() { order = append(order, at) })
	}
	e.Run()
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != len(times) {
		t.Fatalf("fired %d events, want %d", len(order), len(times))
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1.0, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine()
	e.Schedule(2.5, func() {
		if e.Now() != 2.5 {
			t.Errorf("Now() = %v inside event at 2.5", e.Now())
		}
	})
	e.Run()
	if e.Now() != 2.5 {
		t.Fatalf("final Now() = %v, want 2.5", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(1, func() {})
	})
	e.Run()
}

func TestScheduleNaNPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("scheduling at NaN did not panic")
		}
	}()
	e.Schedule(nan(), func() {})
}

func nan() float64 {
	zero := 0.0
	return zero / zero
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestAfterClampsNegativeDelay(t *testing.T) {
	e := NewEngine()
	e.Schedule(3, func() {
		ev := e.After(-1, func() {})
		if ev.At() != 3 {
			t.Errorf("After(-1) scheduled at %v, want 3", ev.At())
		}
	})
	e.Run()
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(0.1, recurse)
		}
	}
	e.After(0.1, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("nested chain fired %d times, want 100", depth)
	}
	if got, want := e.Now(), 10.0; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("final time %v, want %v", got, want)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("RunUntil(3) fired %d events, want 3", len(fired))
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %v after RunUntil(3)", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("second RunUntil fired total %d, want 5", len(fired))
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %v, want deadline 10", e.Now())
	}
}

func TestRunUntilAdvancesEmptyClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(7)
	if e.Now() != 7 {
		t.Fatalf("Now() = %v, want 7", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(float64(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt run: %d events fired", count)
	}
	e.Run()
	if count != 10 {
		t.Fatalf("resumed Run fired total %d, want 10", count)
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(float64(i), func() {})
	}
	ev := e.Schedule(10, func() {})
	ev.Cancel()
	e.Run()
	if e.Fired() != 5 {
		t.Fatalf("Fired() = %d, want 5 (canceled events do not count)", e.Fired())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []float64
	tk := e.Every(1.5, func() { ticks = append(ticks, e.Now()) })
	e.Schedule(7, func() { tk.Stop() })
	e.Run()
	want := []float64{1.5, 3.0, 4.5, 6.0}
	if len(ticks) != len(want) {
		t.Fatalf("ticker fired %d times: %v", len(ticks), ticks)
	}
	for i := range want {
		if diff := ticks[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestTickerZeroIntervalPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("zero-interval ticker did not panic")
		}
	}()
	e.Every(0, func() {})
}

func TestNextEventTime(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("NextEventTime on empty engine returned ok")
	}
	ev := e.Schedule(4, func() {})
	e.Schedule(6, func() {})
	if at, ok := e.NextEventTime(); !ok || at != 4 {
		t.Fatalf("NextEventTime = %v, %v; want 4, true", at, ok)
	}
	ev.Cancel()
	if at, ok := e.NextEventTime(); !ok || at != 6 {
		t.Fatalf("NextEventTime after cancel = %v, %v; want 6, true", at, ok)
	}
}

// Property: for any set of scheduling times, execution order is sorted.
func TestOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		var fired []float64
		for _, r := range raw {
			at := float64(r) / 100
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		e.Run()
		return sort.Float64sAreSorted(fired) && len(fired) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// ---- Free-list / allocation-discipline tests -------------------------

func TestEventRecycledAfterFire(t *testing.T) {
	e := NewEngine()
	ev1 := e.Schedule(1, func() {})
	e.Step()
	ev2 := e.Schedule(2, func() {})
	if ev1 != ev2 {
		t.Fatal("fired event was not recycled by the next Schedule")
	}
	if ev2.Canceled() {
		t.Fatal("recycled event inherited canceled state")
	}
	if ev2.At() != 2 {
		t.Fatalf("recycled event At() = %v, want 2", ev2.At())
	}
}

func TestEventRecycledAfterCancelSkip(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(1, func() { t.Error("canceled event fired") })
	ev.Cancel()
	e.Schedule(2, func() {})
	before := len(e.free)
	e.Run()
	if got := len(e.free) - before; got != 2 {
		t.Fatalf("run reclaimed %d events into the free list, want 2", got)
	}
}

func TestSteadyStateScheduleFireAllocsNothing(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm the pool.
	e.After(1, fn)
	e.Step()
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(1, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+fire allocates %.1f objects/op, want 0", allocs)
	}
}

func TestTickerSteadyStateAllocsNothing(t *testing.T) {
	e := NewEngine()
	ticks := 0
	e.Every(1, func() { ticks++ })
	e.Step() // first tick warms the pool and the wrapper closure
	allocs := testing.AllocsPerRun(1000, func() {
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state tick allocates %.1f objects/op, want 0", allocs)
	}
	if ticks < 1000 {
		t.Fatalf("ticker only ticked %d times", ticks)
	}
}

func TestPendingExcludesCanceled(t *testing.T) {
	e := NewEngine()
	var evs []*Event
	for i := 1; i <= 5; i++ {
		evs = append(evs, e.Schedule(float64(i), func() {}))
	}
	evs[1].Cancel()
	evs[3].Cancel()
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending() = %d with 2 of 5 canceled, want 3", got)
	}
	evs[1].Cancel() // double-cancel must not double-count
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending() = %d after double cancel, want 3", got)
	}
}

func TestRunUntilCompactsCanceled(t *testing.T) {
	e := NewEngine()
	// Live events beyond the deadline, canceled events interleaved.
	var canceled []*Event
	for i := 0; i < 10; i++ {
		ev := e.Schedule(float64(10+i), func() {})
		if i%2 == 0 {
			canceled = append(canceled, ev)
		}
	}
	for _, ev := range canceled {
		ev.Cancel()
	}
	freeBefore := len(e.free)
	e.RunUntil(5) // stops early: no event is due
	if got := e.Pending(); got != 5 {
		t.Fatalf("Pending() = %d after early RunUntil, want 5", got)
	}
	if got := len(e.heap); got != 5 {
		t.Fatalf("heap still holds %d entries after compaction, want 5", got)
	}
	if e.liveCanceled != 0 {
		t.Fatalf("liveCanceled = %d after compaction, want 0", e.liveCanceled)
	}
	if got := len(e.free) - freeBefore; got != 5 {
		t.Fatalf("compaction reclaimed %d events into the free list, want 5", got)
	}
	// The surviving events must still fire in order.
	var fired []float64
	for e.Step() {
		fired = append(fired, e.Now())
	}
	if len(fired) != 5 || !sort.Float64sAreSorted(fired) {
		t.Fatalf("post-compaction events fired wrong: %v", fired)
	}
}

func TestCancelAfterFireIsNoOp(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(1, func() {})
	e.Step()
	ev.Cancel() // fired, not yet reused: must not poison the pool
	fired := false
	e.Schedule(2, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("event scheduled after stale Cancel did not fire")
	}
}

func TestTickerStopGuardsAgainstRecycledEvent(t *testing.T) {
	// The hazard: a tick fires (its Event returns to the pool), the
	// callback schedules an unrelated event (reusing that struct), then
	// stops the ticker. Without the Seq guard, Stop would cancel the
	// unrelated event through the stale handle.
	e := NewEngine()
	victimFired := false
	var tk *Ticker
	tk = e.Every(1, func() {
		e.After(0.5, func() { victimFired = true })
		tk.Stop()
	})
	e.Run()
	if !victimFired {
		t.Fatal("ticker Stop canceled an unrelated recycled event")
	}
}

func TestSeqNeverReused(t *testing.T) {
	e := NewEngine()
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		ev := e.After(1, func() {})
		if seen[ev.Seq()] {
			t.Fatalf("seq %d reused", ev.Seq())
		}
		seen[ev.Seq()] = true
		e.Step()
	}
}

// ---- Typed-call events and the 4-ary heap ----------------------------

func TestScheduleCallDeliversPayload(t *testing.T) {
	e := NewEngine()
	type payload struct{ hits int }
	p := &payload{}
	var gotF64 float64
	call := func(arg any, f64 float64) {
		arg.(*payload).hits++
		gotF64 = f64
	}
	e.ScheduleCall(1, call, p, 2.5)
	e.AfterCall(2, call, p, 7.25)
	e.Run()
	if p.hits != 2 {
		t.Fatalf("typed handler fired %d times, want 2", p.hits)
	}
	if gotF64 != 7.25 {
		t.Fatalf("typed handler got f64=%v, want 7.25", gotF64)
	}
	if e.Now() != 2 {
		t.Fatalf("Now() = %v after AfterCall(2) from t=0, want 2", e.Now())
	}
}

func TestScheduleCallInterleavesFIFOWithClosures(t *testing.T) {
	e := NewEngine()
	var order []int
	rec := func(arg any, _ float64) { order = append(order, arg.(int)) }
	e.Schedule(1, func() { order = append(order, 0) })
	e.ScheduleCall(1, rec, 1, 0)
	e.Schedule(1, func() { order = append(order, 2) })
	e.ScheduleCall(1, rec, 3, 0)
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("mixed-form same-time events not FIFO: %v", order)
		}
	}
}

func TestScheduleCallSteadyStateAllocsNothing(t *testing.T) {
	e := NewEngine()
	type state struct{ fired int }
	s := &state{}
	var call CallFunc
	call = func(arg any, f64 float64) {
		st := arg.(*state)
		st.fired++
		if st.fired < 2100 {
			e.AfterCall(1, call, st, f64)
		}
	}
	e.AfterCall(1, call, s, 0.5)
	e.Step() // warm the pool
	allocs := testing.AllocsPerRun(1000, func() {
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state typed schedule+fire allocates %.1f objects/op, want 0", allocs)
	}
}

func TestReleaseClearsCallPayload(t *testing.T) {
	e := NewEngine()
	p := &struct{ x int }{}
	e.ScheduleCall(1, func(any, float64) {}, p, 1)
	e.Step()
	if len(e.free) == 0 {
		t.Fatal("fired event was not reclaimed into the free list")
	}
	ev := e.free[len(e.free)-1]
	if ev.call != nil || ev.arg != nil || ev.fn != nil {
		t.Fatalf("pooled event retains payload: call set=%v arg=%v fn set=%v",
			ev.call != nil, ev.arg, ev.fn != nil)
	}
	// A canceled typed event must also shed its payload when reclaimed.
	victim := e.ScheduleCall(2, func(any, float64) {}, p, 1)
	victim.Cancel()
	e.Run()
	for i, ev := range e.free {
		if ev != nil && (ev.call != nil || ev.arg != nil) {
			t.Fatalf("pooled event %d retains canceled payload", i)
		}
	}
}

func TestCancelScheduleCall(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.ScheduleCall(1, func(any, float64) { fired = true }, nil, 0)
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled typed event fired")
	}
}

// TestHeapStressOrder drives the 4-ary heap through a large interleaved
// push/cancel/pop workload and checks the total (at, seq) pop order.
func TestHeapStressOrder(t *testing.T) {
	e := NewEngine()
	const n = 5000
	var fired []float64
	var handles []*Event
	x := uint64(12345)
	next := func() uint64 { // xorshift: deterministic pseudo-random times
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for i := 0; i < n; i++ {
		at := float64(next()%1000) / 10
		handles = append(handles, e.Schedule(at, func() { fired = append(fired, at) }))
	}
	canceled := 0
	for i := 0; i < n; i += 7 {
		if !handles[i].Canceled() {
			handles[i].Cancel()
			canceled++
		}
	}
	e.Run()
	if len(fired) != n-canceled {
		t.Fatalf("fired %d events, want %d", len(fired), n-canceled)
	}
	if !sort.Float64sAreSorted(fired) {
		t.Fatal("heap stress: events fired out of order")
	}
}

// TestCompactPreservesOrderLarge pins the bottom-up heapify in compact:
// after an early RunUntil reclaims interleaved cancellations, the
// surviving events must still pop in exact (at, seq) order.
func TestCompactPreservesOrderLarge(t *testing.T) {
	e := NewEngine()
	const n = 1000
	var handles []*Event
	for i := 0; i < n; i++ {
		at := float64((i*37)%100) + 10
		handles = append(handles, e.Schedule(at, func() {}))
	}
	for i := 0; i < n; i += 3 {
		handles[i].Cancel()
	}
	e.RunUntil(5) // nothing due: pure compaction
	if e.liveCanceled != 0 {
		t.Fatalf("liveCanceled = %d after compact", e.liveCanceled)
	}
	var fired []float64
	e.SetProbe(func(at Time) { fired = append(fired, at) })
	e.Run()
	if !sort.Float64sAreSorted(fired) {
		t.Fatal("post-compaction pop order broken")
	}
	if want := n - (n+2)/3; len(fired) != want {
		t.Fatalf("fired %d events after compaction, want %d", len(fired), want)
	}
}

func TestProbeObservesFiredEvents(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.SetProbe(func(at Time) { times = append(times, at) })
	e.After(2, func() {})
	victim := e.After(1, func() {})
	victim.Cancel()
	e.After(3, func() {})
	e.Run()
	// Canceled events are skipped, not fired, so the probe must not see
	// them; fired events arrive in time order.
	if len(times) != 2 || times[0] != 2 || times[1] != 3 {
		t.Fatalf("probe saw %v, want [2 3]", times)
	}
	e.SetProbe(nil)
	e.After(4, func() {})
	e.Run()
	if len(times) != 2 {
		t.Fatal("probe fired after removal")
	}
}
