package chaos

import (
	"msweb/internal/httpcluster"
)

// Harness is a live loopback cluster whose master→slave links run
// through fault-injection proxies. Masters talk to slaves only via the
// proxies, so a schedule event makes a slave unreachable (or slow) from
// every master at once while the client↔master side stays reliable —
// the same single-point-of-failure shape as the simulator's
// AvailabilityEvent flipping one node's bit.
type Harness struct {
	Cluster *httpcluster.Cluster
	// Proxies maps slave node id → its fault proxy.
	Proxies map[int]*Proxy
}

// Launch starts cfg's cluster with a proxy interposed in front of every
// slave. cfg is otherwise interpreted exactly as httpcluster.Start.
func Launch(cfg httpcluster.Config) (*Harness, error) {
	c, err := httpcluster.Start(cfg)
	if err != nil {
		return nil, err
	}
	h := &Harness{Cluster: c, Proxies: map[int]*Proxy{}}
	for _, s := range c.Slaves {
		p, err := NewProxy(s.URL)
		if err != nil {
			h.Shutdown()
			return nil, err
		}
		h.Proxies[s.ID] = p
		// Point every master's view of this slave at the proxy. Load
		// polling and /exec dispatch both route through it, so a fault
		// is visible to breakers on both paths.
		for _, m := range c.Masters {
			m.SetNodeURL(s.ID, p.URL)
		}
	}
	return h, nil
}

// SlaveIDs returns the faultable node ids (those with proxies).
func (h *Harness) SlaveIDs() []int {
	ids := make([]int, 0, len(h.Proxies))
	for _, s := range h.Cluster.Slaves {
		ids = append(ids, s.ID)
	}
	return ids
}

// MasterURLs returns the client-facing base URLs in master order.
func (h *Harness) MasterURLs() []string { return h.Cluster.MasterURLs() }

// Shutdown stops the proxies, then the cluster.
func (h *Harness) Shutdown() {
	for _, p := range h.Proxies {
		p.Close()
	}
	h.Cluster.Shutdown()
}
