package chaos

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"msweb/internal/cluster"
	"msweb/internal/core"
	"msweb/internal/httpcluster"
)

// TestProxyModes exercises each fault mode against a real HTTP backend.
func TestProxyModes(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "pong") //nolint:errcheck
	}))
	defer backend.Close()
	p, err := NewProxy(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Fresh connection per request so mode flips are felt immediately.
	client := &http.Client{
		Timeout:   2 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	get := func() (string, error) {
		resp, err := client.Get(p.URL)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close() //nolint:errcheck
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}

	if body, err := get(); err != nil || body != "pong" {
		t.Fatalf("ModeOK: got %q, %v", body, err)
	}
	p.SetMode(ModeDown, 0)
	if _, err := get(); err == nil {
		t.Fatal("ModeDown: request unexpectedly succeeded")
	}
	p.SetMode(ModeLatency, 80*time.Millisecond)
	start := time.Now()
	if body, err := get(); err != nil || body != "pong" {
		t.Fatalf("ModeLatency: got %q, %v", body, err)
	}
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("ModeLatency: round trip %v, want >= 80ms", d)
	}
	p.SetMode(ModeSlowLoris, 5*time.Millisecond)
	if body, err := get(); err != nil || body != "pong" {
		t.Fatalf("ModeSlowLoris: got %q, %v", body, err)
	}
	p.SetMode(ModePaused, 0)
	shortClient := &http.Client{
		Timeout:   300 * time.Millisecond,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	if _, err := shortClient.Get(p.URL); err == nil {
		t.Fatal("ModePaused: request unexpectedly completed")
	}
	p.SetMode(ModeOK, 0)
	if body, err := get(); err != nil || body != "pong" {
		t.Fatalf("recovery: got %q, %v", body, err)
	}
}

// TestRandomReproducible pins the seed contract: the same seed yields
// byte-identical schedules, different seeds differ, and every node ends
// healthy.
func TestRandomReproducible(t *testing.T) {
	cfg := RandomConfig{Nodes: []int{2, 3, 4, 5}, Length: 3 * time.Second}
	a, b := Random(42, cfg), Random(42, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if c := Random(43, cfg); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	last := map[int]Mode{}
	cycling := map[int]int{}
	for _, e := range a {
		last[e.Node] = e.Mode
		if e.Mode != ModeOK {
			cycling[e.Node]++
		}
	}
	for node, mode := range last {
		if mode != ModeOK {
			t.Fatalf("node %d ends schedule in %v, want ok", node, mode)
		}
	}
	if len(cycling) < 2 {
		t.Fatalf("schedule faults only %d nodes, want >= 2", len(cycling))
	}
}

func TestFromAvailability(t *testing.T) {
	events := []cluster.AvailabilityEvent{
		{Node: 3, At: 2.0, Available: false},
		{Node: 3, At: 5.0, Available: true},
		{Node: 4, At: 1.0, Available: false},
	}
	s := FromAvailability(events, 0.1)
	want := Schedule{
		{Node: 4, At: 100 * time.Millisecond, Mode: ModeDown},
		{Node: 3, At: 200 * time.Millisecond, Mode: ModeDown},
		{Node: 3, At: 500 * time.Millisecond, Mode: ModeOK},
	}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("got %+v, want %+v", s, want)
	}
}

// TestChaosInvariants is the resilience acceptance test: a 6-node
// 2-master live cluster whose four slaves cycle through randomized
// faults every few hundred milliseconds while closed-loop clients keep
// requesting. Every accepted request must reach exactly one terminal
// outcome (2xx served, 503 shed, 502 exhausted), the non-shed error
// rate must stay under an explicit budget, and the harness must not
// leak goroutines or file descriptors.
func TestChaosInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes a few seconds")
	}
	goroutinesBefore := runtime.NumGoroutine()
	fdsBefore := countFDs(t)

	cfg := httpcluster.Config{
		Nodes:       6,
		Masters:     2,
		TimeScale:   1,
		LoadRefresh: 25 * time.Millisecond,
		PolicyTick:  100 * time.Millisecond,
		MakePolicy:  func(id int) core.Policy { return core.NewMS(nil, int64(id)+1) },
		Resilience: httpcluster.Resilience{
			Breaker:         httpcluster.BreakerConfig{OpenFor: 200 * time.Millisecond},
			DispatchTimeout: 2 * time.Second,
			RetryBudget:     3,
			RetryBackoff:    2 * time.Millisecond,
			MaxQueue:        256,
		},
	}
	h, err := Launch(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const seed = 42
	sched := Random(seed, RandomConfig{
		Nodes:  h.SlaveIDs(),
		Length: 2500 * time.Millisecond,
	})
	faulted := map[int]bool{}
	for _, e := range sched {
		if e.Mode != ModeOK {
			faulted[e.Node] = true
		}
	}
	if len(faulted) < 2 {
		t.Fatalf("schedule faults only %d nodes, want >= 2", len(faulted))
	}

	ctx, cancel := context.WithCancel(context.Background())
	var schedDone sync.WaitGroup
	schedDone.Add(1)
	go func() {
		defer schedDone.Done()
		Run(ctx, time.Now(), sched, h.Proxies)
	}()

	// Closed-loop clients: each hammers one master with a static/dynamic
	// mix until the schedule window closes, classifying every response
	// into exactly one terminal bucket.
	var ok, shed, exhausted, unexpected atomic.Int64
	deadline := time.Now().Add(2500 * time.Millisecond)
	urls := h.MasterURLs()
	var clients sync.WaitGroup
	for c := 0; c < 8; c++ {
		clients.Add(1)
		go func(c int) {
			defer clients.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for i := 0; time.Now().Before(deadline); i++ {
				url := urls[c%len(urls)] + "/req?class=d&demand=0.004&w=0.9&script=1"
				if i%4 == 0 {
					url = urls[c%len(urls)] + "/req?class=s&demand=0.001&w=0.3&script=0"
				}
				resp, err := client.Get(url)
				if err != nil {
					unexpected.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()              //nolint:errcheck
				switch {
				case resp.StatusCode >= 200 && resp.StatusCode < 300:
					ok.Add(1)
				case resp.StatusCode == http.StatusServiceUnavailable:
					shed.Add(1)
				case resp.StatusCode == http.StatusBadGateway:
					exhausted.Add(1)
				default:
					unexpected.Add(1)
				}
			}
		}(c)
	}
	clients.Wait()
	schedDone.Wait()
	cancel()

	var accepted, served, mShed, mExhausted, opens int64
	for _, m := range h.Cluster.Masters {
		accepted += m.Accepted()
		served += m.Served()
		mShed += m.Shed()
		mExhausted += m.Exhausted()
		for _, id := range h.SlaveIDs() {
			opens += m.BreakerOpens(id)
		}
	}
	total := ok.Load() + shed.Load() + exhausted.Load()
	t.Logf("client: ok=%d shed=%d exhausted=%d unexpected=%d; server: accepted=%d served=%d shed=%d exhausted=%d breaker_opens=%d",
		ok.Load(), shed.Load(), exhausted.Load(), unexpected.Load(), accepted, served, mShed, mExhausted, opens)

	if n := unexpected.Load(); n != 0 {
		t.Errorf("%d requests hit a non-terminal outcome (transport error or stray status)", n)
	}
	if ok.Load() == 0 {
		t.Error("no request succeeded during the chaos run")
	}
	// Terminal-outcome invariant: everything a master admitted reached
	// exactly one of served/shed/exhausted, and the clients saw the same
	// totals the masters counted.
	if accepted != served+mShed+mExhausted {
		t.Errorf("terminal outcomes leak: accepted=%d != served=%d + shed=%d + exhausted=%d",
			accepted, served, mShed, mExhausted)
	}
	if total != accepted {
		t.Errorf("client terminal outcomes %d != master accepted %d", total, accepted)
	}
	if ok.Load() != served || shed.Load() != mShed || exhausted.Load() != mExhausted {
		t.Errorf("client/server outcome mismatch: ok %d/%d shed %d/%d exhausted %d/%d",
			ok.Load(), served, shed.Load(), mShed, exhausted.Load(), mExhausted)
	}
	// Non-shed error budget: with local fallback and retries across
	// nodes, dropped dynamics must stay a small fraction of admissions.
	if budget := float64(accepted) / 4; float64(mExhausted) > budget {
		t.Errorf("exhausted %d exceeds error budget %g of accepted %d", mExhausted, budget, accepted)
	}

	h.Shutdown()
	checkNoLeaks(t, goroutinesBefore, fdsBefore)
}

func countFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd: %v", err)
	}
	return len(ents)
}

// checkNoLeaks polls briefly for goroutine and fd counts to return near
// their pre-test baselines (idle HTTP keepalives and timer goroutines
// need a moment to unwind).
func checkNoLeaks(t *testing.T, goroutines, fds int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		g, f := runtime.NumGoroutine(), countFDs(t)
		if g <= goroutines+5 && f <= fds+5 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("leak: goroutines %d -> %d, fds %d -> %d", goroutines, g, fds, f)
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestScheduleRunScripted drives a one-node harness through a scripted
// kill/restart and watches the master's availability view follow it.
func TestScheduleRunScripted(t *testing.T) {
	cfg := httpcluster.Config{
		Nodes:       2,
		Masters:     1,
		TimeScale:   1,
		LoadRefresh: 20 * time.Millisecond,
		PolicyTick:  100 * time.Millisecond,
		MakePolicy:  func(id int) core.Policy { return core.NewMS(nil, 1) },
		Resilience: httpcluster.Resilience{
			Breaker: httpcluster.BreakerConfig{OpenFor: 150 * time.Millisecond},
		},
	}
	h, err := Launch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown()
	m := h.Cluster.Masters[0]
	slave := h.Cluster.Slaves[0].ID

	waitState := func(want int32, what string) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for m.BreakerState(slave) != want {
			if time.Now().After(deadline) {
				t.Fatalf("breaker never reached %s state (now %d)", what, m.BreakerState(slave))
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	sched := Schedule{
		{Node: slave, At: 0, Mode: ModeDown},
		{Node: slave, At: 400 * time.Millisecond, Mode: ModeOK},
	}
	go Run(context.Background(), time.Now(), sched, h.Proxies)

	waitState(2, "open") // node killed: load polls fail, breaker opens
	waitState(0, "closed")
	if fmt.Sprint(h.Proxies[slave].Mode()) != "ok" {
		t.Fatalf("proxy left in %v", h.Proxies[slave].Mode())
	}
}
