package chaos

import (
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"msweb/internal/core"
	"msweb/internal/httpcluster"
)

// without returns ids with one id removed (order preserved).
func without(ids []int, id int) []int {
	out := make([]int, 0, len(ids))
	for _, v := range ids {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}

// TestScaleEventInvariants is the churn acceptance test for the
// epoch-versioned membership plane: a sharded 8-node cluster (3 masters)
// survives a master crash, a scale-down and a scale-back-up — three
// membership epochs, one of them a rejoin — while closed-loop clients
// keep requesting against the surviving masters. Every admitted request
// must still reach exactly one terminal outcome, the survivors must
// converge on the same final epoch, and tearing the harness down must
// not leak goroutines, file descriptors or frame connections.
func TestScaleEventInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("churn run takes a few seconds")
	}
	goroutinesBefore := runtime.NumGoroutine()
	fdsBefore := countFDs(t)

	cfg := httpcluster.Config{
		Nodes:         8,
		Masters:       3,
		Shards:        3,
		TimeScale:     1,
		Uncalibrated:  true,
		LoadRefresh:   20 * time.Millisecond,
		PolicyTick:    60 * time.Millisecond,
		GossipEvery:   30 * time.Millisecond,
		BinaryFraming: true,
		MakePolicy:    func(id int) core.Policy { return core.NewMS(nil, int64(id)+1) },
		Resilience: httpcluster.Resilience{
			Breaker:         httpcluster.BreakerConfig{OpenFor: 200 * time.Millisecond},
			DispatchTimeout: 2 * time.Second,
			RetryBudget:     3,
			RetryBackoff:    2 * time.Millisecond,
			MaxQueue:        256,
		},
	}
	c, err := httpcluster.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	m0, m1, m2 := c.Masters[0], c.Masters[1], c.Masters[2]

	// waitEpoch blocks until every listed master has adopted at least
	// the wanted epoch — the convergence bound is one gossip round past
	// the announce, so seconds of budget is generous.
	waitEpoch := func(want uint64, masters ...*httpcluster.Master) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			all := true
			for _, m := range masters {
				if m.Epoch() < want {
					all = false
				}
			}
			if all {
				return
			}
			if time.Now().After(deadline) {
				for _, m := range masters {
					t.Logf("master %d at epoch %d", m.ID, m.Epoch())
				}
				t.Fatalf("masters never converged on epoch %d", want)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Closed-loop clients hammer only the two masters that survive the
	// whole run, so every request has exactly one terminal outcome to
	// classify (the killed master's share of churn is the point of the
	// membership plane, not of the client accounting).
	var ok, shed, exhausted, unexpected atomic.Int64
	stop := make(chan struct{})
	targets := []string{m0.URL, m1.URL}
	var clients sync.WaitGroup
	for cl := 0; cl < 6; cl++ {
		clients.Add(1)
		go func(cl int) {
			defer clients.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := targets[cl%len(targets)] + "/req?class=d&demand=0.004&w=0.9&script=1"
				if i%4 == 0 {
					url = targets[cl%len(targets)] + "/req?class=s&demand=0.001&w=0.3&script=0"
				}
				resp, err := client.Get(url)
				if err != nil {
					unexpected.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()              //nolint:errcheck
				switch {
				case resp.StatusCode >= 200 && resp.StatusCode < 300:
					ok.Add(1)
				case resp.StatusCode == http.StatusServiceUnavailable:
					shed.Add(1)
				case resp.StatusCode == http.StatusBadGateway:
					exhausted.Add(1)
				default:
					unexpected.Add(1)
				}
			}
		}(cl)
	}

	// Epoch 1 — crash: master 2 dies mid-run. The survivors' gossip
	// pulls go silent, the lowest live master declares it dead and
	// announces a rebalanced map over the remaining tier.
	time.Sleep(300 * time.Millisecond)
	m2.Shutdown()
	waitEpoch(1, m0, m1)
	if mb := m0.Membership(); len(mb.Masters) != 2 {
		t.Fatalf("epoch 1 masters = %v, want the two survivors", mb.Masters)
	}

	// Epoch 2 — scale-down: demote master 1 to the slave tier (what the
	// autoscaler announces when measured load stops justifying the
	// master). Its clients keep getting served — a demoted master falls
	// back to self-service.
	mb := m0.Membership()
	mb.Masters = without(mb.Masters, m1.ID)
	mb.Slaves = append(mb.Slaves, m1.ID)
	mb.Epoch++
	if err := m0.AnnounceMembership(mb); err != nil {
		t.Fatalf("demote announce: %v", err)
	}
	waitEpoch(2, m0, m1)

	// Epoch 3 — scale-back-up: the demoted master rejoins the tier. Its
	// gossip-miss history must not poison the rejoin.
	time.Sleep(200 * time.Millisecond)
	mb = m0.Membership()
	mb.Masters = append(mb.Masters, m1.ID)
	mb.Slaves = without(mb.Slaves, m1.ID)
	mb.Epoch++
	if err := m0.AnnounceMembership(mb); err != nil {
		t.Fatalf("re-promote announce: %v", err)
	}
	waitEpoch(3, m0, m1)

	// Let traffic settle on the final topology, then stop the clients.
	time.Sleep(300 * time.Millisecond)
	close(stop)
	clients.Wait()

	var accepted, served, mShed, mExhausted int64
	for _, m := range c.Masters {
		accepted += m.Accepted()
		served += m.Served()
		mShed += m.Shed()
		mExhausted += m.Exhausted()
	}
	total := ok.Load() + shed.Load() + exhausted.Load()
	t.Logf("client: ok=%d shed=%d exhausted=%d unexpected=%d; server: accepted=%d served=%d shed=%d exhausted=%d; epochs: m0=%d m1=%d; rebalancing sheds: m0=%d m1=%d",
		ok.Load(), shed.Load(), exhausted.Load(), unexpected.Load(),
		accepted, served, mShed, mExhausted, m0.Epoch(), m1.Epoch(),
		m0.ShedRebalancing(), m1.ShedRebalancing())

	if n := unexpected.Load(); n != 0 {
		t.Errorf("%d requests hit a non-terminal outcome across the scale events", n)
	}
	if ok.Load() == 0 {
		t.Error("no request succeeded during the churn run")
	}
	// Terminal-outcome invariant across three epoch changes: nothing a
	// master admitted was double-counted or lost in a handoff.
	if accepted != served+mShed+mExhausted {
		t.Errorf("terminal outcomes leak: accepted=%d != served=%d + shed=%d + exhausted=%d",
			accepted, served, mShed, mExhausted)
	}
	if total != accepted {
		t.Errorf("client terminal outcomes %d != master accepted %d", total, accepted)
	}
	if ok.Load() != served || shed.Load() != mShed || exhausted.Load() != mExhausted {
		t.Errorf("client/server outcome mismatch: ok %d/%d shed %d/%d exhausted %d/%d",
			ok.Load(), served, shed.Load(), mShed, exhausted.Load(), mExhausted)
	}
	// Convergence: both survivors operate the same final map.
	if e0, e1 := m0.Epoch(), m1.Epoch(); e0 != e1 || e0 < 3 {
		t.Errorf("epochs diverged: m0=%d m1=%d, want equal and >= 3", e0, e1)
	}
	if fin := m0.Membership(); len(fin.Masters) != 2 || fin.Masters[0] != m0.ID || fin.Masters[1] != m1.ID {
		t.Errorf("final master tier %v, want [%d %d]", fin.Masters, m0.ID, m1.ID)
	}

	// Scale-down leak checks: the whole harness (including the master
	// killed mid-run and the demote/re-promote cycle) must unwind to the
	// baseline — goroutines, fds, and every node's hijacked frame conns.
	c.Shutdown()
	for _, m := range c.Masters {
		if n := m.FrameConns(); n != 0 {
			t.Errorf("master %d still tracks %d frame conns after shutdown", m.ID, n)
		}
	}
	for _, s := range c.Slaves {
		if n := s.FrameConns(); n != 0 {
			t.Errorf("slave %d still tracks %d frame conns after shutdown", s.ID, n)
		}
	}
	checkNoLeaks(t, goroutinesBefore, fdsBefore)
}
