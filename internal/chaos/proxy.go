// Package chaos drives a live msweb cluster through scripted and
// randomized fault schedules. It is the live-cluster counterpart of the
// simulator's availability events (cluster.AvailabilityEvent): where the
// simulator flips a node's availability bit, chaos interposes a real TCP
// proxy on the master→slave link and makes the failure physical — dead
// listeners, stalled connections, injected latency, slow-loris trickle —
// so the data plane's breakers, retries and shedding are exercised the
// way a switch or kernel would exercise them.
package chaos

import (
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is a proxy's current fault injection mode.
type Mode int32

const (
	// ModeOK passes traffic through untouched.
	ModeOK Mode = iota
	// ModeDown refuses new connections and kills established ones — a
	// node crash or reclaimed non-dedicated machine.
	ModeDown
	// ModePaused accepts connections but stalls all traffic — a wedged
	// process or a partitioned switch port.
	ModePaused
	// ModeLatency delays each client→server read burst by the configured
	// amount — a congested or degraded link.
	ModeLatency
	// ModeSlowLoris trickles server→client bytes one at a time — the
	// classic slow-consumer attack shape, from the node's side.
	ModeSlowLoris
)

func (m Mode) String() string {
	switch m {
	case ModeOK:
		return "ok"
	case ModeDown:
		return "down"
	case ModePaused:
		return "paused"
	case ModeLatency:
		return "latency"
	case ModeSlowLoris:
		return "slowloris"
	default:
		return "mode?"
	}
}

// Proxy is a TCP fault-injection proxy in front of one node. Mode
// changes apply to in-flight connections (pumps poll the mode between
// read bursts), and ModeDown additionally kills tracked connections so
// keepalive pools feel the crash immediately.
type Proxy struct {
	// URL is the proxy's client-facing base URL (http://host:port).
	URL    string
	target string
	lis    net.Listener
	mode   atomic.Int32
	delay  atomic.Int64 // ns, for ModeLatency / ModeSlowLoris pacing
	done   chan struct{}
	wg     sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// NewProxy starts a proxy forwarding to targetURL (an http:// base URL
// or a bare host:port) in ModeOK.
func NewProxy(targetURL string) (*Proxy, error) {
	target := strings.TrimPrefix(targetURL, "http://")
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		URL:    "http://" + lis.Addr().String(),
		target: target,
		lis:    lis,
		done:   make(chan struct{}),
		conns:  map[net.Conn]struct{}{},
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// SetMode switches the fault mode; delay paces ModeLatency (per read
// burst) and ModeSlowLoris (per byte). ModeDown kills live connections.
func (p *Proxy) SetMode(m Mode, delay time.Duration) {
	p.delay.Store(int64(delay))
	p.mode.Store(int32(m))
	if m == ModeDown {
		p.killConns()
	}
}

// Mode returns the current fault mode.
func (p *Proxy) Mode() Mode { return Mode(p.mode.Load()) }

// Close stops the proxy and severs every connection.
func (p *Proxy) Close() {
	select {
	case <-p.done:
	default:
		close(p.done)
	}
	p.lis.Close() //nolint:errcheck
	p.killConns()
	p.wg.Wait()
}

func (p *Proxy) killConns() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close() //nolint:errcheck
	}
	p.mu.Unlock()
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.lis.Accept()
		if err != nil {
			return // listener closed
		}
		if p.Mode() == ModeDown {
			conn.Close() //nolint:errcheck
			continue
		}
		up, err := net.DialTimeout("tcp", p.target, 2*time.Second)
		if err != nil {
			conn.Close() //nolint:errcheck
			continue
		}
		p.track(conn)
		p.track(up)
		p.wg.Add(2)
		go p.pump(up, conn, true)
		go p.pump(conn, up, false)
	}
}

// sleep waits d unless the proxy is closing.
func (p *Proxy) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-p.done:
		return false
	case <-t.C:
		return true
	}
}

// pump copies one direction of a proxied connection, applying the
// current fault mode per read burst. The read deadline doubles as the
// poll interval, so a mode change (or Close) takes effect within ~100 ms
// even on an idle keepalive connection.
func (p *Proxy) pump(dst, src net.Conn, toServer bool) {
	defer p.wg.Done()
	defer p.untrack(src)
	defer p.untrack(dst)
	defer src.Close() //nolint:errcheck
	defer dst.Close() //nolint:errcheck
	buf := make([]byte, 32<<10)
	for {
		select {
		case <-p.done:
			return
		default:
		}
		for p.Mode() == ModePaused {
			if !p.sleep(20 * time.Millisecond) {
				return
			}
		}
		src.SetReadDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
		n, err := src.Read(buf)
		if n > 0 {
			delay := time.Duration(p.delay.Load())
			switch p.Mode() {
			case ModeLatency:
				if toServer && !p.sleep(delay) {
					return
				}
			case ModeSlowLoris:
				if !toServer {
					if delay <= 0 {
						delay = 2 * time.Millisecond
					}
					wrote := true
					for i := 0; i < n && wrote; i++ {
						if _, werr := dst.Write(buf[i : i+1]); werr != nil {
							return
						}
						wrote = p.sleep(delay)
					}
					if !wrote {
						return
					}
					continue
				}
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
	}
}
