package chaos

import (
	"context"
	"sort"
	"time"

	"msweb/internal/cluster"
	"msweb/internal/rng"
)

// Event is one scheduled fault transition: at offset At from the run's
// start, the proxy in front of Node switches to Mode (Delay paces
// ModeLatency/ModeSlowLoris).
type Event struct {
	Node  int
	At    time.Duration
	Mode  Mode
	Delay time.Duration
}

// Schedule is a fault script, ordered by At.
type Schedule []Event

// FromAvailability converts the simulator's availability script into a
// live fault schedule: Available=false becomes ModeDown, true ModeOK.
// Simulated times (virtual seconds) are scaled by timeScale into wall
// durations, mirroring how the live node scales service demands.
func FromAvailability(events []cluster.AvailabilityEvent, timeScale float64) Schedule {
	s := make(Schedule, 0, len(events))
	for _, e := range events {
		mode := ModeOK
		if !e.Available {
			mode = ModeDown
		}
		s = append(s, Event{
			Node: e.Node,
			At:   time.Duration(e.At * timeScale * float64(time.Second)),
			Mode: mode,
		})
	}
	sort.SliceStable(s, func(i, j int) bool { return s[i].At < s[j].At })
	return s
}

// RandomConfig shapes a randomized fault schedule.
type RandomConfig struct {
	// Nodes are the node ids to fault (each needs a proxy at Run time).
	Nodes []int
	// Length bounds the schedule; every node is restored to ModeOK at
	// Length.
	Length time.Duration
	// MeanUp and MeanDown are the means of the exponential up/down
	// period lengths (defaults 300 ms / 150 ms).
	MeanUp, MeanDown time.Duration
	// Delay paces injected latency and slow-loris trickle (default 5 ms).
	Delay time.Duration
	// KillsOnly restricts fault modes to ModeDown; otherwise each fault
	// picks uniformly among down/paused/latency/slow-loris.
	KillsOnly bool
}

func (c RandomConfig) withDefaults() RandomConfig {
	if c.MeanUp <= 0 {
		c.MeanUp = 300 * time.Millisecond
	}
	if c.MeanDown <= 0 {
		c.MeanDown = 150 * time.Millisecond
	}
	if c.Delay <= 0 {
		c.Delay = 5 * time.Millisecond
	}
	return c
}

// Random builds a seed-reproducible schedule: each node alternates
// exponentially-distributed healthy and faulty periods, drawn from its
// own forked stream so adding a node never perturbs the others'
// timelines. Every node ends the schedule back in ModeOK.
func Random(seed int64, cfg RandomConfig) Schedule {
	cfg = cfg.withDefaults()
	root := rng.New(seed)
	var s Schedule
	faults := []Mode{ModeDown, ModePaused, ModeLatency, ModeSlowLoris}
	for _, node := range cfg.Nodes {
		st := root.Fork(int64(node))
		at := time.Duration(st.Exp(float64(cfg.MeanUp)))
		for at < cfg.Length {
			mode := ModeDown
			if !cfg.KillsOnly {
				mode = faults[st.Intn(len(faults))]
			}
			s = append(s, Event{Node: node, At: at, Mode: mode, Delay: cfg.Delay})
			at += time.Duration(st.Exp(float64(cfg.MeanDown)))
			if at >= cfg.Length {
				break
			}
			s = append(s, Event{Node: node, At: at, Mode: ModeOK})
			at += time.Duration(st.Exp(float64(cfg.MeanUp)))
		}
		s = append(s, Event{Node: node, At: cfg.Length, Mode: ModeOK})
	}
	sort.SliceStable(s, func(i, j int) bool { return s[i].At < s[j].At })
	return s
}

// Run replays the schedule against the given proxies in real time,
// starting from start. Events for nodes without a proxy are skipped.
// Run returns early if ctx is cancelled; otherwise it returns after the
// last event has been applied.
func Run(ctx context.Context, start time.Time, s Schedule, proxies map[int]*Proxy) {
	for _, e := range s {
		if d := time.Until(start.Add(e.At)); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case <-t.C:
			}
		}
		if p := proxies[e.Node]; p != nil {
			p.SetMode(e.Mode, e.Delay)
		}
	}
}
