// Package policy is the string-keyed registry behind the unified policy
// flag surface: every front-end (msbench, mscluster, loadgen) resolves
// -policy presets and -admission-policy/-routing-policy/-routing-scorers
// pipeline specs through the same tables, so a policy name means the
// same thing everywhere and the tournament driver can enumerate the
// whole field. The registry builds core.Policy values (pipelines or the
// classic baselines); both execution planes consume them unchanged.
package policy

import (
	"fmt"
	"strconv"
	"strings"

	"msweb/internal/core"
)

// Builder constructs one policy instance. wt is the off-line sampling
// table (nil when the caller has none) and seed drives every tie-break
// RNG, so equal seeds reproduce equal decision streams.
type Builder func(wt core.WTable, seed int64) core.Policy

// Preset is a named, fully-assembled policy in the registry.
type Preset struct {
	// Name is the registry key (-policy NAME, tournament row label).
	Name string
	// Desc is the one-line help text.
	Desc string
	// Competitor marks policies that enter the default tournament field.
	Competitor bool
	// Build constructs an instance.
	Build Builder
}

// presets is the registry, in help/tournament display order.
var presets = []Preset{
	{"ms", "the paper's full M/S scheduler: θ₂ admission + min-RSRC routing", true,
		func(wt core.WTable, seed int64) core.Policy { return core.NewMS(wt, seed) }},
	{"ms-ns", "M/S without off-line w sampling (w ≡ 0.5)", false,
		func(wt core.WTable, seed int64) core.Policy {
			return core.NewMS(wt, seed, core.WithoutSampling(), core.WithName("M/S-ns"))
		}},
	{"ms-nr", "M/S without the θ₂ reservation cap (estimators still observable)", true,
		func(wt core.WTable, seed int64) core.Policy {
			return core.NewMS(wt, seed, core.WithoutReservation(), core.WithName("M/S-nr"))
		}},
	{"msprime", "fixed M/S′ split: dynamics uniformly over slaves, no load awareness", false,
		func(wt core.WTable, seed int64) core.Policy { return core.NewMSPrime(seed) }},
	{"rr", "round-robin over slaves, statics local", false,
		func(wt core.WTable, seed int64) core.Policy { return core.NewRoundRobin() }},
	{"leastloaded", "shortest combined queue over slaves, statics local", false,
		func(wt core.WTable, seed int64) core.Policy { return core.NewLeastLoaded(seed) }},
	{"flat", "no redirection: every request runs where it arrived", false,
		func(wt core.WTable, seed int64) core.Policy { return core.NewFlat() }},
	{"jsq2", "power-of-2-choices: sample 2 nodes, join the shorter queue", true,
		func(wt core.WTable, seed int64) core.Policy {
			return core.NewPipeline(core.PipelineConfig{
				Name: "JSQ(2)", Admission: core.NewOpenAdmission(),
				Routing: core.NewJSQRouting(2, seed), WTable: wt,
			})
		}},
	{"jsq3", "power-of-3-choices: sample 3 nodes, join the shorter queue", false,
		func(wt core.WTable, seed int64) core.Policy {
			return core.NewPipeline(core.PipelineConfig{
				Name: "JSQ(3)", Admission: core.NewOpenAdmission(),
				Routing: core.NewJSQRouting(3, seed), WTable: wt,
			})
		}},
	{"maxweight", "MaxWeight-style: least request-weighted backlog per unit speed", true,
		func(wt core.WTable, seed int64) core.Policy {
			return core.NewPipeline(core.PipelineConfig{
				Name: "MaxWeight", Admission: core.NewOpenAdmission(),
				Routing: core.NewMaxWeightRouting(seed), WTable: wt,
			})
		}},
	{"cmu", "c/μ-rule: highest effective idle capacity for the request's mix", true,
		func(wt core.WTable, seed int64) core.Policy {
			return core.NewPipeline(core.PipelineConfig{
				Name: "c/mu", Admission: core.NewOpenAdmission(),
				Routing: core.NewCMuRouting(seed), WTable: wt,
			})
		}},
	{"balanced", "balanced fairness (Bonald & Comte): least bottleneck occupancy per unit speed", true,
		func(wt core.WTable, seed int64) core.Policy {
			return core.NewPipeline(core.PipelineConfig{
				Name: "Balanced", Admission: core.NewOpenAdmission(),
				Routing: core.NewBalancedRouting(seed), WTable: wt,
			})
		}},
	{"greedy-rsrc", "greedy min-RSRC: no reservation, no sampling, no booking", true,
		func(wt core.WTable, seed int64) core.Policy {
			return core.NewPipeline(core.PipelineConfig{
				Name: "Greedy-RSRC", Admission: core.NewOpenAdmission(),
				Routing: core.NewRSRCRouting(seed), DisableSampling: true,
				PlacementImpact: core.NoPlacementImpact,
			})
		}},
	{"msr", "Markovian service-rate routing: commit to the best queue-discounted rate, hold for a memoryless epoch", true,
		func(wt core.WTable, seed int64) core.Policy {
			return core.NewPipeline(core.PipelineConfig{
				Name: "MSR", Admission: core.NewOpenAdmission(),
				Routing: core.NewMSRRouting(seed, 0), WTable: wt,
			})
		}},
	{"random", "uniform random dispatch over eligible nodes", true,
		func(wt core.WTable, seed int64) core.Policy {
			return core.NewPipeline(core.PipelineConfig{
				Name: "Random", Admission: core.NewOpenAdmission(),
				Routing: core.NewRandomRouting(seed), WTable: wt,
			})
		}},
}

// Presets returns the registry in display order (a copy).
func Presets() []Preset { return append([]Preset(nil), presets...) }

// Names returns every preset name in display order.
func Names() []string {
	out := make([]string, len(presets))
	for i, p := range presets {
		out[i] = p.Name
	}
	return out
}

// TournamentNames returns the default tournament field: the paper's
// scheduler plus every competitor preset.
func TournamentNames() []string {
	var out []string
	for _, p := range presets {
		if p.Competitor {
			out = append(out, p.Name)
		}
	}
	return out
}

// Lookup resolves a preset by name.
func Lookup(name string) (Preset, error) {
	for _, p := range presets {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("policy: unknown preset %q (see -list-policies)", name)
}

// Spec is a parsed three-stage pipeline specification — the custom
// alternative to a preset, assembled from the unified flag surface.
type Spec struct {
	// Admission names the first stage (core.AdmissionTheta2 and friends).
	Admission string
	// Routing names the second stage ("rsrc", "jsq2"/"jsq7", "maxweight",
	// "cmu", "random", "scorers").
	Routing string
	// Scorers is the weighted composition for Routing == "scorers":
	// comma-separated name:weight terms, e.g. "rsrc:1,qlen:0.5".
	Scorers string
	// Scheduling names the per-node discipline ("mlfq", "rr", "fcfs").
	Scheduling string
	// Name optionally overrides the reported policy name.
	Name string
}

// Admissions lists the registered admission-stage names.
func Admissions() []string {
	return []string{core.AdmissionTheta2, core.AdmissionTheta2Observe, core.AdmissionOpen, core.AdmissionSlavesOnly}
}

// Routings lists the registered routing-stage names (jsqD stands for any
// small d, e.g. jsq2, jsq5).
func Routings() []string {
	return []string{core.RoutingRSRC, "jsqD", core.RoutingMaxWeight, core.RoutingCMu, core.RoutingBalanced, core.RoutingMSR, core.RoutingRandom, core.RoutingScorers}
}

// ScorerNames lists the registered scorer names.
func ScorerNames() []string {
	return []string{core.ScorerRSRC, core.ScorerQueueLen, core.ScorerIdle, core.ScorerSpeed, core.ScorerAffinity}
}

func buildAdmission(name string) (core.AdmissionPolicy, error) {
	switch name {
	case "", core.AdmissionTheta2:
		return core.NewTheta2Admission(core.DefaultReservationConfig()), nil
	case core.AdmissionTheta2Observe:
		return core.NewTheta2Admission(core.DefaultReservationConfig()).ObserveOnly(), nil
	case core.AdmissionOpen:
		return core.NewOpenAdmission(), nil
	case core.AdmissionSlavesOnly:
		return core.NewSlavesOnlyAdmission(), nil
	}
	return nil, fmt.Errorf("policy: unknown admission policy %q (have %s)", name, strings.Join(Admissions(), ", "))
}

func buildRouting(name, scorers string, seed int64) (core.RoutingPolicy, error) {
	switch {
	case name == "" || name == core.RoutingRSRC:
		return core.NewRSRCRouting(seed), nil
	case name == core.RoutingMaxWeight:
		return core.NewMaxWeightRouting(seed), nil
	case name == core.RoutingCMu:
		return core.NewCMuRouting(seed), nil
	case name == core.RoutingBalanced:
		return core.NewBalancedRouting(seed), nil
	case name == core.RoutingMSR:
		return core.NewMSRRouting(seed, 0), nil
	case name == core.RoutingRandom:
		return core.NewRandomRouting(seed), nil
	case name == core.RoutingScorers:
		terms, err := ParseScorers(scorers)
		if err != nil {
			return nil, err
		}
		return core.NewScorerRouting(seed, terms...), nil
	case strings.HasPrefix(name, core.RoutingJSQPrefix):
		d, err := strconv.Atoi(name[len(core.RoutingJSQPrefix):])
		if err != nil || d < 1 {
			return nil, fmt.Errorf("policy: %q needs a positive sample width, e.g. jsq2", name)
		}
		return core.NewJSQRouting(d, seed), nil
	}
	return nil, fmt.Errorf("policy: unknown routing policy %q (have %s)", name, strings.Join(Routings(), ", "))
}

// ParseScorers parses a comma-separated name:weight composition
// ("rsrc:1,qlen:0.5"; a bare name means weight 1) into scorer terms.
func ParseScorers(s string) ([]core.WeightedScorer, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("policy: -routing-policy scorers needs -routing-scorers, e.g. %q", "rsrc:1,qlen:0.5")
	}
	var terms []core.WeightedScorer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, hasWeight := strings.Cut(part, ":")
		weight := 1.0
		if hasWeight {
			var err error
			if weight, err = strconv.ParseFloat(weightStr, 64); err != nil {
				return nil, fmt.Errorf("policy: bad scorer weight in %q: %v", part, err)
			}
		}
		var sc core.Scorer
		switch name {
		case core.ScorerRSRC:
			sc = core.RSRCScorer{}
		case core.ScorerQueueLen:
			sc = core.QueueLenScorer{}
		case core.ScorerIdle:
			sc = core.IdleScorer{}
		case core.ScorerSpeed:
			sc = core.SpeedScorer{}
		case core.ScorerAffinity:
			sc = core.AffinityScorer{}
		default:
			return nil, fmt.Errorf("policy: unknown scorer %q (have %s)", name, strings.Join(ScorerNames(), ", "))
		}
		terms = append(terms, core.WeightedScorer{Scorer: sc, Weight: weight})
	}
	if len(terms) == 0 {
		return nil, fmt.Errorf("policy: empty scorer composition %q", s)
	}
	return terms, nil
}

// ValidDiscipline reports whether name is a registered per-node
// scheduling discipline ("" counts as the default).
func ValidDiscipline(name string) error {
	if name == "" {
		return nil
	}
	for _, d := range core.Disciplines() {
		if name == d {
			return nil
		}
	}
	return fmt.Errorf("policy: unknown scheduling policy %q (have %s)", name, strings.Join(core.Disciplines(), ", "))
}

// Build assembles the pipeline the spec describes.
func (s Spec) Build(wt core.WTable, seed int64) (core.Policy, error) {
	adm, err := buildAdmission(s.Admission)
	if err != nil {
		return nil, err
	}
	route, err := buildRouting(s.Routing, s.Scorers, seed)
	if err != nil {
		return nil, err
	}
	if err := ValidDiscipline(s.Scheduling); err != nil {
		return nil, err
	}
	return core.NewPipeline(core.PipelineConfig{
		Name:       s.Name,
		Admission:  adm,
		Routing:    route,
		Scheduling: s.Scheduling,
		WTable:     wt,
	}), nil
}
