package policy

import (
	"flag"
	"fmt"
	"strings"

	"msweb/internal/core"
)

// Flags is the unified policy flag surface. Every binary that places
// requests registers the same five flags through Register, so
// `-policy`, `-admission-policy`, `-routing-policy`, `-routing-scorers`
// and `-scheduling-policy` mean the same thing in msbench, mscluster
// and loadgen, and `-list-policies` prints the same catalog everywhere.
type Flags struct {
	// Preset selects a registry preset (-policy).
	Preset string
	// Admission, Routing, Scorers override the preset with a custom
	// pipeline; setting any of them switches to Spec assembly.
	Admission string
	Routing   string
	Scorers   string
	// Scheduling selects the per-node discipline; it applies to presets
	// and custom pipelines alike (the execution plane consumes it).
	Scheduling string
	// List requests the catalog print-and-exit path (-list-policies).
	List bool
}

// Register installs the unified flag set into fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Preset, "policy", "ms", "policy preset (see -list-policies)")
	fs.StringVar(&f.Admission, "admission-policy", "", "custom pipeline: admission stage (theta2, theta2-observe, open, slaves-only)")
	fs.StringVar(&f.Routing, "routing-policy", "", "custom pipeline: routing stage (rsrc, jsqD, maxweight, cmu, random, scorers)")
	fs.StringVar(&f.Scorers, "routing-scorers", "", "scorer composition for -routing-policy scorers, e.g. rsrc:1,qlen:0.5")
	fs.StringVar(&f.Scheduling, "scheduling-policy", "", "per-node discipline: mlfq (default), rr, fcfs")
	fs.BoolVar(&f.List, "list-policies", false, "print the policy catalog and exit")
}

// Custom reports whether any pipeline-stage flag was set, switching
// resolution from the preset table to Spec assembly.
func (f Flags) Custom() bool {
	return f.Admission != "" || f.Routing != "" || f.Scorers != ""
}

// Spec returns the custom-pipeline spec the stage flags describe.
func (f Flags) Spec() Spec {
	return Spec{Admission: f.Admission, Routing: f.Routing, Scorers: f.Scorers, Scheduling: f.Scheduling}
}

// Resolve validates the selection and returns a Builder for it. Custom
// stage flags win over -policy; every stage name is checked eagerly so
// a typo fails at startup, not at first placement.
func (f Flags) Resolve() (Builder, error) {
	if err := ValidDiscipline(f.Scheduling); err != nil {
		return nil, err
	}
	if f.Custom() {
		spec := f.Spec()
		if _, err := spec.Build(nil, 0); err != nil {
			return nil, err
		}
		return func(wt core.WTable, seed int64) core.Policy {
			p, err := spec.Build(wt, seed)
			if err != nil {
				// Unreachable: the spec validated above and Build is
				// deterministic in its names.
				panic(err)
			}
			return p
		}, nil
	}
	p, err := Lookup(f.Preset)
	if err != nil {
		return nil, err
	}
	return p.Build, nil
}

// ListText renders the shared -list-policies catalog. Every front-end
// prints this same text so the documented surface cannot drift.
func ListText() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Policy presets (-policy NAME):")
	for _, p := range presets {
		fmt.Fprintf(&b, "  %-12s %s\n", p.Name, p.Desc)
	}
	fmt.Fprintln(&b, "\nCustom pipelines (stage flags override -policy):")
	fmt.Fprintf(&b, "  -admission-policy   %s\n", strings.Join(Admissions(), ", "))
	fmt.Fprintf(&b, "  -routing-policy     %s  (jsqD: any width, e.g. jsq2, jsq5)\n", strings.Join(Routings(), ", "))
	fmt.Fprintf(&b, "  -routing-scorers    %s  (name:weight, e.g. rsrc:1,qlen:0.5)\n", strings.Join(ScorerNames(), ", "))
	fmt.Fprintf(&b, "  -scheduling-policy  %s\n", strings.Join(core.Disciplines(), ", "))
	return b.String()
}
