package policy

import (
	"flag"
	"strings"
	"testing"

	"msweb/internal/core"
	"msweb/internal/trace"
)

// view returns a small mixed-tier view for smoke-placing policies.
func view() *core.View {
	v := &core.View{Masters: []int{0, 1}, Slaves: []int{2, 3, 4}, Load: make([]core.Load, 5)}
	for i := range v.Load {
		v.Load[i] = core.Load{CPUIdle: 0.5, DiskAvail: 0.6, CPUQueue: i, DiskQueue: 1}
	}
	return v
}

func TestEveryPresetBuildsAndPlaces(t *testing.T) {
	for _, p := range Presets() {
		pol := p.Build(nil, 1)
		if pol == nil {
			t.Fatalf("preset %q built nil", p.Name)
		}
		if pol.Name() == "" {
			t.Fatalf("preset %q has an empty policy name", p.Name)
		}
		v := view()
		for i := 0; i < 32; i++ {
			cls := trace.Static
			if i%2 == 0 {
				cls = trace.Dynamic
			}
			target := pol.Place(core.Request{Class: cls, Script: i % 4}, i%2, v)
			if target < 0 || target >= len(v.Load) {
				t.Fatalf("preset %q placed at %d, outside the view", p.Name, target)
			}
		}
	}
}

func TestLookupUnknownPreset(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup(nope) must fail")
	}
}

func TestTournamentNamesAreCompetitors(t *testing.T) {
	names := TournamentNames()
	if len(names) < 6 {
		t.Fatalf("tournament field too small: %v", names)
	}
	has := func(n string) bool {
		for _, x := range names {
			if x == n {
				return true
			}
		}
		return false
	}
	for _, want := range []string{"ms", "jsq2", "maxweight", "cmu", "greedy-rsrc", "random"} {
		if !has(want) {
			t.Fatalf("tournament field %v missing %q", names, want)
		}
	}
}

// TestSpecRoundTrip drives every stage name through flag parsing and a
// build, covering the registry's whole custom surface.
func TestSpecRoundTrip(t *testing.T) {
	cases := []struct {
		args []string
		name string // expected substring of the policy name ("" = any)
	}{
		{[]string{"-admission-policy", "theta2"}, ""},
		{[]string{"-admission-policy", "theta2-observe"}, ""},
		{[]string{"-admission-policy", "open"}, ""},
		{[]string{"-admission-policy", "slaves-only"}, ""},
		{[]string{"-routing-policy", "rsrc"}, "rsrc"},
		{[]string{"-routing-policy", "jsq2"}, "jsq2"},
		{[]string{"-routing-policy", "jsq5"}, "jsq5"},
		{[]string{"-routing-policy", "maxweight"}, "maxweight"},
		{[]string{"-routing-policy", "cmu"}, "cmu"},
		{[]string{"-routing-policy", "random"}, "random"},
		{[]string{"-routing-policy", "scorers", "-routing-scorers", "rsrc:1,qlen:0.5"}, "scorers"},
		{[]string{"-routing-policy", "scorers", "-routing-scorers", "idle, speed:2, affinity:0.1"}, "scorers"},
		{[]string{"-admission-policy", "open", "-routing-policy", "jsq3", "-scheduling-policy", "fcfs"}, "jsq3"},
		{[]string{"-policy", "maxweight", "-scheduling-policy", "rr"}, "MaxWeight"},
	}
	for _, tc := range cases {
		var f Flags
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		f.Register(fs)
		if err := fs.Parse(tc.args); err != nil {
			t.Fatalf("parse %v: %v", tc.args, err)
		}
		build, err := f.Resolve()
		if err != nil {
			t.Fatalf("resolve %v: %v", tc.args, err)
		}
		pol := build(nil, 7)
		if tc.name != "" && !strings.Contains(strings.ToLower(pol.Name()), strings.ToLower(tc.name)) {
			t.Fatalf("args %v built policy %q, want name containing %q", tc.args, pol.Name(), tc.name)
		}
		v := view()
		if target := pol.Place(core.Request{Class: trace.Dynamic}, 0, v); target < 0 || target >= len(v.Load) {
			t.Fatalf("args %v placed at %d, outside the view", tc.args, target)
		}
	}
}

func TestResolveRejectsBadNames(t *testing.T) {
	bad := [][]string{
		{"-policy", "nope"},
		{"-admission-policy", "closed-door"},
		{"-routing-policy", "dijkstra"},
		{"-routing-policy", "jsq0"},
		{"-routing-policy", "jsqx"},
		{"-routing-policy", "scorers"}, // missing -routing-scorers
		{"-routing-policy", "scorers", "-routing-scorers", "karma:1"},
		{"-routing-policy", "scorers", "-routing-scorers", "rsrc:abc"},
		{"-scheduling-policy", "edf"},
	}
	for _, args := range bad {
		var f Flags
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		f.Register(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatalf("parse %v: %v", args, err)
		}
		if _, err := f.Resolve(); err == nil {
			t.Fatalf("resolve %v must fail", args)
		}
	}
}

func TestListTextMentionsEverything(t *testing.T) {
	txt := ListText()
	for _, name := range Names() {
		if !strings.Contains(txt, name) {
			t.Fatalf("ListText missing preset %q:\n%s", name, txt)
		}
	}
	for _, name := range Admissions() {
		if !strings.Contains(txt, name) {
			t.Fatalf("ListText missing admission %q", name)
		}
	}
	for _, name := range core.Disciplines() {
		if !strings.Contains(txt, name) {
			t.Fatalf("ListText missing discipline %q", name)
		}
	}
	for _, name := range ScorerNames() {
		if !strings.Contains(txt, name) {
			t.Fatalf("ListText missing scorer %q", name)
		}
	}
}

// TestSeedDeterminism: same builder + same seed ⇒ identical decision
// streams; this is what makes tournament cells reproducible.
func TestSeedDeterminism(t *testing.T) {
	for _, p := range Presets() {
		a, b := p.Build(nil, 3), p.Build(nil, 3)
		v1, v2 := view(), view()
		for i := 0; i < 64; i++ {
			req := core.Request{Class: trace.Dynamic, Script: i % 3}
			if got, want := a.Place(req, 0, v1), b.Place(req, 0, v2); got != want {
				t.Fatalf("preset %q diverged at request %d: %d vs %d", p.Name, i, got, want)
			}
		}
	}
}
