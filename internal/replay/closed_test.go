package replay

import (
	"context"
	"testing"
	"time"

	"msweb/internal/trace"
	"msweb/internal/workload"
)

func testSessions(t *testing.T, n int) []workload.Session {
	t.Helper()
	sessions, err := workload.Generate(workload.Config{
		Profile:      trace.KSU,
		Sessions:     n,
		SessionRate:  40,
		MeanRequests: 4,
		MeanThink:    0.05,
		MuH:          110,
		R:            1.0 / 40,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sessions
}

func TestRunClosedCompletes(t *testing.T) {
	c := startTestCluster(t, 1, 3, 0.2)
	sessions := testSessions(t, 20)
	res, err := RunClosed(context.Background(), c.MasterURLs(), sessions, Options{TimeScale: 0.2, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	want := workload.TotalRequests(sessions)
	if res.Sent != want || res.Failed != 0 {
		t.Fatalf("sent=%d failed=%d want=%d", res.Sent, res.Failed, want)
	}
	if sf := res.StretchFactor(); sf < 1 || sf > 100 {
		t.Fatalf("implausible stretch %v", sf)
	}
}

func TestRunClosedSequentialWithinSession(t *testing.T) {
	c := startTestCluster(t, 1, 2, 0.25)
	// One session, 3 requests of 20 ms each and 10 ms thinks: the
	// session cannot finish faster than its serial time.
	s := workload.Session{
		Start: 0,
		Requests: []trace.Request{
			{Class: trace.Static, Demand: 0.02, CPUWeight: 0.5},
			{Class: trace.Static, Demand: 0.02, CPUWeight: 0.5},
			{Class: trace.Static, Demand: 0.02, CPUWeight: 0.5},
		},
		Thinks: []float64{0.01, 0.01},
	}
	start := time.Now()
	res, err := RunClosed(context.Background(), c.MasterURLs(), []workload.Session{s}, Options{TimeScale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	// Serial time scaled: (3·20 + 2·10) ms × 0.25 = 20 ms.
	if e := time.Since(start); e < 18*time.Millisecond {
		t.Fatalf("closed session finished in %v, below serial minimum", e)
	}
	if res.Sent != 3 || res.Failed != 0 {
		t.Fatalf("sent=%d failed=%d", res.Sent, res.Failed)
	}
}

func TestRunClosedValidation(t *testing.T) {
	if _, err := RunClosed(context.Background(), nil, nil, DefaultOptions()); err == nil {
		t.Fatal("no masters accepted")
	}
	bad := []workload.Session{{Start: 0}}
	if _, err := RunClosed(context.Background(), []string{"http://x"}, bad, DefaultOptions()); err == nil {
		t.Fatal("invalid session accepted")
	}
}

func TestRunClosedCancellation(t *testing.T) {
	c := startTestCluster(t, 1, 2, 1)
	// Sessions starting far in the future; cancellation must return early.
	s := workload.Session{
		Start:    60,
		Requests: []trace.Request{{Class: trace.Static, Demand: 0.001, CPUWeight: 0.5}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	res, err := RunClosed(ctx, c.MasterURLs(), []workload.Session{s}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 0 {
		t.Fatalf("cancelled replay sent %d", res.Sent)
	}
}
