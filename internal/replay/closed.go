package replay

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"msweb/internal/metrics"
	"msweb/internal/trace"
	"msweb/internal/workload"
)

// RunClosed drives a live cluster with closed-loop sessions: each
// session is a goroutine-user that waits for every response before
// thinking and issuing its next request — the live counterpart of
// cluster.RunClosedLoop. Master URLs are assigned to sessions round
// robin (a user keeps its front-end server, as a browser keeps its
// connection).
func RunClosed(ctx context.Context, masterURLs []string, sessions []workload.Session, opts Options) (*Result, error) {
	if len(masterURLs) == 0 {
		return nil, fmt.Errorf("replay: no master URLs")
	}
	for i, s := range sessions {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("replay: session %d: %w", i, err)
		}
	}
	if opts.TimeScale <= 0 {
		opts.TimeScale = 1
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 120 * time.Second
	}

	client := &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: 256},
		Timeout:   opts.Timeout,
	}
	var frames *framePool
	if opts.Frames {
		frames = newFramePool(opts.Timeout)
		defer frames.close()
	}

	var (
		mu        sync.Mutex
		collector = metrics.NewCollector()
		failed    int
		sent      int
		wg        sync.WaitGroup
	)
	start := time.Now()

	runSession := func(master string, s workload.Session) {
		defer wg.Done()
		if wait := time.Duration(s.Start*opts.TimeScale*float64(time.Second)) - time.Since(start); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return
			}
		}
		for i, req := range s.Requests {
			if ctx.Err() != nil {
				return
			}
			var ok bool
			t0 := time.Now()
			if frames != nil {
				ok, _ = frames.do(master, req)
			} else {
				cls := "s"
				if req.Class == trace.Dynamic {
					cls = "d"
				}
				url := fmt.Sprintf("%s/req?class=%s&demand=%g&w=%g&script=%d&size=%d",
					master, cls, req.Demand, req.CPUWeight, req.Script, req.Size)
				resp, err := client.Get(url)
				var got int64
				if resp != nil {
					got, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				ok = err == nil && resp.StatusCode == http.StatusOK
				if ok && req.Size > 0 && got != req.Size {
					ok = false
				}
			}
			elapsed := time.Since(t0)
			mu.Lock()
			sent++
			if ok {
				collector.Add(metrics.Sample{
					Demand:   req.Demand,
					Response: elapsed.Seconds() / opts.TimeScale,
					Class:    req.Class.String(),
				})
			} else {
				failed++
			}
			mu.Unlock()
			if i < len(s.Thinks) {
				think := time.Duration(s.Thinks[i] * opts.TimeScale * float64(time.Second))
				select {
				case <-time.After(think):
				case <-ctx.Done():
					return
				}
			}
		}
	}

	for i, s := range sessions {
		wg.Add(1)
		go runSession(masterURLs[i%len(masterURLs)], s)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	return &Result{
		Summary:  collector.Summarize(),
		Sent:     sent,
		Failed:   failed,
		Duration: time.Since(start),
	}, nil
}
