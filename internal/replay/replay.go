// Package replay drives a live msweb cluster with a trace: an open-loop
// client that fires each request at its (scaled) arrival time against
// the master tier in round-robin order — the paper's replay methodology
// ("requests are sent to servers in a round-robin fashion") — and
// measures per-request server-site response times for the stretch
// factor.
package replay

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"msweb/internal/metrics"
	"msweb/internal/trace"
)

// Options configure a replay.
type Options struct {
	// TimeScale compresses (<1) or dilates (>1) the trace's arrival
	// intervals and demands; it must match the cluster's TimeScale so
	// stretch factors stay dimensionless.
	TimeScale float64
	// Timeout bounds each request.
	Timeout time.Duration
	// Concurrency caps in-flight requests (0 = unlimited).
	Concurrency int
}

// DefaultOptions replays in real time.
func DefaultOptions() Options {
	return Options{TimeScale: 1, Timeout: 120 * time.Second}
}

// Result carries replay statistics.
type Result struct {
	Summary  metrics.Summary
	Sent     int
	Failed   int
	Duration time.Duration
}

// StretchFactor is the headline metric.
func (r *Result) StretchFactor() float64 { return r.Summary.StretchFactor }

// Run replays tr against the given master URLs and blocks until every
// request has completed or failed.
func Run(ctx context.Context, masterURLs []string, tr *trace.Trace, opts Options) (*Result, error) {
	if len(masterURLs) == 0 {
		return nil, fmt.Errorf("replay: no master URLs")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if opts.TimeScale <= 0 {
		opts.TimeScale = 1
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 120 * time.Second
	}

	client := &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: 256},
		Timeout:   opts.Timeout,
	}

	var (
		mu        sync.Mutex
		collector = metrics.NewCollector()
		failed    int
		wg        sync.WaitGroup
	)
	var gate chan struct{}
	if opts.Concurrency > 0 {
		gate = make(chan struct{}, opts.Concurrency)
	}

	start := time.Now()
	base := 0.0
	if len(tr.Requests) > 0 {
		base = tr.Requests[0].Arrival
	}
	sent := 0
	for i, req := range tr.Requests {
		if ctx.Err() != nil {
			break
		}
		at := time.Duration((req.Arrival - base) * opts.TimeScale * float64(time.Second))
		if wait := at - time.Since(start); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
			}
			if ctx.Err() != nil {
				break
			}
		}
		master := masterURLs[i%len(masterURLs)]
		req := req
		sent++
		if gate != nil {
			gate <- struct{}{}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if gate != nil {
				defer func() { <-gate }()
			}
			cls := "s"
			if req.Class == trace.Dynamic {
				cls = "d"
			}
			url := fmt.Sprintf("%s/req?class=%s&demand=%g&w=%g&script=%d&size=%d",
				master, cls, req.Demand, req.CPUWeight, req.Script, req.Size)
			t0 := time.Now()
			resp, err := client.Get(url)
			var got int64
			if resp != nil {
				got, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			elapsed := time.Since(t0)
			ok := err == nil && resp.StatusCode == http.StatusOK
			if ok && req.Size > 0 && got != req.Size {
				ok = false // truncated or padded body: count as failure
			}
			mu.Lock()
			defer mu.Unlock()
			if !ok {
				failed++
				return
			}
			// Normalize the measured response back to unscaled seconds
			// so stretch = response/demand is scale-free.
			collector.Add(metrics.Sample{
				Demand:   req.Demand,
				Response: elapsed.Seconds() / opts.TimeScale,
				Class:    req.Class.String(),
			})
		}()
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	return &Result{
		Summary:  collector.Summarize(),
		Sent:     sent,
		Failed:   failed,
		Duration: time.Since(start),
	}, nil
}
