// Package replay drives a live msweb cluster with a trace: an open-loop
// client that fires each request at its (scaled) arrival time against
// the master tier in round-robin order — the paper's replay methodology
// ("requests are sent to servers in a round-robin fashion") — and
// measures per-request server-site response times for the stretch
// factor.
package replay

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"msweb/internal/httpcluster"
	"msweb/internal/metrics"
	"msweb/internal/trace"
)

// Options configure a replay.
type Options struct {
	// TimeScale compresses (<1) or dilates (>1) the trace's arrival
	// intervals and demands; it must match the cluster's TimeScale so
	// stretch factors stay dimensionless.
	TimeScale float64
	// Timeout bounds each request.
	Timeout time.Duration
	// Concurrency caps in-flight requests (0 = unlimited).
	Concurrency int
	// Frames sends requests as 'Q' frames over persistent msweb-frame/1
	// connections instead of HTTP GET /req — no request parse, no header
	// map, no response body (statuses only, so Size verification does not
	// apply). The masters must speak the frame protocol.
	Frames bool
}

// framePool shares persistent frame connections per master across the
// driver's request goroutines.
type framePool struct {
	timeout time.Duration
	mu      sync.Mutex
	idle    map[string][]*httpcluster.FrameClient
}

func newFramePool(timeout time.Duration) *framePool {
	return &framePool{timeout: timeout, idle: make(map[string][]*httpcluster.FrameClient)}
}

func (p *framePool) get(master string) (*httpcluster.FrameClient, error) {
	p.mu.Lock()
	if cs := p.idle[master]; len(cs) > 0 {
		fc := cs[len(cs)-1]
		p.idle[master] = cs[:len(cs)-1]
		p.mu.Unlock()
		return fc, nil
	}
	p.mu.Unlock()
	return httpcluster.DialFrame(master, p.timeout)
}

func (p *framePool) put(master string, fc *httpcluster.FrameClient) {
	p.mu.Lock()
	p.idle[master] = append(p.idle[master], fc)
	p.mu.Unlock()
}

func (p *framePool) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, cs := range p.idle {
		for _, fc := range cs {
			fc.Close()
		}
	}
	p.idle = nil
}

// do sends one request on a pooled connection; a transport error drops
// the connection (the next get dials fresh).
func (p *framePool) do(master string, req trace.Request) (ok bool, err error) {
	fc, err := p.get(master)
	if err != nil {
		return false, err
	}
	sts, err := fc.Do([]httpcluster.FrameRequest{{
		Demand: req.Demand, W: req.CPUWeight, Script: req.Script,
		Dynamic: req.Class == trace.Dynamic, Idem: true,
	}}, time.Now().Add(p.timeout))
	if err != nil {
		fc.Close()
		return false, err
	}
	p.put(master, fc)
	return sts[0] == http.StatusOK, nil
}

// DefaultOptions replays in real time.
func DefaultOptions() Options {
	return Options{TimeScale: 1, Timeout: 120 * time.Second}
}

// Result carries replay statistics.
type Result struct {
	Summary  metrics.Summary
	Sent     int
	Failed   int
	Duration time.Duration
}

// StretchFactor is the headline metric.
func (r *Result) StretchFactor() float64 { return r.Summary.StretchFactor }

// Run replays tr against the given master URLs and blocks until every
// request has completed or failed.
func Run(ctx context.Context, masterURLs []string, tr *trace.Trace, opts Options) (*Result, error) {
	if len(masterURLs) == 0 {
		return nil, fmt.Errorf("replay: no master URLs")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if opts.TimeScale <= 0 {
		opts.TimeScale = 1
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 120 * time.Second
	}

	client := &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: 256},
		Timeout:   opts.Timeout,
	}
	var frames *framePool
	if opts.Frames {
		frames = newFramePool(opts.Timeout)
		defer frames.close()
	}

	var (
		mu        sync.Mutex
		collector = metrics.NewCollector()
		failed    int
		wg        sync.WaitGroup
	)
	var gate chan struct{}
	if opts.Concurrency > 0 {
		gate = make(chan struct{}, opts.Concurrency)
	}

	start := time.Now()
	base := 0.0
	if len(tr.Requests) > 0 {
		base = tr.Requests[0].Arrival
	}
	sent := 0
	for i, req := range tr.Requests {
		if ctx.Err() != nil {
			break
		}
		at := time.Duration((req.Arrival - base) * opts.TimeScale * float64(time.Second))
		if wait := at - time.Since(start); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
			}
			if ctx.Err() != nil {
				break
			}
		}
		master := masterURLs[i%len(masterURLs)]
		req := req
		sent++
		if gate != nil {
			gate <- struct{}{}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if gate != nil {
				defer func() { <-gate }()
			}
			var ok bool
			t0 := time.Now()
			if frames != nil {
				ok, _ = frames.do(master, req)
			} else {
				cls := "s"
				if req.Class == trace.Dynamic {
					cls = "d"
				}
				url := fmt.Sprintf("%s/req?class=%s&demand=%g&w=%g&script=%d&size=%d",
					master, cls, req.Demand, req.CPUWeight, req.Script, req.Size)
				resp, err := client.Get(url)
				var got int64
				if resp != nil {
					got, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				ok = err == nil && resp.StatusCode == http.StatusOK
				if ok && req.Size > 0 && got != req.Size {
					ok = false // truncated or padded body: count as failure
				}
			}
			elapsed := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			if !ok {
				failed++
				return
			}
			// Normalize the measured response back to unscaled seconds
			// so stretch = response/demand is scale-free.
			collector.Add(metrics.Sample{
				Demand:   req.Demand,
				Response: elapsed.Seconds() / opts.TimeScale,
				Class:    req.Class.String(),
			})
		}()
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	return &Result{
		Summary:  collector.Summarize(),
		Sent:     sent,
		Failed:   failed,
		Duration: time.Since(start),
	}, nil
}
