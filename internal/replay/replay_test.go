package replay

import (
	"context"
	"testing"
	"time"

	"msweb/internal/core"
	"msweb/internal/httpcluster"
	"msweb/internal/trace"
)

func startTestCluster(t *testing.T, masters, nodes int, scale float64) *httpcluster.Cluster {
	t.Helper()
	cfg := httpcluster.DefaultConfig(masters, func(id int) core.Policy {
		return core.NewMS(nil, int64(id)+1)
	})
	cfg.Nodes = nodes
	cfg.TimeScale = scale
	cfg.LoadRefresh = 25 * time.Millisecond
	cfg.PolicyTick = 50 * time.Millisecond
	c, err := httpcluster.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func TestReplaySmallTrace(t *testing.T) {
	c := startTestCluster(t, 1, 3, 0.25)
	tr, err := trace.Generate(trace.GenConfig{
		Profile: trace.KSU, Lambda: 40, Requests: 80, MuH: 110, R: 1.0 / 40, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), c.MasterURLs(), tr, Options{TimeScale: 0.25, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d requests failed", res.Failed)
	}
	if res.Summary.Count != 80 {
		t.Fatalf("collected %d samples, want 80", res.Summary.Count)
	}
	if sf := res.StretchFactor(); sf < 1 || sf > 50 {
		t.Fatalf("implausible stretch factor %v", sf)
	}
}

func TestReplayRoundRobinAcrossMasters(t *testing.T) {
	c := startTestCluster(t, 2, 4, 0.25)
	tr := &trace.Trace{Name: "rr"}
	for i := 0; i < 10; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: float64(i) * 0.01, Class: trace.Static, Demand: 0.001, CPUWeight: 0.3,
		})
	}
	res, err := Run(context.Background(), c.MasterURLs(), tr, Options{TimeScale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d failed", res.Failed)
	}
	// Statics execute at the receiving master; round robin must split
	// them evenly.
	if a, b := c.Masters[0].Executed(), c.Masters[1].Executed(); a != 5 || b != 5 {
		t.Fatalf("masters executed %d and %d, want 5 and 5", a, b)
	}
}

// The frame drive mode replays the same trace over persistent 'Q'
// frames instead of HTTP GETs: same completions, same counters on the
// cluster side, no response bodies to verify.
func TestReplayOverFrames(t *testing.T) {
	c := startTestCluster(t, 2, 4, 0.25)
	tr, err := trace.Generate(trace.GenConfig{
		Profile: trace.KSU, Lambda: 40, Requests: 60, MuH: 110, R: 1.0 / 40, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), c.MasterURLs(), tr,
		Options{TimeScale: 0.25, Timeout: time.Minute, Frames: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d requests failed over frames", res.Failed)
	}
	if res.Summary.Count != 60 {
		t.Fatalf("collected %d samples, want 60", res.Summary.Count)
	}
	if got := c.Masters[0].Accepted() + c.Masters[1].Accepted(); got != 60 {
		t.Fatalf("masters accepted %d requests, want 60", got)
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	c := startTestCluster(t, 1, 2, 0.25)
	res, err := Run(context.Background(), c.MasterURLs(), &trace.Trace{Name: "empty"}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 0 || res.Summary.Count != 0 {
		t.Fatalf("empty replay: %+v", res)
	}
}

func TestReplayErrors(t *testing.T) {
	if _, err := Run(context.Background(), nil, &trace.Trace{}, DefaultOptions()); err == nil {
		t.Fatal("no masters accepted")
	}
	bad := &trace.Trace{Requests: []trace.Request{{Arrival: 5}, {Arrival: 1}}}
	if _, err := Run(context.Background(), []string{"http://127.0.0.1:1"}, bad, DefaultOptions()); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

func TestReplayCancellation(t *testing.T) {
	c := startTestCluster(t, 1, 2, 1)
	tr := &trace.Trace{Name: "slow"}
	for i := 0; i < 50; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: float64(i), Class: trace.Static, Demand: 0.001, CPUWeight: 0.3,
		})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	res, err := Run(ctx, c.MasterURLs(), tr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent >= 50 {
		t.Fatalf("cancellation did not stop the replay: sent %d", res.Sent)
	}
}

func TestReplayUnreachableClusterCountsFailures(t *testing.T) {
	tr := &trace.Trace{Name: "x", Requests: []trace.Request{
		{Arrival: 0, Class: trace.Static, Demand: 0.001, CPUWeight: 0.3},
	}}
	res, err := Run(context.Background(), []string{"http://127.0.0.1:9"}, tr, Options{TimeScale: 1, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 {
		t.Fatalf("failed = %d, want 1", res.Failed)
	}
}

func TestReplayConcurrencyGate(t *testing.T) {
	c := startTestCluster(t, 1, 2, 0.25)
	tr := &trace.Trace{Name: "gate"}
	for i := 0; i < 20; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: 0, Class: trace.Static, Demand: 0.004, CPUWeight: 0.3,
		})
	}
	res, err := Run(context.Background(), c.MasterURLs(), tr, Options{TimeScale: 0.25, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Summary.Count != 20 {
		t.Fatalf("gated replay: failed=%d count=%d", res.Failed, res.Summary.Count)
	}
}
