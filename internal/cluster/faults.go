package cluster

// Fault tolerance and dynamic resource recruitment. The paper motivates
// the master/slave architecture with exactly these abilities: slave
// nodes "may be non-dedicated and recruited dynamically when they become
// idle", and "if a slave node fails, a master node may need to restart a
// dynamic content process on another node". This file adds both to the
// simulated cluster: an availability schedule takes nodes down (crash or
// reclamation) and brings them up (recovery or recruitment), and the
// dispatcher restarts the lost in-flight requests elsewhere after a
// failover-detection delay.

import (
	"fmt"
	"sort"

	"msweb/internal/trace"
)

// AvailabilityEvent changes one node's availability at a point in
// virtual time. Down events model crashes or a non-dedicated machine
// being reclaimed by its owner; Up events model recovery or recruitment.
type AvailabilityEvent struct {
	Node      int
	At        float64
	Available bool
}

// validateEvents checks the availability schedule against the topology.
func validateEvents(events []AvailabilityEvent, nodes int) error {
	for i, e := range events {
		if e.Node < 0 || e.Node >= nodes {
			return fmt.Errorf("cluster: availability event %d targets node %d of %d", i, e.Node, nodes)
		}
		if e.At < 0 {
			return fmt.Errorf("cluster: availability event %d at negative time", i)
		}
	}
	return nil
}

// pendingRequest records an in-flight request so it can be restarted if
// its execution node fails. Structs recycle through Cluster.freePending;
// the identity (not just the id) of the pointer in c.inflight decides
// ownership, so a recycled struct can never impersonate an older
// request.
type pendingRequest struct {
	id      int64
	req     trace.Request
	node    int
	arrival float64
	count   bool
	// submitted flips when the job reaches its node: from then on the
	// only live references are the inflight map and the job's DoneArg.
	// While false, a dispatch-latency submit event still holds the
	// struct and is responsible for releasing it if disowned.
	submitted bool
	onDone    func(now float64)
}

// applyAvailability executes one schedule entry.
func (c *Cluster) applyAvailability(e AvailabilityEvent) {
	if c.available[e.Node] == e.Available {
		return
	}
	c.available[e.Node] = e.Available
	c.recomputeView()

	if e.Available {
		return
	}
	// The node went down: abort its processes and restart the lost
	// requests elsewhere after the failover-detection delay.
	c.nodes[e.Node].Drain()
	var lost []*pendingRequest
	for id, p := range c.inflight {
		if p.node == e.Node {
			lost = append(lost, p)
			delete(c.inflight, id)
		}
	}
	// The inflight map iterates in random order; the restarts it yields
	// must not (their After events tie on time and fall back to insertion
	// order, which would leak the map order into the replay).
	sort.Slice(lost, func(i, j int) bool { return lost[i].id < lost[j].id })
	delay := c.cfg.RetryDelay
	for _, p := range lost {
		c.failovers++
		// Copy the restart parameters out: once submitted, the struct's
		// job died with the drained node and we hold the last reference,
		// so it recycles now. Unsubmitted structs are still referenced
		// by their dispatch-latency event, which will find itself
		// disowned and release them.
		req, count, arrival, onDone := p.req, p.count, p.arrival, p.onDone
		if p.submitted {
			c.releasePending(p)
		}
		c.eng.After(delay, func() { c.dispatchFull(req, count, arrival, onDone) })
	}
}

// recomputeView rebuilds the master/slave lists from roles,
// availability and the autoscaler's power state. Nodes with id <
// roleMasters are master-role. If every master-role node is down, the
// lowest available node is promoted so the cluster keeps accepting
// requests (the hot-standby takeover the paper describes). Under
// sharding, every topology change also rebalances the shard map onto a
// new epoch (see reshard).
func (c *Cluster) recomputeView() {
	masters := c.view.Masters[:0]
	slaves := c.view.Slaves[:0]
	for i := 0; i < c.cfg.Nodes; i++ {
		if !c.available[i] || !c.powered[i] {
			continue
		}
		if i < c.roleMasters {
			masters = append(masters, i)
		} else {
			slaves = append(slaves, i)
		}
	}
	if len(masters) == 0 && len(slaves) > 0 {
		masters = append(masters, slaves[0])
		slaves = slaves[1:]
	}
	c.view.Masters = masters
	c.view.Slaves = slaves
	c.reshard()
}

// Available reports a node's current availability.
func (c *Cluster) Available(node int) bool {
	return node >= 0 && node < len(c.available) && c.available[node]
}
