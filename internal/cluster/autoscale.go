package cluster

// Online autoscaler. The adaptive controller (AdaptiveMasters) re-plans
// only the master/slave split over a fixed fleet; the autoscaler closes
// the remaining loop the paper leaves open: it sizes the fleet itself.
// Every Period it re-estimates the offered load from the completed
// window, chooses how many nodes are worth powering at all (offered
// erlangs over a target utilization), re-runs Theorem 1's numeric
// minimization for the master count on that fleet, and powers slaves on
// and off to match.
//
// Two classic ingredients keep it stable. Scale-down follows the c/μ
// rule: the slowest slaves (lowest speed factor) are switched off
// first, so the surviving capacity per watt is maximal; ties break
// toward the highest node id, and scale-up mirrors the order, so every
// decision is deterministic. And shrinking is rate-limited by
// exponential hold epochs in the MSR dynamic-provisioning style: after
// any action the controller holds scale-downs for asHold seconds and
// doubles the hold (up to HoldMax); quiet ticks decay it back toward
// HoldInitial. Scale-up is never held — a flash crowd is answered
// within a control period, while a noisy λ estimate cannot make the
// fleet flap off.
//
// Powering off is graceful, unlike a crash: the node leaves every
// placement view (and the shard map, on a new epoch) so nothing new
// lands on it, but it finishes the work it holds and is never drained.

import (
	"sort"

	"msweb/internal/queuemodel"
)

// Autoscale configures the online autoscaler (Config.Autoscale).
type Autoscale struct {
	// Period between control decisions in seconds.
	Period float64
	// MinM/MaxM clamp the planned master count (defaults 1 and p−1).
	MinM, MaxM int
	// MinSlaves is the floor on powered slave-role nodes (default 1), so
	// the cluster always has somewhere to dispatch.
	MinSlaves int
	// TargetRho is the per-node utilization the powered fleet is sized
	// for (default 0.6): powered ≈ offered-erlangs / TargetRho.
	TargetRho float64
	// HoldInitial is the first hold-epoch length after an action
	// (default 2×Period); HoldMax caps the exponential growth (default
	// 16×HoldInitial).
	HoldInitial, HoldMax float64
}

func (a *Autoscale) holdInitial() float64 {
	if a.HoldInitial > 0 {
		return a.HoldInitial
	}
	return 2 * a.Period
}

func (a *Autoscale) holdMax() float64 {
	if a.HoldMax > 0 {
		return a.HoldMax
	}
	return 16 * a.holdInitial()
}

func (a *Autoscale) targetRho() float64 {
	if a.TargetRho > 0 {
		return a.TargetRho
	}
	return 0.6
}

func (a *Autoscale) minSlaves() int {
	if a.MinSlaves > 0 {
		return a.MinSlaves
	}
	return 1
}

// AutoscaleStats reports one run's autoscaler activity.
type AutoscaleStats struct {
	// Promotions/Demotions accumulate master-count increases/decreases
	// (in masters, not decisions).
	Promotions, Demotions int64
	// SlaveOns/SlaveOffs count node power transitions.
	SlaveOns, SlaveOffs int64
	// HeldTicks counts control periods where a wanted scale-down was
	// deferred by a hold epoch.
	HeldTicks int64
	// FinalPowered is the powered fleet size at the end of the run.
	FinalPowered int
}

// observeSLO books one counted sample against the configured
// response-time SLO (no-op when unset).
func (c *Cluster) observeSLO(response float64) {
	if c.cfg.SLOResponse <= 0 {
		return
	}
	c.sloN++
	if response <= c.cfg.SLOResponse {
		c.sloOK++
	}
}

// accrueNodeSeconds integrates powered-node time up to now. Call before
// every poweredCount change and once at the end of the run.
func (c *Cluster) accrueNodeSeconds(now float64) {
	if now > c.lastPowerAt {
		c.nodeSeconds += float64(c.poweredCount) * (now - c.lastPowerAt)
		c.lastPowerAt = now
	}
}

// setPowered flips one node's power state and recomputes the view (and,
// under sharding, the shard map epoch). Graceful: a node powering off
// keeps running what it holds.
func (c *Cluster) setPowered(node int, on bool) {
	if c.powered[node] == on {
		return
	}
	c.accrueNodeSeconds(c.eng.Now())
	c.powered[node] = on
	if on {
		c.poweredCount++
	} else {
		c.poweredCount--
	}
	c.recomputeView()
}

// nodeSpeed is the configured speed factor (1 when homogeneous).
func (c *Cluster) nodeSpeed(id int) float64 {
	if c.cfg.Speeds != nil {
		return c.cfg.Speeds[id]
	}
	return 1
}

// autoscaleTick is the controller loop body.
func (c *Cluster) autoscaleTick() {
	as := c.cfg.Autoscale
	now := c.eng.Now()

	// Harvest and reset the measurement window (the same estimators the
	// adaptive controller uses; the two are mutually exclusive).
	stat, dyn := c.winStatic, c.winDynamic
	doneH, doneC := c.winDoneH, c.winDoneC
	demH, demC := c.winDemandH, c.winDemandC
	c.winStatic, c.winDynamic = 0, 0
	c.winDoneH, c.winDoneC, c.winDemandH, c.winDemandC = 0, 0, 0, 0

	if stat == 0 || dyn == 0 || doneH == 0 || doneC == 0 {
		return // not enough signal this window
	}

	lambdaH := float64(stat) / as.Period
	lambdaC := float64(dyn) / as.Period
	muH := float64(doneH) / demH
	muC := float64(doneC) / demC

	// Offered load in erlangs → powered fleet size at the target
	// utilization, never below the structural floor or above the fleet.
	// When completions lag arrivals the fleet is burning down a backlog
	// the arrival rate alone cannot see; inflate the estimate by the
	// deficit ratio (capped — a single bad window must not demand the
	// whole fleet) so a flash crowd is answered within a period or two.
	offered := lambdaH/muH + lambdaC/muC
	if pressure := float64(stat+dyn) / float64(doneH+doneC); pressure > 1 {
		if pressure > 4 {
			pressure = 4
		}
		offered *= pressure
	}
	minPowered := as.MinM + as.minSlaves()
	if min := 1 + as.minSlaves(); minPowered < min {
		minPowered = min
	}
	target := int(offered/as.targetRho()) + 1
	if target < minPowered {
		target = minPowered
	}
	if target > c.cfg.Nodes {
		target = c.cfg.Nodes
	}

	// Theorem 1 on the powered fleet: how many of those nodes masters.
	m := c.roleMasters
	params := queuemodel.Params{
		P: target, LambdaH: lambdaH, LambdaC: lambdaC, MuH: muH, MuC: muC,
	}
	if plan, err := params.OptimalPlan(); err == nil {
		m = plan.M
	}
	if min := as.MinM; min > 0 && m < min {
		m = min
	}
	max := as.MaxM
	if max <= 0 {
		max = c.cfg.Nodes - 1
	}
	if m > max {
		m = max
	}
	if m > target-as.minSlaves() {
		m = target - as.minSlaves()
	}
	if m < 1 {
		m = 1
	}

	// Hold epochs gate only the shrink direction: a flash crowd must be
	// answered within a period, while giving capacity back can always
	// wait out the hold.
	held := now < c.asHoldUntil
	if m < c.roleMasters && held {
		m = c.roleMasters // demotion deferred
	}
	acted := false

	// Masters first: the role block 0..m−1 must be powered before the
	// view recomputes around it.
	for id := 0; id < m; id++ {
		if !c.powered[id] {
			c.setPowered(id, true)
			c.asStats.SlaveOns++
			acted = true
		}
	}
	if m != c.roleMasters {
		if m > c.roleMasters {
			c.asStats.Promotions += int64(m - c.roleMasters)
		} else {
			c.asStats.Demotions += int64(c.roleMasters - m)
		}
		c.setMasters(m)
		acted = true
	}

	// Then size the slave tier to the target total.
	if c.poweredCount > target && held {
		c.asStats.HeldTicks++
	} else if c.poweredCount > target {
		off := c.scaleDownOrder()
		for _, id := range off {
			if c.poweredCount <= target {
				break
			}
			c.setPowered(id, false)
			c.asStats.SlaveOffs++
			acted = true
		}
	} else if c.poweredCount < target {
		on := c.scaleUpOrder()
		for _, id := range on {
			if c.poweredCount >= target {
				break
			}
			c.setPowered(id, true)
			c.asStats.SlaveOns++
			acted = true
		}
	}

	// Hold-epoch hysteresis: an action opens a hold that doubles with
	// each acting tick; quiet ticks decay it back.
	if acted {
		c.asHoldUntil = now + c.asHold
		if c.asHold = 2 * c.asHold; c.asHold > as.holdMax() {
			c.asHold = as.holdMax()
		}
	} else if c.asHold > as.holdInitial() {
		c.asHold = c.asHold / 2
		if c.asHold < as.holdInitial() {
			c.asHold = as.holdInitial()
		}
	}
}

// scaleDownOrder lists powered slave-role nodes in switch-off order:
// the c/μ rule powers off the slowest first (least service rate per
// powered node), ties to the highest id. Deterministic by construction.
func (c *Cluster) scaleDownOrder() []int {
	var ids []int
	for id := c.roleMasters; id < c.cfg.Nodes; id++ {
		if c.powered[id] {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		si, sj := c.nodeSpeed(ids[i]), c.nodeSpeed(ids[j])
		if si != sj {
			return si < sj
		}
		return ids[i] > ids[j]
	})
	return ids
}

// scaleUpOrder mirrors scaleDownOrder: fastest unpowered node first,
// ties to the lowest id.
func (c *Cluster) scaleUpOrder() []int {
	var ids []int
	for id := c.roleMasters; id < c.cfg.Nodes; id++ {
		if !c.powered[id] {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		si, sj := c.nodeSpeed(ids[i]), c.nodeSpeed(ids[j])
		if si != sj {
			return si > sj
		}
		return ids[i] < ids[j]
	})
	return ids
}
