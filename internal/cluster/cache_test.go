package cluster

import (
	"testing"

	"msweb/internal/core"
	"msweb/internal/trace"
)

func TestCacheServesRepeatInvocations(t *testing.T) {
	tr := genTrace(t, trace.KSU, 300, 5000, 1.0/40, 31)
	cfg := DefaultConfig(6, 2)
	cfg.Cache = &CacheConfig{Capacity: 512, TTL: 60}
	res, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	st := res.CacheStats
	if st.Hits == 0 {
		t.Fatal("no cache hits on the KSU workload (70 percent cacheable)")
	}
	if st.Inserts == 0 {
		t.Fatal("no inserts recorded")
	}
	if res.Summary.Count != 5000 {
		t.Fatalf("completed %d/5000 with caching", res.Summary.Count)
	}
	// Hits are sampled under the "cached" class.
	if _, ok := res.Summary.ByClass["cached"]; !ok {
		t.Fatal("no cached-class samples recorded")
	}
}

func TestCacheImprovesPerformance(t *testing.T) {
	tr := genTrace(t, trace.KSU, 450, 7000, 1.0/40, 32)
	base := DefaultConfig(6, 2)
	base.WarmupFraction = 0.1
	noCacheRes, err := Simulate(base, core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	cached := base
	cached.Cache = &CacheConfig{Capacity: 1024, TTL: 120}
	cachedRes, err := Simulate(cached, core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	// Offloading repeated CGIs must reduce the mean response time of
	// the remaining dynamics (less contention) — compare dynamic-class
	// means, which exclude the trivially-fast cached responses.
	baseDyn := noCacheRes.Summary.ByClass["dynamic"].MeanResponse
	cachedDyn := cachedRes.Summary.ByClass["dynamic"].MeanResponse
	if cachedDyn >= baseDyn {
		t.Fatalf("cache did not relieve dynamics: %.4fs vs %.4fs", cachedDyn, baseDyn)
	}
}

func TestCacheDisabledForUncacheableProfile(t *testing.T) {
	// UCB generates unique documents (CacheableFrac 0): a cache must
	// see zero hits.
	tr := genTrace(t, trace.UCB, 300, 3000, 1.0/40, 33)
	cfg := DefaultConfig(6, 2)
	cfg.Cache = &CacheConfig{Capacity: 512, TTL: 60}
	res, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheStats.Hits != 0 || res.CacheStats.Inserts != 0 {
		t.Fatalf("UCB workload touched the cache: %+v", res.CacheStats)
	}
}

func TestCacheConfigValidation(t *testing.T) {
	cfg := DefaultConfig(4, 1)
	cfg.Cache = &CacheConfig{Capacity: 0, TTL: 10}
	if cfg.Validate() == nil {
		t.Fatal("zero-capacity cache accepted")
	}
	cfg.Cache = &CacheConfig{Capacity: 10, TTL: 0}
	if cfg.Validate() == nil {
		t.Fatal("zero-TTL cache accepted")
	}
	cfg.Cache = &CacheConfig{Capacity: 10, TTL: 10, HitDemand: -1}
	if cfg.Validate() == nil {
		t.Fatal("negative hit demand accepted")
	}
}

func TestGeneratedParamsFollowProfile(t *testing.T) {
	tr := genTrace(t, trace.KSU, 300, 8000, 1.0/40, 34)
	cacheable, dynamics := 0, 0
	for _, r := range tr.Requests {
		if r.Class != trace.Dynamic {
			if r.Param != 0 {
				t.Fatal("static request carries a cache parameter")
			}
			continue
		}
		dynamics++
		if r.Param != 0 {
			cacheable++
			if r.Param < 1 || r.Param > int64(trace.KSU.ParamCardinality) {
				t.Fatalf("param %d outside cardinality", r.Param)
			}
		}
	}
	frac := float64(cacheable) / float64(dynamics)
	if frac < 0.6 || frac > 0.8 {
		t.Fatalf("cacheable fraction %.2f, profile wants 0.7", frac)
	}
}
