package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"msweb/internal/core"
	"msweb/internal/obs"
	"msweb/internal/queuemodel"
	"msweb/internal/sim"
	"msweb/internal/trace"
)

func genTrace(t *testing.T, p trace.Profile, lambda float64, n int, r float64, seed int64) *trace.Trace {
	t.Helper()
	tr, err := trace.Generate(trace.GenConfig{
		Profile: p, Lambda: lambda, Requests: n, MuH: 1200, R: r, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(8, 2)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.Masters = 0 },
		func(c *Config) { c.Masters = 99 },
		func(c *Config) { c.LoadRefresh = 0 },
		func(c *Config) { c.PolicyTick = 0 },
		func(c *Config) { c.RemoteLatency = -1 },
		func(c *Config) { c.WarmupFraction = 1 },
		func(c *Config) { c.Speeds = []float64{1} },
		func(c *Config) { c.Adaptive = &AdaptiveMasters{Period: 0} },
		func(c *Config) { c.OS.CPUQuantum = 0 },
	}
	for i, mutate := range cases {
		c := DefaultConfig(8, 2)
		mutate(&c)
		if c.Validate() == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestLightLoadStretchNearOne(t *testing.T) {
	// A nearly idle cluster must not stretch anything appreciably.
	tr := genTrace(t, trace.KSU, 20, 400, 1.0/40, 1)
	res, err := Simulate(DefaultConfig(4, 2), core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	// Fork (3 ms) and remote latency (1 ms) are part of response but
	// not demand, so idle stretch sits slightly above 1.
	if res.StretchFactor < 1 || res.StretchFactor > 2.5 {
		t.Fatalf("idle-cluster stretch = %v, want ≈ 1", res.StretchFactor)
	}
	if res.Summary.Count != 400 {
		t.Fatalf("counted %d samples, want 400", res.Summary.Count)
	}
}

// Cross-validation promised in DESIGN.md: a single-node, CPU-only,
// exponential workload approximates an M/M/1 processor-sharing queue,
// so the measured stretch must be near 1/(1−ρ).
func TestSingleNodeMatchesMM1(t *testing.T) {
	profile := trace.Profile{
		Name: "mm1", DynamicFrac: 1.0, CPUWeight: 0.99, CPUWeightSD: 0,
		MeanHTMLSize: 1000, MeanCGISize: 1000, NumScripts: 1, MemPagesMean: 0,
	}
	// All-dynamic, CPU-bound: μ_c = r·μ_h = 60/s. λ = 42 → ρ = 0.7.
	// Deterministic demands: PS response is insensitive to the size
	// distribution, and round-robin over equal-size jobs approximates
	// PS, whereas the MLFQ treats exponential sizes as feedback (LAS)
	// scheduling, which has a different slowdown profile.
	tr, err := trace.Generate(trace.GenConfig{
		Profile: profile, Lambda: 42, Requests: 12000, MuH: 1200, R: 1.0 / 20, Seed: 7,
		Demand: trace.DeterministicDemand,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(quantum float64) float64 {
		cfg := DefaultConfig(1, 1)
		cfg.OS.ForkOverhead = 0 // isolate queueing from constant overheads
		cfg.OS.ContextSwitch = 0
		cfg.OS.CPUQuantum = quantum
		cfg.WarmupFraction = 0.1
		res, err := Simulate(cfg, core.NewFlat(), tr)
		if err != nil {
			t.Fatal(err)
		}
		return res.StretchFactor
	}
	// The MLFQ is a feedback discipline, so it brackets the PS
	// prediction 1/(1−ρ): with a quantum comparable to the job size it
	// leans FCFS (stretch below PS); with a fine quantum it leans LAS
	// (stretch above PS for deterministic sizes). Both must stay in the
	// same regime as the analytic value — this is the promised
	// simulator-vs-queueing-model cross-check.
	ps := 1 / (1 - 0.7) // ≈ 3.33
	coarse := run(0.010)
	fine := run(0.001)
	if coarse > ps+0.4 || coarse < 1.5 {
		t.Fatalf("coarse-quantum stretch %v outside (1.5, PS+0.4=%v)", coarse, ps+0.4)
	}
	if fine < ps-0.4 || fine > 2.5*ps {
		t.Fatalf("fine-quantum stretch %v outside (PS-0.4=%v, 2.5·PS)", fine, ps-0.4)
	}
	if !(coarse <= fine) {
		t.Fatalf("quantum refinement should move FCFS→LAS: coarse=%v fine=%v", coarse, fine)
	}
}

func TestStaticsNeverLeaveMasters(t *testing.T) {
	tr := genTrace(t, trace.KSU, 300, 3000, 1.0/40, 2)
	eng := sim.NewEngine()
	cfg := DefaultConfig(6, 2)
	c, err := New(eng, cfg, core.NewMS(core.SampleW(tr, 16), 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Slaves (nodes 2..5) must have executed no static work: their
	// submissions equal dynamic placements off-master plus master ones.
	var slaveSubmitted uint64
	for i := 2; i < 6; i++ {
		slaveSubmitted += res.NodeStats[i].Submitted
	}
	slaveDyn := uint64(res.TotalDynamics) - uint64(res.MasterDynamics)
	if slaveSubmitted != slaveDyn {
		t.Fatalf("slaves ran %d jobs but only %d dynamics were placed there (statics leaked)",
			slaveSubmitted, slaveDyn)
	}
	// Every slave-executed dynamic is remote; master-executed ones may
	// or may not be (master-to-master).
	if res.RemoteDynamics < int64(slaveDyn) {
		t.Fatalf("remote count %d < slave dynamics %d", res.RemoteDynamics, slaveDyn)
	}
}

func TestReservationBoundsMasterDynamics(t *testing.T) {
	tr := genTrace(t, trace.ADL, 400, 6000, 1.0/40, 3)
	cfg := DefaultConfig(8, 2)
	res, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDynamics == 0 {
		t.Fatal("trace had no dynamics")
	}
	frac := float64(res.MasterDynamics) / float64(res.TotalDynamics)
	// θ₂ with m/p = 0.25 is at most 0.25 + slack; the long-run placed
	// fraction must respect the cap loosely (the controller decays its
	// window, so allow slack).
	if frac > 0.4 {
		t.Fatalf("%.0f%% of dynamics ran at masters despite reservation", frac*100)
	}
}

func TestMSNrOverloadsMastersComparatively(t *testing.T) {
	tr := genTrace(t, trace.ADL, 400, 6000, 1.0/40, 3)
	cfg := DefaultConfig(8, 2)
	ms, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	nr, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 1, core.WithoutReservation(), core.WithName("M/S-nr")), tr)
	if err != nil {
		t.Fatal(err)
	}
	fracMS := float64(ms.MasterDynamics) / float64(ms.TotalDynamics)
	fracNR := float64(nr.MasterDynamics) / float64(nr.TotalDynamics)
	if fracNR <= fracMS {
		t.Fatalf("M/S-nr placed fewer dynamics at masters (%.2f) than M/S (%.2f)", fracNR, fracMS)
	}
}

func TestFlatUsesAllNodes(t *testing.T) {
	tr := genTrace(t, trace.UCB, 400, 4000, 1.0/40, 4)
	cfg := DefaultConfig(8, 8) // flat: every node a master
	res, err := Simulate(cfg, core.NewFlat(), tr)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range res.NodeStats {
		if st.Submitted == 0 {
			t.Fatalf("flat left node %d idle", i)
		}
	}
	if res.RemoteDynamics != 0 {
		t.Fatalf("flat redirected %d requests", res.RemoteDynamics)
	}
}

func TestDeterminism(t *testing.T) {
	tr := genTrace(t, trace.KSU, 300, 2000, 1.0/40, 5)
	run := func() float64 {
		res, err := Simulate(DefaultConfig(6, 2), core.NewMS(core.SampleW(tr, 16), 42), tr)
		if err != nil {
			t.Fatal(err)
		}
		return res.StretchFactor
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different stretch: %v vs %v", a, b)
	}
}

func TestWarmupDropsEarlySamples(t *testing.T) {
	tr := genTrace(t, trace.KSU, 300, 2000, 1.0/40, 6)
	cfg := DefaultConfig(6, 2)
	cfg.WarmupFraction = 0.5
	res, err := Simulate(cfg, core.NewMS(nil, 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Count >= 2000 || res.Summary.Count == 0 {
		t.Fatalf("warmup kept %d samples of 2000", res.Summary.Count)
	}
}

func TestAdaptiveMastersReconfigures(t *testing.T) {
	// Heavily dynamic workload on a cluster misconfigured with too many
	// masters: the adaptor must shrink the master tier.
	tr := genTrace(t, trace.ADL, 400, 8000, 1.0/40, 7)
	cfg := DefaultConfig(8, 6)
	cfg.Adaptive = &AdaptiveMasters{Period: 2.0}
	res, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MasterHistory) < 2 {
		t.Fatalf("adaptation never fired: history %v", res.MasterHistory)
	}
	if res.FinalMasters >= 6 {
		t.Fatalf("adaptor kept %d masters for a CGI-heavy load", res.FinalMasters)
	}
}

func TestHeterogeneousSpeeds(t *testing.T) {
	tr := genTrace(t, trace.UCB, 300, 3000, 1.0/40, 8)
	cfg := DefaultConfig(4, 1)
	cfg.Speeds = []float64{1, 1, 1, 4} // node 3 is 4x faster
	res, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	// The fast node must attract more CPU-bound CGI work than the slow
	// slaves.
	slow := res.NodeStats[1].Submitted + res.NodeStats[2].Submitted
	fast := res.NodeStats[3].Submitted
	if fast*2 < slow {
		t.Fatalf("fast node got %d jobs vs %d on two slow slaves", fast, slow)
	}
}

func TestRunRejectsInvalidTrace(t *testing.T) {
	bad := &trace.Trace{Name: "bad", Requests: []trace.Request{
		{Arrival: 5}, {Arrival: 1},
	}}
	_, err := Simulate(DefaultConfig(2, 1), core.NewFlat(), bad)
	if err == nil {
		t.Fatal("invalid trace accepted")
	}
}

func TestEmptyTraceRuns(t *testing.T) {
	res, err := Simulate(DefaultConfig(2, 1), core.NewFlat(), &trace.Trace{Name: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Count != 0 || res.StretchFactor != 1 {
		t.Fatalf("empty run: %+v", res.Summary)
	}
}

func TestAllRequestsComplete(t *testing.T) {
	tr := genTrace(t, trace.ADL, 500, 5000, 1.0/80, 9)
	res, err := Simulate(DefaultConfig(8, 2), core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	var submitted, completed uint64
	for _, st := range res.NodeStats {
		submitted += st.Submitted
		completed += st.Completed
	}
	if submitted != 5000 || completed != 5000 {
		t.Fatalf("conservation: submitted=%d completed=%d want 5000", submitted, completed)
	}
}

func TestSeparationBeatsMixingUnderCGILoad(t *testing.T) {
	// The core qualitative claim: for a CGI-heavy workload at moderate
	// load, M/S (separated tiers, with m chosen by Theorem 1) yields a
	// lower stretch factor than the flat architecture. A mis-sized
	// master tier saturates the slaves — choosing m is the point of
	// the paper's analytic model, so the test uses it.
	tr := genTrace(t, trace.ADL, 380, 9000, 1.0/40, 10)
	plan, err := queuemodel.NewParams(8, 380, trace.ADL.ArrivalRatio(), 1200, 1.0/40).OptimalPlan()
	if err != nil {
		t.Fatal(err)
	}
	msCfg := DefaultConfig(8, plan.M)
	msCfg.WarmupFraction = 0.1
	ms, err := Simulate(msCfg, core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	flatCfg := DefaultConfig(8, 8)
	flatCfg.WarmupFraction = 0.1
	flat, err := Simulate(flatCfg, core.NewFlat(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if ms.StretchFactor >= flat.StretchFactor {
		t.Fatalf("M/S stretch %v not better than flat %v", ms.StretchFactor, flat.StretchFactor)
	}
}

// newClusterForTest builds an engine+cluster pair for white-box tests.
func newClusterForTest(t *testing.T, cfg Config) (*sim.Engine, *Cluster) {
	t.Helper()
	eng := sim.NewEngine()
	c, err := New(eng, cfg, core.NewMS(nil, 1))
	if err != nil {
		t.Fatal(err)
	}
	return eng, c
}

func TestNodeUtilizationReported(t *testing.T) {
	tr := genTrace(t, trace.KSU, 400, 4000, 1.0/40, 61)
	res, err := Simulate(DefaultConfig(6, 2), core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodeUtilization) != 6 {
		t.Fatalf("%d utilization entries", len(res.NodeUtilization))
	}
	busyAny := false
	for i, u := range res.NodeUtilization {
		if u.CPU < 0 || u.CPU > 1 || u.Disk < 0 || u.Disk > 1 {
			t.Fatalf("node %d utilization out of range: %+v", i, u)
		}
		if u.CPU > 0.01 {
			busyAny = true
		}
	}
	if !busyAny {
		t.Fatal("no node shows CPU activity")
	}
}

// Metamorphic check: doubling both the cluster and the offered load
// keeps the stretch factor in the same regime (per-node utilization is
// invariant; only statistical multiplexing improves slightly).
func TestScaleInvariance(t *testing.T) {
	run := func(p int, lambda float64) float64 {
		tr := genTrace(t, trace.KSU, lambda, 8000, 1.0/40, 62)
		plan, err := queuemodel.NewParams(p, lambda, trace.KSU.ArrivalRatio(), 1200, 1.0/40).OptimalPlan()
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(p, plan.M)
		cfg.WarmupFraction = 0.1
		res, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 1), tr)
		if err != nil {
			t.Fatal(err)
		}
		return res.StretchFactor
	}
	small := run(8, 500)
	big := run(16, 1000)
	ratio := big / small
	if ratio < 0.4 || ratio > 1.6 {
		t.Fatalf("scale invariance broken: p=8 SF %v vs p=16 SF %v", small, big)
	}
}

func TestTracedRunEmitsFullLifecycles(t *testing.T) {
	tr := genTrace(t, trace.KSU, 100, 200, 1.0/40, 3)
	var buf bytes.Buffer
	jt := obs.NewJSONL(&buf)
	cfg := DefaultConfig(4, 2)
	cfg.Tracer = jt
	res, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := jt.Flush(); err != nil {
		t.Fatal(err)
	}
	if res.Summary.Count == 0 {
		t.Fatal("no samples")
	}

	// Every line is JSON; requests follow arrival → decision → dispatch
	// → phases → complete, and every arrival eventually completes.
	kinds := map[int64][]string{}
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev struct {
			Ev  string `json:"ev"`
			Req int64  `json:"req"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
		}
		if ev.Req == 0 {
			t.Fatalf("line %d missing req id: %s", i, line)
		}
		kinds[ev.Req] = append(kinds[ev.Req], ev.Ev)
	}
	if len(kinds) != 200 {
		t.Fatalf("traced %d requests, want 200", len(kinds))
	}
	for req, ks := range kinds {
		if ks[0] != "arrival" {
			t.Fatalf("req %d starts with %q", req, ks[0])
		}
		if ks[len(ks)-1] != "complete" {
			t.Fatalf("req %d ends with %q", req, ks[len(ks)-1])
		}
		var sawDispatch bool
		for _, k := range ks {
			if k == "dispatch" {
				sawDispatch = true
			}
		}
		if !sawDispatch {
			t.Fatalf("req %d never dispatched: %v", req, ks)
		}
	}
}

func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	tr := genTrace(t, trace.KSU, 100, 300, 1.0/40, 5)
	run := func(traced bool) *Result {
		cfg := DefaultConfig(4, 2)
		if traced {
			cfg.Tracer = obs.NewJSONL(io.Discard)
		}
		res, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 1), tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, traced := run(false), run(true)
	if plain.StretchFactor != traced.StretchFactor || plain.Events != traced.Events {
		t.Fatalf("tracing changed the simulation: %v/%d vs %v/%d",
			plain.StretchFactor, plain.Events, traced.StretchFactor, traced.Events)
	}
}
