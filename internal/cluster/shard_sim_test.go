package cluster

import (
	"testing"

	"msweb/internal/core"
	"msweb/internal/trace"
)

func TestShardedConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Shards = 3 }, // != masters
		func(c *Config) { c.SLOResponse = -1 },
		func(c *Config) { c.Autoscale = &Autoscale{} }, // period unset
		func(c *Config) {
			c.Autoscale = &Autoscale{Period: 1}
			c.Adaptive = &AdaptiveMasters{Period: 1}
		},
		func(c *Config) { c.Shards = 2; c.GossipEvery = -1 },
		func(c *Config) { c.Shards = 2; c.ShardMapMode = "bogus" },
	}
	for i, mutate := range cases {
		c := DefaultConfig(8, 2)
		mutate(&c)
		if c.Validate() == nil && i != 5 {
			t.Fatalf("case %d: invalid sharded config accepted", i)
		}
		if i == 5 {
			// The bad map mode surfaces at New (the map constructor owns
			// mode validation), not Validate.
			tr := genTrace(t, trace.KSU, 20, 50, 1.0/40, 1)
			if _, err := Simulate(c, core.NewMS(nil, 1), tr); err == nil {
				t.Fatal("unknown shard map mode accepted")
			}
		}
	}
}

// Sharding must not cost determinism: identical trace and seed produce
// identical placements, stretch and shard accounting.
func TestShardedDeterminism(t *testing.T) {
	tr := genTrace(t, trace.KSU, 300, 2000, 1.0/40, 5)
	run := func() (float64, ShardStats) {
		cfg := DefaultConfig(12, 4)
		cfg.Shards = 4
		res, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 42), tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Shards == nil {
			t.Fatal("sharded run reported no shard stats")
		}
		return res.StretchFactor, *res.Shards
	}
	sf1, st1 := run()
	sf2, st2 := run()
	st1.Spilled, st2.Spilled = 0, 0 // compare whole structs field-wise
	if sf1 != sf2 || st1 != st2 {
		t.Fatalf("same seed diverged: SF %v vs %v, stats %+v vs %+v", sf1, sf2, st1, st2)
	}
}

// The O(shard) claim, exactly: with a static equal partition each
// master's per-tick poll work is its shard plus itself, independent of
// what the whole fleet's size would cost a global view.
func TestShardedPollWorkIsShardSized(t *testing.T) {
	tr := genTrace(t, trace.KSU, 100, 500, 1.0/40, 3)
	cfg := DefaultConfig(40, 4)
	cfg.Shards = 4
	cfg.ShardMapMode = core.ShardStatic
	res, err := Simulate(cfg, core.NewMS(nil, 7), tr)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Shards
	if st == nil {
		t.Fatal("no shard stats")
	}
	// 36 slaves over 4 static shards: 9 members + 1 self-sample each.
	if st.NodesPolledPerTick != 10 {
		t.Fatalf("polled/tick = %v, want exactly 10 (shard 9 + self)", st.NodesPolledPerTick)
	}
	if st.MaxShardSize != 9 {
		t.Fatalf("max shard %d, want 9", st.MaxShardSize)
	}
	if st.MeanSummaryAge < 0 {
		t.Fatalf("summary age %v, want ≥ 0 once gossip ran", st.MeanSummaryAge)
	}
	// An unsharded run reports no shard stats at all.
	res2, err := Simulate(DefaultConfig(40, 4), core.NewMS(nil, 7), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Shards != nil {
		t.Fatal("unsharded run reported shard stats")
	}
}

// A master whose shard came up empty spills its dynamics onto fresh
// remote digests instead of shedding them — and every shed that does
// happen is accounted as a spill with no fresh candidate.
func TestShardedSpillFromEmptyShard(t *testing.T) {
	// 6 nodes, 4 masters, static map over 2 slaves: shards 2 and 3 are
	// empty, so their masters must go cross-shard for every dynamic the
	// absorption gate refuses.
	tr := genTrace(t, trace.KSU, 400, 3000, 1.0/40, 9)
	cfg := DefaultConfig(6, 4)
	cfg.Shards = 4
	cfg.ShardMapMode = core.ShardStatic
	cfg.EnableShedding = true
	res, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 11), tr)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Shards
	if st == nil {
		t.Fatal("no shard stats")
	}
	if st.Spilled == 0 {
		t.Fatal("empty-shard masters never spilled under load")
	}
	// Sharded sheds and spill-sheds are the same events, counted by both
	// the cluster-wide and the shard-local counters.
	if st.SpillShed != res.Shed {
		t.Fatalf("spill_shed=%d but shed=%d: a sharded shed must mean no fresh candidate", st.SpillShed, res.Shed)
	}
	if res.Summary.Count == 0 {
		t.Fatal("no samples survived — the spilled requests never completed")
	}
}
