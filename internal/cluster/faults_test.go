package cluster

import (
	"testing"

	"msweb/internal/core"
	"msweb/internal/trace"
)

func TestSlaveFailureRestartsWork(t *testing.T) {
	tr := genTrace(t, trace.ADL, 300, 4000, 1.0/40, 21)
	cfg := DefaultConfig(6, 2)
	// Slave 5 dies mid-run and never returns.
	cfg.Events = []AvailabilityEvent{{Node: 5, At: 3.0, Available: false}}
	res, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	// Every request must still complete exactly once.
	if res.Summary.Count != 4000 {
		t.Fatalf("completed %d/4000 requests after a slave failure", res.Summary.Count)
	}
	if res.Failovers == 0 {
		t.Fatal("no failovers recorded despite a mid-run crash")
	}
	// The dead node must process nothing after the crash: its submit
	// count stays below what an even share would be.
	if res.NodeStats[5].Completed+res.NodeStats[5].Aborted != res.NodeStats[5].Submitted {
		t.Fatalf("node 5 conservation broken: %+v", res.NodeStats[5])
	}
}

func TestMasterFailurePromotesReplacement(t *testing.T) {
	tr := genTrace(t, trace.KSU, 200, 2500, 1.0/40, 22)
	cfg := DefaultConfig(4, 1)
	// The only master crashes at t=2 and returns at t=6.
	cfg.Events = []AvailabilityEvent{
		{Node: 0, At: 2.0, Available: false},
		{Node: 0, At: 6.0, Available: true},
	}
	res, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Count != 2500 {
		t.Fatalf("completed %d/2500 with a master outage", res.Summary.Count)
	}
	// The promoted node (1) must have served static requests while the
	// master was down.
	if res.NodeStats[1].Submitted == 0 {
		t.Fatal("no replacement master took over")
	}
}

func TestRecruitmentAddsCapacity(t *testing.T) {
	tr := genTrace(t, trace.ADL, 350, 6000, 1.0/40, 23)
	base := DefaultConfig(8, 2)
	// Nodes 6 and 7 are non-dedicated: absent in the baseline run,
	// recruited at t=1 in the recruited run.
	baseline := base
	baseline.InitiallyDown = []int{6, 7}
	resBase, err := Simulate(baseline, core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	recruited := base
	recruited.InitiallyDown = []int{6, 7}
	recruited.Events = []AvailabilityEvent{
		{Node: 6, At: 1.0, Available: true},
		{Node: 7, At: 1.0, Available: true},
	}
	resRec, err := Simulate(recruited, core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	if resRec.Summary.Count != 6000 || resBase.Summary.Count != 6000 {
		t.Fatal("runs incomplete")
	}
	// Recruited nodes must actually absorb work...
	if resRec.NodeStats[6].Submitted == 0 || resRec.NodeStats[7].Submitted == 0 {
		t.Fatal("recruited nodes stayed idle")
	}
	// ...and the extra capacity must improve the stretch factor.
	if resRec.StretchFactor >= resBase.StretchFactor {
		t.Fatalf("recruitment did not help: %v vs %v", resRec.StretchFactor, resBase.StretchFactor)
	}
}

func TestFailureDuringDispatchLatencyWindow(t *testing.T) {
	// Crash a slave at many instants; the dispatch-window race (target
	// fails between Place and Submit) must never lose a request.
	tr := genTrace(t, trace.ADL, 300, 3000, 1.0/40, 24)
	cfg := DefaultConfig(4, 1)
	var events []AvailabilityEvent
	for i := 0; i < 20; i++ {
		at := 0.5 * float64(i+1)
		events = append(events,
			AvailabilityEvent{Node: 3, At: at, Available: i%2 == 1})
	}
	cfg.Events = events
	res, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Count != 3000 {
		t.Fatalf("flapping slave lost requests: %d/3000", res.Summary.Count)
	}
}

func TestEventValidation(t *testing.T) {
	cfg := DefaultConfig(4, 1)
	cfg.Events = []AvailabilityEvent{{Node: 9, At: 1, Available: false}}
	if cfg.Validate() == nil {
		t.Fatal("out-of-range event node accepted")
	}
	cfg = DefaultConfig(4, 1)
	cfg.Events = []AvailabilityEvent{{Node: 1, At: -1, Available: false}}
	if cfg.Validate() == nil {
		t.Fatal("negative event time accepted")
	}
	cfg = DefaultConfig(4, 1)
	cfg.InitiallyDown = []int{4}
	if cfg.Validate() == nil {
		t.Fatal("out-of-range initially-down node accepted")
	}
	cfg = DefaultConfig(4, 1)
	cfg.RetryDelay = -1
	if cfg.Validate() == nil {
		t.Fatal("negative retry delay accepted")
	}
}

func TestAvailableAccessor(t *testing.T) {
	tr := genTrace(t, trace.KSU, 100, 200, 1.0/40, 25)
	cfg := DefaultConfig(3, 1)
	cfg.InitiallyDown = []int{2}
	eng, c := newClusterForTest(t, cfg)
	if c.Available(2) {
		t.Fatal("initially-down node reported available")
	}
	if !c.Available(0) || !c.Available(1) {
		t.Fatal("up nodes reported unavailable")
	}
	if c.Available(-1) || c.Available(99) {
		t.Fatal("out-of-range ids reported available")
	}
	if _, err := c.Run(tr); err != nil {
		t.Fatal(err)
	}
	_ = eng
}

func TestClusterAffinityEndToEnd(t *testing.T) {
	// All dynamics of every script are pinned to node 3; every fork in
	// the run must land there.
	tr := genTrace(t, trace.KSU, 150, 1500, 1.0/40, 26)
	cfg := DefaultConfig(4, 1)
	cfg.Affinity = core.ScriptAffinity{}
	for s := 1; s <= trace.KSU.NumScripts; s++ {
		cfg.Affinity[s] = []int{3}
	}
	res, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range res.NodeStats {
		if i == 3 {
			if st.Forks != uint64(res.TotalDynamics) {
				t.Fatalf("pinned node ran %d forks of %d dynamics", st.Forks, res.TotalDynamics)
			}
		} else if st.Forks != 0 {
			t.Fatalf("node %d ran %d forks despite the pin", i, st.Forks)
		}
	}
}

func TestClusterAffinityValidation(t *testing.T) {
	cfg := DefaultConfig(4, 1)
	cfg.Affinity = core.ScriptAffinity{1: {7}}
	if cfg.Validate() == nil {
		t.Fatal("affinity naming a missing node accepted")
	}
}
