package cluster

import (
	"testing"

	"msweb/internal/core"
	"msweb/internal/trace"
)

// A sharded cluster must survive node churn: every availability event
// rebalances the shard map onto a new epoch, nothing is lost or doubly
// executed, and the whole sequence is deterministic.
func TestShardedChurnReshardsAndLosesNothing(t *testing.T) {
	tr := genTrace(t, trace.KSU, 700, 8000, 1.0/20, 31)
	run := func() (float64, ShardStats, int64) {
		cfg := DefaultConfig(8, 2)
		cfg.Shards = 2
		cfg.Events = []AvailabilityEvent{
			{Node: 1, At: 2.0, Available: false}, // a master dies
			{Node: 6, At: 3.0, Available: false}, // a slave dies
			{Node: 1, At: 5.0, Available: true},  // the master rejoins
			{Node: 6, At: 6.5, Available: true},  // the slave rejoins
		}
		res, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 42), tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.Count != 8000 {
			t.Fatalf("completed %d/8000 requests across epoch changes", res.Summary.Count)
		}
		if res.Shards == nil {
			t.Fatal("no shard stats")
		}
		return res.StretchFactor, *res.Shards, res.Failovers
	}
	sf1, st1, fo1 := run()
	if st1.EpochChanges < 4 {
		t.Fatalf("epoch changes %d, want ≥ 4 (one per availability event)", st1.EpochChanges)
	}
	if st1.Epoch != uint64(st1.EpochChanges) {
		t.Fatalf("final epoch %d vs %d changes: every reshard must bump exactly once", st1.Epoch, st1.EpochChanges)
	}
	if fo1 == 0 {
		t.Fatal("no failovers despite mid-run crashes")
	}
	// With the hash ring, the two crash/rejoin pairs must have moved
	// strictly fewer slaves than full remaps would (4 events × 6 slaves).
	if st1.MovedNodes <= 0 || st1.MovedNodes >= 24 {
		t.Fatalf("moved %d slaves over 4 reshards; consistent hashing should move a fraction", st1.MovedNodes)
	}
	sf2, st2, fo2 := run()
	st1.Spilled, st2.Spilled = 0, 0
	if sf1 != sf2 || st1 != st2 || fo1 != fo2 {
		t.Fatalf("churn run diverged: SF %v vs %v, %+v vs %+v", sf1, sf2, st1, st2)
	}
}

// Sharded + EnableShedding + churn: the terminal-outcome ledger must
// still balance — every request is served, shed, or restarted-and-served,
// never silently dropped (Run itself enforces completion; this pins the
// shed accounting on top).
func TestShardedChurnShedLedger(t *testing.T) {
	tr := genTrace(t, trace.KSU, 500, 4000, 1.0/40, 33)
	cfg := DefaultConfig(6, 3)
	cfg.Shards = 3
	cfg.EnableShedding = true
	cfg.Events = []AvailabilityEvent{
		{Node: 4, At: 1.5, Available: false},
		{Node: 5, At: 2.0, Available: false},
		{Node: 4, At: 4.0, Available: true},
		{Node: 5, At: 4.5, Available: true},
	}
	res, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 7), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards.EpochChanges < 4 {
		t.Fatalf("epoch changes %d, want ≥ 4", res.Shards.EpochChanges)
	}
	if int64(res.Summary.Count)+res.Shed != 4000 {
		t.Fatalf("ledger broken: %d sampled + %d shed != 4000", res.Summary.Count, res.Shed)
	}
	if res.Shards.SpillShed != res.Shed {
		t.Fatalf("spill_shed=%d shed=%d: sharded sheds must all be spill misses", res.Shards.SpillShed, res.Shed)
	}
}

func autoscaleTrace(t *testing.T, n int, seed int64) *trace.Trace {
	t.Helper()
	tr, err := trace.Generate(trace.GenConfig{
		Profile: trace.KSU, Lambda: 300, Requests: n, MuH: 1200, R: 1.0 / 40,
		Arrival: trace.DiurnalArrivals, DiurnalPeriod: 20, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// The autoscaler must power slaves down through the diurnal trough and
// back up for the peak, spending fewer node-hours than the fixed fleet
// while completing every request — deterministically.
func TestAutoscaleSavesNodeHours(t *testing.T) {
	tr := autoscaleTrace(t, 12000, 51)
	fixed := DefaultConfig(12, 2)
	fixed.SLOResponse = 2.0
	resFixed, err := Simulate(fixed, core.NewMS(core.SampleW(tr, 16), 9), tr)
	if err != nil {
		t.Fatal(err)
	}

	run := func() *Result {
		cfg := DefaultConfig(12, 2)
		cfg.SLOResponse = 2.0
		cfg.Autoscale = &Autoscale{Period: 1.0, MinM: 1, MaxM: 4}
		res, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 9), tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.Summary.Count != 12000 {
		t.Fatalf("autoscaled run completed %d/12000", res.Summary.Count)
	}
	if res.Autoscale == nil {
		t.Fatal("no autoscale stats")
	}
	if res.Autoscale.SlaveOffs == 0 {
		t.Fatal("autoscaler never powered a node off through the trough")
	}
	if res.NodeHours >= resFixed.NodeHours {
		t.Fatalf("autoscale node-hours %.4f not below fixed %.4f", res.NodeHours, resFixed.NodeHours)
	}
	if resFixed.NodeHours == 0 || resFixed.SLOCount == 0 {
		t.Fatal("fixed baseline reported no node-hours or SLO samples")
	}

	res2 := run()
	if res.NodeHours != res2.NodeHours || *res.Autoscale != *res2.Autoscale ||
		res.StretchFactor != res2.StretchFactor || res.SLOAttainment != res2.SLOAttainment {
		t.Fatalf("autoscale diverged: %.6f/%.6f vs %.6f/%.6f, %+v vs %+v",
			res.NodeHours, res.StretchFactor, res2.NodeHours, res2.StretchFactor,
			res.Autoscale, res2.Autoscale)
	}
}

// Autoscaling composes with sharding: master-count changes and power
// transitions rebalance the epoch-versioned map, and the run stays
// deterministic and lossless.
func TestAutoscaleUnderSharding(t *testing.T) {
	tr := autoscaleTrace(t, 8000, 52)
	run := func() *Result {
		cfg := DefaultConfig(10, 2)
		cfg.Shards = 2
		cfg.SLOResponse = 2.0
		cfg.Autoscale = &Autoscale{Period: 1.0, MinM: 1, MaxM: 4}
		res, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 13), tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.Summary.Count != 8000 {
		t.Fatalf("completed %d/8000 under autoscaled sharding", res.Summary.Count)
	}
	if res.Shards == nil || res.Autoscale == nil {
		t.Fatal("missing shard or autoscale stats")
	}
	if res.Autoscale.SlaveOffs > 0 && res.Shards.EpochChanges == 0 {
		t.Fatal("power transitions did not rebalance the shard map")
	}
	res2 := run()
	if res.StretchFactor != res2.StretchFactor || res.Shards.Epoch != res2.Shards.Epoch ||
		*res.Autoscale != *res2.Autoscale {
		t.Fatalf("sharded autoscale diverged: %+v vs %+v", res.Shards, res2.Shards)
	}
}
