package cluster

// Closed-loop session driving. The paper's replay methodology is
// open-loop: requests arrive on the trace's schedule regardless of how
// slowly the cluster responds, so an overloaded system's queues grow
// without bound. Real users are closed-loop — a browsing session does
// not issue its next request until the previous response arrived — and
// overload manifests as throughput ceiling and longer sessions instead
// of unbounded queues. RunClosedLoop drives the same simulated cluster
// with workload.Sessions so both methodologies can be compared on
// identical hardware and policies.

import (
	"fmt"

	"msweb/internal/workload"
)

// RunClosedLoop executes the sessions to completion and returns the
// usual result summary. Every request is counted (sessions have no
// trace span for the warmup fraction to apply to).
func (c *Cluster) RunClosedLoop(sessions []workload.Session) (*Result, error) {
	total := 0
	for i, s := range sessions {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("cluster: session %d: %w", i, err)
		}
		total += len(s.Requests)
	}
	c.total = total
	c.completed = 0

	var issue func(s workload.Session, i int)
	issue = func(s workload.Session, i int) {
		req := s.Requests[i]
		onDone := func(now float64) {
			if i+1 < len(s.Requests) {
				c.eng.After(s.Thinks[i], func() { issue(s, i+1) })
			}
		}
		c.dispatchFull(req, true, c.eng.Now(), onDone)
	}
	for _, s := range sessions {
		s := s
		c.eng.Schedule(s.Start, func() { issue(s, 0) })
	}
	for _, e := range c.cfg.Events {
		e := e
		c.eng.Schedule(e.At, func() { c.applyAvailability(e) })
	}

	c.startTickers()
	c.policy.Tick(c.eng.Now(), &c.view)

	for c.completed < c.total {
		if !c.eng.Step() {
			return nil, fmt.Errorf("cluster: closed loop drained with %d/%d requests outstanding", c.total-c.completed, c.total)
		}
	}
	c.stopTickers()
	return c.buildResult(), nil
}
