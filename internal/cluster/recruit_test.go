package cluster

import (
	"testing"

	"msweb/internal/core"
	"msweb/internal/metrics"
	"msweb/internal/trace"
)

// flashTrace builds a bursty KSU-like workload.
func flashTrace(t *testing.T, lambda float64, n int, seed int64) *trace.Trace {
	t.Helper()
	tr, err := trace.Generate(trace.GenConfig{
		Profile: trace.KSU, Lambda: lambda, Requests: n, MuH: 1200, R: 1.0 / 40,
		Arrival: trace.MMPPArrivals, BurstFactor: 4,
		BurstDuration: 3, NormalDuration: 9, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAutoRecruitActivatesOnPeak(t *testing.T) {
	tr := flashTrace(t, 400, 8000, 41)
	cfg := DefaultConfig(10, 2)
	cfg.InitiallyDown = []int{8, 9}
	cfg.AutoRecruit = &AutoRecruit{
		Spares:   []int{8, 9},
		Period:   0.5,
		HighRate: 550, // above the normal-state rate, below the burst rate
		LowRate:  450,
	}
	res, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recruitments == 0 {
		t.Fatal("flash crowd never triggered recruitment")
	}
	if res.Releases == 0 {
		t.Fatal("spares never released after the burst")
	}
	if res.NodeStats[8].Submitted == 0 && res.NodeStats[9].Submitted == 0 {
		t.Fatal("recruited spares did no work")
	}
	if res.Summary.Count != 8000 {
		t.Fatalf("completed %d/8000", res.Summary.Count)
	}
}

func TestAutoRecruitImprovesPeaks(t *testing.T) {
	tr := flashTrace(t, 450, 10000, 42)
	base := DefaultConfig(10, 2)
	base.InitiallyDown = []int{8, 9}
	noRecruit, err := Simulate(base, core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	with := base
	with.AutoRecruit = &AutoRecruit{Spares: []int{8, 9}, Period: 0.5, HighRate: 600, LowRate: 480}
	recruit, err := Simulate(with, core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	if recruit.StretchFactor >= noRecruit.StretchFactor {
		t.Fatalf("recruitment did not improve the bursty workload: %v vs %v",
			recruit.StretchFactor, noRecruit.StretchFactor)
	}
}

func TestAutoRecruitValidation(t *testing.T) {
	cfg := DefaultConfig(4, 1)
	cfg.AutoRecruit = &AutoRecruit{Spares: []int{3}, Period: 0, HighRate: 10, LowRate: 5}
	if cfg.Validate() == nil {
		t.Fatal("zero period accepted")
	}
	cfg.AutoRecruit = &AutoRecruit{Spares: []int{3}, Period: 1, HighRate: 5, LowRate: 10}
	if cfg.Validate() == nil {
		t.Fatal("LowRate >= HighRate accepted")
	}
	cfg.AutoRecruit = &AutoRecruit{Spares: []int{9}, Period: 1, HighRate: 10, LowRate: 5}
	if cfg.Validate() == nil {
		t.Fatal("out-of-range spare accepted")
	}
}

func TestSampleHookSeesEverySample(t *testing.T) {
	tr := genTrace(t, trace.KSU, 200, 1500, 1.0/40, 43)
	ts := metrics.NewTimeSeries(1)
	cfg := DefaultConfig(4, 1)
	hooked := 0
	cfg.SampleHook = func(arrival float64, s metrics.Sample) {
		hooked++
		ts.Add(arrival, s)
	}
	res, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	if hooked != res.Summary.Count {
		t.Fatalf("hook saw %d samples, collector %d", hooked, res.Summary.Count)
	}
	total := 0
	for _, b := range ts.Bins() {
		total += b.Count
	}
	if total != hooked {
		t.Fatalf("time series lost samples: %d vs %d", total, hooked)
	}
}
