package cluster

// Sharded control plane, simulation side. With Config.Shards > 1 the
// slave tier is partitioned across the master tier by the same
// deterministic core.ShardMap the live cluster uses (shard i is owned
// by the i-th master of the current view): each master's placement view
// holds only its own shard, its per-tick refresh work is the shard size
// rather than the fleet size, and cross-shard state travels as
// core.ShardSummary values exchanged on a slow gossip tick. When a
// sharded master would shed (absorption gate denies and its shard
// offers no slave), it first tries to spill onto the least-loaded
// digest of a fresh remote summary, paying a second dispatch hop.
//
// The map is epoch-versioned: every topology change — a node crash or
// recovery, recruitment, an adaptive or autoscaler master-count change,
// a graceful power-off — derives the successor map via Rebalanced
// (consistent-hash ring, so only ~1/m of the slaves change owner per
// master change) and bumps the epoch. Summaries carry the epoch of the
// map they were built under; spill decisions accept the current and the
// immediately preceding epoch (the bounded dual-epoch handoff window)
// and discard anything older.
//
// The simulation is the byte-deterministic side of the design: the same
// trace and seed always produce the same placements, reshards and
// scaling decisions, so experiments can compare sharded and global
// control planes — and autoscaled against fixed fleets — exactly.

import (
	"msweb/internal/core"
)

// simShardTopK mirrors the live shardTopK digest count.
const simShardTopK = 8

// ShardStats reports sharded control-plane accounting for one run.
type ShardStats struct {
	// Shards is the final shard (= master) count.
	Shards int
	// MaxShardSize is the largest shard's slave population.
	MaxShardSize int
	// NodesPolledPerTick is the mean per-master per-tick refresh work
	// (own node + own shard) — the O(shard) claim. An unsharded
	// master's equivalent is the fleet size.
	NodesPolledPerTick float64
	// MeanSummaryAge is the mean age in virtual seconds of the remote
	// summaries a master holds, sampled at every policy tick.
	MeanSummaryAge float64
	// Spilled counts requests served on a remote shard after the local
	// shard shed them; SpillShed counts sheds with no fresh remote
	// candidate left.
	Spilled   int64
	SpillShed int64
	// Epoch is the shard map's final version; EpochChanges counts the
	// rebalances that got it there (0 for a static run).
	Epoch        uint64
	EpochChanges int64
	// MovedNodes accumulates, over all rebalances, how many surviving
	// slaves changed owner — the consistent-hash ~1/m-per-change claim.
	MovedNodes int64
}

// setupShards builds the initial epoch-0 shard map and the per-master
// views from the configured topology. The views alias the cluster-sized
// load array — a master's reads are bounded by its Masters/Slaves
// lists, so aliasing is safe and keeps refresh writes in one place.
func (c *Cluster) setupShards() error {
	sm, err := core.NewShardMap(c.cfg.ShardMapMode, len(c.view.Masters), c.view.Slaves)
	if err != nil {
		return err
	}
	c.shardMap = sm
	c.rebuildShardStructs(true)
	return nil
}

// reshard rebalances the shard map after a topology change: the next
// epoch's map is derived from the current one over the new master count
// and slave list, and the per-shard views are rebuilt. Remote summaries
// survive a rebalance that keeps the shard count (they are one epoch
// old — inside the handoff window); a master-count change resizes the
// gossip state and starts the new shards cold.
func (c *Cluster) reshard() {
	if c.shardMap == nil {
		return
	}
	m := len(c.view.Masters)
	if m < 1 {
		// Whole cluster down: keep the last map; dispatch is already
		// parked on the retry path until capacity returns.
		return
	}
	next, err := c.shardMap.Rebalanced(m, c.view.Slaves)
	if err != nil {
		return // unreachable: the mode was validated at construction
	}
	c.shardMoved += int64(next.MovedFrom(c.shardMap))
	sameShape := next.NumShards() == c.shardMap.NumShards()
	c.shardMap = next
	c.epochChanges++
	c.rebuildShardStructs(sameShape)
}

// rebuildShardStructs sizes the per-shard views, summaries and gossip
// mailboxes to the current map. keepRemote preserves the held remote
// summaries (same shard count: their shard indices still mean the same
// owners, and their one-epoch-old stamps stay inside the spill window).
func (c *Cluster) rebuildShardStructs(keepRemote bool) {
	m := c.shardMap.NumShards()
	if c.shardOf == nil {
		c.shardOf = make(map[int]int, m)
	}
	for id := range c.shardOf {
		delete(c.shardOf, id)
	}
	for i, id := range c.view.Masters {
		c.shardOf[id] = i
	}

	if cap(c.shardViews) < m {
		c.shardViews = make([]core.View, m)
	}
	c.shardViews = c.shardViews[:m]
	for s := 0; s < m; s++ {
		owner := []int{s}
		if s < len(c.view.Masters) {
			owner = []int{c.view.Masters[s]}
		}
		c.shardViews[s] = core.View{
			Masters:  owner,
			Slaves:   append(c.shardViews[s].Slaves[:0], c.shardMap.Members(s)...),
			Load:     c.view.Load,
			Affinity: c.cfg.Affinity,
			Now:      c.view.Now,
		}
	}

	keepRemote = keepRemote && len(c.shardSums) == m
	if !keepRemote {
		c.shardSums = make([]core.ShardSummary, m)
		c.remoteSums = make([][]core.ShardSummary, m)
		c.remoteAt = make([][]float64, m)
		for s := 0; s < m; s++ {
			c.remoteSums[s] = make([]core.ShardSummary, m)
			c.remoteAt[s] = make([]float64, m)
			for t := range c.remoteAt[s] {
				c.remoteAt[s][t] = -1
			}
		}
	}
}

// gossipPeriod is the summary exchange period (default 4× the load
// refresh, matching the live default).
func (c *Cluster) gossipPeriod() float64 {
	if c.cfg.GossipEvery > 0 {
		return c.cfg.GossipEvery
	}
	return 4 * c.cfg.LoadRefresh
}

// refreshShardSummaries rebuilds each shard's own summary after a load
// refresh and accounts the per-master poll work (one self-sample plus
// the shard members). Summaries are stamped with the current map epoch.
func (c *Cluster) refreshShardSummaries() {
	atNs := int64(c.eng.Now() * 1e9)
	epoch := c.shardMap.Epoch()
	for s := range c.shardSums {
		members := c.shardMap.Members(s)
		core.BuildShardSummary(&c.shardSums[s], s, atNs, members, c.view.Load, simShardTopK)
		c.shardSums[s].Epoch = epoch
		c.pollWork += int64(len(members)) + 1
		c.pollSamples++
	}
}

// gossipShards delivers every shard's current summary to every other
// master — the sim analogue of the /shard pull round (piggybacked copies
// only make summaries fresher in the live plane; the slow tick is the
// guaranteed floor modeled here).
func (c *Cluster) gossipShards() {
	now := c.eng.Now()
	for o := range c.remoteSums {
		for s := range c.shardSums {
			if s == o {
				continue
			}
			dst := &c.remoteSums[o][s]
			top := append(dst.Top[:0], c.shardSums[s].Top...)
			*dst = c.shardSums[s]
			dst.Top = top
			c.remoteAt[o][s] = now
		}
	}
}

// sampleSummaryAge accumulates the age of every held remote summary —
// the staleness a spill decision would act on right now.
func (c *Cluster) sampleSummaryAge() {
	now := c.eng.Now()
	for o := range c.remoteAt {
		for s, at := range c.remoteAt[o] {
			if s == o || at < 0 {
				continue
			}
			c.ageSum += now - at
			c.ageN++
		}
	}
}

// pickSimSpill returns the best usable node among fresh remote
// summaries' digests (lowest RSRC, ties to the first found — summary
// and digest order are deterministic), or -1 when no shard has a fresh
// summary with a usable digest. Usable means: the summary is fresh and
// from the current or the immediately preceding map epoch (the bounded
// dual-epoch handoff window), and the node is available, powered, and a
// slave of the current map — a digest naming a node that a newer epoch
// demoted or removed is dead information, not a spill target.
func (c *Cluster) pickSimSpill(shard int) int {
	now := c.eng.Now()
	ttl := 3 * c.gossipPeriod()
	epoch := c.shardMap.Epoch()
	best, bestCost := -1, 0.0
	for s := range c.remoteSums[shard] {
		if s == shard || c.remoteAt[shard][s] < 0 || now-c.remoteAt[shard][s] > ttl {
			continue
		}
		sum := &c.remoteSums[shard][s]
		if sum.Epoch+1 < epoch {
			continue // outside the dual-epoch window
		}
		for _, d := range sum.Top {
			if !c.available[d.Node] || !c.powered[d.Node] || c.shardMap.ShardOf(d.Node) < 0 {
				continue
			}
			cost := core.NodeRSRC(core.DefaultW, d.Load)
			if best < 0 || cost < bestCost {
				best, bestCost = d.Node, cost
			}
		}
	}
	return best
}

// shardStats snapshots the run's sharding accounting (nil when
// unsharded).
func (c *Cluster) shardStats() *ShardStats {
	if c.shardMap == nil {
		return nil
	}
	st := &ShardStats{
		Shards:       c.shardMap.NumShards(),
		Spilled:      c.spilled,
		SpillShed:    c.spillShed,
		Epoch:        c.shardMap.Epoch(),
		EpochChanges: c.epochChanges,
		MovedNodes:   c.shardMoved,
	}
	for s := 0; s < st.Shards; s++ {
		if n := len(c.shardMap.Members(s)); n > st.MaxShardSize {
			st.MaxShardSize = n
		}
	}
	if c.pollSamples > 0 {
		st.NodesPolledPerTick = float64(c.pollWork) / float64(c.pollSamples)
	}
	if c.ageN > 0 {
		st.MeanSummaryAge = c.ageSum / float64(c.ageN)
	}
	return st
}
